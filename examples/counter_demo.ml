(* A three-bit synchronous binary counter driven by the molecular clock —
   the paper's flagship sequential design.

   The design is a one-hot FSM over 8 states whose Moore outputs are the
   binary-weighted bits; the clock is the four-phase oscillator; state moves
   S -> T (release, phase 0) -> Z (transition) -> S' (capture, phase 2) once
   per clock cycle.

   Run with: dune exec examples/counter_demo.exe *)

let () =
  let net = Crn.Network.create () in
  let design = Core.Sync_design.make net in
  let counter = Core.Counter.free_running design ~bits:3 in

  Printf.printf "Synthesized a 3-bit counter: %d species, %d reactions\n"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);
  Printf.printf "Clock period (measured): %.3f time units\n\n"
    (Core.Sync_design.period design);

  let cycles = 10 in
  let trace = Core.Sync_design.simulate ~cycles:(cycles + 1) design in

  (* decoded counter value after every clock cycle *)
  print_endline "cycle | one-hot state | binary outputs";
  for c = 0 to cycles - 1 do
    let state =
      match Core.Counter.value_at counter trace ~cycle:c with
      | Some v -> string_of_int v
      | None -> "?"
    in
    let bits = Core.Counter.bits_at counter trace ~cycle:c in
    Printf.printf "%5d | %13s | %d%d%d (= %d)\n" c state
      ((bits lsr 2) land 1)
      ((bits lsr 1) land 1)
      (bits land 1) bits
  done;

  (* the classic counter waveforms: bit 0 toggles every cycle, bit 1 every
     two, bit 2 every four *)
  print_newline ();
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:10
       ~title:"counter bit waveforms (concentration vs time)"
       (Analysis.Ascii_plot.of_trace trace (Core.Counter.bit_names counter)));

  (* and the clock phases that drive it *)
  print_newline ();
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:10
       ~title:"clock phases"
       (Analysis.Ascii_plot.of_trace trace
          (Molclock.Clock_chassis.phase_names design.Core.Sync_design.clock)))
