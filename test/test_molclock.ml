(* Tests for the molecular clock: sustained oscillation, period scaling,
   phase non-overlap, conservation, and the feedback ablation. *)

let simulate_clock ?(feedback = true) ?(t1 = 120.) ?(mass = 100.) n_phases =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let clk =
    Molclock.Clock_chassis.of_oscillator
      (Molclock.Oscillator.create ~feedback ~n_phases ~mass
         (Crn.Builder.scoped b "clk"))
  in
  let trace =
    Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1 net
  in
  (net, clk, trace)

let test_structure () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let clk = Molclock.Oscillator.create ~n_phases:3 ~mass:50. b in
  Alcotest.(check int) "phases" 3 (Molclock.Oscillator.n_phases clk);
  Alcotest.(check (float 0.)) "mass" 50. (Molclock.Oscillator.mass clk);
  Alcotest.(check (float 0.)) "threshold" 25.
    (Molclock.Oscillator.high_threshold clk);
  Alcotest.(check int) "r is phase 0" (Molclock.Oscillator.phase clk 0)
    (Molclock.Oscillator.r clk);
  Alcotest.(check int) "phase wraps" (Molclock.Oscillator.phase clk 0)
    (Molclock.Oscillator.phase clk 3);
  Alcotest.(check (list string)) "names" [ "P0"; "P1"; "P2"; "P3" ]
    (let net4 = Crn.Network.create () in
     let clk4 =
       Molclock.Oscillator.create ~n_phases:4 (Crn.Builder.on net4)
     in
     Molclock.Oscillator.phase_names clk4);
  (* all clock mass starts in phase 0 *)
  Alcotest.(check (float 0.)) "initial mass placement" 50.
    (Crn.Network.init_of net (Molclock.Oscillator.r clk))

let test_invalid_args () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  Alcotest.check_raises "too few phases"
    (Invalid_argument "Oscillator.create: need at least 3 phases") (fun () ->
      ignore (Molclock.Oscillator.create ~n_phases:2 b));
  Alcotest.check_raises "bad mass"
    (Invalid_argument "Oscillator.create: mass must be positive") (fun () ->
      ignore (Molclock.Oscillator.create ~mass:0. b))

let test_three_phase_oscillates () =
  let _, clk, trace = simulate_clock 3 in
  Alcotest.(check bool) "sustained" true
    (Molclock.Clock_analysis.is_sustained ~min_cycles:5 trace clk);
  match Molclock.Clock_analysis.period trace clk with
  | None -> Alcotest.fail "no period"
  | Some p -> Alcotest.(check (float 0.5)) "period ~4.75" 4.75 p

let test_period_scales_with_phase_count () =
  let _, clk3, tr3 = simulate_clock 3 in
  let _, clk5, tr5 = simulate_clock 5 in
  match
    ( Molclock.Clock_analysis.period tr3 clk3,
      Molclock.Clock_analysis.period tr5 clk5 )
  with
  | Some p3, Some p5 ->
      Alcotest.(check (float 0.1)) "period ratio = phase ratio" (5. /. 3.)
        (p5 /. p3)
  | _ -> Alcotest.fail "missing period"

let test_four_phase_non_overlap () =
  let _, clk, trace = simulate_clock 4 in
  Alcotest.(check bool) "sustained" true
    (Molclock.Clock_analysis.is_sustained trace clk);
  Alcotest.(check bool) "P0/P2 disjoint" true
    (Molclock.Clock_analysis.overlap trace clk 0 2 < 0.01);
  Alcotest.(check bool) "P1/P3 disjoint" true
    (Molclock.Clock_analysis.overlap trace clk 1 3 < 0.01);
  Alcotest.(check bool) "adjacent phases do overlap (handover)" true
    (Molclock.Clock_analysis.overlap trace clk 0 1 > 0.3);
  Alcotest.(check bool) "worst non-adjacent overlap small" true
    (Molclock.Clock_analysis.worst_adjacent_overlap trace clk < 0.01)

let test_feedback_ablation () =
  (* without positive feedback the transfers smear out and the oscillation
     dies — the crispness the feedback reactions buy is essential *)
  let _, clk, trace = simulate_clock ~feedback:false 4 in
  Alcotest.(check bool) "not sustained without feedback" false
    (Molclock.Clock_analysis.is_sustained ~min_cycles:5 trace clk)

let test_clock_mass_rotates () =
  (* total phase mass (plus dimer-held pairs) is conserved *)
  let net, clk, trace = simulate_clock ~t1:50. 4 in
  let w = Array.make (Crn.Network.n_species net) 0. in
  Array.iter (fun p -> w.(p) <- 1.) (Molclock.Clock_chassis.phases clk);
  for s = 0 to Crn.Network.n_species net - 1 do
    let name = Crn.Network.species_name net s in
    (* dimer species are named clk.I<k> *)
    if String.length name >= 5 && String.sub name 0 5 = "clk.I" then
      w.(s) <- 2.
  done;
  Alcotest.(check bool) "weighting is a conservation law" true
    (Crn.Conservation.is_invariant net w);
  let total_at i =
    Numeric.Vec.dot w (Ode.Trace.state_at_index trace i)
  in
  let t0 = total_at 0 in
  Alcotest.(check (float 1e-3)) "mass at start" 100. t0;
  Alcotest.(check (float 0.1)) "mass at end" t0
    (total_at (Ode.Trace.length trace - 1))

let test_phase_high_at () =
  let _, clk, trace = simulate_clock ~t1:40. 4 in
  (* at t=0 phase 0 holds the whole mass *)
  Alcotest.(check (option int)) "phase 0 at start" (Some 0)
    (Molclock.Clock_analysis.phase_high_at trace clk 0.01)

let test_cycle_starts_spacing () =
  let _, clk, trace = simulate_clock ~t1:80. 4 in
  let starts = Molclock.Clock_analysis.cycle_starts trace clk in
  Alcotest.(check bool) "several cycles" true (List.length starts >= 8);
  (* consecutive spacings agree with the measured period *)
  let p =
    match Molclock.Clock_analysis.period trace clk with
    | Some p -> p
    | None -> Alcotest.fail "no period"
  in
  let rec check_spacing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check (float 0.5)) "spacing = period" p (b -. a);
        check_spacing rest
    | _ -> ()
  in
  check_spacing starts

let test_rate_ratio_sweep () =
  (* the clock must oscillate for any fast/slow separation; the period is
     set by the slow timescale so it stays roughly constant as k_fast
     grows *)
  let periods =
    List.map
      (fun ratio ->
        let net = Crn.Network.create () in
        let b = Crn.Builder.on net in
        let clk =
          Molclock.Clock_chassis.of_oscillator
            (Molclock.Oscillator.create ~n_phases:4
               (Crn.Builder.scoped b "clk"))
        in
        let env = Crn.Rates.env_with_ratio ratio in
        let trace =
          Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5
            ~t1:120. net
        in
        Alcotest.(check bool)
          (Printf.sprintf "sustained at ratio %g" ratio)
          true
          (Molclock.Clock_analysis.is_sustained trace clk);
        match Molclock.Clock_analysis.period trace clk with
        | Some p -> p
        | None -> Alcotest.fail "no period")
      [ 100.; 1000.; 10000. ]
  in
  match periods with
  | [ p1; p2; p3 ] ->
      Alcotest.(check bool) "period stable across ratios" true
        (Float.abs (p1 -. p3) /. p2 < 0.25)
  | _ -> assert false

let test_mass_changes_period_little () =
  (* the period is dominated by indicator accumulation, not clock mass *)
  let _, clk1, tr1 = simulate_clock ~mass:50. 4 in
  let _, clk2, tr2 = simulate_clock ~mass:200. 4 in
  match
    (Molclock.Clock_analysis.period tr1 clk1, Molclock.Clock_analysis.period tr2 clk2)
  with
  | Some p1, Some p2 ->
      Alcotest.(check bool) "within 2x" true (p2 /. p1 < 2. && p1 /. p2 < 2.)
  | _ -> Alcotest.fail "missing period"

let suite =
  [
    ("structure", `Quick, test_structure);
    ("invalid args", `Quick, test_invalid_args);
    ("three-phase oscillates", `Quick, test_three_phase_oscillates);
    ("period scales with phases", `Quick, test_period_scales_with_phase_count);
    ("four-phase non-overlap", `Quick, test_four_phase_non_overlap);
    ("feedback ablation", `Quick, test_feedback_ablation);
    ("clock mass rotates", `Quick, test_clock_mass_rotates);
    ("phase high at", `Quick, test_phase_high_at);
    ("cycle starts spacing", `Quick, test_cycle_starts_spacing);
    ("rate ratio sweep", `Slow, test_rate_ratio_sweep);
    ("mass vs period", `Slow, test_mass_changes_period_little);
  ]
