(* The gateway offensive: an in-process fleet (real [Service.Server]
   daemons in domains, attached to an in-process [Service.Gateway])
   driven through the acceptance bar — responses byte-identical to
   direct daemon execution over both front doors, cache affinity
   observable from the envelope's own metrics, admission control
   answering with the structured retryable [overloaded], a shard dying
   mid-request yielding a structured [shard_failed] (never a hang), a
   dead shard failed over transparently, and the client retry policy
   proven side-effect-safe against a scripted fake daemon. *)

module J = Service.Json
module W = Service.Wire
module C = Service.Client
module G = Service.Gateway

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mrsc-gw-%d-%s" (Unix.getpid ()) name)

(* one free-ish TCP port per test process for the HTTP front door *)
let http_port = 18000 + (Unix.getpid () mod 20000)

(* ------------------------------------------------------- fleet harness *)

let start_daemon path =
  (try Unix.unlink path with _ -> ());
  let address = Service.Addr.Unix_sock path in
  let stop = Atomic.make false in
  let config = Service.Server.default_config address in
  let d =
    Domain.spawn (fun () ->
        Service.Server.run ~stop:(fun () -> Atomic.get stop) config)
  in
  (address, stop, d)

let stop_daemon (_, stop, d) =
  Atomic.set stop true;
  Domain.join d

let wait_up ?(tries = 250) addr =
  let rec go tries =
    match Service.Addr.connect addr with
    | fd -> Unix.close fd
    | exception _ ->
        if tries = 0 then Alcotest.fail "endpoint did not come up";
        Unix.sleepf 0.02;
        go (tries - 1)
  in
  go tries

(* [f gate_addr shard_addrs] against a live gateway over [shards]
   in-process daemons (plus any [extra] attached addresses) *)
let with_fleet ?(shards = 2) ?(extra = []) ?(affinity = true)
    ?(max_inflight = 64) ?(http = false) ?(boot_timeout_ms = 10_000.) f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let daemons =
    List.init shards (fun i ->
        start_daemon (tmp (Printf.sprintf "shard%d.sock" i)))
  in
  let shard_addrs = List.map (fun (a, _, _) -> a) daemons in
  List.iter wait_up shard_addrs;
  let gate_path = tmp "gate.sock" in
  (try Unix.unlink gate_path with _ -> ());
  let gate_addr = Service.Addr.Unix_sock gate_path in
  let cfg =
    {
      (G.default_config (G.Attach (shard_addrs @ extra))) with
      G.wire = Some gate_addr;
      http = (if http then Some (Service.Addr.Tcp ("127.0.0.1", http_port))
              else None);
      affinity;
      max_inflight;
      boot_timeout_ms;
    }
  in
  let gstop = Atomic.make false in
  let gd =
    Domain.spawn (fun () ->
        G.run ~stop:(fun () -> Atomic.get gstop) cfg)
  in
  wait_up gate_addr;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gstop true;
      Domain.join gd;
      List.iter stop_daemon daemons)
    (fun () -> f gate_addr shard_addrs)

let ode_req ?(ratio = 1000.) ?(design = "counter2") ?(t1 = 5.) () =
  J.Obj
    [
      ("op", J.str "ode");
      ("network", J.Obj [ ("catalog", J.str design) ]);
      ("t1", J.num t1);
      ("ratio", J.num ratio);
    ]

let ssa_req ?(seed = 7) ?(design = "counter2") ?(t1 = 5.) () =
  J.Obj
    [
      ("op", J.str "ssa");
      ("network", J.Obj [ ("catalog", J.str design) ]);
      ("t1", J.num t1);
      ("seed", J.int seed);
    ]

let trace_req ~engine =
  J.Obj
    ([
       ("op", J.str "trace");
       ("engine", J.str engine);
       ("network", J.Obj [ ("catalog", J.str "clock4") ]);
       ("t1", J.num 0.5);
       ("thin", J.int 5);
       ("ratio", J.num 1000.);
     ]
    @ if engine = "ssa" then [ ("seed", J.int 11) ] else [])

(* the deterministic face of an envelope: everything but the metrics
   object (whose timings differ between two executions of the same
   request); [to_string]/[of_string] round-trip bit-exactly, so string
   equality here is byte equality of the wire fields *)
let canon j =
  match j with
  | J.Obj fields ->
      J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "metrics") fields))
  | other -> J.to_string other

let with_client addr f =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

(* ---------------------------------------------- byte-identity: finals *)

(* every op class through the gateway (wire and HTTP front doors)
   answers with the same bytes — modulo execution timing — as a direct
   daemon connection *)
let test_byte_identity () =
  with_fleet ~shards:2 ~http:true (fun gate_addr shard_addrs ->
      let requests =
        [
          ("ping", J.Obj [ ("op", J.str "ping") ]);
          ("ode", ode_req ());
          ("ode rosenbrock",
           J.Obj
             [
               ("op", J.str "ode");
               ("network", J.Obj [ ("catalog", J.str "clock4") ]);
               ("t1", J.num 2.);
               ("method", J.str "rosenbrock");
             ]);
          ("ssa", ssa_req ());
          (* relaxation-chassis catalog entries travel the same three
             front doors: the gateway must treat a chassis variant as
             just another design name *)
          ("rx validate",
           J.Obj
             [
               ("op", J.str "validate");
               ("network", J.Obj [ ("catalog", J.str "rx-counter2") ]);
             ]);
          ("rx ode", ode_req ~design:"rx-counter2" ());
          ("rx ensemble",
           J.Obj
             [
               ("op", J.str "ensemble");
               ("network", J.Obj [ ("catalog", J.str "rx-counter2") ]);
               ("t1", J.num 5.);
               ("ratio", J.num 1000.);
               ("seed", J.int 7);
               ("runs", J.int 3);
               ("jobs", J.int 1);
             ]);
          ("unknown design",
           J.Obj
             [
               ("op", J.str "ode");
               ("network", J.Obj [ ("catalog", J.str "nonesuch") ]);
               ("t1", J.num 1.);
             ]);
          ("bad op", J.Obj [ ("op", J.str "transmogrify") ]);
        ]
      in
      let direct_addr = List.hd shard_addrs in
      let http_addr = Service.Addr.Http ("127.0.0.1", http_port) in
      with_client direct_addr (fun direct ->
          with_client gate_addr (fun wire ->
              with_client http_addr (fun http ->
                  List.iter
                    (fun (name, req) ->
                      let d = canon (C.call direct req) in
                      let w = canon (C.call wire req) in
                      let h = canon (C.call http req) in
                      check_string (name ^ ": wire gateway = direct") d w;
                      check_string (name ^ ": http gateway = direct") d h)
                    requests))))

(* --------------------------------------------- byte-identity: streams *)

let collect_stream client req =
  let frames = ref [] in
  let final =
    C.call_stream client req ~on_frame:(fun f -> frames := f :: !frames)
  in
  (List.rev_map J.to_string !frames, canon final)

let test_stream_identity () =
  with_fleet ~shards:2 ~http:true (fun gate_addr shard_addrs ->
      let http_addr = Service.Addr.Http ("127.0.0.1", http_port) in
      List.iter
        (fun engine ->
          let req = trace_req ~engine in
          let d_frames, d_final =
            with_client (List.hd shard_addrs) (fun c -> collect_stream c req)
          in
          check_bool (engine ^ ": stream has header + chunks") true
            (List.length d_frames >= 2);
          let w_frames, w_final =
            with_client gate_addr (fun c -> collect_stream c req)
          in
          let h_frames, h_final =
            with_client http_addr (fun c -> collect_stream c req)
          in
          check_bool (engine ^ ": wire frames identical") true
            (d_frames = w_frames);
          check_bool (engine ^ ": http frames identical") true
            (d_frames = h_frames);
          check_string (engine ^ ": wire final = direct") d_final w_final;
          check_string (engine ^ ": http final = direct") d_final h_final)
        [ "ode"; "ssa" ])

(* ------------------------------------------------------ cache affinity *)

let cache_of (resp : C.response) =
  Option.value ~default:"?"
    (Option.bind (Option.bind resp.metrics (J.member "cache")) J.to_str)

(* a repeated source hits the compiled-model cache through the gateway:
   the ring sent it back to the shard that compiled it *)
let test_affinity_cache_hits () =
  with_fleet ~shards:2 (fun gate_addr _ ->
      with_client gate_addr (fun c ->
          List.iter
            (fun design ->
              let req = ode_req ~design () in
              let first = C.request c req in
              check_bool (design ^ ": first call ok") true first.ok;
              for i = 1 to 3 do
                let again = C.request c req in
                check_bool (design ^ ": repeat ok") true again.ok;
                check_string
                  (Printf.sprintf "%s: repeat %d is a cache hit" design i)
                  "hit" (cache_of again)
              done)
            [ "counter2"; "clock4"; "ma2" ]))

(* ----------------------------------- admission control + shard death *)

(* One fake shard that accepts the gateway's boot probe, swallows the
   first forwarded request without answering, and closes on command.
   With max_inflight = 1 this pins both halves of the degraded path:
   the second request is refused with the structured retryable
   [overloaded] (never spilled), and closing the connection turns the
   first request into a structured [shard_failed] — not a hang. *)
let test_overloaded_then_shard_failed () =
  let fake_path = tmp "fake.sock" in
  (try Unix.unlink fake_path with _ -> ());
  let fake_addr = Service.Addr.Unix_sock fake_path in
  let lfd = Service.Addr.listen fake_addr in
  let got_request = Atomic.make false and release = Atomic.make false in
  let fake =
    Domain.spawn (fun () ->
        let conn, _ = Unix.accept lfd in
        (* the boot-probe connection is pooled by the gateway, so the
           first forwarded request arrives right here *)
        ignore (W.read_frame conn);
        Atomic.set got_request true;
        while not (Atomic.get release) do
          Unix.sleepf 0.01
        done;
        (try Unix.close conn with _ -> ());
        try Unix.close lfd with _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Domain.join fake;
      try Unix.unlink fake_path with _ -> ())
    (fun () ->
      with_fleet ~shards:0 ~extra:[ fake_addr ] ~max_inflight:1
        (fun gate_addr _ ->
          let blocked =
            Domain.spawn (fun () ->
                with_client gate_addr (fun c -> C.request c (ode_req ())))
          in
          let rec wait_swallowed tries =
            if not (Atomic.get got_request) then begin
              if tries = 0 then Alcotest.fail "fake shard never got the frame";
              Unix.sleepf 0.02;
              wait_swallowed (tries - 1)
            end
          in
          wait_swallowed 250;
          (* shard 0 is now at its in-flight bound *)
          let refused =
            with_client gate_addr (fun c -> C.request c (ode_req ()))
          in
          check_bool "second request refused" false refused.ok;
          check_bool "refusal is structured overloaded" true
            (match refused.error with
            | Some (Service.Error.Overloaded { queue_bound }) ->
                queue_bound = 1
            | _ -> false);
          (* kill the shard mid-exchange: the blocked request must get
             a structured reply, not a hang *)
          Atomic.set release true;
          let dead = Domain.join blocked in
          check_bool "killed shard answer is structured" false dead.ok;
          check_bool "killed shard answer is shard_failed" true
            (match dead.error with
            | Some (Service.Error.Shard_failed { shard }) -> shard = 0
            | _ -> false)))

(* a shard that is simply gone (nothing listening) is walked past: its
   keys land on the ring successor and every request still succeeds *)
let test_dead_shard_failover () =
  let ghost = Service.Addr.Unix_sock (tmp "ghost.sock") in
  (try Unix.unlink (tmp "ghost.sock") with _ -> ());
  with_fleet ~shards:1 ~extra:[ ghost ] ~boot_timeout_ms:300.
    (fun gate_addr _ ->
      with_client gate_addr (fun c ->
          (* spread keys so some route to the dead shard first *)
          for i = 0 to 9 do
            let resp =
              C.request c (ode_req ~ratio:(500. +. float_of_int i) ())
            in
            check_bool (Printf.sprintf "request %d failed over" i) true
              resp.ok
          done))

(* ------------------------------------------------- health and metrics *)

let http_get path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, http_port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      (* the gateway keeps connections alive, so read until the socket
         goes quiet rather than until EOF *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
      let buf = Bytes.create 65536 and out = Buffer.create 4096 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2;
            drain ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
      in
      drain ();
      Buffer.contents out)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_health_and_metrics () =
  with_fleet ~shards:2 ~http:true (fun gate_addr _ ->
      (* generate some per-shard traffic first *)
      with_client gate_addr (fun c ->
          ignore (C.request c (ode_req ()));
          ignore (C.request c (ssa_req ())));
      let health = http_get "/health" in
      check_bool "health is 200" true
        (contains ~needle:"HTTP/1.1 200" health);
      check_bool "health counts shards up" true
        (contains ~needle:"\"up\":2" health);
      let metrics = http_get "/metrics" in
      List.iter
        (fun needle ->
          check_bool ("metrics exposes " ^ needle) true
            (contains ~needle metrics))
        [
          "mrsc_gateway_requests_total";
          "mrsc_shard_up{shard=\"0\"} 1";
          "mrsc_shard_up{shard=\"1\"} 1";
          "mrsc_shard_requests";
        ];
      (* the aggregated stats op matches: fleet totals sum the shards *)
      with_client gate_addr (fun c ->
          let stats = C.request c (J.Obj [ ("op", J.str "stats") ]) in
          check_bool "stats ok" true stats.ok;
          let result = Option.get stats.result in
          let n_shards =
            match Option.bind (J.member "shards" result) J.to_list with
            | Some l -> List.length l
            | None -> 0
          in
          check_int "stats lists both shards" 2 n_shards;
          check_bool "fleet aggregate present" true
            (J.member "fleet" result <> None)))

(* --------------------------------------- client retry: no duplication *)

(* Scripted fake daemon for the retry policy. Replies to the first
   request with a complete structured [overloaded] envelope and to the
   next with success: the client must retry (2 frames observed) and the
   "work" must run once. Then a response torn mid-frame: the client
   must NOT retry — the daemon may have acted — so exactly 1 frame is
   ever observed. *)
let overloaded_envelope =
  J.to_string
    (J.Obj
       [
         ("ok", J.Bool false);
         ("error",
          Service.Error.to_json (Service.Error.Overloaded { queue_bound = 4 }));
       ])

let ok_envelope =
  J.to_string
    (J.Obj [ ("ok", J.Bool true); ("result", J.Obj [ ("v", J.int 42) ]) ])

let test_retry_overloaded_no_duplicate () =
  let path = tmp "retry.sock" in
  (try Unix.unlink path with _ -> ());
  let addr = Service.Addr.Unix_sock path in
  let lfd = Service.Addr.listen addr in
  let frames = Atomic.make 0 and execs = Atomic.make 0 in
  let fake =
    Domain.spawn (fun () ->
        let conn, _ = Unix.accept lfd in
        let rec serve () =
          match W.read_frame conn with
          | None -> ()
          | Some _ ->
              Atomic.incr frames;
              if Atomic.get frames = 1 then
                W.write_frame conn overloaded_envelope
              else begin
                Atomic.incr execs;
                W.write_frame conn ok_envelope
              end;
              serve ()
        in
        (try serve () with _ -> ());
        (try Unix.close conn with _ -> ());
        try Unix.close lfd with _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join fake;
      try Unix.unlink path with _ -> ())
    (fun () ->
      let c = C.connect ~retries:4 ~retry_budget_ms:5000. addr in
      let resp = C.request c (ode_req ()) in
      C.close c;
      check_bool "retried through overloaded to success" true resp.ok;
      check_int "fake saw exactly two frames" 2 (Atomic.get frames);
      check_int "the work ran exactly once" 1 (Atomic.get execs))

let test_no_retry_after_torn_response () =
  let path = tmp "torn.sock" in
  (try Unix.unlink path with _ -> ());
  let addr = Service.Addr.Unix_sock path in
  let lfd = Service.Addr.listen addr in
  let frames = Atomic.make 0 in
  let stop_accepting = Atomic.make false in
  let fake =
    Domain.spawn (fun () ->
        let conn, _ = Unix.accept lfd in
        (match W.read_frame conn with
        | Some _ ->
            Atomic.incr frames;
            (* a frame header promising 100 bytes, then 10, then close:
               response bytes arrived, so a retry could double-execute *)
            let torn = Bytes.create 14 in
            Bytes.set_int32_be torn 0 100l;
            ignore (Unix.write conn torn 0 14)
        | None -> ());
        (try Unix.close conn with _ -> ());
        (* catch a buggy client that reconnects to retry *)
        Unix.setsockopt_float lfd Unix.SO_RCVTIMEO 0.2;
        (try
           while not (Atomic.get stop_accepting) do
             match Unix.select [ lfd ] [] [] 0.1 with
             | [], _, _ -> ()
             | _ ->
                 let c2, _ = Unix.accept lfd in
                 (match W.read_frame c2 with
                 | Some _ -> Atomic.incr frames
                 | None -> ());
                 Unix.close c2
           done
         with _ -> ());
        try Unix.close lfd with _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_accepting true;
      Domain.join fake;
      try Unix.unlink path with _ -> ())
    (fun () ->
      let c = C.connect ~retries:4 ~retry_budget_ms:2000. addr in
      let raised =
        match C.call c (ode_req ()) with
        | _ -> false
        | exception (W.Framing_error _ | Failure _) -> true
      in
      C.close c;
      check_bool "torn response raises instead of retrying" true raised;
      (* give a buggy retry time to show up before asserting *)
      Unix.sleepf 0.4;
      check_int "exactly one request ever sent" 1 (Atomic.get frames))

let suite =
  [
    ("byte identity (finals)", `Quick, test_byte_identity);
    ("byte identity (streams)", `Quick, test_stream_identity);
    ("cache affinity hits", `Quick, test_affinity_cache_hits);
    ("overloaded then shard_failed", `Quick, test_overloaded_then_shard_failed);
    ("dead shard failover", `Quick, test_dead_shard_failover);
    ("health and metrics", `Quick, test_health_and_metrics);
    ("retry overloaded, no duplicate", `Quick, test_retry_overloaded_no_duplicate);
    ("no retry after torn response", `Quick, test_no_retry_after_torn_response);
  ]
