(* soak ADDR SECONDS SEED — the CI fault-matrix driver for crnserved.

   Phase 1 runs the deterministic fault matrix once: every fault class
   (torn writes, corrupt frame, oversized prefix, negative prefix, dirty
   close) against a live daemon, checking the structured answer for
   each. Phase 2 hammers the daemon for SECONDS wall-clock seconds with
   concurrent well-formed clients (every response must be ok) and
   malformed clients replaying seeded random fault schedules, garbage
   bytes, torn frames and connect/close churn. All randomness derives
   from SEED, so a failing run replays exactly.

   Exit 0 iff the daemon answered every well-formed request correctly
   during the storm and still answers after it. *)

module J = Service.Json
module W = Service.Wire
module F = Service.Fault
module C = Service.Client

let violations = Atomic.make 0
let ok_requests = Atomic.make 0
let attacks = Atomic.make 0

let vmutex = Mutex.create ()

let violate fmt =
  Printf.ksprintf
    (fun msg ->
      Atomic.incr violations;
      Mutex.lock vmutex;
      Printf.eprintf "soak: VIOLATION: %s\n%!" msg;
      Mutex.unlock vmutex)
    fmt

let ping = J.Obj [ ("op", J.str "ping") ]

let ode_req =
  J.Obj
    [
      ("op", J.str "ode");
      ("network", J.Obj [ ("catalog", J.str "counter2") ]);
      ("t1", J.num 0.5);
      ("ratio", J.num 1000.);
      ("method", J.str "0.01");
      ("deadline_ms", J.num 10_000.);
    ]

let with_raw addr f =
  let fd = Service.Addr.connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      f fd)

let raw_response fd =
  match W.read_frame fd with
  | Some payload -> Some (C.response_of_json (J.of_string payload))
  | None -> None

(* ------------------------------------------- phase 1: the fault matrix *)

let expect_error what fd =
  match raw_response fd with
  | Some resp when not resp.C.ok -> ()
  | Some _ -> violate "%s: daemon answered ok to a malformed stream" what
  | None -> violate "%s: connection closed without a structured error" what

let matrix addr =
  (* torn writes reassemble *)
  with_raw addr (fun fd ->
      W.write_frame_t (F.chop 3 (W.of_fd fd)) (J.to_string ping);
      match raw_response fd with
      | Some resp when resp.C.ok -> ()
      | _ -> violate "matrix: torn request not served");
  (* corrupt first payload byte -> structured bad_request, conn survives *)
  with_raw addr (fun fd ->
      let t = F.wrap ~on_write:[ F.Corrupt { at = 4; xor = 1 } ] (W.of_fd fd) in
      W.write_frame_t t (J.to_string ping);
      expect_error "matrix: corrupt frame" fd;
      W.write_frame fd (J.to_string ping);
      match raw_response fd with
      | Some resp when resp.C.ok -> ()
      | _ -> violate "matrix: connection did not survive a corrupt frame");
  (* oversized prefix -> structured error then close *)
  with_raw addr (fun fd ->
      let prefix = Bytes.create 4 in
      Bytes.set_int32_be prefix 0 0x7f00_0000l;
      ignore (Unix.write fd prefix 0 4);
      expect_error "matrix: oversized prefix" fd);
  (* negative prefix -> structured error then close *)
  with_raw addr (fun fd ->
      ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4);
      expect_error "matrix: negative prefix" fd);
  (* dirty close: half a frame, then vanish — the daemon just absorbs it *)
  with_raw addr (fun fd ->
      let torn = Bytes.make 9 'x' in
      Bytes.set_int32_be torn 0 100l;
      ignore (Unix.write fd torn 0 9));
  (* and after all of that, a clean request is served *)
  with_raw addr (fun fd ->
      W.write_frame fd (J.to_string ping);
      match raw_response fd with
      | Some resp when resp.C.ok -> ()
      | _ -> violate "matrix: daemon not serving after the fault matrix")

(* ------------------------------------------------ phase 2: the storm *)

let well_formed addr ~deadline ~seed =
  let rng = Numeric.Rng.create seed in
  while Unix.gettimeofday () < deadline do
    match
      let c = C.connect ~retries:3 ~retry_budget_ms:2_000.
          ~retry_seed:(Numeric.Rng.uint64 rng) ~read_deadline_ms:15_000. addr
      in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          for _ = 1 to 1 + Numeric.Rng.int rng 5 do
            let req = if Numeric.Rng.int rng 4 = 0 then ode_req else ping in
            let resp = C.request c req in
            if resp.C.ok then Atomic.incr ok_requests
            else
              (* the daemon may shed load explicitly; anything else is a
                 correctness violation *)
              match resp.C.error with
              | Some (Service.Error.Overloaded _)
              | Some (Service.Error.Connection_limit _) ->
                  ()
              | _ ->
                  violate "well-formed request failed: %s"
                    (Option.value ~default:"?" resp.C.error_message)
          done)
    with
    | () -> ()
    | exception C.Timeout _ ->
        violate "well-formed client timed out waiting for a response"
    | exception e ->
        violate "well-formed client died: %s" (Printexc.to_string e)
  done

let malformed addr ~deadline ~seed =
  let rng = Numeric.Rng.create seed in
  while Unix.gettimeofday () < deadline do
    Atomic.incr attacks;
    (try
       with_raw addr (fun fd ->
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
           match Numeric.Rng.int rng 5 with
           | 0 ->
               (* seeded random fault schedule over a ping *)
               let req = J.to_string ping in
               let len = 4 + String.length req in
               let sched =
                 F.random_schedule ~rng ~len (1 + Numeric.Rng.int rng 2)
               in
               W.write_frame_t (F.wrap ~on_write:sched (W.of_fd fd)) req;
               ignore (raw_response fd)
           | 1 ->
               (* raw garbage *)
               let n = 1 + Numeric.Rng.int rng 64 in
               let junk =
                 Bytes.init n (fun _ -> Char.chr (Numeric.Rng.int rng 256))
               in
               ignore (Unix.write fd junk 0 n);
               ignore (raw_response fd)
           | 2 ->
               (* torn frame, then hang up *)
               let torn = Bytes.make 10 'z' in
               Bytes.set_int32_be torn 0
                 (Int32.of_int (64 + Numeric.Rng.int rng 4096));
               ignore (Unix.write fd torn 0 (1 + Numeric.Rng.int rng 9))
           | 3 ->
               (* oversized prefix *)
               let prefix = Bytes.create 4 in
               Bytes.set_int32_be prefix 0
                 (Int32.of_int (0x1000_0000 + Numeric.Rng.int rng 1000));
               ignore (Unix.write fd prefix 0 4);
               ignore (raw_response fd)
           | _ -> (* connect/close churn *) ())
     with
    | Unix.Unix_error _ | W.Framing_error _ | W.Oversized_frame _
    | J.Parse_error _ ->
        (* the attack connection dying is the expected outcome *)
        ());
    ignore (Unix.sleepf 0.002)
  done

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Sys.argv with
  | [| _; addr_s; secs_s; seed_s |] -> (
      match Service.Addr.of_string addr_s with
      | Error msg ->
          Printf.eprintf "soak: %s\n" msg;
          exit 2
      | Ok addr ->
          let secs = float_of_string secs_s in
          let seed = Int64.of_string seed_s in
          Printf.printf "soak: %s for %.0fs, seed %Ld\n%!" addr_s secs seed;
          matrix addr;
          Printf.printf "soak: deterministic fault matrix done\n%!";
          let deadline = Unix.gettimeofday () +. secs in
          let rng = Numeric.Rng.create seed in
          let spawn f = Domain.spawn (fun () -> f addr ~deadline ~seed:(Numeric.Rng.uint64 rng)) in
          let doms =
            [ spawn well_formed; spawn well_formed ]
            @ [ spawn malformed; spawn malformed; spawn malformed ]
          in
          List.iter Domain.join doms;
          (* the daemon must still serve after the storm *)
          with_raw addr (fun fd ->
              W.write_frame fd (J.to_string ping);
              match raw_response fd with
              | Some resp when resp.C.ok -> ()
              | _ -> violate "daemon not serving after the storm");
          Printf.printf
            "soak: %d ok responses, %d attack connections, %d violations\n%!"
            (Atomic.get ok_requests) (Atomic.get attacks)
            (Atomic.get violations);
          exit (if Atomic.get violations = 0 then 0 else 1))
  | _ ->
      prerr_endline "usage: soak ADDR SECONDS SEED";
      exit 2
