(* Integration tests over the shipped .crn example networks: the parser,
   the simulators and the analysis layer against classic chemistry. *)

(* under [dune runtest] the cwd is _build/default/test; under a direct
   [dune exec test/test_main.exe] it is the project root *)
let networks_dir =
  if Sys.file_exists "../examples/networks" then "../examples/networks"
  else "examples/networks"

let path name = Filename.concat networks_dir name

let load name = Crn.Parser.network_of_file (path name)

let all_example_files () =
  Sys.readdir networks_dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".crn")
  |> List.sort compare

let test_parse_all () =
  let files = all_example_files () in
  Alcotest.(check bool) "found example networks" true (List.length files >= 4);
  List.iter
    (fun name ->
      let net = load name in
      Alcotest.(check bool)
        (name ^ " nonempty")
        true
        (Crn.Network.n_reactions net > 0);
      (* and they roundtrip through the printer *)
      let net' = Crn.Parser.roundtrip net in
      Alcotest.(check string)
        (name ^ " roundtrips")
        (Crn.Network.to_string net)
        (Crn.Network.to_string net'))
    files

(* Round-trip discipline for any network, shipped file or synthesized
   design. [Network.to_string] is not byte-stable on the FIRST print of a
   synthesized network (reactant sides print in species-index order, and
   reparsing renumbers species in order of appearance), so the contract is:
   - pp/parse reaches a fixed point after one trip (print, reparse,
     print again: identical bytes from then on);
   - species/reaction counts and initial state survive the trip;
   - the renaming-invariant structural fingerprint is unchanged, so the
     reparsed network is the same design to the equivalence layer. *)
let check_roundtrip name net =
  let net2 = Crn.Parser.roundtrip net in
  let s2 = Crn.Network.to_string net2 in
  let net3 = Crn.Parser.network_of_string s2 in
  let s3 = Crn.Network.to_string net3 in
  Alcotest.(check string) (name ^ " pp/parse idempotent") s2 s3;
  Alcotest.(check int)
    (name ^ " species preserved")
    (Crn.Network.n_species net) (Crn.Network.n_species net2);
  Alcotest.(check int)
    (name ^ " reactions preserved")
    (Crn.Network.n_reactions net) (Crn.Network.n_reactions net2);
  let sorted_inits n =
    let inits = Crn.Network.initial_state n in
    Array.sort compare inits;
    inits
  in
  Alcotest.(check (array (float 0.)))
    (name ^ " initial state preserved")
    (sorted_inits net) (sorted_inits net2);
  Alcotest.(check string)
    (name ^ " fingerprint stable")
    (Crn.Equiv.fingerprint net) (Crn.Equiv.fingerprint net2)

let test_roundtrip_examples () =
  List.iter (fun name -> check_roundtrip name (load name)) (all_example_files ())

let test_roundtrip_catalog () =
  List.iter
    (fun name -> check_roundtrip name (Designs.Catalog.build name))
    (Designs.Catalog.names ())

let test_lotka_volterra_oscillates () =
  let net = load "lotka_volterra.crn" in
  let trace = Ode.Driver.simulate ~t1:40. net in
  let times = Ode.Trace.times trace in
  let x = Ode.Trace.column_named trace "X" in
  Alcotest.(check bool) "prey oscillates" true
    (Analysis.Oscillation.is_sustained ~threshold:1. ~min_cycles:4 ~times
       ~values:x ());
  (* Lotka-Volterra conserves nothing linear, but stays positive & bounded *)
  Alcotest.(check bool) "bounded" true (Numeric.Stats.maximum x < 50.)

let test_oregonator_oscillates () =
  let net = load "oregonator.crn" in
  let trace = Ode.Driver.simulate ~t1:40. net in
  let times = Ode.Trace.times trace in
  (* X cycles repeatedly; Z has one giant start-up spike, so judge the
     sustained oscillation on X and only the relaxation amplitude on Z *)
  let x = Ode.Trace.column_named trace "X" in
  Alcotest.(check bool) "X oscillates" true
    (Analysis.Oscillation.is_sustained
       ~threshold:(Numeric.Stats.maximum x /. 2.)
       ~min_cycles:4 ~times ~values:x ());
  let z = Ode.Trace.column_named trace "Z" in
  Alcotest.(check bool) "Z relaxation amplitude" true
    (Analysis.Oscillation.amplitude ~values:z > 50.)

let test_brusselator_limit_cycle () =
  let net = load "brusselator.crn" in
  let trace = Ode.Driver.simulate ~t1:80. net in
  let times = Ode.Trace.times trace in
  let x = Ode.Trace.column_named trace "X" in
  (* judge sustained oscillation on the second half (past the transient) *)
  Alcotest.(check bool) "X oscillates" true
    (Analysis.Oscillation.is_sustained ~threshold:1.5 ~min_cycles:4 ~times
       ~values:x ());
  (* the classic network is trimolecular: not DSD-compilable, and the lint
     pass says so *)
  Alcotest.(check bool) "trimolecular flagged" false
    (Crn.Validate.is_dsd_compilable net)

let test_approximate_majority_converges () =
  let net = load "approximate_majority.crn" in
  (* deterministic: initial majority X=60 vs Y=40 takes the population *)
  let xf = Ode.Driver.final_state ~t1:5. net in
  let sp name = Crn.Network.species net name in
  Alcotest.(check (float 0.5)) "X wins all 100" 100. xf.(sp "X");
  Alcotest.(check (float 0.5)) "Y extinct" 0. xf.(sp "Y");
  (* stochastic: strong majority wins almost surely *)
  let mean, _ = Ssa.Gillespie.mean_final ~runs:8 ~seed:11L ~t1:5. net "X" in
  Alcotest.(check bool) "SSA majority outcome" true (mean > 90.)

let test_majority_conserves_population () =
  let net = load "approximate_majority.crn" in
  let w = Crn.Conservation.uniform_over net [ "X"; "Y"; "B" ] in
  Alcotest.(check bool) "X+Y+B invariant" true
    (Crn.Conservation.is_invariant net w)

let suite =
  [
    ("parse + roundtrip all", `Quick, test_parse_all);
    ("roundtrip every example file", `Quick, test_roundtrip_examples);
    ("roundtrip every catalog design", `Quick, test_roundtrip_catalog);
    ("lotka-volterra oscillates", `Quick, test_lotka_volterra_oscillates);
    ("oregonator oscillates", `Quick, test_oregonator_oscillates);
    ("brusselator limit cycle", `Quick, test_brusselator_limit_cycle);
    ("approximate majority converges", `Quick, test_approximate_majority_converges);
    ("majority conserves population", `Quick, test_majority_conserves_population);
  ]
