(* Tests for the hybrid adaptive SSA/tau-leap/ODE engine: the bitwise
   fallback to pure Gillespie, agreement with the ODE on fast networks,
   repartition boundaries (species crossing the population threshold in
   both directions), tau-gear bulk stepping, and deterministic multicore
   fan-out. *)

open Crn

let counter2 () = Designs.Catalog.build "counter2"

(* A -> B -> C unimolecular chain at large copy number: pure mass-action,
   everything ends up fast; the hybrid endpoint must track the ODE. *)
let chain_network a0 =
  let net = Network.create () in
  let a = Network.species net "A"
  and b = Network.species net "B"
  and c = Network.species net "C" in
  Network.set_init net a a0;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (b, 1) ] ~products:[ (c, 1) ] Rates.slow);
  net

(* X -> Y decay started above the population threshold: the run begins
   deterministic and must hand back to the exact simulator when X drains
   below threshold. *)
let decay_network x0 =
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.set_init net x x0;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  net

(* a populous fast flip-flop (continuous) next to a small fast-draining
   discrete pool: the slow channel's expected events per substep is large,
   which forces the tau gear *)
let tau_network () =
  let net = Network.create () in
  let x = Network.species net "X"
  and y = Network.species net "Y"
  and f = Network.species net "F"
  and f' = Network.species net "F'" in
  Network.set_init net x 500.;
  Network.set_init net f 100_000.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ]
       (Rates.slow_scaled 10.));
  Network.add_reaction net
    (Reaction.make ~reactants:[ (f, 1) ] ~products:[ (f', 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (f', 1) ] ~products:[ (f, 1) ] Rates.slow);
  net

let check_trace_valid ?(conserve = []) ?(rtol = 1e-3) trace =
  let n = Ode.Trace.length trace in
  for i = 0 to n - 1 do
    let st = Ode.Trace.state_at_index trace i in
    Array.iteri
      (fun s v ->
        if v < 0. then
          Alcotest.failf "negative population %g for species %d at sample %d" v
            s i)
      st;
    List.iter
      (fun (species, total) ->
        let sum = List.fold_left (fun acc s -> acc +. st.(s)) 0. species in
        if Float.abs (sum -. total) > rtol *. Float.max total 1. then
          Alcotest.failf "conservation violated at sample %d: %g <> %g" i sum
            total)
      conserve
  done

(* ------------------------------------------- bitwise Gillespie fallback *)

let test_discrete_bitwise_gillespie () =
  (* the catalog designs at default masses stay below the default
     population threshold, so the hybrid engine must never leave discrete
     mode — and must then reproduce pure Gillespie bit for bit *)
  let net = counter2 () in
  let g = Ssa.Gillespie.run ~seed:3L ~t1:20. net in
  let h = Hybrid.Engine.run ~seed:3L ~t1:20. net in
  Alcotest.(check (array (float 0.))) "same final" g.final h.final;
  Alcotest.(check int) "same event count" g.n_events h.n_events;
  Alcotest.(check int) "no mode switches" 0 h.stats.n_mode_switches;
  Alcotest.(check int) "no ODE steps" 0 h.stats.n_ode_steps;
  Alcotest.(check bool) "checkpoints ran" true (h.stats.n_repartitions > 0);
  Alcotest.(check (array (float 0.)))
    "same sample times"
    (Ode.Trace.times g.trace)
    (Ode.Trace.times h.trace);
  for i = 0 to Ode.Trace.length g.trace - 1 do
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "same state at sample %d" i)
      (Ode.Trace.state_at_index g.trace i)
      (Ode.Trace.state_at_index h.trace i)
  done

(* ------------------------------------------------- ODE agreement (fast) *)

let test_fast_chain_matches_ode () =
  let a0 = 1_000_000. in
  let net = chain_network a0 in
  let ode = Ode.Driver.final_state ~t1:1. net in
  let h =
    Hybrid.Engine.run ~seed:11L ~pop_threshold:100. ~prop_threshold:10. ~t1:1.
      net
  in
  Alcotest.(check bool) "integrated, not simulated" true
    (h.stats.n_ode_steps > 0);
  Alcotest.(check bool) "entered mixed mode" true
    (h.stats.n_mode_switches >= 1);
  (* B crosses the thresholds upward mid-run: both chain reactions end fast *)
  Alcotest.(check int) "both reactions fast at the end" 2 h.stats.final_n_fast;
  for s = 0 to 2 do
    let err = Float.abs (h.final.(s) -. ode.(s)) in
    Alcotest.(check bool)
      (Printf.sprintf "species %d within 1%% of ODE (err %g)" s err)
      true
      (err < 0.01 *. a0)
  done;
  check_trace_valid ~conserve:[ ([ 0; 1; 2 ], a0) ] h.trace

(* ------------------------------------------- threshold crossing downward *)

let test_crossing_downward_hands_back_to_ssa () =
  let x0 = 3000. in
  let net = decay_network x0 in
  let h =
    Hybrid.Engine.run ~seed:7L ~pop_threshold:500. ~prop_threshold:100. ~t1:8.
      net
  in
  (* starts deterministic (X = 3000 is above both thresholds), must demote
     and finish exact once X drains below 500 *)
  Alcotest.(check bool) "entered mixed mode" true
    (h.stats.n_mode_switches >= 2);
  Alcotest.(check bool) "finished in discrete mode" true
    (h.stats.final_n_fast = 0);
  Alcotest.(check bool) "exact events after the handback" true
    (h.stats.n_ssa_events > 0);
  (* rounding at the mode switch may move at most a molecule *)
  Alcotest.(check bool) "mass conserved within rounding" true
    (Float.abs (h.final.(0) +. h.final.(1) -. x0) <= 2.);
  Alcotest.(check bool) "decay essentially complete" true (h.final.(0) < 30.);
  check_trace_valid ~conserve:[ ([ 0; 1 ], x0) ] ~rtol:1e-3 h.trace

(* ------------------------------------------------------------- tau gear *)

let test_tau_gear_bulk_fires () =
  let net = tau_network () in
  let h =
    Hybrid.Engine.run ~seed:5L ~pop_threshold:1000. ~prop_threshold:1000.
      ~t1:2. net
  in
  Alcotest.(check bool) "tau substeps taken" true (h.stats.n_tau_leaps > 0);
  Alcotest.(check bool) "tau events fired" true (h.stats.n_tau_events > 0);
  (* X and Y are untouched by the fast partition: they stay integer and
     exactly conserved through the bulk firings *)
  Alcotest.(check (float 0.)) "X + Y exact" 500. (h.final.(0) +. h.final.(1));
  Alcotest.(check bool) "X drained" true (h.final.(0) < 10.);
  let ff = h.final.(2) +. h.final.(3) in
  Alcotest.(check bool) "F + F' conserved by the ODE" true
    (Float.abs (ff -. 100_000.) < 1.);
  check_trace_valid ~conserve:[ ([ 0; 1 ], 500.) ] h.trace

(* ------------------------------------------------- ensemble determinism *)

let test_ensemble_deterministic_across_jobs_and_chunks () =
  let net = decay_network 3000. in
  let model = Hybrid.Engine.compile_model Rates.default_env net in
  let finals ~jobs ~chunk =
    Ssa.Ensemble.map_with ~jobs ~chunk ~seed:9L
      ~init_worker:(fun () -> Hybrid.Engine.make_arena model)
      ~runs:8
      (fun arena _ s ->
        let r =
          Hybrid.Engine.run ~seed:s ~pop_threshold:500. ~prop_threshold:100.
            ~arena ~t1:4. net
        in
        r.final)
  in
  let reference = finals ~jobs:1 ~chunk:1 in
  List.iter
    (fun (jobs, chunk) ->
      let got = finals ~jobs ~chunk in
      for i = 0 to 7 do
        Alcotest.(check (array (float 0.)))
          (Printf.sprintf "run %d identical at jobs=%d chunk=%d" i jobs chunk)
          reference.(i) got.(i)
      done)
    [ (2, 1); (2, 3); (3, 2); (4, 8) ]

let test_mean_final_deterministic () =
  let net = counter2 () in
  let m1, s1 = Hybrid.Engine.mean_final ~runs:6 ~jobs:1 ~t1:10. net "ctr.bit0" in
  let m2, s2 = Hybrid.Engine.mean_final ~runs:6 ~jobs:3 ~t1:10. net "ctr.bit0" in
  Alcotest.(check (float 0.)) "mean independent of jobs" m1 m2;
  Alcotest.(check (float 0.)) "std independent of jobs" s1 s2

(* --------------------------------------------------------- error paths *)

let test_budget_error () =
  let net = counter2 () in
  match Hybrid.Engine.run_result ~max_events:100 ~t1:60. net with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error (Hybrid.Engine.Max_events_exceeded { max_events; _ }) ->
      Alcotest.(check int) "budget echoed" 100 max_events

let test_cancellation () =
  let net = chain_network 1_000_000. in
  Alcotest.check_raises "cancelled" Numeric.Cancel.Cancelled (fun () ->
      ignore
        (Hybrid.Engine.run
           ~cancel:(Numeric.Cancel.of_fun (fun () -> true))
           ~pop_threshold:100. ~prop_threshold:10. ~t1:1. net))

let test_invalid_args () =
  let net = counter2 () in
  List.iter
    (fun (msg, f) ->
      Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
          ignore (f ())))
    [
      ( "Hybrid.run: t1 must be positive",
        fun () -> Hybrid.Engine.run ~t1:0. net );
      ( "Hybrid.run: pop_threshold must be positive",
        fun () -> Hybrid.Engine.run ~pop_threshold:0. ~t1:1. net );
      ( "Hybrid.run: prop_threshold must be positive",
        fun () -> Hybrid.Engine.run ~prop_threshold:(-1.) ~t1:1. net );
      ( "Hybrid.run: repartition_every must be >= 1",
        fun () -> Hybrid.Engine.run ~repartition_every:0 ~t1:1. net );
      ( "Hybrid.run: epsilon must be in (0, 1)",
        fun () -> Hybrid.Engine.run ~epsilon:1.5 ~t1:1. net );
    ]

(* ------------------------------------------------------- property tests *)

let qcheck_tests =
  let open QCheck in
  [
    (* satellite property: below the population threshold the hybrid
       engine IS Gillespie, for every seed *)
    Test.make
      ~name:"hybrid: bitwise-identical to Gillespie below pop threshold"
      ~count:15
      (make Gen.(int_range 1 1_000_000))
      (fun seed ->
        let seed = Int64.of_int seed in
        let net = counter2 () in
        let g = Ssa.Gillespie.run ~seed ~t1:8. net in
        let h = Hybrid.Engine.run ~seed ~t1:8. net in
        g.final = h.final && g.n_events = h.n_events
        && h.stats.n_mode_switches = 0);
    Test.make
      ~name:"hybrid: fast mass-action endpoint tracks the ODE for random A0"
      ~count:10
      (make Gen.(pair (int_range 200_000 2_000_000) (int_range 1 10_000)))
      (fun (a0, seed) ->
        let a0 = float_of_int a0 in
        let net = chain_network a0 in
        let ode = Ode.Driver.final_state ~t1:1. net in
        let h =
          Hybrid.Engine.run ~seed:(Int64.of_int seed) ~pop_threshold:100.
            ~prop_threshold:10. ~t1:1. net
        in
        let ok = ref true in
        for s = 0 to 2 do
          if Float.abs (h.final.(s) -. ode.(s)) > 0.01 *. a0 then ok := false
        done;
        !ok);
    Test.make
      ~name:"hybrid: crossing runs conserve mass and stay non-negative"
      ~count:15
      (make Gen.(pair (int_range 600 5000) (int_range 1 10_000)))
      (fun (x0, seed) ->
        let x0 = float_of_int x0 in
        let net = decay_network x0 in
        let h =
          Hybrid.Engine.run ~seed:(Int64.of_int seed) ~pop_threshold:500.
            ~prop_threshold:100. ~t1:6. net
        in
        let ok = ref (Float.abs (h.final.(0) +. h.final.(1) -. x0) <= 2.) in
        for i = 0 to Ode.Trace.length h.trace - 1 do
          Array.iter
            (fun v -> if v < 0. then ok := false)
            (Ode.Trace.state_at_index h.trace i)
        done;
        !ok);
  ]

let suite =
  [
    ("discrete mode bitwise = Gillespie", `Quick, test_discrete_bitwise_gillespie);
    ("fast chain matches ODE", `Quick, test_fast_chain_matches_ode);
    ("crossing down hands back to SSA", `Quick, test_crossing_downward_hands_back_to_ssa);
    ("tau gear bulk-fires", `Quick, test_tau_gear_bulk_fires);
    ("ensemble deterministic across jobs/chunks", `Quick, test_ensemble_deterministic_across_jobs_and_chunks);
    ("mean_final deterministic", `Quick, test_mean_final_deterministic);
    ("work budget error", `Quick, test_budget_error);
    ("cancellation", `Quick, test_cancellation);
    ("invalid arguments", `Quick, test_invalid_args);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
