(* The fault-injection offensive: the Fault shim itself, property/fuzz
   suites over the wire decoder and JSON codec, the client's retry /
   deadline policy against a scripted misbehaving peer, and a live
   daemon driven through every fault class it claims to degrade
   gracefully under — asserting each time that the daemon stays alive,
   answers with a structured error (or closes cleanly), and increments
   the matching stats counter.

   Every randomized suite derives all its randomness from a generated
   integer seed via Numeric.Rng, so the counterexample qcheck prints IS
   the replay seed. *)

module J = Service.Json
module W = Service.Wire
module F = Service.Fault
module C = Service.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ----------------------------------------------------- the Fault shim *)

(* Each unit test runs the shim over a Unix pipe: real descriptors, real
   partial-transfer semantics, no daemon in the way. *)
let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with _ -> ());
      try Unix.close w with _ -> ())
    (fun () -> f r w)

let rec read_fully t buf off len =
  if len = 0 then true
  else
    let n = t.W.read buf off len in
    if n = 0 then false else read_fully t buf (off + n) (len - n)

let test_fault_short () =
  with_pipe (fun r w ->
      let t = F.wrap ~on_write:[ F.Short { at = 0; cap = 3 } ] (W.of_fd w) in
      let buf = Bytes.of_string "0123456789" in
      let n1 = t.W.write buf 0 10 in
      check_int "first write torn to the cap" 3 n1;
      (* the Short retires with the call that hit it *)
      let n2 = t.W.write buf n1 (10 - n1) in
      check_int "second write unclipped" 7 n2;
      let got = Bytes.create 10 in
      check_bool "bytes intact" true
        (read_fully (W.of_fd r) got 0 10 && Bytes.to_string got = "0123456789"))

let test_fault_chop () =
  with_pipe (fun r w ->
      let payload = String.init 500 (fun i -> Char.chr (i mod 256)) in
      (* every write capped at 7 bytes, every read capped at 3: the
         framing layer must reassemble regardless (the whole frame fits
         in the pipe buffer, so writing first cannot block) *)
      W.write_frame_t (F.chop 7 (W.of_fd w)) payload;
      let got = W.read_frame_t (F.chop 3 (W.of_fd r)) in
      check_bool "frame reassembled from 3-byte reads" true (got = Some payload);
      check_bool "chop rejects cap < 1" true
        (match F.chop 0 (W.of_fd r) with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_fault_corrupt () =
  with_pipe (fun r w ->
      let t = F.wrap ~on_write:[ F.Corrupt { at = 2; xor = 0x20 } ] (W.of_fd w) in
      let buf = Bytes.of_string "abcde" in
      let n = t.W.write buf 0 5 in
      check_int "whole span transferred" 5 n;
      check_string "caller's buffer untouched" "abcde" (Bytes.to_string buf);
      let got = Bytes.create 5 in
      ignore (read_fully (W.of_fd r) got 0 5);
      check_string "exactly byte 2 flipped" "abCde" (Bytes.to_string got));
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "abcde" 0 5);
      let t = F.wrap ~on_read:[ F.Corrupt { at = 0; xor = 0x01 } ] (W.of_fd r) in
      let got = Bytes.create 5 in
      ignore (read_fully t got 0 5);
      check_string "read-side corruption" "`bcde" (Bytes.to_string got))

let test_fault_reset () =
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "abcdef" 0 6);
      let t = F.wrap ~on_read:[ F.Reset { at = 4 } ] (W.of_fd r) in
      let got = Bytes.create 16 in
      let n = t.W.read got 0 16 in
      check_int "read clipped at the reset offset" 4 n;
      check_bool "next read raises ECONNRESET" true
        (match t.W.read got 0 16 with
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
        | _ -> false))

let test_fault_stall () =
  with_pipe (fun _r w ->
      let t = F.wrap ~on_write:[ F.Stall { at = 0; ms = 40. } ] (W.of_fd w) in
      let t0 = Unix.gettimeofday () in
      ignore (t.W.write (Bytes.of_string "x") 0 1);
      let elapsed = Unix.gettimeofday () -. t0 in
      check_bool
        (Printf.sprintf "stalled >= 30ms (got %.1fms)" (elapsed *. 1000.))
        true (elapsed >= 0.030))

let test_fault_schedule_tools () =
  check_string "empty schedule" "(no faults)" (F.describe []);
  check_string "describe sorts by offset"
    "corrupt@5(xor 0x40), reset@120"
    (F.describe [ F.Reset { at = 120 }; F.Corrupt { at = 5; xor = 0x40 } ]);
  check_bool "short+stall is lossless" true
    (F.lossless [ F.Short { at = 1; cap = 2 }; F.Stall { at = 3; ms = 1. } ]);
  check_bool "reset is not lossless" false
    (F.lossless [ F.Short { at = 1; cap = 2 }; F.Reset { at = 9 } ]);
  check_bool "corrupt is not lossless" false
    (F.lossless [ F.Corrupt { at = 0; xor = 1 } ]);
  (* same seed, same schedule — the replay contract *)
  let sched seed =
    F.describe
      (F.random_schedule ~rng:(Numeric.Rng.create seed) ~len:200 5)
  in
  check_string "same seed replays the schedule" (sched 42L) (sched 42L);
  check_bool "different seeds differ" true (sched 42L <> sched 43L)

let test_fault_lossless_frame_intact () =
  (* a schedule that only tears and delays must deliver the frame
     bit-exactly through the framing layer's own retry loops *)
  with_pipe (fun r w ->
      let payload = String.init 300 (fun i -> Char.chr ((i * 7) mod 256)) in
      let sched =
        [
          F.Short { at = 1; cap = 2 };
          F.Stall { at = 3; ms = 2. };
          F.Short { at = 100; cap = 5 };
          F.Stall { at = 200; ms = 1. };
        ]
      in
      check_bool "schedule is lossless" true (F.lossless sched);
      W.write_frame_t (F.wrap ~on_write:sched (W.of_fd w)) payload;
      check_bool "payload intact through the schedule" true
        (W.read_frame r = Some payload))

(* ------------------------------------- wire decoder / codec properties *)

let bytes_string rng n =
  String.init n (fun _ -> Char.chr (Numeric.Rng.int rng 256))

let frame_of payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

(* arbitrary payloads through the incremental decoder in arbitrary chunk
   splits: the frames must come out bit-exact and in order *)
let decoder_split_prop seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let payloads =
    List.init
      (1 + Numeric.Rng.int rng 4)
      (fun _ -> bytes_string rng (Numeric.Rng.int rng 400))
  in
  let stream = String.concat "" (List.map frame_of payloads) in
  let d = W.decoder () in
  let collected = ref [] in
  let pos = ref 0 in
  let n = String.length stream in
  while !pos < n do
    let chunk = min (1 + Numeric.Rng.int rng 97) (n - !pos) in
    W.feed d (Bytes.of_string (String.sub stream !pos chunk)) chunk;
    pos := !pos + chunk;
    let rec drain () =
      match W.next_frame d with
      | Some f ->
          collected := f :: !collected;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  List.rev !collected = payloads && W.buffered d = 0

(* a random single-byte flip anywhere in a valid stream must produce
   frames, Framing_error or Oversized_frame — never any other exception,
   never a crash, never a huge allocation *)
let decoder_mutation_prop seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let payloads =
    List.init
      (1 + Numeric.Rng.int rng 2)
      (fun _ -> bytes_string rng (Numeric.Rng.int rng 200))
  in
  let stream = Bytes.of_string (String.concat "" (List.map frame_of payloads)) in
  let at = Numeric.Rng.int rng (Bytes.length stream) in
  let xor = 1 + Numeric.Rng.int rng 255 in
  Bytes.set stream at (Char.chr (Char.code (Bytes.get stream at) lxor xor));
  let d = W.decoder ~max_frame:(1 lsl 20) () in
  match
    W.feed d stream (Bytes.length stream);
    let rec drain n =
      match W.next_frame d with Some _ -> drain (n + 1) | None -> n
    in
    drain 0
  with
  | n -> n <= List.length payloads + 2 (* a shrunk prefix can split a frame *)
  | exception W.Framing_error _ -> true
  | exception W.Oversized_frame _ -> true
  | exception _ -> false

let test_decoder_oversized_before_buffering () =
  (* the limit triggers on the 4 prefix bytes alone — no payload needs to
     arrive, so a hostile prefix never makes the decoder buffer or
     allocate the claimed length *)
  let d = W.decoder ~max_frame:4096 () in
  let prefix = Bytes.create 4 in
  Bytes.set_int32_be prefix 0 4097l;
  W.feed d prefix 4;
  (match W.next_frame d with
  | exception W.Oversized_frame { len = 4097; limit = 4096 } -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "oversized prefix accepted");
  (* a frame exactly at the limit is fine *)
  let d = W.decoder ~max_frame:8 () in
  let payload = "12345678" in
  let f = frame_of payload in
  W.feed d (Bytes.of_string f) (String.length f);
  check_bool "limit is inclusive" true (W.next_frame d = Some payload);
  (* blocking reader enforces the same limit pre-allocation *)
  with_pipe (fun r w ->
      ignore (Unix.write w prefix 0 4);
      Unix.close w;
      match W.read_frame ~max_frame:4096 r with
      | exception W.Oversized_frame { len = 4097; limit = 4096 } -> ()
      | _ -> Alcotest.fail "blocking reader accepted oversized prefix")

(* ------------------------------------------------- JSON codec offensive *)

let gen_float rng =
  match Numeric.Rng.int rng 12 with
  | 0 -> Float.nan
  | 1 -> infinity
  | 2 -> neg_infinity
  | 3 -> -0.
  | 4 -> 0.
  | 5 | 6 ->
      (* arbitrary bit pattern: subnormals, huge exponents, nan payloads *)
      Int64.float_of_bits (Numeric.Rng.uint64 rng)
  | 7 -> float_of_int (Numeric.Rng.int rng 2_000_000 - 1_000_000)
  | _ ->
      (Numeric.Rng.float rng -. 0.5)
      *. (10. ** float_of_int (Numeric.Rng.int rng 40 - 20))

let gen_string rng =
  let long = Numeric.Rng.int rng 20 = 0 in
  let n = if long then 500 + Numeric.Rng.int rng 1500 else Numeric.Rng.int rng 40 in
  bytes_string rng n

let rec gen_json depth rng =
  let leaf () =
    match Numeric.Rng.int rng 6 with
    | 0 -> J.Null
    | 1 -> J.Bool (Numeric.Rng.int rng 2 = 0)
    | 2 | 3 -> J.Num (gen_float rng)
    | _ -> J.Str (gen_string rng)
  in
  if depth = 0 then leaf ()
  else
    match Numeric.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 -> leaf ()
    | 5 | 6 ->
        J.List
          (List.init (Numeric.Rng.int rng 5) (fun _ -> gen_json (depth - 1) rng))
    | 7 ->
        (* a deep skinny spine: the recursive parser must take it *)
        let rec nest k = if k = 0 then leaf () else J.List [ nest (k - 1) ] in
        nest (20 + Numeric.Rng.int rng 120)
    | _ ->
        J.Obj
          (List.init (Numeric.Rng.int rng 5) (fun i ->
               (Printf.sprintf "k%d_%s" i (gen_string rng), gen_json (depth - 1) rng)))

(* bit-exact structural equality: floats compare by bit pattern (so -0.0
   and 0.0 are distinct) with all NaNs equal (the wire has one NaN token) *)
let rec json_equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Num x, J.Num y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
      || (Float.is_nan x && Float.is_nan y)
  | J.Str x, J.Str y -> String.equal x y
  | J.List xs, J.List ys -> (
      try List.for_all2 json_equal xs ys with Invalid_argument _ -> false)
  | J.Obj xs, J.Obj ys -> (
      try
        List.for_all2
          (fun (k, v) (k', v') -> String.equal k k' && json_equal v v')
          xs ys
      with Invalid_argument _ -> false)
  | _ -> false

let json_roundtrip_prop seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let v = gen_json 5 rng in
  let once = J.of_string (J.to_string v) in
  (* bit-exact, and printing is a fixed point after one decode *)
  json_equal v once && String.equal (J.to_string v) (J.to_string once)

(* every proper prefix of a bracketed value is malformed, and so is any
   non-whitespace trailing garbage after a complete value *)
let json_reject_prop seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let v =
    if Numeric.Rng.int rng 2 = 0 then J.List [ gen_json 3 rng ]
    else J.Obj [ ("k", gen_json 3 rng) ]
  in
  let s = J.to_string v in
  let rejects str =
    match J.of_string str with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  let cut = 1 + Numeric.Rng.int rng (String.length s - 1) in
  rejects (String.sub s 0 cut)
  && List.for_all
       (fun suffix -> rejects (s ^ suffix))
       [ "x"; "]"; "}"; " 1"; "{}"; "null" ]

(* ---------------------------- client policy against a scripted peer *)

let tmp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mrsc-fault-%s-%d.sock" tag (Unix.getpid ()))

(* A scripted listener: [script fd] owns one freshly accepted
   connection; it is called [conns] times, then the listener closes. *)
let with_fake_peer tag ~conns script f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = tmp_sock tag in
  (try Unix.unlink path with _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  let accepted = Atomic.make 0 in
  let stop = Atomic.make false in
  (* a non-blocking accept loop: closing a listener another domain is
     blocked on does not reliably wake it, so the acceptor polls and a
     stop flag ends it even when fewer than [conns] connections arrive
     (which is itself an assertion in the no-retry tests) *)
  Unix.set_nonblock lfd;
  let server =
    Domain.spawn (fun () ->
        let i = ref 1 in
        while !i <= conns && not (Atomic.get stop) do
          match Unix.accept lfd with
          | fd, _ ->
              Unix.clear_nonblock fd;
              Atomic.incr accepted;
              (try script !i fd with _ -> ());
              (try Unix.close fd with _ -> ());
              incr i
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              Unix.sleepf 0.005
          | exception Unix.Unix_error _ -> i := conns + 1
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server;
      (try Unix.close lfd with _ -> ());
      try Unix.unlink path with _ -> ())
    (fun () -> f (Service.Addr.Unix_sock path) accepted)

let ping = J.Obj [ ("op", J.str "ping") ]

let ok_ping_response =
  J.to_string
    (J.Obj
       [ ("ok", J.Bool true); ("op", J.str "ping"); ("result", J.Obj []) ])

let test_client_retries_reset_before_response () =
  (* first connection: the peer hangs up with zero response bytes (the
     retryable case); second connection: a proper answer. A client with
     retries must succeed; the peer must have seen exactly 2 conns. *)
  with_fake_peer "retry" ~conns:2
    (fun i fd ->
      match W.read_frame fd with
      | Some _ when i = 1 -> () (* close without responding *)
      | Some _ -> W.write_frame fd ok_ping_response
      | None -> ())
    (fun addr accepted ->
      let c = C.connect ~retries:3 ~retry_budget_ms:2000. ~retry_seed:7L addr in
      let resp = C.request c ping in
      C.close c;
      check_bool "retried to success" true resp.C.ok;
      check_int "exactly one retry" 2 (Atomic.get accepted))

let test_client_no_retry_mid_response () =
  (* the peer dies after sending a partial response: re-sending could
     execute the request twice, so the client must NOT retry *)
  with_fake_peer "midframe" ~conns:2
    (fun _ fd ->
      ignore (W.read_frame fd);
      let torn = Bytes.make 14 'x' in
      Bytes.set_int32_be torn 0 100l (* claims 100 bytes, sends 10 *);
      ignore (Unix.write fd torn 0 14))
    (fun addr accepted ->
      let c = C.connect ~retries:5 ~retry_budget_ms:2000. addr in
      (match C.call c ping with
      | exception W.Framing_error _ -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "torn response accepted");
      C.close c;
      check_int "no second attempt" 1 (Atomic.get accepted))

let test_client_read_deadline () =
  (* the peer accepts, reads the request, and never answers: the read
     deadline must fire instead of hanging forever, and must not retry *)
  with_fake_peer "deadline" ~conns:1
    (fun _ fd ->
      ignore (W.read_frame fd);
      Unix.sleepf 1.5)
    (fun addr accepted ->
      let c = C.connect ~retries:3 ~read_deadline_ms:200. addr in
      let t0 = Unix.gettimeofday () in
      (match C.call c ping with
      | exception C.Timeout 200. -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "silent peer produced a response");
      let elapsed = Unix.gettimeofday () -. t0 in
      C.close c;
      check_bool
        (Printf.sprintf "timed out promptly (%.0fms)" (elapsed *. 1000.))
        true
        (elapsed >= 0.15 && elapsed < 1.2);
      check_int "timeout is not retried" 1 (Atomic.get accepted))

let test_client_retries_exhausted () =
  let path = tmp_sock "nobody" in
  (try Unix.unlink path with _ -> ());
  let addr = Service.Addr.Unix_sock path in
  (* retries > 0: the bounded policy wraps the last failure *)
  (match C.connect ~retries:2 ~retry_budget_ms:400. addr with
  | exception C.Retries_exhausted { attempts = 3; last = Unix.Unix_error _ } ->
      ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "connect to nobody succeeded");
  (* retries = 0 (the default): the raw error propagates unchanged *)
  match C.connect addr with
  | exception Unix.Unix_error _ -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "connect to nobody succeeded"

(* --------------------------------------------------- live daemon tests *)

(* A live in-process daemon with deliberately tight limits, plus one
   well-behaved control client used to prove the daemon outlives every
   attack. *)
let with_server ?(tag = "live") ?(max_frame = 64 * 1024)
    ?(read_deadline_ms = 400.) ?(idle_timeout_ms = 60_000.) ?(max_conns = 256)
    f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = tmp_sock tag in
  (try Unix.unlink path with _ -> ());
  let address = Service.Addr.Unix_sock path in
  let stop = Atomic.make false in
  let config =
    {
      (Service.Server.default_config address) with
      Service.Server.jobs = 1;
      max_frame;
      read_deadline_ms;
      idle_timeout_ms;
      max_conns;
    }
  in
  let server =
    Domain.spawn (fun () ->
        Service.Server.run ~stop:(fun () -> Atomic.get stop) config)
  in
  let rec wait_ready tries =
    match C.connect address with
    | client -> client
    | exception Unix.Unix_error _ ->
        if tries = 0 then Alcotest.fail "server did not come up";
        Unix.sleepf 0.02;
        wait_ready (tries - 1)
  in
  let control = wait_ready 250 in
  Fun.protect
    ~finally:(fun () ->
      C.close control;
      Atomic.set stop true;
      Domain.join server)
    (fun () -> f ~address ~control)

let with_raw address f =
  let fd = Service.Addr.connect address in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () -> f fd)

let raw_response fd =
  match W.read_frame fd with
  | Some payload -> C.response_of_json (J.of_string payload)
  | None -> Alcotest.fail "connection closed without a response"

let raw_request fd req =
  W.write_frame fd (J.to_string req);
  raw_response fd

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let error_code (resp : C.response) =
  match resp.C.error with
  | Some err -> Service.Error.code err
  | None -> Alcotest.fail "expected a structured error"

let assert_alive what client =
  let resp = C.request client ping in
  if not resp.C.ok then Alcotest.failf "daemon dead after %s" what

(* read a counter out of the stats op over a throwaway connection, so the
   control client's own traffic pattern stays irrelevant *)
let counter address key =
  with_raw address (fun fd ->
      let resp = raw_request fd (J.Obj [ ("op", J.str "stats") ]) in
      match Option.bind resp.C.result (J.member key) with
      | Some v -> Option.value ~default:(-1) (J.to_int v)
      | None -> Alcotest.failf "stats has no %S" key)

let await what pred =
  let rec go tries =
    if pred () then ()
    else if tries = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go (tries - 1)
    end
  in
  go 100

let test_live_short_write () =
  with_server ~tag:"shortw" (fun ~address ~control ->
      let before = counter address "frames_in" in
      with_raw address (fun fd ->
          (* the request dribbles in through torn 3-byte writes plus a
             scheduled tear and stall: the daemon must reassemble it *)
          let t =
            F.wrap
              ~on_write:
                [ F.Short { at = 1; cap = 2 }; F.Stall { at = 6; ms = 3. } ]
              (F.chop 3 (W.of_fd fd))
          in
          W.write_frame_t t (J.to_string ping);
          let resp = raw_response fd in
          check_bool "torn request answered ok" true resp.C.ok);
      check_bool "frames_in incremented" true
        (counter address "frames_in" > before);
      assert_alive "short writes" control)

let test_live_short_read () =
  with_server ~tag:"shortr" (fun ~address ~control ->
      with_raw address (fun fd ->
          W.write_frame fd (J.to_string ping);
          (* the response arrives 2 bytes at a time on our side *)
          match W.read_frame_t (F.chop 2 (W.of_fd fd)) with
          | Some payload ->
              check_bool "response reassembled from short reads" true
                (C.response_of_json (J.of_string payload)).C.ok
          | None -> Alcotest.fail "no response");
      assert_alive "short reads" control)

let test_live_corrupt_frame () =
  with_server ~tag:"corrupt" (fun ~address ~control ->
      with_raw address (fun fd ->
          (* flip the first payload byte ('{' -> 'z'): the frame decodes,
             the JSON does not — a structured bad_request, and the
             connection survives for the next (clean) request *)
          let t =
            F.wrap ~on_write:[ F.Corrupt { at = 4; xor = 0x01 } ] (W.of_fd fd)
          in
          W.write_frame_t t (J.to_string ping);
          let resp = raw_response fd in
          check_bool "corrupt frame rejected" false resp.C.ok;
          check_string "structured bad_request" "bad_request" (error_code resp);
          let again = raw_request fd ping in
          check_bool "same connection still serves" true again.C.ok);
      assert_alive "a corrupt frame" control)

let test_live_oversized_prefix () =
  with_server ~tag:"oversz" ~max_frame:(64 * 1024)
    (fun ~address ~control ->
      let before = counter address "oversized_frames" in
      with_raw address (fun fd ->
          let prefix = Bytes.create 4 in
          Bytes.set_int32_be prefix 0 (Int32.of_int ((64 * 1024) + 1));
          ignore (Unix.write fd prefix 0 4);
          let resp = raw_response fd in
          check_bool "rejected" false resp.C.ok;
          check_string "structured bad_request" "bad_request" (error_code resp);
          check_bool "message names the limit" true
            (match resp.C.error_message with
            | Some m -> contains m "exceeds"
            | None -> false);
          check_bool "connection closed after rejection" true
            (W.read_frame fd = None));
      check_int "oversized_frames incremented" (before + 1)
        (counter address "oversized_frames");
      assert_alive "an oversized prefix" control)

let test_live_negative_prefix () =
  with_server ~tag:"negpfx" (fun ~address ~control ->
      let before = counter address "framing_errors" in
      with_raw address (fun fd ->
          ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4);
          let resp = raw_response fd in
          check_bool "rejected" false resp.C.ok;
          check_string "structured bad_request" "bad_request" (error_code resp);
          check_bool "connection closed after rejection" true
            (W.read_frame fd = None));
      check_int "framing_errors incremented" (before + 1)
        (counter address "framing_errors");
      assert_alive "a negative prefix" control)

let test_live_dirty_close () =
  with_server ~tag:"dirty" (fun ~address ~control ->
      let before = counter address "dirty_closes" in
      with_raw address (fun fd ->
          (* half a frame, then vanish mid-stream *)
          let torn = Bytes.make 9 'x' in
          Bytes.set_int32_be torn 0 100l;
          ignore (Unix.write fd torn 0 9));
      await "dirty_closes counter" (fun () ->
          counter address "dirty_closes" > before);
      assert_alive "a dirty close" control)

let test_live_stalled_partial_frame () =
  with_server ~tag:"stall" ~read_deadline_ms:300. (fun ~address ~control ->
      let before = counter address "read_timeouts" in
      with_raw address (fun fd ->
          let torn = Bytes.make 9 'x' in
          Bytes.set_int32_be torn 0 50l;
          ignore (Unix.write fd torn 0 9);
          (* ...and now stall: the daemon must kill only this connection,
             with a structured explanation, after its read deadline *)
          let t0 = Unix.gettimeofday () in
          let resp = raw_response fd in
          let elapsed = Unix.gettimeofday () -. t0 in
          check_bool "rejected" false resp.C.ok;
          check_string "structured bad_request" "bad_request" (error_code resp);
          check_bool
            (Printf.sprintf "killed near the deadline (%.0fms)"
               (elapsed *. 1000.))
            true
            (elapsed >= 0.2 && elapsed < 2.);
          check_bool "connection closed" true (W.read_frame fd = None));
      check_int "read_timeouts incremented" (before + 1)
        (counter address "read_timeouts");
      assert_alive "a stalled peer" control)

let test_live_idle_reap () =
  with_server ~tag:"idle" ~idle_timeout_ms:300. (fun ~address ~control:_ ->
      with_raw address (fun fd ->
          let resp = raw_request fd ping in
          check_bool "served before idling" true resp.C.ok;
          (* go quiet; the daemon reaps us (clean close, no error frame) *)
          let t0 = Unix.gettimeofday () in
          check_bool "idle connection closed cleanly" true
            (W.read_frame fd = None);
          let elapsed = Unix.gettimeofday () -. t0 in
          check_bool
            (Printf.sprintf "reaped near the timeout (%.0fms)"
               (elapsed *. 1000.))
            true
            (elapsed >= 0.2 && elapsed < 3.));
      (* the control client may have been reaped too (it idled as long);
         prove liveness and the counter over a fresh connection *)
      check_bool "idle_reaped incremented" true
        (counter address "idle_reaped" >= 1);
      with_raw address (fun fd ->
          check_bool "daemon alive after idle reaping" true
            (raw_request fd ping).C.ok))

let test_live_connection_limit () =
  with_server ~tag:"cap" ~max_conns:3 (fun ~address ~control ->
      let before = counter address "conns_rejected" in
      (* the control client plus two raw connections fill the cap; a ping
         on each proves the daemon has accepted them *)
      with_raw address (fun fd1 ->
          with_raw address (fun fd2 ->
              check_bool "conn 2 served" true (raw_request fd1 ping).C.ok;
              check_bool "conn 3 served" true (raw_request fd2 ping).C.ok;
              (* the 4th gets a structured connection_limit, then close *)
              with_raw address (fun fd3 ->
                  let resp = raw_response fd3 in
                  check_bool "over-cap conn rejected" false resp.C.ok;
                  (match resp.C.error with
                  | Some (Service.Error.Connection_limit { max_conns = 3 }) ->
                      ()
                  | Some err ->
                      Alcotest.failf "expected connection_limit, got %s"
                        (Service.Error.code err)
                  | None -> Alcotest.fail "no structured error");
                  check_bool "rejected conn closed" true
                    (W.read_frame fd3 = None));
              (* the survivors keep working *)
              check_bool "existing conns unaffected" true
                (raw_request fd1 ping).C.ok;
              assert_alive "the connection cap" control));
      (* fd1..fd3 are closed now, but the reaper frees the slots on its
         own tick — tolerate transient rejections of the stats conn *)
      await "conns_rejected counter" (fun () ->
          match counter address "conns_rejected" with
          | n -> n > before
          | exception _ -> false))

(* randomized live schedules: any schedule may tear, corrupt, reset or
   stall the request — the daemon must survive every one of them, and a
   lossless schedule must still be served. Seed and schedule are printed
   on failure. *)
let string_of_outcome = function
  | `Ok -> "ok"
  | `Structured_error -> "structured error"
  | `Clean_close -> "clean close"
  | `Write_died -> "write died"
  | `Still_pending -> "still pending after 3 s"
  | `Reset -> "read reset"
  | `Torn_response -> "torn response"

let live_schedule_prop ~address ~control seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let req = J.to_string ping in
  let len = 4 + String.length req in
  let sched = F.random_schedule ~rng ~len (Numeric.Rng.int rng 3) in
  let run_once () =
    with_raw address (fun fd ->
        (* never hang, whatever the schedule did to the stream *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 3.0;
        let t = F.wrap ~on_write:sched (W.of_fd fd) in
        match W.write_frame_t t req with
        | exception Unix.Unix_error _ -> `Write_died
        | () -> (
            match W.read_frame fd with
            | Some payload ->
                if (C.response_of_json (J.of_string payload)).C.ok then `Ok
                else `Structured_error
            | None -> `Clean_close
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                `Still_pending
            | exception Unix.Unix_error _ -> `Reset
            | exception W.Framing_error _ -> `Torn_response))
  in
  let outcome = run_once () in
  (match C.request control ping with
  | resp when resp.C.ok -> ()
  | _ ->
      QCheck.Test.fail_reportf "daemon dead after seed %d: %s" seed
        (F.describe sched)
  | exception e ->
      QCheck.Test.fail_reportf "daemon dead after seed %d: %s (%s)" seed
        (F.describe sched) (Printexc.to_string e));
  (if F.lossless sched && outcome <> `Ok then
     (* a lossless schedule must be served. One retry (same schedule,
        fresh connection) absorbs OS scheduling hiccups that stall the
        client past the daemon's partial-frame deadline — a genuine
        protocol bug is deterministic and fails both attempts. *)
     let again = run_once () in
     if again <> `Ok then
       QCheck.Test.fail_reportf
         "lossless schedule not served (seed %d: %s -> %s, retry -> %s)" seed
         (F.describe sched) (string_of_outcome outcome)
         (string_of_outcome again));
  true

let test_live_random_schedules () =
  with_server ~tag:"rand" ~max_frame:4096 ~read_deadline_ms:400.
    (fun ~address ~control ->
      let frames0 = counter address "frames_in" in
      (match Sys.getenv_opt "FAULT_REPLAY_SEED" with
      | Some s ->
          (* replay one printed counterexample, many times, against a
             fresh daemon: the schedule is a pure function of the seed *)
          let seed = int_of_string s in
          for _ = 1 to 100 do
            ignore (live_schedule_prop ~address ~control seed)
          done
      | None ->
          QCheck.Test.check_exn
            (QCheck.Test.make ~count:1000
               ~name:
                 "live random fault schedules (the printed int is the seed)"
               QCheck.(make ~print:string_of_int Gen.(int_range 0 1_000_000))
               (live_schedule_prop ~address ~control)));
      (* the offensive actually reached the daemon *)
      check_bool "daemon decoded frames during the offensive" true
        (counter address "frames_in" > frames0);
      assert_alive "the randomized offensive" control)

(* ------------------------------------------------------------- suite *)

let qcheck ~count name prop =
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck.Test.make ~count ~name
       QCheck.(make ~print:string_of_int Gen.(int_range 0 1_000_000))
       prop)

let suite =
  [
    Alcotest.test_case "fault: short write" `Quick test_fault_short;
    Alcotest.test_case "fault: chop reassembly" `Quick test_fault_chop;
    Alcotest.test_case "fault: corrupt one byte" `Quick test_fault_corrupt;
    Alcotest.test_case "fault: reset at offset" `Quick test_fault_reset;
    Alcotest.test_case "fault: stall delays" `Quick test_fault_stall;
    Alcotest.test_case "fault: describe/lossless/replay" `Quick
      test_fault_schedule_tools;
    Alcotest.test_case "fault: lossless schedule keeps frames intact" `Quick
      test_fault_lossless_frame_intact;
    Alcotest.test_case "wire: oversized prefix pre-allocation" `Quick
      test_decoder_oversized_before_buffering;
    qcheck ~count:1000 "wire: decoder invariant under arbitrary splits"
      decoder_split_prop;
    qcheck ~count:1000 "wire: single-byte mutation never crashes the decoder"
      decoder_mutation_prop;
    qcheck ~count:1000 "json: bit-exact roundtrip (nan/inf/-0/deep/long)"
      json_roundtrip_prop;
    qcheck ~count:1000 "json: rejects truncation and trailing garbage"
      json_reject_prop;
    Alcotest.test_case "client: retries reset-before-response" `Quick
      test_client_retries_reset_before_response;
    Alcotest.test_case "client: never retries mid-response" `Quick
      test_client_no_retry_mid_response;
    Alcotest.test_case "client: read deadline fires" `Quick
      test_client_read_deadline;
    Alcotest.test_case "client: bounded retries exhaust" `Quick
      test_client_retries_exhausted;
    Alcotest.test_case "daemon: short writes reassemble" `Quick
      test_live_short_write;
    Alcotest.test_case "daemon: short reads reassemble" `Quick
      test_live_short_read;
    Alcotest.test_case "daemon: corrupt frame -> structured error" `Quick
      test_live_corrupt_frame;
    Alcotest.test_case "daemon: oversized prefix -> error + close" `Quick
      test_live_oversized_prefix;
    Alcotest.test_case "daemon: negative prefix -> error + close" `Quick
      test_live_negative_prefix;
    Alcotest.test_case "daemon: dirty close counted, daemon survives" `Quick
      test_live_dirty_close;
    Alcotest.test_case "daemon: stalled partial frame killed on deadline"
      `Quick test_live_stalled_partial_frame;
    Alcotest.test_case "daemon: idle connection reaped" `Quick
      test_live_idle_reap;
    Alcotest.test_case "daemon: connection cap -> structured rejection" `Quick
      test_live_connection_limit;
    Alcotest.test_case "daemon: 1000 random fault schedules" `Slow
      test_live_random_schedules;
  ]
