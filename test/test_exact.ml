(* The exact-arithmetic kernel: bignums, rationals, fraction-free
   elimination — and the property that anchors the whole tier: the
   exact conservation basis agrees with the float path on random
   networks. *)

open Exact

let zt = Alcotest.testable (Fmt.of_to_string Z.to_string) Z.equal

(* ------------------------------------------------------------------- Z *)

let test_z_basics () =
  Alcotest.check zt "0 + 0" Z.zero (Z.add Z.zero Z.zero);
  Alcotest.check zt "1 + -1" Z.zero (Z.add Z.one Z.minus_one);
  Alcotest.(check string) "min_int survives of_int" (string_of_int min_int)
    (Z.to_string (Z.of_int min_int));
  Alcotest.(check (option int)) "to_int_opt round trip" (Some (-123456))
    (Z.to_int_opt (Z.of_int (-123456)));
  Alcotest.(check int) "compare orders" (-1)
    (Z.compare (Z.of_int 7) (Z.of_int 8))

let test_z_big () =
  (* 30! has 33 digits — far past one limb chain of native products *)
  let fact n =
    let rec go acc k = if k > n then acc else go (Z.mul acc (Z.of_int k)) (k + 1) in
    go Z.one 2
  in
  Alcotest.(check string) "30!" "265252859812191058636308480000000"
    (Z.to_string (fact 30));
  let f20 = fact 20 in
  Alcotest.check zt "30!/20! * 20! = 30!" (fact 30)
    (Z.mul (Z.divexact (fact 30) f20) f20);
  Alcotest.(check string) "of_string inverts to_string"
    (Z.to_string (fact 25))
    (Z.to_string (Z.of_string (Z.to_string (fact 25))))

let test_z_divmod () =
  let q, r = Z.divmod (Z.of_int (-7)) (Z.of_int 2) in
  (* truncated (C) semantics: -7 = -3 * 2 + -1 *)
  Alcotest.check zt "quotient" (Z.of_int (-3)) q;
  Alcotest.check zt "remainder" (Z.of_int (-1)) r;
  Alcotest.check zt "gcd(12, -18)" (Z.of_int 6)
    (Z.gcd (Z.of_int 12) (Z.of_int (-18)));
  Alcotest.check_raises "divexact refuses a remainder"
    (Invalid_argument "Z.divexact: inexact division") (fun () ->
      ignore (Z.divexact (Z.of_int 7) (Z.of_int 2)))

(* ------------------------------------------------------------------- Q *)

let qt = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

let test_q_normalization () =
  Alcotest.check qt "2/4 = 1/2"
    (Q.make (Z.of_int 1) (Z.of_int 2))
    (Q.make (Z.of_int 2) (Z.of_int 4));
  Alcotest.check qt "3/-6 = -1/2"
    (Q.make (Z.of_int (-1)) (Z.of_int 2))
    (Q.make (Z.of_int 3) (Z.of_int (-6)));
  Alcotest.(check string) "integer renders bare" "7"
    (Q.to_string (Q.of_int 7));
  Alcotest.(check string) "fraction renders with slash" "-3/2"
    (Q.to_string (Q.make (Z.of_int 3) (Z.of_int (-2))));
  Alcotest.check qt "1/3 + 1/6 = 1/2"
    (Q.make (Z.of_int 1) (Z.of_int 2))
    (Q.add (Q.make Z.one (Z.of_int 3)) (Q.make Z.one (Z.of_int 6)))

let test_q_of_float () =
  Alcotest.check qt "0.5 is exactly 1/2"
    (Q.make (Z.of_int 1) (Z.of_int 2))
    (Q.of_float 0.5);
  Alcotest.check qt "2.5 is exactly 5/2"
    (Q.make (Z.of_int 5) (Z.of_int 2))
    (Q.of_float 2.5);
  Alcotest.check qt "100.0 is exactly 100" (Q.of_int 100) (Q.of_float 100.);
  (* 0.1 is NOT 1/10 — its exact value has a power-of-two denominator *)
  Alcotest.(check bool) "0.1 is not 1/10" false
    (Q.equal (Q.of_float 0.1) (Q.make Z.one (Z.of_int 10)))

(* ---------------------------------------------------------------- Qmat *)

let test_rank () =
  Alcotest.(check int) "identity" 2 (Qmat.rank [| [| 1; 0 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "dependent rows" 1
    (Qmat.rank [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.(check int) "zero matrix" 0 (Qmat.rank [| [| 0; 0 |]; [| 0; 0 |] |])

let test_nullspace_known () =
  (* x -> y: stoichiometry rows are reactions; kernel is x + y *)
  let basis = Qmat.nullspace ~cols:2 [| [| -1; 1 |] |] in
  Alcotest.(check int) "one vector" 1 (List.length basis);
  let v = List.hd basis in
  Alcotest.check zt "weight x" Z.one v.(0);
  Alcotest.check zt "weight y" Z.one v.(1);
  (* 2x -> y: kernel is x + 2y, primitive integer scaling *)
  let v = List.hd (Qmat.nullspace ~cols:2 [| [| -2; 1 |] |]) in
  Alcotest.check zt "weight x" Z.one v.(0);
  Alcotest.check zt "weight 2y" (Z.of_int 2) v.(1);
  Alcotest.(check int) "no-row matrix: identity basis" 3
    (List.length (Qmat.nullspace ~cols:3 [||]))

(* ------------------------------------------------------------ qcheck *)

let qcheck_tests =
  let open QCheck in
  let z_of_pair (a, b) = (Z.of_int a, Z.of_int b) in
  [
    Test.make ~name:"Z arithmetic agrees with native int" ~count:500
      (pair (int_range (-100000) 100000) (int_range (-100000) 100000))
      (fun (a, b) ->
        let za, zb = z_of_pair (a, b) in
        Z.to_int_opt (Z.add za zb) = Some (a + b)
        && Z.to_int_opt (Z.sub za zb) = Some (a - b)
        && Z.to_int_opt (Z.mul za zb) = Some (a * b)
        && Z.compare za zb = compare a b);
    Test.make ~name:"Z divmod: a = q*b + r with |r| < |b|" ~count:500
      (pair (int_range (-1000000) 1000000) (int_range (-1000) 1000))
      (fun (a, b) ->
        assume (b <> 0);
        let q, r = Z.divmod (Z.of_int a) (Z.of_int b) in
        Z.equal (Z.of_int a) (Z.add (Z.mul q (Z.of_int b)) r)
        && Z.compare (Z.abs r) (Z.abs (Z.of_int b)) < 0
        && (Z.is_zero r || Z.sign r = Z.sign (Z.of_int a)));
    Test.make ~name:"Z to_string matches native rendering" ~count:500
      (int_range min_int max_int)
      (fun a -> Z.to_string (Z.of_int a) = string_of_int a);
    Test.make ~name:"Q.of_float is exact (to_float inverts)" ~count:500
      (float_bound_exclusive 1e9)
      (fun x -> Float.equal (Q.to_float (Q.of_float x)) x);
    Test.make ~name:"Q field laws on rationals" ~count:300
      (pair
         (pair (int_range (-50) 50) (int_range 1 50))
         (pair (int_range (-50) 50) (int_range 1 50)))
      (fun ((an, ad), (bn, bd)) ->
        let a = Q.make (Z.of_int an) (Z.of_int ad)
        and b = Q.make (Z.of_int bn) (Z.of_int bd) in
        Q.equal (Q.add a b) (Q.add b a)
        && Q.equal (Q.sub (Q.add a b) b) a
        && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a));
    Test.make ~name:"nullspace vectors annihilate the matrix" ~count:200
      (list_of_size (Gen.int_range 1 6)
         (list_of_size (Gen.int_range 1 5) (int_range (-3) 3)))
      (fun rows ->
        assume (rows <> []);
        let cols = List.fold_left (fun m r -> max m (List.length r)) 0 rows in
        assume (cols > 0);
        let a =
          Array.of_list
            (List.map
               (fun r ->
                 let row = Array.make cols 0 in
                 List.iteri (fun j x -> row.(j) <- x) r;
                 row)
               rows)
        in
        let basis = Qmat.nullspace ~cols a in
        Qmat.rank a + List.length basis = cols
        && List.for_all
             (fun v ->
               Array.for_all
                 (fun row ->
                   let s = ref Z.zero in
                   Array.iteri
                     (fun j x ->
                       s := Z.add !s (Z.mul (Z.of_int x) v.(j)))
                     row;
                   Z.is_zero !s)
                 a)
             basis);
    (* satellite property: the exact conservation basis and the float
       path agree on random networks — every exact law passes the float
       invariance check, and the basis has the float nullspace's
       dimension *)
    Test.make ~name:"exact and float conservation bases agree" ~count:150
      (list_of_size (Gen.int_range 1 8)
         (pair
            (list_of_size (Gen.int_range 0 3)
               (pair (int_range 0 4) (int_range 1 2)))
            (list_of_size (Gen.int_range 0 3)
               (pair (int_range 0 4) (int_range 1 2)))))
      (fun sides ->
        let net = Crn.Network.create () in
        for i = 0 to 4 do
          ignore (Crn.Network.species net (Printf.sprintf "S%d" i))
        done;
        let added = ref 0 in
        List.iter
          (fun (l, r) ->
            if l <> [] || r <> [] then begin
              incr added;
              Crn.Network.add_reaction net
                (Crn.Reaction.make ~reactants:l ~products:r Crn.Rates.slow)
            end)
          sides;
        assume (!added > 0);
        let exact_laws = Crn.Conservation.laws net in
        let float_laws =
          Numeric.Lu.nullspace
            (Numeric.Mat.transpose (Crn.Network.stoichiometry net))
        in
        List.length exact_laws = List.length float_laws
        && List.for_all
             (fun w -> Crn.Conservation.is_invariant ~eps:1e-9 net w)
             exact_laws);
  ]

let suite =
  [
    ("z basics", `Quick, test_z_basics);
    ("z big values", `Quick, test_z_big);
    ("z divmod and gcd", `Quick, test_z_divmod);
    ("q normalization", `Quick, test_q_normalization);
    ("q of_float exactness", `Quick, test_q_of_float);
    ("qmat rank", `Quick, test_rank);
    ("qmat known kernels", `Quick, test_nullspace_known);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
