(* Tests for the simulation service: JSON/wire plumbing, the
   compiled-model cache, and a live in-process daemon — served results
   must be byte-identical to direct execution, repeated requests must
   hit the cache (and be much cheaper), deadlines must come back as
   structured errors without killing the worker, and the bounded queue
   must refuse overload explicitly. *)

module J = Service.Json

let check_float = Alcotest.(check (float 0.))

(* ------------------------------------------------------------ json *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.num 0.1;
      J.num (-1.5e-300);
      J.int 42;
      J.str "a \"quoted\" line\nwith \t control \x01 bytes";
      J.List [ J.num 1.; J.Obj [ ("k", J.Null) ]; J.List [] ];
      J.Obj [ ("a", J.int 1); ("b", J.List [ J.Bool false ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = J.to_string j in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (J.of_string s = j))
    cases;
  (* %.17g keeps doubles exact through print/parse *)
  let xs = [ 0.1; 1. /. 3.; 1e308; 4.9e-324; 123456789.123456789 ] in
  List.iter
    (fun x ->
      match J.of_string (J.to_string (J.num x)) with
      | J.Num y -> check_float "float exact" x y
      | _ -> Alcotest.fail "not a number")
    xs;
  (* non-finite floats use the Python-json tokens so diverged runs still
     round-trip instead of collapsing to null *)
  Alcotest.(check string) "nan prints" "NaN" (J.to_string (J.num Float.nan));
  Alcotest.(check string) "inf prints" "Infinity" (J.to_string (J.num infinity));
  Alcotest.(check string) "-inf prints" "-Infinity"
    (J.to_string (J.num neg_infinity));
  (match J.of_string "[NaN,Infinity,-Infinity,-1.5]" with
  | J.List [ J.Num a; J.Num b; J.Num c; J.Num d ] ->
      Alcotest.(check bool) "nan parses" true (Float.is_nan a);
      check_float "inf parses" infinity b;
      check_float "-inf parses" neg_infinity c;
      check_float "minus still a number" (-1.5) d
  | _ -> Alcotest.fail "non-finite tokens did not parse")

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("reject " ^ s)
        (J.Parse_error "")
        (fun () ->
          match J.of_string s with
          | exception J.Parse_error _ -> raise (J.Parse_error "")
          | _ -> ()))
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

(* ------------------------------------------------------------ wire *)

let test_wire_decoder () =
  let payload_a = String.make 70000 'x' in
  let payload_b = "{\"op\":\"ping\"}" in
  let frame payload =
    let b = Buffer.create 16 in
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (String.length payload));
    Buffer.add_bytes b len;
    Buffer.add_string b payload;
    Buffer.contents b
  in
  let stream = frame payload_a ^ frame payload_b in
  let d = Service.Wire.decoder () in
  (* feed in awkward chunk sizes crossing both frame boundaries *)
  let collected = ref [] in
  let pos = ref 0 in
  let n = String.length stream in
  while !pos < n do
    let chunk = min 1777 (n - !pos) in
    Service.Wire.feed d (Bytes.of_string (String.sub stream !pos chunk)) chunk;
    pos := !pos + chunk;
    let rec drain () =
      match Service.Wire.next_frame d with
      | Some f ->
          collected := f :: !collected;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  match List.rev !collected with
  | [ a; b ] ->
      Alcotest.(check bool) "first frame" true (a = payload_a);
      Alcotest.(check string) "second frame" payload_b b
  | frames ->
      Alcotest.failf "expected 2 frames, got %d" (List.length frames)

let test_wire_bad_length () =
  let d = Service.Wire.decoder () in
  let bad = Bytes.of_string "\xff\xff\xff\xff" in
  Service.Wire.feed d bad 4;
  Alcotest.(check bool) "oversized length rejected" true
    (match Service.Wire.next_frame d with
    | exception Service.Wire.Framing_error _ -> true
    | _ -> false)

(* ----------------------------------------------------------- errors *)

let test_error_codes () =
  let open Service.Error in
  let cases =
    [
      (Bad_request "x", "bad_request", 2);
      (Parse_error { line = 3; msg = "x" }, "parse_error", 2);
      (Unknown_design "x", "unknown_design", 2);
      (Max_events_exceeded { max_events = 1; t = 0.5 }, "max_events_exceeded", 3);
      (Max_steps_exceeded { max_steps = 1; t = 0.5 }, "max_steps_exceeded", 3);
      (Solver_failure { solver = "s"; msg = "m" }, "solver_failure", 3);
      (Not_compilable "x", "not_compilable", 2);
      (Deadline_exceeded { budget_ms = 10.; checkpoint = None },
       "deadline_exceeded", 4);
      (Overloaded { queue_bound = 4 }, "overloaded", 5);
      (Connection_limit { max_conns = 4 }, "connection_limit", 5);
      ( Validation_failed { issues = [ ("phase_overlap", "d") ] },
        "validation_failed",
        6 );
      (Internal "x", "internal", 70);
    ]
  in
  List.iter
    (fun (err, expect_code, expect_exit) ->
      Alcotest.(check string) "code" expect_code (code err);
      Alcotest.(check int) "exit" expect_exit (exit_code err);
      (* wire roundtrip preserves the classification *)
      Alcotest.(check string) "json roundtrip code" expect_code
        (code (of_json (to_json err))))
    cases;
  (* validation issues survive the wire round trip structurally *)
  (match
     of_json
       (to_json
          (Validation_failed
             { issues = [ ("phase_overlap", "d1"); ("fast_source", "d2") ] }))
   with
  | Validation_failed { issues } ->
      Alcotest.(check (list (pair string string)))
        "issues round trip"
        [ ("phase_overlap", "d1"); ("fast_source", "d2") ]
        issues
  | _ -> Alcotest.fail "validation_failed did not round trip");
  (* the simulation stack's own exceptions classify; others don't *)
  Alcotest.(check bool) "gillespie classified" true
    (match
       of_exn
         (Ssa.Gillespie.Error
            (Ssa.Gillespie.Max_events_exceeded { max_events = 9; t = 1. }))
     with
    | Some (Max_events_exceeded { max_events = 9; _ }) -> true
    | _ -> false);
  Alcotest.(check bool) "solver classified" true
    (match
       of_exn
         (Ode.Solver_error.Error
            { solver = "Dopri5"; reason = Ode.Solver_error.Max_steps 7; t = 2. })
     with
    | Some (Solver_failure { solver = "Dopri5"; _ }) -> true
    | _ -> false);
  Alcotest.(check bool) "unrelated not classified" true
    (of_exn Exit = None)

(* ------------------------------------------------------------ cache *)

let test_model_cache () =
  let cache = Service.Model_cache.create ~capacity:2 () in
  let env = Crn.Rates.default_env in
  let builds = ref 0 in
  let build name () =
    incr builds;
    Designs.Catalog.build name
  in
  let key name = Service.Model_cache.source_key ~spec:("catalog:" ^ name) ~env in
  let _, o1 =
    Service.Model_cache.find_or_compile cache ~source_key:(key "clock3") ~env
      ~build:(build "clock3")
  in
  let e2, o2 =
    Service.Model_cache.find_or_compile cache ~source_key:(key "clock3") ~env
      ~build:(build "clock3")
  in
  Alcotest.(check bool) "first is miss" true (o1 = `Miss);
  Alcotest.(check bool) "second is hit" true (o2 = `Hit);
  Alcotest.(check int) "hit skipped synthesis" 1 !builds;
  Alcotest.(check int) "hit counted" 1 e2.Service.Model_cache.hits;
  (* a different source text synthesizing the identical network (same
     names, same index order, same reactions) dedupes onto the same
     compiled entry; the request still pays synthesis, hence `Miss *)
  let text = Crn.Network.to_string (Designs.Catalog.build "clock3") in
  let variant = "# same network, different source bytes\n" ^ text in
  let load_text t =
    Service.Model_cache.find_or_compile cache
      ~source_key:(Service.Model_cache.source_key ~spec:("text:" ^ t) ~env)
      ~env
      ~build:(fun () -> Crn.Parser.network_of_string t)
  in
  let e3, o3 = load_text text in
  let e3', o3' = load_text variant in
  Alcotest.(check bool) "text sources are misses (paid synthesis)" true
    (o3 = `Miss && o3' = `Miss);
  Alcotest.(check string) "deduped onto the same compiled entry"
    e3.Service.Model_cache.key e3'.Service.Model_cache.key;
  (* and the index-order-invariant fingerprint survives the reparse *)
  Alcotest.(check string) "fingerprint round-trips"
    e2.Service.Model_cache.fingerprint e3.Service.Model_cache.fingerprint;
  (* capacity 2: loading two more designs evicts the LRU *)
  let load name =
    ignore
      (Service.Model_cache.find_or_compile cache ~source_key:(key name) ~env
         ~build:(build name))
  in
  load "counter2";
  load "lfsr3";
  let entries, _, _, evictions = Service.Model_cache.stats cache in
  Alcotest.(check int) "capacity respected" 2 entries;
  Alcotest.(check bool) "evicted at least one" true (evictions >= 1);
  (* different rate environments are distinct cache entries *)
  let env2 = Crn.Rates.env_with_ratio 10. in
  let e4, o4 =
    Service.Model_cache.find_or_compile cache
      ~source_key:(Service.Model_cache.source_key ~spec:"catalog:lfsr3" ~env:env2)
      ~env:env2
      ~build:(build "lfsr3")
  in
  Alcotest.(check bool) "other env misses" true (o4 = `Miss);
  Alcotest.(check bool) "other env distinct key" true
    (e4.Service.Model_cache.key
    <> (let e5, _ =
          Service.Model_cache.find_or_compile cache ~source_key:(key "lfsr3")
            ~env ~build:(build "lfsr3")
        in
        e5.Service.Model_cache.key))

(* ------------------------------------------------- live daemon tests *)

let socket_path =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mrsc-test-%d.sock" (Unix.getpid ()))

(* Run [f client] against a freshly started in-process server. *)
let with_server ?(jobs = 1) ?(queue_bound = 64) f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with _ -> ());
  let address = Service.Addr.Unix_sock socket_path in
  let stop = Atomic.make false in
  let config =
    {
      (Service.Server.default_config address) with
      Service.Server.jobs;
      queue_bound;
    }
  in
  let server =
    Domain.spawn (fun () ->
        Service.Server.run ~stop:(fun () -> Atomic.get stop) config)
  in
  let rec wait_ready tries =
    match Service.Client.connect address with
    | client -> client
    | exception Unix.Unix_error _ ->
        if tries = 0 then Alcotest.fail "server did not come up";
        Unix.sleepf 0.02;
        wait_ready (tries - 1)
  in
  let client = wait_ready 250 in
  Fun.protect
    ~finally:(fun () ->
      Service.Client.close client;
      Atomic.set stop true;
      Domain.join server)
    (fun () -> f client)

let obj fields = J.Obj fields

let field result key =
  match J.member key result with
  | Some v -> v
  | None -> Alcotest.failf "response has no %S field" key

let floats j =
  match J.to_list j with
  | Some xs -> Array.of_list (List.map (fun x -> Option.get (J.to_float x)) xs)
  | None -> Alcotest.fail "expected array of numbers"

let strings j =
  match J.to_list j with
  | Some xs -> Array.of_list (List.map (fun x -> Option.get (J.to_str x)) xs)
  | None -> Alcotest.fail "expected array of strings"

let ok_result name (resp : Service.Client.response) =
  if not resp.ok then
    Alcotest.failf "%s failed: %s" name
      (Option.value ~default:"?" resp.error_message);
  Option.get resp.result

let cache_of (resp : Service.Client.response) =
  Option.value ~default:"?"
    (Option.bind
       (Option.bind resp.metrics (J.member "cache"))
       J.to_str)

let total_ms_of (resp : Service.Client.response) =
  Option.get
    (Option.bind (Option.bind resp.metrics (J.member "total_ms")) J.to_float)

(* the acceptance bar: served results byte-identical to direct execution
   for the same network / seed / solver *)
let test_served_matches_direct () =
  with_server (fun client ->
      let net = Designs.Catalog.build "counter2" in
      let env = Crn.Rates.env_with_ratio 1000. in
      let t1 = 30. in
      (* ODE, both integrators *)
      List.iter
        (fun (name, method_) ->
          let resp =
            Service.Client.request client
              (obj
                 [
                   ("op", J.str "ode");
                   ("network", obj [ ("catalog", J.str "counter2") ]);
                   ("t1", J.num t1);
                   ("ratio", J.num 1000.);
                   ("method", J.str name);
                 ])
          in
          let result = ok_result ("ode " ^ name) resp in
          let served = floats (field result "final") in
          let direct =
            Ode.Driver.final_state ~method_ ~env ~t1
              (Designs.Catalog.build "counter2")
          in
          Alcotest.(check int)
            "species count" (Array.length direct) (Array.length served);
          Array.iteri
            (fun i x ->
              check_float
                (Printf.sprintf "ode %s species %d bitwise" name i)
                direct.(i) x)
            served)
        [ ("rosenbrock", Ode.Driver.Rosenbrock); ("dopri5", Ode.Driver.Dopri5) ];
      (* SSA: same seed, same trajectory *)
      let resp =
        Service.Client.request client
          (obj
             [
               ("op", J.str "ssa");
               ("network", obj [ ("catalog", J.str "counter2") ]);
               ("t1", J.num t1);
               ("ratio", J.num 1000.);
               ("seed", J.int 7);
             ])
      in
      let result = ok_result "ssa" resp in
      let served = floats (field result "final") in
      let direct = Ssa.Gillespie.run ~env ~seed:7L ~t1 net in
      Array.iteri
        (fun i x ->
          check_float
            (Printf.sprintf "ssa species %d bitwise" i)
            direct.Ssa.Gillespie.final.(i)
            x)
        served;
      Alcotest.(check int) "event count" direct.Ssa.Gillespie.n_events
        (Option.get (Option.bind (J.member "n_events" result) J.to_int));
      (* species names come back in network order *)
      Alcotest.(check (array string))
        "species names"
        (Crn.Network.species_names net)
        (strings (field result "species")))

(* the hybrid and tau ops reuse the cache entry's compiled halves and
   must serve bitwise the same finals as direct execution; the stats op
   must aggregate their work counters *)
let test_hybrid_and_tau_ops () =
  with_server (fun client ->
      let net = Designs.Catalog.build "counter2" in
      let env = Crn.Rates.env_with_ratio 1000. in
      let t1 = 30. in
      let base op =
        [
          ("op", J.str op);
          ("network", obj [ ("catalog", J.str "counter2") ]);
          ("t1", J.num t1);
          ("ratio", J.num 1000.);
          ("seed", J.int 7);
        ]
      in
      (* hybrid: bitwise vs direct execution (and, at default thresholds
         on this low-copy design, vs Gillespie) *)
      let resp = Service.Client.request client (obj (base "hybrid")) in
      let result = ok_result "hybrid" resp in
      let served = floats (field result "final") in
      let direct = Hybrid.Engine.run ~env ~seed:7L ~t1 net in
      Array.iteri
        (fun i x ->
          check_float
            (Printf.sprintf "hybrid species %d bitwise" i)
            direct.Hybrid.Engine.final.(i) x)
        served;
      let gillespie = Ssa.Gillespie.run ~env ~seed:7L ~t1 net in
      Array.iteri
        (fun i x ->
          check_float
            (Printf.sprintf "hybrid = gillespie species %d" i)
            gillespie.Ssa.Gillespie.final.(i) x)
        served;
      let stats =
        match J.member "stats" result with
        | Some s -> s
        | None -> Alcotest.fail "hybrid result has no stats"
      in
      Alcotest.(check int)
        "served ssa_events"
        direct.Hybrid.Engine.stats.Hybrid.Engine.n_ssa_events
        (Option.get (Option.bind (J.member "ssa_events" stats) J.to_int));
      (* tau: bitwise vs direct execution *)
      let resp = Service.Client.request client (obj (base "tau")) in
      let result = ok_result "tau" resp in
      let served = floats (field result "final") in
      let direct_tau = Ssa.Tau_leap.run ~env ~seed:7L ~t1 net in
      Array.iteri
        (fun i x ->
          check_float
            (Printf.sprintf "tau species %d bitwise" i)
            direct_tau.Ssa.Tau_leap.final.(i) x)
        served;
      (* ensemble with engine=hybrid: well-formed and deterministic *)
      let ens_req extra =
        obj
          (base "ensemble" @ [ ("runs", J.int 4); ("jobs", J.int 1) ] @ extra)
      in
      let r1 =
        ok_result "ensemble hybrid"
          (Service.Client.request client
             (ens_req [ ("engine", J.str "hybrid") ]))
      in
      let r2 =
        ok_result "ensemble hybrid repeat"
          (Service.Client.request client
             (ens_req [ ("engine", J.str "hybrid") ]))
      in
      Alcotest.(check (array (float 0.)))
        "hybrid ensemble deterministic"
        (floats (field r1 "mean"))
        (floats (field r2 "mean"));
      (let bad =
         Service.Client.request client
           (ens_req [ ("engine", J.str "bogus") ])
       in
       Alcotest.(check bool) "bogus engine refused" false
         bad.Service.Client.ok);
      (* the stats op aggregates the engines' work counters *)
      let stats_resp =
        Service.Client.request client (obj [ ("op", J.str "stats") ])
      in
      let stats_result = ok_result "stats" stats_resp in
      let work =
        match J.member "work" stats_result with
        | Some w -> w
        | None -> Alcotest.fail "stats has no work table"
      in
      let counter key =
        Option.value ~default:0. (Option.bind (J.member key work) J.to_float)
      in
      Alcotest.(check bool) "work.events accumulated" true (counter "events" > 0.);
      Alcotest.(check bool)
        "work.repartitions accumulated" true
        (counter "repartitions" > 0.))

let test_cache_hit_speedup () =
  with_server (fun client ->
      (* counter3 is the heaviest clocked design to synthesize + compile
         (~40 ms); a short fixed-step run keeps the simulation itself
         cheap, so the cold/warm ratio isolates what the cache saves *)
      let req =
        obj
          [
            ("op", J.str "ode");
            ("network", obj [ ("catalog", J.str "counter3") ]);
            ("t1", J.num 0.05);
            ("ratio", J.num 1000.);
            ("method", J.str "0.005");
          ]
      in
      let cold = Service.Client.request client req in
      ignore (ok_result "cold" cold);
      Alcotest.(check string) "cold misses" "miss" (cache_of cold);
      (* several warm repeats; take the fastest to de-noise *)
      let warm_ms = ref infinity and warm_cache = ref "?" in
      for _ = 1 to 5 do
        let warm = Service.Client.request client req in
        ignore (ok_result "warm" warm);
        warm_cache := cache_of warm;
        warm_ms := Float.min !warm_ms (total_ms_of warm)
      done;
      Alcotest.(check string) "warm hits" "hit" !warm_cache;
      let cold_ms = total_ms_of cold in
      if not (cold_ms >= 5. *. !warm_ms) then
        Alcotest.failf "expected >=5x cache speedup, got %.2fms -> %.2fms"
          cold_ms !warm_ms)

let test_deadline_and_worker_survival () =
  with_server (fun client ->
      (* impossible horizon, tight deadline: the run must die with the
         structured code, quickly *)
      let resp =
        Service.Client.request client
          (obj
             [
               ("op", J.str "ssa");
               ("network", obj [ ("catalog", J.str "counter2") ]);
               ("t1", J.num 1e9);
               ("seed", J.int 1);
               ("deadline_ms", J.num 150.);
             ])
      in
      Alcotest.(check bool) "request failed" false resp.Service.Client.ok;
      (match resp.Service.Client.error with
      | Some (Service.Error.Deadline_exceeded _) -> ()
      | Some err ->
          Alcotest.failf "expected deadline_exceeded, got %s"
            (Service.Error.code err)
      | None -> Alcotest.fail "no structured error");
      (* the worker survived: the same (only) worker serves this *)
      let after =
        Service.Client.request client
          (obj
             [
               ("op", J.str "ode");
               ("network", obj [ ("catalog", J.str "clock3") ]);
               ("t1", J.num 2.);
             ])
      in
      ignore (ok_result "after deadline" after))

let test_overloaded () =
  with_server ~jobs:1 ~queue_bound:1 (fun _client ->
      let addr = Service.Addr.Unix_sock socket_path in
      let slow =
        J.to_string
          (obj
             [
               ("op", J.str "ssa");
               ("network", obj [ ("catalog", J.str "counter2") ]);
               ("t1", J.num 1e9);
               ("deadline_ms", J.num 600.);
             ])
      in
      let fd1 = Service.Addr.connect addr in
      let fd2 = Service.Addr.connect addr in
      let fd3 = Service.Addr.connect addr in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with _ -> ())
            [ fd1; fd2; fd3 ])
        (fun () ->
          let resp fd =
            match Service.Wire.read_frame fd with
            | Some payload ->
                Service.Client.response_of_json (J.of_string payload)
            | None -> Alcotest.fail "connection closed without a response"
          in
          (* one job occupies the single worker, one fills the
             bound-1 queue, the third must be refused immediately *)
          Service.Wire.write_frame fd1 slow;
          Unix.sleepf 0.2;
          Service.Wire.write_frame fd2 slow;
          Unix.sleepf 0.2;
          Service.Wire.write_frame fd3 slow;
          let r3 = resp fd3 in
          Alcotest.(check bool) "third refused" false r3.Service.Client.ok;
          (match r3.Service.Client.error with
          | Some (Service.Error.Overloaded { queue_bound = 1 }) -> ()
          | Some err ->
              Alcotest.failf "expected overloaded, got %s"
                (Service.Error.code err)
          | None -> Alcotest.fail "no structured error");
          (* the occupied worker and the queued job still answer — with
             the deadline error, not a dropped connection *)
          List.iter
            (fun fd ->
              let r = resp fd in
              match r.Service.Client.error with
              | Some (Service.Error.Deadline_exceeded _) -> ()
              | _ -> Alcotest.fail "expected deadline_exceeded")
            [ fd1; fd2 ]))

(* ---------------------------------------------------------- validate *)

(* the validate op answers inline (no pool worker, no model compile):
   certified networks byte-identically to local certification, broken
   ones with a structured validation_failed carrying per-issue codes —
   and the stats op exposes the validate_ok / validate_reject split *)
let test_validate_op () =
  with_server (fun client ->
      let req network =
        obj [ ("op", J.str "validate"); ("network", network) ]
      in
      (* certified: result carries the same bytes Verify renders locally *)
      let resp =
        Service.Client.request client
          (req (obj [ ("catalog", J.str "counter2") ]))
      in
      Alcotest.(check bool) "counter2 certifies" true resp.Service.Client.ok;
      let result = ok_result "validate" resp in
      let local =
        match Designs.Catalog.find "counter2" with
        | Some e ->
            Exact.Certificate.render
              (Service.Verify.certify ~title:"counter2"
                 (e.Designs.Catalog.build ()))
        | None -> Alcotest.fail "counter2 missing"
      in
      (match J.to_str (field result "certificate") with
      | Some served -> Alcotest.(check string) "served = local" local served
      | None -> Alcotest.fail "no certificate in result");
      (* rejected: structured issue codes, certificate still present *)
      let broken =
        "init X 10\ninit Y 10\nX + Y ->{slow} 0\n0 ->{slow} X\n"
      in
      let resp =
        Service.Client.request client (req (obj [ ("text", J.str broken) ]))
      in
      Alcotest.(check bool) "broken rejected" false resp.Service.Client.ok;
      (match resp.Service.Client.error with
      | Some (Service.Error.Validation_failed { issues }) ->
          Alcotest.(check bool) "slow_annihilation code" true
            (List.exists (fun (c, _) -> c = "slow_annihilation") issues)
      | _ -> Alcotest.fail "expected validation_failed");
      (match
         Option.bind resp.Service.Client.result (fun r ->
             Option.bind (J.member "certificate" r) J.to_str)
       with
      | Some text ->
          Alcotest.(check bool) "rejection carries certificate" true
            (String.length text > 0)
      | None -> Alcotest.fail "rejection lost the certificate");
      (* malformed requests classify without touching the exact tier *)
      let resp =
        Service.Client.request client
          (req (obj [ ("catalog", J.str "no-such-design" ) ]))
      in
      (match resp.Service.Client.error with
      | Some (Service.Error.Unknown_design _) -> ()
      | _ -> Alcotest.fail "expected unknown_design");
      (* the verdict counters are visible in stats *)
      let stats =
        ok_result "stats"
          (Service.Client.request client (obj [ ("op", J.str "stats") ]))
      in
      let counter key =
        Option.value ~default:(-1) (Option.bind (J.member key stats) J.to_int)
      in
      Alcotest.(check int) "validate_ok" 1 (counter "validate_ok");
      Alcotest.(check int) "validate_reject" 1 (counter "validate_reject"))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick test_json_errors;
    Alcotest.test_case "wire incremental decoder" `Quick test_wire_decoder;
    Alcotest.test_case "wire rejects bad length" `Quick test_wire_bad_length;
    Alcotest.test_case "error codes stable" `Quick test_error_codes;
    Alcotest.test_case "model cache" `Quick test_model_cache;
    Alcotest.test_case "served = direct (bitwise)" `Quick
      test_served_matches_direct;
    Alcotest.test_case "hybrid/tau ops + work stats" `Quick
      test_hybrid_and_tau_ops;
    Alcotest.test_case "cache hit >=5x faster" `Quick test_cache_hit_speedup;
    Alcotest.test_case "deadline, worker survives" `Quick
      test_deadline_and_worker_survival;
    Alcotest.test_case "overloaded on full queue" `Quick test_overloaded;
    Alcotest.test_case "validate op" `Quick test_validate_op;
  ]
