(* Tests for the paper's primary contribution: synchronous sequential
   computation — the design discipline, latches, FSM synthesis, counters,
   LFSRs, filters and the iterative arithmetic units. *)

let fresh () =
  let net = Crn.Network.create () in
  (net, Core.Sync_design.make net)

(* ----------------------------------------------------------- Sync_design *)

let test_design_basics () =
  let net, d = fresh () in
  Alcotest.(check (float 0.)) "signal mass" 10. d.Core.Sync_design.signal_mass;
  Alcotest.(check int) "clock phases" 4
    (Molclock.Clock_chassis.n_phases d.Core.Sync_design.clock);
  (* phase species exist in the network under clk. *)
  Alcotest.(check bool) "P0 exists" true
    (Crn.Network.find_species net "clk.P0" <> None);
  Alcotest.(check bool) "distinct roles" true
    (Core.Sync_design.release_phase d <> Core.Sync_design.capture_phase d)

let test_design_timing () =
  let _, d = fresh () in
  let p = Core.Sync_design.period d in
  Alcotest.(check bool) "plausible period" true (p > 3. && p < 12.);
  Alcotest.(check (float 1e-9)) "cycle 0 starts at 0" 0.
    (Core.Sync_design.cycle_time d ~cycle:0);
  Alcotest.(check (float 1e-9)) "cycle 3" (3. *. p)
    (Core.Sync_design.cycle_time d ~cycle:3);
  Alcotest.(check bool) "injection before sample" true
    (Core.Sync_design.injection_time d ~cycle:2
    < Core.Sync_design.sample_time d ~cycle:2);
  Alcotest.check_raises "negative cycle"
    (Invalid_argument "Sync_design.cycle_time: negative cycle") (fun () ->
      ignore (Core.Sync_design.cycle_time d ~cycle:(-1)))

let test_design_period_cached () =
  let _, d = fresh () in
  let t0 = Unix.gettimeofday () in
  let p1 = Core.Sync_design.period d in
  let _warm = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let p2 = Core.Sync_design.period d in
  let cached = Unix.gettimeofday () -. t1 in
  Alcotest.(check (float 1e-12)) "same period" p1 p2;
  Alcotest.(check bool) "second call instant" true (cached < 0.05)

(* ----------------------------------------------------------------- Latch *)

let test_latch_delays_by_one_cycle () =
  let net, d = fresh () in
  let l = Core.Latch.make d ~name:"d0" in
  ignore net;
  (* deposit a value into the latch input during cycle 0 *)
  let inj =
    {
      Ode.Driver.at = Core.Sync_design.injection_time d ~cycle:0;
      species = "d0.in";
      amount = 7.;
    }
  in
  let tr = Core.Sync_design.simulate ~injections:[ inj ] ~cycles:3 d in
  ignore l;
  (* captured during cycle 0, held, released at cycle 1 into the output *)
  let store_mid =
    Ode.Trace.value_at tr
      ~species:(Ode.Trace.species_index tr "d0.store")
      (Core.Sync_design.sample_time d ~cycle:0)
  in
  Alcotest.(check (float 0.3)) "stored after capture" 7. store_mid;
  let out_next =
    Ode.Trace.value_at tr
      ~species:(Ode.Trace.species_index tr "d0.out")
      (Core.Sync_design.sample_time d ~cycle:1)
  in
  Alcotest.(check (float 0.5)) "released next cycle" 7. out_next

let test_latch_chain_shifts () =
  let _, d = fresh () in
  let latches = Core.Latch.chain ~init_first:8. d ~name:"sr" 3 in
  Alcotest.(check int) "three latches" 3 (List.length latches);
  let tr = Core.Sync_design.simulate ~cycles:4 d in
  (* the value shifts one stage per cycle: after cycle k it is in stage k *)
  let store_of i cycle =
    Ode.Trace.value_at tr
      ~species:(Ode.Trace.species_index tr (Printf.sprintf "sr%d.store" i))
      (Core.Sync_design.sample_time d ~cycle)
  in
  Alcotest.(check (float 0.6)) "stage 1 after cycle 0" 8. (store_of 1 0);
  Alcotest.(check (float 0.6)) "stage 2 after cycle 1" 8. (store_of 2 1);
  Alcotest.(check (float 0.6)) "stage 0 empty after shift" 0. (store_of 0 1)

let test_latch_invalid () =
  let _, d = fresh () in
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Latch.chain: need at least one latch") (fun () ->
      ignore (Core.Latch.chain d ~name:"x" 0))

(* ------------------------------------------------------------------- Fsm *)

let test_fsm_validation () =
  let _, d = fresh () in
  let base =
    {
      Core.Fsm.name = "m";
      n_states = 2;
      n_symbols = 1;
      transition = (fun q _ -> 1 - q);
      initial = 0;
      outputs = [];
    }
  in
  Alcotest.check_raises "no states"
    (Invalid_argument "Fsm: need at least one state") (fun () ->
      ignore (Core.Fsm.synthesize d { base with n_states = 0 }));
  Alcotest.check_raises "bad initial"
    (Invalid_argument "Fsm: initial state out of range") (fun () ->
      ignore (Core.Fsm.synthesize d { base with initial = 5 }));
  Alcotest.check_raises "bad transition"
    (Invalid_argument "Fsm: transition 0/0 out of range") (fun () ->
      ignore
        (Core.Fsm.synthesize d { base with transition = (fun _ _ -> 9) }));
  Alcotest.check_raises "dup outputs"
    (Invalid_argument "Fsm: duplicate output names") (fun () ->
      ignore
        (Core.Fsm.synthesize d
           {
             base with
             outputs = [ ("o", fun _ -> true); ("o", fun _ -> false) ];
           }))

let test_fsm_toggle () =
  (* a two-state autonomous toggle *)
  let _, d = fresh () in
  let m =
    Core.Fsm.synthesize d
      {
        Core.Fsm.name = "tog";
        n_states = 2;
        n_symbols = 1;
        transition = (fun q _ -> 1 - q);
        initial = 0;
        outputs = [ ("on", fun q -> q = 1) ];
      }
  in
  let tr = Core.Sync_design.simulate ~cycles:5 d in
  let states = List.init 4 (fun c -> Core.Fsm.state_at m tr ~cycle:c) in
  Alcotest.(check (list (option int)))
    "alternates"
    [ Some 1; Some 0; Some 1; Some 0 ]
    states;
  (* the Moore output tracks state 1: high after cycles 0 and 2 *)
  let out_at c =
    Ode.Trace.value_at tr
      ~species:(Ode.Trace.species_index tr "tog.on")
      (Core.Sync_design.sample_time d ~cycle:c)
  in
  Alcotest.(check bool) "output high in state 1" true (out_at 0 > 5.);
  Alcotest.(check bool) "output low in state 0" true (out_at 1 < 5.)

let test_fsm_with_inputs () =
  (* symbol 1 advances, symbol 0 holds *)
  let _, d = fresh () in
  let m =
    Core.Fsm.synthesize d
      {
        Core.Fsm.name = "gate";
        n_states = 3;
        n_symbols = 2;
        transition = (fun q s -> if s = 1 then (q + 1) mod 3 else q);
        initial = 0;
        outputs = [];
      }
  in
  let _, states = Core.Fsm.run m ~symbols:[ 1; 0; 1; 1 ] in
  Alcotest.(check (list (option int)))
    "advance, hold, advance, advance"
    [ Some 1; Some 1; Some 2; Some 0 ]
    states

let test_fsm_autonomous_rejects_symbols () =
  let _, d = fresh () in
  let m =
    Core.Fsm.synthesize d
      {
        Core.Fsm.name = "a";
        n_states = 2;
        n_symbols = 1;
        transition = (fun q _ -> q);
        initial = 0;
        outputs = [];
      }
  in
  Alcotest.check_raises "no symbols on autonomous"
    (Invalid_argument "Fsm.inject_symbol: autonomous machine") (fun () ->
      ignore (Core.Fsm.inject_symbol m ~cycle:0 ~symbol:0))

(* --------------------------------------------------------------- Counter *)

let test_counter_free_running () =
  let _, d = fresh () in
  let ctr = Core.Counter.free_running d ~bits:2 in
  let tr = Core.Sync_design.simulate ~cycles:9 d in
  let states = List.init 8 (fun c -> Core.Counter.value_at ctr tr ~cycle:c) in
  Alcotest.(check (list (option int)))
    "counts mod 4"
    [ Some 1; Some 2; Some 3; Some 0; Some 1; Some 2; Some 3; Some 0 ]
    states;
  (* the binary-weighted output waveforms agree *)
  let bits = List.init 8 (fun c -> Core.Counter.bits_at ctr tr ~cycle:c) in
  Alcotest.(check (list int)) "bit outputs" [ 1; 2; 3; 0; 1; 2; 3; 0 ] bits

let test_counter_gated () =
  let _, d = fresh () in
  let ctr = Core.Counter.gated d ~bits:2 in
  let _, states = Core.Fsm.run ctr.Core.Counter.fsm ~symbols:[ 1; 1; 0; 1 ] in
  Alcotest.(check (list (option int)))
    "counts only on 1s"
    [ Some 1; Some 2; Some 2; Some 3 ]
    states

let test_counter_gray () =
  let _, d = fresh () in
  let ctr = Core.Counter.gray d ~bits:2 in
  let tr = Core.Sync_design.simulate ~cycles:6 d in
  (* gray sequence for steps 1..5: 1 3 2 0 1 (gray(q) = q xor q>>1, and
     value_at still reports the step) *)
  let grays = List.init 5 (fun c -> Core.Counter.bits_at ctr tr ~cycle:c) in
  Alcotest.(check (list int)) "gray codewords" [ 1; 3; 2; 0; 1 ] grays;
  (* exactly one output bit flips per cycle *)
  let rec single_flips = function
    | a :: (b :: _ as rest) ->
        let popcount x =
          let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
          go 0 x
        in
        popcount (a lxor b) = 1 && single_flips rest
    | _ -> true
  in
  Alcotest.(check bool) "one bit per cycle" true (single_flips grays)

let test_counter_invalid () =
  let _, d = fresh () in
  Alcotest.check_raises "bits range"
    (Invalid_argument "Counter: bits must be between 1 and 8") (fun () ->
      ignore (Core.Counter.free_running d ~bits:0))

(* ------------------------------------------------------------------ Lfsr *)

let test_lfsr_reference_model () =
  (* 3-bit maximal LFSR: period 7, visits all nonzero states *)
  let seq = Core.Lfsr.reference ~bits:3 ~taps:[ 1; 2 ] ~seed:1 ~n:7 in
  Alcotest.(check int) "returns to seed" 1 (List.nth seq 6);
  Alcotest.(check int) "7 distinct states" 7
    (List.length (List.sort_uniq compare seq))

let test_lfsr_matches_reference () =
  let _, d = fresh () in
  let l = Core.Lfsr.make d ~bits:3 ~taps:[ 1; 2 ] ~seed:1 in
  let tr = Core.Sync_design.simulate ~cycles:8 d in
  let got = List.init 8 (fun c -> Core.Lfsr.state_at l tr ~cycle:c) in
  let want = Core.Lfsr.reference ~bits:3 ~taps:[ 1; 2 ] ~seed:1 ~n:8 in
  Alcotest.(check (list int)) "full period matches" want got

let test_lfsr_other_seed () =
  let _, d = fresh () in
  let l = Core.Lfsr.make d ~bits:3 ~taps:[ 1; 2 ] ~seed:5 in
  let tr = Core.Sync_design.simulate ~cycles:4 d in
  let got = List.init 4 (fun c -> Core.Lfsr.state_at l tr ~cycle:c) in
  let want = Core.Lfsr.reference ~bits:3 ~taps:[ 1; 2 ] ~seed:5 ~n:4 in
  Alcotest.(check (list int)) "seed 5" want got

let test_lfsr_validation () =
  let _, d = fresh () in
  let mk ?(bits = 3) ?(taps = [ 1; 2 ]) ?(seed = 1) () =
    ignore (Core.Lfsr.make d ~bits ~taps ~seed)
  in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "1 bit" (fun () -> mk ~bits:1 ());
  expect_invalid "1 tap" (fun () -> mk ~taps:[ 1 ] ());
  expect_invalid "3 taps" (fun () -> mk ~taps:[ 0; 1; 2 ] ());
  expect_invalid "dup taps" (fun () -> mk ~taps:[ 1; 1 ] ());
  expect_invalid "tap range" (fun () -> mk ~taps:[ 1; 7 ] ());
  expect_invalid "zero seed" (fun () -> mk ~seed:0 ());
  expect_invalid "wide seed" (fun () -> mk ~seed:9 ())

(* ---------------------------------------------------------------- Filter *)

let test_ma2_step_response () =
  let _, d = fresh () in
  let f = Core.Filter.moving_average d ~taps:2 in
  let samples = [ 8.; 8.; 0.; 4. ] in
  let got = Core.Filter.response f samples in
  let want = Core.Filter.reference_moving_average ~taps:2 samples in
  List.iter2
    (fun g w ->
      if Float.abs (g -. w) > 0.3 then
        Alcotest.failf "ma2: got %g want %g" g w)
    got want

let test_ma4 () =
  let _, d = fresh () in
  let f = Core.Filter.moving_average d ~taps:4 in
  let samples = [ 8.; 8.; 8.; 8.; 0.; 0. ] in
  let got = Core.Filter.response f samples in
  let want = Core.Filter.reference_moving_average ~taps:4 samples in
  List.iter2
    (fun g w ->
      if Float.abs (g -. w) > 0.5 then
        Alcotest.failf "ma4: got %g want %g" g w)
    got want

let test_ma1_passthrough () =
  let _, d = fresh () in
  let f = Core.Filter.moving_average d ~taps:1 in
  let got = Core.Filter.response f [ 5.; 2. ] in
  (match got with
  | [ a; b ] ->
      Alcotest.(check (float 0.2)) "y0" 5. a;
      Alcotest.(check (float 0.2)) "y1" 2. b
  | _ -> Alcotest.fail "shape");
  Alcotest.check_raises "bad taps"
    (Invalid_argument "Filter.moving_average: taps must be 1, 2 or 4")
    (fun () ->
      let _, d2 = fresh () in
      ignore (Core.Filter.moving_average d2 ~taps:3))

let test_iir_smoother () =
  let _, d = fresh () in
  let f = Core.Filter.iir_smoother d in
  let samples = [ 8.; 8.; 8.; 0. ] in
  let got = Core.Filter.response f samples in
  let want = Core.Filter.reference_iir samples in
  List.iter2
    (fun g w ->
      if Float.abs (g -. w) > 0.35 then
        Alcotest.failf "iir: got %g want %g" g w)
    got want

let test_filter_invalid_sample () =
  let _, d = fresh () in
  let f = Core.Filter.moving_average d ~taps:2 in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Filter.inject_sample: negative sample") (fun () ->
      ignore (Core.Filter.inject_sample f ~cycle:0 (-1.)))

(* ------------------------------------------------------------- Iterative *)

let test_multiplier () =
  let _, d = fresh () in
  let m = Core.Iterative.multiplier d ~a:3. ~count:4 in
  Alcotest.(check (float 0.4)) "3*4" 12. (Core.Iterative.run m)

let test_multiplier_zero () =
  let _, d = fresh () in
  let m = Core.Iterative.multiplier d ~a:5. ~count:0 in
  Alcotest.(check (float 0.05)) "5*0" 0. (Core.Iterative.run m)

let test_power2 () =
  let _, d = fresh () in
  let p = Core.Iterative.power2 d ~n:5 in
  (* doubling compounds the per-cycle leak: allow ~8% *)
  let v = Core.Iterative.run p in
  Alcotest.(check bool) "2^5 within 8%" true (Float.abs (v -. 32.) < 2.6)

let test_power2_zero () =
  let _, d = fresh () in
  let p = Core.Iterative.power2 d ~n:0 in
  Alcotest.(check (float 0.05)) "2^0" 1. (Core.Iterative.run p)

let test_log2 () =
  let _, d = fresh () in
  let l = Core.Iterative.log2floor d ~a:8. in
  let v = Core.Iterative.run l in
  (* deterministic kinetics: converges to the fractional sum, not the floor *)
  Alcotest.(check bool) "log2(8) near ODE expectation" true
    (Float.abs (v -. l.Core.Iterative.expected) < 0.4)

let test_iterative_invalid () =
  let _, d = fresh () in
  Alcotest.check_raises "negative count"
    (Invalid_argument "Iterative.multiplier: negative count") (fun () ->
      ignore (Core.Iterative.multiplier d ~a:1. ~count:(-1)));
  Alcotest.check_raises "big n"
    (Invalid_argument "Iterative.power2: n must be in 0..20") (fun () ->
      ignore (Core.Iterative.power2 d ~n:21));
  Alcotest.check_raises "log below 1"
    (Invalid_argument "Iterative.log2floor: input must be >= 1") (fun () ->
      ignore (Core.Iterative.log2floor d ~a:0.5))

(* -------------------------------------------- randomized FSM integration *)

(* synthesize a random 3-state, 2-symbol machine, drive it with a random
   4-symbol word, and compare against a pure-OCaml interpreter *)
let qcheck_fsm_tests =
  let open QCheck in
  let gen =
    Gen.(
      let* table = array_size (return 6) (int_range 0 2) in
      let* word = list_size (return 4) (int_range 0 1) in
      return (table, word))
  in
  [
    Test.make ~name:"random FSM matches its interpreter" ~count:5 (make gen)
      (fun (table, word) ->
        let transition q s = table.((2 * q) + s) in
        let net = Crn.Network.create () in
        let d = Core.Sync_design.make net in
        let m =
          Core.Fsm.synthesize d
            {
              Core.Fsm.name = "rnd";
              n_states = 3;
              n_symbols = 2;
              transition;
              initial = 0;
              outputs = [];
            }
        in
        let _, got = Core.Fsm.run m ~symbols:word in
        let want =
          List.rev
            (snd
               (List.fold_left
                  (fun (q, acc) s ->
                    let q' = transition q s in
                    (q', Some q' :: acc))
                  (0, []) word))
        in
        got = want);
  ]

(* --------------------------------------------------------------- Compile *)

let test_compile_stats () =
  let net, d = fresh () in
  let _ = Core.Counter.free_running d ~bits:2 in
  let stats = Core.Compile.stats_of ~name:"ctr2" net in
  Alcotest.(check string) "name" "ctr2" stats.Core.Compile.design;
  Alcotest.(check int) "species counted" (Crn.Network.n_species net)
    stats.Core.Compile.species;
  Alcotest.(check int) "reactions counted" (Crn.Network.n_reactions net)
    stats.Core.Compile.reactions;
  Alcotest.(check int) "split adds up" stats.Core.Compile.reactions
    (stats.Core.Compile.fast_reactions + stats.Core.Compile.slow_reactions);
  Alcotest.(check int) "clock sources" 4 stats.Core.Compile.zero_order_sources;
  Alcotest.(check int) "row arity" (List.length Core.Compile.header)
    (List.length (Core.Compile.row stats))

let suite =
  [
    ("design basics", `Quick, test_design_basics);
    ("design timing", `Quick, test_design_timing);
    ("design period cached", `Quick, test_design_period_cached);
    ("latch delays one cycle", `Quick, test_latch_delays_by_one_cycle);
    ("latch chain shifts", `Quick, test_latch_chain_shifts);
    ("latch invalid", `Quick, test_latch_invalid);
    ("fsm validation", `Quick, test_fsm_validation);
    ("fsm toggle", `Quick, test_fsm_toggle);
    ("fsm with inputs", `Quick, test_fsm_with_inputs);
    ("fsm autonomous rejects symbols", `Quick, test_fsm_autonomous_rejects_symbols);
    ("counter free running", `Quick, test_counter_free_running);
    ("counter gated", `Quick, test_counter_gated);
    ("counter gray", `Quick, test_counter_gray);
    ("counter invalid", `Quick, test_counter_invalid);
    ("lfsr reference model", `Quick, test_lfsr_reference_model);
    ("lfsr matches reference", `Quick, test_lfsr_matches_reference);
    ("lfsr other seed", `Quick, test_lfsr_other_seed);
    ("lfsr validation", `Quick, test_lfsr_validation);
    ("ma2 response", `Quick, test_ma2_step_response);
    ("ma4 response", `Quick, test_ma4);
    ("ma1 passthrough", `Quick, test_ma1_passthrough);
    ("iir smoother", `Quick, test_iir_smoother);
    ("filter invalid sample", `Quick, test_filter_invalid_sample);
    ("multiplier", `Quick, test_multiplier);
    ("multiplier zero", `Quick, test_multiplier_zero);
    ("power2", `Quick, test_power2);
    ("power2 zero", `Quick, test_power2_zero);
    ("log2", `Quick, test_log2);
    ("iterative invalid", `Quick, test_iterative_invalid);
    ("compile stats", `Quick, test_compile_stats);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_fsm_tests
