(* The warm-persistence layer: binary codec round-trips, torn-write
   robustness, warm-loaded LRU behaviour, and bitwise checkpoint/resume
   across all four simulation engines.

   The resume tests use a poll-counting cancel token: the token trips
   after exactly N polls, the engine's [on_cancel] captures its loop-top
   checkpoint, and the continuation (run through the full binary codec,
   not just the in-memory record) must finish with a trace bitwise
   identical to a run that was never interrupted. *)

module S = Service.Snapshot
module B = Service.Binio

let env_1000 = Crn.Rates.env_with_ratio 1000.

let counter_net () = (Option.get (Designs.Catalog.find "counter2")).build ()
let clock_net () = (Option.get (Designs.Catalog.find "clock3")).build ()

(* a token that cancels forever after the Nth poll *)
let cancel_after n =
  let polls = ref 0 in
  Numeric.Cancel.of_fun (fun () ->
      incr polls;
      !polls > n)

let check_traces what a b =
  Alcotest.(check int) (what ^ ": trace length") (Ode.Trace.length a)
    (Ode.Trace.length b);
  Alcotest.(check (array string))
    (what ^ ": trace names") (Ode.Trace.names a) (Ode.Trace.names b);
  (* bit-pattern equality, so NaNs produced by both runs compare equal
     and signed zeros are distinguished *)
  let same x y = Int64.bits_of_float x = Int64.bits_of_float y in
  for i = 0 to Ode.Trace.length a - 1 do
    let ta = (Ode.Trace.times a).(i) and tb = (Ode.Trace.times b).(i) in
    if not (same ta tb) then
      Alcotest.failf "%s: time[%d] differs: %h vs %h" what i ta tb;
    let xa = Ode.Trace.state_at_index a i
    and xb = Ode.Trace.state_at_index b i in
    Array.iteri
      (fun s va ->
        if not (same va xb.(s)) then
          Alcotest.failf "%s: state[%d][%d] differs: %h vs %h" what i s va
            xb.(s))
      xa
  done

(* roundtrip a checkpoint through the full binary codec before resuming:
   what comes back must drive the identical continuation *)
let codec_roundtrip sc = S.decode_sim (S.encode_sim sc)

(* ------------------------------------------------------------ codecs *)

let test_model_roundtrip () =
  List.iter
    (fun build ->
      let net = build () in
      let env = env_1000 in
      let ms =
        {
          S.ms_key = "k";
          ms_sources = [| "s1"; "s2" |];
          ms_fingerprint = Crn.Equiv.fingerprint net;
          ms_compile_ms = 12.5;
          ms_net = net;
          ms_env = env;
          ms_sys = Ode.Deriv.compile env net;
          ms_ssa = Ssa.Gillespie.compile_model env net;
        }
      in
      let data = S.encode_model ms in
      let ms' = S.decode_model data in
      Alcotest.(check string) "key" ms.S.ms_key ms'.S.ms_key;
      Alcotest.(check (array string))
        "sources" ms.S.ms_sources ms'.S.ms_sources;
      Alcotest.(check string)
        "fingerprint" ms.S.ms_fingerprint ms'.S.ms_fingerprint;
      Alcotest.(check string)
        "network text"
        (Crn.Network.to_string ms.S.ms_net)
        (Crn.Network.to_string ms'.S.ms_net);
      (* encode(decode(x)) must be byte-identical: the codec is
         canonical, so nothing is lost or reordered *)
      Alcotest.(check string) "idempotent bytes" data (S.encode_model ms');
      (* the decoded compiled artifacts must behave identically *)
      let x0 = Crn.Network.initial_state net in
      let d a = Ode.Deriv.eval a x0 in
      Alcotest.(check (array (float 0.)))
        "deriv eval" (d ms.S.ms_sys) (d ms'.S.ms_sys);
      let run ssa =
        (Ssa.Gillespie.run ~env ~seed:9L ~model:ssa ~t1:0.5 net)
          .Ssa.Gillespie.final
      in
      Alcotest.(check (array (float 0.)))
        "ssa run" (run ms.S.ms_ssa) (run ms'.S.ms_ssa))
    [ counter_net; clock_net ]

let test_sim_roundtrip_params () =
  let net = counter_net () in
  let sc =
    {
      S.sc_net = net;
      sc_env = env_1000;
      sc_t1 = 42.;
      sc_seed = 123456789L;
      sc_params = [| ("sample_dt", 0.25); ("epsilon", 0.03) |];
      sc_state =
        S.Ode_ck
          {
            Ode.Driver.ck_method =
              Ode.Driver.Ck_fixed { Ode.Fixed.ck_t = 1.5; ck_x = [| 0.5; 2. |] };
            ck_countdown = 3;
            ck_trace = Ode.Trace.create ~names:[| "a"; "b" |];
          };
    }
  in
  let sc' = codec_roundtrip sc in
  Alcotest.(check string) "idempotent bytes" (S.encode_sim sc)
    (S.encode_sim sc');
  Alcotest.(check (float 0.)) "t1" sc.S.sc_t1 sc'.S.sc_t1;
  Alcotest.(check int64) "seed" sc.S.sc_seed sc'.S.sc_seed;
  Alcotest.(check (option (float 0.))) "param" (Some 0.25)
    (S.param sc' "sample_dt");
  Alcotest.(check (option (float 0.))) "missing param" None
    (S.param sc' "nope");
  Alcotest.(check string) "engine" "ode" (S.engine_name sc'.S.sc_state)

(* floats must round-trip bitwise, including the values printf mangles *)
let test_binio_float_bits () =
  let specials =
    [| nan; infinity; neg_infinity; -0.0; 0.0; 1e-308; -1.7976931348623157e308 |]
  in
  let w = B.writer () in
  B.w_f64_array w specials;
  let r = B.reader (B.contents w) in
  let back = B.r_f64_array r in
  B.expect_end r;
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float back.(i) then
        Alcotest.failf "float %d lost bits: %h vs %h" i x back.(i))
    specials

(* ------------------------------------------------- torn-write corpus *)

let corrupt_raises what data =
  match S.decode_model data with
  | _ -> Alcotest.failf "%s: decoded instead of raising" what
  | exception B.Corrupt _ -> ()
  | exception S.Version_mismatch _ ->
      Alcotest.failf "%s: Version_mismatch instead of Corrupt" what

let test_torn_writes () =
  let net = counter_net () in
  let ms =
    {
      S.ms_key = "k";
      ms_sources = [||];
      ms_fingerprint = "f";
      ms_compile_ms = 0.;
      ms_net = net;
      ms_env = env_1000;
      ms_sys = Ode.Deriv.compile env_1000 net;
      ms_ssa = Ssa.Gillespie.compile_model env_1000 net;
    }
  in
  let data = S.encode_model ms in
  let n = String.length data in
  (* truncations at every interesting boundary *)
  List.iter
    (fun k ->
      if k < n then corrupt_raises (Printf.sprintf "truncated to %d" k)
          (String.sub data 0 k))
    [ 0; 1; 4; 7; 8; 12; 16; 24; n / 4; n / 2; n - 17; n - 1 ];
  (* a flipped byte anywhere must fail the CRC (or a semantic check) *)
  List.iter
    (fun k ->
      let b = Bytes.of_string data in
      Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x41));
      corrupt_raises (Printf.sprintf "byte %d flipped" k)
        (Bytes.to_string b))
    [ 0; 9; n / 3; n / 2; n - 2 ];
  (* wrong magic *)
  corrupt_raises "wrong magic" ("XXXXXXXX" ^ String.sub data 8 (n - 8));
  (* trailing garbage *)
  corrupt_raises "trailing garbage" (data ^ "\x00");
  (* a well-formed container from the future is a version mismatch, not
     corruption — the loader counts the two separately *)
  let future =
    B.encode_file ~kind:S.model_kind ~version:(S.model_version + 1) "payload"
  in
  (match S.decode_model future with
  | _ -> Alcotest.fail "future version decoded"
  | exception S.Version_mismatch { found; expected; _ } ->
      Alcotest.(check int) "found" (S.model_version + 1) found;
      Alcotest.(check int) "expected" S.model_version expected
  | exception B.Corrupt msg ->
      Alcotest.failf "future version counted as corrupt: %s" msg);
  (* sim checkpoints share the container: a model file fed to the sim
     decoder is corrupt (kind mismatch), not a crash *)
  match S.decode_sim data with
  | _ -> Alcotest.fail "model bytes decoded as sim checkpoint"
  | exception B.Corrupt _ -> ()

(* ------------------------------------------- cache warm load on disk *)

let tmpdir =
  let count = ref 0 in
  fun () ->
    incr count;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mrsc-snap-test-%d-%d" (Unix.getpid ()) !count)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let compile_ratio cache ratio =
  let env = Crn.Rates.env_with_ratio ratio in
  Service.Model_cache.find_or_compile cache
    ~source_key:(Service.Model_cache.source_key ~spec:"counter2" ~env)
    ~env
    ~build:counter_net

let test_save_load_cycle () =
  let dir = tmpdir () in
  let cache = Service.Model_cache.create ~capacity:8 () in
  let ratios = [ 10.; 100.; 1000. ] in
  List.iter (fun r -> ignore (compile_ratio cache r)) ratios;
  Alcotest.(check int) "written" 3 (Service.Model_cache.save_to cache dir);
  let warm = Service.Model_cache.create ~capacity:8 () in
  let report = Service.Model_cache.load_from warm dir in
  Alcotest.(check int) "loaded" 3 report.Service.Model_cache.loaded;
  Alcotest.(check int) "no corrupt" 0
    report.Service.Model_cache.skipped_corrupt;
  (* repeats of the original requests are HITS on the warm cache: the
     snapshots carried their source aliases *)
  List.iter
    (fun r ->
      let entry, outcome = compile_ratio warm r in
      (match outcome with
      | `Hit -> ()
      | `Miss -> Alcotest.failf "ratio %g missed on the warm cache" r);
      (* and the warm compiled model simulates identically to a fresh
         compile *)
      let env = Crn.Rates.env_with_ratio r in
      let net = counter_net () in
      let fresh =
        (Ssa.Gillespie.run ~env ~seed:5L ~t1:0.5 net).Ssa.Gillespie.final
      in
      let warmed =
        (Ssa.Gillespie.run ~env ~seed:5L
           ~model:entry.Service.Model_cache.ssa ~t1:0.5 net)
          .Ssa.Gillespie.final
      in
      Alcotest.(check (array (float 0.))) "warm model runs identically"
        fresh warmed)
    ratios

let test_warm_load_skips_corrupt () =
  let dir = tmpdir () in
  let cache = Service.Model_cache.create ~capacity:8 () in
  ignore (compile_ratio cache 10.);
  ignore (compile_ratio cache 100.);
  ignore (Service.Model_cache.save_to cache dir);
  (* corrupt one snapshot in place, add one torn file, one future-version
     file and one file of garbage *)
  let files = Sys.readdir dir in
  Array.sort compare files;
  let victim = Filename.concat dir files.(0) in
  let data =
    In_channel.with_open_bin victim In_channel.input_all
  in
  let b = Bytes.of_string data in
  Bytes.set b (String.length data / 2)
    (Char.chr (Char.code (Bytes.get b (String.length data / 2)) lxor 0xff));
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_bytes oc b);
  Out_channel.with_open_bin (Filename.concat dir "torn.model") (fun oc ->
      Out_channel.output_string oc (String.sub data 0 40));
  Out_channel.with_open_bin (Filename.concat dir "future.model") (fun oc ->
      Out_channel.output_string oc
        (B.encode_file ~kind:S.model_kind ~version:(S.model_version + 7) "x"));
  Out_channel.with_open_bin (Filename.concat dir "noise.model") (fun oc ->
      Out_channel.output_string oc "not a snapshot at all");
  let warm = Service.Model_cache.create ~capacity:8 () in
  let report = Service.Model_cache.load_from warm dir in
  Alcotest.(check int) "loaded the survivor" 1
    report.Service.Model_cache.loaded;
  Alcotest.(check int) "corrupt counted" 3
    report.Service.Model_cache.skipped_corrupt;
  Alcotest.(check int) "version counted" 1
    report.Service.Model_cache.skipped_version;
  let loaded, corrupt, version, _writes =
    Service.Model_cache.warm_counters warm
  in
  Alcotest.(check int) "counter: loaded" 1 loaded;
  Alcotest.(check int) "counter: corrupt" 3 corrupt;
  Alcotest.(check int) "counter: version" 1 version

(* a snapshot whose stored key disagrees with its decoded network is
   stale (someone else's file, an edited file): recompute-and-compare
   must reject it *)
let test_warm_load_rejects_stale_key () =
  let dir = tmpdir () in
  let cache = Service.Model_cache.create ~capacity:8 () in
  ignore (compile_ratio cache 10.);
  ignore (Service.Model_cache.save_to cache dir);
  let file =
    Filename.concat dir
      (Array.to_list (Sys.readdir dir)
      |> List.find (fun f -> Filename.check_suffix f ".model"))
  in
  let data = In_channel.with_open_bin file In_channel.input_all in
  let ms = S.decode_model data in
  (* re-encode under a lying key with a valid CRC *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc
        (S.encode_model { ms with S.ms_key = "somebody-elses-key" }));
  let warm = Service.Model_cache.create ~capacity:8 () in
  let report = Service.Model_cache.load_from warm dir in
  Alcotest.(check int) "nothing loaded" 0 report.Service.Model_cache.loaded;
  Alcotest.(check int) "counted corrupt" 1
    report.Service.Model_cache.skipped_corrupt

(* satellite 1: warm-loaded entries enter with fresh LRU ticks — a
   cold insert right after restart evicts within the warm set by
   recency, and touching a warm entry protects it *)
let test_warm_lru_order () =
  let dir = tmpdir () in
  let cache = Service.Model_cache.create ~capacity:3 () in
  ignore (compile_ratio cache 10.);
  ignore (compile_ratio cache 100.);
  ignore (compile_ratio cache 1000.);
  ignore (Service.Model_cache.save_to cache dir);
  let warm = Service.Model_cache.create ~capacity:3 () in
  let report = Service.Model_cache.load_from warm dir in
  Alcotest.(check int) "warm set loaded" 3 report.Service.Model_cache.loaded;
  (* touch two of the three warm entries; the untouched one is now LRU *)
  let _, o1 = compile_ratio warm 10. in
  let _, o2 = compile_ratio warm 1000. in
  Alcotest.(check bool) "touch 10 is a hit" true (o1 = `Hit);
  Alcotest.(check bool) "touch 1000 is a hit" true (o2 = `Hit);
  (* a cold insert must evict ratio 100 (least recently used), keeping
     the touched entries *)
  ignore (compile_ratio warm 7.);
  let _, again10 = compile_ratio warm 10. in
  let _, again1000 = compile_ratio warm 1000. in
  let _, again100 = compile_ratio warm 100. in
  Alcotest.(check bool) "10 survived" true (again10 = `Hit);
  Alcotest.(check bool) "1000 survived" true (again1000 = `Hit);
  Alcotest.(check bool) "100 was the eviction victim" true (again100 = `Miss)

(* background persister: entries written on insert, visible to a fresh
   load after flush *)
let test_background_persist () =
  let dir = tmpdir () in
  let cache = Service.Model_cache.create ~capacity:8 () in
  Service.Model_cache.set_state_dir cache dir;
  ignore (compile_ratio cache 10.);
  ignore (compile_ratio cache 100.);
  Service.Model_cache.flush cache;
  let _, _, _, writes = Service.Model_cache.warm_counters cache in
  Alcotest.(check int) "two snapshots written" 2 writes;
  Service.Model_cache.shutdown cache;
  let warm = Service.Model_cache.create ~capacity:8 () in
  let report = Service.Model_cache.load_from warm dir in
  Alcotest.(check int) "persisted entries load" 2
    report.Service.Model_cache.loaded

(* --------------------------------------------- bitwise engine resume *)

(* run an engine to completion; then run it again with a cancel token
   that trips mid-run, round-trip the captured checkpoint through the
   codec, resume, and demand the identical trace *)

let resume_ssa ~seed ~polls () =
  let net = clock_net () in
  let env = env_1000 in
  let t1 = 4. in
  let full = Ssa.Gillespie.run ~env ~seed ~t1 net in
  let captured = ref None in
  (match
     Ssa.Gillespie.run ~env ~seed ~cancel:(cancel_after polls)
       ~on_cancel:(fun ck -> captured := Some ck)
       ~t1 net
   with
  | _ -> true (* finished before the token tripped: nothing to test *)
  | exception Numeric.Cancel.Cancelled ->
      let ck =
        match !captured with
        | Some ck -> ck
        | None -> Alcotest.fail "cancelled without on_cancel"
      in
      let sc =
        codec_roundtrip
          {
            S.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params = [||];
            sc_state = S.Ssa_ck ck;
          }
      in
      let ck =
        match sc.S.sc_state with S.Ssa_ck c -> c | _ -> assert false
      in
      let resumed =
        Ssa.Gillespie.run ~env:sc.S.sc_env ~seed:sc.S.sc_seed ~resume:ck
          ~t1:sc.S.sc_t1 sc.S.sc_net
      in
      check_traces "ssa" full.Ssa.Gillespie.trace resumed.Ssa.Gillespie.trace;
      Alcotest.(check int) "ssa: n_events" full.Ssa.Gillespie.n_events
        resumed.Ssa.Gillespie.n_events;
      true)

let resume_tau ~seed ~polls () =
  let net = clock_net () in
  let env = env_1000 in
  let t1 = 2. in
  let full = Ssa.Tau_leap.run ~env ~seed ~t1 net in
  let captured = ref None in
  (match
     Ssa.Tau_leap.run ~env ~seed ~cancel:(cancel_after polls)
       ~on_cancel:(fun ck -> captured := Some ck)
       ~t1 net
   with
  | _ -> true
  | exception Numeric.Cancel.Cancelled ->
      let ck = Option.get !captured in
      let sc =
        codec_roundtrip
          {
            S.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params = [||];
            sc_state = S.Tau_ck ck;
          }
      in
      let ck =
        match sc.S.sc_state with S.Tau_ck c -> c | _ -> assert false
      in
      let resumed =
        Ssa.Tau_leap.run ~env:sc.S.sc_env ~seed:sc.S.sc_seed ~resume:ck
          ~t1:sc.S.sc_t1 sc.S.sc_net
      in
      check_traces "tau" full.Ssa.Tau_leap.trace resumed.Ssa.Tau_leap.trace;
      Alcotest.(check int) "tau: n_leaps" full.Ssa.Tau_leap.n_leaps
        resumed.Ssa.Tau_leap.n_leaps;
      Alcotest.(check int) "tau: n_exact" full.Ssa.Tau_leap.n_exact
        resumed.Ssa.Tau_leap.n_exact;
      true)

let resume_hybrid ~seed ~polls () =
  let net = clock_net () in
  let env = env_1000 in
  let t1 = 2. in
  let full = Hybrid.Engine.run ~env ~seed ~t1 net in
  let captured = ref None in
  (match
     Hybrid.Engine.run ~env ~seed ~cancel:(cancel_after polls)
       ~on_cancel:(fun ck -> captured := Some ck)
       ~t1 net
   with
  | _ -> true
  | exception Numeric.Cancel.Cancelled ->
      let ck = Option.get !captured in
      let sc =
        codec_roundtrip
          {
            S.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params = [||];
            sc_state = S.Hybrid_ck ck;
          }
      in
      let ck =
        match sc.S.sc_state with S.Hybrid_ck c -> c | _ -> assert false
      in
      let resumed =
        Hybrid.Engine.run ~env:sc.S.sc_env ~seed:sc.S.sc_seed ~resume:ck
          ~t1:sc.S.sc_t1 sc.S.sc_net
      in
      check_traces "hybrid" full.Hybrid.Engine.trace
        resumed.Hybrid.Engine.trace;
      true)

let resume_ode ~method_ ~polls () =
  let net = clock_net () in
  let env = env_1000 in
  let t1 = 6. in
  let thin = 3 in
  (* the checkpointable driver must first agree with the plain one *)
  let plain = Ode.Driver.simulate ~method_ ~env ~thin ~t1 net in
  let full = Ode.Driver.simulate_ck ~method_ ~env ~thin ~t1 net in
  check_traces "ode: simulate_ck vs simulate" plain full;
  let captured = ref None in
  (match
     Ode.Driver.simulate_ck ~method_ ~env ~thin
       ~cancel:(cancel_after polls)
       ~on_cancel:(fun ck -> captured := Some ck)
       ~t1 net
   with
  | _ -> true
  | exception Numeric.Cancel.Cancelled ->
      let ck = Option.get !captured in
      let sc =
        codec_roundtrip
          {
            S.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = 0L;
            sc_params = [||];
            sc_state = S.Ode_ck ck;
          }
      in
      let ck =
        match sc.S.sc_state with S.Ode_ck c -> c | _ -> assert false
      in
      let resumed =
        Ode.Driver.simulate_ck ~method_ ~env:sc.S.sc_env ~thin ~resume:ck
          ~t1:sc.S.sc_t1 sc.S.sc_net
      in
      check_traces "ode" full resumed;
      true)

let test_resume_fixed_points () =
  (* a deterministic spread of interrupt points for each engine *)
  List.iter
    (fun polls -> ignore (resume_ssa ~seed:7L ~polls ()))
    [ 1; 5; 50; 400 ];
  List.iter
    (fun polls -> ignore (resume_tau ~seed:7L ~polls ()))
    [ 1; 3; 20; 200 ];
  List.iter
    (fun polls -> ignore (resume_hybrid ~seed:7L ~polls ()))
    [ 1; 3; 20; 200 ];
  List.iter
    (fun polls ->
      ignore (resume_ode ~method_:Ode.Driver.Dopri5 ~polls ());
      ignore (resume_ode ~method_:Ode.Driver.Rosenbrock ~polls ());
      ignore (resume_ode ~method_:(Ode.Driver.Rk4 0.0005) ~polls ()))
    [ 1; 10; 100 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"resume: ssa bitwise at any interrupt point" ~count:15
      (make Gen.(pair (int_range 1 2000) (int_range 1 1000000)))
      (fun (polls, seed) -> resume_ssa ~seed:(Int64.of_int seed) ~polls ());
    Test.make ~name:"resume: tau bitwise at any interrupt point" ~count:10
      (make Gen.(pair (int_range 1 500) (int_range 1 1000000)))
      (fun (polls, seed) -> resume_tau ~seed:(Int64.of_int seed) ~polls ());
    Test.make ~name:"resume: hybrid bitwise at any interrupt point" ~count:10
      (make Gen.(pair (int_range 1 500) (int_range 1 1000000)))
      (fun (polls, seed) ->
        resume_hybrid ~seed:(Int64.of_int seed) ~polls ());
    Test.make ~name:"resume: ode bitwise at any interrupt point" ~count:8
      (make Gen.(pair (int_range 1 300) (int_range 0 2)))
      (fun (polls, m) ->
        let method_ =
          match m with
          | 0 -> Ode.Driver.Dopri5
          | 1 -> Ode.Driver.Rosenbrock
          | _ -> Ode.Driver.Rk4 0.0005
        in
        resume_ode ~method_ ~polls ());
    Test.make ~name:"binio: int64/float/string round-trip" ~count:100
      (make
         Gen.(
           triple (map Int64.of_int int) float
             (string_size ~gen:printable (int_range 0 64))))
      (fun (i, f, s) ->
        let w = B.writer () in
        B.w_i64 w i;
        B.w_f64 w f;
        B.w_string w s;
        B.w_option B.w_f64 w (Some f);
        B.w_option B.w_i64 w None;
        let r = B.reader (B.contents w) in
        let i' = B.r_i64 r in
        let f' = B.r_f64 r in
        let s' = B.r_string r in
        let fo = B.r_option B.r_f64 r in
        let io = B.r_option B.r_i64 r in
        B.expect_end r;
        i = i'
        && Int64.bits_of_float f = Int64.bits_of_float f'
        && s = s'
        && (match fo with
           | Some f'' -> Int64.bits_of_float f = Int64.bits_of_float f''
           | None -> false)
        && io = None);
  ]

let suite =
  [
    ("model snapshot round-trip", `Quick, test_model_roundtrip);
    ("sim checkpoint round-trip", `Quick, test_sim_roundtrip_params);
    ("binio float bit patterns", `Quick, test_binio_float_bits);
    ("torn-write corpus", `Quick, test_torn_writes);
    ("cache save/load cycle", `Quick, test_save_load_cycle);
    ("warm load skips corrupt", `Quick, test_warm_load_skips_corrupt);
    ("warm load rejects stale key", `Quick, test_warm_load_rejects_stale_key);
    ("warm LRU order", `Quick, test_warm_lru_order);
    ("background persister", `Quick, test_background_persist);
    ("resume fixed interrupt points", `Slow, test_resume_fixed_points);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
