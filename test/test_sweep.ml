(* Tests for the shared domain pool and the deterministic sweep engine:
   results must come back in point order and be byte-identical for every
   job count, mirroring the stochastic ensemble's contract. *)

(* ---------------------------------------------------------- Domain_pool *)

let test_pool_order () =
  let got = Numeric.Domain_pool.run ~jobs:3 ~tasks:10 (fun i -> i * i) in
  Alcotest.(check (array int)) "in index order"
    (Array.init 10 (fun i -> i * i))
    got

let test_pool_more_jobs_than_tasks () =
  let got = Numeric.Domain_pool.run ~jobs:8 ~tasks:3 (fun i -> i) in
  Alcotest.(check (array int)) "jobs clamped to tasks" [| 0; 1; 2 |] got

let test_pool_single_task () =
  Alcotest.(check (array int)) "one task" [| 7 |]
    (Numeric.Domain_pool.run ~jobs:4 ~tasks:1 (fun _ -> 7))

let test_pool_invalid_args () =
  Alcotest.check_raises "bad tasks"
    (Invalid_argument "Domain_pool.run: tasks must be >= 1") (fun () ->
      ignore (Numeric.Domain_pool.run ~tasks:0 (fun i -> i)));
  Alcotest.check_raises "bad jobs"
    (Invalid_argument "Domain_pool.run: jobs must be >= 1") (fun () ->
      ignore (Numeric.Domain_pool.run ~jobs:0 ~tasks:2 (fun i -> i)))

let test_pool_worker_exception_propagates () =
  match
    Numeric.Domain_pool.run ~jobs:2 ~tasks:4 (fun i ->
        if i = 2 then failwith "pool boom" else i)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "pool boom" msg

let test_pool_jobs_chunk_matrix () =
  (* the scheduler's central contract, exercised even on a 1-core host
     via [oversubscribe]: byte-identical output for every job count and
     chunk size, including chunks that don't divide the task count *)
  let tasks = 13 in
  let f i = (i * i) - (3 * i) in
  let seq = Numeric.Domain_pool.run ~jobs:1 ~tasks f in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let got =
            Numeric.Domain_pool.run ~oversubscribe:true ~jobs ~chunk ~tasks f
          in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            seq got)
        [ 1; 4; tasks ])
    [ 1; 2; 3; 7 ]

let test_pool_run_worker_state () =
  (* run_worker: every task sees the state its domain built; each domain
     initializes exactly once, and no domain shares another's state *)
  let inits = Atomic.make 0 in
  let init_worker () =
    ignore (Atomic.fetch_and_add inits 1);
    ref 0
  in
  let tasks = 20 in
  let got =
    Numeric.Domain_pool.run_worker ~oversubscribe:true ~jobs:3 ~chunk:2
      ~init_worker ~tasks (fun w i ->
        incr w (* per-domain scratch mutation must not corrupt results *);
        i * 10)
  in
  Alcotest.(check (array int)) "results in index order"
    (Array.init tasks (fun i -> i * 10))
    got;
  let n = Atomic.get inits in
  Alcotest.(check bool) "1 <= inits <= jobs" true (n >= 1 && n <= 3)

let test_pool_init_worker_failure () =
  match
    Numeric.Domain_pool.run_worker ~oversubscribe:true ~jobs:2
      ~init_worker:(fun () -> failwith "init boom")
      ~tasks:4
      (fun () i -> i)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "init boom" msg

let test_pool_uncaught_accounting () =
  (* an exception escaping a submitted job must be counted, reported to
     the hook, and must not kill the worker *)
  let pool = Numeric.Domain_pool.Bounded.create ~jobs:1 () in
  let hooked = Atomic.make 0 in
  Numeric.Domain_pool.Bounded.set_on_uncaught pool (fun _ ->
      ignore (Atomic.fetch_and_add hooked 1));
  Alcotest.(check bool) "submit accepted" true
    (Numeric.Domain_pool.Bounded.try_submit pool (fun () ->
         failwith "escaped"));
  Numeric.Domain_pool.Bounded.drain pool;
  let n, last = Numeric.Domain_pool.Bounded.uncaught pool in
  Alcotest.(check int) "one uncaught" 1 n;
  (match last with
  | Some msg ->
      (* Printexc.to_string (Failure "escaped") mentions the payload *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "message kept" true (contains msg "escaped")
  | None -> Alcotest.fail "expected a last-uncaught message");
  Alcotest.(check int) "hook called once" 1 (Atomic.get hooked);
  (* the worker survived: it can still run jobs after the escape *)
  let ran = Atomic.make false in
  Alcotest.(check bool) "still accepting" true
    (Numeric.Domain_pool.Bounded.try_submit pool (fun () ->
         Atomic.set ran true));
  Numeric.Domain_pool.Bounded.drain pool;
  Alcotest.(check bool) "worker survived" true (Atomic.get ran);
  Numeric.Domain_pool.Bounded.shutdown pool

let test_pool_reusable_after_job_raise () =
  (* the fault path of the shared pool: a job that raises mid-run must
     leave the pool fully reusable, and a sweep fanned over the damaged
     pool must stay byte-identical to one over a fresh pool *)
  let net = Designs.Catalog.build "counter2" in
  let ratios = [| 150.; 400.; 1100. |] in
  let damaged = Numeric.Domain_pool.Bounded.create ~jobs:2 () in
  Numeric.Domain_pool.Bounded.set_on_uncaught damaged (fun _ -> ());
  Alcotest.(check bool) "raising job accepted" true
    (Numeric.Domain_pool.Bounded.try_submit damaged (fun () ->
         failwith "mid-chunk boom"));
  Numeric.Domain_pool.Bounded.drain damaged;
  Alcotest.(check int) "the raise was recorded" 1
    (fst (Numeric.Domain_pool.Bounded.uncaught damaged));
  let fresh = Numeric.Domain_pool.Bounded.create ~jobs:2 () in
  let via pool = Ode.Sweep.final_states ~pool ~jobs:2 ~t1:5. net ~ratios in
  let a = via damaged and b = via fresh in
  let seq = Ode.Sweep.final_states ~jobs:1 ~t1:5. net ~ratios in
  Alcotest.(check bool) "damaged pool = fresh pool (bitwise)" true (a = b);
  Alcotest.(check bool) "damaged pool = sequential (bitwise)" true (a = seq);
  Numeric.Domain_pool.Bounded.shutdown damaged;
  Numeric.Domain_pool.Bounded.shutdown fresh

(* ------------------------------------------------------------ Ode.Sweep *)

let test_sweep_empty () =
  Alcotest.(check (array int)) "empty sweep" [||]
    (Ode.Sweep.map (fun x -> x) [||])

let test_sweep_map_order () =
  let got = Ode.Sweep.map ~jobs:3 (fun x -> 2 * x) [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "point order" [| 2; 4; 6; 8; 10 |] got

let test_sweep_parallel_identical () =
  (* the deterministic mirror of the ensemble's acceptance property:
     final states are byte-identical regardless of the job count *)
  let net = Designs.Catalog.build "clock4" in
  let ratios = [| 100.; 300.; 1000.; 3000. |] in
  let go jobs = Ode.Sweep.final_states ~jobs ~t1:8. net ~ratios in
  let seq = go 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        true
        (go jobs = seq))
    [ 2; 3; 8 ]

let test_sweep_jobs_chunk_matrix () =
  (* ISSUE acceptance: sweep output byte-identical across the full
     jobs x chunk grid, with the parallel scheduler genuinely engaged
     (oversubscribe) even on a 1-core host; per-worker integrator
     workspaces must not perturb a single bit *)
  let net = Designs.Catalog.build "counter2" in
  let n_points = 7 in
  let ratios =
    Array.init n_points (fun i -> 120. *. (1.4 ** float_of_int i))
  in
  let go ~jobs ~chunk =
    Ode.Sweep.final_states ~oversubscribe:true ~jobs ~chunk ~t1:6. net ~ratios
  in
  let seq = go ~jobs:1 ~chunk:n_points in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            true
            (go ~jobs ~chunk = seq))
        [ 1; 4; n_points ])
    [ 2; 3; 7 ]

(* qcheck half of the ISSUE property: a pure float pipeline through the
   chunked scheduler is byte-identical for every jobs x chunk pair; the
   point values and task count vary per trial *)
let pool_map_identical seed =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  let n = 1 + Numeric.Rng.int rng 24 in
  let points =
    Array.init n (fun _ -> (Numeric.Rng.float rng *. 20.) -. 10.)
  in
  let f x = (sin x *. exp (0.1 *. x)) +. (x *. x /. 3.) in
  let seq = Ode.Sweep.map ~jobs:1 f points in
  List.for_all
    (fun jobs ->
      List.for_all
        (fun chunk ->
          Ode.Sweep.map ~oversubscribe:true ~jobs ~chunk f points = seq)
        [ 1; 4; n ])
    [ 1; 2; 3; 7 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sweep map byte-identical across jobs x chunk" ~count:30
      (make Gen.(int_range 0 1_000_000))
      pool_map_identical;
  ]

(* --------------------------------------------- sweeping client modules *)

let test_rate_sweep_jobs_invariant () =
  let ratios = [| 200.; 1000. |] in
  let go jobs = Molclock.Clock_analysis.rate_sweep ~jobs ~t1:40. ~ratios () in
  let a = go 1 in
  Alcotest.(check bool) "jobs=2 identical to jobs=1" true (go 2 = a);
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "ratio %d round-trips" i)
        ratios.(i) p.Molclock.Clock_analysis.ratio)
    a

let suite =
  [
    ("pool order", `Quick, test_pool_order);
    ("pool more jobs than tasks", `Quick, test_pool_more_jobs_than_tasks);
    ("pool single task", `Quick, test_pool_single_task);
    ("pool invalid args", `Quick, test_pool_invalid_args);
    ("pool worker exception propagates", `Quick, test_pool_worker_exception_propagates);
    ("pool jobs x chunk matrix", `Quick, test_pool_jobs_chunk_matrix);
    ("pool run_worker state", `Quick, test_pool_run_worker_state);
    ("pool init_worker failure", `Quick, test_pool_init_worker_failure);
    ("pool uncaught accounting", `Quick, test_pool_uncaught_accounting);
    ("pool reusable after job raise", `Quick, test_pool_reusable_after_job_raise);
    ("sweep empty", `Quick, test_sweep_empty);
    ("sweep map order", `Quick, test_sweep_map_order);
    ("parallel sweep identical", `Slow, test_sweep_parallel_identical);
    ("sweep jobs x chunk matrix", `Slow, test_sweep_jobs_chunk_matrix);
    ("rate_sweep jobs invariant", `Slow, test_rate_sweep_jobs_invariant);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
