(* Tests for the shared domain pool and the deterministic sweep engine:
   results must come back in point order and be byte-identical for every
   job count, mirroring the stochastic ensemble's contract. *)

(* ---------------------------------------------------------- Domain_pool *)

let test_pool_order () =
  let got = Numeric.Domain_pool.run ~jobs:3 ~tasks:10 (fun i -> i * i) in
  Alcotest.(check (array int)) "in index order"
    (Array.init 10 (fun i -> i * i))
    got

let test_pool_more_jobs_than_tasks () =
  let got = Numeric.Domain_pool.run ~jobs:8 ~tasks:3 (fun i -> i) in
  Alcotest.(check (array int)) "jobs clamped to tasks" [| 0; 1; 2 |] got

let test_pool_single_task () =
  Alcotest.(check (array int)) "one task" [| 7 |]
    (Numeric.Domain_pool.run ~jobs:4 ~tasks:1 (fun _ -> 7))

let test_pool_invalid_args () =
  Alcotest.check_raises "bad tasks"
    (Invalid_argument "Domain_pool.run: tasks must be >= 1") (fun () ->
      ignore (Numeric.Domain_pool.run ~tasks:0 (fun i -> i)));
  Alcotest.check_raises "bad jobs"
    (Invalid_argument "Domain_pool.run: jobs must be >= 1") (fun () ->
      ignore (Numeric.Domain_pool.run ~jobs:0 ~tasks:2 (fun i -> i)))

let test_pool_worker_exception_propagates () =
  match
    Numeric.Domain_pool.run ~jobs:2 ~tasks:4 (fun i ->
        if i = 2 then failwith "pool boom" else i)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "pool boom" msg

(* ------------------------------------------------------------ Ode.Sweep *)

let test_sweep_empty () =
  Alcotest.(check (array int)) "empty sweep" [||]
    (Ode.Sweep.map (fun x -> x) [||])

let test_sweep_map_order () =
  let got = Ode.Sweep.map ~jobs:3 (fun x -> 2 * x) [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "point order" [| 2; 4; 6; 8; 10 |] got

let test_sweep_parallel_identical () =
  (* the deterministic mirror of the ensemble's acceptance property:
     final states are byte-identical regardless of the job count *)
  let net = Designs.Catalog.build "clock4" in
  let ratios = [| 100.; 300.; 1000.; 3000. |] in
  let go jobs = Ode.Sweep.final_states ~jobs ~t1:8. net ~ratios in
  let seq = go 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        true
        (go jobs = seq))
    [ 2; 3; 8 ]

(* --------------------------------------------- sweeping client modules *)

let test_rate_sweep_jobs_invariant () =
  let ratios = [| 200.; 1000. |] in
  let go jobs = Molclock.Clock_analysis.rate_sweep ~jobs ~t1:40. ~ratios () in
  let a = go 1 in
  Alcotest.(check bool) "jobs=2 identical to jobs=1" true (go 2 = a);
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "ratio %d round-trips" i)
        ratios.(i) p.Molclock.Clock_analysis.ratio)
    a

let suite =
  [
    ("pool order", `Quick, test_pool_order);
    ("pool more jobs than tasks", `Quick, test_pool_more_jobs_than_tasks);
    ("pool single task", `Quick, test_pool_single_task);
    ("pool invalid args", `Quick, test_pool_invalid_args);
    ("pool worker exception propagates", `Quick, test_pool_worker_exception_propagates);
    ("sweep empty", `Quick, test_sweep_empty);
    ("sweep map order", `Quick, test_sweep_map_order);
    ("parallel sweep identical", `Slow, test_sweep_parallel_identical);
    ("rate_sweep jobs invariant", `Slow, test_rate_sweep_jobs_invariant);
  ]
