(* Tests for the deterministic mass-action simulator: analytic solutions,
   integrator cross-checks, stiffness, driver features. *)

open Crn

let env1 = { Rates.k_fast = 1000.; k_slow = 1. }

(* A ->{slow} B with k_slow = 1: A(t) = A0 exp(-t) *)
let decay_network a0 =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a a0;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  net

(* 2A ->{slow} B: dA/dt = -2k A^2, A(t) = A0 / (1 + 2 k A0 t) *)
let dimerize_network a0 =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a a0;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 2) ] ~products:[ (b, 1) ] Rates.slow);
  net

let test_deriv_simple () =
  let net = decay_network 10. in
  let sys = Ode.Deriv.compile env1 net in
  let dx = Ode.Deriv.eval sys [| 10.; 0. |] in
  Alcotest.(check (float 1e-12)) "dA" (-10.) dx.(0);
  Alcotest.(check (float 1e-12)) "dB" 10. dx.(1);
  Alcotest.(check (float 1e-12)) "flux" 10. (Ode.Deriv.flux sys [| 10.; 0. |] 0)

let test_deriv_bimolecular () =
  let net = dimerize_network 4. in
  let sys = Ode.Deriv.compile env1 net in
  let dx = Ode.Deriv.eval sys [| 4.; 0. |] in
  (* flux = k A^2 = 16; dA = -2*16, dB = +16 *)
  Alcotest.(check (float 1e-12)) "dA" (-32.) dx.(0);
  Alcotest.(check (float 1e-12)) "dB" 16. dx.(1)

let test_deriv_zero_order () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.add_reaction net
    (Reaction.make ~reactants:[] ~products:[ (x, 1) ] Rates.slow);
  let sys = Ode.Deriv.compile env1 net in
  let dx = Ode.Deriv.eval sys [| 0. |] in
  Alcotest.(check (float 1e-12)) "constant source" 1. dx.(0)

let test_deriv_jacobian_matches_fd () =
  (* analytic Jacobian vs finite differences on a mixed network *)
  let net = Network.create () in
  let x = Network.species net "X"
  and y = Network.species net "Y"
  and z = Network.species net "Z" in
  Network.set_init net x 3.;
  Network.set_init net y 2.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 2) ] ~products:[ (z, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1); (y, 1) ] ~products:[ (z, 2) ] Rates.fast);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (z, 1) ] ~products:[ (x, 1); (y, 1) ] Rates.slow);
  let sys = Ode.Deriv.compile env1 net in
  let x0 = [| 3.; 2.; 1.5 |] in
  let jac = Ode.Deriv.jacobian sys x0 in
  let h = 1e-6 in
  let f0 = Ode.Deriv.eval sys x0 in
  for j = 0 to 2 do
    let xp = Array.copy x0 in
    xp.(j) <- xp.(j) +. h;
    let fp = Ode.Deriv.eval sys xp in
    for i = 0 to 2 do
      let fd = (fp.(i) -. f0.(i)) /. h in
      if Float.abs (jac.(i).(j) -. fd) > 1e-2 *. (1. +. Float.abs fd) then
        Alcotest.failf "J(%d,%d): analytic %g vs fd %g" i j jac.(i).(j) fd
    done
  done

let final_a integrate =
  let net = decay_network 10. in
  let sys = Ode.Deriv.compile env1 net in
  let x = integrate sys (Network.initial_state net) in
  x.(0)

let test_euler_decay () =
  let a =
    final_a (fun sys x0 ->
        Ode.Fixed.integrate ~step:Ode.Fixed.euler_step ~h:1e-4 ~t0:0. ~t1:1.
          ~on_sample:(fun _ _ -> ()) sys x0)
  in
  Alcotest.(check (float 1e-2)) "euler e^-1" (10. *. exp (-1.)) a

let test_rk4_decay () =
  let a =
    final_a (fun sys x0 ->
        Ode.Fixed.integrate ~step:Ode.Fixed.rk4_step ~h:1e-2 ~t0:0. ~t1:1.
          ~on_sample:(fun _ _ -> ()) sys x0)
  in
  Alcotest.(check (float 1e-7)) "rk4 e^-1" (10. *. exp (-1.)) a

let test_dopri5_decay () =
  let a =
    final_a (fun sys x0 ->
        fst
          (Ode.Dopri5.integrate ~rtol:1e-9 ~atol:1e-12 ~t0:0. ~t1:1.
             ~on_sample:(fun _ _ -> ()) sys x0))
  in
  Alcotest.(check (float 1e-7)) "dopri5 e^-1" (10. *. exp (-1.)) a

let test_rosenbrock_decay () =
  let a =
    final_a (fun sys x0 ->
        fst
          (Ode.Rosenbrock.integrate ~rtol:1e-8 ~atol:1e-10 ~t0:0. ~t1:1.
             ~on_sample:(fun _ _ -> ()) sys x0))
  in
  Alcotest.(check (float 1e-5)) "ros2 e^-1" (10. *. exp (-1.)) a

let test_dopri5_dimerization () =
  let net = dimerize_network 5. in
  let sys = Ode.Deriv.compile env1 net in
  let x, _ =
    Ode.Dopri5.integrate ~rtol:1e-9 ~atol:1e-12 ~t0:0. ~t1:2.
      ~on_sample:(fun _ _ -> ())
      sys (Network.initial_state net)
  in
  let analytic = 5. /. (1. +. (2. *. 1. *. 5. *. 2.)) in
  Alcotest.(check (float 1e-6)) "A(2) analytic" analytic x.(0);
  (* mass conservation: A + 2B = A0 *)
  Alcotest.(check (float 1e-6)) "A + 2B" 5. (x.(0) +. (2. *. x.(1)))

let test_integrators_agree () =
  (* reversible pair under unequal rates: all three methods converge to the
     same trajectory point *)
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.set_init net x 8.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] (Rates.slow_scaled 3.));
  let sys = Ode.Deriv.compile env1 net in
  let x0 = Network.initial_state net in
  let silent _ _ = () in
  let rk4 =
    Ode.Fixed.integrate ~step:Ode.Fixed.rk4_step ~h:1e-3 ~t0:0. ~t1:3.
      ~on_sample:silent sys x0
  in
  let dp, _ = Ode.Dopri5.integrate ~t0:0. ~t1:3. ~on_sample:silent sys x0 in
  let rb, _ = Ode.Rosenbrock.integrate ~t0:0. ~t1:3. ~on_sample:silent sys x0 in
  Alcotest.(check (float 1e-4)) "dopri5 vs rk4" rk4.(0) dp.(0);
  Alcotest.(check (float 1e-3)) "rosenbrock vs rk4" rk4.(0) rb.(0);
  (* and the equilibrium ratio approaches k_back/k_fwd = 3 *)
  Alcotest.(check (float 1e-2)) "equilibrium X" 6. dp.(0)

let test_rosenbrock_stiff () =
  (* extremely separated rates: X ->{fast} Y ->{slow} Z with ratio 1e8;
     the semi-implicit integrator must cross the fast transient cheaply *)
  let net = Network.create () in
  let x = Network.species net "X"
  and y = Network.species net "Y"
  and z = Network.species net "Z" in
  Network.set_init net x 1.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.fast);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (z, 1) ] Rates.slow);
  let env = { Rates.k_fast = 1e8; k_slow = 1. } in
  let sys = Ode.Deriv.compile env net in
  let xf, stats =
    Ode.Rosenbrock.integrate ~t0:0. ~t1:5. ~on_sample:(fun _ _ -> ()) sys
      (Network.initial_state net)
  in
  Alcotest.(check (float 1e-3)) "Z(5) = 1 - e^-5" (1. -. exp (-5.)) xf.(2);
  Alcotest.(check bool) "few steps despite stiffness" true (stats.steps < 20000)

let test_dopri5_max_steps () =
  let net = decay_network 1. in
  let sys = Ode.Deriv.compile env1 net in
  match
    Ode.Dopri5.integrate ~max_steps:2 ~t0:0. ~t1:100.
      ~on_sample:(fun _ _ -> ())
      sys (Network.initial_state net)
  with
  | exception Ode.Solver_error.Error
      { solver = "Dopri5"; reason = Max_steps 2; _ } ->
      ()
  | _ -> Alcotest.fail "expected step-budget failure"

(* ---------------------------------------------------------------- Trace *)

let test_trace_record () =
  let tr = Ode.Trace.create ~names:[| "A"; "B" |] in
  Ode.Trace.record tr 0. [| 1.; 2. |];
  Ode.Trace.record tr 1. [| 3.; 4. |];
  Alcotest.(check int) "length" 2 (Ode.Trace.length tr);
  Alcotest.(check (array (float 1e-12))) "column A" [| 1.; 3. |] (Ode.Trace.column tr 0);
  Alcotest.(check (array (float 1e-12))) "column B" [| 2.; 4. |] (Ode.Trace.column_named tr "B");
  Alcotest.(check (float 1e-12)) "interp" 2. (Ode.Trace.value_at tr ~species:0 0.5);
  Alcotest.(check (float 1e-12)) "final" 4. (Ode.Trace.final_value tr "B");
  Alcotest.(check (float 1e-12)) "last_time" 1. (Ode.Trace.last_time tr)

let test_trace_growth () =
  let tr = Ode.Trace.create ~names:[| "A" |] in
  for i = 0 to 999 do
    Ode.Trace.record tr (float_of_int i) [| float_of_int (i * i) |]
  done;
  Alcotest.(check int) "length" 1000 (Ode.Trace.length tr);
  Alcotest.(check (float 1e-12)) "deep sample" (999. *. 999.)
    (Ode.Trace.final_value tr "A")

let test_trace_monotonic_times () =
  let tr = Ode.Trace.create ~names:[| "A" |] in
  Ode.Trace.record tr 1. [| 0. |];
  Alcotest.check_raises "backwards"
    (Invalid_argument "Trace.record: time went backwards") (fun () ->
      Ode.Trace.record tr 0.5 [| 0. |])

let test_trace_csv () =
  let tr = Ode.Trace.create ~names:[| "A"; "B" |] in
  Ode.Trace.record tr 0. [| 1.; 2. |];
  let csv = Ode.Trace.to_csv tr in
  Alcotest.(check string) "csv" "time,A,B\n0,1,2\n" csv

let test_trace_restrict () =
  let tr = Ode.Trace.create ~names:[| "A"; "B"; "C" |] in
  Ode.Trace.record tr 0. [| 1.; 2.; 3. |];
  let sub = Ode.Trace.restrict tr [ "C"; "A" ] in
  Alcotest.(check (array string)) "names" [| "C"; "A" |] (Ode.Trace.names sub);
  Alcotest.(check (array (float 1e-12))) "row" [| 3.; 1. |] (Ode.Trace.state_at_index sub 0)

let test_trace_chunk_boundaries () =
  (* 10 species puts ~409 rows per storage chunk; 2000 rows span several
     chunks, so every accessor is exercised across chunk seams *)
  let names = Array.init 10 (fun i -> Printf.sprintf "S%d" i) in
  let tr = Ode.Trace.create ~names in
  for i = 0 to 1999 do
    Ode.Trace.record tr (float_of_int i)
      (Array.init 10 (fun s -> float_of_int ((i * 10) + s)))
  done;
  Alcotest.(check int) "length" 2000 (Ode.Trace.length tr);
  List.iter
    (fun i ->
      let row = Ode.Trace.state_at_index tr i in
      Alcotest.(check (float 0.))
        (Printf.sprintf "row %d" i)
        (float_of_int ((i * 10) + 3))
        row.(3))
    [ 0; 408; 409; 817; 818; 1999 ];
  let col = Ode.Trace.column tr 7 in
  Alcotest.(check (float 0.)) "column across chunks"
    (float_of_int ((1500 * 10) + 7))
    col.(1500);
  let sub = Ode.Trace.restrict tr [ "S9"; "S0" ] in
  Alcotest.(check (float 0.)) "restrict across chunks"
    (float_of_int ((1234 * 10) + 9))
    (Ode.Trace.state_at_index sub 1234).(0)

(* --------------------------------------------------------------- Driver *)

let test_driver_simulate () =
  let net = decay_network 10. in
  let tr = Ode.Driver.simulate ~t1:1. net in
  Alcotest.(check (float 1e-4)) "A(1)" (10. *. exp (-1.)) (Ode.Trace.final_value tr "A");
  Alcotest.(check (float 1e-4)) "B(1)" (10. *. (1. -. exp (-1.))) (Ode.Trace.final_value tr "B");
  Alcotest.(check (float 1e-9)) "starts at 0" 0. (Ode.Trace.times tr).(0)

let test_driver_methods_agree () =
  let net = dimerize_network 6. in
  let by m = Ode.Trace.final_value (Ode.Driver.simulate ~method_:m ~t1:1. net) "A" in
  let d = by Ode.Driver.Dopri5 in
  Alcotest.(check (float 1e-3)) "rosenbrock" d (by Ode.Driver.Rosenbrock);
  Alcotest.(check (float 1e-3)) "rk4" d (by (Ode.Driver.Rk4 1e-3))

let test_driver_injection () =
  (* inert species, one injection: step from 0 to 5 at t = 2 *)
  let net = Network.create () in
  let x = Network.species net "X" in
  ignore x;
  (* a reaction elsewhere so the system is nonempty *)
  let a = Network.species net "A" in
  Network.set_init net a 1.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (a, 1) ] Rates.slow);
  let tr =
    Ode.Driver.simulate
      ~injections:[ { Ode.Driver.at = 2.; species = "X"; amount = 5. } ]
      ~t1:4. net
  in
  Alcotest.(check (float 1e-9)) "before" 0. (Ode.Trace.value_at tr ~species:x 1.9);
  Alcotest.(check (float 1e-9)) "after" 5. (Ode.Trace.value_at tr ~species:x 2.1);
  Alcotest.(check (float 1e-9)) "final" 5. (Ode.Trace.final_value tr "X")

let test_driver_injection_order () =
  (* injections given out of order are applied in time order *)
  let net = Network.create () in
  let _ = Network.species net "X" in
  let a = Network.species net "A" in
  Network.set_init net a 1.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (a, 1) ] Rates.slow);
  let tr =
    Ode.Driver.simulate
      ~injections:
        [
          { Ode.Driver.at = 3.; species = "X"; amount = 1. };
          { Ode.Driver.at = 1.; species = "X"; amount = 1. };
        ]
      ~t1:4. net
  in
  Alcotest.(check (float 1e-9)) "mid" 1. (Ode.Trace.value_at tr ~species:0 2.);
  Alcotest.(check (float 1e-9)) "final" 2. (Ode.Trace.final_value tr "X")

let test_driver_unknown_injection () =
  let net = decay_network 1. in
  Alcotest.check_raises "unknown species"
    (Invalid_argument "Driver: unknown injection species \"nope\"") (fun () ->
      ignore
        (Ode.Driver.simulate
           ~injections:[ { Ode.Driver.at = 1.; species = "nope"; amount = 1. } ]
           ~t1:2. net))

let test_driver_thinning () =
  let net = decay_network 10. in
  (* a fixed-step method guarantees a dense trace to thin *)
  let method_ = Ode.Driver.Rk4 0.01 in
  let dense = Ode.Driver.simulate ~method_ ~t1:1. net in
  let thin = Ode.Driver.simulate ~method_ ~thin:20 ~t1:1. net in
  Alcotest.(check bool) "thinned trace is much shorter" true
    (Ode.Trace.length thin * 10 < Ode.Trace.length dense);
  (* endpoints preserved *)
  Alcotest.(check (float 1e-9)) "starts at 0" 0. (Ode.Trace.times thin).(0);
  Alcotest.(check (float 1e-6)) "same final value"
    (Ode.Trace.final_value dense "A")
    (Ode.Trace.final_value thin "A");
  Alcotest.check_raises "bad thin"
    (Invalid_argument "Driver.simulate: thin must be >= 1") (fun () ->
      ignore (Ode.Driver.simulate ~thin:0 ~t1:1. net))

let test_driver_thinning_keeps_injections () =
  let net = Network.create () in
  let _ = Network.species net "X" in
  let a = Network.species net "A" in
  Network.set_init net a 1.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (a, 1) ] Rates.slow);
  let tr =
    Ode.Driver.simulate ~thin:50
      ~injections:[ { Ode.Driver.at = 2.; species = "X"; amount = 5. } ]
      ~t1:4. net
  in
  (* the post-injection boundary sample survives thinning *)
  Alcotest.(check (float 1e-9)) "after injection" 5.
    (Ode.Trace.value_at tr ~species:0 2.01)

let test_driver_final_state () =
  let net = decay_network 10. in
  let x = Ode.Driver.final_state ~t1:1. net in
  Alcotest.(check (float 1e-4)) "A(1)" (10. *. exp (-1.)) x.(0)

(* --------------------------------------------------------------- Steady *)

let test_steady_found () =
  let net = decay_network 5. in
  match Ode.Steady.find ~f_tol:1e-6 ~chunk:5. ~t_max:100. net with
  | None -> Alcotest.fail "expected steady state"
  | Some (t, x) ->
      Alcotest.(check bool) "A exhausted" true (x.(0) < 1e-4);
      Alcotest.(check (float 1e-3)) "B = A0" 5. x.(1);
      Alcotest.(check bool) "found in time" true (t <= 100.)

let test_steady_not_found () =
  (* zero-order source grows forever: no steady state *)
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.add_reaction net
    (Reaction.make ~reactants:[] ~products:[ (x, 1) ] Rates.slow);
  Alcotest.(check bool) "none" true
    (Ode.Steady.find ~chunk:1. ~t_max:5. net = None)

(* ----------------------------------------- CSR kernel vs boxed reference *)

(* The flat CSR kernel compiles reactions in the same order with the same
   arithmetic ordering as the retained boxed implementation, so f and the
   Jacobian must agree *bitwise* — no tolerance. *)

let test_csr_matches_reference_on_catalog () =
  List.iter
    (fun entry ->
      let net = entry.Designs.Catalog.build () in
      let env = Rates.default_env in
      let sys = Ode.Deriv.compile env net in
      let rsys = Ode.Deriv.Reference.compile env net in
      let n = Ode.Deriv.dim sys in
      let check label x =
        let dx = Array.make n 0. and dx' = Array.make n 0. in
        Ode.Deriv.f sys 0. x dx;
        Ode.Deriv.Reference.f rsys 0. x dx';
        if dx <> dx' then
          Alcotest.failf "%s (%s): flat RHS differs from reference"
            entry.Designs.Catalog.name label;
        if Ode.Deriv.jacobian sys x <> Ode.Deriv.Reference.jacobian rsys x then
          Alcotest.failf "%s (%s): flat Jacobian differs from reference"
            entry.Designs.Catalog.name label
      in
      let x0 = Network.initial_state net in
      check "initial" x0;
      (* a strictly positive off-equilibrium state *)
      check "perturbed"
        (Array.mapi
           (fun i v -> v +. (0.125 *. float_of_int (1 + (i mod 7))))
           x0))
    (Designs.Catalog.all ())

(* a deterministic pseudo-random network with float concentrations and
   stoichiometric coefficients up to 4, so every pow_int branch runs *)
let random_float_network rng ~ns ~nr =
  let net = Network.create () in
  let species =
    Array.init ns (fun i -> Network.species net (Printf.sprintf "S%d" i))
  in
  Array.iter
    (fun s -> Network.set_init net s (20. *. Numeric.Rng.float rng))
    species;
  let side max_len max_coeff =
    let len = Numeric.Rng.int rng (max_len + 1) in
    List.init len (fun _ ->
        (species.(Numeric.Rng.int rng ns), 1 + Numeric.Rng.int rng max_coeff))
  in
  let added = ref 0 in
  while !added < nr do
    let reactants = side 3 4 and products = side 2 2 in
    if reactants <> [] || products <> [] then begin
      Network.add_reaction net
        (Reaction.make ~reactants ~products
           (Rates.slow_scaled (0.5 +. Numeric.Rng.float rng)));
      incr added
    end
  done;
  net

(* ------------------------------------------------- integrator counters *)

let test_dopri5_fsal_evals () =
  (* stage 7 of an accepted step is stage 1 of the next (pointer swap), so
     every attempt costs exactly six fresh evaluations after the seed one *)
  let net = Designs.Catalog.build "clock3" in
  let sys = Ode.Deriv.compile Rates.default_env net in
  let _, st =
    Ode.Dopri5.integrate ~t0:0. ~t1:20.
      ~on_sample:(fun _ _ -> ())
      sys (Network.initial_state net)
  in
  Alcotest.(check bool) "made progress" true (st.Ode.Dopri5.steps > 0);
  Alcotest.(check int) "evals = 1 + 6 (steps + rejected)"
    (1 + (6 * (st.Ode.Dopri5.steps + st.Ode.Dopri5.rejected)))
    st.Ode.Dopri5.evals

let test_rosenbrock_jacobian_reuse () =
  (* a rejection retries the same state with a smaller h, so the cached
     Jacobian is reused and only W is refactorized *)
  let net = Designs.Catalog.build "clock3" in
  let sys = Ode.Deriv.compile Rates.default_env net in
  let _, st =
    Ode.Rosenbrock.integrate ~t0:0. ~t1:30.
      ~on_sample:(fun _ _ -> ())
      sys (Network.initial_state net)
  in
  Alcotest.(check int) "jac_evals = steps" st.Ode.Rosenbrock.steps
    st.Ode.Rosenbrock.jac_evals;
  Alcotest.(check int) "jac_reused = rejected" st.Ode.Rosenbrock.rejected
    st.Ode.Rosenbrock.jac_reused;
  (* each accepted step factorized once; each error rejection also
     factorized (singular-W rejections bail before counting) *)
  Alcotest.(check bool) "factorizations bounded by attempts" true
    (st.Ode.Rosenbrock.factorizations >= st.Ode.Rosenbrock.steps
    && st.Ode.Rosenbrock.factorizations
       <= st.Ode.Rosenbrock.steps + st.Ode.Rosenbrock.rejected)

(* ------------------------------------------------------- property tests *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ode: closed X<->Y conserves total mass" ~count:50
      (make Gen.(pair (float_range 0.5 20.) (float_range 0.5 20.)))
      (fun (x0, y0) ->
        let net = Network.create () in
        let x = Network.species net "X" and y = Network.species net "Y" in
        Network.set_init net x x0;
        Network.set_init net y y0;
        Network.add_reaction net
          (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
        Network.add_reaction net
          (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] Rates.fast);
        let xf = Ode.Driver.final_state ~t1:2. net in
        Float.abs (xf.(0) +. xf.(1) -. (x0 +. y0)) < 1e-4 *. (x0 +. y0));
    Test.make ~name:"ode: decay endpoint matches analytic for random A0/T"
      ~count:50
      (make Gen.(pair (float_range 0.1 50.) (float_range 0.1 3.)))
      (fun (a0, t1) ->
        let net = decay_network a0 in
        let xf = Ode.Driver.final_state ~t1 net in
        Float.abs (xf.(0) -. (a0 *. exp (-.t1))) < 1e-4 *. a0);
    Test.make ~name:"ode: states remain non-negative" ~count:30
      (make Gen.(float_range 0.5 30.))
      (fun a0 ->
        let net = dimerize_network a0 in
        let tr = Ode.Driver.simulate ~t1:3. net in
        let ok = ref true in
        for i = 0 to Ode.Trace.length tr - 1 do
          Array.iter
            (fun v -> if v < 0. then ok := false)
            (Ode.Trace.state_at_index tr i)
        done;
        !ok);
    Test.make ~name:"ode: flat CSR kernel equals boxed reference bitwise"
      ~count:100
      (make Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
      (fun (net_seed, state_seed) ->
        let rng = Numeric.Rng.create (Int64.of_int net_seed) in
        let ns = 1 + Numeric.Rng.int rng 6
        and nr = 1 + Numeric.Rng.int rng 10 in
        let net = random_float_network rng ~ns ~nr in
        let sys = Ode.Deriv.compile Rates.default_env net in
        let rsys = Ode.Deriv.Reference.compile Rates.default_env net in
        let n = Network.n_species net in
        let srng = Numeric.Rng.create (Int64.of_int state_seed) in
        let x = Array.init n (fun _ -> 10. *. Numeric.Rng.float srng) in
        let dx = Array.make n 0. and dx' = Array.make n 0. in
        Ode.Deriv.f sys 0. x dx;
        Ode.Deriv.Reference.f rsys 0. x dx';
        dx = dx'
        && Ode.Deriv.jacobian sys x = Ode.Deriv.Reference.jacobian rsys x);
    Test.make ~name:"ode: jacobian_into leaves no residue in a reused matrix"
      ~count:100
      (make Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
      (fun (net_seed, state_seed) ->
        let rng = Numeric.Rng.create (Int64.of_int net_seed) in
        let ns = 1 + Numeric.Rng.int rng 6
        and nr = 1 + Numeric.Rng.int rng 10 in
        let net = random_float_network rng ~ns ~nr in
        let sys = Ode.Deriv.compile Rates.default_env net in
        let n = Network.n_species net in
        let srng = Numeric.Rng.create (Int64.of_int state_seed) in
        let x1 = Array.init n (fun _ -> 10. *. Numeric.Rng.float srng) in
        let x2 = Array.init n (fun _ -> 10. *. Numeric.Rng.float srng) in
        let jac = Numeric.Mat.create n n 0. in
        Ode.Deriv.jacobian_into sys x1 jac;
        Ode.Deriv.jacobian_into sys x2 jac;
        jac = Ode.Deriv.jacobian sys x2);
  ]

let suite =
  [
    ("deriv simple", `Quick, test_deriv_simple);
    ("deriv bimolecular", `Quick, test_deriv_bimolecular);
    ("deriv zero order", `Quick, test_deriv_zero_order);
    ("deriv jacobian vs fd", `Quick, test_deriv_jacobian_matches_fd);
    ("euler decay", `Quick, test_euler_decay);
    ("rk4 decay", `Quick, test_rk4_decay);
    ("dopri5 decay", `Quick, test_dopri5_decay);
    ("rosenbrock decay", `Quick, test_rosenbrock_decay);
    ("dopri5 dimerization", `Quick, test_dopri5_dimerization);
    ("integrators agree", `Quick, test_integrators_agree);
    ("rosenbrock stiff", `Quick, test_rosenbrock_stiff);
    ("dopri5 max steps", `Quick, test_dopri5_max_steps);
    ("trace record", `Quick, test_trace_record);
    ("trace growth", `Quick, test_trace_growth);
    ("trace monotonic times", `Quick, test_trace_monotonic_times);
    ("trace csv", `Quick, test_trace_csv);
    ("trace restrict", `Quick, test_trace_restrict);
    ("trace chunk boundaries", `Quick, test_trace_chunk_boundaries);
    ("csr matches reference on catalog", `Quick, test_csr_matches_reference_on_catalog);
    ("dopri5 fsal eval count", `Quick, test_dopri5_fsal_evals);
    ("rosenbrock jacobian reuse", `Quick, test_rosenbrock_jacobian_reuse);
    ("driver simulate", `Quick, test_driver_simulate);
    ("driver methods agree", `Quick, test_driver_methods_agree);
    ("driver injection", `Quick, test_driver_injection);
    ("driver injection order", `Quick, test_driver_injection_order);
    ("driver unknown injection", `Quick, test_driver_unknown_injection);
    ("driver thinning", `Quick, test_driver_thinning);
    ("driver thinning keeps injections", `Quick, test_driver_thinning_keeps_injections);
    ("driver final state", `Quick, test_driver_final_state);
    ("steady found", `Quick, test_steady_found);
    ("steady not found", `Quick, test_steady_not_found);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
