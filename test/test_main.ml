let () =
  Alcotest.run "mrsc"
    [
      ("numeric", Test_numeric.suite);
      ("exact", Test_exact.suite);
      ("crn", Test_crn.suite);
      ("equiv", Test_equiv.suite);
      ("slice", Test_slice.suite);
      ("ode", Test_ode.suite);
      ("ssa", Test_ssa.suite);
      ("ensemble", Test_ensemble.suite);
      ("sweep", Test_sweep.suite);
      ("analysis", Test_analysis.suite);
      ("ri_modules", Test_ri_modules.suite);
      ("dual_rail", Test_dual_rail.suite);
      ("molclock", Test_molclock.suite);
      ("core", Test_core.suite);
      ("sfg", Test_sfg.suite);
      ("async", Test_async.suite);
      ("dsd", Test_dsd.suite);
      ("stochastic", Test_stochastic.suite);
      ("hybrid", Test_hybrid.suite);
      ("networks", Test_networks.suite);
      ("service", Test_service.suite);
      ("snapshot", Test_snapshot.suite);
      ("fault", Test_fault.suite);
      ("ring", Test_ring.suite);
      ("gateway", Test_gateway.suite);
      ("certificate", Test_certificate.suite);
      ("chassis", Test_chassis.suite);
    ]
