(* Tests for the incremental-propensity SSA engine and the multicore
   ensemble runner: the dependency graph must make incremental updates
   indistinguishable from full recompute, and parallel ensembles must be
   byte-identical to sequential ones. *)

open Crn

(* a deterministic pseudo-random network: [ns] species, [nr] reactions with
   0-2 distinct reactants and 0-2 products, coefficients 1-2 *)
let random_network rng ~ns ~nr =
  let net = Network.create () in
  let species =
    Array.init ns (fun i -> Network.species net (Printf.sprintf "S%d" i))
  in
  Array.iter
    (fun s ->
      Network.set_init net s (float_of_int (Numeric.Rng.int rng 40)))
    species;
  let side max_len =
    let len = Numeric.Rng.int rng (max_len + 1) in
    List.init len (fun _ ->
        (species.(Numeric.Rng.int rng ns), 1 + Numeric.Rng.int rng 2))
  in
  let added = ref 0 in
  while !added < nr do
    let reactants = side 2 and products = side 2 in
    if reactants <> [] || products <> [] then begin
      Network.add_reaction net
        (Reaction.make ~reactants ~products
           (Rates.slow_scaled (0.5 +. Numeric.Rng.float rng)));
      incr added
    end
  done;
  net

(* the ISSUE's qcheck property: maintain propensities incrementally through
   a random fireable event sequence, and after every event they must equal
   a full from-scratch recompute, exactly *)
let incremental_matches_full (net_seed, ev_seed) =
  let rng = Numeric.Rng.create (Int64.of_int net_seed) in
  let ns = 2 + Numeric.Rng.int rng 4 and nr = 1 + Numeric.Rng.int rng 8 in
  let net = random_network rng ~ns ~nr in
  let reactions = Ssa.Compiled.compile Rates.default_env net in
  let deps =
    Ssa.Dep_graph.build reactions ~n_species:(Network.n_species net)
  in
  let counts =
    Array.map
      (fun x -> int_of_float (Float.round x))
      (Network.initial_state net)
  in
  let m = Array.length reactions in
  let props = Array.map (fun r -> Ssa.Compiled.propensity r counts) reactions in
  let ev = Numeric.Rng.create (Int64.of_int ev_seed) in
  let ok = ref true in
  (try
     for _ = 1 to 60 do
       (* fire a uniformly chosen fireable reaction *)
       let fireable =
         Array.to_list
           (Array.of_seq
              (Seq.filter
                 (fun j -> props.(j) > 0.)
                 (Seq.init m (fun j -> j))))
       in
       if fireable = [] then raise Exit;
       let j =
         List.nth fireable (Numeric.Rng.int ev (List.length fireable))
       in
       Ssa.Compiled.apply reactions.(j) counts 1;
       Array.iter
         (fun i -> props.(i) <- Ssa.Compiled.propensity reactions.(i) counts)
         (Array.to_seq (Ssa.Dep_graph.affected deps j) |> Array.of_seq);
       (* every propensity — affected or not — must equal full recompute *)
       for i = 0 to m - 1 do
         if props.(i) <> Ssa.Compiled.propensity reactions.(i) counts then
           ok := false
       done;
       if not !ok then raise Exit
     done
   with Exit -> ());
  !ok

(* the ISSUE's other qcheck property: ensemble output is byte-identical
   across jobs in {1,2,3,7} x chunk in {1,4,whole-range}, with the
   parallel scheduler genuinely engaged via [oversubscribe] even on a
   1-core host; trial varies the root seed and the run count *)
let ensemble_jobs_chunk_identical (root, runs_m1) =
  let runs = 1 + runs_m1 in
  let seed = Int64.of_int root in
  let net = Designs.Catalog.build "counter2" in
  let model = Ssa.Gillespie.compile_model Rates.default_env net in
  let go ~jobs ~chunk =
    Ssa.Ensemble.map_with ~oversubscribe:true ~jobs ~chunk ~seed
      ~init_worker:(fun () -> Ssa.Gillespie.make_arena model)
      ~runs
      (fun arena _ s ->
        (Ssa.Gillespie.run ~seed:s ~arena ~t1:3. net).Ssa.Gillespie.final)
  in
  let seq = go ~jobs:1 ~chunk:runs in
  List.for_all
    (fun jobs ->
      List.for_all
        (fun chunk -> go ~jobs ~chunk = seq)
        [ 1; 4; runs ])
    [ 1; 2; 3; 7 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"incremental propensities equal full recompute" ~count:100
      (make Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
      incremental_matches_full;
    Test.make ~name:"ensemble byte-identical across jobs x chunk" ~count:10
      (make Gen.(pair (int_range 0 1_000_000) (int_range 0 7)))
      ensemble_jobs_chunk_identical;
  ]

(* ------------------------------------------------------- dep graph *)

let test_dep_graph_decay_chain () =
  (* A -> B -> C: firing 0 affects both (consumes A, produces B); firing 1
     affects only itself (C is no reactant) *)
  let net = Network.create () in
  let a = Network.species net "A"
  and b = Network.species net "B"
  and c = Network.species net "C" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (b, 1) ] ~products:[ (c, 1) ] Rates.slow);
  let reactions = Ssa.Compiled.compile Rates.default_env net in
  let g = Ssa.Dep_graph.build reactions ~n_species:3 in
  Alcotest.(check (array int)) "deps of A->B" [| 0; 1 |]
    (Ssa.Dep_graph.affected g 0);
  Alcotest.(check (array int)) "deps of B->C" [| 1 |]
    (Ssa.Dep_graph.affected g 1);
  Alcotest.(check int) "max degree" 2 (Ssa.Dep_graph.max_out_degree g)

let test_dep_graph_catalyst_no_edge () =
  (* X + E -> Y + E: E is a catalyst (zero net delta), so the E-consuming
     reaction 1 is not affected by firing reaction 0 through E — only
     through nothing at all (X down, Y up touch no reactant of 1) *)
  let net = Network.create () in
  let x = Network.species net "X"
  and e = Network.species net "E"
  and y = Network.species net "Y"
  and z = Network.species net "Z" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1); (e, 1) ] ~products:[ (y, 1); (e, 1) ]
       Rates.fast);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (e, 1) ] ~products:[ (z, 1) ] Rates.slow);
  let reactions = Ssa.Compiled.compile Rates.default_env net in
  let g = Ssa.Dep_graph.build reactions ~n_species:4 in
  Alcotest.(check (array int)) "catalyst creates no edge" [| 0 |]
    (Ssa.Dep_graph.affected g 0)

(* ------------------------------------------- incremental vs naive runs *)

let test_refresh_every_one_is_full_recompute () =
  (* refresh_every:1 rebuilds everything after every event — the engine
     degenerates to the naive direct method; the trajectory must agree
     with the default incremental cadence *)
  let net = Designs.Catalog.build "counter2" in
  let a = Ssa.Gillespie.run ~seed:7L ~t1:20. ~refresh_every:1 net in
  let b = Ssa.Gillespie.run ~seed:7L ~t1:20. net in
  Alcotest.(check int) "same event count" a.Ssa.Gillespie.n_events
    b.Ssa.Gillespie.n_events;
  Alcotest.(check (array (float 0.))) "same final state" a.final b.final

let test_max_events_structured_error () =
  let net = Designs.Catalog.build "clock4" in
  (match Ssa.Gillespie.run_result ~seed:1L ~max_events:100 ~t1:50. net with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error (Ssa.Gillespie.Max_events_exceeded { max_events; t }) ->
      Alcotest.(check int) "budget" 100 max_events;
      Alcotest.(check bool) "stopped mid-run" true (t >= 0. && t < 50.));
  match Ssa.Gillespie.run ~seed:1L ~max_events:100 ~t1:50. net with
  | exception Ssa.Gillespie.Error (Ssa.Gillespie.Max_events_exceeded _) -> ()
  | _ -> Alcotest.fail "run should raise Gillespie.Error"

let test_tau_leap_structured_error () =
  let net = Designs.Catalog.build "clock4" in
  match Ssa.Tau_leap.run_result ~seed:1L ~max_steps:10 ~t1:50. net with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error (Ssa.Tau_leap.Max_steps_exceeded { max_steps; _ }) ->
      Alcotest.(check int) "budget" 10 max_steps

(* ------------------------------------------------------- ensemble *)

let test_ensemble_parallel_identical () =
  (* the ISSUE's acceptance property: ensemble output is byte-identical
     regardless of the job count *)
  let net = Designs.Catalog.build "clock4" in
  let go jobs =
    Ssa.Ensemble.map ~jobs ~seed:42L ~runs:6 (fun _ s ->
        (Ssa.Gillespie.run ~seed:s ~t1:10. net).Ssa.Gillespie.final)
  in
  let seq = go 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        true
        (go jobs = seq))
    [ 2; 3; 6 ]

let test_ensemble_mean_final_jobs_invariant () =
  let net = Designs.Catalog.build "clock4" in
  let m1, s1 =
    Ssa.Gillespie.mean_final ~runs:5 ~jobs:1 ~seed:9L ~t1:10. net "clk.P0"
  in
  let m4, s4 =
    Ssa.Gillespie.mean_final ~runs:5 ~jobs:4 ~seed:9L ~t1:10. net "clk.P0"
  in
  Alcotest.(check (float 0.)) "mean identical" m1 m4;
  Alcotest.(check (float 0.)) "std identical" s1 s4

let test_ensemble_trajectory_order () =
  (* results come back in trajectory order with the documented seeds *)
  let seeds = Ssa.Ensemble.seeds ~seed:5L ~runs:8 in
  let got = Ssa.Ensemble.map ~jobs:3 ~seed:5L ~runs:8 (fun i s -> (i, s)) in
  Alcotest.(check (array int)) "indices in order"
    (Array.init 8 (fun i -> i))
    (Array.map fst got);
  Array.iteri
    (fun i (_, s) ->
      Alcotest.(check int64) (Printf.sprintf "seed %d" i) seeds.(i) s)
    got

let test_ensemble_invalid_args () =
  Alcotest.check_raises "bad runs"
    (Invalid_argument "Ensemble.map: runs must be >= 1") (fun () ->
      ignore (Ssa.Ensemble.map ~runs:0 (fun _ _ -> ())));
  Alcotest.check_raises "bad jobs"
    (Invalid_argument "Ensemble.map: jobs must be >= 1") (fun () ->
      ignore (Ssa.Ensemble.map ~jobs:0 ~runs:2 (fun _ _ -> ())))

let test_ensemble_worker_exception_propagates () =
  match
    Ssa.Ensemble.map ~jobs:2 ~runs:4 (fun i _ ->
        if i = 3 then failwith "boom" else i)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

(* ------------------------------------------------- arena reuse *)

let test_gillespie_arena_no_leakage () =
  (* the ISSUE's arena-reuse test: a run must be bitwise independent of
     the arena's prior contents — same seed gives the identical trace
     even after an interleaved run with a different seed *)
  let net = Designs.Catalog.build "clock4" in
  let model = Ssa.Gillespie.compile_model Rates.default_env net in
  let arena = Ssa.Gillespie.make_arena model in
  let fresh = Ssa.Gillespie.run ~seed:11L ~t1:5. net in
  let a = Ssa.Gillespie.run ~seed:11L ~arena ~t1:5. net in
  ignore (Ssa.Gillespie.run ~seed:99L ~arena ~t1:5. net);
  let b = Ssa.Gillespie.run ~seed:11L ~arena ~t1:5. net in
  Alcotest.(check int) "event count stable" a.Ssa.Gillespie.n_events
    b.Ssa.Gillespie.n_events;
  Alcotest.(check (array (float 0.))) "final state stable" a.final b.final;
  Alcotest.(check bool) "whole result stable" true (a = b);
  Alcotest.(check bool) "arena run = fresh-compile run" true (a = fresh)

let test_tau_leap_arena_no_leakage () =
  let net = Designs.Catalog.build "clock4" in
  let model = Ssa.Tau_leap.compile_model Rates.default_env net in
  let arena = Ssa.Tau_leap.make_arena model in
  let fresh = Ssa.Tau_leap.run ~seed:11L ~t1:5. net in
  let a = Ssa.Tau_leap.run ~seed:11L ~arena ~t1:5. net in
  ignore (Ssa.Tau_leap.run ~seed:99L ~arena ~t1:5. net);
  let b = Ssa.Tau_leap.run ~seed:11L ~arena ~t1:5. net in
  Alcotest.(check bool) "whole result stable" true (a = b);
  Alcotest.(check bool) "arena run = fresh-compile run" true (a = fresh)

let test_arena_wrong_network_rejected () =
  let net = Designs.Catalog.build "clock4" in
  (* a 2-species toy net: its species count cannot match clock4's *)
  let other = Network.create () in
  let a = Network.species other "A" and b = Network.species other "B" in
  Network.set_init other a 10.;
  Network.add_reaction other
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  let arena =
    Ssa.Gillespie.make_arena (Ssa.Gillespie.compile_model Rates.default_env net)
  in
  Alcotest.check_raises "species count mismatch"
    (Invalid_argument "Gillespie.run: network does not match the compiled model")
    (fun () -> ignore (Ssa.Gillespie.run ~seed:1L ~arena ~t1:1. other))

let test_tau_leap_mean_final () =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a 4000.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  let m1, _ = Ssa.Tau_leap.mean_final ~runs:6 ~jobs:1 ~seed:3L ~t1:1. net "A" in
  let m2, _ = Ssa.Tau_leap.mean_final ~runs:6 ~jobs:3 ~seed:3L ~t1:1. net "A" in
  Alcotest.(check (float 0.)) "jobs invariant" m1 m2;
  (* 4000 e^-1 ~ 1472; generous statistical bound *)
  Alcotest.(check bool) "near analytic" true (Float.abs (m1 -. 1472.) < 150.)

let suite =
  [
    ("dep graph decay chain", `Quick, test_dep_graph_decay_chain);
    ("dep graph catalyst", `Quick, test_dep_graph_catalyst_no_edge);
    ("refresh_every=1 = full recompute", `Quick, test_refresh_every_one_is_full_recompute);
    ("max_events structured error", `Quick, test_max_events_structured_error);
    ("tau-leap structured error", `Quick, test_tau_leap_structured_error);
    ("parallel ensemble identical", `Slow, test_ensemble_parallel_identical);
    ("mean_final jobs invariant", `Quick, test_ensemble_mean_final_jobs_invariant);
    ("ensemble trajectory order", `Quick, test_ensemble_trajectory_order);
    ("ensemble invalid args", `Quick, test_ensemble_invalid_args);
    ("worker exception propagates", `Quick, test_ensemble_worker_exception_propagates);
    ("gillespie arena no leakage", `Quick, test_gillespie_arena_no_leakage);
    ("tau-leap arena no leakage", `Quick, test_tau_leap_arena_no_leakage);
    ("arena wrong network rejected", `Quick, test_arena_wrong_network_rejected);
    ("tau-leap mean_final", `Quick, test_tau_leap_mean_final);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
