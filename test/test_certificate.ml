(* The exact verification tier end to end: golden-pinned certificates
   for every catalog design, the broken-network corpus with its exact
   rejection codes, and the two theorems the tier exists to discharge —
   a verified conservation basis with exact totals for every design,
   and clock phase non-overlap for every clocked design. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let catalog_entries () =
  List.map
    (fun name ->
      match Designs.Catalog.find name with
      | Some e -> (name, e)
      | None -> Alcotest.failf "catalog lost design %s" name)
    (Designs.Catalog.names ())

(* every catalog certificate is byte-identical to its committed golden;
   regenerate with: crnsim <name> --validate > test/golden/<name>.cert *)
let test_goldens () =
  List.iter
    (fun (name, entry) ->
      let net = entry.Designs.Catalog.build () in
      let cert = Service.Verify.certify ~title:name net in
      let golden = read_file (Printf.sprintf "golden/%s.cert" name) in
      Alcotest.(check string)
        (Printf.sprintf "certificate for %s" name)
        golden
        (Exact.Certificate.render cert))
    (catalog_entries ())

(* acceptance theorem 1: a non-empty verified conservation basis with
   exact totals for every catalog design (every design in this catalog
   is conservative: signals rotate, they are not created or destroyed) *)
let test_conservation_basis () =
  List.iter
    (fun (name, entry) ->
      let net = entry.Designs.Catalog.build () in
      let view = Crn.Exact_view.of_network net in
      let laws = Exact.Invariant.conservation_basis view in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a conservation law" name)
        true (laws <> []);
      List.iter
        (fun (l : Exact.Invariant.law) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: basis vector is a law" name)
            true
            (Exact.Invariant.check_law view l.weights);
          (* the reported total is exactly w . init *)
          let t = ref Exact.Q.zero in
          Array.iteri
            (fun i w ->
              t := Exact.Q.add !t (Exact.Q.mul_z w view.Exact.Net.init.(i)))
            l.weights;
          Alcotest.(check bool)
            (Printf.sprintf "%s: total matches marking" name)
            true
            (Exact.Q.equal !t l.total))
        laws)
    (catalog_entries ())

(* acceptance theorem 2: phase non-overlap proved for every clocked
   design — and the witness is nonnegative with equal weight on the
   capture and release phases, which is what makes the threshold
   argument sound *)
let test_phase_non_overlap () =
  let clocked = ref 0 in
  List.iter
    (fun (name, entry) ->
      let net = entry.Designs.Catalog.build () in
      let view = Crn.Exact_view.of_network net in
      List.iter
        (fun (c : Exact.Invariant.clock) ->
          incr clocked;
          match Exact.Invariant.phase_non_overlap view c with
          | Exact.Invariant.Proved l ->
              let p0 = c.phases.(0) and p2 = c.phases.(2) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: witness nonnegative" name)
                true
                (Array.for_all (fun z -> Exact.Z.sign z >= 0) l.weights);
              Alcotest.(check bool)
                (Printf.sprintf "%s: equal positive phase weights" name)
                true
                (Exact.Z.sign l.weights.(p0) > 0
                && Exact.Z.equal l.weights.(p0) l.weights.(p2))
          | _ -> Alcotest.failf "%s: clock %s not proved" name c.prefix)
        (Exact.Invariant.find_clocks view))
    (catalog_entries ());
  (* the catalog's clocked designs: 2 bare clocks + 10 synchronous *)
  Alcotest.(check bool) "catalog has clocked designs" true (!clocked >= 12)

(* the broken corpus rejects, each network with its exact issue code *)
let broken_corpus =
  [
    ("overlapping_phases", "phase_overlap");
    ("leaky_clock", "clock_unconserved");
    ("leaky_latch", "no_op_reaction");
    ("slow_annihilation", "slow_annihilation");
    ("fast_source", "fast_source");
    ("slow_catalytic", "slow_catalytic");
    ("relaxation_inverted_core", "relaxation_core_malformed");
    ("relaxation_no_annihilation", "relaxation_core_malformed");
  ]

let test_broken_corpus () =
  List.iter
    (fun (stem, expected_code) ->
      let path = Printf.sprintf "../examples/broken/%s.crn" stem in
      let net = Crn.Parser.network_of_file path in
      let cert = Service.Verify.certify ~title:"network" net in
      Alcotest.(check bool)
        (Printf.sprintf "%s rejected" stem)
        false
        (Exact.Certificate.clean cert);
      match Service.Verify.error_of_certificate cert with
      | Some (Service.Error.Validation_failed { issues }) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s carries %s" stem expected_code)
            true
            (List.exists (fun (code, _) -> code = expected_code) issues)
      | _ -> Alcotest.failf "%s: expected Validation_failed" stem)
    broken_corpus

(* certificates for the expected-clean example networks: warnings are
   allowed (Brusselator's fractional B, Oregonator's sink), errors are
   not *)
let test_examples_certify () =
  List.iter
    (fun stem ->
      let net =
        Crn.Parser.network_of_file
          (Printf.sprintf "../examples/networks/%s.crn" stem)
      in
      let cert = Service.Verify.certify ~title:"network" net in
      Alcotest.(check bool)
        (Printf.sprintf "%s certifies" stem)
        true
        (Exact.Certificate.clean cert))
    [ "approximate_majority"; "brusselator"; "lotka_volterra"; "oregonator" ]

(* lint severities the certificate must preserve: fractional init is a
   warning, a no-op reaction is an error *)
let test_new_lint_issues () =
  let net = Crn.Parser.network_of_string "init X 1.5\nX + Y ->{fast} Y + X\n" in
  let issues = Crn.Validate.check net in
  Alcotest.(check bool) "no_op flagged" true
    (List.exists
       (function Crn.Validate.No_op_reaction 0 -> true | _ -> false)
       issues);
  Alcotest.(check bool) "fractional init flagged" true
    (List.exists
       (function Crn.Validate.Fractional_init _ -> true | _ -> false)
       issues);
  Alcotest.(check bool) "report mentions both" true
    (let r = Crn.Validate.report net in
     let has needle =
       let nl = String.length needle and hl = String.length r in
       let rec go i = i + nl <= hl && (String.sub r i nl = needle || go (i + 1)) in
       go 0
     in
     has "zero net stoichiometry" && has "non-integer count")

let suite =
  [
    ("golden certificates", `Quick, test_goldens);
    ("conservation basis with exact totals", `Quick, test_conservation_basis);
    ("phase non-overlap proved", `Quick, test_phase_non_overlap);
    ("broken corpus rejects with exact codes", `Quick, test_broken_corpus);
    ("example networks certify", `Quick, test_examples_certify);
    ("new lint issues", `Quick, test_new_lint_issues);
  ]
