(* Unit and property tests for the CRN representation layer. *)

open Crn

let check_float = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- Rates *)

let test_rates_value () =
  let env = { Rates.k_fast = 1000.; k_slow = 2. } in
  check_float "fast" 1000. (Rates.value env Rates.fast);
  check_float "slow" 2. (Rates.value env Rates.slow);
  check_float "scaled" 500. (Rates.value env (Rates.fast_scaled 0.5))

let test_rates_ratio_env () =
  let env = Rates.env_with_ratio 100. in
  check_float "k_fast" 100. env.Rates.k_fast;
  check_float "k_slow" 1. env.Rates.k_slow;
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Rates.env_with_ratio: ratio must be positive")
    (fun () -> ignore (Rates.env_with_ratio 0.))

let test_rates_bad_scale () =
  Alcotest.check_raises "zero scale"
    (Invalid_argument "Rates: scale must be positive") (fun () ->
      ignore (Rates.fast_scaled 0.))

(* ------------------------------------------------------------- Reaction *)

let test_reaction_normalize () =
  let r = Reaction.make ~reactants:[ (1, 1); (0, 2); (1, 1) ] ~products:[ (2, 1) ] Rates.fast in
  Alcotest.(check (list (pair int int)))
    "duplicates merged, sorted" [ (0, 2); (1, 2) ] r.Reaction.reactants

let test_reaction_order () =
  let r = Reaction.make ~reactants:[ (0, 2); (1, 1) ] ~products:[] Rates.slow in
  Alcotest.(check int) "order" 3 (Reaction.order r);
  let src = Reaction.make ~reactants:[] ~products:[ (0, 1) ] Rates.slow in
  Alcotest.(check int) "source order" 0 (Reaction.order src)

let test_reaction_net_stoich () =
  (* X + C -> Y + C : catalyst C nets to zero *)
  let r =
    Reaction.make ~reactants:[ (0, 1); (2, 1) ] ~products:[ (1, 1); (2, 1) ]
      Rates.fast
  in
  Alcotest.(check (list (pair int int)))
    "net" [ (0, -1); (1, 1) ] (Reaction.net_stoich r);
  Alcotest.(check bool) "catalytic in C" true (Reaction.is_catalytic_in r 2);
  Alcotest.(check bool) "not catalytic in X" false (Reaction.is_catalytic_in r 0)

let test_reaction_species () =
  let r = Reaction.make ~reactants:[ (3, 1) ] ~products:[ (1, 2); (3, 1) ] Rates.slow in
  Alcotest.(check (list int)) "species" [ 1; 3 ] (Reaction.species r)

let test_reaction_invalid () =
  Alcotest.check_raises "both sides empty"
    (Invalid_argument "Reaction: both sides empty") (fun () ->
      ignore (Reaction.make ~reactants:[] ~products:[] Rates.fast));
  Alcotest.check_raises "bad coefficient"
    (Invalid_argument "Reaction: coefficient must be positive") (fun () ->
      ignore (Reaction.make ~reactants:[ (0, 0) ] ~products:[] Rates.fast))

let test_reaction_rename () =
  let r = Reaction.make ~reactants:[ (0, 1) ] ~products:[ (1, 1) ] Rates.fast in
  let r' = Reaction.rename (fun s -> s + 10) r in
  Alcotest.(check (list (pair int int))) "renamed" [ (10, 1) ] r'.Reaction.reactants;
  Alcotest.(check (list (pair int int))) "renamed" [ (11, 1) ] r'.Reaction.products

(* -------------------------------------------------------------- Network *)

let test_network_interning () =
  let net = Network.create () in
  let x = Network.species net "X" in
  let y = Network.species net "Y" in
  Alcotest.(check bool) "distinct" true (x <> y);
  Alcotest.(check int) "idempotent" x (Network.species net "X");
  Alcotest.(check int) "count" 2 (Network.n_species net);
  Alcotest.(check (option int)) "find" (Some y) (Network.find_species net "Y");
  Alcotest.(check (option int)) "find missing" None (Network.find_species net "Z");
  Alcotest.(check string) "name" "X" (Network.species_name net x)

let test_network_invalid_name () =
  let net = Network.create () in
  List.iter
    (fun bad ->
      Alcotest.check_raises
        (Printf.sprintf "reject %S" bad)
        (Invalid_argument (Printf.sprintf "Network.species: invalid name %S" bad))
        (fun () -> ignore (Network.species net bad)))
    [ ""; "a b"; "x#y"; "p{q"; "p}q"; "a>b" ]

let test_network_many_species () =
  (* exercise table growth past the initial capacity *)
  let net = Network.create () in
  for i = 0 to 99 do
    ignore (Network.species net (Printf.sprintf "s%d" i))
  done;
  Alcotest.(check int) "100 species" 100 (Network.n_species net);
  Alcotest.(check string) "late name" "s73" (Network.species_name net 73)

let test_network_init () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.set_init net x 50.;
  check_float "init" 50. (Network.init_of net x);
  let state = Network.initial_state net in
  check_float "state" 50. state.(x);
  Alcotest.check_raises "negative init"
    (Invalid_argument "Network.set_init: negative initial value") (fun () ->
      Network.set_init net x (-1.))

let test_network_reactions () =
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  Alcotest.(check int) "count" 1 (Network.n_reactions net);
  Alcotest.check_raises "unknown index"
    (Invalid_argument "Network.add_reaction: unknown species index")
    (fun () ->
      Network.add_reaction net
        (Reaction.make ~reactants:[ (99, 1) ] ~products:[] Rates.slow))

let test_network_merge () =
  let a = Network.create () in
  let x = Network.species a "X" in
  Network.set_init a x 10.;
  Network.add_reaction a
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[] Rates.slow);
  let dst = Network.create () in
  let _ = Network.species dst "keep" in
  let rename = Network.add_to ~prefix:"blk" ~dst a in
  Alcotest.(check (option int))
    "prefixed name" (Some (rename x))
    (Network.find_species dst "blk.X");
  check_float "init carried" 10. (Network.init_of dst (rename x));
  Alcotest.(check int) "reaction carried" 1 (Network.n_reactions dst)

let test_network_merge_unify () =
  (* empty prefix: same names unify and initials add *)
  let a = Network.create () in
  let x = Network.species a "X" in
  Network.set_init a x 5.;
  let dst = Network.create () in
  let x' = Network.species dst "X" in
  Network.set_init dst x' 7.;
  let (_ : int -> int) = Network.add_to ~prefix:"" ~dst a in
  check_float "initials added" 12. (Network.init_of dst x');
  Alcotest.(check int) "no duplicate species" 1 (Network.n_species dst)

let test_network_stoichiometry () =
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 2) ] ~products:[ (y, 1) ] Rates.slow);
  let s = Network.stoichiometry net in
  check_float "X loses 2" (-2.) s.(x).(0);
  check_float "Y gains 1" 1. s.(y).(0)

(* ------------------------------------------------------------- Builder *)

let test_builder_scoping () =
  let net = Network.create () in
  let b = Builder.on net in
  let inner = Builder.scoped (Builder.scoped b "a") "b" in
  let s = Builder.species inner "X" in
  Alcotest.(check string) "nested prefix" "a.b.X" (Network.species_name net s);
  let g = Builder.global inner "CLK" in
  Alcotest.(check string) "global unprefixed" "CLK" (Network.species_name net g)

let test_builder_helpers () =
  let net = Network.create () in
  let b = Builder.on net in
  let x = Builder.species b "X"
  and y = Builder.species b "Y"
  and c = Builder.species b "C" in
  Builder.source b Rates.slow x;
  Builder.decay b Rates.slow y;
  Builder.transfer b Rates.slow x y;
  Builder.transfer_cat b Rates.fast ~cat:c x y;
  Builder.consume_by b Rates.fast ~by:c x;
  Alcotest.(check int) "five reactions" 5 (Network.n_reactions net);
  let rs = Network.reactions net in
  (* transfer_cat preserves the catalyst *)
  Alcotest.(check bool) "catalytic" true (Reaction.is_catalytic_in rs.(3) c);
  (* consume_by consumes x catalytically by c *)
  Alcotest.(check (list (pair int int)))
    "consume_by net effect"
    [ (x, -1) ]
    (Reaction.net_stoich rs.(4))

(* --------------------------------------------------------- Conservation *)

let test_conservation_closed () =
  (* X <-> Y : total X+Y conserved *)
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] Rates.fast);
  let laws = Conservation.laws net in
  Alcotest.(check int) "one law" 1 (List.length laws);
  Alcotest.(check bool) "uniform weighting invariant" true
    (Conservation.is_invariant net (Conservation.uniform_over net [ "X"; "Y" ]))

let test_conservation_open () =
  (* a zero-order source destroys conservation *)
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.add_reaction net
    (Reaction.make ~reactants:[] ~products:[ (x, 1) ] Rates.slow);
  Alcotest.(check int) "no laws" 0 (List.length (Conservation.laws net));
  Alcotest.(check bool) "not invariant" false
    (Conservation.is_invariant net (Conservation.uniform_over net [ "X" ]))

let test_conservation_weighted () =
  (* 2X -> Y conserves X + 2Y *)
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 2) ] ~products:[ (y, 1) ] Rates.slow);
  let w = Array.make 2 0. in
  w.(x) <- 1.;
  w.(y) <- 2.;
  Alcotest.(check bool) "x + 2y invariant" true (Conservation.is_invariant net w);
  Alcotest.(check bool) "x + y not invariant" false
    (Conservation.is_invariant net (Conservation.uniform_over net [ "X"; "Y" ]));
  check_float "weighted total" 14. (Conservation.weighted_total w [| 10.; 2. |])

(* ------------------------------------------------------------- Validate *)

let test_validate_clean () =
  let net = Network.create () in
  let x = Network.species net "X" and y = Network.species net "Y" in
  Network.set_init net x 10.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  Network.add_reaction net
    (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] Rates.slow);
  Alcotest.(check (list reject)) "no issues" [] (Validate.check net |> List.map (fun _ -> ()))

let test_validate_issues () =
  let net = Network.create () in
  let x = Network.species net "X" in
  let _unused = Network.species net "unused" in
  let y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
  let issues = Validate.check net in
  let has p = List.exists p issues in
  Alcotest.(check bool) "unused reported" true
    (has (function Validate.Unused_species _ -> true | _ -> false));
  Alcotest.(check bool) "never produced (X, init 0)" true
    (has (function Validate.Never_produced s -> s = x | _ -> false));
  Alcotest.(check bool) "never consumed (Y)" true
    (has (function Validate.Never_consumed s -> s = y | _ -> false));
  Alcotest.(check bool) "report is non-empty" true
    (String.length (Validate.report net) > 0)

let test_validate_high_order () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.set_init net x 1.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 3) ] ~products:[ (x, 1) ] Rates.slow);
  Alcotest.(check bool) "trimolecular flagged" true
    (List.exists
       (function Validate.High_order (_, 3) -> true | _ -> false)
       (Validate.check net));
  Alcotest.(check bool) "not dsd compilable" false (Validate.is_dsd_compilable net)

let test_validate_duplicates () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.set_init net x 1.;
  let r = Reaction.make ~reactants:[ (x, 1) ] ~products:[ (x, 2) ] Rates.slow in
  Network.add_reaction net r;
  Network.add_reaction net r;
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists
       (function Validate.Duplicate_reaction (0, 1) -> true | _ -> false)
       (Validate.check net))

(* --------------------------------------------------------------- Parser *)

let test_parser_basic () =
  let net =
    Parser.network_of_string
      "# a comment\ninit X 100\nX + 2 Y ->{fast} Z\n0 ->{slow} r # src\nA ->{fast*2.5} 0\n"
  in
  Alcotest.(check int) "species" 5 (Network.n_species net);
  Alcotest.(check int) "reactions" 3 (Network.n_reactions net);
  check_float "init" 100. (Network.init_of net (Network.species net "X"));
  let rs = Network.reactions net in
  Alcotest.(check int) "order of first" 3 (Reaction.order rs.(0));
  Alcotest.(check int) "source order" 0 (Reaction.order rs.(1));
  check_float "scaled rate" 2.5 rs.(2).Reaction.rate.Rates.scale

let test_parser_errors () =
  let expect_error s =
    match Parser.network_of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_error "X ->{sideways} Y";
  expect_error "X -> Y";
  expect_error "init X minus";
  expect_error "init X";
  expect_error "X + ->{fast} Y";
  expect_error "X ->{fast*0} Y";
  expect_error "nonsense line"

let test_parser_error_line_number () =
  match Parser.network_of_string "init A 1\ninit B 2\nbogus\n" with
  | exception Parser.Parse_error (3, _) -> ()
  | exception Parser.Parse_error (n, _) ->
      Alcotest.failf "wrong line: %d" n
  | _ -> Alcotest.fail "expected parse error"

let test_parser_reversible () =
  let net = Parser.network_of_string "init G 4\n2 G <->{slow}{fast} I\n" in
  Alcotest.(check int) "two reactions" 2 (Network.n_reactions net);
  let rs = Network.reactions net in
  Alcotest.(check int) "fwd order" 2 (Reaction.order rs.(0));
  Alcotest.(check int) "rev order" 1 (Reaction.order rs.(1));
  Alcotest.(check bool) "fwd slow" true
    (rs.(0).Reaction.rate.Rates.category = Rates.Slow);
  Alcotest.(check bool) "rev fast" true
    (rs.(1).Reaction.rate.Rates.category = Rates.Fast);
  (* equilibrium check: 2G <-> I settles at I ~ (k_slow/k_fast) G^2 *)
  let xf = Ode.Driver.final_state ~t1:5. net in
  let g = xf.(Network.species net "G") and i = xf.(Network.species net "I") in
  Alcotest.(check (float 1e-3)) "equilibrium" (g *. g /. 1000.) i;
  (* malformed variants *)
  let expect_error s =
    match Parser.network_of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_error "A <->{slow} B";
  expect_error "A <->{slow}{nope} B"

let test_parser_roundtrip () =
  let net = Network.create () in
  let b = Builder.on net in
  let x = Builder.species b "X"
  and y = Builder.species b "Y"
  and z = Builder.species b "Z.sub" in
  Builder.init b x 42.5;
  Builder.fast b [ (x, 1); (y, 2) ] [ (z, 1) ];
  Builder.slow b [] [ (y, 1) ];
  Builder.react b (Rates.slow_scaled 3.) [ (z, 1) ] [];
  let net' = Parser.roundtrip net in
  Alcotest.(check int) "species preserved" (Network.n_species net)
    (Network.n_species net');
  Alcotest.(check int) "reactions preserved" (Network.n_reactions net)
    (Network.n_reactions net');
  Alcotest.(check string) "stable text form" (Network.to_string net)
    (Network.to_string net')

(* ------------------------------------------------------- property tests *)

let qcheck_tests =
  let open QCheck in
  let name_gen =
    Gen.map
      (fun (c, s) -> Printf.sprintf "%c%s" c s)
      Gen.(pair (char_range 'A' 'Z') (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))
  in
  let side_gen n_species =
    Gen.(list_size (int_range 0 3) (pair (int_range 0 (n_species - 1)) (int_range 1 2)))
  in
  let network_gen =
    Gen.(
      let* names = list_size (int_range 2 6) name_gen in
      let names = List.sort_uniq compare names in
      let n = List.length names in
      let* sides = list_size (int_range 1 8) (pair (side_gen n) (side_gen n)) in
      let* inits = list_size (return n) (float_bound_exclusive 50.) in
      return (names, sides, inits))
  in
  let build (names, sides, inits) =
    let net = Network.create () in
    List.iter (fun nm -> ignore (Network.species net nm)) names;
    List.iteri (fun i x -> Network.set_init net i x) inits;
    List.iter
      (fun (l, r) ->
        if l <> [] || r <> [] then
          Network.add_reaction net
            (Reaction.make ~reactants:l ~products:r Rates.slow))
      sides;
    net
  in
  [
    Test.make ~name:"parser/printer roundtrip is stable" ~count:100
      (make network_gen) (fun spec ->
        let net = build spec in
        let net' = Parser.roundtrip net in
        Network.to_string net = Network.to_string net'
        && Network.n_species net = Network.n_species net'
        && Network.n_reactions net = Network.n_reactions net');
    Test.make ~name:"conservation laws annihilate stoichiometry" ~count:100
      (make network_gen) (fun spec ->
        let net = build spec in
        let laws = Conservation.laws net in
        if Network.n_reactions net = 0 then
          (* no reactions: every species is trivially conserved, and the
             empty stoichiometry matrix carries no column count to
             multiply against *)
          List.length laws = Network.n_species net
        else
          let st = Numeric.Mat.transpose (Network.stoichiometry net) in
          List.for_all
            (fun w -> Numeric.Vec.norm_inf (Numeric.Mat.mul_vec st w) < 1e-7)
            laws);
    Test.make ~name:"net stoich of catalytic reaction omits catalyst"
      ~count:100
      (make Gen.(pair (int_range 0 4) (int_range 1 3)))
      (fun (cat, coeff) ->
        let r =
          Reaction.make
            ~reactants:[ (cat, coeff); (5, 1) ]
            ~products:[ (cat, coeff); (6, 1) ]
            Rates.fast
        in
        not (List.mem_assoc cat (Reaction.net_stoich r)));
  ]

let suite =
  [
    ("rates value", `Quick, test_rates_value);
    ("rates ratio env", `Quick, test_rates_ratio_env);
    ("rates bad scale", `Quick, test_rates_bad_scale);
    ("reaction normalize", `Quick, test_reaction_normalize);
    ("reaction order", `Quick, test_reaction_order);
    ("reaction net stoich", `Quick, test_reaction_net_stoich);
    ("reaction species", `Quick, test_reaction_species);
    ("reaction invalid", `Quick, test_reaction_invalid);
    ("reaction rename", `Quick, test_reaction_rename);
    ("network interning", `Quick, test_network_interning);
    ("network invalid names", `Quick, test_network_invalid_name);
    ("network growth", `Quick, test_network_many_species);
    ("network init", `Quick, test_network_init);
    ("network reactions", `Quick, test_network_reactions);
    ("network merge prefixed", `Quick, test_network_merge);
    ("network merge unify", `Quick, test_network_merge_unify);
    ("network stoichiometry", `Quick, test_network_stoichiometry);
    ("builder scoping", `Quick, test_builder_scoping);
    ("builder helpers", `Quick, test_builder_helpers);
    ("conservation closed", `Quick, test_conservation_closed);
    ("conservation open", `Quick, test_conservation_open);
    ("conservation weighted", `Quick, test_conservation_weighted);
    ("validate clean", `Quick, test_validate_clean);
    ("validate issues", `Quick, test_validate_issues);
    ("validate high order", `Quick, test_validate_high_order);
    ("validate duplicates", `Quick, test_validate_duplicates);
    ("parser basic", `Quick, test_parser_basic);
    ("parser errors", `Quick, test_parser_errors);
    ("parser error line", `Quick, test_parser_error_line_number);
    ("parser reversible", `Quick, test_parser_reversible);
    ("parser roundtrip", `Quick, test_parser_roundtrip);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
