(* Stochastic (molecule-count) validation of the sequential designs: the
   extension experiments showing the constructs survive discrete noise. *)

let test_increments_by_one () =
  let open Core.Stochastic in
  Alcotest.(check bool) "good run" true
    (increments_by_one [ Some 2; Some 3; Some 0; Some 1 ] ~modulo:4);
  Alcotest.(check bool) "jump" false
    (increments_by_one [ Some 1; Some 3 ] ~modulo:4);
  Alcotest.(check bool) "invalid sample" false
    (increments_by_one [ Some 1; None; Some 3 ] ~modulo:4);
  Alcotest.(check bool) "single" true (increments_by_one [ Some 7 ] ~modulo:8);
  Alcotest.(check bool) "empty" true (increments_by_one [] ~modulo:8);
  Alcotest.check_raises "bad modulo"
    (Invalid_argument "Stochastic.increments_by_one: bad modulo") (fun () ->
      ignore (increments_by_one [] ~modulo:0))

let test_stochastic_clock_sustains () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let clk =
    Molclock.Clock_chassis.of_oscillator
      (Molclock.Oscillator.create ~n_phases:4 ~mass:100.
         (Crn.Builder.scoped b "clk"))
  in
  let { Ssa.Gillespie.trace; _ } =
    Ssa.Gillespie.run ~seed:3L ~sample_dt:0.05 ~t1:60. net
  in
  Alcotest.(check bool) "sustained with discrete molecules" true
    (Molclock.Clock_analysis.is_sustained trace clk);
  (* the latching guarantee survives too *)
  Alcotest.(check bool) "P0/P2 disjoint" true
    (Molclock.Clock_analysis.overlap trace clk 0 2 < 0.05);
  (* discrete indicator arrivals slow the bootstrap: the period grows *)
  match Molclock.Clock_analysis.period trace clk with
  | None -> Alcotest.fail "no period"
  | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "period %.2f longer than deterministic 6.33" p)
        true (p > 6.33)

let test_stochastic_counter_counts () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make ~signal_mass:30. net in
  let ctr = Core.Counter.free_running d ~bits:2 in
  let { Ssa.Gillespie.trace; _ } =
    Ssa.Gillespie.run ~seed:5L ~sample_dt:0.05 ~t1:120. net
  in
  let states = Core.Stochastic.counter_states trace ctr in
  Alcotest.(check bool)
    (Printf.sprintf "several cycles decoded (%d)" (List.length states))
    true
    (List.length states >= 5);
  Alcotest.(check bool) "every step increments by one" true
    (Core.Stochastic.increments_by_one states ~modulo:4)

let test_cycle_sample_times_ordering () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let clk =
    Molclock.Clock_chassis.of_oscillator
      (Molclock.Oscillator.create ~n_phases:4 (Crn.Builder.scoped b "clk"))
  in
  let trace =
    Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:60. net
  in
  let ts = Core.Stochastic.cycle_sample_times trace clk in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing ts);
  Alcotest.(check bool) "several cycles" true (List.length ts >= 6)

let test_log2_floor_exact_over_counts () =
  (* the documented semantic split: deterministic kinetics relax "floor" to
     a fractional sum, but over discrete molecule counts the construct is
     exact — including for non-powers of two *)
  List.iter
    (fun (a, want) ->
      let net = Crn.Network.create () in
      let d = Core.Sync_design.make ~signal_mass:30. net in
      let it = Core.Iterative.log2floor d ~a in
      let t1 =
        3. *. Core.Sync_design.period d
        *. float_of_int it.Core.Iterative.cycles_needed
      in
      let { Ssa.Gillespie.final; _ } = Ssa.Gillespie.run ~seed:7L ~t1 net in
      let y = final.(Crn.Network.species net it.Core.Iterative.output_name) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "floor(log2 %g)" a)
        (float_of_int want) y)
    [ (8., 3); (5., 2); (1., 0) ]

let suite =
  [
    ("increments_by_one", `Quick, test_increments_by_one);
    ("stochastic clock sustains", `Slow, test_stochastic_clock_sustains);
    ("stochastic counter counts", `Slow, test_stochastic_counter_counts);
    ("cycle sample times", `Quick, test_cycle_sample_times_ordering);
    ("log2 floor exact over counts", `Slow, test_log2_floor_exact_over_counts);
  ]
