(* Consistent-hash ring properties the fleet depends on: placement is a
   pure deterministic function of key bytes and membership (golden
   values pinned so a refactor cannot silently re-shuffle every cache in
   a live fleet), shard join/leave moves only the keys the new/old
   shard's own points cover, virtual points keep the load roughly
   balanced, and independently constructed instances of the same
   catalog design carry equal [Crn.Equiv.cache_key]s and therefore land
   on the same shard — the property that makes gateway-side routing
   agree with shard-side model caching. *)

module R = Service.Ring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* deterministic key stream (Numeric.Rng so the qcheck counterexample
   seed is the replay seed) *)
let keys_of_seed seed n =
  let rng = Numeric.Rng.create (Int64.of_int seed) in
  List.init n (fun _ ->
      String.init
        (1 + Numeric.Rng.int rng 40)
        (fun _ -> Char.chr (Numeric.Rng.int rng 256)))

(* ------------------------------------------------- golden placement *)

(* Pinned against the MD5 point layout: if these move, every deployed
   fleet's cache affinity is invalidated on upgrade. *)
let test_golden () =
  let ring = R.create [ 0; 1; 2; 3 ] in
  List.iter
    (fun (key, expect) ->
      check_int ("route " ^ String.escaped key) expect
        (Option.get (R.route ring key)))
    [
      ("", 3);
      ("clock4@1000", 0);
      ("counter2@default", 1);
      ("ma4@250.5", 3);
      ("payload:{not json", 3);
    ]

let test_edges () =
  let empty = R.create [] in
  check_bool "empty ring is empty" true (R.is_empty empty);
  check_bool "empty ring routes nowhere" true (R.route empty "k" = None);
  check_bool "route_order on empty ring" true (R.route_order empty "k" = []);
  check_bool "replicas < 1 rejected" true
    (match R.create ~replicas:0 [ 1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let ring = R.create [ 2; 1; 1; 2 ] in
  check_bool "members deduplicated and sorted" true (R.shards ring = [ 1; 2 ]);
  check_bool "re-adding a member is a no-op" true
    (R.shards (R.add ring 2) = [ 1; 2 ]);
  check_bool "removing an absent member is a no-op" true
    (R.shards (R.remove ring 7) = [ 1; 2 ])

let test_route_order () =
  let ring = R.create [ 0; 1; 2; 3; 4 ] in
  List.iter
    (fun key ->
      let order = R.route_order ring key in
      check_int "order covers every member" 5 (List.length order);
      check_bool "head of route_order is route" true
        (List.nth_opt order 0 = R.route ring key);
      check_bool "order is a permutation of members" true
        (List.sort compare order = R.shards ring))
    (keys_of_seed 11 50)

(* with 128 points per shard, no shard of four owns less than a tenth
   or more than half of a 4000-key stream *)
let test_balance () =
  let ring = R.create [ 0; 1; 2; 3 ] in
  let counts = Array.make 4 0 in
  let keys = keys_of_seed 42 4000 in
  List.iter
    (fun k ->
      let s = Option.get (R.route ring k) in
      counts.(s) <- counts.(s) + 1)
    keys;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "shard %d share %d/4000 within [400, 2000]" i c)
        true
        (c >= 400 && c <= 2000))
    counts

(* equal cache keys land on the same shard; and synthesis determinism
   means two independently built instances of a catalog design have
   equal cache keys — routing a design name is well-defined fleet-wide *)
let test_cache_key_affinity () =
  let ring = R.create [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  List.iter
    (fun name ->
      let k1 = Crn.Equiv.cache_key (Designs.Catalog.build name) in
      let k2 = Crn.Equiv.cache_key (Designs.Catalog.build name) in
      Alcotest.(check string) (name ^ ": cache_key deterministic") k1 k2;
      check_bool (name ^ ": both instances route together") true
        (R.route ring k1 = R.route ring k2))
    [ "clock4"; "counter2"; "ma4" ];
  (* distinct designs are distinct keys (they'd collide caches otherwise) *)
  let ks =
    List.map
      (fun n -> Crn.Equiv.cache_key (Designs.Catalog.build n))
      [ "clock4"; "counter2"; "ma4"; "iir"; "clock3" ]
  in
  check_int "five designs, five distinct cache keys" 5
    (List.length (List.sort_uniq compare ks))

(* ------------------------------------------------------- properties *)

let qcheck_tests =
  let open QCheck in
  let scenario =
    Gen.(
      let* n = int_range 1 8 in
      let* seed = int_range 0 1_000_000 in
      return (n, seed))
  in
  [
    Test.make ~name:"placement is deterministic across instances" ~count:60
      (make scenario)
      (fun (n, seed) ->
        let ids = List.init n (fun i -> i * 3) in
        let a = R.create ids and b = R.create ids in
        List.for_all
          (fun k ->
            R.route a k = R.route b k
            && R.route_order a k = R.route_order b k
            && List.mem (Option.get (R.route a k)) ids)
          (keys_of_seed seed 60));
    Test.make ~name:"join moves keys only onto the new shard" ~count:60
      (make scenario)
      (fun (n, seed) ->
        let ids = List.init n (fun i -> i) in
        let before = R.create ids in
        let after = R.add before n in
        List.for_all
          (fun k ->
            let old_owner = R.route before k in
            let new_owner = R.route after k in
            new_owner = old_owner || new_owner = Some n)
          (keys_of_seed seed 80));
    Test.make ~name:"leave moves only the departed shard's keys" ~count:60
      (make scenario)
      (fun (n, seed) ->
        let ids = List.init (n + 1) (fun i -> i) in
        let before = R.create ids in
        let gone = n / 2 in
        let after = R.remove before gone in
        List.for_all
          (fun k ->
            let old_owner = Option.get (R.route before k) in
            let new_owner = Option.get (R.route after k) in
            if old_owner = gone then new_owner <> gone
            else new_owner = old_owner)
          (keys_of_seed seed 80));
    Test.make ~name:"failover order survives the owner leaving" ~count:40
      (make scenario)
      (fun (n, seed) ->
        (* removing the owner promotes exactly the ring successor: the
           shard a gateway fails over to is the shard the key would
           belong to after the owner actually left *)
        let ids = List.init (n + 1) (fun i -> i) in
        let ring = R.create ids in
        List.for_all
          (fun k ->
            match R.route_order ring k with
            | owner :: next :: _ ->
                R.route (R.remove ring owner) k = Some next
            | _ -> true)
          (keys_of_seed seed 40));
  ]

let suite =
  [
    ("golden placement", `Quick, test_golden);
    ("edge cases", `Quick, test_edges);
    ("route_order", `Quick, test_route_order);
    ("balance", `Quick, test_balance);
    ("cache_key affinity", `Quick, test_cache_key_affinity);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
