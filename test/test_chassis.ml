(* Cross-chassis conformance battery: every sequential design family must
   produce the same logical output sequence on every registered clock
   chassis — under deterministic (ODE), stochastic (SSA) and hybrid
   execution. The chassis abstraction only earns its keep if a design
   synthesized against it cannot tell the clocks apart.

   Also here: the chassis knob property (random valid parameters on both
   chassis yield clocks whose phase species partition the total clock
   mass, certified by the exact tier and measured along the trajectory;
   a failure prints a replayable seed — rerun with
   CHASSIS_REPLAY_SEED=<seed>), and the regression tests pinning that
   phase naming flows through the chassis interface rather than being
   assumed by consumers. *)

let chassis_list = Molclock.Clock_chassis.all

let chassis_name c = c.Molclock.Clock_chassis.name

let on_chassis chassis f =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make ~chassis ~signal_mass:30. net in
  f net d

let for_each_chassis f = List.iter (fun c -> f (chassis_name c) c) chassis_list

(* ------------------------------------- deterministic (ODE) conformance *)

let counter_sequence chassis ~bits ~cycles =
  on_chassis chassis (fun _net d ->
      let ctr = Core.Counter.free_running d ~bits in
      let tr = Core.Sync_design.simulate ~cycles:(cycles + 1) d in
      List.init cycles (fun c -> Core.Counter.value_at ctr tr ~cycle:c))

let test_counter_conformance () =
  let want = List.init 8 (fun c -> Some ((c + 1) mod 4)) in
  for_each_chassis (fun name ch ->
      Alcotest.(check (list (option int)))
        (Printf.sprintf "counter2 sequence [%s]" name)
        want
        (counter_sequence ch ~bits:2 ~cycles:8))

let test_counter3_conformance () =
  let want = List.init 9 (fun c -> Some ((c + 1) mod 8)) in
  for_each_chassis (fun name ch ->
      Alcotest.(check (list (option int)))
        (Printf.sprintf "counter3 sequence [%s]" name)
        want
        (counter_sequence ch ~bits:3 ~cycles:9))

let test_gated_counter_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun _net d ->
          let ctr = Core.Counter.gated d ~bits:2 in
          let _, states =
            Core.Fsm.run ctr.Core.Counter.fsm ~symbols:[ 1; 1; 0; 1 ]
          in
          Alcotest.(check (list (option int)))
            (Printf.sprintf "gated counter counts only on 1s [%s]" name)
            [ Some 1; Some 2; Some 2; Some 3 ]
            states))

let test_lfsr_conformance () =
  List.iter
    (fun (bits, taps) ->
      let want = Core.Lfsr.reference ~bits ~taps ~seed:1 ~n:8 in
      for_each_chassis (fun name ch ->
          on_chassis ch (fun _net d ->
              let l = Core.Lfsr.make d ~bits ~taps ~seed:1 in
              let tr = Core.Sync_design.simulate ~cycles:9 d in
              let got =
                List.init 8 (fun c -> Core.Lfsr.state_at l tr ~cycle:c)
              in
              Alcotest.(check (list int))
                (Printf.sprintf "lfsr%d matches reference [%s]" bits name)
                want got)))
    [ (3, [ 1; 2 ]); (4, [ 2; 3 ]) ]

let test_filter_conformance () =
  let samples = [ 8.; 8.; 0.; 4. ] in
  for_each_chassis (fun name ch ->
      on_chassis ch (fun _net d ->
          let f = Core.Filter.moving_average d ~taps:2 in
          let got = Core.Filter.response f samples in
          let want = Core.Filter.reference_moving_average ~taps:2 samples in
          List.iter2
            (fun g w ->
              if Float.abs (g -. w) > 0.3 then
                Alcotest.failf "ma2 [%s]: got %g want %g" name g w)
            got want);
      on_chassis ch (fun _net d ->
          let f = Core.Filter.iir_smoother d in
          let got = Core.Filter.response f [ 8.; 8.; 8.; 0. ] in
          let want = Core.Filter.reference_iir [ 8.; 8.; 8.; 0. ] in
          List.iter2
            (fun g w ->
              if Float.abs (g -. w) > 0.35 then
                Alcotest.failf "iir [%s]: got %g want %g" name g w)
            got want))

let test_iterative_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun _net d ->
          let m = Core.Iterative.multiplier d ~a:3. ~count:4 in
          Alcotest.(check (float 0.4))
            (Printf.sprintf "3*4 [%s]" name)
            12. (Core.Iterative.run m));
      on_chassis ch (fun _net d ->
          let p = Core.Iterative.power2 d ~n:5 in
          let v = Core.Iterative.run p in
          Alcotest.(check bool)
            (Printf.sprintf "2^5 within 8%% [%s]" name)
            true
            (Float.abs (v -. 32.) < 2.6)))

let test_module_seq_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun _net d ->
          let m = Designs.Module_seq.make d in
          let tr = Core.Sync_design.simulate ~cycles:3 d in
          Alcotest.(check bool)
            (Printf.sprintf "all modules fired [%s]" name)
            true
            (Designs.Module_seq.completed tr m);
          Alcotest.(check (list int))
            (Printf.sprintf "modules occur in stage order [%s]" name)
            [ 0; 1; 2; 3 ]
            (Designs.Module_seq.completion_order tr m)))

(* ------------------------------------------- stochastic conformance *)

(* SSA clock periods are emergent (and chassis-specific), so decode via
   trace-derived cycle boundaries; the logical assertion — every decoded
   step advances the counter by exactly one — is the same on both
   chassis. The horizon is per-chassis only because stochastic periods
   are emergent: the absence clock's is about twice its deterministic
   one, the relaxation clock's about 2.5x (each re-ignition waits on a
   discrete seed arrival). *)
let ssa_horizon name = if name = "absence" then 120. else 150.

let test_ssa_counter_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun net d ->
          let ctr = Core.Counter.free_running d ~bits:2 in
          let { Ssa.Gillespie.trace; _ } =
            Ssa.Gillespie.run ~seed:5L ~sample_dt:0.05 ~t1:(ssa_horizon name)
              net
          in
          let states = Core.Stochastic.counter_states trace ctr in
          Alcotest.(check bool)
            (Printf.sprintf "several cycles decoded (%d) [%s]"
               (List.length states) name)
            true
            (List.length states >= 4);
          Alcotest.(check bool)
            (Printf.sprintf "every step increments by one [%s]" name)
            true
            (Core.Stochastic.increments_by_one states ~modulo:4)))

let test_ssa_module_seq_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun net d ->
          let m = Designs.Module_seq.make d in
          let { Ssa.Gillespie.trace; _ } =
            Ssa.Gillespie.run ~seed:11L ~sample_dt:0.05
              ~t1:(ssa_horizon name /. 2.)
              net
          in
          Alcotest.(check (list int))
            (Printf.sprintf "stage order survives discreteness [%s]" name)
            [ 0; 1; 2; 3 ]
            (Designs.Module_seq.completion_order trace m)))

(* ---------------------------------------------- hybrid conformance *)

(* Default thresholds keep these populations in discrete mode (bitwise
   Gillespie); lowered thresholds force the fast clock reactions onto
   the ODE partition, so the decode must survive genuine mixed-mode
   execution on both chassis. *)
let test_hybrid_counter_conformance () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun net d ->
          let ctr = Core.Counter.free_running d ~bits:2 in
          let r =
            Hybrid.Engine.run ~seed:5L ~sample_dt:0.05 ~pop_threshold:40.
              ~prop_threshold:100. ~t1:(ssa_horizon name) net
          in
          Alcotest.(check bool)
            (Printf.sprintf "mixed mode engaged [%s]" name)
            true
            (r.Hybrid.Engine.stats.Hybrid.Engine.n_ode_steps > 0);
          let states =
            Core.Stochastic.counter_states r.Hybrid.Engine.trace ctr
          in
          Alcotest.(check bool)
            (Printf.sprintf "several cycles decoded (%d) [%s]"
               (List.length states) name)
            true
            (List.length states >= 4);
          Alcotest.(check bool)
            (Printf.sprintf "every step increments by one [%s]" name)
            true
            (Core.Stochastic.increments_by_one states ~modulo:4)))

(* --------------------------------- checkpoint/resume on a relaxation clock *)

let check_traces what a b =
  Alcotest.(check int) (what ^ ": trace length") (Ode.Trace.length a)
    (Ode.Trace.length b);
  let same x y = Int64.bits_of_float x = Int64.bits_of_float y in
  for i = 0 to Ode.Trace.length a - 1 do
    let ta = (Ode.Trace.times a).(i) and tb = (Ode.Trace.times b).(i) in
    if not (same ta tb) then
      Alcotest.failf "%s: time[%d] differs: %h vs %h" what i ta tb;
    let xa = Ode.Trace.state_at_index a i
    and xb = Ode.Trace.state_at_index b i in
    Array.iteri
      (fun s va ->
        if not (same va xb.(s)) then
          Alcotest.failf "%s: state[%d][%d] differs: %h vs %h" what i s va
            xb.(s))
      xa
  done

(* a token that cancels forever after the Nth poll *)
let cancel_after n =
  let polls = ref 0 in
  Numeric.Cancel.of_fun (fun () ->
      incr polls;
      !polls > n)

(* interrupt an SSA run of the relaxation clock mid-trajectory, round-trip
   the checkpoint through the snapshot codec, resume, and demand the
   bitwise-identical trace — the warm-state machinery of the service tier
   must not care which chassis generated the trajectory *)
let test_relaxation_resume_bitwise () =
  let module S = Service.Snapshot in
  let net = Designs.Catalog.build "rx-clock4" in
  let env = Crn.Rates.env_with_ratio 1000. in
  let t1 = 3. and seed = 9L in
  let full = Ssa.Gillespie.run ~env ~seed ~t1 net in
  let captured = ref None in
  match
    Ssa.Gillespie.run ~env ~seed ~cancel:(cancel_after 3)
      ~on_cancel:(fun ck -> captured := Some ck)
      ~t1 net
  with
  | _ -> Alcotest.fail "relaxation run finished before the token tripped"
  | exception Numeric.Cancel.Cancelled ->
      let ck =
        match !captured with
        | Some ck -> ck
        | None -> Alcotest.fail "cancelled without on_cancel"
      in
      let sc =
        S.decode_sim
          (S.encode_sim
             {
               S.sc_net = net;
               sc_env = env;
               sc_t1 = t1;
               sc_seed = seed;
               sc_params = [||];
               sc_state = S.Ssa_ck ck;
             })
      in
      let ck =
        match sc.S.sc_state with S.Ssa_ck c -> c | _ -> assert false
      in
      let resumed =
        Ssa.Gillespie.run ~env:sc.S.sc_env ~seed:sc.S.sc_seed ~resume:ck
          ~t1:sc.S.sc_t1 sc.S.sc_net
      in
      check_traces "relaxation ssa resume" full.Ssa.Gillespie.trace
        resumed.Ssa.Gillespie.trace

(* --------------------------------------------- chassis knob property *)

(* Build a bare clock on [chassis] with seed-derived valid knobs; return
   the network, the instance, and the exact-tier non-overlap witness. *)
let random_clock rng chassis =
  let name = chassis_name chassis in
  let n_phases =
    if name = "relaxation" then 4 + (2 * Random.State.int rng 2)
    else 3 + Random.State.int rng 4
  in
  let mass = 50. +. Random.State.float rng 150. in
  let net = Crn.Network.create () in
  let inst =
    Molclock.Clock_chassis.build chassis ~n_phases ~mass
      (Crn.Builder.scoped (Crn.Builder.on net) "clk")
  in
  (net, inst)

let witness_law view =
  match Exact.Invariant.find_clocks view with
  | [ c ] -> (
      match Exact.Invariant.phase_non_overlap view c with
      | Exact.Invariant.Proved l -> Some l
      | _ -> None)
  | _ -> None

(* structural half: on any valid knobs, the exact tier proves a
   nonnegative conservation law over the clock species whose total is
   exactly the requested mass — the phase species (plus bound forms)
   partition the clock mass as a theorem, not a measurement *)
let knob_partition_structural seed =
  let rng = Random.State.make [| seed |] in
  List.for_all
    (fun chassis ->
      let net, inst = random_clock rng chassis in
      let view = Crn.Exact_view.of_network net in
      match witness_law view with
      | None -> false
      | Some l ->
          Exact.Invariant.check_law view l.weights
          && Exact.Q.equal l.total
               (Exact.Q.of_float (Molclock.Clock_chassis.mass inst)))
    chassis_list

(* numeric half: simulate the same random clocks and check the witness
   weighting stays at the clock mass along the trajectory while
   non-adjacent phases never overlap beyond tolerance *)
let knob_partition_numeric seed =
  let rng = Random.State.make [| seed |] in
  List.for_all
    (fun chassis ->
      let net, inst = random_clock rng chassis in
      let mass = Molclock.Clock_chassis.mass inst in
      let view = Crn.Exact_view.of_network net in
      let weights =
        match witness_law view with
        | Some l -> Array.map Exact.Z.to_float l.Exact.Invariant.weights
        | None -> QCheck.Test.fail_reportf "seed %d: no witness law" seed
      in
      let trace =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock
          ~env:(Crn.Rates.env_with_ratio 1000.) ~thin:5 ~t1:100. net
      in
      let partitions =
        let ok = ref true in
        for i = 0 to Ode.Trace.length trace - 1 do
          let x = Ode.Trace.state_at_index trace i in
          let total = ref 0. in
          Array.iteri (fun s w -> total := !total +. (w *. x.(s))) weights;
          if Float.abs (!total -. mass) > 1e-3 *. mass then ok := false
        done;
        !ok
      in
      let sustained =
        Molclock.Clock_analysis.is_sustained ~min_cycles:3 trace inst
      in
      let overlap =
        Molclock.Clock_analysis.worst_adjacent_overlap trace inst
      in
      if not (partitions && sustained && overlap < 0.05) then
        QCheck.Test.fail_reportf
          "seed %d [%s]: partition=%b sustained=%b worst overlap %.4f \
           (rerun with CHASSIS_REPLAY_SEED=%d)"
          seed (chassis_name chassis) partitions sustained overlap seed
      else true)
    chassis_list

let seeded_qcheck ~count name prop =
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck.Test.make ~count ~name
       QCheck.(make ~print:string_of_int Gen.(int_range 0 1_000_000))
       prop)

let test_knob_replay () =
  (* replay a printed counterexample deterministically, many times *)
  match Sys.getenv_opt "CHASSIS_REPLAY_SEED" with
  | None -> ()
  | Some s ->
      let seed = int_of_string s in
      for _ = 1 to 10 do
        ignore (knob_partition_structural seed : bool);
        ignore (knob_partition_numeric seed : bool)
      done

(* ------------------------------- phase naming flows through the chassis *)

(* Regression for the latent-assumption hunt: consumers must learn phase
   species from the instance, and the exact tier must recognize both
   chassis' rings — nothing outside lib/molclock may assume "P0"/"R"
   naming or a phase count. *)
let test_instance_is_source_of_truth () =
  for_each_chassis (fun name ch ->
      let net = Crn.Network.create () in
      let inst =
        Molclock.Clock_chassis.build ch
          (Crn.Builder.scoped (Crn.Builder.on net) "clk")
      in
      Alcotest.(check int)
        (Printf.sprintf "default phase count honoured [%s]" name)
        ch.Molclock.Clock_chassis.default_phases
        (Molclock.Clock_chassis.n_phases inst);
      (* every advertised phase name resolves to the advertised species *)
      List.iteri
        (fun k pname ->
          Alcotest.(check (option int))
            (Printf.sprintf "phase %d name binds [%s]" k name)
            (Some (Molclock.Clock_chassis.phase inst k))
            (Crn.Network.find_species net pname))
        (Molclock.Clock_chassis.phase_names inst);
      (* the exact tier detects the ring from the network alone *)
      let view = Crn.Exact_view.of_network net in
      match Exact.Invariant.find_clocks view with
      | [ c ] ->
          Alcotest.(check (list string))
            (Printf.sprintf "exact tier sees the same ring [%s]" name)
            (Molclock.Clock_chassis.phase_names inst)
            (List.map
               (fun s -> view.Exact.Net.species.(s))
               (Array.to_list c.Exact.Invariant.phases))
      | cs ->
          Alcotest.failf "[%s] exact tier found %d clocks" name
            (List.length cs))

let test_design_phases_from_chassis () =
  for_each_chassis (fun name ch ->
      on_chassis ch (fun _net d ->
          let inst = d.Core.Sync_design.clock in
          Alcotest.(check int)
            (Printf.sprintf "release is phase 0 [%s]" name)
            (Molclock.Clock_chassis.phase inst 0)
            (Core.Sync_design.release_phase d);
          Alcotest.(check int)
            (Printf.sprintf "capture is phase 2 [%s]" name)
            (Molclock.Clock_chassis.phase inst 2)
            (Core.Sync_design.capture_phase d);
          Alcotest.(check bool)
            (Printf.sprintf "inject before sample [%s]" name)
            true
            (Molclock.Clock_chassis.inject_fraction inst
            < Molclock.Clock_chassis.sample_fraction inst)))

(* chassis registry sanity: lookup, phase validation, obligations *)
let test_registry () =
  Alcotest.(check (list string))
    "registered chassis" [ "absence"; "relaxation" ]
    (Molclock.Clock_chassis.names ());
  Alcotest.(check bool) "find absence" true
    (Molclock.Clock_chassis.find "absence" <> None);
  Alcotest.(check bool) "find unknown" true
    (Molclock.Clock_chassis.find "nonesuch" = None);
  (match Molclock.Clock_chassis.find_exn "nonesuch" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find_exn should reject unknown chassis");
  let rx = Molclock.Clock_chassis.find_exn "relaxation" in
  Alcotest.(check bool) "relaxation rejects odd phase counts" true
    (not (rx.Molclock.Clock_chassis.valid_phases 5));
  (match rx.Molclock.Clock_chassis.exact_obligation with
  | Molclock.Clock_chassis.Ring_conservation_with_core_waiver _ -> ()
  | _ -> Alcotest.fail "relaxation must carry a core waiver");
  let ab = Molclock.Clock_chassis.find_exn "absence" in
  match ab.Molclock.Clock_chassis.exact_obligation with
  | Molclock.Clock_chassis.Full_conservation -> ()
  | _ -> Alcotest.fail "absence must demand full conservation"

let suite =
  [
    ("registry", `Quick, test_registry);
    ("instance is source of truth", `Quick, test_instance_is_source_of_truth);
    ("design phases from chassis", `Quick, test_design_phases_from_chassis);
    ("counter2 conformance", `Slow, test_counter_conformance);
    ("counter3 conformance", `Slow, test_counter3_conformance);
    ("gated counter conformance", `Slow, test_gated_counter_conformance);
    ("lfsr conformance", `Slow, test_lfsr_conformance);
    ("filter conformance", `Slow, test_filter_conformance);
    ("iterative conformance", `Slow, test_iterative_conformance);
    ("module sequencing conformance", `Slow, test_module_seq_conformance);
    ("ssa counter conformance", `Slow, test_ssa_counter_conformance);
    ("ssa module sequencing conformance", `Slow,
     test_ssa_module_seq_conformance);
    ("hybrid counter conformance", `Slow, test_hybrid_counter_conformance);
    ("relaxation checkpoint/resume bitwise", `Quick,
     test_relaxation_resume_bitwise);
    ("knob replay", `Quick, test_knob_replay);
  ]
  @ [
      seeded_qcheck ~count:25
        "chassis knobs: phase mass partition proved (the printed int is \
         the seed)"
        knob_partition_structural;
      seeded_qcheck ~count:3
        "chassis knobs: partition and non-overlap measured (the printed \
         int is the seed)"
        knob_partition_numeric;
    ]
