(* crnsgate — the mrsc scale-out gateway.

   Spawns and supervises N crnserved worker shards (or attaches to
   existing daemons) and routes requests to them over a consistent-hash
   ring keyed on the compiled-model identity, so a hot model lives in
   exactly one shard's cache. Front doors: the length-prefixed wire
   protocol and HTTP/1.1 (POST /api, GET /health, GET /metrics).
   SIGTERM / SIGINT shut it down cleanly: listeners close, socket files
   unlink, and spawned shards are terminated and reaped. *)

open Cmdliner

let stop_requested = ref false

let run listen http shards served dir jobs queue_bound cache_capacity
    state_dir max_inflight no_affinity replicas route_memo max_frame max_conns
    attach seed verbose =
  let parse_addr what = function
    | None -> Ok None
    | Some s -> (
        match Service.Addr.of_string s with
        | Ok a -> Ok (Some a)
        | Error msg -> Error (Printf.sprintf "%s: %s" what msg))
  in
  let parse_attach () =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
          match Service.Addr.of_string s with
          | Ok a -> go (a :: acc) rest
          | Error msg -> Error (Printf.sprintf "--attach %s: %s" s msg))
    in
    go [] attach
  in
  let ( let* ) r f = match r with Ok v -> f v | Error msg -> Error msg in
  let result =
    let* wire = parse_addr "--listen" listen in
    let* http = parse_addr "--http" http in
    let* attached = parse_attach () in
    if wire = None && http = None then
      Error "at least one of --listen or --http is required"
    else if attached = [] && shards < 1 then Error "--shards must be >= 1"
    else if max_inflight < 1 then Error "--max-inflight must be >= 1"
    else if replicas < 1 then Error "--replicas must be >= 1"
    else
      let backend =
        if attached <> [] then Service.Gateway.Attach attached
        else
          Service.Gateway.Spawn
            {
              exe = served;
              count = shards;
              dir;
              jobs;
              queue_bound;
              cache_capacity;
              state_dir;
              extra_args = [];
            }
      in
      let cfg =
        {
          (Service.Gateway.default_config backend) with
          Service.Gateway.wire;
          http;
          affinity = not no_affinity;
          max_inflight;
          replicas;
          route_memo;
          max_frame;
          max_conns;
          log = verbose;
          seed = Int64.of_int seed;
        }
      in
      Ok cfg
  in
  match result with
  | Error msg ->
      Printf.eprintf "crnsgate: %s\n" msg;
      2
  | Ok cfg -> (
      List.iter
        (fun signal ->
          Sys.set_signal signal
            (Sys.Signal_handle (fun _ -> stop_requested := true)))
        [ Sys.sigterm; Sys.sigint ];
      (* a client hanging up mid-relay must be an EPIPE, not a kill *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      try
        Service.Gateway.run ~stop:(fun () -> !stop_requested) cfg;
        0
      with
      | Unix.Unix_error (e, fn, arg) ->
          Printf.eprintf "crnsgate: %s(%s): %s\n" fn arg
            (Unix.error_message e);
          1
      | Invalid_argument msg | Failure msg ->
          Printf.eprintf "crnsgate: %s\n" msg;
          1)

let listen =
  let doc =
    "Wire-protocol listen address: unix:\\$(b,PATH), a socket path starting \
     with / or ., or \\$(b,HOST:PORT) for TCP."
  in
  Arg.(
    value & opt (some string) None & info [ "l"; "listen" ] ~docv:"ADDR" ~doc)

let http =
  let doc =
    "HTTP listen address (\\$(b,HOST:PORT)): POST /api carries a request \
     object, GET /health and GET /metrics report fleet state."
  in
  Arg.(value & opt (some string) None & info [ "http" ] ~docv:"ADDR" ~doc)

let shards =
  let doc = "Number of crnserved worker shards to spawn and supervise." in
  Arg.(value & opt int 2 & info [ "n"; "shards" ] ~docv:"N" ~doc)

let served =
  let doc = "Path to the crnserved binary used to spawn shards." in
  Arg.(value & opt string "crnserved" & info [ "served" ] ~docv:"PATH" ~doc)

let dir =
  let doc = "Runtime directory for shard sockets." in
  Arg.(value & opt string "/tmp" & info [ "dir" ] ~docv:"DIR" ~doc)

let jobs =
  let doc = "Worker domains per shard (default: the shard's own default)." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let queue_bound =
  let doc = "Per-shard queue bound passed through to crnserved." in
  Arg.(
    value & opt (some int) None & info [ "queue-bound" ] ~docv:"N" ~doc)

let cache_capacity =
  let doc = "Per-shard compiled-model cache entries passed to crnserved." in
  Arg.(
    value & opt (some int) None & info [ "cache-capacity" ] ~docv:"N" ~doc)

let state_dir =
  let doc =
    "Warm persistent state root. Each spawned shard gets \
     $(docv)/shard-N-state as its own $(b,--state-dir), so a respawned \
     shard reloads the compiled models it owned before dying and serves \
     its first routed request as a cache hit instead of recompiling."
  in
  Arg.(
    value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let max_inflight =
  let doc =
    "Admission bound: in-flight requests allowed per shard before further \
     requests for it are refused with a structured $(i,overloaded) error."
  in
  Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)

let no_affinity =
  let doc =
    "Route uniformly at random instead of by the consistent-hash ring \
     (baseline mode for measuring what cache affinity buys)."
  in
  Arg.(value & flag & info [ "no-affinity" ] ~doc)

let replicas =
  let doc = "Virtual ring points per shard." in
  Arg.(value & opt int 128 & info [ "replicas" ] ~docv:"N" ~doc)

let route_memo =
  let doc = "Entries in the source-to-routing-key memo." in
  Arg.(value & opt int 512 & info [ "route-memo" ] ~docv:"N" ~doc)

let max_frame =
  let doc = "Frame/body size limit in bytes on both front doors." in
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let max_conns =
  let doc = "Open client connection cap." in
  Arg.(value & opt int 1024 & info [ "max-conns" ] ~docv:"N" ~doc)

let attach =
  let doc =
    "Attach to an existing daemon at $(docv) instead of spawning shards \
     (repeatable; overrides --shards/--served)."
  in
  Arg.(value & opt_all string [] & info [ "attach" ] ~docv:"ADDR" ~doc)

let seed =
  let doc = "Seed for the respawn-jitter and random-routing streams." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let verbose =
  let doc = "Log one stderr line per fleet and connection event." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let cmd =
  let doc = "scale-out gateway routing requests over crnserved shards" in
  let info = Cmd.info "crnsgate" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ listen $ http $ shards $ served $ dir $ jobs $ queue_bound
      $ cache_capacity $ state_dir $ max_inflight $ no_affinity $ replicas
      $ route_memo $ max_frame $ max_conns $ attach $ seed $ verbose)

let () = exit (Cmd.eval' cmd)
