(* crnserved — the persistent simulation daemon.

   Serves parse/ODE/SSA/ensemble/sweep/DSD requests over a
   length-prefixed JSON protocol (Unix-domain socket or TCP), with a
   compiled-model cache, a bounded worker queue, and per-request
   deadlines. SIGTERM / SIGINT shut it down cleanly: the listen socket
   closes, accepted jobs finish, worker domains join, and a Unix socket
   file is unlinked. *)

open Cmdliner

let stop_requested = ref false

let run listen jobs queue_bound cache_capacity deadline_ms max_frame
    read_deadline_ms idle_timeout_ms max_conns state_dir verbose =
  match Service.Addr.of_string listen with
  | Error msg ->
      Printf.eprintf "crnserved: %s\n" msg;
      2
  | Ok address -> (
      let config =
        let base = Service.Server.default_config address in
        {
          base with
          Service.Server.jobs =
            Option.value ~default:base.Service.Server.jobs jobs;
          queue_bound;
          cache_capacity;
          default_deadline_ms = deadline_ms;
          max_frame;
          read_deadline_ms;
          idle_timeout_ms;
          max_conns;
          log = verbose;
          state_dir;
        }
      in
      if config.Service.Server.jobs < 1 then begin
        Printf.eprintf "crnserved: --jobs must be >= 1\n";
        2
      end
      else if queue_bound < 1 then begin
        Printf.eprintf "crnserved: --queue-bound must be >= 1\n";
        2
      end
      else if cache_capacity < 1 then begin
        Printf.eprintf "crnserved: --cache-capacity must be >= 1\n";
        2
      end
      else if max_frame < 4096 then begin
        Printf.eprintf "crnserved: --max-frame must be >= 4096 bytes\n";
        2
      end
      else if max_conns < 1 then begin
        Printf.eprintf "crnserved: --max-conns must be >= 1\n";
        2
      end
      else begin
        List.iter
          (fun signal ->
            Sys.set_signal signal
              (Sys.Signal_handle (fun _ -> stop_requested := true)))
          [ Sys.sigterm; Sys.sigint ];
        (* a client hanging up mid-write must be an EPIPE, not a kill *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        try
          Service.Server.run ~stop:(fun () -> !stop_requested) config;
          0
        with
        | Unix.Unix_error (e, fn, arg) ->
            Printf.eprintf "crnserved: %s(%s): %s\n" fn arg
              (Unix.error_message e);
            1
        | Failure msg ->
            Printf.eprintf "crnserved: %s\n" msg;
            1
      end)

let listen =
  let doc =
    "Listen address: unix:\\$(b,PATH), a socket path starting with / or ., \
     or \\$(b,HOST:PORT) for TCP."
  in
  Arg.(
    value
    & opt string "/tmp/crnserved.sock"
    & info [ "l"; "listen" ] ~docv:"ADDR" ~doc)

let jobs =
  let doc = "Worker domains (default: all recommended cores minus one)." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let queue_bound =
  let doc =
    "Maximum queued jobs; requests beyond this are refused immediately with \
     a structured $(i,overloaded) error."
  in
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N" ~doc)

let cache_capacity =
  let doc = "Compiled-model LRU cache entries." in
  Arg.(value & opt int 32 & info [ "cache-capacity" ] ~docv:"N" ~doc)

let deadline_ms =
  let doc =
    "Default per-request deadline in milliseconds, applied when a request \
     carries no deadline_ms field. A run that exceeds it is cancelled and \
     answered with $(i,deadline_exceeded)."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_frame =
  let doc =
    "Per-connection frame-size limit in bytes. A longer length prefix is \
     answered with a structured error and the connection closed, without \
     allocating the payload."
  in
  Arg.(
    value & opt int (8 * 1024 * 1024) & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let read_deadline_ms =
  let doc =
    "Kill a connection whose partial frame has not completed within $(docv) \
     milliseconds (a stalled or byte-dribbling peer). 0 disables."
  in
  Arg.(
    value & opt float 10_000. & info [ "read-deadline-ms" ] ~docv:"MS" ~doc)

let idle_timeout_ms =
  let doc =
    "Close a connection with no traffic and no running jobs for $(docv) \
     milliseconds. 0 disables."
  in
  Arg.(
    value & opt float 300_000. & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc)

let max_conns =
  let doc =
    "Open-connection cap; accepts beyond it are answered with a structured \
     $(i,connection_limit) error and closed immediately."
  in
  Arg.(value & opt int 256 & info [ "max-conns" ] ~docv:"N" ~doc)

let state_dir =
  let doc =
    "Warm persistent state directory. Compiled-model snapshots are written \
     to $(docv)/models in the background and loaded back before the daemon \
     accepts connections, so a restarted daemon serves its first repeated \
     request as a cache hit instead of recompiling; deadline-cancelled runs \
     leave resumable checkpoints in $(docv)/checkpoints. Corrupt or stale \
     snapshots are skipped and counted, never fatal."
  in
  Arg.(
    value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let verbose =
  let doc = "Log one stderr line per connection event." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let cmd =
  let doc = "persistent simulation daemon with compiled-model caching" in
  let info = Cmd.info "crnserved" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ listen $ jobs $ queue_bound $ cache_capacity $ deadline_ms
      $ max_frame $ read_deadline_ms $ idle_timeout_ms $ max_conns
      $ state_dir $ verbose)

let () = exit (Cmd.eval' cmd)
