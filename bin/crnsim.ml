(* crnsim — simulate a chemical reaction network.

   The network comes either from a .crn file (see Crn.Parser for the
   format) or from the built-in design catalog. Output is a CSV dump, an
   ASCII plot of selected species, or a final-state summary.

   With --connect the simulation is delegated to a running crnserved
   daemon over its length-prefixed JSON protocol; stdout is
   byte-identical to direct execution for the final-state, ensemble and
   sweep modes. *)

open Cmdliner

let load source =
  match Designs.Catalog.find source with
  | Some entry -> entry.Designs.Catalog.build ()
  | None ->
      if Sys.file_exists source then Crn.Parser.network_of_file source
      else
        failwith
          (Printf.sprintf
             "%S is neither a file nor a built-in design (available: %s)"
             source
             (String.concat ", " (Designs.Catalog.names ())))

let method_of_string = function
  | "dopri5" -> Ode.Driver.Dopri5
  | "rosenbrock" -> Ode.Driver.Rosenbrock
  | s -> (
      match float_of_string_opt s with
      | Some h when h > 0. -> Ode.Driver.Rk4 h
      | _ -> failwith "method must be dopri5, rosenbrock, or an rk4 step size")

(* The engine universe. --engine is the one switch; --stochastic survives
   as a deprecated alias for --engine ssa so existing scripts keep
   working. *)
type engine = Ode_engine | Ssa_engine | Tau_engine | Hybrid_engine

let engine_name = function
  | Ode_engine -> "ode"
  | Ssa_engine -> "ssa"
  | Tau_engine -> "tau"
  | Hybrid_engine -> "hybrid"

let resolve_engine ~stochastic = function
  | Some "ode" -> Ode_engine
  | Some "ssa" -> Ssa_engine
  | Some "tau" -> Tau_engine
  | Some "hybrid" -> Hybrid_engine
  | Some other ->
      failwith
        (Printf.sprintf "unknown engine %S (ode, ssa, tau, hybrid)" other)
  | None ->
      if stochastic then begin
        Printf.eprintf
          "crnsim: note: --stochastic is deprecated; use --engine ssa\n";
        Ssa_engine
      end
      else Ode_engine

let stochastic_engine = function
  | Ode_engine -> false
  | Ssa_engine | Tau_engine | Hybrid_engine -> true

let print_hybrid_stats (s : Hybrid.Engine.stats) =
  Printf.eprintf
    "hybrid: %d exact + %d tau events (%d leaps), %d ode slices, %d \
     repartitions, %d mode switches, %d rejected, fast partition %d/%d at \
     end (peak %d)\n"
    s.Hybrid.Engine.n_ssa_events s.Hybrid.Engine.n_tau_events
    s.Hybrid.Engine.n_tau_leaps s.Hybrid.Engine.n_ode_steps
    s.Hybrid.Engine.n_repartitions s.Hybrid.Engine.n_mode_switches
    s.Hybrid.Engine.n_rejected s.Hybrid.Engine.final_n_fast
    (s.Hybrid.Engine.final_n_fast + s.Hybrid.Engine.final_n_slow)
    s.Hybrid.Engine.peak_n_fast

(* Resolve a --jobs request against the hardware: more domains than
   cores only time-slice the same silicon (the old BENCH files record
   sub-1.0 "speedups" from exactly that), so the fan-outs below clamp —
   with a one-line warning so a forced request is not silently ignored.
   Results are identical for every job count either way. *)
let effective_jobs ~what requested =
  let cores = Numeric.Domain_pool.default_jobs () in
  match requested with
  | None -> cores
  | Some j when j > cores ->
      Printf.eprintf
        "crnsim: %s: %d jobs requested but only %d core(s) available; \
         clamping to %d (results are identical for every job count)\n" what j
        cores cores;
      cores
  | Some j -> j

(* ensemble mode: many stochastic trajectories fanned across domains;
   reports per-species mean +- std of the final state instead of a trace.
   The model is compiled once and shared read-only; each worker domain
   reuses one simulation arena across its trajectories. *)
let run_ensemble ~env ~engine ~t1 ~seed ~runs ~jobs ~csv_out ~cancel
    ~pop_threshold ~prop_threshold ~repartition_every net =
  let jobs = effective_jobs ~what:"ensemble" jobs in
  let t0 = Unix.gettimeofday () in
  let seed = Int64.of_int seed in
  let finals =
    match engine with
    | Ode_engine -> failwith "--runs needs a stochastic engine (ssa, tau, hybrid)"
    | Ssa_engine ->
        let model = Ssa.Gillespie.compile_model env net in
        Ssa.Ensemble.map_with ~jobs ~seed
          ~init_worker:(fun () -> Ssa.Gillespie.make_arena model)
          ~runs
          (fun arena _ s ->
            (Ssa.Gillespie.run ~env ~seed:s ~arena ~cancel ~t1 net)
              .Ssa.Gillespie.final)
    | Tau_engine ->
        let model = Ssa.Tau_leap.compile_model env net in
        Ssa.Ensemble.map_with ~jobs ~seed
          ~init_worker:(fun () -> Ssa.Tau_leap.make_arena model)
          ~runs
          (fun arena _ s ->
            (Ssa.Tau_leap.run ~env ~seed:s ~arena ~cancel ~t1 net)
              .Ssa.Tau_leap.final)
    | Hybrid_engine ->
        let model = Hybrid.Engine.compile_model env net in
        Ssa.Ensemble.map_with ~jobs ~seed
          ~init_worker:(fun () -> Hybrid.Engine.make_arena model)
          ~runs
          (fun arena _ s ->
            (Hybrid.Engine.run ~env ~seed:s ~pop_threshold ~prop_threshold
               ~repartition_every ~arena ~cancel ~t1 net)
              .Hybrid.Engine.final)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let jobs_used = min jobs runs in
  Printf.eprintf "ensemble (%s): %d stochastic runs on %d domain(s) in %.2fs\n"
    (engine_name engine) runs jobs_used wall;
  let names = Crn.Network.species_names net in
  let column i = Array.map (fun f -> f.(i)) finals in
  let stats =
    Array.mapi
      (fun i name ->
        let xs = column i in
        (name, Numeric.Stats.mean xs, Numeric.Stats.stddev xs))
      names
  in
  (match csv_out with
  | Some path ->
      Analysis.Csv.write_rows ~path ~header:[ "species"; "mean"; "std" ]
        (Array.to_list
           (Array.map
              (fun (name, m, s) ->
                [ name; Printf.sprintf "%.17g" m; Printf.sprintf "%.17g" s ])
              stats));
      Printf.printf "wrote final-state statistics to %s\n" path
  | None -> ());
  Printf.printf "final state at t = %g (mean +- std over %d runs):\n" t1 runs;
  Array.iter
    (fun (name, m, s) ->
      if m > 1e-6 then Printf.printf "  %-24s %10.4f +- %8.4f\n" name m s)
    stats

(* rate-ratio sweep mode: the same network simulated deterministically at
   many fast/slow separations, fanned across domains; reports the final
   state at each ratio (identical for every --sweep-jobs value) *)
let run_rate_sweep ~t1 ~method_name ~sweep_jobs ~csv_out ~cancel net ratios =
  let ratios = Array.of_list ratios in
  let jobs = effective_jobs ~what:"sweep" sweep_jobs in
  let t0 = Unix.gettimeofday () in
  let finals =
    Ode.Sweep.final_states ~jobs ~method_:(method_of_string method_name)
      ~cancel ~t1 net ~ratios
  in
  let wall = Unix.gettimeofday () -. t0 in
  let n = Array.length ratios in
  let jobs_used = min jobs n in
  Printf.eprintf "sweep: %d deterministic points on %d domain(s) in %.2fs\n" n
    jobs_used wall;
  let names = Crn.Network.species_names net in
  (match csv_out with
  | Some path ->
      Analysis.Csv.write_rows ~path
        ~header:("ratio" :: Array.to_list names)
        (Array.to_list
           (Array.mapi
              (fun i final ->
                Printf.sprintf "%.17g" ratios.(i)
                :: Array.to_list
                     (Array.map (Printf.sprintf "%.17g") final))
              finals));
      Printf.printf "wrote final states for %d ratios to %s\n" n path
  | None -> ());
  Array.iteri
    (fun i final ->
      Printf.printf "ratio %g: final state at t = %g:\n" ratios.(i) t1;
      Array.iteri
        (fun s name ->
          if final.(s) > 1e-6 then
            Printf.printf "  %-24s %10.4f\n" name final.(s))
        names)
    finals

(* ------------------------------------------------- client (--connect) *)

module J = Service.Json

let json_floats j =
  match J.to_list j with
  | Some xs ->
      Array.of_list
        (List.map
           (fun x ->
             match J.to_float x with
             | Some f -> f
             | None -> failwith "malformed server response (expected number)")
           xs)
  | None -> failwith "malformed server response (expected array)"

let json_strings j =
  match J.to_list j with
  | Some xs ->
      Array.of_list
        (List.map
           (fun x ->
             match J.to_str x with
             | Some s -> s
             | None -> failwith "malformed server response (expected string)")
           xs)
  | None -> failwith "malformed server response (expected array)"

let json_field result key =
  match J.member key result with
  | Some v -> v
  | None -> failwith (Printf.sprintf "malformed server response (no %S)" key)

(* the network as the request ships it: catalog designs by name (so the
   daemon's source memo keys on the name), files as inline text; --focus
   slices locally and ships the slice as canonical text *)
let network_json source focus =
  match focus with
  | [] ->
      if Option.is_some (Designs.Catalog.find source) then
        J.Obj [ ("catalog", J.str source) ]
      else if Sys.file_exists source then
        J.Obj
          [ ("text", J.str (In_channel.with_open_bin source In_channel.input_all)) ]
      else
        failwith
          (Printf.sprintf
             "%S is neither a file nor a built-in design (available: %s)"
             source
             (String.concat ", " (Designs.Catalog.names ())))
  | names ->
      let slice = Crn.Slice.extract (load source) names in
      Printf.eprintf "focused on %s: %d species, %d reactions\n"
        (String.concat ", " names)
        (Crn.Network.n_species slice)
        (Crn.Network.n_reactions slice);
      J.Obj [ ("text", J.str (Crn.Network.to_string slice)) ]

exception Remote_error of int

let handle_envelope resp =
  (match resp.Service.Client.metrics with
  | Some m ->
      let f key =
        Option.value ~default:0. (Option.bind (J.member key m) J.to_float)
      in
      let cache =
        Option.value ~default:"n/a"
          (Option.bind (J.member "cache" m) J.to_str)
      in
      Printf.eprintf
        "server: cache %s, queue %.1f ms, compile %.1f ms, run %.1f ms, \
         total %.1f ms\n"
        cache (f "queue_wait_ms") (f "compile_ms") (f "run_ms") (f "total_ms")
  | None -> ());
  if resp.Service.Client.ok then
    match resp.Service.Client.result with
    | Some result -> result
    | None -> failwith "malformed server response (ok without result)"
  else begin
    Printf.eprintf "crnsim: %s\n"
      (Option.value ~default:"unknown server error"
         resp.Service.Client.error_message);
    raise
      (Remote_error
         (match resp.Service.Client.error with
         | Some err -> Service.Error.exit_code err
         | None -> 70))
  end

let remote_call client req =
  handle_envelope (Service.Client.request client req)

(* the streamed trace op: the header frame opens the trace, each chunk
   frame appends its samples, and the final envelope (metrics, work
   counters) is handled like any other response — so the rebuilt trace
   feeds the same CSV/plot code as a local run, byte-identically *)
let remote_trace client req =
  let trace = ref None in
  let on_frame j =
    match J.member "stream" j with
    | Some _ ->
        let names = json_strings (json_field j "species") in
        trace := Some (Ode.Trace.create ~names)
    | None -> (
        match !trace with
        | None -> failwith "malformed server response (chunk before header)"
        | Some tr -> (
            let ts = json_floats (json_field j "t") in
            match J.to_list (json_field j "x") with
            | Some xs ->
                List.iteri
                  (fun i x -> Ode.Trace.record tr ts.(i) (json_floats x))
                  xs
            | None -> failwith "malformed server response (expected array)"))
  in
  let final = Service.Client.call_stream client req ~on_frame in
  let result =
    handle_envelope (Service.Client.response_of_json final)
  in
  match !trace with
  | Some tr -> (tr, result)
  | None -> failwith "malformed server response (no stream header)"

let print_final_block ~t1 names finals =
  Printf.printf "final state at t = %g:\n" t1;
  Array.iteri
    (fun i name ->
      if finals.(i) > 1e-6 then
        Printf.printf "  %-24s %10.4f\n" name finals.(i))
    names

let run_remote ~connect ~source ~t1 ~ratio ~method_name ~csv_out
    ~plot_species ~engine ~seed ~runs ~jobs ~final_only ~focus ~sweep_ratios
    ~sweep_jobs ~deadline_ms ~retries ~retry_budget_ms ~pop_threshold
    ~prop_threshold ~repartition_every =
  if runs < 1 then failwith "--runs must be >= 1";
  if retries < 0 then failwith "--retries must be >= 0";
  if retry_budget_ms <= 0. then failwith "--retry-budget-ms must be > 0";
  let address =
    match Service.Addr.of_string connect with
    | Ok a -> a
    | Error msg -> failwith msg
  in
  let network = network_json source focus in
  let opt_int key = function
    | Some v -> [ (key, J.int v) ]
    | None -> []
  in
  let deadline =
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", J.num ms) ]
    | None -> []
  in
  (* the daemon enforces the deadline and answers deadline_exceeded; the
     socket-read deadline is a backstop (budget + grace) so a daemon
     that accepts and then never responds cannot hang the client *)
  let read_deadline_ms =
    Option.map (fun ms -> Float.max ms 1. +. 1000.) deadline_ms
  in
  let client =
    Service.Client.connect ~retries ~retry_budget_ms
      ~retry_seed:(Int64.of_int seed) ?read_deadline_ms address
  in
  Fun.protect
    ~finally:(fun () -> Service.Client.close client)
    (fun () ->
      if sweep_ratios <> [] then begin
        if stochastic_engine engine then
          failwith
            "--sweep-ratio is a deterministic mode; use the default \
             --engine ode";
        List.iter
          (fun r ->
            if r <= 0. then failwith "--sweep-ratio values must be > 0")
          sweep_ratios;
        let result =
          remote_call client
            (J.Obj
               ([
                  ("op", J.str "sweep");
                  ("network", network);
                  ("t1", J.num t1);
                  ("method", J.str method_name);
                  ("ratios", J.List (List.map J.num sweep_ratios));
                ]
               @ opt_int "jobs" sweep_jobs @ deadline))
        in
        let names = json_strings (json_field result "species") in
        let ratios = json_floats (json_field result "ratios") in
        let finals =
          match J.to_list (json_field result "finals") with
          | Some xs -> Array.of_list (List.map json_floats xs)
          | None -> failwith "malformed server response (expected array)"
        in
        (match csv_out with
        | Some path ->
            Analysis.Csv.write_rows ~path
              ~header:("ratio" :: Array.to_list names)
              (Array.to_list
                 (Array.mapi
                    (fun i final ->
                      Printf.sprintf "%.17g" ratios.(i)
                      :: Array.to_list
                           (Array.map (Printf.sprintf "%.17g") final))
                    finals));
            Printf.printf "wrote final states for %d ratios to %s\n"
              (Array.length ratios) path
        | None -> ());
        Array.iteri
          (fun i final ->
            Printf.printf "ratio %g: final state at t = %g:\n" ratios.(i) t1;
            Array.iteri
              (fun s name ->
                if final.(s) > 1e-6 then
                  Printf.printf "  %-24s %10.4f\n" name final.(s))
              names)
          finals
      end
      else if stochastic_engine engine && runs > 1 then begin
        if plot_species <> [] then
          Printf.eprintf "note: --plot is ignored when --runs > 1\n";
        let hybrid_knobs =
          if engine = Hybrid_engine then
            [
              ("pop_threshold", J.num pop_threshold);
              ("prop_threshold", J.num prop_threshold);
              ("repartition_every", J.int repartition_every);
            ]
          else []
        in
        let result =
          remote_call client
            (J.Obj
               ([
                  ("op", J.str "ensemble");
                  ("engine", J.str (engine_name engine));
                  ("network", network);
                  ("t1", J.num t1);
                  ("ratio", J.num ratio);
                  ("seed", J.int seed);
                  ("runs", J.int runs);
                ]
               @ hybrid_knobs @ opt_int "jobs" jobs @ deadline))
        in
        let names = json_strings (json_field result "species") in
        let mean = json_floats (json_field result "mean") in
        let std = json_floats (json_field result "std") in
        (match csv_out with
        | Some path ->
            Analysis.Csv.write_rows ~path
              ~header:[ "species"; "mean"; "std" ]
              (Array.to_list
                 (Array.mapi
                    (fun i name ->
                      [
                        name;
                        Printf.sprintf "%.17g" mean.(i);
                        Printf.sprintf "%.17g" std.(i);
                      ])
                    names));
            Printf.printf "wrote final-state statistics to %s\n" path
        | None -> ());
        Printf.printf "final state at t = %g (mean +- std over %d runs):\n" t1
          runs;
        Array.iteri
          (fun i name ->
            if mean.(i) > 1e-6 then
              Printf.printf "  %-24s %10.4f +- %8.4f\n" name mean.(i) std.(i))
          names
      end
      else if
        (csv_out <> None || plot_species <> []) && runs = 1 && sweep_ratios = []
      then begin
        (* trace modes stream over the trace op and rebuild the
           trajectory locally, so --csv and --plot output matches a
           local run byte-for-byte *)
        let emit_trace tr =
          (match csv_out with
          | Some path ->
              Analysis.Csv.write_trace ~path tr;
              Printf.printf "wrote %d samples to %s\n" (Ode.Trace.length tr)
                path
          | None -> ());
          (match plot_species with
          | [] -> ()
          | names ->
              print_string
                (Analysis.Ascii_plot.render ~width:72 ~height:16 ~title:source
                   (Analysis.Ascii_plot.of_trace tr names)));
          if final_only || (csv_out = None && plot_species = []) then begin
            Printf.printf "final state at t = %g:\n" t1;
            let state = Ode.Trace.last_state tr in
            Array.iteri
              (fun i name ->
                if state.(i) > 1e-6 then
                  Printf.printf "  %-24s %10.4f\n" name state.(i))
              (Ode.Trace.names tr)
          end
        in
        match engine with
        | Ode_engine ->
            let tr, _result =
              remote_trace client
                (J.Obj
                   ([
                      ("op", J.str "trace");
                      ("engine", J.str "ode");
                      ("network", network);
                      ("t1", J.num t1);
                      ("ratio", J.num ratio);
                      ("method", J.str method_name);
                      (* the local path simulates with ~thin:5 *)
                      ("thin", J.int 5);
                    ]
                   @ deadline))
            in
            emit_trace tr
        | Ssa_engine ->
            let tr, result =
              remote_trace client
                (J.Obj
                   ([
                      ("op", J.str "trace");
                      ("engine", J.str "ssa");
                      ("network", network);
                      ("t1", J.num t1);
                      ("ratio", J.num ratio);
                      ("seed", J.int seed);
                    ]
                   @ deadline))
            in
            (match Option.bind (J.member "n_events" result) J.to_int with
            | Some n ->
                Printf.eprintf "stochastic simulation: %d reaction events\n" n
            | None -> ());
            emit_trace tr
        | Tau_engine | Hybrid_engine ->
            failwith
              "trace streaming over --connect supports --engine ode and ssa"
      end
      else if stochastic_engine engine then begin
        let knobs =
          if engine = Hybrid_engine then
            [
              ("pop_threshold", J.num pop_threshold);
              ("prop_threshold", J.num prop_threshold);
              ("repartition_every", J.int repartition_every);
            ]
          else []
        in
        let result =
          remote_call client
            (J.Obj
               ([
                  ("op", J.str (engine_name engine));
                  ("network", network);
                  ("t1", J.num t1);
                  ("ratio", J.num ratio);
                  ("seed", J.int seed);
                ]
               @ knobs @ deadline))
        in
        (match Option.bind (J.member "n_events" result) J.to_int with
        | Some n ->
            Printf.eprintf "stochastic simulation: %d reaction events\n" n
        | None -> ());
        (match Option.bind (J.member "n_leaps" result) J.to_int with
        | Some n ->
            Printf.eprintf "tau-leaping: %d leaps, %d exact fallbacks\n" n
              (Option.value ~default:0
                 (Option.bind (J.member "n_exact" result) J.to_int))
        | None -> ());
        print_final_block ~t1
          (json_strings (json_field result "species"))
          (json_floats (json_field result "final"))
      end
      else begin
        let result =
          remote_call client
            (J.Obj
               ([
                  ("op", J.str "ode");
                  ("network", network);
                  ("t1", J.num t1);
                  ("ratio", J.num ratio);
                  ("method", J.str method_name);
                ]
               @ deadline))
        in
        print_final_block ~t1
          (json_strings (json_field result "species"))
          (json_floats (json_field result "final"))
      end)

(* ------------------------------------------- checkpoint / resume *)

module S = Service.Snapshot

(* same cooperative deadline token the daemon arms *)
let cancel_of_deadline deadline_ms =
  match deadline_ms with
  | Some ms when ms > 0. ->
      let expires = Unix.gettimeofday () +. (ms /. 1000.) in
      Numeric.Cancel.of_fun (fun () -> Unix.gettimeofday () > expires)
  | _ -> Numeric.Cancel.never

let write_checkpoint out sc =
  Service.Binio.write_raw_atomic out (S.encode_sim sc);
  Printf.eprintf
    "crnsim: %s checkpoint written to %s (continue with --resume %s)\n"
    (S.engine_name sc.S.sc_state) out out

(* shared trace emission so a resumed run's CSV/plot/final-state output
   goes through exactly the code the uninterrupted run uses *)
let emit_trace ~source ~t1 ~csv_out ~plot_species ~final_only trace =
  (match csv_out with
  | Some path ->
      Analysis.Csv.write_trace ~path trace;
      Printf.printf "wrote %d samples to %s\n" (Ode.Trace.length trace) path
  | None -> ());
  (match plot_species with
  | [] -> ()
  | names ->
      print_string
        (Analysis.Ascii_plot.render ~width:72 ~height:16 ~title:source
           (Analysis.Ascii_plot.of_trace trace names)));
  if final_only || (csv_out = None && plot_species = []) then begin
    Printf.printf "final state at t = %g:\n" t1;
    let state = Ode.Trace.last_state trace in
    Array.iteri
      (fun i name ->
        if state.(i) > 1e-6 then
          Printf.printf "  %-24s %10.4f\n" name state.(i))
      (Ode.Trace.names trace)
  end

(* --resume FILE: the checkpoint is self-contained (network, rate
   environment, horizon, seed, engine parameters, mid-run engine state),
   so everything the continuation needs comes from the file; the
   NETWORK argument and the engine/ratio/seed flags are ignored. The
   finished trajectory is bitwise identical to an uninterrupted run.
   (Defined after [report_error] below via this forward slot.) *)
let run_resume_impl ~report_error ~path ~source ~csv_out ~plot_species
    ~final_only ~checkpoint ~deadline_ms =
  try
    let sc =
      try S.decode_sim (Service.Binio.read_raw path) with
      | Service.Binio.Corrupt msg ->
          failwith (Printf.sprintf "%s: corrupt checkpoint: %s" path msg)
      | S.Version_mismatch { found; expected; _ } ->
          failwith
            (Printf.sprintf
               "%s: checkpoint format v%d, this build reads v%d" path found
               expected)
      | Sys_error msg -> failwith msg
    in
    let cancel = cancel_of_deadline deadline_ms in
    let net = sc.S.sc_net
    and env = sc.S.sc_env
    and t1 = sc.S.sc_t1
    and seed = sc.S.sc_seed in
    let p name = S.param sc name in
    let pi name = Option.map int_of_float (S.param sc name) in
    (* a resumed run can itself hit a deadline and re-checkpoint *)
    let recapture wrap ck =
      match checkpoint with
      | None -> ()
      | Some out -> write_checkpoint out { sc with S.sc_state = wrap ck }
    in
    Printf.eprintf "crnsim: resuming %s run from %s (t1 = %g)\n"
      (S.engine_name sc.S.sc_state) path t1;
    let trace =
      match sc.S.sc_state with
      | S.Ode_ck ck ->
          let method_ =
            match ck.Ode.Driver.ck_method with
            | Ode.Driver.Ck_dopri5 _ -> Ode.Driver.Dopri5
            | Ode.Driver.Ck_rosenbrock _ -> Ode.Driver.Rosenbrock
            | Ode.Driver.Ck_fixed _ -> (
                match p "h" with
                | Some h -> Ode.Driver.Rk4 h
                | None -> failwith "rk4 checkpoint is missing its step size")
          in
          Ode.Driver.simulate_ck ~method_ ?rtol:(p "rtol") ?atol:(p "atol")
            ~env ~cancel
            ~thin:(Option.value ~default:1 (pi "thin"))
            ~resume:ck
            ~on_cancel:(recapture (fun c -> S.Ode_ck c))
            ~t1 net
      | S.Ssa_ck ck ->
          let { Ssa.Gillespie.trace; n_events; _ } =
            Ssa.Gillespie.run ~env ~seed ?sample_dt:(p "sample_dt")
              ?max_events:(pi "max_events") ~cancel ~resume:ck
              ~on_cancel:(recapture (fun c -> S.Ssa_ck c))
              ~t1 net
          in
          Printf.eprintf "stochastic simulation: %d reaction events\n"
            n_events;
          trace
      | S.Tau_ck ck ->
          let { Ssa.Tau_leap.trace; n_leaps; n_exact; _ } =
            Ssa.Tau_leap.run ~env ~seed ?sample_dt:(p "sample_dt")
              ?epsilon:(p "epsilon") ?max_steps:(pi "max_steps") ~cancel
              ~resume:ck
              ~on_cancel:(recapture (fun c -> S.Tau_ck c))
              ~t1 net
          in
          Printf.eprintf "tau-leaping: %d leaps, %d exact fallbacks\n" n_leaps
            n_exact;
          trace
      | S.Hybrid_ck ck ->
          let { Hybrid.Engine.trace; stats; _ } =
            Hybrid.Engine.run ~env ~seed ?sample_dt:(p "sample_dt")
              ?pop_threshold:(p "pop_threshold")
              ?prop_threshold:(p "prop_threshold")
              ?repartition_every:(pi "repartition_every")
              ?epsilon:(p "epsilon") ?max_events:(pi "max_events") ~cancel
              ~resume:ck
              ~on_cancel:(recapture (fun c -> S.Hybrid_ck c))
              ~t1 net
          in
          print_hybrid_stats stats;
          trace
    in
    emit_trace ~source ~t1 ~csv_out ~plot_species ~final_only trace;
    0
  with e -> report_error e

(* map everything a simulation can die of to a one-line message and the
   structured exit code shared with the service protocol: 2 input, 3
   budget/solver, 4 deadline, 5 overloaded, 70 internal *)
let report_error e =
  match Service.Error.of_exn e with
  | Some err ->
      Printf.eprintf "crnsim: %s\n" (Service.Error.message err);
      Service.Error.exit_code err
  | None -> (
      match e with
      | Failure msg | Invalid_argument msg ->
          Printf.eprintf "crnsim: %s\n" msg;
          2
      | Remote_error exit_code -> exit_code
      | Numeric.Cancel.Cancelled ->
          Printf.eprintf "crnsim: deadline exceeded\n";
          4
      | Service.Client.Timeout ms ->
          Printf.eprintf
            "crnsim: no response from server within %.0f ms read deadline\n"
            ms;
          4
      | Service.Client.Retries_exhausted { attempts; last } ->
          let detail =
            match last with
            | Unix.Unix_error (err, fn, _) ->
                Printf.sprintf "%s: %s" fn (Unix.error_message err)
            | _ -> "server closed the connection"
          in
          Printf.eprintf "crnsim: gave up after %d attempt(s): %s\n" attempts
            detail;
          5
      | Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "crnsim: %s(%s): %s\n" fn arg
            (Unix.error_message err);
          70
      | e -> raise e)

let run_resume ~path ~source ~csv_out ~plot_species ~final_only ~checkpoint
    ~deadline_ms =
  run_resume_impl ~report_error ~path ~source ~csv_out ~plot_species
    ~final_only ~checkpoint ~deadline_ms

(* --validate: certify the network in the exact verification tier and
   print the certificate, without simulating anything. The local and
   --connect paths print byte-identical certificates; exit 0 when
   certified, 6 when the network is rejected (same code the service
   protocol assigns to validation_failed). *)
let run_validate ~source ~connect ~deadline_ms ~retries ~retry_budget_ms
    ~seed =
  try
    match connect with
    | None ->
        let net = load source in
        let title =
          if Option.is_some (Designs.Catalog.find source) then source
          else "network"
        in
        let cert = Service.Verify.certify ~title net in
        print_string (Exact.Certificate.render cert);
        (match Service.Verify.error_of_certificate cert with
        | None -> 0
        | Some err ->
            Printf.eprintf "crnsim: %s\n" (Service.Error.message err);
            Service.Error.exit_code err)
    | Some connect ->
        let address =
          match Service.Addr.of_string connect with
          | Ok a -> a
          | Error msg -> failwith msg
        in
        let read_deadline_ms =
          Option.map (fun ms -> Float.max ms 1. +. 1000.) deadline_ms
        in
        let client =
          Service.Client.connect ~retries ~retry_budget_ms
            ~retry_seed:(Int64.of_int seed) ?read_deadline_ms address
        in
        Fun.protect
          ~finally:(fun () -> Service.Client.close client)
          (fun () ->
            let deadline =
              match deadline_ms with
              | Some ms -> [ ("deadline_ms", J.num ms) ]
              | None -> []
            in
            let resp =
              Service.Client.request client
                (J.Obj
                   ([
                      ("op", J.str "validate");
                      ("network", network_json source []);
                    ]
                   @ deadline))
            in
            (* certified and rejected responses both carry the rendered
               certificate; print it either way, then exit by verdict *)
            (match
               Option.bind resp.Service.Client.result (fun r ->
                   Option.bind (J.member "certificate" r) J.to_str)
             with
            | Some text -> print_string text
            | None -> ());
            if resp.Service.Client.ok then 0
            else begin
              Printf.eprintf "crnsim: %s\n"
                (Option.value ~default:"unknown server error"
                   resp.Service.Client.error_message);
              match resp.Service.Client.error with
              | Some err -> Service.Error.exit_code err
              | None -> 70
            end)
  with e -> report_error e

let run source t1 ratio method_name csv_out plot_species engine_opt
    stochastic seed runs jobs final_only focus sweep_ratios sweep_jobs
    connect deadline_ms retries retry_budget_ms pop_threshold prop_threshold
    repartition_every validate checkpoint resume =
  if
    (checkpoint <> None || resume <> None)
    && (connect <> None || validate || runs > 1 || sweep_ratios <> [])
  then begin
    Printf.eprintf
      "crnsim: --checkpoint/--resume apply to a single local trajectory \
       (not --connect, --validate, --runs > 1 or --sweep-ratio)\n";
    2
  end
  else
  match resume with
  | Some path ->
      (* the checkpoint carries the network; a NETWORK argument, if
         given, only names the plot title *)
      run_resume ~path
        ~source:(Option.value ~default:path source)
        ~csv_out ~plot_species ~final_only ~checkpoint ~deadline_ms
  | None -> (
  match source with
  | None ->
      Printf.eprintf
        "crnsim: a NETWORK argument is required (only --resume runs \
         without one)\n";
      2
  | Some source ->
  if validate then
    run_validate ~source ~connect ~deadline_ms ~retries ~retry_budget_ms
      ~seed
  else
  match
    (try Ok (resolve_engine ~stochastic engine_opt) with e -> Error e)
  with
  | Error e -> report_error e
  | Ok engine -> (
  match connect with
  | Some connect -> (
      try
        run_remote ~connect ~source ~t1 ~ratio ~method_name ~csv_out
          ~plot_species ~engine ~seed ~runs ~jobs ~final_only ~focus
          ~sweep_ratios ~sweep_jobs ~deadline_ms ~retries ~retry_budget_ms
          ~pop_threshold ~prop_threshold ~repartition_every;
        0
      with e -> report_error e)
  | None -> (
  try
    (* a local deadline uses the same cooperative-cancellation tokens the
       daemon arms, so both paths fail the same way (exit 4) *)
    let cancel = cancel_of_deadline deadline_ms in
    let net = load source in
    let net =
      match focus with
      | [] -> net
      | names ->
          let slice = Crn.Slice.extract net names in
          Printf.eprintf
            "focused on %s: %d/%d species, %d/%d reactions\n"
            (String.concat ", " names)
            (Crn.Network.n_species slice) (Crn.Network.n_species net)
            (Crn.Network.n_reactions slice) (Crn.Network.n_reactions net);
          slice
    in
    let env = Crn.Rates.env_with_ratio ratio in
    (match Crn.Validate.report net with
    | "" -> ()
    | report -> Printf.eprintf "lint:\n%s\n" report);
    if runs < 1 then failwith "--runs must be >= 1";
    if sweep_ratios <> [] then begin
      if stochastic_engine engine then
        failwith
          "--sweep-ratio is a deterministic mode; use the default \
           --engine ode";
      List.iter
        (fun r -> if r <= 0. then failwith "--sweep-ratio values must be > 0")
        sweep_ratios;
      run_rate_sweep ~t1 ~method_name ~sweep_jobs ~csv_out ~cancel net
        sweep_ratios;
      0
    end
    else if stochastic_engine engine && runs > 1 then begin
      if plot_species <> [] then
        Printf.eprintf "note: --plot is ignored when --runs > 1\n";
      run_ensemble ~env ~engine ~t1 ~seed ~runs ~jobs ~csv_out ~cancel
        ~pop_threshold ~prop_threshold ~repartition_every net;
      0
    end
    else begin
    (* --checkpoint FILE: a deadline-cancelled run drops its loop-top
       state to FILE just before exiting 4, self-contained so --resume
       needs nothing but the file *)
    let capture wrap params =
      Option.map
        (fun out ck ->
          write_checkpoint out
            {
              S.sc_net = net;
              sc_env = env;
              sc_t1 = t1;
              sc_seed = Int64.of_int seed;
              sc_params = Array.of_list params;
              sc_state = wrap ck;
            })
        checkpoint
    in
    let trace =
      match engine with
      | Ssa_engine ->
          let { Ssa.Gillespie.trace; n_events; _ } =
            Ssa.Gillespie.run ~env ~seed:(Int64.of_int seed) ~cancel
              ?on_cancel:(capture (fun c -> S.Ssa_ck c) [])
              ~t1 net
          in
          Printf.eprintf "stochastic simulation: %d reaction events\n"
            n_events;
          trace
      | Tau_engine ->
          let { Ssa.Tau_leap.trace; n_leaps; n_exact; _ } =
            Ssa.Tau_leap.run ~env ~seed:(Int64.of_int seed) ~cancel
              ?on_cancel:(capture (fun c -> S.Tau_ck c) [])
              ~t1 net
          in
          Printf.eprintf "tau-leaping: %d leaps, %d exact fallbacks\n"
            n_leaps n_exact;
          trace
      | Hybrid_engine ->
          let { Hybrid.Engine.trace; stats; _ } =
            Hybrid.Engine.run ~env ~seed:(Int64.of_int seed) ~pop_threshold
              ~prop_threshold ~repartition_every ~cancel
              ?on_cancel:
                (capture
                   (fun c -> S.Hybrid_ck c)
                   [
                     ("pop_threshold", pop_threshold);
                     ("prop_threshold", prop_threshold);
                     ( "repartition_every",
                       float_of_int repartition_every );
                   ])
              ~t1 net
          in
          print_hybrid_stats stats;
          trace
      | Ode_engine -> (
          let method_ = method_of_string method_name in
          match checkpoint with
          | None ->
              Ode.Driver.simulate ~method_ ~env ~cancel ~thin:5 ~t1 net
          | Some _ ->
              let params =
                ("thin", 5.)
                ::
                (match method_ with
                | Ode.Driver.Rk4 h -> [ ("h", h) ]
                | _ -> [])
              in
              Ode.Driver.simulate_ck ~method_ ~env ~cancel ~thin:5
                ?on_cancel:(capture (fun c -> S.Ode_ck c) params)
                ~t1 net)
    in
    emit_trace ~source ~t1 ~csv_out ~plot_species ~final_only trace;
    0
    end
  with e -> report_error e)))

let source =
  let doc =
    "A .crn file or a built-in design name. Optional with $(b,--resume): \
     the checkpoint file already carries the network."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"NETWORK" ~doc)

let t1 =
  let doc = "Simulation horizon." in
  Arg.(value & opt float 50. & info [ "t"; "t1" ] ~docv:"TIME" ~doc)

let ratio =
  let doc = "Rate separation k_fast / k_slow (k_slow is fixed at 1)." in
  Arg.(value & opt float 1000. & info [ "ratio" ] ~docv:"R" ~doc)

let method_name =
  let doc = "Integrator: dopri5, rosenbrock, or an RK4 step size." in
  Arg.(value & opt string "rosenbrock" & info [ "m"; "method" ] ~doc)

let csv_out =
  let doc = "Write the trajectory as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let plot_species =
  let doc = "Render an ASCII plot of this species (repeatable)." in
  Arg.(value & opt_all string [] & info [ "p"; "plot" ] ~docv:"SPECIES" ~doc)

let engine_opt =
  let doc =
    "Simulation engine: $(b,ode) (deterministic mass-action integration, \
     the default), $(b,ssa) (exact Gillespie over molecule counts), \
     $(b,tau) (Poisson tau-leaping), or $(b,hybrid) (adaptive \
     partitioned: fast high-population reactions integrated as ODEs, \
     slow ones exact, tau-leaping in between — see --pop-threshold and \
     --prop-threshold)."
  in
  Arg.(
    value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc)

let stochastic =
  let doc =
    "Deprecated alias for --engine ssa (kept for old scripts; --engine \
     wins when both are given)."
  in
  Arg.(value & flag & info [ "stochastic" ] ~doc)

let pop_threshold =
  let doc =
    "Hybrid engine: a reaction may be treated deterministically only \
     while every reactant population is at least $(docv)."
  in
  Arg.(
    value & opt float 1000. & info [ "pop-threshold" ] ~docv:"N" ~doc)

let prop_threshold =
  let doc =
    "Hybrid engine: a reaction may be treated deterministically only \
     while its propensity is at least $(docv) events per time unit."
  in
  Arg.(
    value & opt float 1000. & info [ "prop-threshold" ] ~docv:"A" ~doc)

let repartition_every =
  let doc =
    "Hybrid engine: re-evaluate the fast/slow partition every $(docv) \
     events or substeps."
  in
  Arg.(
    value & opt int 256 & info [ "repartition-every" ] ~docv:"N" ~doc)

let seed =
  let doc = "Random seed for the stochastic simulator." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let runs =
  let doc =
    "With a stochastic engine (ssa, tau, hybrid), simulate $(docv) \
     independent trajectories (streams split off --seed) and report \
     mean +- std of the final state."
  in
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Domains for the ensemble (default: all recommended cores; requests \
     above the core count are clamped with a warning — oversubscribing \
     only slows the run down). Results are identical for every job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let final_only =
  let doc = "Print the final state even when plotting or dumping CSV." in
  Arg.(value & flag & info [ "final" ] ~doc)

let focus =
  let doc =
    "Slice the network to the cone of influence of this species before \
     simulating (repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "focus" ] ~docv:"SPECIES" ~doc)

let sweep_ratios =
  let doc =
    "Deterministic rate-robustness sweep: simulate the network once per \
     fast/slow ratio $(docv) (repeatable) and report the final state at \
     each. Results are identical for every --sweep-jobs value; --csv \
     writes one row per ratio."
  in
  Arg.(value & opt_all float [] & info [ "sweep-ratio" ] ~docv:"R" ~doc)

let sweep_jobs =
  let doc =
    "Domains for the deterministic sweep (default: all recommended cores; \
     requests above the core count are clamped with a warning)."
  in
  Arg.(value & opt (some int) None & info [ "sweep-jobs" ] ~docv:"N" ~doc)

let connect =
  let doc =
    "Delegate the simulation to a running crnserved daemon or crnsgate \
     gateway at $(docv): unix:PATH, a socket path, HOST:PORT for the \
     wire protocol over TCP, or http://HOST:PORT for a gateway's HTTP \
     front door. Output is byte-identical to direct execution; --csv \
     and --plot of a single ode/ssa trajectory stream over the trace \
     op."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let deadline_ms =
  let doc =
    "Give up after $(docv) milliseconds of simulation (exit code 4). With \
     --connect the deadline is enforced by the daemon, and the client also \
     arms a socket-read deadline of $(docv) + 1000 ms so a silent server \
     cannot hang it."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let retries =
  let doc =
    "With --connect, retry up to $(docv) times on a transient transport \
     failure — connect refused, or the connection reset before any \
     response byte arrived — with exponential backoff and jitter. A \
     request whose response has started arriving, or whose read deadline \
     expired, is never re-sent (it may have executed)."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let retry_budget_ms =
  let doc =
    "Total wall-clock budget in milliseconds for the --retries backoff of \
     one operation."
  in
  Arg.(
    value & opt float 2_000. & info [ "retry-budget-ms" ] ~docv:"MS" ~doc)

let validate =
  let doc =
    "Do not simulate: run the exact-arithmetic verification tier \
     (rational conservation-law basis, clock phase non-overlap proof, \
     rate-independence discipline, structural lint) and print the \
     certificate. Exit 0 when the network is certified, 6 when it is \
     rejected. With --connect the daemon's validate op answers and the \
     printed certificate is byte-identical to local execution."
  in
  Arg.(value & flag & info [ "validate" ] ~doc)

let checkpoint =
  let doc =
    "If the run is cancelled by --deadline-ms, write the engine's mid-run \
     state to $(docv) (atomic temp-file-plus-rename) before exiting 4. \
     The file is self-contained: $(b,--resume) $(docv) continues the \
     trajectory to a result bitwise identical to an uninterrupted run. \
     Applies to a single local trajectory of any engine."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume =
  let doc =
    "Continue a simulation from the checkpoint in $(docv) (written by \
     $(b,--checkpoint) or by a daemon's state directory). The network, \
     rate environment, horizon, seed and engine parameters all come from \
     the file; may be combined with $(b,--checkpoint) to re-checkpoint if \
     a new --deadline-ms expires."
  in
  Arg.(
    value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "simulate a chemical reaction network" in
  let info = Cmd.info "crnsim" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ source $ t1 $ ratio $ method_name $ csv_out $ plot_species
      $ engine_opt $ stochastic $ seed $ runs $ jobs $ final_only $ focus
      $ sweep_ratios $ sweep_jobs $ connect $ deadline_ms $ retries
      $ retry_budget_ms $ pop_threshold $ prop_threshold $ repartition_every
      $ validate $ checkpoint $ resume)

let () = exit (Cmd.eval' cmd)
