(** Deterministic pseudo-random numbers (splitmix64).

    A small self-contained generator so stochastic simulations are exactly
    reproducible from a seed, independent of the OCaml stdlib's generator
    evolving between compiler versions. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. Equal seeds give equal streams. *)

val state : t -> int64
(** Current internal state. Together with {!set_state} this makes the
    generator checkpointable: a generator restored onto a saved state
    continues the exact output stream of the original. *)

val set_state : t -> int64 -> unit
(** Overwrite the internal state with one captured by {!state}. *)

val split : t -> t
(** A statistically independent generator derived from the current state;
    advances the parent. *)

val split_seed : t -> int64
(** The seed of the generator that the next {!split} would return;
    advances the parent. [create (split_seed t)] is equivalent to
    [split t]. Used to hand independent streams to APIs that take a seed
    (e.g. one stream per trajectory of a stochastic ensemble). *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_pos : t -> float
(** Uniform in [(0, 1)] — never exactly [0.]; safe as the argument of
    [log] when sampling exponentials. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples from Exp(rate): mean [1/rate]. Raises if
    [rate <= 0]. *)

val pick_weighted : t -> float array -> int
(** Sample an index with probability proportional to its (non-negative)
    weight. Raises [Invalid_argument] if the total weight is not positive. *)
