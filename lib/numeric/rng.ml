type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let state t = t.state
let set_state t s = t.state <- s

let uint64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split_seed t = mix64 (uint64 t)
let split t = create (split_seed t)

(* 53-bit mantissa from the top bits. *)
let float t =
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let rec float_pos t =
  let x = float t in
  if x > 0. then x else float_pos t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24 *)
  let bits = Int64.shift_right_logical (uint64 t) 1 in
  Int64.to_int (Int64.rem bits (Int64.of_int n))

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (float_pos t) /. rate

let pick_weighted t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.pick_weighted: total weight not positive";
  let target = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.
