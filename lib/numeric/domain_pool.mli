(** Deterministic fan-out of indexed tasks over OCaml 5 [Domain]s.

    The shared multicore substrate of the simulation layers: the
    stochastic ensemble runner ([Ssa.Ensemble]) fans trajectories over
    it, and the deterministic sweep engine ([Ode.Sweep]) fans parameter
    points. Tasks are partitioned into contiguous static slices, one per
    worker, and results return in task-index order — so a task function
    whose result depends only on its index produces byte-identical
    output for every job count.

    The task function runs concurrently in several domains: it must not
    mutate shared state. Reading a shared {!Crn.Network.t} from the
    simulators is safe — they never write it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val run : ?jobs:int -> tasks:int -> (int -> 'a) -> 'a array
(** [run ~tasks f] computes [[| f 0; ...; f (tasks - 1) |]] using up to
    [jobs] domains (default {!default_jobs}, clamped to [tasks]). Raises
    [Invalid_argument] if [tasks < 1] or [jobs < 1]. Exceptions raised
    by [f] in a worker domain are re-raised on join. *)
