(** Deterministic fan-out of indexed tasks over OCaml 5 [Domain]s.

    The shared multicore substrate of the simulation layers: the
    stochastic ensemble runner ([Ssa.Ensemble]) fans trajectories over
    it, and the deterministic sweep engine ([Ode.Sweep]) fans parameter
    points. Tasks are partitioned into contiguous static slices, one per
    worker, and results return in task-index order — so a task function
    whose result depends only on its index produces byte-identical
    output for every job count.

    The task function runs concurrently in several domains: it must not
    mutate shared state. Reading a shared {!Crn.Network.t} from the
    simulators is safe — they never write it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val run : ?jobs:int -> tasks:int -> (int -> 'a) -> 'a array
(** [run ~tasks f] computes [[| f 0; ...; f (tasks - 1) |]] using up to
    [jobs] domains (default {!default_jobs}, clamped to [tasks]). Raises
    [Invalid_argument] if [tasks < 1] or [jobs < 1]. Exceptions raised
    by [f] in a worker domain are re-raised on join. *)

(** Persistent worker pool over a bounded job queue.

    Where {!run} is a one-shot fan-out (spawn, compute, join), this is a
    long-lived pool for servers: worker domains block on a shared queue,
    {!Bounded.try_submit} refuses work beyond the queue bound so the
    caller can apply explicit backpressure, and {!Bounded.shutdown}
    drains what was accepted and joins the workers. Jobs are thunks that
    own their error handling — an exception escaping a job is swallowed
    (the worker survives); report failures through the job's own channel
    (the service layer writes an error response). *)
module Bounded : sig
  type t

  val create : ?queue_bound:int -> jobs:int -> unit -> t
  (** Spawn [jobs] worker domains sharing one queue of capacity
      [queue_bound] (default 64). Raises [Invalid_argument] if either is
      [< 1]. *)

  val jobs : t -> int

  val queue_bound : t -> int

  val backlog : t -> int
  (** Jobs queued plus jobs currently executing. *)

  val try_submit : t -> (unit -> unit) -> bool
  (** Enqueue a job; [false] when the queue is at its bound (or the pool
      is shutting down) — the job was {e not} accepted. *)

  val drain : t -> unit
  (** Block until no job is queued or running. *)

  val shutdown : t -> unit
  (** Stop accepting work, let the workers finish everything already
      accepted, and join them. Idempotent-ish: a second call returns
      immediately. *)
end
