(** Deterministic fan-out of indexed tasks over OCaml 5 [Domain]s.

    The shared multicore substrate of the simulation layers: the
    stochastic ensemble runner ([Ssa.Ensemble]) fans trajectories over
    it, the deterministic sweep engine ([Ode.Sweep]) fans parameter
    points, and the simulation service executes requests on it.

    Scheduling is {e chunked and deterministic}: task indices are split
    into fixed chunks handed out by an atomic counter, each chunk's
    results land in its own slot, and the slots are concatenated in
    chunk order — so a task function whose result depends only on its
    index produces byte-identical output for every job count and chunk
    size, while uneven task costs (stiff sweep points, long
    trajectories) are balanced dynamically instead of serializing a
    static slice.

    Worker domains are {e persistent}: fan-outs borrow helpers from a
    long-lived {!Bounded} pool (the process-wide {!shared} one by
    default), so domain spawn cost is paid once per process. The calling
    domain always participates as worker 0 and drains the whole chunk
    queue itself if no helper can be scheduled — a fan-out never
    deadlocks on a saturated pool.

    The task function runs concurrently in several domains: it must not
    mutate shared state. Reading a shared {!Crn.Network.t} from the
    simulators is safe — they never write it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

(** Persistent worker pool over a bounded job queue.

    Worker domains block on a shared queue; {!Bounded.try_submit}
    refuses work beyond the queue bound so the caller can apply explicit
    backpressure, and {!Bounded.shutdown} drains what was accepted and
    joins the workers. The simulation service uses one as its request
    executor and shares the same pool with the batch fan-outs its
    handlers start; {!run} borrows helpers from the process-wide
    {!shared} instance.

    Jobs are thunks that own their error handling. An exception that
    escapes a job anyway is {e recorded} — counted, its message kept,
    and reported to the {!Bounded.set_on_uncaught} hook — rather than
    silently discarded; the worker survives unless the exception is
    fatal ([Out_of_memory], [Stack_overflow]), in which case it is
    re-raised after the accounting (and surfaces on [shutdown]'s join). *)
module Bounded : sig
  type t

  val create : ?queue_bound:int -> jobs:int -> unit -> t
  (** Spawn [jobs] worker domains sharing one queue of capacity
      [queue_bound] (default 64). Raises [Invalid_argument] if either is
      [< 1]. *)

  val jobs : t -> int

  val queue_bound : t -> int

  val backlog : t -> int
  (** Jobs queued plus jobs currently executing. *)

  val stopped : t -> bool
  (** [true] once {!shutdown} has begun; a stopped pool refuses
      submissions. *)

  val uncaught : t -> int * string option
  (** Count of exceptions that escaped jobs since creation, and the last
      one's [Printexc.to_string]. *)

  val set_on_uncaught : t -> (exn -> unit) -> unit
  (** Install a hook called (outside the pool lock, in the worker that
      observed it) for every exception escaping a job — the service layer
      forwards these to its metrics. Exceptions raised by the hook itself
      are ignored. *)

  val try_submit : t -> (unit -> unit) -> bool
  (** Enqueue a job; [false] when the queue is at its bound (or the pool
      is shutting down) — the job was {e not} accepted. *)

  val drain : t -> unit
  (** Block until no job is queued or running. *)

  val shutdown : t -> unit
  (** Stop accepting work, let the workers finish everything already
      accepted, and join them. Idempotent-ish: a second call returns
      immediately. *)
end

val shared : unit -> Bounded.t
(** The process-wide helper pool for batch fan-outs, spawned lazily on
    first use with [default_jobs () - 1] workers (floored at 1; the
    calling domain is the remaining worker). If it has been shut down, a
    fresh one replaces it on the next call. *)

val run :
  ?pool:Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  tasks:int ->
  (int -> 'a) ->
  'a array
(** [run ~tasks f] computes [[| f 0; ...; f (tasks - 1) |]] using up to
    [jobs] domains (default {!default_jobs}) — the calling domain plus
    helpers borrowed from [pool] (default {!shared}). [jobs] is clamped
    to [tasks] and, unless [oversubscribe] is [true], to
    {!default_jobs} — so on a 1-core host every fan-out runs serial
    (and is never slower than serial). [chunk] is the scheduler's chunk
    size in tasks (default: about 4 chunks per worker); output is
    byte-identical for every [jobs] and [chunk]. Raises
    [Invalid_argument] if [tasks < 1], [jobs < 1] or [chunk < 1].
    The first exception raised by [f] is re-raised after the fan-out
    settles. *)

val run_worker :
  ?pool:Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  init_worker:(unit -> 'w) ->
  tasks:int ->
  ('w -> int -> 'a) ->
  'a array
(** Like {!run}, but each participating domain first builds private
    worker state with [init_worker] and every task it executes receives
    that state — the compile-once / per-worker-arena API. Share the
    expensive immutable model by capturing it in the closure; put the
    mutable scratch (state vectors, propensity arrays, integrator
    workspaces) in the worker state, where it is reused across all tasks
    that land on that domain. Determinism contract: [f w i] must return
    the same value regardless of the arena's prior contents — i.e. the
    task must fully reset whatever it reads. An exception from
    [init_worker] fails the whole fan-out. *)
