(* Deterministic fan-out over OCaml 5 domains, shared by the stochastic
   ensemble runner, the deterministic sweep engine, and the simulation
   service.

   Two layers:

   - [Bounded]: a persistent pool of long-lived worker domains pulling
     thunks from a bounded queue. The service uses it directly as its
     request executor; batch fan-outs borrow its workers as helpers so
     domain spawn cost is paid once per process, not once per sweep.
   - [run]/[run_worker]: a chunked deterministic scheduler on top. Task
     indices are split into fixed chunks handed out by an atomic counter;
     whichever domain grabs chunk [c] writes its results into slot [c],
     and the chunks are concatenated in chunk order — so the output is
     byte-identical for every job count and chunk size, while stragglers
     (stiff sweep points, long trajectories) no longer serialize the
     fan-out the way static contiguous slices did.

   The calling domain is always worker 0: helpers are optional
   parallelism, submitted to the persistent pool with [try_submit]. If
   the pool is saturated (or stopping), the caller simply drains the
   chunk queue itself — a fan-out never deadlocks and never waits on a
   helper that was not scheduled. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Persistent variant: long-lived worker domains pulling from a bounded
   queue. This is the service layer's scheduler substrate — submissions
   beyond the bound are refused (the caller turns that into explicit
   backpressure) rather than queued without limit. *)
module Bounded = struct
  type t = {
    queue : (unit -> unit) Queue.t;
    bound : int;
    mutex : Mutex.t;
    nonempty : Condition.t;
    drained : Condition.t;
    mutable running : int; (* jobs currently executing in workers *)
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
    (* uncaught-exception accounting: jobs own their error handling, so
       an exception escaping one is a bug somewhere — count it and keep
       the last message instead of discarding it silently *)
    mutable uncaught : int;
    mutable last_uncaught : string option;
    mutable on_uncaught : (exn -> unit) option;
  }

  (* Out_of_memory and Stack_overflow mean the process is in trouble no
     job-level recovery can fix; swallowing them would leave the pool
     limping along in a corrupted world. They still go through the
     accounting, then take the worker down (re-raised on [shutdown]'s
     join). *)
  let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

  let note_uncaught pool e =
    Mutex.lock pool.mutex;
    pool.uncaught <- pool.uncaught + 1;
    pool.last_uncaught <- Some (Printexc.to_string e);
    let hook = pool.on_uncaught in
    Mutex.unlock pool.mutex;
    match hook with
    | Some f -> ( try f e with _ -> ())
    | None -> ()

  let worker pool () =
    let rec loop () =
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue && not pool.stopping do
        Condition.wait pool.nonempty pool.mutex
      done;
      if Queue.is_empty pool.queue then begin
        (* stopping and nothing left to drain *)
        Mutex.unlock pool.mutex;
        ()
      end
      else begin
        let job = Queue.pop pool.queue in
        pool.running <- pool.running + 1;
        Mutex.unlock pool.mutex;
        (* jobs own their error handling; a leaked exception is recorded
           (counter + last message + hook) and, unless fatal, must not
           take the worker down *)
        let escaped =
          match job () with
          | () -> None
          | exception e ->
              note_uncaught pool e;
              if fatal e then Some e else None
        in
        Mutex.lock pool.mutex;
        pool.running <- pool.running - 1;
        if pool.running = 0 && Queue.is_empty pool.queue then
          Condition.broadcast pool.drained;
        Mutex.unlock pool.mutex;
        match escaped with Some e -> raise e | None -> loop ()
      end
    in
    loop ()

  let create ?(queue_bound = 64) ~jobs () =
    if jobs < 1 then invalid_arg "Domain_pool.Bounded.create: jobs must be >= 1";
    if queue_bound < 1 then
      invalid_arg "Domain_pool.Bounded.create: queue_bound must be >= 1";
    let pool =
      {
        queue = Queue.create ();
        bound = queue_bound;
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        drained = Condition.create ();
        running = 0;
        stopping = false;
        workers = [||];
        uncaught = 0;
        last_uncaught = None;
        on_uncaught = None;
      }
    in
    pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker pool));
    pool

  let jobs pool = Array.length pool.workers

  let queue_bound pool = pool.bound

  let backlog pool =
    Mutex.lock pool.mutex;
    let n = Queue.length pool.queue + pool.running in
    Mutex.unlock pool.mutex;
    n

  let stopped pool =
    Mutex.lock pool.mutex;
    let s = pool.stopping in
    Mutex.unlock pool.mutex;
    s

  let uncaught pool =
    Mutex.lock pool.mutex;
    let n = pool.uncaught and last = pool.last_uncaught in
    Mutex.unlock pool.mutex;
    (n, last)

  let set_on_uncaught pool f =
    Mutex.lock pool.mutex;
    pool.on_uncaught <- Some f;
    Mutex.unlock pool.mutex

  let try_submit pool job =
    Mutex.lock pool.mutex;
    let accepted =
      (not pool.stopping) && Queue.length pool.queue < pool.bound
    in
    if accepted then begin
      Queue.push job pool.queue;
      Condition.signal pool.nonempty
    end;
    Mutex.unlock pool.mutex;
    accepted

  let drain pool =
    Mutex.lock pool.mutex;
    while not (Queue.is_empty pool.queue && pool.running = 0) do
      Condition.wait pool.drained pool.mutex
    done;
    Mutex.unlock pool.mutex

  let shutdown pool =
    Mutex.lock pool.mutex;
    pool.stopping <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
end

(* ------------------------------------------------- process-shared pool *)

(* The default helper pool for batch fan-outs, spawned lazily on the
   first fan-out that actually wants helpers and reused for the rest of
   the process. Its worker count leaves one core for the calling domain
   (the caller is always worker 0 of a fan-out). A shut-down shared pool
   is replaced on next use, so a library consumer that tears it down
   (e.g. a test harness) does not condemn later fan-outs to run serial. *)
let shared_mutex = Mutex.create ()
let shared_pool : Bounded.t option ref = ref None

let shared () =
  Mutex.lock shared_mutex;
  let pool =
    match !shared_pool with
    | Some p when not (Bounded.stopped p) -> p
    | _ ->
        let p = Bounded.create ~jobs:(max 1 (default_jobs () - 1)) () in
        shared_pool := Some p;
        p
  in
  Mutex.unlock shared_mutex;
  pool

(* --------------------------------------- chunked deterministic fan-out *)

let run_worker (type w) ?pool ?jobs ?chunk ?(oversubscribe = false)
    ~(init_worker : unit -> w) ~tasks (f : w -> int -> 'a) : 'a array =
  if tasks < 1 then invalid_arg "Domain_pool.run: tasks must be >= 1";
  let requested =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Domain_pool.run: jobs must be >= 1"
    | None -> default_jobs ()
  in
  (* clamp to the hardware unless explicitly oversubscribing: extra
     domains on a saturated host only time-slice the same cores, so a
     1-core machine always runs serial (and thus never slower than
     serial) *)
  let jobs =
    let cap = if oversubscribe then requested else min requested (default_jobs ()) in
    min (max 1 cap) tasks
  in
  let chunk =
    match chunk with
    | Some c when c >= 1 -> min c tasks
    | Some _ -> invalid_arg "Domain_pool.run: chunk must be >= 1"
    | None ->
        (* ~4 chunks per worker: fine enough that one straggler chunk
           cannot serialize the fan-out, coarse enough that the atomic
           counter is cold *)
        max 1 (tasks / (4 * jobs))
  in
  if jobs = 1 then begin
    let w = init_worker () in
    Array.init tasks (f w)
  end
  else begin
    let n_chunks = (tasks + chunk - 1) / chunk in
    (* per-chunk result arrays, concatenated in chunk order at the end:
       slot [c] always holds [f] of indices [c*chunk .. min tasks ((c+1)*chunk) - 1],
       whichever domain computed it, so output is independent of
       scheduling *)
    let results : 'a array array = Array.make n_chunks [||] in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let mutex = Mutex.create () in
    let all_done = Condition.create () in
    let finished = ref 0 in
    let first_error = ref None in
    let finish_chunk () =
      Mutex.lock mutex;
      incr finished;
      if !finished = n_chunks then Condition.broadcast all_done;
      Mutex.unlock mutex
    in
    let record_error e bt =
      Atomic.set failed true;
      Mutex.lock mutex;
      if !first_error = None then first_error := Some (e, bt);
      Mutex.unlock mutex
    in
    (* grab chunks until the counter runs dry; [compute] is None once
       this worker (or the whole fan-out) cannot make progress, in which
       case remaining grabs are retired unexecuted so the completion
       count still reaches [n_chunks] *)
    let rec grab compute =
      let c = Atomic.fetch_and_add next 1 in
      if c < n_chunks then begin
        (match compute with
        | Some w when not (Atomic.get failed) -> (
            let lo = c * chunk in
            let hi = min tasks (lo + chunk) in
            match Array.init (hi - lo) (fun i -> f w (lo + i)) with
            | r -> results.(c) <- r
            | exception e -> record_error e (Printexc.get_raw_backtrace ()))
        | _ -> ());
        finish_chunk ();
        grab compute
      end
    in
    let work () =
      match init_worker () with
      | w -> grab (Some w)
      | exception e ->
          record_error e (Printexc.get_raw_backtrace ());
          grab None
    in
    (* helpers: up to jobs-1 thunks on the persistent pool; the calling
       domain is worker 0 and always participates, so a refused
       submission (saturated or stopping pool) only costs parallelism *)
    let pool = match pool with Some p -> p | None -> shared () in
    for _ = 2 to jobs do
      ignore (Bounded.try_submit pool work)
    done;
    work ();
    Mutex.lock mutex;
    while !finished < n_chunks do
      Condition.wait all_done mutex
    done;
    Mutex.unlock mutex;
    (match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    if n_chunks = 1 then results.(0)
    else Array.concat (Array.to_list results)
  end

let run ?pool ?jobs ?chunk ?oversubscribe ~tasks f =
  run_worker ?pool ?jobs ?chunk ?oversubscribe
    ~init_worker:(fun () -> ())
    ~tasks
    (fun () i -> f i)
