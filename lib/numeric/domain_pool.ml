(* Fixed fan-out over OCaml 5 domains, shared by the stochastic ensemble
   runner and the deterministic sweep engine.

   Work is partitioned into contiguous static slices, one per worker (a
   hand-rolled fixed pool; sibling tasks of one fan-out have similar
   cost, so dynamic stealing would buy little and cost atomics). Results
   always come back in task-index order, so a deterministic task
   function yields byte-identical output for every job count. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Persistent variant: long-lived worker domains pulling from a bounded
   queue. This is the service layer's scheduler substrate — submissions
   beyond the bound are refused (the caller turns that into explicit
   backpressure) rather than queued without limit. *)
module Bounded = struct
  type t = {
    queue : (unit -> unit) Queue.t;
    bound : int;
    mutex : Mutex.t;
    nonempty : Condition.t;
    drained : Condition.t;
    mutable running : int; (* jobs currently executing in workers *)
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
  }

  let worker pool () =
    let rec loop () =
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue && not pool.stopping do
        Condition.wait pool.nonempty pool.mutex
      done;
      if Queue.is_empty pool.queue then begin
        (* stopping and nothing left to drain *)
        Mutex.unlock pool.mutex;
        ()
      end
      else begin
        let job = Queue.pop pool.queue in
        pool.running <- pool.running + 1;
        Mutex.unlock pool.mutex;
        (* jobs own their error handling; a raising job must not take the
           worker down with it *)
        (try job () with _ -> ());
        Mutex.lock pool.mutex;
        pool.running <- pool.running - 1;
        if pool.running = 0 && Queue.is_empty pool.queue then
          Condition.broadcast pool.drained;
        Mutex.unlock pool.mutex;
        loop ()
      end
    in
    loop ()

  let create ?(queue_bound = 64) ~jobs () =
    if jobs < 1 then invalid_arg "Domain_pool.Bounded.create: jobs must be >= 1";
    if queue_bound < 1 then
      invalid_arg "Domain_pool.Bounded.create: queue_bound must be >= 1";
    let pool =
      {
        queue = Queue.create ();
        bound = queue_bound;
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        drained = Condition.create ();
        running = 0;
        stopping = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker pool));
    pool

  let jobs pool = Array.length pool.workers

  let queue_bound pool = pool.bound

  let backlog pool =
    Mutex.lock pool.mutex;
    let n = Queue.length pool.queue + pool.running in
    Mutex.unlock pool.mutex;
    n

  let try_submit pool job =
    Mutex.lock pool.mutex;
    let accepted =
      (not pool.stopping) && Queue.length pool.queue < pool.bound
    in
    if accepted then begin
      Queue.push job pool.queue;
      Condition.signal pool.nonempty
    end;
    Mutex.unlock pool.mutex;
    accepted

  let drain pool =
    Mutex.lock pool.mutex;
    while not (Queue.is_empty pool.queue && pool.running = 0) do
      Condition.wait pool.drained pool.mutex
    done;
    Mutex.unlock pool.mutex

  let shutdown pool =
    Mutex.lock pool.mutex;
    pool.stopping <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
end

let run ?jobs ~tasks f =
  if tasks < 1 then invalid_arg "Domain_pool.run: tasks must be >= 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> min j tasks
    | Some _ -> invalid_arg "Domain_pool.run: jobs must be >= 1"
    | None -> min (default_jobs ()) tasks
  in
  if jobs = 1 then Array.init tasks f
  else begin
    let base = tasks / jobs and extra = tasks mod jobs in
    let slice w =
      let lo = (w * base) + min w extra in
      let hi = lo + base + if w < extra then 1 else 0 in
      (lo, hi)
    in
    let work (lo, hi) () = Array.init (hi - lo) (fun k -> f (lo + k)) in
    (* workers 1..jobs-1 run in spawned domains; slice 0 runs here so the
       calling domain is not idle *)
    let domains =
      Array.init (jobs - 1) (fun w -> Domain.spawn (work (slice (w + 1))))
    in
    let first = work (slice 0) () in
    let rest = Array.map Domain.join domains in
    Array.concat (first :: Array.to_list rest)
  end
