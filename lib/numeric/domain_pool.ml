(* Fixed fan-out over OCaml 5 domains, shared by the stochastic ensemble
   runner and the deterministic sweep engine.

   Work is partitioned into contiguous static slices, one per worker (a
   hand-rolled fixed pool; sibling tasks of one fan-out have similar
   cost, so dynamic stealing would buy little and cost atomics). Results
   always come back in task-index order, so a deterministic task
   function yields byte-identical output for every job count. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ?jobs ~tasks f =
  if tasks < 1 then invalid_arg "Domain_pool.run: tasks must be >= 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> min j tasks
    | Some _ -> invalid_arg "Domain_pool.run: jobs must be >= 1"
    | None -> min (default_jobs ()) tasks
  in
  if jobs = 1 then Array.init tasks f
  else begin
    let base = tasks / jobs and extra = tasks mod jobs in
    let slice w =
      let lo = (w * base) + min w extra in
      let hi = lo + base + if w < extra then 1 else 0 in
      (lo, hi)
    in
    let work (lo, hi) () = Array.init (hi - lo) (fun k -> f (lo + k)) in
    (* workers 1..jobs-1 run in spawned domains; slice 0 runs here so the
       calling domain is not idle *)
    let domains =
      Array.init (jobs - 1) (fun w -> Domain.spawn (work (slice (w + 1))))
    in
    let first = work (slice 0) () in
    let rest = Array.map Domain.join domains in
    Array.concat (first :: Array.to_list rest)
  end
