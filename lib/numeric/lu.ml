type t = { lu : Mat.t; perm : int array; mutable sign : float }

exception Singular

let workspace n =
  if n < 0 then invalid_arg "Lu.workspace: negative size";
  { lu = Mat.create n n 0.; perm = Array.init n (fun i -> i); sign = 1. }

let refactor t a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.refactor: matrix not square";
  if Array.length t.perm <> n then invalid_arg "Lu.refactor: size mismatch";
  let lu = t.lu in
  for i = 0 to n - 1 do
    Array.blit a.(i) 0 lu.(i) 0 n;
    t.perm.(i) <- i
  done;
  t.sign <- 1.;
  for k = 0 to n - 1 do
    (* partial pivoting: pick the largest magnitude entry in column k *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = t.perm.(k) in
      t.perm.(k) <- t.perm.(!pivot);
      t.perm.(!pivot) <- tp;
      t.sign <- -.t.sign
    end;
    let pv = lu.(k).(k) in
    if Float.abs pv < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let f = lu.(i).(k) /. pv in
      lu.(i).(k) <- f;
      for j = k + 1 to n - 1 do
        lu.(i).(j) <- lu.(i).(j) -. (f *. lu.(k).(j))
      done
    done
  done

let decompose a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.decompose: matrix not square";
  let t = workspace n in
  refactor t a;
  t

let solve_into { lu; perm; _ } b x =
  let n = Array.length perm in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve: dimension mismatch";
  if b == x then invalid_arg "Lu.solve_into: aliased arrays";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* forward substitution: L y = P b *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done

let solve t b =
  let x = Array.make (Array.length t.perm) 0. in
  solve_into t b x;
  x

let solve_mat lu b =
  let bt = Mat.transpose b in
  Mat.transpose (Array.map (solve lu) bt)

let det { lu; sign; perm } =
  let n = Array.length perm in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. lu.(i).(i)
  done;
  !d

let inverse lu =
  let n = Array.length lu.perm in
  solve_mat lu (Mat.identity n)

let solve_system a b = solve (decompose a) b

(* Row-echelon reduction shared by [rank] and [nullspace]. Returns the
   reduced matrix together with the list of pivot columns. *)
let row_echelon eps a =
  let m = Mat.copy a in
  let rows, cols = Mat.dims m in
  let pivots = ref [] in
  let r = ref 0 in
  let col = ref 0 in
  while !r < rows && !col < cols do
    let pivot = ref !r in
    for i = !r + 1 to rows - 1 do
      if Float.abs m.(i).(!col) > Float.abs m.(!pivot).(!col) then pivot := i
    done;
    if Float.abs m.(!pivot).(!col) <= eps then incr col
    else begin
      if !pivot <> !r then begin
        let tmp = m.(!r) in
        m.(!r) <- m.(!pivot);
        m.(!pivot) <- tmp
      end;
      let pv = m.(!r).(!col) in
      for j = 0 to cols - 1 do
        m.(!r).(j) <- m.(!r).(j) /. pv
      done;
      for i = 0 to rows - 1 do
        if i <> !r && Float.abs m.(i).(!col) > 0. then begin
          let f = m.(i).(!col) in
          for j = 0 to cols - 1 do
            m.(i).(j) <- m.(i).(j) -. (f *. m.(!r).(j))
          done
        end
      done;
      pivots := (!r, !col) :: !pivots;
      incr r;
      incr col
    end
  done;
  (m, List.rev !pivots)

let rank ?(eps = 1e-9) a =
  let _, pivots = row_echelon eps a in
  List.length pivots

let nullspace ?(eps = 1e-9) a =
  let _, cols = Mat.dims a in
  let m, pivots = row_echelon eps a in
  let pivot_cols = List.map snd pivots in
  let is_pivot j = List.mem j pivot_cols in
  let free_cols =
    List.filter (fun j -> not (is_pivot j)) (List.init cols (fun j -> j))
  in
  let basis_for free =
    let v = Array.make cols 0. in
    v.(free) <- 1.;
    List.iter (fun (r, c) -> v.(c) <- -.m.(r).(free)) pivots;
    v
  in
  List.map basis_for free_cols
