(** Cooperative cancellation for long-running numeric kernels.

    The simulators ({!Ssa}'s event loops, the adaptive ODE steppers, the
    sweep fan-out) accept a token and poll it periodically; when the
    token reports cancellation they raise {!Cancelled} out of the run.
    Tokens are plain predicates — the caller decides what cancellation
    means (a wall-clock deadline, an operator request, a closed
    connection). A token's predicate may be polled concurrently from
    several domains (the sweep and ensemble engines do), so it must be
    safe to call from any domain; reading an immutable deadline is the
    typical case. *)

type t

exception Cancelled

val never : t
(** The token that never cancels; polling it costs one tag test. *)

val of_fun : (unit -> bool) -> t
(** [of_fun f] cancels once [f ()] returns [true]. [f] should be cheap:
    kernels poll every few hundred iterations. *)

val cancelled : t -> bool

val guard : t -> unit
(** Raise {!Cancelled} if the token reports cancellation. *)
