(** LU decomposition with partial pivoting.

    Used to solve the linear systems of the semi-implicit (Rosenbrock) ODE
    integrator and for conservation-law analysis of reaction networks. *)

type t
(** A factorization [P A = L U] of a square matrix. *)

exception Singular
(** Raised when the matrix is numerically singular (a pivot underflows). *)

val decompose : Mat.t -> t
(** Factor a square matrix. Raises [Singular] or [Invalid_argument] if the
    matrix is not square. The input matrix is not modified. *)

val workspace : int -> t
(** Preallocate an [n] x [n] factorization workspace for {!refactor}, so a
    caller factoring many same-sized matrices (the semi-implicit ODE
    integrator) allocates nothing per factorization. The workspace holds
    the identity factorization until first refactored. *)

val refactor : t -> Mat.t -> unit
(** [refactor t a] copies [a] into [t]'s storage and factors it in place.
    Raises [Singular] (leaving the workspace in an unspecified state that
    a later [refactor] fully overwrites) or [Invalid_argument] on a size
    mismatch. The input matrix is not modified. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b]. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into lu b x] writes the solution of [A x = b] into [x] without
    allocating. [b] is left unmodified; raises [Invalid_argument] if [b]
    and [x] are the same array or sizes mismatch. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve for each column of a right-hand-side matrix. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val inverse : t -> Mat.t

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [decompose]+[solve]. *)

val rank : ?eps:float -> Mat.t -> int
(** Numerical rank by row-echelon reduction with threshold [eps]
    (default [1e-9]), for possibly non-square matrices. *)

val nullspace : ?eps:float -> Mat.t -> Vec.t list
(** Basis of the (right) null space of a possibly non-square matrix, used to
    find conservation laws from a stoichiometry matrix. Each returned vector
    [v] satisfies [A v = 0] up to round-off. *)
