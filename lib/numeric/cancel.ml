(* Cooperative cancellation tokens.

   A token is just a cheap predicate the long-running numeric kernels
   poll between iterations; [never] is a constant constructor so the
   common no-cancellation case costs one tag test per poll. Deadline
   semantics live with the caller (the service layer builds tokens over
   wall-clock checks) — this module deliberately knows nothing about
   clocks so the numeric library stays dependency-free. *)

type t = Never | Check of (unit -> bool)

exception Cancelled

let never = Never

let of_fun f = Check f

let cancelled = function Never -> false | Check f -> f ()

let guard t = match t with Never -> () | Check f -> if f () then raise Cancelled
