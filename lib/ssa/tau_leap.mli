(** Explicit tau-leaping: approximate stochastic simulation that fires many
    reactions per step.

    The direct method simulates every reaction event; busy networks (the
    clock's feedback equilibrium churns thousands of events per time unit)
    make that expensive. Tau-leaping picks a step [tau] small enough that
    no propensity changes by more than a fraction [epsilon] (Cao, Gillespie
    & Petzold's species-based bound), samples each reaction's firing count
    from Poisson(a_j tau), and applies them in bulk — falling back to exact
    single steps when [tau] would be smaller than a few direct-method event
    times, and rejecting leaps that would drive any count negative. *)

type result = {
  trace : Ode.Trace.t;  (** states sampled every [sample_dt] *)
  final : float array;
  n_leaps : int;  (** bulk steps taken *)
  n_exact : int;  (** direct-method fallback events *)
}

type error =
  | Max_steps_exceeded of { max_steps : int; t : float }
      (** the step budget ran out at simulated time [t] *)

exception Error of error

val error_to_string : error -> string

type model
(** The immutable compilation product of one network under one rate
    environment: compiled reactions plus the highest-reactant-order
    table the tau bound uses. Runs never mutate it, so one model may be
    shared by concurrent runs on several domains. *)

val compile_model : Crn.Rates.env -> Crn.Network.t -> model

type arena
(** A per-worker arena: one model plus the stepper's reusable mutable
    scratch (state vector, propensities, tau-selection moments, the
    leap-rollback snapshot). Every buffer is rewritten before it is
    read, so a reused arena produces bitwise the same trajectory as a
    fresh one. Not thread-safe — give each domain its own (see
    {!Ensemble.map_with}). *)

val make_arena : model -> arena

type checkpoint = {
  ck_counts : int array;
  ck_t : float;
  ck_next_sample : float;
  ck_n_leaps : int;
  ck_n_exact : int;
  ck_steps : int;
  ck_rng : int64;
  ck_trace : Ode.Trace.t;
}
(** Full mid-run state, captured at the top-of-step cancellation guard.
    Resuming with it (same network and parameters) continues to a
    trajectory bitwise identical to an uninterrupted run: the stepper
    keeps no persistent float scratch across steps, so counts, clocks,
    counters and the RNG stream are the whole state. *)

val run_result :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?epsilon:float ->
  ?max_steps:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  (result, error) Stdlib.result
(** Simulate from 0 to [t1]. Defaults: [seed = 1L], [sample_dt = t1/500],
    [epsilon = 0.03], [max_steps = 10_000_000]. [model] supplies a
    pre-compiled model (from {!compile_model} on the same [env] and
    [net]); [arena] additionally reuses the run's mutable scratch and
    takes precedence over [model] — [Invalid_argument] if the network's
    species count disagrees with the arena's model. [cancel] (default
    {!Numeric.Cancel.never}) is polled once per outer step and aborts
    the run with {!Numeric.Cancel.Cancelled}. [resume] restores a
    {!checkpoint} instead of starting fresh; [on_cancel] receives the
    loop-top checkpoint when [cancel] aborts the run. Returns [Error]
    instead of raising when the step budget is exhausted. *)

val run :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?epsilon:float ->
  ?max_steps:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  result
(** Like {!run_result} but raises {!Error} on an exhausted step budget. *)

val mean_final :
  ?env:Crn.Rates.env ->
  ?runs:int ->
  ?jobs:int ->
  ?seed:int64 ->
  t1:float ->
  Crn.Network.t ->
  string ->
  float * float
(** Tau-leaping counterpart of {!Gillespie.mean_final}: [runs]
    trajectories with split per-trajectory streams, fanned across [jobs]
    domains via {!Ensemble.map_with} — the model is compiled once and
    shared, each worker reuses one {!arena}; returns mean and sample
    standard deviation of the species' final count. *)

val poisson : Numeric.Rng.t -> float -> int
(** Sample Poisson(mean): inversion for small means, normal approximation
    (rounded, clamped at 0) for means above 30. Exposed for testing.
    Raises [Invalid_argument] on a negative mean. *)
