type result = {
  trace : Ode.Trace.t;
  final : float array;
  n_leaps : int;
  n_exact : int;
}

type error = Max_steps_exceeded of { max_steps : int; t : float }

exception Error of error

let error_to_string = function
  | Max_steps_exceeded { max_steps; t } ->
      Printf.sprintf "Tau_leap: max step count %d exceeded at t = %g"
        max_steps t

let poisson rng mean =
  if mean < 0. then invalid_arg "Tau_leap.poisson: negative mean";
  if mean = 0. then 0
  else if mean < 30. then begin
    (* Knuth inversion *)
    let limit = exp (-.mean) in
    let rec go k p =
      let p = p *. Numeric.Rng.float_pos rng in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.
  end
  else begin
    (* normal approximation with continuity correction *)
    let u1 = Numeric.Rng.float_pos rng and u2 = Numeric.Rng.float_pos rng in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (mean +. (sqrt mean *. z))))
  end

(* The immutable per-network compilation product: compiled reactions
   plus the highest-reactant-order table the tau bound needs. Shared
   read-only across domains; all mutable run scratch lives in [arena]. *)
type model = {
  reactions : Compiled.reaction array;
  g : int array;
  n_species : int;
}

let compile_model env net =
  let reactions = Compiled.compile env net in
  let n_species = Crn.Network.n_species net in
  { reactions; g = Compiled.reactant_order_per_species n_species reactions;
    n_species }

(* Per-worker scratch: the state vector plus every hot-loop buffer the
   stepper needs (propensities, tau-selection moments, the leap-rollback
   snapshot). Each run fully rewrites all of them before reading, so a
   reused arena yields bitwise the same trajectory as a fresh one. *)
type arena = {
  a_model : model;
  a_counts : int array;
  a_props : float array;
  a_mu : float array;
  a_sigma2 : float array;
  a_saved : int array;
}

let make_arena model =
  let n = model.n_species and m = Array.length model.reactions in
  {
    a_model = model;
    a_counts = Array.make n 0;
    a_props = Array.make m 0.;
    a_mu = Array.make n 0.;
    a_sigma2 = Array.make n 0.;
    a_saved = Array.make n 0;
  }

(* Cao/Gillespie/Petzold species-based tau selection; [mu]/[sigma2] are
   caller-owned buffers zeroed here (same arithmetic as fresh arrays, so
   trajectories are bitwise-unchanged by buffer reuse) *)
let select_tau ~epsilon reactions props g counts ~mu ~sigma2 =
  let n = Array.length counts in
  Array.fill mu 0 n 0.;
  Array.fill sigma2 0 n 0.;
  Array.iteri
    (fun j r ->
      let a = props.(j) in
      if a > 0. then
        for i = 0 to Array.length r.Compiled.delta_species - 1 do
          let s = r.Compiled.delta_species.(i) in
          let v = float_of_int r.Compiled.delta.(i) in
          mu.(s) <- mu.(s) +. (v *. a);
          sigma2.(s) <- sigma2.(s) +. (v *. v *. a)
        done)
    reactions;
  let tau = ref infinity in
  for s = 0 to n - 1 do
    if mu.(s) <> 0. || sigma2.(s) <> 0. then begin
      let bound =
        Float.max (epsilon *. float_of_int counts.(s) /. float_of_int g.(s)) 1.
      in
      if mu.(s) <> 0. then tau := Float.min !tau (bound /. Float.abs mu.(s));
      if sigma2.(s) <> 0. then tau := Float.min !tau (bound *. bound /. sigma2.(s))
    end
  done;
  !tau

(* Loop-top mid-run state. Captured at the cancellation guard, which
   runs after [incr steps] but before any mutation or RNG draw of the
   step — so [ck_steps] is restored as [ck_steps - 1] and the loop-top
   increment replays it. The propensity/moment/rollback buffers are all
   fully rewritten before being read each step and need no capture. *)
type checkpoint = {
  ck_counts : int array;
  ck_t : float;
  ck_next_sample : float;
  ck_n_leaps : int;
  ck_n_exact : int;
  ck_steps : int;
  ck_rng : int64;
  ck_trace : Ode.Trace.t;
}

let copy_trace tr =
  let fresh = Ode.Trace.create ~names:(Ode.Trace.names tr) in
  Array.iteri
    (fun i t -> Ode.Trace.record fresh t (Ode.Trace.state_at_index tr i))
    (Ode.Trace.times tr);
  fresh

let run_result ?(env = Crn.Rates.default_env) ?(seed = 1L) ?sample_dt
    ?(epsilon = 0.03) ?(max_steps = 10_000_000) ?model ?arena
    ?(cancel = Numeric.Cancel.never) ?resume ?on_cancel ~t1 net =
  if t1 <= 0. then invalid_arg "Tau_leap.run: t1 must be positive";
  let sample_dt =
    match sample_dt with
    | Some dt when dt > 0. -> dt
    | Some _ -> invalid_arg "Tau_leap.run: sample_dt must be positive"
    | None -> t1 /. 500.
  in
  let rng = Numeric.Rng.create seed in
  let model =
    match (arena, model) with
    | Some a, _ -> a.a_model
    | None, Some m -> m
    | None, None -> compile_model env net
  in
  let init = Crn.Network.initial_state net in
  if Array.length init <> model.n_species then
    invalid_arg "Tau_leap.run: network does not match the compiled model";
  let reactions = model.reactions and g = model.g and n = model.n_species in
  (* with an arena, refill the state vector in place; every other buffer
     is rewritten before it is read, so no previous run can leak in *)
  let counts =
    match arena with
    | Some a ->
        let c = a.a_counts in
        for i = 0 to Array.length c - 1 do
          c.(i) <- int_of_float (Float.round init.(i))
        done;
        c
    | None -> Array.map (fun x -> int_of_float (Float.round x)) init
  in
  let trace =
    match resume with
    | Some ck -> copy_trace ck.ck_trace
    | None -> Ode.Trace.create ~names:(Crn.Network.species_names net)
  in
  let snapshot () = Array.map float_of_int counts in
  let m = Array.length reactions in
  let props, mu, sigma2, saved =
    match arena with
    | Some a -> (a.a_props, a.a_mu, a.a_sigma2, a.a_saved)
    | None ->
        (Array.make m 0., Array.make n 0., Array.make n 0., Array.make n 0)
  in
  let t = ref 0. in
  let next_sample = ref 0. in
  let n_leaps = ref 0 and n_exact = ref 0 and steps = ref 0 in
  let failure = ref None in
  let record_due () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  (match resume with
  | None -> record_due ()
  | Some ck ->
      if Array.length ck.ck_counts <> n then
        invalid_arg "Tau_leap.run: checkpoint does not match the network";
      Array.blit ck.ck_counts 0 counts 0 n;
      t := ck.ck_t;
      next_sample := ck.ck_next_sample;
      n_leaps := ck.ck_n_leaps;
      n_exact := ck.ck_n_exact;
      (* the loop-top [incr steps] replays the step the capture aborted *)
      steps := ck.ck_steps - 1;
      Numeric.Rng.set_state rng ck.ck_rng);
  let capture () =
    {
      ck_counts = Array.copy counts;
      ck_t = !t;
      ck_next_sample = !next_sample;
      ck_n_leaps = !n_leaps;
      ck_n_exact = !n_exact;
      ck_steps = !steps;
      ck_rng = Numeric.Rng.state rng;
      ck_trace = trace;
    }
  in
  (try
     while !t < t1 do
       incr steps;
       if !steps >= max_steps then begin
         failure := Some (Max_steps_exceeded { max_steps; t = !t });
         raise Exit
       end;
       Numeric.Cancel.guard cancel;
       Array.iteri (fun j r -> props.(j) <- Compiled.propensity r counts) reactions;
       let total = Array.fold_left ( +. ) 0. props in
       if total <= 0. then begin
         t := t1;
         record_due ();
         raise Exit
       end;
       let tau = select_tau ~epsilon reactions props g counts ~mu ~sigma2 in
       if tau < 10. /. total then begin
         (* leaping not worthwhile here: run a batch of exact
            (direct-method) events before re-evaluating tau, so the
            tau-selection overhead is amortized on stiff stretches *)
         let batch = ref 50 in
         let continue = ref true in
         while !continue && !batch > 0 && !t < t1 do
           Array.iteri
             (fun j r -> props.(j) <- Compiled.propensity r counts)
             reactions;
           let total = Array.fold_left ( +. ) 0. props in
           if total <= 0. then continue := false
           else begin
             let dt = Numeric.Rng.exponential rng total in
             t := Float.min t1 (!t +. dt);
             record_due ();
             if !t < t1 then begin
               let j = Numeric.Rng.pick_weighted rng props in
               Compiled.apply reactions.(j) counts 1;
               incr n_exact
             end
           end;
           decr batch
         done
       end
       else begin
         (* try a leap, halving tau until no count goes negative *)
         let rec attempt tau tries =
           if tries = 0 then begin
             (* degenerate: fall back to one exact event *)
             let dt = Numeric.Rng.exponential rng total in
             t := Float.min t1 (!t +. dt);
             record_due ();
             if !t < t1 then begin
               let j = Numeric.Rng.pick_weighted rng props in
               Compiled.apply reactions.(j) counts 1;
               incr n_exact
             end
           end
           else begin
             let tau = Float.min tau (t1 -. !t) in
             let fires = Array.map (fun a -> poisson rng (a *. tau)) props in
             Array.blit counts 0 saved 0 n;
             Array.iteri
               (fun j k -> if k > 0 then Compiled.apply reactions.(j) counts k)
               fires;
             if Array.exists (fun c -> c < 0) counts then begin
               Array.blit saved 0 counts 0 n;
               attempt (tau /. 2.) (tries - 1)
             end
             else begin
               t := !t +. tau;
               record_due ();
               incr n_leaps
             end
           end
         in
         attempt tau 8
       end
     done
   with
  | Exit -> ()
  | Numeric.Cancel.Cancelled ->
      (match on_cancel with Some f -> f (capture ()) | None -> ());
      raise Numeric.Cancel.Cancelled);
  match !failure with
  | Some err -> Stdlib.Error err
  | None ->
      Ok { trace; final = snapshot (); n_leaps = !n_leaps; n_exact = !n_exact }

let run ?env ?seed ?sample_dt ?epsilon ?max_steps ?model ?arena ?cancel
    ?resume ?on_cancel ~t1 net =
  match
    run_result ?env ?seed ?sample_dt ?epsilon ?max_steps ?model ?arena ?cancel
      ?resume ?on_cancel ~t1 net
  with
  | Ok r -> r
  | Stdlib.Error err -> raise (Error err)

let mean_final ?(env = Crn.Rates.default_env) ?(runs = 20) ?jobs ?(seed = 42L)
    ~t1 net species =
  if runs < 1 then invalid_arg "Tau_leap.mean_final: runs must be >= 1";
  let idx =
    match Crn.Network.find_species net species with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Tau_leap.mean_final: unknown species %S" species)
  in
  (* compile once, share the immutable model; one reusable arena per
     worker domain *)
  let model = compile_model env net in
  let xs =
    Ensemble.map_with ?jobs ~seed
      ~init_worker:(fun () -> make_arena model)
      ~runs
      (fun arena _ s ->
        let { final; _ } = run ~seed:s ~arena ~t1 net in
        final.(idx))
  in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
