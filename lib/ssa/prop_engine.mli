(** Incremental-propensity engine shared by the exact-SSA loops.

    One engine holds the from-scratch-correct propensity table of a
    compiled network plus the grouped partial sums and compensated total
    that make event selection O(sqrt R): {!Gillespie} runs its whole
    event loop on it, and the hybrid engine ({!Hybrid.Engine}) reuses it
    verbatim whenever its dynamic partition leaves every reaction in the
    exact-stochastic subset — which is what makes the hybrid trajectory
    {e bitwise identical} to pure Gillespie on networks that never cross
    the population threshold.

    The record is exposed transparently because the simulators' hot
    loops read [since_refresh] and the scratch arrays directly; treat it
    as owned by this module everywhere else. Invariants:

    - [props.(i)] always equals the from-scratch propensity of reaction
      [i] (affected entries are recomputed exactly after each firing,
      never patched incrementally);
    - [acc.(0)] is the running total maintained by Kahan-compensated
      accumulation of exact deltas, [acc.(1)] the compensation term;
      both are rebuilt from scratch by {!refresh};
    - [group_sum.(g)] is the partial sum of group [g]'s propensities,
      enabling the two-level (group, then in-group) selection search. *)

type t = {
  reactions : Compiled.reaction array;
  deps : Dep_graph.t;
  props : float array;
  group_sum : float array;
  group_size : int;
  n_groups : int;
  acc : float array;  (** [acc.(0)] total, [acc.(1)] Kahan compensation *)
  mutable since_refresh : int;  (** incremental updates since last rebuild *)
}

type state = {
  s_props : float array;
  s_group_sum : float array;
  s_acc : float array;
  s_since_refresh : int;
}
(** A value snapshot of the engine's mutable scratch, for
    checkpoint/resume. Restoring a captured state onto an engine built
    from the same compiled network makes subsequent selections bitwise
    identical to the original run — including the Kahan compensation
    term and the refresh countdown, both of which affect arithmetic. *)

val capture : t -> state
(** Copy the mutable scratch (propensities, group sums, compensated
    total, [since_refresh]) into an immutable snapshot. *)

val restore : t -> state -> unit
(** Overwrite the engine's scratch with a captured snapshot. Raises
    [Invalid_argument] when the shapes disagree (state from a different
    network). *)

val make : Compiled.reaction array -> Dep_graph.t -> t
(** Engine over a compiled reaction set and its dependency graph. All
    scratch starts zeroed; call {!refresh} before the first selection. *)

val total : t -> float
(** The compensated running total of all propensities. *)

val refresh : t -> int array -> unit
(** Full rebuild from the state vector: every propensity, the group
    partial sums, the total; resets [since_refresh]. *)

val update : t -> int array -> int -> unit
(** [update e counts j]: after firing reaction [j] once, recompute
    exactly the propensities in [j]'s affected set and fold their deltas
    into the group sums and the compensated total. *)

val select : t -> int array -> float -> int
(** [select e counts u] picks the reaction at cumulative weight
    [u * total e] by the two-level search ([u] uniform in [0,1)). On a
    float-drift miss it rebuilds once and re-searches with the same
    draw (no extra RNG consumption), then falls back to the last
    positive propensity; [-1] iff no reaction can fire. *)
