(** Deterministic multicore ensemble runner.

    Stochastic validation needs many independent trajectories of the same
    network; they are embarrassingly parallel. This module fans them over
    the shared {!Numeric.Domain_pool} with a deterministic
    seed→trajectory assignment: trajectory [i] always gets the [i]-th
    stream split off the root generator ({!Numeric.Rng.split_seed}), and
    results come back in trajectory order, so the output is
    byte-identical regardless of the job count and chunk size.

    The mapped function runs concurrently in several domains: it must not
    mutate shared state. Simulating a shared {!Crn.Network.t} or a shared
    compiled model is safe — the simulators only read them; per-run
    mutable scratch belongs in the {!map_with} worker state. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val seeds : seed:int64 -> runs:int -> int64 array
(** The per-trajectory seed streams split off [seed]; exposed so callers
    can reproduce a single trajectory of an ensemble in isolation. *)

val map :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?seed:int64 ->
  runs:int ->
  (int -> int64 -> 'a) ->
  'a array
(** [map ~runs f] computes [|f 0 s0; f 1 s1; ...|] where [si] are the
    split streams of [seed] (default [42L]), using up to [jobs] domains
    (default {!default_jobs}; clamped to [runs] and — unless
    [oversubscribe] — to the hardware, see {!Numeric.Domain_pool.run}).
    Helpers are borrowed from [pool] (default the process-wide shared
    pool); [chunk] sets the deterministic scheduler's chunk size. Raises
    [Invalid_argument] if [runs < 1] or [jobs < 1]. Exceptions raised by
    [f] in a worker domain are re-raised. *)

val map_with :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?seed:int64 ->
  init_worker:(unit -> 'w) ->
  runs:int ->
  ('w -> int -> int64 -> 'a) ->
  'a array
(** Like {!map}, but each participating domain first builds private
    worker state with [init_worker] — e.g. a {!Gillespie.make_arena} over
    a model compiled once by the caller — and every trajectory it runs
    receives that state. [f w i si] must return the same value whatever
    the arena's prior contents (the simulators reset their arenas at the
    start of every run), preserving the byte-identical-output contract. *)

val mean_std :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?seed:int64 ->
  runs:int ->
  (int -> int64 -> float) ->
  float * float
(** Mean and sample standard deviation of {!map}'s results. *)
