(** Deterministic multicore ensemble runner.

    Stochastic validation needs many independent trajectories of the same
    network; they are embarrassingly parallel. This module fans them over
    the shared {!Numeric.Domain_pool} with a deterministic
    seed→trajectory assignment: trajectory [i] always gets the [i]-th
    stream split off the root generator ({!Numeric.Rng.split_seed}), and
    results come back in trajectory order, so the output is
    byte-identical regardless of the job count.

    The mapped function runs concurrently in several domains: it must not
    mutate shared state. Simulating a shared {!Crn.Network.t} is safe —
    the simulators only read it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val seeds : seed:int64 -> runs:int -> int64 array
(** The per-trajectory seed streams split off [seed]; exposed so callers
    can reproduce a single trajectory of an ensemble in isolation. *)

val map : ?jobs:int -> ?seed:int64 -> runs:int -> (int -> int64 -> 'a) -> 'a array
(** [map ~runs f] computes [|f 0 s0; f 1 s1; ...|] where [si] are the
    split streams of [seed] (default [42L]), using up to [jobs] domains
    (default {!default_jobs}, clamped to [runs]). Raises
    [Invalid_argument] if [runs < 1] or [jobs < 1]. Exceptions raised by
    [f] in a worker domain are re-raised on join. *)

val mean_std :
  ?jobs:int -> ?seed:int64 -> runs:int -> (int -> int64 -> float) -> float * float
(** Mean and sample standard deviation of [map]'s results. *)
