(* Shared compiled-reaction representation for the stochastic simulators:
   flat arrays of reactant/update data plus combinatorial propensities. *)

type reaction = {
  k : float;
  reactant_species : int array;
  reactant_coeff : int array;
  delta_species : int array;
  delta : int array;
}

let compile env net =
  let compile_reaction r =
    let reactants = Array.of_list r.Crn.Reaction.reactants in
    let net_list = Crn.Reaction.net_stoich r in
    {
      k = Crn.Rates.value env r.Crn.Reaction.rate;
      reactant_species = Array.map fst reactants;
      reactant_coeff = Array.map snd reactants;
      delta_species = Array.of_list (List.map fst net_list);
      delta = Array.of_list (List.map snd net_list);
    }
  in
  Array.map compile_reaction (Crn.Network.reactions net)

(* combinatorial propensity: a = k * prod_i binom(n_i, c_i).

   This is the single hottest function of the stochastic simulators (called
   |deps(j)| times per SSA event), so it is branch- and bounds-check-lean:
   no exception for the early-zero case, and unsafe array reads justified
   by the [compile] invariant that every stored species index was validated
   by [Crn.Network.add_reaction]. *)
let propensity r (counts : int array) =
  let ns = Array.length r.reactant_species in
  let acc = ref r.k in
  let i = ref 0 in
  while !acc <> 0. && !i < ns do
    let n = Array.unsafe_get counts (Array.unsafe_get r.reactant_species !i) in
    let c = Array.unsafe_get r.reactant_coeff !i in
    if n < c then acc := 0.
    else begin
      let b =
        match c with
        | 1 -> float_of_int n
        | 2 -> float_of_int n *. float_of_int (n - 1) /. 2.
        | 3 ->
            float_of_int n *. float_of_int (n - 1) *. float_of_int (n - 2)
            /. 6.
        | _ ->
            let rec fall acc j =
              if j = c then acc else fall (acc *. float_of_int (n - j)) (j + 1)
            in
            let rec fact acc j =
              if j <= 1 then acc else fact (acc *. float_of_int j) (j - 1)
            in
            fall 1. 0 /. fact 1. c
      in
      acc := !acc *. b
    end;
    incr i
  done;
  !acc

(* combinatorial propensity over a real-valued state vector: the same
   falling-factorial form as [propensity], evaluated at (possibly
   fractional) populations. The hybrid engine keeps its state as floats
   while a fast partition is ODE-integrated; using n(n-1)/2-style factors
   here (rather than mass-action n^2/…) keeps the slow partition's event
   statistics consistent with the exact simulator it hands back to. The
   integer guard [n < c] is mirrored exactly: a pool below the required
   molecule count — including the fractional residue the ODE leaves when
   it drains a continuous species below one — has {e zero} propensity,
   so the slow channel never proposes firings that cannot happen. On an
   integral state vector this function equals [propensity] bitwise. *)
let propensity_f r (x : float array) =
  let ns = Array.length r.reactant_species in
  let acc = ref r.k in
  let i = ref 0 in
  while !acc <> 0. && !i < ns do
    let n = Array.unsafe_get x (Array.unsafe_get r.reactant_species !i) in
    let c = Array.unsafe_get r.reactant_coeff !i in
    if n < float_of_int c then acc := 0.
    else begin
      let b =
        match c with
        | 1 -> n
        | 2 -> n *. (n -. 1.) /. 2.
        | 3 -> n *. (n -. 1.) *. (n -. 2.) /. 6.
        | _ ->
            let rec fall acc j =
              if j = c then acc
              else fall (acc *. (n -. float_of_int j)) (j + 1)
            in
            let rec fact acc j =
              if j <= 1 then acc else fact (acc *. float_of_int j) (j - 1)
            in
            fall 1. 0 /. fact 1. c
      in
      acc := !acc *. b
    end;
    incr i
  done;
  !acc

let apply r (counts : int array) times =
  for i = 0 to Array.length r.delta_species - 1 do
    let s = Array.unsafe_get r.delta_species i in
    Array.unsafe_set counts s
      (Array.unsafe_get counts s + (times * Array.unsafe_get r.delta i))
  done

(* net-stoichiometry update on a real-valued state vector (hybrid engine:
   discrete slow firings applied onto the ODE-integrated float state) *)
let apply_f r (x : float array) times =
  let times = float_of_int times in
  for i = 0 to Array.length r.delta_species - 1 do
    let s = Array.unsafe_get r.delta_species i in
    Array.unsafe_set x s
      (Array.unsafe_get x s +. (times *. float_of_int (Array.unsafe_get r.delta i)))
  done

(* highest reactant molecularity each species participates in (Cao's g_i,
   capped at 3); 1 for species that are never reactants *)
let reactant_order_per_species n reactions =
  let g = Array.make n 1 in
  Array.iter
    (fun r ->
      let order =
        Array.fold_left ( + ) 0 r.reactant_coeff
      in
      Array.iter
        (fun s -> g.(s) <- max g.(s) (min order 3))
        r.reactant_species)
    reactions;
  g
