(* Gillespie direct method on the shared incremental-propensity engine
   (Prop_engine): after each event only the dependency graph's affected
   propensities are recomputed, the total is carried by compensated
   accumulation with a periodic full rebuild, and selection is the
   two-level grouped search. The engine lives in its own module so the
   hybrid simulator's exact-stochastic mode can run the identical
   arithmetic (bitwise-equal trajectories at a fixed seed). *)

type result = { trace : Ode.Trace.t; final : float array; n_events : int }

type error = Max_events_exceeded of { max_events : int; t : float }

exception Error of error

let error_to_string = function
  | Max_events_exceeded { max_events; t } ->
      Printf.sprintf "Gillespie: max event count %d exceeded at t = %g"
        max_events t

let compile = Compiled.compile

(* A model is the immutable per-network compilation product — the
   compiled reactions and their dependency graph. Runs only read it, so
   one model may be shared by concurrent runs on several domains (the
   service layer's compiled-model cache does exactly that); all mutable
   run state lives in the per-run engine. *)
type model = {
  reactions : Compiled.reaction array;
  deps : Dep_graph.t;
  n_species : int;
}

let compile_model env net =
  let reactions = compile env net in
  let n_species = Crn.Network.n_species net in
  { reactions; deps = Dep_graph.build reactions ~n_species; n_species }

let model_parts m = (m.reactions, m.deps)

let model_of_parts ~n_species reactions deps =
  if Dep_graph.n_reactions deps <> Array.length reactions then
    invalid_arg "Gillespie.model_of_parts: graph / reaction count mismatch";
  { reactions; deps; n_species }

let model_n_species m = m.n_species

let make_engine (model : model) = Prop_engine.make model.reactions model.deps
let total = Prop_engine.total
let refresh = Prop_engine.refresh
let update = Prop_engine.update
let select = Prop_engine.select

(* A worker arena bundles the model with the per-run mutable scratch —
   the integer state vector and the incremental-propensity engine.
   [run_result ?arena] refills the counts from the network's initial
   state and [refresh]es the engine before the event loop touches either,
   so a reused arena yields bitwise the same trajectory as a fresh one:
   the pattern for ensemble fan-outs is compile the model once, give
   each domain one arena ([Ensemble.map_with]), and run every trajectory
   that lands on that domain through it. *)
type arena = { a_model : model; a_counts : int array; a_engine : Prop_engine.t }

let make_arena model =
  {
    a_model = model;
    a_counts = Array.make model.n_species 0;
    a_engine = make_engine model;
  }

(* --------------------------------------------------------------- runs *)

(* Full mid-run state, captured at the top of the event loop. The
   cancellation guard runs before any per-iteration mutation or RNG
   draw, so loop-top state is exactly the state an uninterrupted run
   would have had at the same event count — restoring it and re-entering
   the loop continues the trajectory bitwise. *)
type checkpoint = {
  ck_counts : int array;
  ck_t : float;
  ck_next_sample : float;
  ck_n_events : int;
  ck_rng : int64;
  ck_engine : Prop_engine.state;
  ck_trace : Ode.Trace.t;
}

(* replay a trace into fresh storage so resuming cannot alias (and
   mutate) the checkpoint's copy *)
let copy_trace tr =
  let fresh = Ode.Trace.create ~names:(Ode.Trace.names tr) in
  let times = Ode.Trace.times tr in
  Array.iteri
    (fun i t -> Ode.Trace.record fresh t (Ode.Trace.state_at_index tr i))
    times;
  fresh

let run_result ?(env = Crn.Rates.default_env) ?(seed = 1L) ?sample_dt
    ?(max_events = 50_000_000) ?(refresh_every = 4096) ?model ?arena
    ?(cancel = Numeric.Cancel.never) ?resume ?on_cancel ~t1 net =
  if t1 <= 0. then invalid_arg "Gillespie.run: t1 must be positive";
  if refresh_every < 1 then
    invalid_arg "Gillespie.run: refresh_every must be >= 1";
  let sample_dt =
    match sample_dt with
    | Some dt when dt > 0. -> dt
    | Some _ -> invalid_arg "Gillespie.run: sample_dt must be positive"
    | None -> t1 /. 500.
  in
  let rng = Numeric.Rng.create seed in
  let model =
    match (arena, model) with
    | Some a, _ -> a.a_model
    | None, Some m -> m
    | None, None -> compile_model env net
  in
  let init = Crn.Network.initial_state net in
  if Array.length init <> model.n_species then
    invalid_arg "Gillespie.run: network does not match the compiled model";
  let reactions = model.reactions in
  (* with an arena, refill its state vector in place — the engine is
     fully rebuilt by [refresh] below, so nothing from a previous run
     can leak into this trajectory *)
  let counts =
    match arena with
    | Some a ->
        let c = a.a_counts in
        for i = 0 to Array.length c - 1 do
          c.(i) <- int_of_float (Float.round init.(i))
        done;
        c
    | None -> Array.map (fun x -> int_of_float (Float.round x)) init
  in
  let trace =
    match resume with
    | Some ck -> copy_trace ck.ck_trace
    | None -> Ode.Trace.create ~names:(Crn.Network.species_names net)
  in
  let snapshot () = Array.map float_of_int counts in
  let e =
    match arena with Some a -> a.a_engine | None -> make_engine model
  in
  let t = ref 0. in
  let next_sample = ref 0. in
  let n_events = ref 0 in
  let failure = ref None in
  let record_due_samples () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  (* a fresh run records t=0 samples and rebuilds the engine; a resumed
     run restores every piece of loop-top state instead — both paths
     enter the loop in a state an uninterrupted run has actually been
     in, which is what makes resumption bitwise *)
  (match resume with
  | None ->
      record_due_samples ();
      refresh e counts
  | Some ck ->
      if Array.length ck.ck_counts <> model.n_species then
        invalid_arg "Gillespie.run: checkpoint does not match the network";
      Array.blit ck.ck_counts 0 counts 0 model.n_species;
      t := ck.ck_t;
      next_sample := ck.ck_next_sample;
      n_events := ck.ck_n_events;
      Numeric.Rng.set_state rng ck.ck_rng;
      Prop_engine.restore e ck.ck_engine);
  let capture () =
    {
      ck_counts = Array.copy counts;
      ck_t = !t;
      ck_next_sample = !next_sample;
      ck_n_events = !n_events;
      ck_rng = Numeric.Rng.state rng;
      ck_engine = Prop_engine.capture e;
      ck_trace = trace;
    }
  in
  (try
     while !t < t1 do
       if !n_events >= max_events then begin
         failure := Some (Max_events_exceeded { max_events; t = !t });
         raise Exit
       end;
       (* deadline poll, amortized over 512 events so the hot loop stays
          branch-cheap when no cancellation is armed *)
       if !n_events land 511 = 0 then Numeric.Cancel.guard cancel;
       if e.Prop_engine.since_refresh >= refresh_every then refresh e counts;
       if total e <= 0. then begin
         (* the compensated total has decayed to zero (or drifted): rebuild
            before declaring the system dead *)
         refresh e counts;
         if total e <= 0. then begin
           (* no reaction can fire: hold state to the end *)
           t := t1;
           record_due_samples ();
           raise Exit
         end
       end;
       let dt = Numeric.Rng.exponential rng (total e) in
       t := !t +. dt;
       if !t > t1 then begin
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       record_due_samples ();
       let u = Numeric.Rng.float rng in
       let j = select e counts u in
       if j < 0 then begin
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       Compiled.apply reactions.(j) counts 1;
       update e counts j;
       incr n_events
     done
   with
  | Exit -> ()
  | Numeric.Cancel.Cancelled ->
      (* the guard fired at the loop top, before this iteration touched
         any state — capture is loop-top-exact *)
      (match on_cancel with Some f -> f (capture ()) | None -> ());
      raise Numeric.Cancel.Cancelled);
  match !failure with
  | Some err -> Stdlib.Error err
  | None -> Ok { trace; final = snapshot (); n_events = !n_events }

let run ?env ?seed ?sample_dt ?max_events ?refresh_every ?model ?arena ?cancel
    ?resume ?on_cancel ~t1 net =
  match
    run_result ?env ?seed ?sample_dt ?max_events ?refresh_every ?model ?arena
      ?cancel ?resume ?on_cancel ~t1 net
  with
  | Ok r -> r
  | Stdlib.Error err -> raise (Error err)

let mean_final ?(env = Crn.Rates.default_env) ?(runs = 20) ?jobs ?(seed = 42L)
    ~t1 net species =
  if runs < 1 then invalid_arg "Gillespie.mean_final: runs must be >= 1";
  let idx =
    match Crn.Network.find_species net species with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Gillespie.mean_final: unknown species %S" species)
  in
  (* compile once, share the immutable model across domains; each worker
     owns one arena reused by every trajectory scheduled onto it *)
  let model = compile_model env net in
  let xs =
    Ensemble.map_with ?jobs ~seed
      ~init_worker:(fun () -> make_arena model)
      ~runs
      (fun arena _ s ->
        let { final; _ } = run ~seed:s ~arena ~t1 net in
        final.(idx))
  in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
