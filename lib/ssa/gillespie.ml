(* Gillespie direct method with incremental propensity maintenance.

   The naive direct method recomputes every propensity and their full sum
   after each event — O(R) per event. Here the compiled network's
   dependency graph (Dep_graph) tells us which propensities an event can
   actually change, so each event costs O(|deps(j)|) propensity updates:

   - props.(i) always equals the from-scratch propensity of reaction i
     (affected entries are recomputed exactly, not patched), so the
     incremental state cannot drift from the full recompute;
   - the running total is maintained by compensated (Kahan) accumulation
     of the exact deltas, and both it and the per-group partial sums are
     rebuilt from scratch every [refresh_every] events to bound float
     drift;
   - selection replaces the flat linear scan with a two-level search:
     find the group by scanning ~sqrt(R) group sums, then scan inside the
     one group. If accumulated drift makes the drawn target land on a
     zero-propensity slot, we rebuild and re-search with the same uniform
     draw (no extra RNG consumption, so trajectories stay seed-stable). *)

type result = { trace : Ode.Trace.t; final : float array; n_events : int }

type error = Max_events_exceeded of { max_events : int; t : float }

exception Error of error

let error_to_string = function
  | Max_events_exceeded { max_events; t } ->
      Printf.sprintf "Gillespie: max event count %d exceeded at t = %g"
        max_events t

let compile = Compiled.compile
let propensity = Compiled.propensity

(* A model is the immutable per-network compilation product — the
   compiled reactions and their dependency graph. Runs only read it, so
   one model may be shared by concurrent runs on several domains (the
   service layer's compiled-model cache does exactly that); all mutable
   run state lives in the per-run [engine]. *)
type model = {
  reactions : Compiled.reaction array;
  deps : Dep_graph.t;
  n_species : int;
}

let compile_model env net =
  let reactions = compile env net in
  let n_species = Crn.Network.n_species net in
  { reactions; deps = Dep_graph.build reactions ~n_species; n_species }

(* ------------------------------------------------------------ engine *)

(* [acc] packs the compensated running total — acc.(0) is the total,
   acc.(1) the Kahan compensation — in a float array so the hot loop's
   mutations stay unboxed (mutable float fields of a mixed record would
   allocate on every write). *)
type engine = {
  reactions : Compiled.reaction array;
  deps : Dep_graph.t;
  props : float array;
  group_sum : float array;
  group_size : int;
  n_groups : int;
  acc : float array;
  mutable since_refresh : int;
}

let total e = Array.unsafe_get e.acc 0

let make_engine (model : model) =
  let reactions = model.reactions and deps = model.deps in
  let m = Array.length reactions in
  let group_size =
    max 1 (int_of_float (ceil (sqrt (float_of_int (max m 1)))))
  in
  let n_groups = max 1 ((m + group_size - 1) / group_size) in
  {
    reactions;
    deps;
    props = Array.make m 0.;
    group_sum = Array.make n_groups 0.;
    group_size;
    n_groups;
    acc = Array.make 2 0.;
    since_refresh = 0;
  }

(* A worker arena bundles the model with the per-run mutable scratch —
   the integer state vector and the incremental-propensity engine.
   [run_result ?arena] refills the counts from the network's initial
   state and [refresh]es the engine before the event loop touches either,
   so a reused arena yields bitwise the same trajectory as a fresh one:
   the pattern for ensemble fan-outs is compile the model once, give
   each domain one arena ([Ensemble.map_with]), and run every trajectory
   that lands on that domain through it. *)
type arena = { a_model : model; a_counts : int array; a_engine : engine }

let make_arena model =
  {
    a_model = model;
    a_counts = Array.make model.n_species 0;
    a_engine = make_engine model;
  }

(* full rebuild: every propensity, the group partial sums, and the total *)
let refresh e counts =
  let m = Array.length e.props in
  Array.fill e.group_sum 0 e.n_groups 0.;
  let total = ref 0. in
  for i = 0 to m - 1 do
    let a = propensity e.reactions.(i) counts in
    e.props.(i) <- a;
    let g = i / e.group_size in
    e.group_sum.(g) <- e.group_sum.(g) +. a;
    total := !total +. a
  done;
  e.acc.(0) <- !total;
  e.acc.(1) <- 0.;
  e.since_refresh <- 0

(* after firing reaction j, recompute exactly the affected propensities;
   unsafe accesses are justified by Dep_graph/compile producing only
   in-range indices *)
let update e counts j =
  let aff = Dep_graph.affected e.deps j in
  for k = 0 to Array.length aff - 1 do
    let i = Array.unsafe_get aff k in
    let a = propensity (Array.unsafe_get e.reactions i) counts in
    let d = a -. Array.unsafe_get e.props i in
    if d <> 0. then begin
      Array.unsafe_set e.props i a;
      let g = i / e.group_size in
      Array.unsafe_set e.group_sum g (Array.unsafe_get e.group_sum g +. d);
      (* Kahan: acc.(0) += d with compensation in acc.(1) *)
      let y = d -. Array.unsafe_get e.acc 1 in
      let t = Array.unsafe_get e.acc 0 +. y in
      Array.unsafe_set e.acc 1 (t -. Array.unsafe_get e.acc 0 -. y);
      Array.unsafe_set e.acc 0 t
    end
  done;
  e.since_refresh <- e.since_refresh + 1

(* two-level search for the reaction at cumulative weight [target]; returns
   -1 when drift strands the target on an empty slot (caller refreshes) *)
let search e target =
  let m = Array.length e.props in
  let g = ref 0 and acc = ref 0. in
  while
    !g < e.n_groups - 1
    && !acc +. Array.unsafe_get e.group_sum !g <= target
  do
    acc := !acc +. Array.unsafe_get e.group_sum !g;
    incr g
  done;
  let lo = !g * e.group_size in
  let hi = min m (lo + e.group_size) in
  let i = ref lo in
  while !i < hi - 1 && !acc +. Array.unsafe_get e.props !i <= target do
    acc := !acc +. Array.unsafe_get e.props !i;
    incr i
  done;
  if Array.unsafe_get e.props !i > 0. then !i else -1

(* select with the uniform draw [u]; on a drift miss rebuild once and
   re-search, then fall back to the last positive propensity *)
let select e counts u =
  let j = search e (u *. total e) in
  if j >= 0 then j
  else begin
    refresh e counts;
    if total e <= 0. then -1
    else
      let j = search e (u *. total e) in
      if j >= 0 then j
      else begin
        let last = ref (-1) in
        Array.iteri (fun i a -> if a > 0. then last := i) e.props;
        !last
      end
  end

(* --------------------------------------------------------------- runs *)

let run_result ?(env = Crn.Rates.default_env) ?(seed = 1L) ?sample_dt
    ?(max_events = 50_000_000) ?(refresh_every = 4096) ?model ?arena
    ?(cancel = Numeric.Cancel.never) ~t1 net =
  if t1 <= 0. then invalid_arg "Gillespie.run: t1 must be positive";
  if refresh_every < 1 then
    invalid_arg "Gillespie.run: refresh_every must be >= 1";
  let sample_dt =
    match sample_dt with
    | Some dt when dt > 0. -> dt
    | Some _ -> invalid_arg "Gillespie.run: sample_dt must be positive"
    | None -> t1 /. 500.
  in
  let rng = Numeric.Rng.create seed in
  let model =
    match (arena, model) with
    | Some a, _ -> a.a_model
    | None, Some m -> m
    | None, None -> compile_model env net
  in
  let init = Crn.Network.initial_state net in
  if Array.length init <> model.n_species then
    invalid_arg "Gillespie.run: network does not match the compiled model";
  let reactions = model.reactions in
  (* with an arena, refill its state vector in place — the engine is
     fully rebuilt by [refresh] below, so nothing from a previous run
     can leak into this trajectory *)
  let counts =
    match arena with
    | Some a ->
        let c = a.a_counts in
        for i = 0 to Array.length c - 1 do
          c.(i) <- int_of_float (Float.round init.(i))
        done;
        c
    | None -> Array.map (fun x -> int_of_float (Float.round x)) init
  in
  let trace = Ode.Trace.create ~names:(Crn.Network.species_names net) in
  let snapshot () = Array.map float_of_int counts in
  let e =
    match arena with Some a -> a.a_engine | None -> make_engine model
  in
  let t = ref 0. in
  let next_sample = ref 0. in
  let n_events = ref 0 in
  let failure = ref None in
  let record_due_samples () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  record_due_samples ();
  refresh e counts;
  (try
     while !t < t1 do
       if !n_events >= max_events then begin
         failure := Some (Max_events_exceeded { max_events; t = !t });
         raise Exit
       end;
       (* deadline poll, amortized over 512 events so the hot loop stays
          branch-cheap when no cancellation is armed *)
       if !n_events land 511 = 0 then Numeric.Cancel.guard cancel;
       if e.since_refresh >= refresh_every then refresh e counts;
       if total e <= 0. then begin
         (* the compensated total has decayed to zero (or drifted): rebuild
            before declaring the system dead *)
         refresh e counts;
         if total e <= 0. then begin
           (* no reaction can fire: hold state to the end *)
           t := t1;
           record_due_samples ();
           raise Exit
         end
       end;
       let dt = Numeric.Rng.exponential rng (total e) in
       t := !t +. dt;
       if !t > t1 then begin
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       record_due_samples ();
       let u = Numeric.Rng.float rng in
       let j = select e counts u in
       if j < 0 then begin
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       Compiled.apply reactions.(j) counts 1;
       update e counts j;
       incr n_events
     done
   with Exit -> ());
  match !failure with
  | Some err -> Stdlib.Error err
  | None -> Ok { trace; final = snapshot (); n_events = !n_events }

let run ?env ?seed ?sample_dt ?max_events ?refresh_every ?model ?arena ?cancel
    ~t1 net =
  match
    run_result ?env ?seed ?sample_dt ?max_events ?refresh_every ?model ?arena
      ?cancel ~t1 net
  with
  | Ok r -> r
  | Stdlib.Error err -> raise (Error err)

let mean_final ?(env = Crn.Rates.default_env) ?(runs = 20) ?jobs ?(seed = 42L)
    ~t1 net species =
  if runs < 1 then invalid_arg "Gillespie.mean_final: runs must be >= 1";
  let idx =
    match Crn.Network.find_species net species with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Gillespie.mean_final: unknown species %S" species)
  in
  (* compile once, share the immutable model across domains; each worker
     owns one arena reused by every trajectory scheduled onto it *)
  let model = compile_model env net in
  let xs =
    Ensemble.map_with ?jobs ~seed
      ~init_worker:(fun () -> make_arena model)
      ~runs
      (fun arena _ s ->
        let { final; _ } = run ~seed:s ~arena ~t1 net in
        final.(idx))
  in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
