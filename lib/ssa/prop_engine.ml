(* Incremental-propensity engine, extracted verbatim from the Gillespie
   direct-method loop so the hybrid engine's exact-stochastic mode runs
   literally the same arithmetic (see prop_engine.mli for the bitwise
   contract).

   The naive direct method recomputes every propensity and their full sum
   after each event — O(R) per event. Here the compiled network's
   dependency graph (Dep_graph) tells us which propensities an event can
   actually change, so each event costs O(|deps(j)|) propensity updates:

   - props.(i) always equals the from-scratch propensity of reaction i
     (affected entries are recomputed exactly, not patched), so the
     incremental state cannot drift from the full recompute;
   - the running total is maintained by compensated (Kahan) accumulation
     of the exact deltas, and both it and the per-group partial sums are
     rebuilt from scratch every [refresh_every] events to bound float
     drift;
   - selection replaces the flat linear scan with a two-level search:
     find the group by scanning ~sqrt(R) group sums, then scan inside the
     one group. If accumulated drift makes the drawn target land on a
     zero-propensity slot, we rebuild and re-search with the same uniform
     draw (no extra RNG consumption, so trajectories stay seed-stable). *)

let propensity = Compiled.propensity

(* [acc] packs the compensated running total — acc.(0) is the total,
   acc.(1) the Kahan compensation — in a float array so the hot loop's
   mutations stay unboxed (mutable float fields of a mixed record would
   allocate on every write). *)
type t = {
  reactions : Compiled.reaction array;
  deps : Dep_graph.t;
  props : float array;
  group_sum : float array;
  group_size : int;
  n_groups : int;
  acc : float array;
  mutable since_refresh : int;
}

let total e = Array.unsafe_get e.acc 0

let make reactions deps =
  let m = Array.length reactions in
  let group_size =
    max 1 (int_of_float (ceil (sqrt (float_of_int (max m 1)))))
  in
  let n_groups = max 1 ((m + group_size - 1) / group_size) in
  {
    reactions;
    deps;
    props = Array.make m 0.;
    group_sum = Array.make n_groups 0.;
    group_size;
    n_groups;
    acc = Array.make 2 0.;
    since_refresh = 0;
  }

type state = {
  s_props : float array;
  s_group_sum : float array;
  s_acc : float array;
  s_since_refresh : int;
}

let capture e =
  {
    s_props = Array.copy e.props;
    s_group_sum = Array.copy e.group_sum;
    s_acc = Array.copy e.acc;
    s_since_refresh = e.since_refresh;
  }

let restore e st =
  if
    Array.length st.s_props <> Array.length e.props
    || Array.length st.s_group_sum <> Array.length e.group_sum
    || Array.length st.s_acc <> 2
  then invalid_arg "Prop_engine.restore: state shape mismatch";
  Array.blit st.s_props 0 e.props 0 (Array.length e.props);
  Array.blit st.s_group_sum 0 e.group_sum 0 (Array.length e.group_sum);
  Array.blit st.s_acc 0 e.acc 0 2;
  e.since_refresh <- st.s_since_refresh

(* full rebuild: every propensity, the group partial sums, and the total *)
let refresh e counts =
  let m = Array.length e.props in
  Array.fill e.group_sum 0 e.n_groups 0.;
  let total = ref 0. in
  for i = 0 to m - 1 do
    let a = propensity e.reactions.(i) counts in
    e.props.(i) <- a;
    let g = i / e.group_size in
    e.group_sum.(g) <- e.group_sum.(g) +. a;
    total := !total +. a
  done;
  e.acc.(0) <- !total;
  e.acc.(1) <- 0.;
  e.since_refresh <- 0

(* after firing reaction j, recompute exactly the affected propensities;
   unsafe accesses are justified by Dep_graph/compile producing only
   in-range indices *)
let update e counts j =
  let aff = Dep_graph.affected e.deps j in
  for k = 0 to Array.length aff - 1 do
    let i = Array.unsafe_get aff k in
    let a = propensity (Array.unsafe_get e.reactions i) counts in
    let d = a -. Array.unsafe_get e.props i in
    if d <> 0. then begin
      Array.unsafe_set e.props i a;
      let g = i / e.group_size in
      Array.unsafe_set e.group_sum g (Array.unsafe_get e.group_sum g +. d);
      (* Kahan: acc.(0) += d with compensation in acc.(1) *)
      let y = d -. Array.unsafe_get e.acc 1 in
      let t = Array.unsafe_get e.acc 0 +. y in
      Array.unsafe_set e.acc 1 (t -. Array.unsafe_get e.acc 0 -. y);
      Array.unsafe_set e.acc 0 t
    end
  done;
  e.since_refresh <- e.since_refresh + 1

(* two-level search for the reaction at cumulative weight [target]; returns
   -1 when drift strands the target on an empty slot (caller refreshes) *)
let search e target =
  let m = Array.length e.props in
  let g = ref 0 and acc = ref 0. in
  while
    !g < e.n_groups - 1
    && !acc +. Array.unsafe_get e.group_sum !g <= target
  do
    acc := !acc +. Array.unsafe_get e.group_sum !g;
    incr g
  done;
  let lo = !g * e.group_size in
  let hi = min m (lo + e.group_size) in
  let i = ref lo in
  while !i < hi - 1 && !acc +. Array.unsafe_get e.props !i <= target do
    acc := !acc +. Array.unsafe_get e.props !i;
    incr i
  done;
  if Array.unsafe_get e.props !i > 0. then !i else -1

(* select with the uniform draw [u]; on a drift miss rebuild once and
   re-search, then fall back to the last positive propensity *)
let select e counts u =
  let j = search e (u *. total e) in
  if j >= 0 then j
  else begin
    refresh e counts;
    if total e <= 0. then -1
    else
      let j = search e (u *. total e) in
      if j >= 0 then j
      else begin
        let last = ref (-1) in
        Array.iteri (fun i a -> if a > 0. then last := i) e.props;
        !last
      end
  end
