(* Multicore ensemble runner: fan independent trajectories across domains.

   Determinism contract: trajectory i always receives seeds.(i), the i-th
   stream split off the root generator, and results are returned in
   trajectory order — so the output is byte-identical for every job
   count. Work is partitioned into contiguous static slices, one per
   worker (a hand-rolled fixed pool; trajectories of a given network have
   similar cost, so dynamic stealing would buy little and cost atomics). *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let seeds ~seed ~runs =
  let root = Numeric.Rng.create seed in
  Array.init runs (fun _ -> Numeric.Rng.split_seed root)

let map ?jobs ?(seed = 42L) ~runs f =
  if runs < 1 then invalid_arg "Ensemble.map: runs must be >= 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> min j runs
    | Some _ -> invalid_arg "Ensemble.map: jobs must be >= 1"
    | None -> min (default_jobs ()) runs
  in
  let seeds = seeds ~seed ~runs in
  if jobs = 1 then Array.init runs (fun i -> f i seeds.(i))
  else begin
    let base = runs / jobs and extra = runs mod jobs in
    let slice w =
      let lo = (w * base) + min w extra in
      let hi = lo + base + if w < extra then 1 else 0 in
      (lo, hi)
    in
    let work (lo, hi) () =
      Array.init (hi - lo) (fun k -> f (lo + k) seeds.(lo + k))
    in
    (* workers 1..jobs-1 run in spawned domains; slice 0 runs here so the
       calling domain is not idle *)
    let domains =
      Array.init (jobs - 1) (fun w -> Domain.spawn (work (slice (w + 1))))
    in
    let first = work (slice 0) () in
    let rest = Array.map Domain.join domains in
    Array.concat (first :: Array.to_list rest)
  end

let mean_std ?jobs ?seed ~runs f =
  let xs = map ?jobs ?seed ~runs f in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
