(* Multicore ensemble runner: fan independent trajectories across domains
   via the shared Numeric.Domain_pool.

   Determinism contract: trajectory i always receives seeds.(i), the i-th
   stream split off the root generator, and results are returned in
   trajectory order — so the output is byte-identical for every job
   count. *)

let default_jobs = Numeric.Domain_pool.default_jobs

let seeds ~seed ~runs =
  let root = Numeric.Rng.create seed in
  Array.init runs (fun _ -> Numeric.Rng.split_seed root)

let map ?jobs ?(seed = 42L) ~runs f =
  if runs < 1 then invalid_arg "Ensemble.map: runs must be >= 1";
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Ensemble.map: jobs must be >= 1"
  | _ -> ());
  let seeds = seeds ~seed ~runs in
  Numeric.Domain_pool.run ?jobs ~tasks:runs (fun i -> f i seeds.(i))

let mean_std ?jobs ?seed ~runs f =
  let xs = map ?jobs ?seed ~runs f in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
