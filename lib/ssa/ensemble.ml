(* Multicore ensemble runner: fan independent trajectories across domains
   via the shared Numeric.Domain_pool.

   Determinism contract: trajectory i always receives seeds.(i), the i-th
   stream split off the root generator, and results are returned in
   trajectory order — so the output is byte-identical for every job
   count and chunk size. The worker-state variant (map_with) adds the
   compile-once / per-worker-arena pattern: the caller builds the
   immutable model once and shares it in the closure, while init_worker
   gives each participating domain its own mutable scratch, reused
   across every trajectory that lands on it. *)

let default_jobs = Numeric.Domain_pool.default_jobs

let seeds ~seed ~runs =
  let root = Numeric.Rng.create seed in
  Array.init runs (fun _ -> Numeric.Rng.split_seed root)

let validate ~runs ~jobs =
  if runs < 1 then invalid_arg "Ensemble.map: runs must be >= 1";
  match jobs with
  | Some j when j < 1 -> invalid_arg "Ensemble.map: jobs must be >= 1"
  | _ -> ()

let map_with ?pool ?jobs ?chunk ?oversubscribe ?(seed = 42L) ~init_worker
    ~runs f =
  validate ~runs ~jobs;
  let seeds = seeds ~seed ~runs in
  Numeric.Domain_pool.run_worker ?pool ?jobs ?chunk ?oversubscribe
    ~init_worker ~tasks:runs (fun w i -> f w i seeds.(i))

let map ?pool ?jobs ?chunk ?oversubscribe ?seed ~runs f =
  map_with ?pool ?jobs ?chunk ?oversubscribe ?seed
    ~init_worker:(fun () -> ())
    ~runs
    (fun () i s -> f i s)

let mean_std ?pool ?jobs ?chunk ?seed ~runs f =
  let xs = map ?pool ?jobs ?chunk ?seed ~runs f in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
