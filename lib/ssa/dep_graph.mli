(** Reaction dependency graph (Gibson–Bruck style) for incremental SSA.

    [deps(j)] is the set of reactions whose propensity can change when
    reaction [j] fires — exactly the reactions having a reactant among
    the species [j]'s net stoichiometry touches. Built once per compiled
    network; lets the simulator update only the affected propensities
    after each event instead of recomputing all of them. *)

type t

val build : Compiled.reaction array -> n_species:int -> t
(** Compute the graph from compiled reactant/delta arrays. Reactions whose
    net stoichiometry misses every reactant (pure catalysts, sources into
    inert species) get no incoming edges, and zero-order reactions never
    appear in any affected set except through their products. *)

val to_arrays : t -> int array array
(** The raw adjacency arrays (a fresh copy), for serialization. *)

val of_arrays : int array array -> t
(** Rebuild a graph from arrays produced by {!to_arrays}. The caller is
    responsible for the arrays matching the compiled network they will
    be used with (the snapshot codec checksums them together). *)

val affected : t -> int -> int array
(** [affected g j]: sorted, duplicate-free indices of the reactions whose
    propensity may differ after firing [j] once (includes [j] itself iff
    [j] changes one of its own reactants). The returned array is owned by
    the graph — do not mutate. *)

val n_reactions : t -> int

val max_out_degree : t -> int
(** Size of the largest affected set — the worst-case propensity updates
    per event. *)

val mean_out_degree : t -> float
(** Average affected-set size; the expected per-event update cost compared
    against [n_reactions] for the full-recompute baseline. *)
