(** Gillespie's direct-method stochastic simulation algorithm, with
    incremental propensity maintenance.

    The paper validates designs with deterministic ODE simulation; real
    molecular systems are discrete and stochastic. This simulator runs the
    same networks over integer molecule counts to check that the constructs
    survive count-level noise (an extension experiment). Initial
    concentrations are interpreted as counts (rounded). Volume is taken as
    1, so deterministic and stochastic rate constants coincide for
    unimolecular reactions; bimolecular propensities use the standard
    combinatorial [k * n_a * n_b] / [k * n * (n-1) / 2] forms.

    The engine keeps propensities incrementally: after firing reaction
    [j], only the reactions in the dependency graph's affected set
    {!Dep_graph.affected} are recomputed (exactly — incremental values
    never differ from a full recompute), the total is carried by
    compensated accumulation with a periodic full rebuild, and the next
    reaction is found by a two-level (grouped partial-sum) search instead
    of a flat linear scan. *)

type result = {
  trace : Ode.Trace.t;  (** states sampled every [sample_dt] *)
  final : float array;  (** counts at [t1] *)
  n_events : int;  (** total reaction firings *)
}

type error =
  | Max_events_exceeded of { max_events : int; t : float }
      (** the event budget ran out at simulated time [t] *)

exception Error of error

val error_to_string : error -> string

type model
(** The immutable compilation product of one network under one rate
    environment: compiled reactions plus their dependency graph. Runs
    never mutate it, so a model may be shared by concurrent runs on
    several domains — the simulation service caches models keyed by
    network digest and replays them across requests. *)

val compile_model : Crn.Rates.env -> Crn.Network.t -> model

val model_parts : model -> Compiled.reaction array * Dep_graph.t
(** The compiled reactions and dependency graph inside a model — lets
    other engines (the hybrid simulator, the service layer's cache) build
    on a model compiled once here without recompiling the network. *)

val model_of_parts :
  n_species:int -> Compiled.reaction array -> Dep_graph.t -> model
(** Reassemble a model from parts produced by {!model_parts} (the
    snapshot codec round-trips models through this). Raises
    [Invalid_argument] when the graph's reaction count disagrees with
    the reaction array. *)

val model_n_species : model -> int

type checkpoint = {
  ck_counts : int array;
  ck_t : float;
  ck_next_sample : float;
  ck_n_events : int;
  ck_rng : int64;  (** RNG stream state ({!Numeric.Rng.state}) *)
  ck_engine : Prop_engine.state;
  ck_trace : Ode.Trace.t;  (** samples recorded so far *)
}
(** Full mid-run state of a trajectory, captured at the top of the event
    loop when a cancellation fires. Passing it back as [?resume] (with
    identical [env]/[seed]/[sample_dt]/[max_events]/[refresh_every] and
    the same network) continues the run to a trajectory {e bitwise
    identical} to one that was never interrupted. *)

type arena
(** A per-worker simulation arena: one model plus the reusable mutable
    scratch of a run (integer state vector, incremental-propensity
    engine). Passing an arena to {!run_result} skips the per-run
    allocations; the run refills the state from the network's initial
    state and fully rebuilds the engine first, so a reused arena
    produces bitwise the same trajectory as a fresh one. An arena is
    {e not} thread-safe — give each domain its own (see
    {!Ensemble.map_with}). *)

val make_arena : model -> arena

val run_result :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?max_events:int ->
  ?refresh_every:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  (result, error) Stdlib.result
(** Simulate from 0 to [t1]. Defaults: [seed = 1L], [sample_dt = t1/500],
    [max_events = 50_000_000], [refresh_every = 4096] (full propensity
    rebuild cadence; lower values trade speed for tighter float-drift
    bounds — [1] recomputes everything every event, matching the naive
    direct method). [model] supplies a pre-compiled model (it must come
    from {!compile_model} on the same [env] and [net]); when absent the
    network is compiled per run. [arena] additionally reuses the run's
    mutable scratch (and takes precedence over [model]: the arena's own
    model is used); it must have been built over a model of the same
    network — [Invalid_argument] if the species counts disagree.
    [cancel] (default
    {!Numeric.Cancel.never}) is polled every 512 events and aborts the
    run with {!Numeric.Cancel.Cancelled}; trajectories are unaffected by
    polling (no extra RNG draws). [resume] restores a {!checkpoint}
    instead of starting from the network's initial state (the other
    parameters must equal the original run's for the trajectory to be
    bitwise-identical); [on_cancel] receives the loop-top checkpoint
    when [cancel] aborts the run, just before
    {!Numeric.Cancel.Cancelled} propagates. Returns [Error] instead of
    raising when the event budget is exhausted. *)

val run :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?max_events:int ->
  ?refresh_every:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  result
(** Like {!run_result} but raises {!Error} on an exhausted event budget. *)

val mean_final :
  ?env:Crn.Rates.env ->
  ?runs:int ->
  ?jobs:int ->
  ?seed:int64 ->
  t1:float ->
  Crn.Network.t ->
  string ->
  float * float
(** [mean_final ~t1 net species] runs the SSA [runs] times (default 20)
    with per-trajectory streams split off [seed], fanned across [jobs]
    domains via {!Ensemble.map_with} (default {!Ensemble.default_jobs}),
    and returns mean and sample standard deviation of the species' final
    count. The model is compiled once and shared; each worker domain
    reuses one {!arena} across its trajectories. Results are identical
    for every [jobs] value. *)
