(* Reaction dependency graph for incremental-propensity SSA.

   Firing reaction j changes the counts of exactly the species in its net
   stoichiometry (delta) arrays; only reactions consuming one of those
   species can see their propensity change. The graph maps each reaction
   to that affected set, computed once from the compiled arrays so the hot
   loop touches |deps(j)| propensities per event instead of all of them.

   Catalyst-only couplings cost nothing: [Compiled.compile] stores *net*
   stoichiometry, so a species that appears on both sides with equal
   coefficients has no delta entry and creates no edge. *)

type t = { deps : int array array }

let build reactions ~n_species =
  (* consumers.(s) = reactions with species s among their reactants, in
     index order *)
  let consumers = Array.make n_species [] in
  Array.iteri
    (fun j r ->
      Array.iter
        (fun s -> consumers.(s) <- j :: consumers.(s))
        r.Compiled.reactant_species)
    reactions;
  Array.iteri (fun s l -> consumers.(s) <- List.rev l) consumers;
  let seen = Array.make (Array.length reactions) (-1) in
  let deps =
    Array.mapi
      (fun j r ->
        let acc = ref [] in
        Array.iteri
          (fun i s ->
            if r.Compiled.delta.(i) <> 0 then
              List.iter
                (fun d ->
                  if seen.(d) <> j then begin
                    seen.(d) <- j;
                    acc := d :: !acc
                  end)
                consumers.(s))
          r.Compiled.delta_species;
        let a = Array.of_list !acc in
        Array.sort compare a;
        a)
      reactions
  in
  { deps }

let to_arrays t = Array.map Array.copy t.deps
let of_arrays a = { deps = Array.map Array.copy a }

let affected t j = t.deps.(j)
let n_reactions t = Array.length t.deps

let max_out_degree t =
  Array.fold_left (fun m d -> max m (Array.length d)) 0 t.deps

let mean_out_degree t =
  let n = Array.length t.deps in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left (fun s d -> s + Array.length d) 0 t.deps)
    /. float_of_int n
