(** Adaptive second-order Rosenbrock (ROS2) semi-implicit integrator.

    L-stable with [gamma = 1 + 1/sqrt 2], so it remains stable on the
    stiff rate separations ([k_fast / k_slow >= 1e4]) where the explicit
    integrator's step size collapses. Each step factorizes
    [I - gamma h J] once (analytic Jacobian written in place by
    {!Deriv.jacobian_into}) and back-substitutes twice; the embedded
    first-order solution provides the error estimate. All per-step
    storage — Jacobian, W, LU workspace, stage vectors — is allocated
    once per [integrate] call, and the Jacobian is reused across
    step-size rejections (the state has not changed, only [h]). *)

type stats = {
  steps : int;  (** accepted steps *)
  rejected : int;  (** rejected step attempts (error or singular W) *)
  factorizations : int;  (** LU factorizations of [W = I - gamma h J] *)
  jac_evals : int;  (** Jacobian constructions performed *)
  jac_reused : int;
      (** factorization setups that reused the cached Jacobian — the
          rebuilds saved by rejection reuse; equals [rejected] on a run
          that completes normally *)
}

type workspace
(** All per-integration storage (state copy, Jacobian, W, LU workspace,
    stage vectors), preallocatable so repeated integrations — sweep
    points, service requests — allocate nothing per run. Reuse is
    bitwise-invisible: every array is fully rewritten before it is read,
    and the Jacobian matrix is cleared at the start of each [integrate]
    so a workspace may even move between systems with different sparsity
    patterns. Not thread-safe — one workspace per domain. *)

val workspace : int -> workspace
(** [workspace n] preallocates for [n]-dimensional systems. Raises
    [Invalid_argument] if [n < 1]. *)

type checkpoint = {
  ck_t : float;
  ck_x : float array;
  ck_h : float;
  ck_steps : int;
  ck_rejected : int;
  ck_factorizations : int;
  ck_jac_evals : int;
  ck_jac_reused : int;
  ck_jac_fresh : bool;
}
(** Loop-top mid-run state. The Jacobian matrix is deliberately absent:
    it is a pure function of [ck_x], so when [ck_jac_fresh] is set the
    resume path rebuilds it from the restored state — bitwise the same
    matrix, and the stats counters are restored verbatim, so a resumed
    run is indistinguishable (trajectory and stats) from an
    uninterrupted one. *)

val integrate :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?cancel:Numeric.Cancel.t ->
  ?ws:workspace ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t0:float ->
  t1:float ->
  on_sample:(float -> Numeric.Vec.t -> unit) ->
  Deriv.t ->
  Numeric.Vec.t ->
  Numeric.Vec.t * stats
(** Same contract as {!Dopri5.integrate}, including [resume]/[on_cancel]
    checkpointing. Defaults: [rtol = 1e-4],
    [atol = 1e-7], [max_steps = 5_000_000] — looser than {!Dopri5}
    because the embedded first-order error estimate is conservative, and
    the clocked designs this integrator exists for only need phase-level
    accuracy (validated against {!Dopri5} in the test suite). [ws]
    supplies a preallocated {!workspace} (its dimension must equal the
    system's — [Invalid_argument] otherwise); without it one is
    allocated per call. *)
