(** Deterministic multicore parameter sweeps over the ODE path.

    The headline deterministic experiments — rate-robustness studies,
    transfer curves, frequency responses — evaluate the same pure
    simulation at many parameter points. This module fans those points
    over the shared {!Numeric.Domain_pool}: point [i] of the input array
    always maps to slot [i] of the output array, so a pure point
    function gives byte-identical results for every job count (mirroring
    the stochastic ensemble's contract).

    The point function runs concurrently in several domains: it must not
    mutate shared state. Simulating a shared {!Crn.Network.t} is safe —
    the compilers and integrators only read it; building a fresh network
    per point inside the function is also safe. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f points] evaluates [f] on every point using up to [jobs]
    domains (default {!Numeric.Domain_pool.default_jobs}), returning
    results in point order. An empty input returns an empty output
    without spawning. Raises [Invalid_argument] if [jobs < 1];
    exceptions raised by [f] in a worker are re-raised. *)

val final_states :
  ?jobs:int ->
  ?method_:Driver.method_ ->
  ?rtol:float ->
  ?atol:float ->
  ?injections:Driver.injection list ->
  ?cancel:Numeric.Cancel.t ->
  t1:float ->
  Crn.Network.t ->
  ratios:float array ->
  Numeric.Vec.t array
(** Rate-robustness convenience: simulate [net] to [t1] once per
    fast/slow ratio ({!Crn.Rates.env_with_ratio}) and return the final
    state at each ratio — the sweep behind [crnsim --sweep-ratio].
    [cancel] is shared by every point (its predicate is polled from all
    worker domains); when it fires, the whole sweep aborts with
    {!Numeric.Cancel.Cancelled}. *)
