(** Deterministic multicore parameter sweeps over the ODE path.

    The headline deterministic experiments — rate-robustness studies,
    transfer curves, frequency responses — evaluate the same pure
    simulation at many parameter points. This module fans those points
    over the shared {!Numeric.Domain_pool}: point [i] of the input array
    always maps to slot [i] of the output array, so a pure point
    function gives byte-identical results for every job count and chunk
    size (mirroring the stochastic ensemble's contract).

    The point function runs concurrently in several domains: it must not
    mutate shared state. Simulating a shared {!Crn.Network.t} is safe —
    the compilers and integrators only read it; building a fresh network
    per point inside the function is also safe. Per-point mutable
    scratch belongs in the {!map_with} worker state. *)

val map :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map f points] evaluates [f] on every point using up to [jobs]
    domains (default {!Numeric.Domain_pool.default_jobs}; clamped to the
    hardware unless [oversubscribe] — see {!Numeric.Domain_pool.run}),
    returning results in point order. Helpers are borrowed from [pool]
    (default the process-wide shared pool); [chunk] sets the
    deterministic scheduler's chunk size. An empty input returns an
    empty output without spawning. Raises [Invalid_argument] if
    [jobs < 1]; exceptions raised by [f] in a worker are re-raised. *)

val map_with :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  init_worker:(unit -> 'w) ->
  ('w -> 'a -> 'b) ->
  'a array ->
  'b array
(** Like {!map}, but each participating domain first builds private
    worker state with [init_worker] — e.g. a {!Driver.workspace} — and
    every point it evaluates receives that state. [f w p] must return
    the same value whatever the state's prior contents, preserving the
    byte-identical-output contract. *)

val final_states :
  ?pool:Numeric.Domain_pool.Bounded.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?oversubscribe:bool ->
  ?method_:Driver.method_ ->
  ?rtol:float ->
  ?atol:float ->
  ?injections:Driver.injection list ->
  ?cancel:Numeric.Cancel.t ->
  t1:float ->
  Crn.Network.t ->
  ratios:float array ->
  Numeric.Vec.t array
(** Rate-robustness convenience: simulate [net] to [t1] once per
    fast/slow ratio ({!Crn.Rates.env_with_ratio}) and return the final
    state at each ratio — the sweep behind [crnsim --sweep-ratio]. The
    network is compiled once; each point re-bakes only the rate
    constants ({!Deriv.with_env}, bitwise-equivalent to recompiling) and
    each worker domain reuses one integrator workspace across its
    points. [cancel] is shared by every point (its predicate is polled
    from all worker domains); when it fires, the whole sweep aborts with
    {!Numeric.Cancel.Cancelled}. *)
