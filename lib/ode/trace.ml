(* Samples are stored in chunks of flat row-major float arrays: one
   allocation per [rows_per_chunk] samples instead of one Array.copy per
   sample, and a recorded row is a blit into contiguous storage. The
   chunk size targets a few kilobytes of floats whatever the state
   width, so short traces stay small and long traces amortize. *)

type t = {
  names : string array;
  width : int;
  rows_per_chunk : int;
  mutable times : float array;
  mutable chunks : float array array;
  mutable len : int;
}

let target_chunk_floats = 4096

let create ~names =
  let width = Array.length names in
  {
    names;
    width;
    rows_per_chunk = max 1 (target_chunk_floats / max 1 width);
    times = Array.make 64 0.;
    chunks = [||];
    len = 0;
  }

let grow tr =
  let cap = Array.length tr.times in
  if tr.len = cap then begin
    let times = Array.make (2 * cap) 0. in
    Array.blit tr.times 0 times 0 cap;
    tr.times <- times
  end;
  let chunk = tr.len / tr.rows_per_chunk in
  if chunk = Array.length tr.chunks then begin
    let chunks = Array.make (max 4 (2 * chunk)) [||] in
    Array.blit tr.chunks 0 chunks 0 chunk;
    tr.chunks <- chunks
  end;
  if tr.chunks.(chunk) = [||] && tr.width > 0 then
    tr.chunks.(chunk) <- Array.make (tr.rows_per_chunk * tr.width) 0.

let record tr t x =
  if Array.length x <> tr.width then
    invalid_arg "Trace.record: state dimension mismatch";
  if tr.len > 0 && t < tr.times.(tr.len - 1) then
    invalid_arg "Trace.record: time went backwards";
  grow tr;
  tr.times.(tr.len) <- t;
  Array.blit x 0
    tr.chunks.(tr.len / tr.rows_per_chunk)
    (tr.len mod tr.rows_per_chunk * tr.width)
    tr.width;
  tr.len <- tr.len + 1

let length tr = tr.len
let names tr = tr.names
let times tr = Array.sub tr.times 0 tr.len

let check_index tr i =
  if i < 0 || i >= tr.len then invalid_arg "Trace: sample index out of range"

(* value of species [s] at sample [i]; bounds already validated *)
let get tr i s =
  tr.chunks.(i / tr.rows_per_chunk).((i mod tr.rows_per_chunk * tr.width) + s)

let state_at_index tr i =
  check_index tr i;
  Array.sub
    tr.chunks.(i / tr.rows_per_chunk)
    (i mod tr.rows_per_chunk * tr.width)
    tr.width

let column tr s =
  if s < 0 || s >= tr.width then
    invalid_arg "Trace.column: species index out of range";
  Array.init tr.len (fun i -> get tr i s)

let species_index tr name =
  let rec go i =
    if i >= Array.length tr.names then raise Not_found
    else if tr.names.(i) = name then i
    else go (i + 1)
  in
  go 0

let column_named tr name = column tr (species_index tr name)

let value_at tr ~species t =
  Numeric.Interp.at ~times:(times tr) ~values:(column tr species) t

let nonempty tr = if tr.len = 0 then invalid_arg "Trace: empty trace"

let last_time tr =
  nonempty tr;
  tr.times.(tr.len - 1)

let last_state tr =
  nonempty tr;
  state_at_index tr (tr.len - 1)

let final_value tr name =
  nonempty tr;
  get tr (tr.len - 1) (species_index tr name)

let to_csv tr =
  let buf = Buffer.create (tr.len * 32) in
  Buffer.add_string buf "time";
  Array.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf n)
    tr.names;
  Buffer.add_char buf '\n';
  for i = 0 to tr.len - 1 do
    Buffer.add_string buf (Printf.sprintf "%.6g" tr.times.(i));
    for s = 0 to tr.width - 1 do
      Buffer.add_string buf (Printf.sprintf ",%.6g" (get tr i s))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let restrict tr keep =
  let indices = Array.of_list (List.map (species_index tr) keep) in
  let sub = create ~names:(Array.of_list keep) in
  let row = Array.make (Array.length indices) 0. in
  for i = 0 to tr.len - 1 do
    Array.iteri (fun j s -> row.(j) <- get tr i s) indices;
    record sub tr.times.(i) row
  done;
  sub
