(* The compiled vector field lives in CSR-style flattened arrays: one
   contiguous int/float array per field across all reactions, with an
   offsets array delimiting each reaction's slice. The inner loops then
   run over contiguous memory with unsafe accesses — no per-reaction
   record to chase, no bounds checks — which is what the dense
   rate-robustness sweeps hammer.

   [Reference] keeps the original boxed-record walk, compiled from the
   same network in the same order with identical arithmetic ordering, so
   the flat kernel can be checked for *bitwise* agreement (tests) and
   benchmarked against the pre-optimization baseline (bench_ode). *)

module Reference = struct
  type reaction = {
    k : float;
    reactant_species : int array;
    reactant_coeff : int array;
    net_species : int array;
    net_coeff : float array;
  }

  type t = { n : int; reactions : reaction array }

  let compile env net =
    let compile_reaction r =
      let reactants = Array.of_list r.Crn.Reaction.reactants in
      let net_list = Crn.Reaction.net_stoich r in
      {
        k = Crn.Rates.value env r.Crn.Reaction.rate;
        reactant_species = Array.map fst reactants;
        reactant_coeff = Array.map snd reactants;
        net_species = Array.of_list (List.map fst net_list);
        net_coeff =
          Array.of_list (List.map (fun (_, c) -> float_of_int c) net_list);
      }
    in
    {
      n = Crn.Network.n_species net;
      reactions = Array.map compile_reaction (Crn.Network.reactions net);
    }

  let dim sys = sys.n

  let pow_int x c =
    match c with
    | 1 -> x
    | 2 -> x *. x
    | 3 -> x *. x *. x
    | _ -> x ** float_of_int c

  let flux_of r x =
    let acc = ref r.k in
    for i = 0 to Array.length r.reactant_species - 1 do
      acc := !acc *. pow_int x.(r.reactant_species.(i)) r.reactant_coeff.(i)
    done;
    !acc

  let f sys _t x dx =
    Numeric.Vec.fill dx 0.;
    Array.iter
      (fun r ->
        let v = flux_of r x in
        for i = 0 to Array.length r.net_species - 1 do
          let s = r.net_species.(i) in
          dx.(s) <- dx.(s) +. (v *. r.net_coeff.(i))
        done)
      sys.reactions

  let jacobian sys x =
    let jac = Numeric.Mat.create sys.n sys.n 0. in
    Array.iter
      (fun r ->
        (* d flux / d x_j = k * c_j * x_j^(c_j - 1) * prod_{i<>j} x_i^c_i *)
        let m = Array.length r.reactant_species in
        for jj = 0 to m - 1 do
          let sj = r.reactant_species.(jj) in
          let cj = r.reactant_coeff.(jj) in
          let d = ref (r.k *. float_of_int cj) in
          if cj > 1 then d := !d *. pow_int x.(sj) (cj - 1);
          for ii = 0 to m - 1 do
            if ii <> jj then
              d := !d *. pow_int x.(r.reactant_species.(ii)) r.reactant_coeff.(ii)
          done;
          for i = 0 to Array.length r.net_species - 1 do
            let s = r.net_species.(i) in
            jac.(s).(sj) <- jac.(s).(sj) +. (!d *. r.net_coeff.(i))
          done
        done)
      sys.reactions;
    jac
end

type t = {
  n : int;  (** species *)
  nr : int;  (** reactions *)
  k : float array;  (** rate constant per reaction *)
  rates : Crn.Rates.t array;  (** symbolic rate per reaction, for re-baking *)
  (* reactant side: slice [r_off.(r) .. r_off.(r+1)-1] of r_sp/r_co *)
  r_off : int array;
  r_sp : int array;
  r_co : int array;
  (* net stoichiometry: slice [s_off.(r) .. s_off.(r+1)-1] of s_sp/s_co *)
  s_off : int array;
  s_sp : int array;
  s_co : float array;
  (* distinct (row, col) entries the Jacobian can touch, for in-place
     evaluation into a matrix whose off-pattern entries stay zero *)
  jac_rows : int array;
  jac_cols : int array;
}

let compile env net =
  let reactions = Crn.Network.reactions net in
  let n = Crn.Network.n_species net in
  let nr = Array.length reactions in
  let k = Array.make nr 0. in
  let rates =
    Array.map (fun rx -> rx.Crn.Reaction.rate) reactions
  in
  let r_off = Array.make (nr + 1) 0 in
  let s_off = Array.make (nr + 1) 0 in
  Array.iteri
    (fun r rx ->
      r_off.(r + 1) <- r_off.(r) + List.length rx.Crn.Reaction.reactants;
      s_off.(r + 1) <- s_off.(r) + List.length (Crn.Reaction.net_stoich rx);
      k.(r) <- Crn.Rates.value env rx.Crn.Reaction.rate)
    reactions;
  let r_sp = Array.make r_off.(nr) 0 in
  let r_co = Array.make r_off.(nr) 0 in
  let s_sp = Array.make s_off.(nr) 0 in
  let s_co = Array.make s_off.(nr) 0. in
  let pattern = Hashtbl.create 64 in
  Array.iteri
    (fun r rx ->
      List.iteri
        (fun i (sp, co) ->
          r_sp.(r_off.(r) + i) <- sp;
          r_co.(r_off.(r) + i) <- co)
        rx.Crn.Reaction.reactants;
      List.iteri
        (fun i (sp, co) ->
          s_sp.(s_off.(r) + i) <- sp;
          s_co.(s_off.(r) + i) <- float_of_int co)
        (Crn.Reaction.net_stoich rx);
      (* Jacobian pattern: each net species row gets a column per reactant *)
      List.iter
        (fun (row, _) ->
          List.iter
            (fun (col, _) -> Hashtbl.replace pattern ((row * n) + col) ())
            rx.Crn.Reaction.reactants)
        (Crn.Reaction.net_stoich rx))
    reactions;
  let jac_rows = Array.make (Hashtbl.length pattern) 0 in
  let jac_cols = Array.make (Hashtbl.length pattern) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun key () ->
      jac_rows.(!i) <- key / n;
      jac_cols.(!i) <- key mod n;
      incr i)
    pattern;
  { n; nr; k; rates; r_off; r_sp; r_co; s_off; s_sp; s_co; jac_rows; jac_cols }

(* Re-bake the rate constants under a different environment, sharing all
   structural arrays (CSR indices, stoichiometry, Jacobian pattern) with
   the source system. k is recomputed through the same [Crn.Rates.value]
   calls [compile] makes, so [with_env (compile env0 net) env] is
   bitwise-equivalent to [compile env net] — this is what lets a
   parameter sweep compile a network once and derive each point's system
   for the cost of one small float array. *)
let with_env sys env =
  { sys with k = Array.map (Crn.Rates.value env) sys.rates }

(* Same structural sharing as [with_env] but with explicitly supplied
   rate constants. The hybrid engine uses this to mask its slow partition
   out of the vector field: it copies the baked constants, zeroes (or
   rescales) the slow reactions' entries, and re-bakes — the CSR arrays,
   stoichiometry and Jacobian pattern are all shared, so a repartition
   costs one nr-sized float array. *)
let with_k sys k =
  if Array.length k <> sys.nr then
    invalid_arg "Deriv.with_k: rate vector length must equal n_reactions";
  { sys with k = Array.copy k }

let rate_constants sys = Array.copy sys.k

(* The raw view exists for the snapshot codec: every array of the
   compiled system, copied out (and back in) so a deserialized system is
   structurally independent of the reader's buffers. No recomputation on
   load — the whole point of a snapshot is to skip [compile]. *)
type raw = {
  raw_n : int;
  raw_nr : int;
  raw_k : float array;
  raw_rates : Crn.Rates.t array;
  raw_r_off : int array;
  raw_r_sp : int array;
  raw_r_co : int array;
  raw_s_off : int array;
  raw_s_sp : int array;
  raw_s_co : float array;
  raw_jac_rows : int array;
  raw_jac_cols : int array;
}

let to_raw sys =
  {
    raw_n = sys.n;
    raw_nr = sys.nr;
    raw_k = Array.copy sys.k;
    raw_rates = Array.copy sys.rates;
    raw_r_off = Array.copy sys.r_off;
    raw_r_sp = Array.copy sys.r_sp;
    raw_r_co = Array.copy sys.r_co;
    raw_s_off = Array.copy sys.s_off;
    raw_s_sp = Array.copy sys.s_sp;
    raw_s_co = Array.copy sys.s_co;
    raw_jac_rows = Array.copy sys.jac_rows;
    raw_jac_cols = Array.copy sys.jac_cols;
  }

let of_raw r =
  if
    r.raw_n < 0 || r.raw_nr < 0
    || Array.length r.raw_k <> r.raw_nr
    || Array.length r.raw_rates <> r.raw_nr
    || Array.length r.raw_r_off <> r.raw_nr + 1
    || Array.length r.raw_s_off <> r.raw_nr + 1
    || Array.length r.raw_jac_rows <> Array.length r.raw_jac_cols
  then invalid_arg "Deriv.of_raw: inconsistent shapes";
  {
    n = r.raw_n;
    nr = r.raw_nr;
    k = Array.copy r.raw_k;
    rates = Array.copy r.raw_rates;
    r_off = Array.copy r.raw_r_off;
    r_sp = Array.copy r.raw_r_sp;
    r_co = Array.copy r.raw_r_co;
    s_off = Array.copy r.raw_s_off;
    s_sp = Array.copy r.raw_s_sp;
    s_co = Array.copy r.raw_s_co;
    jac_rows = Array.copy r.raw_jac_rows;
    jac_cols = Array.copy r.raw_jac_cols;
  }

let dim sys = sys.n
let n_reactions sys = sys.nr

let pow_int x c =
  (* c is a small positive stoichiometric coefficient *)
  match c with
  | 1 -> x
  | 2 -> x *. x
  | 3 -> x *. x *. x
  | _ -> x ** float_of_int c

let check_state sys x =
  if Array.length x <> sys.n then invalid_arg "Deriv: state dimension mismatch"

(* one reactant factor: x_s ^ c, both loaded unchecked from slot [i] *)
let[@inline] factor_unsafe r_sp r_co x i =
  pow_int
    (Array.unsafe_get x (Array.unsafe_get r_sp i))
    (Array.unsafe_get r_co i)

(* flux of reaction [r] at state [x]; every index loaded from the CSR
   arrays is in range by construction, so accesses are unchecked. The
   0/1/2-reactant cases (all of mass-action chemistry in practice) are
   straight-line float code with no accumulator cell; the left-to-right
   multiply order matches [Reference.flux_of] bitwise. *)
let[@inline] flux_unsafe sys x r =
  let r_sp = sys.r_sp and r_co = sys.r_co in
  let lo = Array.unsafe_get sys.r_off r in
  let hi = Array.unsafe_get sys.r_off (r + 1) in
  let k = Array.unsafe_get sys.k r in
  match hi - lo with
  | 0 -> k
  | 1 -> k *. factor_unsafe r_sp r_co x lo
  | 2 -> k *. factor_unsafe r_sp r_co x lo *. factor_unsafe r_sp r_co x (lo + 1)
  | _ ->
      let acc = ref (k *. factor_unsafe r_sp r_co x lo) in
      for i = lo + 1 to hi - 1 do
        acc := !acc *. factor_unsafe r_sp r_co x i
      done;
      !acc

let f sys _t x dx =
  check_state sys x;
  check_state sys dx;
  Numeric.Vec.fill dx 0.;
  let s_off = sys.s_off and s_sp = sys.s_sp and s_co = sys.s_co in
  for r = 0 to sys.nr - 1 do
    let v = flux_unsafe sys x r in
    let hi = Array.unsafe_get s_off (r + 1) in
    for i = Array.unsafe_get s_off r to hi - 1 do
      let s = Array.unsafe_get s_sp i in
      Array.unsafe_set dx s
        (Array.unsafe_get dx s +. (v *. Array.unsafe_get s_co i))
    done
  done

let eval sys x =
  let dx = Array.make sys.n 0. in
  f sys 0. x dx;
  dx

let jacobian_into sys x jac =
  check_state sys x;
  (* zero exactly the entries the accumulation below can touch; entries
     off the pattern are never written, so a caller-provided zero matrix
     stays correct across repeated calls *)
  for p = 0 to Array.length sys.jac_rows - 1 do
    (Array.unsafe_get jac (Array.unsafe_get sys.jac_rows p)).(Array.unsafe_get
                                                                sys.jac_cols p) <-
      0.
  done;
  for r = 0 to sys.nr - 1 do
    (* d flux / d x_j = k * c_j * x_j^(c_j - 1) * prod_{i<>j} x_i^c_i *)
    let rlo = Array.unsafe_get sys.r_off r in
    let rhi = Array.unsafe_get sys.r_off (r + 1) in
    let slo = Array.unsafe_get sys.s_off r in
    let shi = Array.unsafe_get sys.s_off (r + 1) in
    for jj = rlo to rhi - 1 do
      let sj = Array.unsafe_get sys.r_sp jj in
      let cj = Array.unsafe_get sys.r_co jj in
      let d = ref (Array.unsafe_get sys.k r *. float_of_int cj) in
      if cj > 1 then d := !d *. pow_int (Array.unsafe_get x sj) (cj - 1);
      for ii = rlo to rhi - 1 do
        if ii <> jj then
          d :=
            !d
            *. pow_int
                 (Array.unsafe_get x (Array.unsafe_get sys.r_sp ii))
                 (Array.unsafe_get sys.r_co ii)
      done;
      let d = !d in
      for i = slo to shi - 1 do
        let row = Array.unsafe_get jac (Array.unsafe_get sys.s_sp i) in
        Array.unsafe_set row sj
          (Array.unsafe_get row sj +. (d *. Array.unsafe_get sys.s_co i))
      done
    done
  done

let jacobian sys x =
  let jac = Numeric.Mat.create sys.n sys.n 0. in
  jacobian_into sys x jac;
  jac

let jac_nnz sys = Array.length sys.jac_rows

let flux sys x i =
  if i < 0 || i >= sys.nr then
    invalid_arg "Deriv.flux: reaction index out of range";
  check_state sys x;
  flux_unsafe sys x i
