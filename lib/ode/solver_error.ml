(* Structured non-convergence errors shared by the adaptive steppers.

   The original code signalled these with [failwith], which callers could
   only pattern-match by message string; the command-line tools and the
   simulation service both need to distinguish "the solver gave up" from
   arbitrary failures to map it to a clean exit code / wire response. *)

type reason = Max_steps of int | Step_underflow

type t = { solver : string; reason : reason; t : float }

exception Error of t

let to_string { solver; reason; t } =
  match reason with
  | Max_steps n ->
      Printf.sprintf "%s: max step count %d exceeded at t = %g" solver n t
  | Step_underflow ->
      Printf.sprintf "%s: step size underflow at t = %g (system too stiff)"
        solver t

let raise_ ~solver ~t reason = raise (Error { solver; reason; t })
