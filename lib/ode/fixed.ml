let euler_step sys t x h =
  let n = Deriv.dim sys in
  let dx = Array.make n 0. in
  Deriv.f sys t x dx;
  let y = Array.copy x in
  Numeric.Vec.axpy h dx y;
  y

let rk4_step sys t x h =
  let n = Deriv.dim sys in
  let k1 = Array.make n 0. in
  let k2 = Array.make n 0. in
  let k3 = Array.make n 0. in
  let k4 = Array.make n 0. in
  let tmp = Array.make n 0. in
  Deriv.f sys t x k1;
  Numeric.Vec.blit ~src:x ~dst:tmp;
  Numeric.Vec.axpy (h /. 2.) k1 tmp;
  Deriv.f sys (t +. (h /. 2.)) tmp k2;
  Numeric.Vec.blit ~src:x ~dst:tmp;
  Numeric.Vec.axpy (h /. 2.) k2 tmp;
  Deriv.f sys (t +. (h /. 2.)) tmp k3;
  Numeric.Vec.blit ~src:x ~dst:tmp;
  Numeric.Vec.axpy h k3 tmp;
  Deriv.f sys (t +. h) tmp k4;
  let y = Array.copy x in
  for i = 0 to n - 1 do
    y.(i) <-
      y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
  done;
  y

(* Loop-top mid-run state: the stepper is stateless between steps, so
   time and state are the whole story. *)
type checkpoint = { ck_t : float; ck_x : float array }

let integrate ?(cancel = Numeric.Cancel.never) ?resume ?on_cancel ~step ~h ~t0
    ~t1 ~on_sample sys x0 =
  if h <= 0. then invalid_arg "Fixed.integrate: step must be positive";
  if t1 < t0 then invalid_arg "Fixed.integrate: t1 < t0";
  let x = ref (Array.copy x0) in
  let t = ref t0 in
  (match resume with
  | None -> on_sample !t !x
  | Some ck ->
      if Array.length ck.ck_x <> Array.length !x then
        invalid_arg "Fixed.integrate: checkpoint dimension mismatch";
      x := Array.copy ck.ck_x;
      t := ck.ck_t);
  while !t < t1 -. 1e-12 do
    (try Numeric.Cancel.guard cancel
     with Numeric.Cancel.Cancelled ->
       (match on_cancel with
       | Some f -> f { ck_t = !t; ck_x = Array.copy !x }
       | None -> ());
       raise Numeric.Cancel.Cancelled);
    let hh = Float.min h (t1 -. !t) in
    let y = step sys !t !x hh in
    Numeric.Vec.clamp_nonneg y;
    x := y;
    t := !t +. hh;
    on_sample !t !x
  done;
  !x
