type method_ = Dopri5 | Rosenbrock | Rk4 of float
type injection = { at : float; species : string; amount : float }

(* Per-worker integrator scratch for repeated driver calls (sweep
   points, service requests). The method-specific workspaces are built
   lazily on first use, so a sweep that only ever runs Dopri5 never pays
   for the Rosenbrock matrices. *)
type workspace = {
  w_n : int;
  mutable w_ros : Rosenbrock.workspace option;
  mutable w_dp : Dopri5.workspace option;
}

let workspace ~n =
  if n < 1 then invalid_arg "Driver.workspace: n must be >= 1";
  { w_n = n; w_ros = None; w_dp = None }

let dopri5_ws = function
  | None -> None
  | Some w -> (
      match w.w_dp with
      | Some _ as ws -> ws
      | None ->
          let ws = Dopri5.workspace w.w_n in
          w.w_dp <- Some ws;
          Some ws)

let rosenbrock_ws = function
  | None -> None
  | Some w -> (
      match w.w_ros with
      | Some _ as ws -> ws
      | None ->
          let ws = Rosenbrock.workspace w.w_n in
          w.w_ros <- Some ws;
          Some ws)

(* tolerance defaults are per method: the semi-implicit integrator's
   first-order error estimate is conservative, so it gets looser targets *)
let run_segment method_ ~rtol ~atol ~cancel ~ws ~t0 ~t1 ~on_sample sys x =
  if t1 <= t0 then Array.copy x
  else
    match method_ with
    | Dopri5 ->
        let rtol = Option.value ~default:1e-6 rtol
        and atol = Option.value ~default:1e-9 atol in
        let x', _ =
          Dopri5.integrate ?ws:(dopri5_ws ws) ~rtol ~atol ~cancel ~t0 ~t1
            ~on_sample sys x
        in
        x'
    | Rosenbrock ->
        let rtol = Option.value ~default:1e-4 rtol
        and atol = Option.value ~default:1e-7 atol in
        let x', _ =
          Rosenbrock.integrate ?ws:(rosenbrock_ws ws) ~rtol ~atol ~cancel ~t0
            ~t1 ~on_sample sys x
        in
        x'
    | Rk4 h ->
        Fixed.integrate ~cancel ~step:Fixed.rk4_step ~h ~t0 ~t1 ~on_sample sys x

let prepare net injections =
  let resolve { at; species; amount } =
    if at < 0. then invalid_arg "Driver: negative injection time";
    match Crn.Network.find_species net species with
    | Some i -> (at, i, amount)
    | None ->
        invalid_arg
          (Printf.sprintf "Driver: unknown injection species %S" species)
  in
  List.map resolve injections
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let simulate_gen ~record_step ~record_boundary ?(method_ = Dopri5) ?rtol
    ?atol ?(env = Crn.Rates.default_env) ?(injections = []) ?sys ?ws
    ?(cancel = Numeric.Cancel.never) ~t1 net =
  (* [sys] lets a caller (the simulation service) reuse a cached compiled
     model; it must have been compiled from this [net] under [env] *)
  let sys = match sys with Some s -> s | None -> Deriv.compile env net in
  (match ws with
  | Some w when w.w_n <> Deriv.dim sys ->
      invalid_arg "Driver: workspace dimension mismatch"
  | _ -> ());
  let events =
    List.filter (fun (at, _, _) -> at < t1) (prepare net injections)
  in
  let x = ref (Crn.Network.initial_state net) in
  let t = ref 0. in
  (* segments between consecutive injection times, then the tail; the
     integrator's sample at a segment's start is skipped because the
     previous segment (or the manual initial record) already emitted it *)
  let run_to t_end =
    let first = ref true in
    let on_sample ts xs =
      if !first then first := false else record_step ts xs
    in
    x :=
      run_segment method_ ~rtol ~atol ~cancel ~ws ~t0:!t ~t1:t_end ~on_sample
        sys !x;
    t := t_end
  in
  record_boundary 0. !x;
  List.iter
    (fun (at, sp, amount) ->
      run_to at;
      !x.(sp) <- !x.(sp) +. amount;
      record_boundary !t !x)
    events;
  run_to t1;
  !x

let simulate ?method_ ?rtol ?atol ?env ?injections ?sys ?ws ?cancel
    ?(thin = 1) ~t1 net =
  if thin < 1 then invalid_arg "Driver.simulate: thin must be >= 1";
  let trace = Trace.create ~names:(Crn.Network.species_names net) in
  let countdown = ref 0 in
  let record_boundary t x =
    Trace.record trace t x;
    countdown := thin - 1
  in
  let record_step t x =
    if !countdown <= 0 then record_boundary t x else decr countdown
  in
  let final =
    simulate_gen ~record_step ~record_boundary ?method_ ?rtol ?atol ?env
      ?injections ?sys ?ws ?cancel ~t1 net
  in
  (* always include the final state even when thinning dropped it *)
  if Trace.length trace = 0 || Trace.last_time trace < t1 then
    Trace.record trace t1 final;
  trace

let final_state ?method_ ?rtol ?atol ?env ?injections ?sys ?ws ?cancel ~t1 net
    =
  let drop _ _ = () in
  simulate_gen ~record_step:drop ~record_boundary:drop ?method_ ?rtol ?atol
    ?env ?injections ?sys ?ws ?cancel ~t1 net

type method_state =
  | Ck_dopri5 of Dopri5.checkpoint
  | Ck_rosenbrock of Rosenbrock.checkpoint
  | Ck_fixed of Fixed.checkpoint

type checkpoint = {
  ck_method : method_state;
  ck_countdown : int;
  ck_trace : Trace.t;
}

let copy_trace tr =
  let fresh = Trace.create ~names:(Trace.names tr) in
  Array.iteri
    (fun i t -> Trace.record fresh t (Trace.state_at_index tr i))
    (Trace.times tr);
  fresh

let simulate_ck ?(method_ = Dopri5) ?rtol ?atol ?(env = Crn.Rates.default_env)
    ?sys ?ws ?(cancel = Numeric.Cancel.never) ?(thin = 1) ?resume ?on_cancel
    ~t1 net =
  if thin < 1 then invalid_arg "Driver.simulate_ck: thin must be >= 1";
  let sys = match sys with Some s -> s | None -> Deriv.compile env net in
  (match ws with
  | Some w when w.w_n <> Deriv.dim sys ->
      invalid_arg "Driver: workspace dimension mismatch"
  | _ -> ());
  (match (resume, method_) with
  | Some { ck_method = Ck_dopri5 _; _ }, Dopri5
  | Some { ck_method = Ck_rosenbrock _; _ }, Rosenbrock
  | Some { ck_method = Ck_fixed _; _ }, Rk4 _
  | None, _ ->
      ()
  | Some _, _ -> invalid_arg "Driver.simulate_ck: checkpoint method mismatch");
  let trace =
    match resume with
    | Some ck -> copy_trace ck.ck_trace
    | None -> Trace.create ~names:(Crn.Network.species_names net)
  in
  let countdown =
    ref (match resume with Some ck -> ck.ck_countdown | None -> 0)
  in
  let record_boundary t x =
    Trace.record trace t x;
    countdown := thin - 1
  in
  let record_step t x =
    if !countdown <= 0 then record_boundary t x else decr countdown
  in
  (* only a fresh run skips the integrator's t0 echo (the manual initial
     record covers it); a resumed integrator emits no echo, so its first
     sample is a real accepted step that must be recorded *)
  let first = ref (Option.is_none resume) in
  let on_sample ts xs = if !first then first := false else record_step ts xs in
  let x0 = Crn.Network.initial_state net in
  if Option.is_none resume then record_boundary 0. x0;
  let driver_cancel wrap =
    Option.map
      (fun f mck ->
        f { ck_method = wrap mck; ck_countdown = !countdown; ck_trace = trace })
      on_cancel
  in
  let final =
    match method_ with
    | Dopri5 ->
        let rtol = Option.value ~default:1e-6 rtol
        and atol = Option.value ~default:1e-9 atol in
        let resume =
          match resume with
          | Some { ck_method = Ck_dopri5 c; _ } -> Some c
          | _ -> None
        in
        let x', _ =
          Dopri5.integrate ?ws:(dopri5_ws ws) ~rtol ~atol ~cancel ?resume
            ?on_cancel:(driver_cancel (fun c -> Ck_dopri5 c))
            ~t0:0. ~t1 ~on_sample sys x0
        in
        x'
    | Rosenbrock ->
        let rtol = Option.value ~default:1e-4 rtol
        and atol = Option.value ~default:1e-7 atol in
        let resume =
          match resume with
          | Some { ck_method = Ck_rosenbrock c; _ } -> Some c
          | _ -> None
        in
        let x', _ =
          Rosenbrock.integrate ?ws:(rosenbrock_ws ws) ~rtol ~atol ~cancel
            ?resume
            ?on_cancel:(driver_cancel (fun c -> Ck_rosenbrock c))
            ~t0:0. ~t1 ~on_sample sys x0
        in
        x'
    | Rk4 h ->
        let resume =
          match resume with
          | Some { ck_method = Ck_fixed c; _ } -> Some c
          | _ -> None
        in
        Fixed.integrate ~cancel ?resume
          ?on_cancel:(driver_cancel (fun c -> Ck_fixed c))
          ~step:Fixed.rk4_step ~h ~t0:0. ~t1 ~on_sample sys x0
  in
  if Trace.length trace = 0 || Trace.last_time trace < t1 then
    Trace.record trace t1 final;
  trace
