type stats = {
  steps : int;
  rejected : int;
  factorizations : int;
  jac_evals : int;
  jac_reused : int;
}

let gamma = 1. +. (1. /. sqrt 2.)

(* All per-integration storage, preallocatable by the caller so repeated
   integrations (sweep points, service requests) allocate nothing per
   run. Every array is fully (re)written before it is read — the state
   is blitted from [x0], the Jacobian matrix is zeroed wholesale at the
   start of [integrate] (so a workspace may even be reused across
   systems with different sparsity patterns), and the stage vectors are
   written by the stepper before use — so workspace reuse is
   bitwise-invisible in the results. *)
type workspace = {
  ws_n : int;
  ws_x : float array;
  ws_fx : float array;
  ws_jac : Numeric.Mat.t;
  ws_w : Numeric.Mat.t;
  ws_lu : Numeric.Lu.t;
  ws_k1 : float array;
  ws_k2 : float array;
  ws_x1 : float array;
  ws_rhs2 : float array;
  ws_xnew : float array;
}

let workspace n =
  if n < 1 then invalid_arg "Rosenbrock.workspace: n must be >= 1";
  {
    ws_n = n;
    ws_x = Array.make n 0.;
    ws_fx = Array.make n 0.;
    ws_jac = Numeric.Mat.create n n 0.;
    ws_w = Numeric.Mat.create n n 0.;
    ws_lu = Numeric.Lu.workspace n;
    ws_k1 = Array.make n 0.;
    ws_k2 = Array.make n 0.;
    ws_x1 = Array.make n 0.;
    ws_rhs2 = Array.make n 0.;
    ws_xnew = Array.make n 0.;
  }

(* ROS2 (Verwer et al.): with W = I - gamma h J,
     W k1 = f(x)
     W k2 = f(x + h k1) - 2 k1
     x' = x + (h/2) (3 k1 + k2)
   The first-order embedded solution x + h k1 yields the error estimate
   (h/2) (k1 + k2).

   All per-step storage — the Jacobian, W, the LU workspace, and the
   stage vectors — is allocated once up front: the Jacobian is written
   in place over its sparsity pattern ({!Deriv.jacobian_into}) and W is
   refactored into a reused {!Numeric.Lu} workspace. The Jacobian
   depends only on the state, so after a step-size rejection (state
   unchanged, only h shrank) it is reused rather than rebuilt;
   [jac_reused] counts the rebuilds saved that way, while
   [factorizations] counts actual LU factorizations of W (which must be
   redone whenever h changes, since W depends on h). *)
(* Loop-top mid-run state. The Jacobian matrix itself is not captured:
   it depends only on [x], so when [ck_jac_fresh] says the interrupted
   run held a current factorization-input, resume rebuilds it from the
   restored state — bitwise the same matrix — without touching the
   [jac_evals]/[jac_reused] counters (they are restored verbatim). *)
type checkpoint = {
  ck_t : float;
  ck_x : float array;
  ck_h : float;
  ck_steps : int;
  ck_rejected : int;
  ck_factorizations : int;
  ck_jac_evals : int;
  ck_jac_reused : int;
  ck_jac_fresh : bool;
}

let integrate ?(rtol = 1e-4) ?(atol = 1e-7) ?h0 ?(max_steps = 5_000_000)
    ?(cancel = Numeric.Cancel.never) ?ws ?resume ?on_cancel ~t0 ~t1 ~on_sample
    sys x0 =
  if t1 < t0 then invalid_arg "Rosenbrock.integrate: t1 < t0";
  let n = Deriv.dim sys in
  let ws =
    match ws with
    | Some ws ->
        if ws.ws_n <> n then
          invalid_arg "Rosenbrock.integrate: workspace dimension mismatch";
        (* jacobian_into only rewrites the system's sparsity pattern; a
           workspace that previously served a different system may hold
           stale entries off this pattern, so clear the matrix outright *)
        Array.iter (fun row -> Array.fill row 0 n 0.) ws.ws_jac;
        ws
    | None -> workspace n
  in
  let x = ws.ws_x in
  Numeric.Vec.blit ~src:x0 ~dst:x;
  let fx = ws.ws_fx in
  let jac = ws.ws_jac in
  let w = ws.ws_w in
  let lu = ws.ws_lu in
  let k1 = ws.ws_k1 in
  let k2 = ws.ws_k2 in
  let x1 = ws.ws_x1 in
  let rhs2 = ws.ws_rhs2 in
  let xnew = ws.ws_xnew in
  let t = ref t0 in
  let h = ref (match h0 with Some h -> h | None -> (t1 -. t0) /. 100.) in
  let steps = ref 0 and rejected = ref 0 and factorizations = ref 0 in
  let jac_evals = ref 0 and jac_reused = ref 0 in
  let jac_fresh = ref false in
  (match resume with
  | None -> on_sample !t x
  | Some ck ->
      if Array.length ck.ck_x <> n then
        invalid_arg "Rosenbrock.integrate: checkpoint dimension mismatch";
      Numeric.Vec.blit ~src:ck.ck_x ~dst:x;
      t := ck.ck_t;
      h := ck.ck_h;
      steps := ck.ck_steps;
      rejected := ck.ck_rejected;
      factorizations := ck.ck_factorizations;
      jac_evals := ck.ck_jac_evals;
      jac_reused := ck.ck_jac_reused;
      if ck.ck_jac_fresh then begin
        Deriv.jacobian_into sys x jac;
        jac_fresh := true
      end);
  let capture () =
    {
      ck_t = !t;
      ck_x = Array.copy x;
      ck_h = !h;
      ck_steps = !steps;
      ck_rejected = !rejected;
      ck_factorizations = !factorizations;
      ck_jac_evals = !jac_evals;
      ck_jac_reused = !jac_reused;
      ck_jac_fresh = !jac_fresh;
    }
  in
  while !t < t1 -. 1e-12 do
    (try Numeric.Cancel.guard cancel
     with Numeric.Cancel.Cancelled ->
       (match on_cancel with Some f -> f (capture ()) | None -> ());
       raise Numeric.Cancel.Cancelled);
    if !steps >= max_steps then
      Solver_error.raise_ ~solver:"Rosenbrock" ~t:!t
        (Solver_error.Max_steps max_steps);
    if !h < 1e-14 *. Float.max 1. (Float.abs !t) then
      Solver_error.raise_ ~solver:"Rosenbrock" ~t:!t Solver_error.Step_underflow;
    let hh = Float.min !h (t1 -. !t) in
    if !jac_fresh then incr jac_reused
    else begin
      Deriv.jacobian_into sys x jac;
      incr jac_evals;
      jac_fresh := true
    end;
    for i = 0 to n - 1 do
      let wi = w.(i) and ji = jac.(i) in
      for j = 0 to n - 1 do
        wi.(j) <- (if i = j then 1. else 0.) -. (gamma *. hh *. ji.(j))
      done
    done;
    (match Numeric.Lu.refactor lu w with
    | exception Numeric.Lu.Singular ->
        (* halve the step: a singular W means gamma*h*J hit an eigenvalue *)
        h := hh /. 2.;
        incr rejected
    | () ->
        incr factorizations;
        Deriv.f sys !t x fx;
        Numeric.Lu.solve_into lu fx k1;
        Numeric.Vec.blit ~src:x ~dst:x1;
        Numeric.Vec.axpy hh k1 x1;
        Deriv.f sys (!t +. hh) x1 fx;
        for i = 0 to n - 1 do
          rhs2.(i) <- fx.(i) -. (2. *. k1.(i))
        done;
        Numeric.Lu.solve_into lu rhs2 k2;
        for i = 0 to n - 1 do
          xnew.(i) <- x.(i) +. (hh /. 2. *. ((3. *. k1.(i)) +. k2.(i)))
        done;
        let err =
          let acc = ref 0. in
          for i = 0 to n - 1 do
            let e = hh /. 2. *. (k1.(i) +. k2.(i)) in
            let sc =
              atol +. (rtol *. Float.max (Float.abs x.(i)) (Float.abs xnew.(i)))
            in
            let r = e /. sc in
            acc := !acc +. (r *. r)
          done;
          sqrt (!acc /. float_of_int n)
        in
        if err <= 1. then begin
          t := !t +. hh;
          Numeric.Vec.clamp_nonneg xnew;
          Numeric.Vec.blit ~src:xnew ~dst:x;
          jac_fresh := false;
          incr steps;
          on_sample !t x
        end
        else incr rejected;
        let factor =
          if err = 0. then 3.
          else Float.min 3. (Float.max 0.2 (0.9 /. sqrt err))
        in
        h := hh *. factor)
  done;
  ( Array.copy x,
    {
      steps = !steps;
      rejected = !rejected;
      factorizations = !factorizations;
      jac_evals = !jac_evals;
      jac_reused = !jac_reused;
    } )
