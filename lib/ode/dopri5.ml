type stats = { steps : int; rejected : int; evals : int }

(* Dormand-Prince 5(4) Butcher tableau *)
let c2 = 0.2
let c3 = 0.3
let c4 = 0.8
let c5 = 8. /. 9.

let a21 = 0.2
let a31 = 3. /. 40.
let a32 = 9. /. 40.
let a41 = 44. /. 45.
let a42 = -56. /. 15.
let a43 = 32. /. 9.
let a51 = 19372. /. 6561.
let a52 = -25360. /. 2187.
let a53 = 64448. /. 6561.
let a54 = -212. /. 729.
let a61 = 9017. /. 3168.
let a62 = -355. /. 33.
let a63 = 46732. /. 5247.
let a64 = 49. /. 176.
let a65 = -5103. /. 18656.

(* 5th-order solution weights, which also form the seventh tableau row *)
let b1 = 35. /. 384.
let b3 = 500. /. 1113.
let b4 = 125. /. 192.
let b5 = -2187. /. 6784.
let b6 = 11. /. 84.

(* difference between 5th- and 4th-order weights, for the error estimate *)
let e1 = b1 -. (5179. /. 57600.)
let e3 = b3 -. (7571. /. 16695.)
let e4 = b4 -. (393. /. 640.)
let e5 = b5 -. (-92097. /. 339200.)
let e6 = b6 -. (187. /. 2100.)
let e7 = -1. /. 40.

let initial_step sys t0 x0 rtol atol =
  (* standard cheap heuristic: h ~ 0.01 * |x| / |f| in the tolerance norm *)
  let f0 = Deriv.eval sys x0 in
  ignore t0;
  let wnorm v =
    let n = Array.length v in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let sc = atol +. (rtol *. Float.abs x0.(i)) in
      let r = v.(i) /. sc in
      acc := !acc +. (r *. r)
    done;
    sqrt (!acc /. float_of_int n)
  in
  let d0 = wnorm x0 and d1 = wnorm f0 in
  if d0 < 1e-5 || d1 < 1e-5 then 1e-6 else 0.01 *. (d0 /. d1)

(* All per-integration storage, preallocatable by the caller so repeated
   integrations allocate nothing per run. Every array is fully rewritten
   before it is read (the state is blitted from [x0], each stage vector
   is written by [eval] before use), so workspace reuse is
   bitwise-invisible in the results. The FSAL pointer swap only
   exchanges which array plays k1 vs k7 within one run; each new run
   re-seeds both refs from the workspace fields and overwrites k1
   immediately. *)
type workspace = {
  ws_n : int;
  ws_x : float array;
  ws_k1 : float array;
  ws_k2 : float array;
  ws_k3 : float array;
  ws_k4 : float array;
  ws_k5 : float array;
  ws_k6 : float array;
  ws_k7 : float array;
  ws_tmp : float array;
  ws_xnew : float array;
}

let workspace n =
  if n < 1 then invalid_arg "Dopri5.workspace: n must be >= 1";
  {
    ws_n = n;
    ws_x = Array.make n 0.;
    ws_k1 = Array.make n 0.;
    ws_k2 = Array.make n 0.;
    ws_k3 = Array.make n 0.;
    ws_k4 = Array.make n 0.;
    ws_k5 = Array.make n 0.;
    ws_k6 = Array.make n 0.;
    ws_k7 = Array.make n 0.;
    ws_tmp = Array.make n 0.;
    ws_xnew = Array.make n 0.;
  }

(* Loop-top mid-run state. [ck_k1] must be saved, not recomputed: FSAL
   hands the next step the seventh-stage evaluation, which was taken at
   the {e unclamped} new state — after clamping, [f t x] can differ from
   it, so a recomputation would fork the trajectory. *)
type checkpoint = {
  ck_t : float;
  ck_x : float array;
  ck_h : float;
  ck_k1 : float array;
  ck_steps : int;
  ck_rejected : int;
  ck_evals : int;
}

let integrate ?(rtol = 1e-6) ?(atol = 1e-9) ?h0 ?(max_steps = 10_000_000)
    ?(cancel = Numeric.Cancel.never) ?ws ?resume ?on_cancel ~t0 ~t1 ~on_sample
    sys x0 =
  if t1 < t0 then invalid_arg "Dopri5.integrate: t1 < t0";
  let n = Deriv.dim sys in
  let ws =
    match ws with
    | Some ws ->
        if ws.ws_n <> n then
          invalid_arg "Dopri5.integrate: workspace dimension mismatch";
        ws
    | None -> workspace n
  in
  let x = ws.ws_x in
  Numeric.Vec.blit ~src:x0 ~dst:x;
  (* k1 and k7 are swapped on acceptance (FSAL: the last stage of an
     accepted step evaluates f at the new state, which is exactly the
     first stage of the next step), so both live in refs *)
  let rk1 = ref ws.ws_k1 in
  let k2 = ws.ws_k2 in
  let k3 = ws.ws_k3 in
  let k4 = ws.ws_k4 in
  let k5 = ws.ws_k5 in
  let k6 = ws.ws_k6 in
  let rk7 = ref ws.ws_k7 in
  let tmp = ws.ws_tmp in
  let xnew = ws.ws_xnew in
  let evals = ref 0 in
  let eval t y k =
    incr evals;
    Deriv.f sys t y k
  in
  let t = ref t0 in
  let h = ref (match h0 with Some h -> h | None -> initial_step sys t0 x rtol atol) in
  let steps = ref 0 and rejected = ref 0 in
  (match resume with
  | None ->
      on_sample !t x;
      eval !t x !rk1 (* FSAL seed: the only stage-1 evaluation of the run *)
  | Some ck ->
      if Array.length ck.ck_x <> n || Array.length ck.ck_k1 <> n then
        invalid_arg "Dopri5.integrate: checkpoint dimension mismatch";
      Numeric.Vec.blit ~src:ck.ck_x ~dst:x;
      Numeric.Vec.blit ~src:ck.ck_k1 ~dst:!rk1;
      t := ck.ck_t;
      h := ck.ck_h;
      steps := ck.ck_steps;
      rejected := ck.ck_rejected;
      evals := ck.ck_evals);
  let capture () =
    {
      ck_t = !t;
      ck_x = Array.copy x;
      ck_h = !h;
      ck_k1 = Array.copy !rk1;
      ck_steps = !steps;
      ck_rejected = !rejected;
      ck_evals = !evals;
    }
  in
  while !t < t1 -. 1e-12 do
    (try Numeric.Cancel.guard cancel
     with Numeric.Cancel.Cancelled ->
       (match on_cancel with Some f -> f (capture ()) | None -> ());
       raise Numeric.Cancel.Cancelled);
    if !steps >= max_steps then
      Solver_error.raise_ ~solver:"Dopri5" ~t:!t
        (Solver_error.Max_steps max_steps);
    if !h < 1e-14 *. Float.max 1. (Float.abs !t) then
      Solver_error.raise_ ~solver:"Dopri5" ~t:!t Solver_error.Step_underflow;
    let hh = Float.min !h (t1 -. !t) in
    let k1 = !rk1 and k7 = !rk7 in
    let stage coeffs k_out c =
      for i = 0 to n - 1 do
        let acc = ref 0. in
        List.iter (fun (a, (k : float array)) -> acc := !acc +. (a *. k.(i))) coeffs;
        tmp.(i) <- x.(i) +. (hh *. !acc)
      done;
      eval (!t +. (c *. hh)) tmp k_out
    in
    stage [ (a21, k1) ] k2 c2;
    stage [ (a31, k1); (a32, k2) ] k3 c3;
    stage [ (a41, k1); (a42, k2); (a43, k3) ] k4 c4;
    stage [ (a51, k1); (a52, k2); (a53, k3); (a54, k4) ] k5 c5;
    stage [ (a61, k1); (a62, k2); (a63, k3); (a64, k4); (a65, k5) ] k6 1.;
    (* 5th-order solution (b2 = b7 = 0) *)
    for i = 0 to n - 1 do
      xnew.(i) <-
        x.(i)
        +. hh
           *. ((b1 *. k1.(i)) +. (b3 *. k3.(i)) +. (b4 *. k4.(i))
              +. (b5 *. k5.(i)) +. (b6 *. k6.(i)))
    done;
    eval (!t +. hh) xnew k7;
    (* weighted RMS error norm *)
    let err =
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let e =
          hh
          *. ((e1 *. k1.(i)) +. (e3 *. k3.(i)) +. (e4 *. k4.(i))
             +. (e5 *. k5.(i)) +. (e6 *. k6.(i)) +. (e7 *. k7.(i)))
        in
        let sc =
          atol +. (rtol *. Float.max (Float.abs x.(i)) (Float.abs xnew.(i)))
        in
        let r = e /. sc in
        acc := !acc +. (r *. r)
      done;
      sqrt (!acc /. float_of_int n)
    in
    if err <= 1. then begin
      t := !t +. hh;
      Numeric.Vec.clamp_nonneg xnew;
      Numeric.Vec.blit ~src:xnew ~dst:x;
      (* FSAL: swap the buffers so k7 becomes the next step's k1 — a
         pointer exchange, not a copy *)
      rk1 := k7;
      rk7 := k1;
      incr steps;
      on_sample !t x
    end
    else incr rejected;
    let factor =
      if err = 0. then 5.
      else Float.min 5. (Float.max 0.2 (0.9 *. (err ** -0.2)))
    in
    h := hh *. factor
  done;
  (Array.copy x, { steps = !steps; rejected = !rejected; evals = !evals })
