let map ?pool ?jobs ?chunk ?oversubscribe f points =
  let n = Array.length points in
  if n = 0 then [||]
  else
    Numeric.Domain_pool.run ?pool ?jobs ?chunk ?oversubscribe ~tasks:n
      (fun i -> f points.(i))

let map_with ?pool ?jobs ?chunk ?oversubscribe ~init_worker f points =
  let n = Array.length points in
  if n = 0 then [||]
  else
    Numeric.Domain_pool.run_worker ?pool ?jobs ?chunk ?oversubscribe
      ~init_worker ~tasks:n (fun w i -> f w points.(i))

let final_states ?pool ?jobs ?chunk ?oversubscribe ?method_ ?rtol ?atol
    ?injections ?cancel ~t1 net ~ratios =
  (* compile the network once under the default environment; each point
     re-bakes only the rate constants (Deriv.with_env shares all the
     structural arrays), and each worker domain reuses one integrator
     workspace across every point scheduled onto it *)
  let base = Deriv.compile Crn.Rates.default_env net in
  let n = Deriv.dim base in
  map_with ?pool ?jobs ?chunk ?oversubscribe
    ~init_worker:(fun () -> Driver.workspace ~n)
    (fun ws ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      let sys = Deriv.with_env base env in
      Driver.final_state ?method_ ?rtol ?atol ~env ?injections ~sys ~ws
        ?cancel ~t1 net)
    ratios
