let map ?jobs f points =
  let n = Array.length points in
  if n = 0 then [||]
  else Numeric.Domain_pool.run ?jobs ~tasks:n (fun i -> f points.(i))

let final_states ?jobs ?method_ ?rtol ?atol ?injections ?cancel ~t1 net
    ~ratios =
  map ?jobs
    (fun ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      Driver.final_state ?method_ ?rtol ?atol ~env ?injections ?cancel ~t1 net)
    ratios
