(** Adaptive Dormand–Prince 5(4) explicit Runge–Kutta integrator.

    The workhorse integrator for the paper's ODE validations: embedded
    4th-order error estimate, PI-free standard step controller, FSAL
    (first-same-as-last) evaluation reuse. For very stiff rate separations
    ([k_fast/k_slow >= 1e5]) prefer {!Rosenbrock}. *)

type stats = { steps : int; rejected : int; evals : int }
(** [evals] counts RHS evaluations. FSAL makes each attempted step cost
    exactly six evaluations (stages 2–7; stage 1 is the previous step's
    stage 7, exchanged by pointer swap), so a completed run satisfies
    [evals = 1 + 6 * (steps + rejected)] — the [1] is the seed
    evaluation before the first step. *)

type workspace
(** All per-integration storage (state copy, the seven stage vectors,
    scratch), preallocatable so repeated integrations allocate nothing
    per run. Reuse is bitwise-invisible: every array is fully rewritten
    before it is read. Not thread-safe — one workspace per domain. *)

val workspace : int -> workspace
(** [workspace n] preallocates for [n]-dimensional systems. Raises
    [Invalid_argument] if [n < 1]. *)

type checkpoint = {
  ck_t : float;
  ck_x : float array;
  ck_h : float;
  ck_k1 : float array;
  ck_steps : int;
  ck_rejected : int;
  ck_evals : int;
}
(** Loop-top mid-run state. [ck_k1] carries the FSAL stage — the
    seventh-stage evaluation of the last accepted step, taken at the
    {e unclamped} new state. It cannot be recomputed from the clamped
    [ck_x], so it is saved; with it, a resumed run's trajectory is
    bitwise identical to an uninterrupted one. *)

val integrate :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?cancel:Numeric.Cancel.t ->
  ?ws:workspace ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t0:float ->
  t1:float ->
  on_sample:(float -> Numeric.Vec.t -> unit) ->
  Deriv.t ->
  Numeric.Vec.t ->
  Numeric.Vec.t * stats
(** Integrate from [t0] to [t1] starting at the given state. [on_sample]
    fires at the initial point and after every accepted step. Raises
    {!Solver_error.Error} if the step count is exhausted or the step
    size underflows (stiffness signal), and {!Numeric.Cancel.Cancelled}
    when [cancel] (polled once per attempted step, default
    {!Numeric.Cancel.never}) fires. Defaults: [rtol = 1e-6],
    [atol = 1e-9], [h0] chosen automatically, [max_steps = 10_000_000].
    [ws] supplies a preallocated {!workspace} (its dimension must equal
    the system's — [Invalid_argument] otherwise); without it one is
    allocated per call. [resume] restores a {!checkpoint} instead of
    starting at [x0] (the initial [on_sample] and FSAL seed evaluation
    are then suppressed); [on_cancel] receives the loop-top checkpoint
    when [cancel] aborts the run. *)
