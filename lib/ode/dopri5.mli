(** Adaptive Dormand–Prince 5(4) explicit Runge–Kutta integrator.

    The workhorse integrator for the paper's ODE validations: embedded
    4th-order error estimate, PI-free standard step controller, FSAL
    (first-same-as-last) evaluation reuse. For very stiff rate separations
    ([k_fast/k_slow >= 1e5]) prefer {!Rosenbrock}. *)

type stats = { steps : int; rejected : int; evals : int }
(** [evals] counts RHS evaluations. FSAL makes each attempted step cost
    exactly six evaluations (stages 2–7; stage 1 is the previous step's
    stage 7, exchanged by pointer swap), so a completed run satisfies
    [evals = 1 + 6 * (steps + rejected)] — the [1] is the seed
    evaluation before the first step. *)

type workspace
(** All per-integration storage (state copy, the seven stage vectors,
    scratch), preallocatable so repeated integrations allocate nothing
    per run. Reuse is bitwise-invisible: every array is fully rewritten
    before it is read. Not thread-safe — one workspace per domain. *)

val workspace : int -> workspace
(** [workspace n] preallocates for [n]-dimensional systems. Raises
    [Invalid_argument] if [n < 1]. *)

val integrate :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?cancel:Numeric.Cancel.t ->
  ?ws:workspace ->
  t0:float ->
  t1:float ->
  on_sample:(float -> Numeric.Vec.t -> unit) ->
  Deriv.t ->
  Numeric.Vec.t ->
  Numeric.Vec.t * stats
(** Integrate from [t0] to [t1] starting at the given state. [on_sample]
    fires at the initial point and after every accepted step. Raises
    {!Solver_error.Error} if the step count is exhausted or the step
    size underflows (stiffness signal), and {!Numeric.Cancel.Cancelled}
    when [cancel] (polled once per attempted step, default
    {!Numeric.Cancel.never}) fires. Defaults: [rtol = 1e-6],
    [atol = 1e-9], [h0] chosen automatically, [max_steps = 10_000_000].
    [ws] supplies a preallocated {!workspace} (its dimension must equal
    the system's — [Invalid_argument] otherwise); without it one is
    allocated per call. *)
