(** Top-level simulation driver.

    Wraps network compilation, integrator choice, and timed injections
    (instantaneous additions of a quantity of some species — how the
    sequential-design experiments present inputs to counters and filters),
    and records the trajectory into a {!Trace.t}. *)

type method_ =
  | Dopri5  (** adaptive explicit, the default *)
  | Rosenbrock  (** semi-implicit, for stiff rate separations *)
  | Rk4 of float  (** fixed-step reference, with the given step size *)

type injection = { at : float; species : string; amount : float }
(** At time [at], add [amount] to [species] (a molecular event such as an
    input arriving). *)

(** [rtol]/[atol] default per method: 1e-6/1e-9 for {!Dopri5},
    1e-4/1e-7 for {!Rosenbrock} (whose embedded error estimate is
    conservative). *)

type workspace
(** Reusable integrator scratch for repeated driver calls on systems of
    one dimension (sweep points, service requests): holds the
    {!Dopri5}/{!Rosenbrock} workspaces, built lazily per method on first
    use. Reuse is bitwise-invisible in results. Not thread-safe — one
    workspace per domain (see {!Sweep.final_states}). *)

val workspace : n:int -> workspace
(** [workspace ~n] prepares scratch for [n]-species systems. Raises
    [Invalid_argument] if [n < 1]. *)

val simulate :
  ?method_:method_ ->
  ?rtol:float ->
  ?atol:float ->
  ?env:Crn.Rates.env ->
  ?injections:injection list ->
  ?sys:Deriv.t ->
  ?ws:workspace ->
  ?cancel:Numeric.Cancel.t ->
  ?thin:int ->
  t1:float ->
  Crn.Network.t ->
  Trace.t
(** Simulate from time [0.] to [t1], starting from the network's initial
    state. Injections are applied in time order (those at or after [t1] are
    ignored); the trace records both the pre- and post-injection states.
    [thin] (default 1) records only every n-th accepted integrator step —
    stiff clocked designs take hundreds of thousands of steps and the
    analysis layers interpolate anyway; segment boundaries are always
    recorded. [sys] supplies an already-compiled model (it must come from
    [Deriv.compile env net] for the same [env] and [net] — the simulation
    service's compiled-model cache uses this to skip recompilation);
    [ws] supplies a reusable integrator {!workspace} (its dimension must
    match the system's — [Invalid_argument] otherwise); [cancel]
    (default {!Numeric.Cancel.never}) is polled each integrator step and
    aborts the run with {!Numeric.Cancel.Cancelled}. Raises
    [Invalid_argument] for an unknown injection species, a negative
    injection time, or [thin < 1]. *)

(** Integrator-specific mid-run state, wrapped so a {!checkpoint} can
    name which method it belongs to. *)
type method_state =
  | Ck_dopri5 of Dopri5.checkpoint
  | Ck_rosenbrock of Rosenbrock.checkpoint
  | Ck_fixed of Fixed.checkpoint

type checkpoint = {
  ck_method : method_state;
  ck_countdown : int;  (** thinning countdown at the capture point *)
  ck_trace : Trace.t;  (** everything recorded so far *)
}
(** Mid-run driver state. Holds only the dynamic part — the caller must
    resume with the same network, environment, method, tolerances and
    [thin] for the continuation to be bitwise identical to an
    uninterrupted run. *)

val simulate_ck :
  ?method_:method_ ->
  ?rtol:float ->
  ?atol:float ->
  ?env:Crn.Rates.env ->
  ?sys:Deriv.t ->
  ?ws:workspace ->
  ?cancel:Numeric.Cancel.t ->
  ?thin:int ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  Trace.t
(** Checkpointable variant of {!simulate}. Injections are not supported
    (a checkpoint must be resumable as a single segment); everything
    else matches {!simulate}. [on_cancel] receives the loop-top
    {!checkpoint} when [cancel] aborts the run (the
    {!Numeric.Cancel.Cancelled} exception still propagates); [resume]
    restores one, continuing the trace and thinning stream exactly where
    the capture left off. Raises [Invalid_argument] if the checkpoint's
    method state does not match [method_]. *)

val final_state :
  ?method_:method_ ->
  ?rtol:float ->
  ?atol:float ->
  ?env:Crn.Rates.env ->
  ?injections:injection list ->
  ?sys:Deriv.t ->
  ?ws:workspace ->
  ?cancel:Numeric.Cancel.t ->
  t1:float ->
  Crn.Network.t ->
  Numeric.Vec.t
(** As {!simulate} but returning only the final state (cheaper: the
    trajectory is not recorded). *)
