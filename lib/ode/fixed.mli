(** Fixed-step explicit integrators (forward Euler and classic RK4).

    Mainly reference implementations: tests cross-check the adaptive
    integrators against RK4 with a tiny step, and the benchmark harness uses
    them to measure raw step throughput. *)

val euler_step : Deriv.t -> float -> Numeric.Vec.t -> float -> Numeric.Vec.t
(** [euler_step sys t x h] is the state after one explicit Euler step. *)

val rk4_step : Deriv.t -> float -> Numeric.Vec.t -> float -> Numeric.Vec.t
(** One classic Runge–Kutta-4 step. *)

type checkpoint = { ck_t : float; ck_x : float array }
(** Loop-top mid-run state. The stepper keeps nothing between steps, so
    time and state fully determine the rest of the trajectory; resuming
    continues bitwise-identically to an uninterrupted run. *)

val integrate :
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  step:(Deriv.t -> float -> Numeric.Vec.t -> float -> Numeric.Vec.t) ->
  h:float ->
  t0:float ->
  t1:float ->
  on_sample:(float -> Numeric.Vec.t -> unit) ->
  Deriv.t ->
  Numeric.Vec.t ->
  Numeric.Vec.t
(** Repeatedly apply a step function from [t0] to [t1] (final partial step
    shortened to land exactly on [t1]); [on_sample] fires at every step
    including the initial state. Negative round-off undershoots are clamped
    to zero. Returns the final state. Raises [Invalid_argument] if
    [h <= 0.] or [t1 < t0]. [resume] restores a {!checkpoint} instead of
    starting at [x0] (the initial [on_sample] is then suppressed — the
    resumed run continues the sample stream, it does not restart it);
    [on_cancel] receives the loop-top checkpoint when [cancel] aborts. *)
