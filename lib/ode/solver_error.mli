(** Structured non-convergence errors from the adaptive steppers.

    {!Dopri5} and {!Rosenbrock} raise {!Error} (instead of a bare
    [Failure]) when they exhaust their step budget or the step size
    underflows, so callers — the [crnsim] tool, the simulation service —
    can map solver failure to a clean one-line message and a stable
    error code rather than an uncaught-exception backtrace. *)

type reason =
  | Max_steps of int  (** the step budget was exhausted *)
  | Step_underflow  (** the step shrank below resolvable precision *)

type t = {
  solver : string;  (** ["Dopri5"] or ["Rosenbrock"] *)
  reason : reason;
  t : float;  (** integration time reached when the solver gave up *)
}

exception Error of t

val to_string : t -> string

val raise_ : solver:string -> t:float -> reason -> 'a
