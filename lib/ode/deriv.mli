(** Mass-action right-hand sides.

    Compiles a {!Crn.Network.t} under a rate environment into the vector
    field of its deterministic mass-action kinetics:
    [dx_s/dt = sum_r nu_rs * k_r * prod_i x_i^(c_ri)], plus its analytic
    Jacobian for the semi-implicit integrator.

    The compiled form is CSR-style flat arrays — contiguous int/float
    arrays of reactant indices/coefficients and net-stoichiometry updates
    delimited by per-reaction offsets — walked with unchecked accesses,
    so the inner simulation loop allocates nothing and chases no
    per-reaction pointers. {!Reference} retains the original boxed-record
    implementation with identical arithmetic ordering; the test suite
    checks the flat kernel against it bitwise, and [bench_ode] measures
    the speedup. *)

type t

val compile : Crn.Rates.env -> Crn.Network.t -> t

val with_env : t -> Crn.Rates.env -> t
(** [with_env sys env] re-bakes only the rate constants under [env],
    sharing every structural array (CSR indices, stoichiometry, Jacobian
    pattern) with [sys] — bitwise-equivalent to recompiling the network
    under [env], at the cost of one small float array. Parameter sweeps
    compile the network once and derive each point's system this way. *)

val with_k : t -> float array -> t
(** [with_k sys k] replaces the baked rate constants with [k] (length
    {!n_reactions}; the array is copied), sharing every structural array
    like {!with_env}. This is how the hybrid engine restricts the vector
    field to its fast partition: take {!rate_constants}, zero the slow
    reactions' entries, re-bake. *)

val rate_constants : t -> float array
(** A copy of the currently baked per-reaction rate constants, indexed in
    reaction-compilation order (the {!flux} index order). *)

(** Transparent copy of every compiled array, for the snapshot codec.
    {!of_raw} rebuilds a system without recompiling — a warm-loaded
    system is byte-identical to the one that was saved. *)
type raw = {
  raw_n : int;
  raw_nr : int;
  raw_k : float array;
  raw_rates : Crn.Rates.t array;
  raw_r_off : int array;
  raw_r_sp : int array;
  raw_r_co : int array;
  raw_s_off : int array;
  raw_s_sp : int array;
  raw_s_co : float array;
  raw_jac_rows : int array;
  raw_jac_cols : int array;
}

val to_raw : t -> raw
val of_raw : raw -> t
(** Raises [Invalid_argument] when the array shapes are inconsistent. *)

val dim : t -> int
(** Number of species. *)

val f : t -> float -> Numeric.Vec.t -> Numeric.Vec.t -> unit
(** [f sys t x dx] writes the derivative of state [x] into [dx] (mass-action
    kinetics are autonomous; [t] is accepted for interface uniformity). *)

val eval : t -> Numeric.Vec.t -> Numeric.Vec.t
(** Allocating convenience wrapper around {!f}. *)

val jacobian : t -> Numeric.Vec.t -> Numeric.Mat.t
(** Analytic Jacobian [d f_i / d x_j] at a state. *)

val jacobian_into : t -> Numeric.Vec.t -> Numeric.Mat.t -> unit
(** [jacobian_into sys x jac] writes the Jacobian at [x] into [jac]
    without allocating: only the entries of the precomputed sparsity
    pattern are zeroed and re-accumulated, so a caller-held matrix whose
    remaining entries are zero (e.g. fresh from [Mat.create n n 0.])
    stays correct across repeated calls. The semi-implicit integrator
    reuses one matrix for the whole integration this way. *)

val jac_nnz : t -> int
(** Number of structurally non-zero Jacobian entries (the sparsity
    pattern's size). *)

val flux : t -> Numeric.Vec.t -> int -> float
(** Instantaneous flux of reaction [i] at a state (for diagnostics). *)

val n_reactions : t -> int

(** The retained pre-optimization implementation: an array of boxed
    per-reaction records, walked with bounds-checked accesses. Same
    compilation order and arithmetic ordering as the flat kernel, so
    results agree bitwise; kept as the qcheck/golden oracle and the
    benchmark baseline. *)
module Reference : sig
  type t

  val compile : Crn.Rates.env -> Crn.Network.t -> t
  val dim : t -> int
  val f : t -> float -> Numeric.Vec.t -> Numeric.Vec.t -> unit
  val jacobian : t -> Numeric.Vec.t -> Numeric.Mat.t
end
