type issue =
  | Unused_species of int
  | Never_produced of int
  | Never_consumed of int
  | High_order of int * int
  | Duplicate_reaction of int * int
  | No_op_reaction of int
  | Fractional_init of int

let check net =
  let n = Network.n_species net in
  let rs = Network.reactions net in
  let used = Array.make n false in
  let produced = Array.make n false in
  let consumed = Array.make n false in
  Array.iter
    (fun r ->
      List.iter
        (fun (s, _) ->
          used.(s) <- true;
          consumed.(s) <- true)
        r.Reaction.reactants;
      List.iter
        (fun (s, _) ->
          used.(s) <- true;
          produced.(s) <- true)
        r.Reaction.products)
    rs;
  let issues = ref [] in
  let add i = issues := i :: !issues in
  Array.iteri
    (fun j r ->
      if Reaction.order r > 2 then add (High_order (j, Reaction.order r));
      if Reaction.net_stoich r = [] then add (No_op_reaction j))
    rs;
  for j = 0 to Array.length rs - 1 do
    for k = j + 1 to Array.length rs - 1 do
      if Reaction.equal rs.(j) rs.(k) then add (Duplicate_reaction (j, k))
    done
  done;
  for s = 0 to n - 1 do
    if not used.(s) then add (Unused_species s)
    else begin
      if consumed.(s) && (not produced.(s)) && Network.init_of net s = 0.
      then add (Never_produced s);
      if produced.(s) && not consumed.(s) then add (Never_consumed s)
    end;
    let x = Network.init_of net s in
    if x <> Float.round x then add (Fractional_init s)
  done;
  List.rev !issues

let is_dsd_compilable net =
  Array.for_all (fun r -> Reaction.order r <= 2) (Network.reactions net)

let pp_issue net fmt issue =
  let name s = Network.species_name net s in
  match issue with
  | Unused_species s -> Format.fprintf fmt "unused species %s" (name s)
  | Never_produced s ->
      Format.fprintf fmt
        "species %s is consumed but never produced and starts at 0" (name s)
  | Never_consumed s ->
      Format.fprintf fmt "species %s is produced but never consumed" (name s)
  | High_order (j, o) ->
      Format.fprintf fmt "reaction #%d has molecularity %d (> 2)" j o
  | Duplicate_reaction (j, k) ->
      Format.fprintf fmt "reactions #%d and #%d are identical" j k
  | No_op_reaction j ->
      Format.fprintf fmt "reaction #%d has identically zero net stoichiometry"
        j
  | Fractional_init s ->
      Format.fprintf fmt
        "species %s starts at the non-integer count %g" (name s)
        (Network.init_of net s)

let report net =
  match check net with
  | [] -> ""
  | issues ->
      Format.asprintf "@[<v>%a@]"
        (Format.pp_print_list (pp_issue net))
        issues
