(** Structural equivalence of networks up to species renaming.

    Two networks are {e isomorphic} when some bijection of species maps one
    network's reaction multiset (with rates and initial concentrations)
    exactly onto the other's. This is the natural "same design" relation
    for synthesized networks: synthesis must be deterministic modulo the
    names it generates, and independently constructed instances of the same
    block must match.

    The decision procedure is individualization–refinement (the standard
    graph-canonicalization approach): species are partitioned by an
    iteratively refined color based on initial concentration and on the
    multiset of colored reaction signatures they participate in; remaining
    symmetric classes are broken by individualizing one candidate pair at a
    time and re-refining, with backtracking. Exact, and fast on the
    structured networks this library produces (symmetries are rare once
    initial conditions are colored); worst-case exponential like all known
    isomorphism algorithms. *)

val isomorphic : Network.t -> Network.t -> bool

val fingerprint : Network.t -> string
(** A renaming-invariant digest (the stable refinement's class profile plus
    the color-labelled reaction multiset). Colors are the sorted ranks of
    their signature strings, so the digest is also invariant under species
    index order and reaction order — re-serializing and re-parsing a
    network preserves it. Equal fingerprints do {e not} prove isomorphism
    (symmetric networks can collide), but different fingerprints disprove
    it; useful as a fast regression check. *)

val cache_key : Network.t -> string
(** {!fingerprint} extended into a compiled-model cache key: the
    structural digest strengthened with the concrete species-name
    binding, reaction order and initial conditions. Equal keys guarantee
    the two networks compile to byte-identical simulators (same species
    names and indices, same reaction indices), which the
    renaming-invariant fingerprint alone cannot promise; the simulation
    service keys its compiled-model cache on this. *)
