(** Conservation-law analysis.

    A conservation law of a network is a weighting [w] of species with
    [w' S = 0] for the net stoichiometry matrix [S]: the weighted total
    concentration is invariant under every reaction. The paper's clock and
    delay elements are conservative by design (signal quantities rotate
    between color categories but are never created or destroyed, except by
    explicit zero-order sources), so conservation laws are both a debugging
    aid and a test oracle. *)

val laws : Network.t -> Numeric.Vec.t list
(** A basis of the left null space of the stoichiometry matrix, computed
    exactly over the rationals ([Exact.Invariant.conservation_basis])
    and converted to floats only at this boundary; each vector has
    primitive integer entries. Networks with zero-order sources or pure
    decays typically have fewer laws; a network with no reactions gets
    one unit law per species (everything is trivially conserved). *)

val is_invariant : ?eps:float -> Network.t -> Numeric.Vec.t -> bool
(** Does the given species weighting commute with every reaction? The
    weights are converted losslessly to rationals and each reaction's
    weighted change is summed exactly; only the final [|change| <= eps]
    comparison involves the tolerance (default [eps = 1e-9]). *)

val weighted_total : Numeric.Vec.t -> Numeric.Vec.t -> float
(** [weighted_total w state]: the conserved quantity's current value. *)

val uniform_over : Network.t -> string list -> Numeric.Vec.t
(** Indicator weighting: 1 on the named species, 0 elsewhere. Raises
    [Invalid_argument] if a name is unknown. *)
