(* The basis is computed exactly (fraction-free Bareiss over the integer
   stoichiometry matrix, in [lib/exact]); floats appear only here, at the
   conversion boundary. Each vector is the primitive integer law, so
   callers see small whole-number weights instead of LU-scaled floats. *)
let laws net =
  Exact.Invariant.conservation_basis (Exact_view.of_network net)
  |> List.map (fun (l : Exact.Invariant.law) ->
         Array.map Exact.Z.to_float l.weights)

(* thin wrapper over the exact kernel: the float weights convert to
   rationals exactly ([Exact.Q.of_float] is lossless), each reaction's
   weighted change is summed over Q with no rounding, and only the final
   |change| <= eps comparison involves the tolerance *)
let is_invariant ?(eps = 1e-9) net w =
  if Array.length w <> Network.n_species net then
    invalid_arg "Conservation.is_invariant: weight dimension mismatch";
  let wq = Array.map Exact.Q.of_float w in
  let eq = Exact.Q.of_float eps in
  Array.for_all
    (fun r ->
      let change =
        List.fold_left
          (fun acc (sp, c) ->
            Exact.Q.add acc (Exact.Q.mul wq.(sp) (Exact.Q.of_int c)))
          Exact.Q.zero (Reaction.net_stoich r)
      in
      Exact.Q.compare (Exact.Q.abs change) eq <= 0)
    (Network.reactions net)

let weighted_total w state = Numeric.Vec.dot w state

let uniform_over net names =
  let w = Array.make (Network.n_species net) 0. in
  List.iter
    (fun name ->
      match Network.find_species net name with
      | Some i -> w.(i) <- 1.
      | None ->
          invalid_arg
            (Printf.sprintf "Conservation.uniform_over: unknown species %S"
               name))
    names;
  w
