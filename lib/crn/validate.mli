(** Static sanity checks on a network before simulation or DSD compilation.

    These are the lint passes a synthesis flow runs on its output: they
    catch classic construction bugs (a species produced but never consumed,
    a trimolecular reaction that no DNA chassis can implement directly, a
    signal that was never initialized). *)

type issue =
  | Unused_species of int  (** mentioned in no reaction *)
  | Never_produced of int  (** consumed somewhere, produced nowhere, zero init *)
  | Never_consumed of int  (** produced somewhere, consumed nowhere *)
  | High_order of int * int
      (** reaction index, molecularity > 2: not directly DSD-implementable *)
  | Duplicate_reaction of int * int  (** indices of structurally equal pair *)
  | No_op_reaction of int
      (** reaction index with identically zero net stoichiometry — it
          consumes exactly what it produces and can only burn time *)
  | Fractional_init of int
      (** species whose initial marking is not a whole number: fine for
          ODE semantics, impossible as a molecule count *)

val check : Network.t -> issue list
(** All issues, in a deterministic order. An empty list means clean. *)

val is_dsd_compilable : Network.t -> bool
(** No reaction of molecularity > 2 (the Soloveichik translation handles
    orders 0, 1 and 2). *)

val pp_issue : Network.t -> Format.formatter -> issue -> unit

val report : Network.t -> string
(** Human-readable multi-line report; empty string when clean. *)
