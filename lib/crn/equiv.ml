(* Individualization-refinement isomorphism for reaction networks. Colors
   are small ints; signature strings are interned through a shared table so
   colors are comparable across the two networks being matched. *)

type info = { n : int; reactions : Reaction.t array; init : float array }

let info_of net =
  {
    n = Network.n_species net;
    reactions = Network.reactions net;
    init = Network.initial_state net;
  }

let rate_key (r : Rates.t) =
  Printf.sprintf "%s*%.12g"
    (match r.Rates.category with Rates.Fast -> "f" | Rates.Slow -> "s")
    r.Rates.scale

let side_key colors side =
  List.map (fun (s, c) -> Printf.sprintf "%d^%d" colors.(s) c) side
  |> List.sort compare |> String.concat ","

let reaction_key colors (r : Reaction.t) =
  Printf.sprintf "%s|%s>%s" (rate_key r.Reaction.rate)
    (side_key colors r.Reaction.reactants)
    (side_key colors r.Reaction.products)

(* the multiset of colored contexts a species appears in *)
let species_key info colors s =
  let parts = ref [] in
  Array.iter
    (fun r ->
      let rk = reaction_key colors r in
      List.iter
        (fun (sp, c) ->
          if sp = s then parts := Printf.sprintf "R%d:%s" c rk :: !parts)
        r.Reaction.reactants;
      List.iter
        (fun (sp, c) ->
          if sp = s then parts := Printf.sprintf "P%d:%s" c rk :: !parts)
        r.Reaction.products)
    info.reactions;
  Printf.sprintf "%d|%s" colors.(s)
    (String.concat ";" (List.sort compare !parts))

(* Rank signature strings across all networks jointly: equal keys get
   equal colors (comparability between the networks being matched), and
   the numbers are the sorted ranks of the keys rather than first-come
   interning — so the coloring, and everything derived from it
   (fingerprints, cache keys), is independent of species index order. *)
let rank_colors keyss =
  let all =
    List.concat_map Array.to_list keyss |> List.sort_uniq compare
  in
  let rank = Hashtbl.create 64 in
  List.iteri (fun i k -> Hashtbl.add rank k i) all;
  List.map (Array.map (Hashtbl.find rank)) keyss

(* one joint refinement round; returns new colorings and whether anything
   split *)
let refine_round infos colorings =
  let changed = ref false in
  let recolored =
    rank_colors
      (List.map2
         (fun info colors ->
           Array.init info.n (fun s -> species_key info colors s))
         infos colorings)
  in
  (* detect whether the partition got finer anywhere *)
  List.iter2
    (fun old fresh ->
      let seen = Hashtbl.create 16 in
      Array.iteri
        (fun s c ->
          match Hashtbl.find_opt seen old.(s) with
          | None -> Hashtbl.add seen old.(s) c
          | Some c' -> if c' <> c then changed := true)
        fresh)
    colorings recolored;
  (recolored, !changed)

let initial_colors infos =
  rank_colors
    (List.map
       (fun info ->
         Array.init info.n (fun s -> Printf.sprintf "%.12g" info.init.(s)))
       infos)

let rec refine infos colorings fuel =
  if fuel = 0 then colorings
  else
    let colorings', changed = refine_round infos colorings in
    if changed then refine infos colorings' (fuel - 1) else colorings'

(* class-size profiles must agree between the two networks *)
let classes_compatible c1 c2 =
  let count colors =
    let h = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        Hashtbl.replace h c (1 + Option.value ~default:0 (Hashtbl.find_opt h c)))
      colors;
    h
  in
  let h1 = count c1 and h2 = count c2 in
  Hashtbl.length h1 = Hashtbl.length h2
  && Hashtbl.fold
       (fun c n acc -> acc && Hashtbl.find_opt h2 c = Some n)
       h1 true

(* exact check of a complete candidate mapping (net1 species -> net2) *)
let mapping_valid i1 i2 mapping =
  let ok = ref true in
  Array.iteri
    (fun s1 s2 -> if i1.init.(s1) <> i2.init.(s2) then ok := false)
    mapping;
  !ok
  &&
  let key info rename r =
    let side s =
      List.map (fun (sp, c) -> (rename sp, c)) s
      |> List.sort compare
      |> List.map (fun (sp, c) -> Printf.sprintf "%d^%d" sp c)
      |> String.concat ","
    in
    ignore info;
    Printf.sprintf "%s|%s>%s" (rate_key r.Reaction.rate)
      (side r.Reaction.reactants)
      (side r.Reaction.products)
  in
  let multiset info rename =
    Array.to_list (Array.map (key info rename) info.reactions)
    |> List.sort compare
  in
  multiset i1 (fun s -> mapping.(s)) = multiset i2 (fun s -> s)

let isomorphic net1 net2 =
  let i1 = info_of net1 and i2 = info_of net2 in
  if i1.n <> i2.n || Array.length i1.reactions <> Array.length i2.reactions
  then false
  else begin
    let infos = [ i1; i2 ] in
    let rec search colorings =
      let colorings = refine infos colorings (i1.n + 2) in
      match colorings with
      | [ c1; c2 ] ->
          if not (classes_compatible c1 c2) then false
          else begin
            (* find the smallest color class with more than one member *)
            let by_color = Hashtbl.create 16 in
            Array.iteri
              (fun s c ->
                Hashtbl.replace by_color c
                  (s :: Option.value ~default:[] (Hashtbl.find_opt by_color c)))
              c1;
            let ambiguous =
              Hashtbl.fold
                (fun c members acc ->
                  match members with
                  | _ :: _ :: _ -> (
                      match acc with
                      | Some (_, best) when List.length best <= List.length members ->
                          acc
                      | _ -> Some (c, members))
                  | _ -> acc)
                by_color None
            in
            match ambiguous with
            | None ->
                (* all classes are singletons: read the mapping off colors *)
                let pos2 = Hashtbl.create 16 in
                Array.iteri (fun s c -> Hashtbl.replace pos2 c s) c2;
                let mapping =
                  Array.init i1.n (fun s -> Hashtbl.find pos2 c1.(s))
                in
                mapping_valid i1 i2 mapping
            | Some (color, members) ->
                (* individualize: pin one net1 member against each same-
                   colored net2 candidate in turn *)
                let s1 = List.hd (List.sort compare members) in
                let candidates =
                  List.filter (fun s -> c2.(s) = color)
                    (List.init i2.n (fun s -> s))
                in
                let fresh = 1 + Array.fold_left max 0 c1 + Array.fold_left max 0 c2 in
                List.exists
                  (fun s2 ->
                    let c1' = Array.copy c1 and c2' = Array.copy c2 in
                    c1'.(s1) <- fresh;
                    c2'.(s2) <- fresh;
                    search [ c1'; c2' ])
                  candidates
          end
      | _ -> assert false
    in
    search (initial_colors infos)
  end

let fingerprint net =
  let i = info_of net in
  let colors =
    match refine [ i ] (initial_colors [ i ]) (i.n + 2) with
    | [ c ] -> c
    | _ -> assert false
  in
  let reaction_keys =
    Array.to_list (Array.map (reaction_key colors) i.reactions)
    |> List.sort compare
  in
  let class_profile =
    let h = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        Hashtbl.replace h c (1 + Option.value ~default:0 (Hashtbl.find_opt h c)))
      colors;
    Hashtbl.fold (fun _ n acc -> n :: acc) h [] |> List.sort compare
    |> List.map string_of_int |> String.concat ","
  in
  Digest.to_hex
    (Digest.string (class_profile ^ "#" ^ String.concat "\n" reaction_keys))

(* The fingerprint quotients away names, species index order and
   reaction order — exactly the invariances a compiled-model cache must
   NOT have: simulation output carries the species-name array in index
   order, and the stochastic engine's trajectories are reproducible only
   for a fixed reaction ordering. The cache key is the fingerprint
   extended with that concrete binding — the name array (pinning index
   order), full-precision initial conditions, and the textual reaction
   list — so equal keys guarantee identical observable behavior while
   the structural component keeps the digest collision-resistant across
   the many near-identical synthesized networks a service sees. *)
let cache_key net =
  let b = Buffer.create 1024 in
  Buffer.add_string b (fingerprint net);
  Buffer.add_char b '\n';
  Array.iter
    (fun name ->
      Buffer.add_string b name;
      Buffer.add_char b '\x00')
    (Network.species_names net);
  Buffer.add_char b '\n';
  Array.iter
    (fun x -> Buffer.add_string b (Printf.sprintf "%.17g\x00" x))
    (Network.initial_state net);
  Buffer.add_char b '\n';
  Buffer.add_string b (Network.to_string net);
  Digest.to_hex (Digest.string (Buffer.contents b))
