(** Bridge into the exact verification tier.

    [lib/exact] is dependency-free and cannot see {!Network.t}; this
    module produces the plain-data view it verifies. The float initial
    marking crosses the boundary through [Exact.Q.of_float], which is
    exact for every finite float, so the exact tier's proofs are about
    precisely the network the simulators run. *)

val of_network : Network.t -> Exact.Net.t
