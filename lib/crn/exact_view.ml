let of_network net =
  let reactions =
    Array.map
      (fun (r : Reaction.t) ->
        {
          Exact.Net.reactants = r.reactants;
          products = r.products;
          rate =
            (match r.rate.Rates.category with
            | Rates.Fast -> Exact.Net.Fast
            | Rates.Slow -> Exact.Net.Slow);
          label = r.label;
        })
      (Network.reactions net)
  in
  {
    Exact.Net.species = Network.species_names net;
    init = Array.map Exact.Q.of_float (Network.initial_state net);
    reactions;
  }
