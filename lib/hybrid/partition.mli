(** Dynamic fast/slow partition of a reaction network.

    The paper's constructions are built on a rate dichotomy — fast
    clock-phase transfer against slow computation — and the hybrid
    simulator exploits it: reactions whose propensity is large {e and}
    whose reactants are all populous are integrated deterministically,
    everything else stays exact-stochastic. The partition is state
    dependent (a clock phase species cycles between ~0 and the full
    clock mass), so it is re-evaluated at checkpoints from the current
    propensities and populations.

    A reaction is {b fast} iff its current propensity is at least
    [prop_threshold] and every reactant species' population is at least
    [pop_threshold] (a zero-order source is fast on the propensity test
    alone). A species is {b continuous} iff some fast reaction reads or
    writes it; all other species keep exactly integer populations. *)

type t = {
  n_reactions : int;
  n_species : int;
  fast : bool array;  (** per-reaction flag *)
  continuous : bool array;  (** per-species flag *)
  mutable n_fast : int;
  mutable slow : int array;  (** indices of the slow reactions, ascending *)
}

val make : n_reactions:int -> n_species:int -> t
(** All-slow partition (every flag false, [slow] = all reactions). *)

val reset : t -> unit
(** Return to the all-slow partition (arena reuse across runs). *)

val classify :
  t ->
  reactions:Ssa.Compiled.reaction array ->
  props:float array ->
  pop:(int -> float) ->
  pop_threshold:float ->
  prop_threshold:float ->
  bool
(** Reclassify every reaction from the current propensities [props] and
    the population accessor [pop] (reads the integer counts in discrete
    mode, the float state in mixed mode). Rebuilds [fast], [continuous],
    [n_fast] and [slow]; returns [true] iff some reaction changed side. *)
