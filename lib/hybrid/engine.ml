(* Hybrid adaptive stochastic/deterministic simulation (Haseltine–Rawlings
   style, with tau-leaping as the middle gear).

   The engine runs in one of two modes and switches between them at
   repartition checkpoints:

   - Discrete mode (no fast reactions): literally the Gillespie direct
     method on the shared incremental-propensity engine (Ssa.Prop_engine)
     — the loop below mirrors Ssa.Gillespie statement for statement and
     draws the RNG in the same order, so while every reaction stays slow
     the trajectory is bitwise identical to pure Gillespie at the same
     seed. Checkpoints only read counts and propensities (no RNG, no
     float mutation), so they cannot perturb the trajectory.

   - Mixed mode (some reactions fast): state becomes a float vector; the
     fast partition advances by in-place RK4 on the CSR vector field
     restricted to it (Ode.Deriv.with_k with the slow rate constants
     zeroed and the fast ones divided by the reactant-permutation factor,
     so the deterministic flux agrees with the combinatorial propensity
     to O(1/population)); the slow partition fires exactly by the
     integrated-propensity method (accumulate ∫a_slow dt toward an Exp(1)
     target across ODE slices), except that when a substep expects more
     than [tau_switch] slow events the whole substep fires them in bulk
     from Poisson draws (tau-leaping) with halving retries on a negative
     excursion. Substep size comes from a Cao-style bound on the fast
     fluxes: small enough that no continuous species changes by more than
     [epsilon] relatively and that explicit RK4 stays stable against the
     fastest per-capita drain.

   The partition itself (Partition.classify) keys on per-reaction
   propensity magnitude and per-species population thresholds, so a clock
   phase species that empties between checkpoints demotes its reactions
   back to the exact subset; between checkpoints the tau gear absorbs
   misclassified high-propensity slow reactions. *)

module Rng = Numeric.Rng

type stats = {
  n_ssa_events : int;  (** exact single-reaction firings (both modes) *)
  n_tau_leaps : int;  (** accepted bulk substeps *)
  n_tau_events : int;  (** reaction firings inside accepted bulk substeps *)
  n_ode_steps : int;  (** RK4 slices on the fast partition *)
  n_repartitions : int;  (** checkpoint evaluations *)
  n_mode_switches : int;  (** discrete <-> mixed transitions *)
  n_rejected : int;  (** tau retries + skipped infeasible slow firings *)
  final_n_fast : int;  (** fast reactions at the end of the run *)
  final_n_slow : int;
  peak_n_fast : int;  (** largest fast partition seen at any checkpoint *)
}

type result = {
  trace : Ode.Trace.t;  (** states sampled every [sample_dt] *)
  final : float array;  (** state at [t1] *)
  n_events : int;  (** discrete reaction firings (exact + tau) *)
  stats : stats;
}

type error = Max_events_exceeded of { max_events : int; t : float }

exception Error of error

let error_to_string = function
  | Max_events_exceeded { max_events; t } ->
      Printf.sprintf "Hybrid: work budget %d exceeded at t = %g" max_events t

(* ------------------------------------------------------------- models *)

type model = {
  reactions : Ssa.Compiled.reaction array;
  deps : Ssa.Dep_graph.t;
  sys : Ode.Deriv.t;
  det_k : float array;
      (* per-reaction deterministic rate constant: the stochastic k divided
         by the product of reactant-coefficient factorials, so the
         mass-action flux k' * prod x^c matches the combinatorial
         propensity k * prod C(n,c) at large populations *)
  n_species : int;
  n_reactions : int;
}

let det_rate (rx : Ssa.Compiled.reaction) =
  let d = ref rx.Ssa.Compiled.k in
  Array.iter
    (fun c ->
      let rec fact acc j = if j <= 1 then acc else fact (acc * j) (j - 1) in
      d := !d /. float_of_int (fact 1 c))
    rx.Ssa.Compiled.reactant_coeff;
  !d

let model_of ~ssa ~sys =
  let reactions, deps = Ssa.Gillespie.model_parts ssa in
  let n_reactions = Array.length reactions in
  if Ode.Deriv.n_reactions sys <> n_reactions then
    invalid_arg "Hybrid.Engine.model_of: SSA and ODE models disagree";
  {
    reactions;
    deps;
    sys;
    det_k = Array.map det_rate reactions;
    n_species = Ode.Deriv.dim sys;
    n_reactions;
  }

let compile_model env net =
  model_of
    ~ssa:(Ssa.Gillespie.compile_model env net)
    ~sys:(Ode.Deriv.compile env net)

(* ------------------------------------------------------------- arenas *)

type arena = {
  a_model : model;
  a_counts : int array;  (* integer state, discrete mode *)
  a_x : float array;  (* float state, mixed mode *)
  a_pe : Ssa.Prop_engine.t;
  a_props : float array;  (* per-reaction propensities, mixed mode *)
  a_masked : float array;  (* rate vector with the slow partition zeroed *)
  a_k1 : float array;  (* RK4 scratch *)
  a_k2 : float array;
  a_k3 : float array;
  a_k4 : float array;
  a_ytmp : float array;
  a_drain : float array;  (* per-species consumption rate, for the h bound *)
  a_mu : float array;  (* per-species net drift, for the h bound *)
  a_mu_slow : float array;  (* per-species slow-channel turnover, tau bound *)
  a_save : float array;  (* tau-leap rollback snapshot *)
  a_fires : int array;  (* per-reaction Poisson draws of one tau substep *)
  a_part : Partition.t;
}

let make_arena m =
  let n = m.n_species and nr = m.n_reactions in
  {
    a_model = m;
    a_counts = Array.make n 0;
    a_x = Array.make n 0.;
    a_pe = Ssa.Prop_engine.make m.reactions m.deps;
    a_props = Array.make nr 0.;
    a_masked = Array.make nr 0.;
    a_k1 = Array.make n 0.;
    a_k2 = Array.make n 0.;
    a_k3 = Array.make n 0.;
    a_k4 = Array.make n 0.;
    a_ytmp = Array.make n 0.;
    a_drain = Array.make n 0.;
    a_mu = Array.make n 0.;
    a_mu_slow = Array.make n 0.;
    a_save = Array.make n 0.;
    a_fires = Array.make nr 0;
    a_part = Partition.make ~n_reactions:nr ~n_species:n;
  }

(* --------------------------------------------------------------- runs *)

exception Stop
exception Switch_mode

(* Full mid-run state at a cancellation point. Both mode loops guard at
   their top, before the iteration mutates anything or draws the RNG, so
   loop-top state is a state an uninterrupted run passes through; the
   masked fast-partition vector field is not captured because it is a
   pure function of the partition ([rebuild_fsys]) and is rebuilt on
   resume. *)
type checkpoint = {
  ck_mixed : bool;
  ck_counts : int array;  (* discrete-mode integer state *)
  ck_x : float array;  (* mixed-mode float state *)
  ck_t : float;
  ck_next_sample : float;
  ck_g_int : float;  (* accumulated ∫ a_slow dt *)
  ck_target : float;  (* Exp(1) target of the integrated-propensity draw *)
  ck_rng : int64;
  ck_engine : Ssa.Prop_engine.state;
  ck_fast : bool array;  (* partition: fast reactions *)
  ck_continuous : bool array;  (* partition: continuous species *)
  ck_n_fast : int;
  ck_slow : int array;
  ck_n_ssa : int;
  ck_n_tau_leaps : int;
  ck_n_tau_events : int;
  ck_n_ode : int;
  ck_n_repart : int;
  ck_n_switch : int;
  ck_n_rejected : int;
  ck_peak_fast : int;
  ck_loop_count : int;
      (* events into the current discrete stretch, or substeps into the
         current mixed stretch — drives the 512-event cancel poll and the
         repartition cadence *)
  ck_first : bool;  (* discrete mode: inside the run's first stretch *)
  ck_trace : Ode.Trace.t;
}

let copy_trace tr =
  let fresh = Ode.Trace.create ~names:(Ode.Trace.names tr) in
  Array.iteri
    (fun i t -> Ode.Trace.record fresh t (Ode.Trace.state_at_index tr i))
    (Ode.Trace.times tr);
  fresh

let run_result ?(env = Crn.Rates.default_env) ?(seed = 1L) ?sample_dt
    ?(pop_threshold = 1000.) ?(prop_threshold = 1000.)
    ?(repartition_every = 256) ?(epsilon = 0.05) ?(tau_switch = 8.)
    ?(max_events = 50_000_000) ?(refresh_every = 4096) ?model ?arena
    ?(cancel = Numeric.Cancel.never) ?resume ?on_cancel ~t1 net =
  if t1 <= 0. then invalid_arg "Hybrid.run: t1 must be positive";
  if pop_threshold <= 0. then
    invalid_arg "Hybrid.run: pop_threshold must be positive";
  if prop_threshold <= 0. then
    invalid_arg "Hybrid.run: prop_threshold must be positive";
  if repartition_every < 1 then
    invalid_arg "Hybrid.run: repartition_every must be >= 1";
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Hybrid.run: epsilon must be in (0, 1)";
  if tau_switch < 1. then invalid_arg "Hybrid.run: tau_switch must be >= 1";
  if refresh_every < 1 then
    invalid_arg "Hybrid.run: refresh_every must be >= 1";
  let sample_dt =
    match sample_dt with
    | Some dt when dt > 0. -> dt
    | Some _ -> invalid_arg "Hybrid.run: sample_dt must be positive"
    | None -> t1 /. 500.
  in
  let rng = Rng.create seed in
  let model =
    match (arena, model) with
    | Some a, _ -> a.a_model
    | None, Some m -> m
    | None, None -> compile_model env net
  in
  let init = Crn.Network.initial_state net in
  if Array.length init <> model.n_species then
    invalid_arg "Hybrid.run: network does not match the compiled model";
  let ar = match arena with Some a -> a | None -> make_arena model in
  let reactions = model.reactions in
  let m = model.n_reactions and n = model.n_species in
  let counts = ar.a_counts and x = ar.a_x in
  for i = 0 to n - 1 do
    counts.(i) <- int_of_float (Float.round init.(i))
  done;
  let pe = ar.a_pe and part = ar.a_part and props = ar.a_props in
  Partition.reset part;
  let trace =
    match resume with
    | Some ck -> copy_trace ck.ck_trace
    | None -> Ode.Trace.create ~names:(Crn.Network.species_names net)
  in
  let t = ref 0. in
  let next_sample = ref 0. in
  let failure = ref None in
  (* counters *)
  let n_ssa = ref 0
  and n_tau_leaps = ref 0
  and n_tau_events = ref 0
  and n_ode = ref 0
  and n_repart = ref 0
  and n_switch = ref 0
  and n_rejected = ref 0
  and peak_fast = ref 0 in
  (* discrete checkpoints left before promotion is allowed again after a
     stability demotion (not checkpointed: it is a transient heuristic,
     and it is only ever nonzero while a spike is actively breaking the
     explicit gear — a regime the bitwise-resume guarantees do not
     cover) *)
  let promote_hold = ref 0 in
  let work () = !n_ssa + !n_tau_events + !n_ode in
  (* mixed-mode state *)
  let fsys = ref model.sys in
  let g_int = ref 0. (* accumulated ∫ a_slow dt toward [target] *)
  and target = ref infinity in
  let mixed = ref false in
  let snapshot () =
    if !mixed then Array.copy x else Array.map float_of_int counts
  in
  let record_due_samples () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  let budget_check () =
    if work () >= max_events then begin
      failure := Some (Max_events_exceeded { max_events; t = !t });
      raise Stop
    end
  in
  let note_partition () =
    incr n_repart;
    if part.Partition.n_fast > !peak_fast then peak_fast := part.Partition.n_fast
  in
  let classify_discrete () =
    let changed =
      Partition.classify part ~reactions ~props:pe.Ssa.Prop_engine.props
        ~pop:(fun s -> float_of_int counts.(s))
        ~pop_threshold ~prop_threshold
    in
    note_partition ();
    changed
  in
  let compute_all_props () =
    for r = 0 to m - 1 do
      props.(r) <- Ssa.Compiled.propensity_f reactions.(r) x
    done
  in
  let classify_mixed () =
    compute_all_props ();
    let changed =
      Partition.classify part ~reactions ~props
        ~pop:(fun s -> x.(s))
        ~pop_threshold ~prop_threshold
    in
    note_partition ();
    changed
  in
  let rebuild_fsys () =
    for r = 0 to m - 1 do
      ar.a_masked.(r) <-
        (if part.Partition.fast.(r) then model.det_k.(r) else 0.)
    done;
    fsys := Ode.Deriv.with_k model.sys ar.a_masked
  in
  let to_mixed () =
    incr n_switch;
    for i = 0 to n - 1 do
      x.(i) <- float_of_int counts.(i)
    done;
    rebuild_fsys ();
    g_int := 0.;
    target := Rng.exponential rng 1.;
    mixed := true
  in
  let to_discrete () =
    incr n_switch;
    for i = 0 to n - 1 do
      counts.(i) <- max 0 (int_of_float (Float.round x.(i)))
    done;
    Ssa.Prop_engine.refresh pe counts;
    mixed := false
  in
  (* in-place classic RK4 slice of length [h] on the masked vector field;
     continuous species are clamped against tiny negative overshoot *)
  let rk4_slice h =
    let fsys = !fsys in
    let k1 = ar.a_k1 and k2 = ar.a_k2 and k3 = ar.a_k3 and k4 = ar.a_k4 in
    let y = ar.a_ytmp in
    Ode.Deriv.f fsys 0. x k1;
    for i = 0 to n - 1 do
      y.(i) <- x.(i) +. (0.5 *. h *. k1.(i))
    done;
    Ode.Deriv.f fsys 0. y k2;
    for i = 0 to n - 1 do
      y.(i) <- x.(i) +. (0.5 *. h *. k2.(i))
    done;
    Ode.Deriv.f fsys 0. y k3;
    for i = 0 to n - 1 do
      y.(i) <- x.(i) +. (h *. k3.(i))
    done;
    Ode.Deriv.f fsys 0. y k4;
    for i = 0 to n - 1 do
      x.(i) <-
        x.(i)
        +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
    done;
    incr n_ode
  in
  (* [choose_h]'s stability bound is computed from the propensities at the
     slice's start; strongly autocatalytic fast kinetics (the relaxation
     clock's rail spikes, with their quadratic and cubic terms) can grow
     the local Lipschitz constant mid-slice and push explicit RK4 outside
     its stability region, leaving non-finite state that would poison the
     rest of the trajectory ([t] itself goes NaN through the propensity
     sum).  A slice that goes non-finite is rolled back and retried as a
     few finer sub-slices; if that fails too the fast partition is frozen
     for this slice and [demote_fast] is raised so the mixed loop can
     demote to the discrete gear, which resolves spikes natively instead
     of grinding them through subdivided explicit slices.  The
     single-slice path is numerically identical to a plain RK4 step,
     preserving the engine's bitwise guarantees. *)
  let rk4_save = Array.make n 0. in
  let demote_fast = ref false in
  let rk4 h =
    Array.blit x 0 rk4_save 0 n;
    (* a slice is rejected when it leaves the stability envelope: state
       that goes non-finite, but also state that merely {e overshoots} —
       [choose_h]'s bound holds per-species change near [epsilon], so a
       10x growth within one slice is necessarily the integrator blowing
       up, not kinetics.  Catching the finite overshoot matters as much
       as the NaN: an autocatalytic rail pumped to 1e12 by one bad slice
       stays finite, and once demoted those counts give astronomically
       large propensities — the discrete gear then burns the entire work
       budget shaving single molecules off a population that the real
       dynamics (cubic cap) would never have produced. *)
    let sane () =
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          (not (Float.is_finite x.(i)))
          || x.(i) > 10. *. (rk4_save.(i) +. 1.)
        then ok := false
      done;
      !ok
    in
    let rec attempt slices =
      let hs = h /. float_of_int slices in
      let i = ref 0 and ok = ref true in
      while !ok && !i < slices do
        rk4_slice hs;
        if slices > 1 then
          for s = 0 to n - 1 do
            if x.(s) < 0. then x.(s) <- 0.
          done;
        if not (sane ()) then ok := false;
        incr i
      done;
      if not !ok then begin
        incr n_rejected;
        demote_fast := true;
        Array.blit rk4_save 0 x 0 n;
        if slices < 8 then attempt (slices * 2)
      end
    in
    attempt 1
  in
  let clamp () =
    for s = 0 to n - 1 do
      if x.(s) < 0. then x.(s) <- 0.
    done
  in
  (* substep size: no continuous species may change by more than [epsilon]
     relatively under the fast net drift, and explicit RK4 must stay well
     inside its stability region against the fastest per-capita drain.
     Uses the propensities computed for this substep. *)
  let choose_h () =
    let drain = ar.a_drain and mu = ar.a_mu in
    Array.fill drain 0 n 0.;
    Array.fill mu 0 n 0.;
    for r = 0 to m - 1 do
      if part.Partition.fast.(r) then begin
        let v = props.(r) in
        if v > 0. then begin
          let rx = reactions.(r) in
          let sp = rx.Ssa.Compiled.reactant_species
          and co = rx.Ssa.Compiled.reactant_coeff in
          for i = 0 to Array.length sp - 1 do
            let s = sp.(i) in
            drain.(s) <- drain.(s) +. (v *. float_of_int co.(i))
          done;
          let ds = rx.Ssa.Compiled.delta_species
          and d = rx.Ssa.Compiled.delta in
          for i = 0 to Array.length ds - 1 do
            let s = ds.(i) in
            mu.(s) <- mu.(s) +. (v *. float_of_int d.(i))
          done
        end
      end
    done;
    let lam = ref 0. and h_acc = ref infinity in
    for s = 0 to n - 1 do
      if part.Partition.continuous.(s) then begin
        let xs = Float.max x.(s) 1. in
        if drain.(s) > 0. then lam := Float.max !lam (drain.(s) /. xs);
        let a = Float.abs mu.(s) in
        if a > 0. then h_acc := Float.min !h_acc (epsilon *. xs /. a)
      end
    done;
    let h_stab = if !lam > 0. then 0.8 /. !lam else infinity in
    let h = Float.min h_stab !h_acc in
    let h = Float.min h sample_dt in
    Float.max h (1e-12 *. t1)
  in
  (* Cao-style bound on the slow channel for the tau gear: a leap of
     length h may not turn over more than an [epsilon] fraction of any
     species touched by slow reactions (floored at one molecule), so the
     Poisson draws cannot overshoot a reactant pool — without this, a
     burst reaction with huge propensity but a bounded reactant count
     (e.g. a phase-gated transfer draining its source) rejects every
     leap and degenerates into per-event integration *)
  let slow_h_bound () =
    let mu = ar.a_mu_slow in
    Array.fill mu 0 n 0.;
    let slow = part.Partition.slow in
    for i = 0 to Array.length slow - 1 do
      let r = slow.(i) in
      let v = props.(r) in
      if v > 0. then begin
        let rx = reactions.(r) in
        let ds = rx.Ssa.Compiled.delta_species
        and d = rx.Ssa.Compiled.delta in
        for j = 0 to Array.length ds - 1 do
          let s = ds.(j) in
          mu.(s) <- mu.(s) +. (v *. Float.abs (float_of_int d.(j)))
        done
      end
    done;
    let h = ref infinity in
    for s = 0 to n - 1 do
      if mu.(s) > 0. then
        h := Float.min !h (epsilon *. Float.max x.(s) 1. /. mu.(s))
    done;
    !h
  in
  let sum_slow () =
    let slow = part.Partition.slow in
    let a0 = ref 0. in
    for i = 0 to Array.length slow - 1 do
      a0 := !a0 +. props.(slow.(i))
    done;
    !a0
  in
  let recompute_slow () =
    let slow = part.Partition.slow in
    for i = 0 to Array.length slow - 1 do
      let r = slow.(i) in
      props.(r) <- Ssa.Compiled.propensity_f reactions.(r) x
    done
  in
  (* weighted pick among the slow reactions; [a0] is their fresh sum *)
  let pick_slow a0 u =
    let slow = part.Partition.slow in
    let tgt = u *. a0 in
    let acc = ref 0. and j = ref (-1) and i = ref 0 in
    let k = Array.length slow in
    while !j < 0 && !i < k do
      let r = slow.(!i) in
      acc := !acc +. props.(r);
      if !acc > tgt && props.(r) > 0. then j := r;
      incr i
    done;
    if !j >= 0 then !j
    else begin
      (* float drift stranded the target: last positive slow propensity *)
      let last = ref (-1) in
      for i = 0 to k - 1 do
        if props.(slow.(i)) > 0. then last := slow.(i)
      done;
      !last
    end
  in
  let can_fire r =
    let rx = reactions.(r) in
    let sp = rx.Ssa.Compiled.reactant_species
    and co = rx.Ssa.Compiled.reactant_coeff in
    let ok = ref true in
    for i = 0 to Array.length sp - 1 do
      if x.(sp.(i)) +. 1e-9 < float_of_int co.(i) then ok := false
    done;
    !ok
  in
  (* one exact-stochastic substep of length [h]: the slow channel fires by
     the integrated-propensity method while the fast partition advances in
     ODE slices between events.

     An infeasible slow firing (selected but blocked by [can_fire]) is
     normally a rare boundary artefact, but a stale partition can leave a
     reaction slow while its reactant pool is a {e fractional} continuous
     residue: mass action then reports a large positive propensity over a
     pool that can never cover a whole molecule, so every draw selects a
     reaction that can never fire and the loop degenerates into per-draw
     RK4 slices that only terminate through the work budget.  A run of
     [stall_limit] consecutive rejections therefore abandons the substep
     and raises [demote_fast]: the discrete gear computes propensities
     over integer counts, where an insufficient pool reads as zero
     propensity and the stall is impossible. *)
  let stall_limit = 64 in
  let slow_stall = ref 0 in
  let exact_substep h =
    let left = ref h in
    let continue_ = ref true in
    while !continue_ do
      budget_check ();
      let a0 = sum_slow () in
      if a0 <= 0. then begin
        if !left > 0. then rk4 !left;
        clamp ();
        t := !t +. !left;
        left := 0.;
        continue_ := false
      end
      else begin
        let dt_ev = (!target -. !g_int) /. a0 in
        if dt_ev > !left then begin
          g_int := !g_int +. (a0 *. !left);
          rk4 !left;
          clamp ();
          t := !t +. !left;
          left := 0.;
          continue_ := false
        end
        else begin
          if dt_ev > 0. then rk4 dt_ev;
          clamp ();
          t := !t +. dt_ev;
          left := !left -. dt_ev;
          record_due_samples ();
          let u = Rng.float rng in
          let j = pick_slow a0 u in
          if j >= 0 then
            if can_fire j then begin
              Ssa.Compiled.apply_f reactions.(j) x 1;
              incr n_ssa;
              slow_stall := 0
            end
            else begin
              incr n_rejected;
              incr slow_stall;
              if !slow_stall >= stall_limit then begin
                demote_fast := true;
                continue_ := false
              end
            end;
          g_int := 0.;
          target := Rng.exponential rng 1.;
          recompute_slow ()
        end
      end
    done;
    record_due_samples ()
  in
  (* one tau-leap substep: fire every slow reaction in bulk from
     Poisson(a_j h) draws while the fast partition advances by one RK4
     slice; halve and retry on a negative excursion, falling back to the
     exact substep when halving does not converge *)
  let tau_substep h0 =
    let h = ref h0 and attempts = ref 0 and accepted = ref false in
    while (not !accepted) && !attempts < 8 do
      incr attempts;
      Array.blit x 0 ar.a_save 0 n;
      let fired = ref 0 in
      let slow = part.Partition.slow in
      for i = 0 to Array.length slow - 1 do
        let r = slow.(i) in
        let mean = props.(r) *. !h in
        let kf = if mean <= 0. then 0 else Ssa.Tau_leap.poisson rng mean in
        ar.a_fires.(r) <- kf;
        fired := !fired + kf
      done;
      rk4 !h;
      for i = 0 to Array.length slow - 1 do
        let r = slow.(i) in
        if ar.a_fires.(r) > 0 then
          Ssa.Compiled.apply_f reactions.(r) x ar.a_fires.(r)
      done;
      let ok = ref true in
      for s = 0 to n - 1 do
        let v = x.(s) in
        if v < 0. then if v >= -1e-6 then x.(s) <- 0. else ok := false
      done;
      if !ok then begin
        accepted := true;
        t := !t +. !h;
        incr n_tau_leaps;
        n_tau_events := !n_tau_events + !fired;
        (* the bulk firing invalidates the running propensity integral *)
        g_int := 0.;
        target := Rng.exponential rng 1.;
        record_due_samples ()
      end
      else begin
        incr n_rejected;
        Array.blit ar.a_save 0 x 0 n;
        h := !h /. 2.
      end
    done;
    if not !accepted then exact_substep h0
  in
  (* ------------------------------------------------ discrete-mode loop *)
  (* mirrors Ssa.Gillespie.run_result statement for statement (same RNG
     order, same float operations) plus the checkpoint, which reads state
     but never mutates it — bitwise-identical trajectories while no
     reaction is promoted *)
  let first_entry = ref true in
  (* the per-stretch loop counter and the discrete 'first' latch live
     outside the mode functions so a checkpoint can capture them; a
     resumed run hands its restored values to the first mode invocation
     through [pending_resume] instead of resetting them *)
  let loop_count = ref 0 in
  let disc_first = ref false in
  let pending_resume = ref false in
  let run_discrete () =
    let events_here = loop_count in
    if !pending_resume then pending_resume := false
    else begin
      events_here := 0;
      disc_first := !first_entry;
      first_entry := false
    end;
    let first = !disc_first in
    while !t < t1 do
      budget_check ();
      if !events_here land 511 = 0 then Numeric.Cancel.guard cancel;
      if !events_here mod repartition_every = 0 && (!events_here > 0 || first)
      then begin
        let _changed = classify_discrete () in
        (* after a stability demotion, hold the discrete gear for a few
           checkpoints: the spike that broke the explicit integrator is
           usually still in flight and would be re-promoted instantly *)
        if !promote_hold > 0 then decr promote_hold
        else if part.Partition.n_fast > 0 then raise Switch_mode
      end;
      if pe.Ssa.Prop_engine.since_refresh >= refresh_every then
        Ssa.Prop_engine.refresh pe counts;
      if Ssa.Prop_engine.total pe <= 0. then begin
        Ssa.Prop_engine.refresh pe counts;
        if Ssa.Prop_engine.total pe <= 0. then begin
          (* no reaction can fire: hold state to the end *)
          t := t1;
          record_due_samples ();
          raise Stop
        end
      end;
      let dt = Rng.exponential rng (Ssa.Prop_engine.total pe) in
      t := !t +. dt;
      if !t > t1 then begin
        t := t1;
        record_due_samples ();
        raise Stop
      end;
      record_due_samples ();
      let u = Rng.float rng in
      let j = Ssa.Prop_engine.select pe counts u in
      if j < 0 then begin
        t := t1;
        record_due_samples ();
        raise Stop
      end;
      Ssa.Compiled.apply reactions.(j) counts 1;
      Ssa.Prop_engine.update pe counts j;
      incr n_ssa;
      incr events_here
    done;
    raise Stop
  in
  (* --------------------------------------------------- mixed-mode loop *)
  let run_mixed () =
    let substeps_here = loop_count in
    if !pending_resume then pending_resume := false else substeps_here := 0;
    while true do
      budget_check ();
      Numeric.Cancel.guard cancel;
      if t1 -. !t <= 1e-12 *. Float.max t1 1. then begin
        t := t1;
        record_due_samples ();
        raise Stop
      end;
      if !substeps_here mod repartition_every = 0 then begin
        let changed = classify_mixed () in
        if part.Partition.n_fast = 0 then raise Switch_mode;
        if changed then rebuild_fsys ()
      end
      else compute_all_props ();
      incr substeps_here;
      let a0 = sum_slow () in
      let h = Float.min (choose_h ()) (t1 -. !t) in
      if a0 *. h > tau_switch then begin
        (* many slow events expected: leap, but first cap the leap so the
           Poisson draws cannot overdraw a small pool. If even the capped
           leap holds less than one expected event the channel is a spike
           (huge propensity, bounded pool): hand the full substep to the
           exact gear, which resolves each firing individually and only
           pays an ODE slice per actual event. *)
        let hs = Float.max (Float.min h (slow_h_bound ())) (1e-12 *. t1) in
        if a0 *. hs > 1. then tau_substep hs else exact_substep h
      end
      else exact_substep h;
      if !demote_fast then begin
        (* the mixed gear failed inside this substep — explicit RK4 lost
           stability, or the slow channel stalled on an infeasible
           reaction: demote and let exact SSA resolve it natively *)
        demote_fast := false;
        slow_stall := 0;
        promote_hold := 4;
        raise Switch_mode
      end
    done
  in
  (match resume with
  | None ->
      record_due_samples ();
      Ssa.Prop_engine.refresh pe counts
  | Some ck ->
      if Array.length ck.ck_counts <> n || Array.length ck.ck_x <> n then
        invalid_arg "Hybrid.run: checkpoint does not match the network";
      if Array.length ck.ck_fast <> m || Array.length ck.ck_continuous <> n
      then invalid_arg "Hybrid.run: checkpoint partition shape mismatch";
      Array.blit ck.ck_counts 0 counts 0 n;
      Array.blit ck.ck_x 0 x 0 n;
      t := ck.ck_t;
      next_sample := ck.ck_next_sample;
      g_int := ck.ck_g_int;
      target := ck.ck_target;
      Rng.set_state rng ck.ck_rng;
      Ssa.Prop_engine.restore pe ck.ck_engine;
      Array.blit ck.ck_fast 0 part.Partition.fast 0 m;
      Array.blit ck.ck_continuous 0 part.Partition.continuous 0 n;
      part.Partition.n_fast <- ck.ck_n_fast;
      part.Partition.slow <- Array.copy ck.ck_slow;
      n_ssa := ck.ck_n_ssa;
      n_tau_leaps := ck.ck_n_tau_leaps;
      n_tau_events := ck.ck_n_tau_events;
      n_ode := ck.ck_n_ode;
      n_repart := ck.ck_n_repart;
      n_switch := ck.ck_n_switch;
      n_rejected := ck.ck_n_rejected;
      peak_fast := ck.ck_peak_fast;
      loop_count := ck.ck_loop_count;
      disc_first := ck.ck_first;
      first_entry := false;
      pending_resume := true;
      mixed := ck.ck_mixed;
      (* the masked vector field is a pure function of the partition *)
      if ck.ck_mixed then rebuild_fsys ());
  let capture () =
    {
      ck_mixed = !mixed;
      ck_counts = Array.copy counts;
      ck_x = Array.copy x;
      ck_t = !t;
      ck_next_sample = !next_sample;
      ck_g_int = !g_int;
      ck_target = !target;
      ck_rng = Rng.state rng;
      ck_engine = Ssa.Prop_engine.capture pe;
      ck_fast = Array.copy part.Partition.fast;
      ck_continuous = Array.copy part.Partition.continuous;
      ck_n_fast = part.Partition.n_fast;
      ck_slow = Array.copy part.Partition.slow;
      ck_n_ssa = !n_ssa;
      ck_n_tau_leaps = !n_tau_leaps;
      ck_n_tau_events = !n_tau_events;
      ck_n_ode = !n_ode;
      ck_n_repart = !n_repart;
      ck_n_switch = !n_switch;
      ck_n_rejected = !n_rejected;
      ck_peak_fast = !peak_fast;
      ck_loop_count = !loop_count;
      ck_first = !disc_first;
      ck_trace = trace;
    }
  in
  (try
     while true do
       if !mixed then (try run_mixed () with Switch_mode -> to_discrete ())
       else try run_discrete () with Switch_mode -> to_mixed ()
     done
   with
  | Stop -> ()
  | Numeric.Cancel.Cancelled ->
      (match on_cancel with Some f -> f (capture ()) | None -> ());
      raise Numeric.Cancel.Cancelled);
  let stats =
    {
      n_ssa_events = !n_ssa;
      n_tau_leaps = !n_tau_leaps;
      n_tau_events = !n_tau_events;
      n_ode_steps = !n_ode;
      n_repartitions = !n_repart;
      n_mode_switches = !n_switch;
      n_rejected = !n_rejected;
      final_n_fast = part.Partition.n_fast;
      final_n_slow = model.n_reactions - part.Partition.n_fast;
      peak_n_fast = !peak_fast;
    }
  in
  match !failure with
  | Some err -> Stdlib.Error err
  | None ->
      Ok
        {
          trace;
          final = snapshot ();
          n_events = !n_ssa + !n_tau_events;
          stats;
        }

let run ?env ?seed ?sample_dt ?pop_threshold ?prop_threshold
    ?repartition_every ?epsilon ?tau_switch ?max_events ?refresh_every ?model
    ?arena ?cancel ?resume ?on_cancel ~t1 net =
  match
    run_result ?env ?seed ?sample_dt ?pop_threshold ?prop_threshold
      ?repartition_every ?epsilon ?tau_switch ?max_events ?refresh_every
      ?model ?arena ?cancel ?resume ?on_cancel ~t1 net
  with
  | Ok r -> r
  | Stdlib.Error err -> raise (Error err)

let mean_final ?(env = Crn.Rates.default_env) ?(runs = 20) ?jobs ?(seed = 42L)
    ?pop_threshold ?prop_threshold ?repartition_every ?epsilon ?tau_switch
    ?max_events ~t1 net species =
  if runs < 1 then invalid_arg "Hybrid.mean_final: runs must be >= 1";
  let idx =
    match Crn.Network.find_species net species with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Hybrid.mean_final: unknown species %S" species)
  in
  let model = compile_model env net in
  let xs =
    Ssa.Ensemble.map_with ?jobs ~seed
      ~init_worker:(fun () -> make_arena model)
      ~runs
      (fun arena _ s ->
        let r =
          run ~seed:s ?pop_threshold ?prop_threshold ?repartition_every
            ?epsilon ?tau_switch ?max_events ~arena ~t1 net
        in
        r.final.(idx))
  in
  (Numeric.Stats.mean xs, Numeric.Stats.stddev xs)
