(** Hybrid adaptive stochastic/deterministic simulation.

    The paper's constructions rest on a fast/slow rate dichotomy:
    high-rate clock-phase transfer reactions against slow computation
    reactions. Exact SSA spends almost all its events churning the fast
    high-population clock equilibria; this engine (in the spirit of
    Haseltine–Rawlings partitioned simulation) integrates the currently
    fast, currently populous subset of reactions as mass-action ODEs —
    the CSR {!Ode.Deriv} kernel restricted to the fast partition by rate
    re-baking — while the slow, low-count subset keeps firing exactly
    (integrated-propensity method over the ODE slices), with Poisson
    tau-leaping as the middle gear when a substep expects many slow
    events. The partition is re-evaluated at checkpoints from per-reaction
    propensity magnitude and per-species population thresholds, so it
    follows the clock: a phase species that empties demotes its reactions
    back to the exact subset.

    Two exactness anchors:
    - while {e no} reaction qualifies as fast, the engine runs literally
      the Gillespie direct method on the shared {!Ssa.Prop_engine} with
      the same RNG draw order — trajectories are {e bitwise identical} to
      {!Ssa.Gillespie} at the same seed;
    - runs are a pure function of the seed (checkpoints consume no
      randomness), so {!Ssa.Ensemble} fan-outs are byte-identical for any
      jobs × chunk combination. *)

type stats = {
  n_ssa_events : int;  (** exact single-reaction firings (both modes) *)
  n_tau_leaps : int;  (** accepted bulk substeps *)
  n_tau_events : int;  (** reaction firings inside accepted bulk substeps *)
  n_ode_steps : int;  (** RK4 slices on the fast partition *)
  n_repartitions : int;  (** checkpoint evaluations *)
  n_mode_switches : int;  (** discrete <-> mixed transitions *)
  n_rejected : int;  (** tau retries + skipped infeasible slow firings *)
  final_n_fast : int;  (** fast reactions at the end of the run *)
  final_n_slow : int;
  peak_n_fast : int;  (** largest fast partition seen at any checkpoint *)
}

type result = {
  trace : Ode.Trace.t;  (** states sampled every [sample_dt] *)
  final : float array;  (** state at [t1] *)
  n_events : int;  (** discrete reaction firings (exact + tau) *)
  stats : stats;
}

type error =
  | Max_events_exceeded of { max_events : int; t : float }
      (** the work budget (discrete events + ODE slices) ran out at [t] *)

exception Error of error

val error_to_string : error -> string

type model
(** The immutable compilation product: the SSA side's compiled reactions
    and dependency graph plus the ODE side's CSR system and the
    deterministic rate constants. Runs never mutate it — share one model
    across domains. *)

val compile_model : Crn.Rates.env -> Crn.Network.t -> model

val model_of : ssa:Ssa.Gillespie.model -> sys:Ode.Deriv.t -> model
(** Assemble a hybrid model from pieces compiled elsewhere — the service
    layer's model cache already holds both; this avoids recompiling the
    network. [Invalid_argument] if they disagree on the reaction count;
    both must come from the same network and rate environment. *)

type arena
(** Per-worker mutable scratch (state vectors, propensity tables, RK4
    and tau-leap buffers, the partition). Every buffer is rewritten
    before it is read, so a reused arena reproduces a fresh arena's
    trajectory bitwise. Not thread-safe — one per domain
    ({!Ssa.Ensemble.map_with}). *)

val make_arena : model -> arena

type checkpoint = {
  ck_mixed : bool;  (** which mode loop was interrupted *)
  ck_counts : int array;
  ck_x : float array;
  ck_t : float;
  ck_next_sample : float;
  ck_g_int : float;
  ck_target : float;
  ck_rng : int64;
  ck_engine : Ssa.Prop_engine.state;
  ck_fast : bool array;
  ck_continuous : bool array;
  ck_n_fast : int;
  ck_slow : int array;
  ck_n_ssa : int;
  ck_n_tau_leaps : int;
  ck_n_tau_events : int;
  ck_n_ode : int;
  ck_n_repart : int;
  ck_n_switch : int;
  ck_n_rejected : int;
  ck_peak_fast : int;
  ck_loop_count : int;
  ck_first : bool;
  ck_trace : Ode.Trace.t;
}
(** Full mid-run state — populations (integer and float), clocks, the
    dynamic partition, the integrated-propensity accumulator and its
    Exp(1) target, the propensity-engine scratch, the RNG stream, every
    statistics counter, and the recorded trace. The masked fast-partition
    vector field is rebuilt from the partition on resume (it is a pure
    function of it). Resuming with identical parameters continues to a
    trajectory bitwise identical to an uninterrupted run. *)

val run_result :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?pop_threshold:float ->
  ?prop_threshold:float ->
  ?repartition_every:int ->
  ?epsilon:float ->
  ?tau_switch:float ->
  ?max_events:int ->
  ?refresh_every:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  (result, error) Stdlib.result
(** Simulate from 0 to [t1]. Defaults: [seed = 1L], [sample_dt = t1/500],
    [pop_threshold = 1000.] (a reaction may go fast only when every
    reactant population is at least this), [prop_threshold = 1000.]
    (… and its propensity is at least this, in events per time unit),
    [repartition_every = 256] (checkpoint cadence, in discrete events or
    mixed-mode substeps), [epsilon = 0.05] (max relative change of a
    continuous species per substep), [tau_switch = 8.] (expected slow
    events per substep above which the substep fires them in bulk),
    [max_events = 50_000_000] (work budget: discrete firings + ODE
    slices), [refresh_every = 4096] (discrete-mode full propensity
    rebuild cadence, as in {!Ssa.Gillespie}). [model]/[arena] reuse a
    compilation/scratch as in the other engines ([arena] takes
    precedence). [cancel] is polled at least every 512 events and aborts
    with {!Numeric.Cancel.Cancelled}; [on_cancel] then receives the
    loop-top {!checkpoint} before the exception propagates, and [resume]
    restores one instead of starting from the network's initial state.
    Returns [Error] when the work budget is exhausted.

    With the default thresholds, networks whose populations stay below
    1000 run entirely in discrete mode — bitwise-identical to
    {!Ssa.Gillespie} at the same seed. *)

val run :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?pop_threshold:float ->
  ?prop_threshold:float ->
  ?repartition_every:int ->
  ?epsilon:float ->
  ?tau_switch:float ->
  ?max_events:int ->
  ?refresh_every:int ->
  ?model:model ->
  ?arena:arena ->
  ?cancel:Numeric.Cancel.t ->
  ?resume:checkpoint ->
  ?on_cancel:(checkpoint -> unit) ->
  t1:float ->
  Crn.Network.t ->
  result
(** Like {!run_result} but raises {!Error} on an exhausted work budget. *)

val mean_final :
  ?env:Crn.Rates.env ->
  ?runs:int ->
  ?jobs:int ->
  ?seed:int64 ->
  ?pop_threshold:float ->
  ?prop_threshold:float ->
  ?repartition_every:int ->
  ?epsilon:float ->
  ?tau_switch:float ->
  ?max_events:int ->
  t1:float ->
  Crn.Network.t ->
  string ->
  float * float
(** Hybrid counterpart of {!Ssa.Gillespie.mean_final}: [runs] (default
    20) trajectories with split seed streams fanned over [jobs] domains,
    model compiled once, one arena per worker; returns mean and sample
    standard deviation of the species' final value. Byte-identical for
    every [jobs] value. *)
