type t = {
  n_reactions : int;
  n_species : int;
  fast : bool array;
  continuous : bool array;
  mutable n_fast : int;
  mutable slow : int array;
}

let make ~n_reactions ~n_species =
  {
    n_reactions;
    n_species;
    fast = Array.make n_reactions false;
    continuous = Array.make n_species false;
    n_fast = 0;
    slow = Array.init n_reactions (fun i -> i);
  }

let reset p =
  Array.fill p.fast 0 p.n_reactions false;
  Array.fill p.continuous 0 p.n_species false;
  p.n_fast <- 0;
  p.slow <- Array.init p.n_reactions (fun i -> i)

let classify p ~(reactions : Ssa.Compiled.reaction array) ~props ~pop
    ~pop_threshold ~prop_threshold =
  let changed = ref false in
  let n_fast = ref 0 in
  for r = 0 to p.n_reactions - 1 do
    let rx = reactions.(r) in
    let fast = ref (props.(r) >= prop_threshold) in
    if !fast then begin
      let sp = rx.Ssa.Compiled.reactant_species in
      for i = 0 to Array.length sp - 1 do
        if pop sp.(i) < pop_threshold then fast := false
      done
    end;
    if !fast <> p.fast.(r) then changed := true;
    p.fast.(r) <- !fast;
    if !fast then incr n_fast
  done;
  p.n_fast <- !n_fast;
  Array.fill p.continuous 0 p.n_species false;
  let slow = Array.make (p.n_reactions - !n_fast) 0 in
  let si = ref 0 in
  for r = 0 to p.n_reactions - 1 do
    if p.fast.(r) then begin
      let rx = reactions.(r) in
      Array.iter
        (fun s -> p.continuous.(s) <- true)
        rx.Ssa.Compiled.reactant_species;
      Array.iter
        (fun s -> p.continuous.(s) <- true)
        rx.Ssa.Compiled.delta_species
    end
    else begin
      slow.(!si) <- r;
      incr si
    end
  done;
  p.slow <- slow;
  !changed
