let lint_item net issue =
  let open Exact.Certificate in
  let detail = Format.asprintf "%a" (Crn.Validate.pp_issue net) issue in
  let code, severity =
    match issue with
    | Crn.Validate.No_op_reaction _ -> ("no_op_reaction", Error)
    | Crn.Validate.Unused_species _ -> ("unused_species", Warning)
    | Crn.Validate.Never_produced _ -> ("never_produced", Warning)
    | Crn.Validate.Never_consumed _ -> ("never_consumed", Warning)
    | Crn.Validate.High_order _ -> ("high_order", Warning)
    | Crn.Validate.Duplicate_reaction _ -> ("duplicate_reaction", Warning)
    | Crn.Validate.Fractional_init _ -> ("fractional_init", Warning)
  in
  { code; severity; detail }

let certify ~title net =
  let extra = List.map (lint_item net) (Crn.Validate.check net) in
  Exact.Certificate.make ~title ~extra (Crn.Exact_view.of_network net)

let error_of_certificate cert =
  if Exact.Certificate.clean cert then None
  else Some (Error.Validation_failed { issues = Exact.Certificate.errors cert })
