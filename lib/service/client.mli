(** Blocking client for the service protocol.

    One connection, one request in flight at a time: {!call} writes a
    frame and blocks for the next frame back, so responses pair with
    requests by order. For pipelined use, open several clients. *)

type t

val connect : Addr.t -> t

val close : t -> unit

val call : t -> Json.t -> Json.t
(** Send a request object, return the raw response object. Raises
    [Failure] on a closed connection and {!Wire.Framing_error} on a
    corrupt stream. *)

(** Decoded view of a response envelope. [error_message] is the wire's
    own message string (display it as-is); [error] is the typed decode
    for dispatch on the code. *)
type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

val response_of_json : Json.t -> response

val request : t -> Json.t -> response
(** [call] + [response_of_json]. *)
