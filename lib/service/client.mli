(** Blocking client for the service protocol.

    One connection, one request in flight at a time: {!call} writes a
    frame and blocks for the next frame back, so responses pair with
    requests by order. For pipelined use, open several clients.

    Transient failures retry with bounded exponential backoff and full
    jitter (base 25 ms, doubling, capped at 1 s per sleep), bounded by
    both a retry count and a wall-clock budget. A request is re-sent
    only when the failure provably preceded the first response byte: a
    connect error, a write-side [EPIPE]/[ECONNRESET], or a clean close
    with zero response bytes. A response that started arriving and then
    died, or a read deadline expiring, is never retried — the server may
    have acted, and re-sending could act twice. *)

type t

exception Timeout of float
(** The read deadline (ms) expired while waiting for a response. The
    request may still be running server-side; it is not retried. *)

exception Retries_exhausted of { attempts : int; last : exn }
(** Raised (only when [retries > 0]) after the last transient failure:
    [attempts] transport attempts were made, [last] is the final
    failure. With [retries = 0] the underlying exception propagates
    unwrapped. *)

val connect :
  ?retries:int ->
  ?retry_budget_ms:float ->
  ?retry_seed:int64 ->
  ?read_deadline_ms:float ->
  Addr.t ->
  t
(** [retries] (default 0) is the number of re-attempts after a transient
    failure, shared between the initial connect and each {!call};
    [retry_budget_ms] (default 2000) caps the total wall clock spent
    retrying one operation; [retry_seed] (default 1) makes the jitter
    stream deterministic; [read_deadline_ms] arms [SO_RCVTIMEO] on the
    socket so a response wait cannot hang forever ([<= 0] or absent
    disables). *)

val close : t -> unit

val call : t -> Json.t -> Json.t
(** Send a request object, return the raw response object. Raises
    [Failure] on a closed connection or a server that closed without
    responding after retries, {!Timeout} on an expired read deadline,
    {!Retries_exhausted} when the retry budget runs out, and
    {!Wire.Framing_error} on a corrupt response stream. *)

(** Decoded view of a response envelope. [error_message] is the wire's
    own message string (display it as-is); [error] is the typed decode
    for dispatch on the code. *)
type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

val response_of_json : Json.t -> response

val request : t -> Json.t -> response
(** [call] + [response_of_json]. *)
