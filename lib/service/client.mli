(** Blocking client for the service protocol.

    One connection, one request in flight at a time: {!call} writes a
    request and blocks for the response, so responses pair with
    requests by order. For pipelined use, open several clients. Speaks
    either framing — length-prefixed wire frames ({!Addr.Unix_sock},
    {!Addr.Tcp}) or HTTP/1.1 to a gateway ({!Addr.Http}); the JSON
    payloads are identical, so results are byte-identical across
    transports.

    Transient failures retry with bounded exponential backoff and full
    jitter (base 25 ms, doubling, capped at 1 s per sleep), bounded by
    both a retry count and a wall-clock budget. A request is re-sent
    only when the failure provably preceded the first response byte: a
    connect error, a write-side [EPIPE]/[ECONNRESET], or a clean close
    with zero response bytes. A response that started arriving and then
    died, or a read deadline expiring, is never retried — the server may
    have acted, and re-sending could act twice.

    A complete structured [overloaded] or [shard_failed] response is
    also retried with the same backoff: both codes promise the work was
    refused or lost before completing, so a re-send cannot duplicate
    effects. If the retry budget runs out, the last such structured
    response is returned as-is rather than raising. *)

type t

exception Timeout of float
(** The read deadline (ms) expired while waiting for a response. The
    request may still be running server-side; it is not retried. *)

exception Retries_exhausted of { attempts : int; last : exn }
(** Raised (only when [retries > 0]) after the last transient failure:
    [attempts] transport attempts were made, [last] is the final
    failure. With [retries = 0] the underlying exception propagates
    unwrapped. *)

val connect :
  ?retries:int ->
  ?retry_budget_ms:float ->
  ?retry_seed:int64 ->
  ?read_deadline_ms:float ->
  Addr.t ->
  t
(** [retries] (default 0) is the number of re-attempts after a transient
    failure, shared between the initial connect and each {!call};
    [retry_budget_ms] (default 2000) caps the total wall clock spent
    retrying one operation; [retry_seed] (default 1) makes the jitter
    stream deterministic; [read_deadline_ms] arms [SO_RCVTIMEO] on the
    socket so a response wait cannot hang forever ([<= 0] or absent
    disables). *)

val close : t -> unit

val call : t -> Json.t -> Json.t
(** Send a request object, return the raw response object. Raises
    [Failure] on a closed connection or a server that closed without
    responding after retries, {!Timeout} on an expired read deadline,
    {!Retries_exhausted} when the retry budget runs out, and
    {!Wire.Framing_error} on a corrupt response stream. *)

val call_stream : t -> Json.t -> on_frame:(Json.t -> unit) -> Json.t
(** Send a streaming request (the [trace] op): every intermediate frame
    — the header and each sample chunk — is handed to [on_frame] as it
    arrives, and the final frame (the response envelope, marked
    ["done"]) is returned. Over HTTP each chunk of the chunked response
    is one frame. Retries apply only until the first frame arrives;
    a stream that dies mid-flight raises {!Wire.Framing_error}. *)

(** Decoded view of a response envelope. [error_message] is the wire's
    own message string (display it as-is); [error] is the typed decode
    for dispatch on the code. *)
type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

val response_of_json : Json.t -> response

val request : t -> Json.t -> response
(** [call] + [response_of_json]. *)
