(* Length-prefixed framing over a stream socket: each frame is a 4-byte
   big-endian payload length followed by that many bytes of UTF-8 JSON.
   Writes emit the whole frame with one [write] sequence under the
   caller's lock; reads come in two flavors — a blocking reader for the
   simple synchronous client, and an incremental decoder the server
   feeds from its select loop so one slow connection can never stall the
   others. *)

let max_frame = 64 * 1024 * 1024
(* A defensive bound: a 64 MiB request/response is a bug, not a
   workload. Oversized frames raise [Framing_error] instead of letting a
   corrupt length prefix allocate unbounded memory. *)

exception Framing_error of string

let check_len len =
  if len < 0 || len > max_frame then
    raise
      (Framing_error (Printf.sprintf "frame length %d out of bounds" len))

(* ------------------------------------------------------------- writing *)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    let written = Unix.write fd bytes !off (n - !off) in
    if written <= 0 then raise (Framing_error "short write");
    off := !off + written
  done

let write_frame fd payload =
  let n = String.length payload in
  check_len n;
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit_string payload 0 frame 4 n;
  write_all fd frame

(* ------------------------------------------------------ blocking reads *)

let read_exact fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf (off + !got) (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got = len

let read_frame fd =
  let header = Bytes.create 4 in
  (* EOF cleanly between frames is a closed connection, not an error *)
  let n = Unix.read fd header 0 4 in
  if n = 0 then None
  else begin
    if n < 4 && not (read_exact fd header n (4 - n)) then
      raise (Framing_error "EOF inside frame header");
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    check_len len;
    let payload = Bytes.create len in
    if not (read_exact fd payload 0 len) then
      raise (Framing_error "EOF inside frame payload");
    Some (Bytes.unsafe_to_string payload)
  end

(* --------------------------------------------------- incremental decode *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let feed d chunk chunk_len =
  let need = d.len + chunk_len in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit chunk 0 d.buf d.len chunk_len;
  d.len <- d.len + chunk_len

let next_frame d =
  if d.len < 4 then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    check_len len;
    if d.len < 4 + len then None
    else begin
      let payload = Bytes.sub_string d.buf 4 len in
      let rest = d.len - 4 - len in
      Bytes.blit d.buf (4 + len) d.buf 0 rest;
      d.len <- rest;
      Some payload
    end
  end
