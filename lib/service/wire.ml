(* Length-prefixed framing over a stream socket: each frame is a 4-byte
   big-endian payload length followed by that many bytes of UTF-8 JSON.
   Writes emit the whole frame with one [write] sequence under the
   caller's lock; reads come in two flavors — a blocking reader for the
   simple synchronous client, and an incremental decoder the server
   feeds from its select loop so one slow connection can never stall the
   others.

   All frame I/O goes through a {!transport} — a pair of read/write
   functions with the [Unix.read]/[Unix.write] calling convention — so
   the fault-injection shim ({!Fault}) can sit between the framing layer
   and the socket without either side knowing. *)

let default_max_frame = 64 * 1024 * 1024
(* A defensive ceiling even when the caller sets no explicit limit: a
   64 MiB request/response is a bug, not a workload. The daemon
   configures a much smaller per-connection limit. *)

exception Framing_error of string

exception Oversized_frame of { len : int; limit : int }

let check_len ~max_frame len =
  if len < 0 then
    raise (Framing_error (Printf.sprintf "negative frame length %d" len))
  else if len > max_frame then raise (Oversized_frame { len; limit = max_frame })

(* ----------------------------------------------------------- transport *)

type transport = {
  read : Bytes.t -> int -> int -> int;
  write : Bytes.t -> int -> int -> int;
}

let of_fd fd = { read = Unix.read fd; write = Unix.write fd }

(* ------------------------------------------------------------- writing *)

let write_all t bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    let written = t.write bytes !off (n - !off) in
    if written <= 0 then raise (Framing_error "short write");
    off := !off + written
  done

let write_frame_t ?(max_frame = default_max_frame) t payload =
  let n = String.length payload in
  check_len ~max_frame n;
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit_string payload 0 frame 4 n;
  write_all t frame

let write_frame ?max_frame fd payload =
  write_frame_t ?max_frame (of_fd fd) payload

(* ------------------------------------------------------ blocking reads *)

let read_exact t buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = t.read buf (off + !got) (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got = len

let read_frame_t ?(max_frame = default_max_frame) t =
  let header = Bytes.create 4 in
  (* EOF cleanly between frames is a closed connection, not an error *)
  let n = t.read header 0 4 in
  if n = 0 then None
  else begin
    if n < 4 && not (read_exact t header n (4 - n)) then
      raise (Framing_error "EOF inside frame header");
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    (* reject a hostile prefix before the payload allocation *)
    check_len ~max_frame len;
    let payload = Bytes.create len in
    if not (read_exact t payload 0 len) then
      raise (Framing_error "EOF inside frame payload");
    Some (Bytes.unsafe_to_string payload)
  end

let read_frame ?max_frame fd = read_frame_t ?max_frame (of_fd fd)

(* --------------------------------------------------- incremental decode *)

type decoder = { mutable buf : Bytes.t; mutable len : int; max_frame : int }

let decoder ?(max_frame = default_max_frame) () =
  { buf = Bytes.create 4096; len = 0; max_frame }

let buffered d = d.len

let feed d chunk chunk_len =
  let need = d.len + chunk_len in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit chunk 0 d.buf d.len chunk_len;
  d.len <- d.len + chunk_len

let next_frame d =
  if d.len < 4 then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    (* the length prefix is validated as soon as it is complete — before
       any payload bytes are awaited or a payload buffer is allocated, so
       a hostile prefix can neither request a huge allocation nor make
       the decoder buffer megabytes of a frame it will reject anyway *)
    check_len ~max_frame:d.max_frame len;
    if d.len < 4 + len then None
    else begin
      let payload = Bytes.sub_string d.buf 4 len in
      let rest = d.len - 4 - len in
      Bytes.blit d.buf (4 + len) d.buf 0 rest;
      d.len <- rest;
      Some payload
    end
  end
