(** Minimal JSON codec for the service wire protocol (stdlib only).

    Floats print with [%.17g] (integral values as integers), so numeric
    payloads round-trip bit-exactly through [to_string]/[of_string] —
    the foundation of the service's byte-identical-results guarantee.
    NaN and infinities, which strict JSON cannot represent, use the
    Python-json extension tokens [NaN], [Infinity] and [-Infinity] (both
    printed and accepted), so even diverged simulations round-trip. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

val of_string : string -> t
(** Strict parse of exactly one JSON value (trailing whitespace allowed).
    Raises {!Parse_error}. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] additionally requires the number to be integral. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val num : float -> t
val int : int -> t
val str : string -> t
