(* Dependency-free binary encoding for snapshots and checkpoints.

   Writers append to a [Buffer.t]; readers walk an immutable string with
   a cursor and raise [Corrupt] on any malformed input — truncation, a
   negative or absurd length prefix, a bad tag — so callers can treat
   every decode failure uniformly (skip-and-count, never crash).

   All integers are 64-bit big-endian (OCaml ints round-trip exactly;
   [w_int]/[r_int] are the only int codec, so there is no width
   confusion), floats travel as their IEEE-754 bit patterns
   ([Int64.bits_of_float]) so values — including NaNs, infinities and
   signed zeros — round-trip bitwise. *)

exception Corrupt of string

let fail msg = raise (Corrupt msg)

(* ---------- writers ---------- *)

type writer = Buffer.t

let writer () = Buffer.create 1024
let contents (b : writer) = Buffer.contents b
let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_i64 b (v : int64) = Buffer.add_int64_be b v
let w_int b n = Buffer.add_int64_be b (Int64.of_int n)
let w_f64 b x = Buffer.add_int64_be b (Int64.bits_of_float x)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_array f b a =
  w_int b (Array.length a);
  Array.iter (f b) a

let w_int_array b a = w_array w_int b a
let w_f64_array b a = w_array w_f64 b a
let w_bool_array b a = w_array w_bool b a

let w_option f b = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      f b v

(* ---------- readers ---------- *)

type reader = { buf : string; mutable pos : int }

let reader s = { buf = s; pos = 0 }

let need r n =
  if n < 0 || r.pos + n > String.length r.buf then fail "truncated input"

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  need r 8;
  let v = String.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r = Int64.to_int (r_i64 r)
let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with 0 -> false | 1 -> true | _ -> fail "bad boolean tag"

let r_string r =
  let n = r_int r in
  if n < 0 then fail "negative string length";
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_array f r =
  let n = r_int r in
  (* every element costs at least one byte, so a length prefix larger
     than the remaining input is corrupt — reject before allocating *)
  if n < 0 || n > String.length r.buf - r.pos then fail "bad array length";
  Array.init n (fun _ -> f r)

let r_int_array r = r_array r_int r
let r_f64_array r = r_array r_f64 r
let r_bool_array r = r_array r_bool r
let r_option f r = if r_bool r then Some (f r) else None
let at_end r = r.pos = String.length r.buf

let expect_end r =
  if not (at_end r) then fail "trailing garbage after payload"

(* ---------- CRC-32 (IEEE, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- file container ---------- *)

let magic = "MRSCSNAP"

type file = { kind : string; version : int; payload : string }

let encode_file ~kind ~version payload =
  let b = writer () in
  Buffer.add_string b magic;
  w_string b kind;
  w_int b version;
  w_string b payload;
  w_i64 b (Int64.of_int32 (crc32 payload));
  contents b

let decode_file s =
  let r = reader s in
  need r (String.length magic);
  let m = String.sub r.buf r.pos (String.length magic) in
  if m <> magic then fail "bad magic";
  r.pos <- r.pos + String.length magic;
  let kind = r_string r in
  let version = r_int r in
  let payload = r_string r in
  let crc = Int64.to_int32 (r_i64 r) in
  expect_end r;
  if crc <> crc32 payload then fail "checksum mismatch";
  { kind; version; payload }

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file path = decode_file (read_raw path)

(* Write-to-temp then rename: readers either see the complete old file
   or the complete new one, never a torn write. The temp name includes
   the pid so concurrent writers (several shards sharing a parent dir by
   misconfiguration) cannot clobber each other's partial output. *)
let write_raw_atomic path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_file_atomic path ~kind ~version payload =
  write_raw_atomic path (encode_file ~kind ~version payload)
