(* The mrsc scale-out gateway.

   One front-end process fans requests out over N crnserved worker
   shards. Routing is a consistent-hash ring ({!Ring}) keyed on the
   request's compiled-model identity ({!Crn.Equiv.cache_key} plus the
   rate environment), so a hot compiled model lives in exactly one
   shard's Model_cache and a repeated source is never re-synthesized
   anywhere in the fleet. The gateway speaks both framings: the
   length-prefixed wire protocol and HTTP/1.1 (POST /api, plus /health
   and a Prometheus-text /metrics); shard-side it speaks only the wire
   protocol, relaying response frames byte-for-byte — which is what
   keeps gateway responses byte-identical to direct daemon responses.

   Concurrency model: a single select loop multiplexes client
   connections and in-flight shard exchanges; no worker pool — the
   gateway only routes, relays and synthesizes routing keys (memoized).
   Each in-flight request owns a dedicated shard connection (the wire
   protocol carries no request ids, so pairing is by connection), drawn
   from a per-shard idle pool; the checked-out count doubles as the
   per-shard queue depth for admission control, answered with the same
   structured [overloaded] reply the daemon uses. A shard that dies
   mid-exchange yields a structured retryable [shard_failed] reply,
   never a hang; spawned shards are monitored and respawned with the
   client library's jittered exponential backoff. *)

type backend =
  | Spawn of {
      exe : string;  (* crnserved binary *)
      count : int;
      dir : string;  (* runtime dir for the shard sockets *)
      jobs : int option;  (* per-shard worker domains *)
      queue_bound : int option;
      cache_capacity : int option;
      state_dir : string option;  (* per-shard subdir <dir>/shard-<i>-state *)
      extra_args : string list;
    }
  | Attach of Addr.t list  (* pre-existing daemons (tests, manual fleets) *)

type config = {
  wire : Addr.t option;
  http : Addr.t option;
  backend : backend;
  replicas : int;
  affinity : bool;
      (* false = route uniformly at random: the no-affinity baseline
         the bench uses to measure what the ring buys *)
  max_inflight : int;  (* per-shard admission bound *)
  route_memo : int;  (* source -> routing-key memo capacity *)
  max_frame : int;
  max_conns : int;
  shard_deadline_ms : float;  (* stats/metrics fan-out read deadline *)
  boot_timeout_ms : float;  (* wait for spawned shards before listening *)
  log : bool;
  seed : int64;
}

let default_config backend =
  {
    wire = None;
    http = None;
    backend;
    replicas = 128;
    affinity = true;
    max_inflight = 64;
    route_memo = 512;
    max_frame = 64 * 1024 * 1024;
    max_conns = 1024;
    shard_deadline_ms = 2_000.;
    boot_timeout_ms = 10_000.;
    log = false;
    seed = 1L;
  }

(* ------------------------------------------------------------- plumbing *)

type shard = {
  sid : int;
  saddr : Addr.t;
  mutable pid : int option;  (* Spawn backend only *)
  mutable idle : Unix.file_descr list;
  mutable inflight : int;
  mutable up : bool;
  mutable fails : int;  (* consecutive connect/exchange failures *)
  mutable respawn_at : float;
  mutable routed : int;
  mutable failed : int;
}

type frontend = Fwire of Wire.decoder | Fhttp of Http.reader

type cconn = {
  cfd : Unix.file_descr;
  front : frontend;
  mutable eof : bool;  (* peer finished sending; drain replies, then close *)
  mutable cclosed : bool;
  mutable cin_flight : int;
  cid : int;
}

type exchange = {
  x_shard : shard;
  xfd : Unix.file_descr;
  xdec : Wire.decoder;
  x_client : cconn;
  x_http : bool;
  x_stream : bool;
  x_op : string;
  mutable http_started : bool;  (* chunked response head written *)
  mutable x_done : bool;
}

type t = {
  cfg : config;
  shards : shard array;
  ring : Ring.t;
  rng : Numeric.Rng.t;
  memo : (string, string) Hashtbl.t;
  memo_order : string Queue.t;  (* FIFO eviction; capacity route_memo *)
  mutable conns : cconn list;
  mutable exchanges : exchange list;
  mutable next_cid : int;
  started_at : float;
  (* gateway-level counters, surfaced by stats and /metrics *)
  by_op : (string, int) Hashtbl.t;
  mutable requests : int;
  mutable wire_requests : int;
  mutable http_requests : int;
  mutable overloaded : int;
  mutable shard_failures : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let logf gw fmt =
  if gw.cfg.log then Printf.eprintf ("crnsgate: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

(* ------------------------------------------------------- client replies *)

let close_client gw c =
  if not c.cclosed then begin
    c.cclosed <- true;
    (try Unix.close c.cfd with _ -> ());
    logf gw "conn %d: closed" c.cid
  end

let send_wire gw c payload =
  if not c.cclosed then
    try Wire.write_frame c.cfd payload
    with Unix.Unix_error _ | Wire.Framing_error _ -> close_client gw c

let send_raw gw c s =
  if not c.cclosed then
    try write_all c.cfd s with Unix.Unix_error _ -> close_client gw c

let status_of_code = function
  | "bad_request" | "parse_error" | "unknown_design" | "not_compilable" -> 400
  | "max_events_exceeded" | "max_steps_exceeded" | "solver_failure"
  | "validation_failed" ->
      422
  | "deadline_exceeded" -> 504
  | "overloaded" | "connection_limit" | "shard_failed" -> 503
  | _ -> 500

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let status_of_payload payload =
  if
    starts_with ~prefix:"{\"ok\":true" payload
    || starts_with ~prefix:"{\"done\":true,\"ok\":true" payload
  then 200
  else
    match
      Option.bind (Json.member "error" (Json.of_string payload)) (fun e ->
          Option.bind (Json.member "code" e) Json.to_str)
    with
    | Some code -> status_of_code code
    | None | (exception _) -> 500

let http_json gw c ~status payload =
  send_raw gw c (Http.response ~status ~content_type:"application/json" payload)

(* a locally produced response envelope, shaped exactly like the
   daemon's ([done_] marks the final frame of a refused stream) *)
let local_envelope ?(done_ = false) ~arrival ~op outcome =
  let metrics =
    Metrics.request_json
      {
        Metrics.queue_wait_ms = 0.;
        cache = Metrics.Not_applicable;
        compile_ms = 0.;
        run_ms = 0.;
        total_ms = (Unix.gettimeofday () -. arrival) *. 1000.;
        extra = [];
      }
  in
  let fields =
    match outcome with
    | Ok result ->
        [
          ("ok", Json.Bool true);
          ("op", Json.str op);
          ("result", result);
          ("metrics", metrics);
        ]
    | Error err ->
        [
          ("ok", Json.Bool false);
          ("op", Json.str op);
          ("error", Error.to_json err);
          ("metrics", metrics);
        ]
  in
  Json.to_string
    (Json.Obj (if done_ then ("done", Json.Bool true) :: fields else fields))

let reply_local gw c ~http ?(done_ = false) ~arrival ~op outcome =
  let payload = local_envelope ~done_ ~arrival ~op outcome in
  if http then
    let status =
      match outcome with Ok _ -> 200 | Error e -> status_of_code (Error.code e)
    in
    http_json gw c ~status payload
  else send_wire gw c payload

(* --------------------------------------------------------- shard conns *)

let drop_idle s =
  List.iter (fun fd -> try Unix.close fd with _ -> ()) s.idle;
  s.idle <- []

let note_shard_trouble gw s =
  s.up <- false;
  s.fails <- s.fails + 1;
  drop_idle s;
  gw.shard_failures <- gw.shard_failures + 1;
  logf gw "shard %d: trouble (consecutive failures %d)" s.sid s.fails

(* an idle pooled connection that became readable can only mean EOF (a
   healthy idle daemon sends nothing unprompted) — or stale bytes that
   would desync the next exchange; both mean discard *)
let idle_fd_ok fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let rec checkout gw s =
  match s.idle with
  | fd :: rest ->
      s.idle <- rest;
      if idle_fd_ok fd then Some fd
      else begin
        (try Unix.close fd with _ -> ());
        checkout gw s
      end
  | [] -> (
      match Addr.connect s.saddr with
      | fd ->
          s.up <- true;
          s.fails <- 0;
          Some fd
      | exception _ ->
          s.up <- false;
          s.fails <- s.fails + 1;
          None)

let checkin s fd = s.idle <- fd :: s.idle

(* ---------------------------------------------------------- routing key *)

(* Reimplements the daemon's request decoding just far enough to name
   the compiled model a request will use. The expensive step — building
   the network to get its {!Crn.Equiv.cache_key} — runs once per
   distinct source and is memoized; repeats hit the memo. Sources that
   fail to build still get a deterministic key (the raw spec) so their
   structured error comes from a consistent shard. *)

let memo_put gw key value =
  if Hashtbl.length gw.memo >= gw.cfg.route_memo then begin
    match Queue.take_opt gw.memo_order with
    | Some oldest -> Hashtbl.remove gw.memo oldest
    | None -> ()
  end;
  Hashtbl.replace gw.memo key value;
  Queue.add key gw.memo_order

let spec_of req =
  match Json.member "network" req with
  | None -> None
  | Some n -> (
      let gets k = Option.bind (Json.member k n) Json.to_str in
      match (gets "catalog", gets "text") with
      | Some name, None -> Some ("catalog:" ^ name, `Catalog name)
      | None, Some text -> Some ("text:" ^ text, `Text text)
      | _ -> None)

let build_spec = function
  | `Catalog name -> (
      match Designs.Catalog.find name with
      | Some entry -> Some (entry.Designs.Catalog.build ())
      | None -> None)
  | `Text text -> (
      try Some (Crn.Parser.network_of_string text) with _ -> None)

let env_tag req =
  match Option.bind (Json.member "ratio" req) Json.to_float with
  | Some r -> Printf.sprintf "%.17g" r
  | None -> "default"

let routing_key gw ~payload req =
  match spec_of req with
  | None ->
      (* unroutable-by-model requests still route deterministically *)
      "payload:" ^ payload
  | Some (spec_str, spec) ->
      (* the memo maps the source alone to its structural identity —
         the rate environment only scales rates, so the same network at
         a new ratio reuses the memoized build and only the routing tag
         changes (mirroring the shards' cache_key+env model keying) *)
      let base =
        match Hashtbl.find_opt gw.memo spec_str with
        | Some key ->
            gw.memo_hits <- gw.memo_hits + 1;
            key
        | None ->
            gw.memo_misses <- gw.memo_misses + 1;
            let key =
              match build_spec spec with
              | Some net -> Crn.Equiv.cache_key net
              | None -> "unbuildable:" ^ spec_str
            in
            memo_put gw spec_str key;
            key
      in
      base ^ "@" ^ env_tag req

let shard_order gw ~key =
  if gw.cfg.affinity then Ring.route_order gw.ring key
  else begin
    (* uniform random baseline: a random owner, the rest as failovers *)
    let ids = Array.map (fun s -> s.sid) gw.shards in
    let n = Array.length ids in
    let k = Numeric.Rng.int gw.rng n in
    let tmp = ids.(0) in
    ids.(0) <- ids.(k);
    ids.(k) <- tmp;
    Array.to_list ids
  end

(* ----------------------------------------------------------- exchanges *)

let fail_exchange gw x =
  if not x.x_done then begin
    x.x_done <- true;
    let c = x.x_client in
    let err = Error.Shard_failed { shard = x.x_shard.sid } in
    let payload =
      local_envelope ~done_:x.x_stream ~arrival:(Unix.gettimeofday ())
        ~op:x.x_op (Error err)
    in
    if x.x_http then begin
      if x.http_started then
        (* mid-stream: terminate the chunked body with a done frame *)
        send_raw gw c (Http.chunk payload ^ Http.last_chunk)
      else http_json gw c ~status:503 payload
    end
    else send_wire gw c payload;
    (try Unix.close x.xfd with _ -> ());
    x.x_shard.inflight <- x.x_shard.inflight - 1;
    x.x_shard.failed <- x.x_shard.failed + 1;
    c.cin_flight <- c.cin_flight - 1;
    note_shard_trouble gw x.x_shard
  end

let finish_exchange gw x ~final =
  x.x_done <- true;
  let c = x.x_client in
  (if x.x_http then
     if x.http_started then
       send_raw gw c (Http.chunk final ^ Http.last_chunk)
     else http_json gw c ~status:(status_of_payload final) final
   else send_wire gw c final);
  (* the shard connection is reusable only if the response stream ended
     exactly on a frame boundary *)
  if Wire.buffered x.xdec = 0 then checkin x.x_shard x.xfd
  else (try Unix.close x.xfd with _ -> ());
  x.x_shard.inflight <- x.x_shard.inflight - 1;
  c.cin_flight <- c.cin_flight - 1

let relay_frame gw x payload =
  let c = x.x_client in
  if x.x_http then begin
    if not x.http_started then begin
      x.http_started <- true;
      send_raw gw c
        (Http.chunked_head ~status:200 ~content_type:"application/json" ())
    end;
    send_raw gw c (Http.chunk payload)
  end
  else send_wire gw c payload

let read_exchange gw buf x =
  match Unix.read x.xfd buf 0 (Bytes.length buf) with
  | 0 -> fail_exchange gw x
  | n -> (
      Wire.feed x.xdec buf n;
      try
        let rec drain () =
          if not x.x_done then
            match Wire.next_frame x.xdec with
            | None -> ()
            | Some payload ->
                if x.x_stream && not (starts_with ~prefix:"{\"done\":" payload)
                then begin
                  relay_frame gw x payload;
                  drain ()
                end
                else finish_exchange gw x ~final:payload
        in
        drain ()
      with Wire.Framing_error _ | Wire.Oversized_frame _ ->
        fail_exchange gw x)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> fail_exchange gw x

(* route, admit, and forward one compute request; replies locally when
   the fleet refuses or cannot take it *)
let forward gw c ~http ~arrival ~op ~stream ~payload req =
  let key = routing_key gw ~payload req in
  let rec go = function
    | [] ->
        (* every shard connect failed: transient fleet-wide trouble *)
        let preferred =
          match shard_order gw ~key with s :: _ -> s | [] -> -1
        in
        gw.shard_failures <- gw.shard_failures + 1;
        reply_local gw c ~http ~done_:stream ~arrival ~op
          (Error (Error.Shard_failed { shard = preferred }))
    | sid :: rest -> (
        let s = gw.shards.(sid) in
        if s.inflight >= gw.cfg.max_inflight then begin
          (* admission control on the owner (no spill: spilling would
             re-compile the hot model on a neighbour, the exact cost the
             ring exists to avoid); structured and retryable *)
          gw.overloaded <- gw.overloaded + 1;
          reply_local gw c ~http ~done_:stream ~arrival ~op
            (Error (Error.Overloaded { queue_bound = gw.cfg.max_inflight }))
        end
        else
          match checkout gw s with
          | None -> go rest
          | Some fd -> (
              match Wire.write_frame fd payload with
              | () ->
                  s.inflight <- s.inflight + 1;
                  s.routed <- s.routed + 1;
                  c.cin_flight <- c.cin_flight + 1;
                  gw.exchanges <-
                    {
                      x_shard = s;
                      xfd = fd;
                      xdec = Wire.decoder ~max_frame:gw.cfg.max_frame ();
                      x_client = c;
                      x_http = http;
                      x_stream = stream;
                      x_op = op;
                      http_started = false;
                      x_done = false;
                    }
                    :: gw.exchanges
              | exception (Unix.Unix_error _ | Wire.Framing_error _) ->
                  (try Unix.close fd with _ -> ());
                  note_shard_trouble gw s;
                  go rest))
  in
  go (shard_order gw ~key)

(* ------------------------------------------------- stats and /metrics *)

(* blocking single-frame call to one shard with a read deadline; used
   by the stats/metrics fan-out (small fleets, bounded wait) *)
let shard_call gw s req_json =
  match checkout gw s with
  | None -> None
  | Some fd -> (
      let give_up () =
        (try Unix.close fd with _ -> ());
        note_shard_trouble gw s;
        None
      in
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO
          (gw.cfg.shard_deadline_ms /. 1000.);
        Wire.write_frame fd (Json.to_string req_json);
        match Wire.read_frame fd with
        | Some payload ->
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.;
            checkin s fd;
            Some (Json.of_string payload)
        | None -> give_up ()
      with _ -> give_up ())

let shard_json gw s =
  Json.Obj
    [
      ("shard", Json.int s.sid);
      ("addr", Json.str (Addr.to_string s.saddr));
      ("up", Json.Bool s.up);
      ( "pid",
        match s.pid with Some p -> Json.int p | None -> Json.Null );
      ("inflight", Json.int s.inflight);
      ("routed", Json.int s.routed);
      ("failed", Json.int s.failed);
      ("consecutive_failures", Json.int s.fails);
      ("affinity", Json.Bool gw.cfg.affinity);
      ("max_inflight", Json.int gw.cfg.max_inflight);
    ]

let table_json tbl =
  Json.Obj
    (Hashtbl.fold (fun k v acc -> (k, Json.int v) :: acc) tbl []
    |> List.sort compare)

let gateway_json gw =
  Json.Obj
    [
      ("uptime_s", Json.num (Unix.gettimeofday () -. gw.started_at));
      ("requests", Json.int gw.requests);
      ("wire_requests", Json.int gw.wire_requests);
      ("http_requests", Json.int gw.http_requests);
      ("by_op", table_json gw.by_op);
      ("overloaded", Json.int gw.overloaded);
      ("shard_failures", Json.int gw.shard_failures);
      ("route_memo_hits", Json.int gw.memo_hits);
      ("route_memo_misses", Json.int gw.memo_misses);
      ("affinity", Json.Bool gw.cfg.affinity);
      ("ring_replicas", Json.int (Ring.replicas gw.ring));
      ( "shards",
        Json.List (Array.to_list (Array.map (shard_json gw) gw.shards)) );
    ]

let stats_req = Json.Obj [ ("op", Json.str "stats") ]

let num_field j key =
  Option.value ~default:0.
    (Option.bind (Json.member key j) Json.to_float)

(* fleet-wide aggregate: per-shard stats results summed, the lifetime
   work table included *)
let fleet_json shard_stats =
  let sum key =
    List.fold_left
      (fun acc (_, st) ->
        match st with Some j -> acc +. num_field j key | None -> acc)
      0. shard_stats
  in
  let work = Hashtbl.create 16 in
  List.iter
    (fun (_, st) ->
      match Option.bind st (Json.member "work") with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (k, v) ->
              match Json.to_float v with
              | Some f ->
                  Hashtbl.replace work k
                    (f +. Option.value ~default:0. (Hashtbl.find_opt work k))
              | None -> ())
            fields
      | _ -> ())
    shard_stats;
  Json.Obj
    [
      ("requests", Json.num (sum "requests"));
      ("ok", Json.num (sum "ok"));
      ("errors", Json.num (sum "errors"));
      ("cache_hits", Json.num (sum "cache_hits"));
      ("cache_misses", Json.num (sum "cache_misses"));
      ("cache_entries", Json.num (sum "cache_entries"));
      ("job_exceptions", Json.num (sum "job_exceptions"));
      ("validate_ok", Json.num (sum "validate_ok"));
      ("validate_reject", Json.num (sum "validate_reject"));
      ("warm_loaded", Json.num (sum "warm_loaded"));
      ("warm_skipped_corrupt", Json.num (sum "warm_skipped_corrupt"));
      ("warm_skipped_version", Json.num (sum "warm_skipped_version"));
      ("snapshot_writes", Json.num (sum "snapshot_writes"));
      ( "work",
        Json.Obj
          (Hashtbl.fold (fun k v acc -> (k, Json.num v) :: acc) work []
          |> List.sort compare) );
    ]

let collect_shard_stats gw =
  Array.to_list
    (Array.map
       (fun s ->
         ( s,
           Option.bind (shard_call gw s stats_req) (fun j ->
               Json.member "result" j) ))
       gw.shards)

let handle_stats gw =
  let shard_stats = collect_shard_stats gw in
  Json.Obj
    [
      ("gateway", gateway_json gw);
      ( "shards",
        Json.List
          (List.map
             (fun (s, st) ->
               Json.Obj
                 [
                   ("shard", Json.int s.sid);
                   ("stats", Option.value ~default:Json.Null st);
                 ])
             shard_stats) );
      ("fleet", fleet_json shard_stats);
    ]

(* Prometheus text exposition: gateway counters, per-shard liveness and
   routing counters, and every numeric field of each shard's stats —
   per-op, per-error-code and per-fault-class counters plus the
   lifetime work table — labeled by shard. *)
let prometheus gw =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# TYPE mrsc_gateway_uptime_seconds gauge";
  line "mrsc_gateway_uptime_seconds %.3f"
    (Unix.gettimeofday () -. gw.started_at);
  line "# TYPE mrsc_gateway_requests_total counter";
  line "mrsc_gateway_requests_total %d" gw.requests;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) gw.by_op []
  |> List.sort compare
  |> List.iter (fun (op, n) ->
         line "mrsc_gateway_requests_total{op=%S} %d" op n);
  line "# TYPE mrsc_gateway_overloaded_total counter";
  line "mrsc_gateway_overloaded_total %d" gw.overloaded;
  line "# TYPE mrsc_gateway_shard_failures_total counter";
  line "mrsc_gateway_shard_failures_total %d" gw.shard_failures;
  line "# TYPE mrsc_gateway_route_memo_hits_total counter";
  line "mrsc_gateway_route_memo_hits_total %d" gw.memo_hits;
  line "mrsc_gateway_route_memo_misses_total %d" gw.memo_misses;
  let shard_stats = collect_shard_stats gw in
  List.iter
    (fun ((s : shard), st) ->
      let l name value = line "%s{shard=\"%d\"} %s" name s.sid value in
      l "mrsc_shard_up" (if s.up then "1" else "0");
      l "mrsc_shard_inflight" (string_of_int s.inflight);
      l "mrsc_shard_routed_total" (string_of_int s.routed);
      l "mrsc_shard_failed_total" (string_of_int s.failed);
      match st with
      | None -> ()
      | Some j -> (
          (match j with
          | Json.Obj fields ->
              List.iter
                (fun (k, v) ->
                  match (v, Json.to_float v) with
                  | Json.Bool _, _ | _, None -> ()
                  | _, Some f -> l ("mrsc_shard_" ^ k) (Printf.sprintf "%g" f))
                fields
          | _ -> ());
          let labeled field metric label_name =
            match Json.member field j with
            | Some (Json.Obj entries) ->
                List.iter
                  (fun (k, v) ->
                    match Json.to_float v with
                    | Some f ->
                        line "%s{shard=\"%d\",%s=%S} %g" metric s.sid
                          label_name k f
                    | None -> ())
                  entries
            | _ -> ()
          in
          labeled "by_op" "mrsc_shard_requests_by_op_total" "op";
          labeled "by_error" "mrsc_shard_errors_by_code_total" "code";
          labeled "work" "mrsc_shard_work_total" "counter"))
    shard_stats;
  Buffer.contents b

let health gw =
  let up = Array.fold_left (fun n s -> if s.up then n + 1 else n) 0 gw.shards in
  let total = Array.length gw.shards in
  let body =
    Json.to_string
      (Json.Obj
         [
           ("status", Json.str (if up > 0 then "ok" else "degraded"));
           ("shards", Json.int total);
           ("up", Json.int up);
           ("protocol", Json.int Server.protocol_version);
         ])
  in
  ((if up > 0 then 200 else 503), body)

(* ------------------------------------------------------------ requests *)

let handle_request gw c ~http payload =
  let arrival = Unix.gettimeofday () in
  gw.requests <- gw.requests + 1;
  if http then gw.http_requests <- gw.http_requests + 1
  else gw.wire_requests <- gw.wire_requests + 1;
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
      reply_local gw c ~http ~arrival ~op:"?"
        (Error (Error.Bad_request ("bad JSON: " ^ msg)))
  | req -> (
      let op =
        Option.value ~default:""
          (Option.bind (Json.member "op" req) Json.to_str)
      in
      bump gw.by_op (if op = "" then "?" else op);
      match op with
      | "" ->
          reply_local gw c ~http ~arrival ~op:"?"
            (Error (Error.Bad_request "missing \"op\""))
      | "ping" ->
          (* same result bytes as a daemon's ping: transport-transparent *)
          reply_local gw c ~http ~arrival ~op:"ping"
            (Ok (Json.Obj [ ("protocol", Json.int Server.protocol_version) ]))
      | "stats" ->
          reply_local gw c ~http ~arrival ~op:"stats" (Ok (handle_stats gw))
      | op ->
          forward gw c ~http ~arrival ~op ~stream:(op = "trace") ~payload req)

(* one HTTP request at a time per connection: keep-alive responses must
   come back in request order, and exchanges complete out of order —
   so the next buffered request is parsed only once the previous
   response went out (drained again from the completion path) *)
let drain_http gw c reader =
  try
    let continue = ref true in
    while (not c.cclosed) && c.cin_flight = 0 && !continue do
      match Http.next_request reader with
      | None -> continue := false
      | Some r -> (
          match (r.Http.meth, r.Http.path) with
          | "POST", ("/api" | "/") -> handle_request gw c ~http:true r.Http.body
          | "GET", "/health" ->
              let status, body = health gw in
              send_raw gw c
                (Http.response ~status ~content_type:"application/json" body)
          | "GET", "/metrics" ->
              send_raw gw c
                (Http.response ~status:200
                   ~content_type:"text/plain; version=0.0.4" (prometheus gw))
          | meth, path ->
              send_raw gw c
                (Http.response ~status:404 ~content_type:"application/json"
                   (Json.to_string
                      (Json.Obj
                         [
                           ("ok", Json.Bool false);
                           ( "error",
                             Error.to_json
                               (Error.Bad_request
                                  (Printf.sprintf "no route for %s %s" meth
                                     path)) );
                         ]))))
    done
  with Http.Bad_request msg ->
    send_raw gw c
      (Http.response ~status:400 ~content_type:"application/json"
         (Json.to_string
            (Json.Obj
               [
                 ("ok", Json.Bool false);
                 ("error", Error.to_json (Error.Bad_request msg));
               ])));
    c.eof <- true

let read_client gw buf c =
  match Unix.read c.cfd buf 0 (Bytes.length buf) with
  | 0 -> c.eof <- true
  | n -> (
      match c.front with
      | Fwire dec -> (
          Wire.feed dec buf n;
          try
            let rec drain () =
              match Wire.next_frame dec with
              | Some payload ->
                  handle_request gw c ~http:false payload;
                  drain ()
              | None -> ()
            in
            drain ()
          with Wire.Framing_error _ | Wire.Oversized_frame _ ->
            send_wire gw c
              (local_envelope ~arrival:(Unix.gettimeofday ()) ~op:"?"
                 (Error (Error.Bad_request "framing error")));
            c.eof <- true)
      | Fhttp reader ->
          Http.feed reader buf n;
          drain_http gw c reader)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.eof <- true

(* ------------------------------------------------------ shard lifecycle *)

let shard_sock dir sid = Filename.concat dir (Printf.sprintf "shard-%d.sock" sid)

let spawn_shard gw s =
  match gw.cfg.backend with
  | Attach _ -> ()
  | Spawn { exe; jobs; queue_bound; cache_capacity; state_dir; extra_args; _ }
    ->
      let path =
        match s.saddr with Addr.Unix_sock p -> p | a -> Addr.to_string a
      in
      (try Unix.unlink path with _ -> ());
      let opt flag = function
        | Some v -> [ flag; string_of_int v ]
        | None -> []
      in
      (* per-shard state dir so a respawned shard rejoins with the warm
         set it had compiled before dying *)
      let state_args =
        match state_dir with
        | None -> []
        | Some root ->
            [
              "--state-dir";
              Filename.concat root (Printf.sprintf "shard-%d-state" s.sid);
            ]
      in
      let argv =
        [ exe; "--listen"; path ]
        @ opt "--jobs" jobs
        @ opt "--queue-bound" queue_bound
        @ opt "--cache-capacity" cache_capacity
        @ state_args
        @ extra_args
      in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let pid =
        Unix.create_process exe (Array.of_list argv) devnull Unix.stdout
          Unix.stderr
      in
      (try Unix.close devnull with _ -> ());
      s.pid <- Some pid;
      s.up <- false;
      logf gw "shard %d: spawned pid %d on %s" s.sid pid path

(* jittered exponential ladder for respawns — the client library's
   full-jitter backoff, scaled for process restarts (base 100 ms,
   capped at 5 s) *)
let respawn_backoff gw fails =
  Numeric.Rng.float gw.rng
  *. Float.min 5000. (100. *. (2. ** float_of_int fails))
  /. 1000.

let tick gw =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun s ->
      match s.pid with
      | Some pid -> (
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, _status ->
              logf gw "shard %d: pid %d exited" s.sid pid;
              s.pid <- None;
              s.up <- false;
              drop_idle s;
              s.fails <- s.fails + 1;
              s.respawn_at <- now +. respawn_backoff gw s.fails
          | exception Unix.Unix_error _ ->
              s.pid <- None;
              s.up <- false)
      | None -> (
          match gw.cfg.backend with
          | Spawn _ when now >= s.respawn_at -> spawn_shard gw s
          | _ -> ()))
    gw.shards

(* before opening the front door, wait (bounded) until every spawned
   shard accepts a connection — so the first client request doesn't
   race the fleet's boot *)
let wait_for_shards gw =
  let deadline =
    Unix.gettimeofday () +. (gw.cfg.boot_timeout_ms /. 1000.)
  in
  let pending = ref (Array.to_list gw.shards) in
  while !pending <> [] && Unix.gettimeofday () < deadline do
    pending :=
      List.filter
        (fun s ->
          match Addr.connect s.saddr with
          | fd ->
              s.up <- true;
              s.fails <- 0;
              checkin s fd;
              false
          | exception _ -> true)
        !pending;
    if !pending <> [] then Unix.sleepf 0.05
  done;
  List.iter (fun s -> logf gw "shard %d: not up after boot wait" s.sid) !pending

let stop_shards gw =
  match gw.cfg.backend with
  | Attach _ -> ()
  | Spawn _ ->
      let live =
        Array.to_list gw.shards
        |> List.filter_map (fun s ->
               match s.pid with
               | Some pid ->
                   (try Unix.kill pid Sys.sigterm with _ -> ());
                   Some (s, pid)
               | None -> None)
      in
      let deadline = Unix.gettimeofday () +. 5. in
      let rec drain = function
        | [] -> ()
        | (s, pid) :: rest -> (
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
                if Unix.gettimeofday () > deadline then begin
                  (try Unix.kill pid Sys.sigkill with _ -> ());
                  ignore (try Unix.waitpid [] pid with _ -> (0, Unix.WEXITED 0));
                  drain rest
                end
                else begin
                  Unix.sleepf 0.05;
                  drain ((s, pid) :: rest)
                end
            | _ ->
                s.pid <- None;
                drain rest
            | exception Unix.Unix_error _ -> drain rest)
      in
      drain live;
      Array.iter (fun s -> Addr.cleanup s.saddr) gw.shards

(* ------------------------------------------------------------ main loop *)

let make_shards cfg =
  let addrs =
    match cfg.backend with
    | Attach addrs -> addrs
    | Spawn { count; dir; _ } ->
        List.init count (fun i -> Addr.Unix_sock (shard_sock dir i))
  in
  Array.of_list
    (List.mapi
       (fun sid saddr ->
         {
           sid;
           saddr;
           pid = None;
           idle = [];
           inflight = 0;
           up = false;
           fails = 0;
           respawn_at = 0.;
           routed = 0;
           failed = 0;
         })
       addrs)

let run ?(stop = fun () -> false) cfg =
  if cfg.wire = None && cfg.http = None then
    invalid_arg "Gateway.run: no listener configured";
  let shards = make_shards cfg in
  if Array.length shards = 0 then invalid_arg "Gateway.run: no shards";
  let gw =
    {
      cfg;
      shards;
      ring =
        Ring.create ~replicas:cfg.replicas
          (Array.to_list (Array.map (fun s -> s.sid) shards));
      rng = Numeric.Rng.create cfg.seed;
      memo = Hashtbl.create 256;
      memo_order = Queue.create ();
      conns = [];
      exchanges = [];
      next_cid = 0;
      started_at = Unix.gettimeofday ();
      by_op = Hashtbl.create 16;
      requests = 0;
      wire_requests = 0;
      http_requests = 0;
      overloaded = 0;
      shard_failures = 0;
      memo_hits = 0;
      memo_misses = 0;
    }
  in
  Array.iter (fun s -> spawn_shard gw s) gw.shards;
  (match cfg.backend with Spawn _ -> wait_for_shards gw | Attach _ -> ());
  let listeners =
    List.filter_map
      (fun (addr, http) ->
        match addr with
        | None -> None
        | Some a -> Some (Addr.listen a, a, http))
      [ (cfg.wire, false); (cfg.http, true) ]
  in
  logf gw "listening (%d shards, affinity %b)" (Array.length gw.shards)
    cfg.affinity;
  let buf = Bytes.create 65536 in
  let accept (lfd, _addr, http) =
    match Unix.accept lfd with
    | fd, _ ->
        if List.length gw.conns >= cfg.max_conns then (
          try Unix.close fd with _ -> ())
        else begin
          gw.next_cid <- gw.next_cid + 1;
          (* a stalled client must not wedge the single-threaded relay *)
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10. with _ -> ());
          let front =
            if http then Fhttp (Http.reader ~max_body:cfg.max_frame ())
            else Fwire (Wire.decoder ~max_frame:cfg.max_frame ())
          in
          gw.conns <-
            {
              cfd = fd;
              front;
              eof = false;
              cclosed = false;
              cin_flight = 0;
              cid = gw.next_cid;
            }
            :: gw.conns
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  in
  let reap () =
    gw.exchanges <- List.filter (fun x -> not x.x_done) gw.exchanges;
    gw.conns <-
      List.filter
        (fun c ->
          if c.cclosed then false
          else if c.eof && c.cin_flight = 0 then begin
            close_client gw c;
            false
          end
          else begin
            (* an HTTP conn may hold a fully buffered next request that
               was deferred while a response was in flight *)
            (match c.front with
            | Fhttp reader when c.cin_flight = 0 && Http.buffered reader > 0
              ->
                drain_http gw c reader
            | _ -> ());
            not c.cclosed
          end)
        gw.conns
  in
  (try
     while not (stop ()) do
       let watch =
         List.map (fun (lfd, _, _) -> lfd) listeners
         @ List.filter_map
             (fun c ->
               if c.cclosed || c.eof then None else Some c.cfd)
             gw.conns
         @ List.filter_map
             (fun x -> if x.x_done then None else Some x.xfd)
             gw.exchanges
       in
       (match Unix.select watch [] [] 0.25 with
       | readable, _, _ ->
           List.iter
             (fun fd ->
               match
                 List.find_opt (fun (lfd, _, _) -> lfd = fd) listeners
               with
               | Some l -> accept l
               | None -> (
                   match
                     List.find_opt
                       (fun x -> x.xfd = fd && not x.x_done)
                       gw.exchanges
                   with
                   | Some x -> read_exchange gw buf x
                   | None -> (
                       match
                         List.find_opt
                           (fun c -> c.cfd = fd && not c.cclosed)
                           gw.conns
                       with
                       | Some c -> read_client gw buf c
                       | None -> ())))
             readable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
       tick gw;
       reap ()
     done
   with e ->
     List.iter (fun (lfd, a, _) -> (try Unix.close lfd with _ -> ()); Addr.cleanup a) listeners;
     stop_shards gw;
     raise e);
  logf gw "shutting down";
  List.iter
    (fun (lfd, a, _) ->
      (try Unix.close lfd with _ -> ());
      Addr.cleanup a)
    listeners;
  List.iter (fun c -> close_client gw c) gw.conns;
  List.iter (fun x -> try Unix.close x.xfd with _ -> ()) gw.exchanges;
  Array.iter (fun s -> drop_idle s) gw.shards;
  stop_shards gw
