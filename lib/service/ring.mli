(** Consistent-hash ring for routing requests to worker shards.

    Placement is a pure function of the key bytes and the member ids:
    points are MD5 digests of "shard:<id>#<replica>", so every process
    computes the identical ring — the property that lets a gateway, a
    bench driver and a test agree on which shard owns a compiled model.

    Keyed on {!Crn.Equiv.cache_key}, equal keys (and therefore
    byte-identical compiled simulators) always land on the same shard;
    adding or removing a shard moves only the keys that the new/old
    shard's own points cover. *)

type t

val create : ?replicas:int -> int list -> t
(** Ring over the given shard ids (deduplicated). [replicas] (default
    128) virtual points per shard trade lookup table size for balance.
    Raises [Invalid_argument] when [replicas < 1]. *)

val shards : t -> int list
(** Sorted member ids. *)

val replicas : t -> int
val is_empty : t -> bool

val add : t -> int -> t
(** Membership after a shard joins (no-op if already present). *)

val remove : t -> int -> t
(** Membership after a shard leaves (no-op if absent). *)

val route : t -> string -> int option
(** Owning shard of a key; [None] on an empty ring. *)

val route_order : t -> string -> int list
(** All member shards in clockwise (failover) order from the key's
    position: head is {!route}'s answer, the rest are the successors a
    gateway tries when the owner is down. *)
