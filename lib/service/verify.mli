(** The service's verification policy: exact-tier analysis plus
    structural lint, merged into one {!Exact.Certificate.t}.

    Severity policy — errors reject a network, warnings ride along in
    the certificate text:

    - errors: [no_op_reaction] (burns time, changes nothing),
      [phase_overlap], [clock_unconserved] (the master–slave discipline
      is unprovable), [slow_annihilation], [fast_source],
      [slow_catalytic] (rate-independence discipline broken);
    - warnings: [unused_species], [never_produced], [never_consumed],
      [high_order], [duplicate_reaction], [fractional_init] — real
      networks in [examples/] trip several of these legitimately
      (Brusselator starts B at 2.5; Oregonator's P is a sink). *)

val certify : title:string -> Crn.Network.t -> Exact.Certificate.t
(** Run the exact tier and [Crn.Validate.check] on the network and fold
    both into a deterministic certificate. Pure: no simulation models
    are compiled and no floats enter the exact proofs. *)

val error_of_certificate : Exact.Certificate.t -> Error.t option
(** [Some (Validation_failed ...)] with the certificate's error items
    when it is not clean, [None] otherwise. *)
