(** LRU cache of compiled simulation models, keyed by canonical network
    digest.

    A cold request pays synthesis (catalog build or [.crn] parse),
    canonicalization ({!Crn.Equiv.cache_key}) and compilation of both
    engines ({!Ode.Deriv.compile} and {!Ssa.Gillespie.compile_model});
    the entry is then shared: an identical request source skips all of
    it via the source memo, and a {e different} source that synthesizes
    the same canonical network under the same rate environment dedupes
    onto the same compiled entry via the digest. Entries are immutable
    compiled artifacts, safe to share across concurrent worker domains;
    all cache state is mutex-protected. *)

type entry = {
  key : string;  (** canonical digest + rate environment *)
  net : Crn.Network.t;
  env : Crn.Rates.env;
  sys : Ode.Deriv.t;  (** compiled ODE right-hand side *)
  ssa : Ssa.Gillespie.model;  (** compiled SSA reactions + dependency graph *)
  fingerprint : string;  (** {!Crn.Equiv.fingerprint} of [net] *)
  compile_ms : float;  (** wall time the cold path paid for this entry *)
  mutable last_used : int;
  mutable hits : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 32 entries; least-recently-used entries are evicted
    beyond that. Raises [Invalid_argument] if [capacity < 1]. *)

val source_key : spec:string -> env:Crn.Rates.env -> string
(** Digest of a request's network specification (catalog name or inline
    [.crn] text) plus rate environment — the memo key that lets repeat
    requests skip synthesis entirely. *)

val find_or_compile :
  t ->
  source_key:string ->
  env:Crn.Rates.env ->
  build:(unit -> Crn.Network.t) ->
  entry * [ `Hit | `Miss ]
(** Return the cached entry for [source_key], or synthesize ([build]),
    canonicalize and compile on a miss. [`Miss] is returned even when
    the built network dedupes onto an existing compiled entry (the
    request still paid synthesis). Exceptions from [build] (parse
    errors...) propagate and cache nothing. *)

val stats : t -> int * int * int * int
(** [(entries, hits, misses, evictions)] since creation. *)
