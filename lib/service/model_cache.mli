(** LRU cache of compiled simulation models, keyed by canonical network
    digest.

    A cold request pays synthesis (catalog build or [.crn] parse),
    canonicalization ({!Crn.Equiv.cache_key}) and compilation of both
    engines ({!Ode.Deriv.compile} and {!Ssa.Gillespie.compile_model});
    the entry is then shared: an identical request source skips all of
    it via the source memo, and a {e different} source that synthesizes
    the same canonical network under the same rate environment dedupes
    onto the same compiled entry via the digest. Entries are immutable
    compiled artifacts, safe to share across concurrent worker domains;
    all cache state is mutex-protected. *)

type entry = {
  key : string;  (** canonical digest + rate environment *)
  net : Crn.Network.t;
  env : Crn.Rates.env;
  sys : Ode.Deriv.t;  (** compiled ODE right-hand side *)
  ssa : Ssa.Gillespie.model;  (** compiled SSA reactions + dependency graph *)
  fingerprint : string;  (** {!Crn.Equiv.fingerprint} of [net] *)
  compile_ms : float;  (** wall time the cold path paid for this entry *)
  mutable last_used : int;
  mutable hits : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 32 entries; least-recently-used entries are evicted
    beyond that. Raises [Invalid_argument] if [capacity < 1]. *)

val source_key : spec:string -> env:Crn.Rates.env -> string
(** Digest of a request's network specification (catalog name or inline
    [.crn] text) plus rate environment — the memo key that lets repeat
    requests skip synthesis entirely. *)

val find_or_compile :
  t ->
  source_key:string ->
  env:Crn.Rates.env ->
  build:(unit -> Crn.Network.t) ->
  entry * [ `Hit | `Miss ]
(** Return the cached entry for [source_key], or synthesize ([build]),
    canonicalize and compile on a miss. [`Miss] is returned even when
    the built network dedupes onto an existing compiled entry (the
    request still paid synthesis). Exceptions from [build] (parse
    errors...) propagate and cache nothing. *)

val stats : t -> int * int * int * int
(** [(entries, hits, misses, evictions)] since creation. *)

(** {2 Disk persistence}

    With a state directory configured, every newly compiled entry (and
    every eviction victim) is serialized by a background persister
    domain — off the request path — into [<dir>/<digest>.model] via
    atomic temp-file-plus-rename writes. A restarted daemon calls
    {!load_from} before serving: each snapshot's digest is recomputed
    from its decoded network and must match the stored key, so corrupt,
    tampered or stale files are skipped and counted, never trusted and
    never fatal. *)

type warm_report = { loaded : int; skipped_corrupt : int; skipped_version : int }

val set_state_dir : t -> string -> unit
(** Create [dir] if needed and start the background persister. *)

val load_from : t -> string -> warm_report
(** Load every [*.model] snapshot in [dir] (sorted file order) up to the
    cache capacity. Warm entries enter with fresh LRU ticks and zero
    hits — load time restarts the recency clock, so a cold insert
    cannot immediately evict the whole warm set. Unreadable, corrupt and
    digest-mismatched files count as [skipped_corrupt]; well-formed
    files from another format revision as [skipped_version]. Never
    raises on bad input. *)

val save_to : t -> string -> int
(** Synchronously snapshot every resident entry into [dir] (created if
    needed); returns the number written. *)

val flush : t -> unit
(** Block until the background persister has drained its queue. *)

val shutdown : t -> unit
(** Stop the persister domain after it finishes the queued writes. *)

val warm_counters : t -> int * int * int * int
(** [(warm_loaded, warm_skipped_corrupt, warm_skipped_version,
    snapshot_writes)] since creation — surfaced by the daemon's [stats]
    op and the gateway's Prometheus endpoint. *)
