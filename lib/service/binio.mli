(** Dependency-free binary encoding for snapshots and checkpoints.

    A tiny writer/reader pair plus a versioned, checksummed file
    container. Integers are 64-bit big-endian; floats travel as IEEE-754
    bit patterns, so every value — NaNs, infinities, signed zeros —
    round-trips bitwise, which the resume guarantees depend on. Readers
    raise {!Corrupt} on any malformed input (truncation, bad length
    prefix, bad tag, checksum mismatch), so callers can treat every
    decode failure uniformly: skip and count, never crash. *)

exception Corrupt of string

type writer

val writer : unit -> writer
val contents : writer -> string
val w_u8 : writer -> int -> unit
val w_i64 : writer -> int64 -> unit
val w_int : writer -> int -> unit
val w_f64 : writer -> float -> unit
val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit
val w_array : (writer -> 'a -> unit) -> writer -> 'a array -> unit
val w_int_array : writer -> int array -> unit
val w_f64_array : writer -> float array -> unit
val w_bool_array : writer -> bool array -> unit
val w_option : (writer -> 'a -> unit) -> writer -> 'a option -> unit

type reader

val reader : string -> reader
val r_u8 : reader -> int
val r_i64 : reader -> int64
val r_int : reader -> int
val r_f64 : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_array : (reader -> 'a) -> reader -> 'a array
val r_int_array : reader -> int array
val r_f64_array : reader -> float array
val r_bool_array : reader -> bool array
val r_option : (reader -> 'a) -> reader -> 'a option
val at_end : reader -> bool

val expect_end : reader -> unit
(** Raise {!Corrupt} unless the cursor consumed the whole input —
    decoders call this last so trailing garbage is rejected. *)

val crc32 : string -> int32
(** IEEE CRC-32 (reflected, polynomial [0xEDB88320]). *)

type file = { kind : string; version : int; payload : string }
(** A decoded container: [kind] names the payload schema (e.g.
    ["model"], ["sim-checkpoint"]), [version] its format revision. *)

val encode_file : kind:string -> version:int -> string -> string
(** [encode_file ~kind ~version payload] wraps the payload in the
    magic + kind + version + CRC-32 container. *)

val decode_file : string -> file
(** Inverse of {!encode_file}. Raises {!Corrupt} on bad magic, torn
    input, trailing bytes, or checksum mismatch. The caller checks
    [kind]/[version] — an unknown version is {e not} a decode error
    here, so it can be counted separately from corruption. *)

val read_file : string -> file
(** Read and {!decode_file} a whole file. Raises {!Corrupt} on malformed
    content and [Sys_error] on I/O failure. *)

val read_raw : string -> string
(** Whole-file contents, undecoded — for codecs that own the container
    string themselves. Raises [Sys_error] on I/O failure. *)

val write_raw_atomic : string -> string -> unit
(** Atomic write of raw bytes (temp file + rename), same guarantees as
    {!write_file_atomic}. *)

val write_file_atomic : string -> kind:string -> version:int -> string -> unit
(** Encode and write to [path ^ ".tmp.<pid>"], then atomically rename
    into place — concurrent readers see either the complete old file or
    the complete new one, never a torn write. *)
