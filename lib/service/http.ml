(* Minimal HTTP/1.1, just enough for the gateway's front door and for
   crnsim/bench to speak to it: an incremental server-side request
   parser (method + path + headers + Content-Length body), response
   serializers (fixed-length and chunked), and a blocking client.

   The JSON payloads themselves are exactly the wire protocol's frame
   payloads — HTTP here is an alternative framing, not an alternative
   protocol, which is what keeps gateway responses byte-identical to
   direct daemon responses. *)

exception Bad_request of string

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (* keys lowercased *)
  body : string;
}

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* ------------------------------------------------- server-side parsing *)

type reader = {
  rbuf : Buffer.t;
  max_body : int;
  mutable pending : (string * string * (string * string) list * int) option;
      (* parsed request line + headers waiting for [int] body bytes *)
}

let reader ?(max_body = 8 * 1024 * 1024) () =
  { rbuf = Buffer.create 4096; max_body; pending = None }

let feed r bytes n = Buffer.add_subbytes r.rbuf bytes 0 n
let buffered r = Buffer.length r.rbuf

let split_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request (Printf.sprintf "malformed header %S" line))
  | Some i ->
      ( String.lowercase_ascii (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> raise (Bad_request "empty request head")
  | request_line :: header_lines -> (
      let strip s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      match String.split_on_char ' ' (strip request_line) with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers =
            List.filter_map
              (fun l ->
                let l = strip l in
                if l = "" then None else Some (split_header l))
              header_lines
          in
          (meth, path, headers)
      | _ ->
          raise
            (Bad_request
               (Printf.sprintf "malformed request line %S" request_line)))

(* index of "\r\n\r\n" in the buffered bytes, or None *)
let head_end buf =
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let consume r n =
  let s = Buffer.contents r.rbuf in
  Buffer.clear r.rbuf;
  Buffer.add_substring r.rbuf s n (String.length s - n)

let next_request r =
  (match r.pending with
  | Some _ -> ()
  | None -> (
      match head_end r.rbuf with
      | None ->
          if Buffer.length r.rbuf > r.max_body then
            raise (Bad_request "request head too large")
      | Some i ->
          let meth, path, headers =
            parse_head (String.sub (Buffer.contents r.rbuf) 0 i)
          in
          let len =
            match List.assoc_opt "content-length" headers with
            | None -> 0
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> n
                | _ -> raise (Bad_request "bad Content-Length"))
          in
          if len > r.max_body then
            raise
              (Bad_request
                 (Printf.sprintf "body length %d exceeds the %d-byte limit"
                    len r.max_body));
          consume r (i + 4);
          r.pending <- Some (meth, path, headers, len)));
  match r.pending with
  | Some (meth, path, headers, len) when Buffer.length r.rbuf >= len ->
      let body = String.sub (Buffer.contents r.rbuf) 0 len in
      consume r len;
      r.pending <- None;
      Some { meth; path; headers; body }
  | _ -> None

(* --------------------------------------------------------- serializing *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 422 -> "Unprocessable Entity"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let render_headers b headers =
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers

let response ?(headers = []) ~status ~content_type body =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  render_headers b
    ([
       ("Content-Type", content_type);
       ("Content-Length", string_of_int (String.length body));
     ]
    @ headers);
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

let chunked_head ?(headers = []) ~status ~content_type () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  render_headers b
    ([ ("Content-Type", content_type); ("Transfer-Encoding", "chunked") ]
    @ headers);
  Buffer.add_string b "\r\n";
  Buffer.contents b

let chunk payload =
  Printf.sprintf "%x\r\n%s\r\n" (String.length payload) payload

let last_chunk = "0\r\n\r\n"

(* ------------------------------------------------------ blocking client *)

(* a tiny buffered input channel over a raw fd: Unix errors (including
   the EAGAIN of an armed SO_RCVTIMEO) propagate to the caller, EOF
   raises End_of_file *)
type ic = {
  fd : Unix.file_descr;
  ibuf : Bytes.t;
  mutable pos : int;
  mutable len : int;
  mutable total : int;  (* bytes ever read; lets a client tell "no
                           response bytes yet" (retryable) from "died
                           mid-response" (not) *)
}

let ic_of_fd fd = { fd; ibuf = Bytes.create 16384; pos = 0; len = 0; total = 0 }

let total_read ic = ic.total

let refill ic =
  let n = Unix.read ic.fd ic.ibuf 0 (Bytes.length ic.ibuf) in
  if n = 0 then raise End_of_file;
  ic.pos <- 0;
  ic.len <- n;
  ic.total <- ic.total + n

let read_byte ic =
  if ic.pos >= ic.len then refill ic;
  let c = Bytes.get ic.ibuf ic.pos in
  ic.pos <- ic.pos + 1;
  c

let read_line ic =
  let b = Buffer.create 128 in
  let rec go () =
    match read_byte ic with
    | '\n' -> Buffer.contents b
    | '\r' -> go ()
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let read_exact ic n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if ic.pos >= ic.len then refill ic;
    let take = min (n - !filled) (ic.len - ic.pos) in
    Bytes.blit ic.ibuf ic.pos out !filled take;
    ic.pos <- ic.pos + take;
    filled := !filled + take
  done;
  Bytes.to_string out

let write_request fd ?(meth = "POST") ~host ~path body =
  let head =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\n\
       Content-Length: %d\r\nConnection: keep-alive\r\n\r\n"
      meth path host (String.length body)
  in
  let payload = head ^ body in
  let n = String.length payload in
  let written = ref 0 in
  while !written < n do
    written :=
      !written + Unix.write_substring fd payload !written (n - !written)
  done

exception Bad_response of string

let read_status_headers ic =
  let status_line = read_line ic in
  let status =
    match String.split_on_char ' ' status_line with
    | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some s -> s
        | None -> raise (Bad_response ("bad status line: " ^ status_line)))
    | _ -> raise (Bad_response ("bad status line: " ^ status_line))
  in
  let rec headers acc =
    match read_line ic with
    | "" -> List.rev acc
    | line -> headers (split_header line :: acc)
  in
  (status, headers [])

let chunked headers =
  match List.assoc_opt "transfer-encoding" headers with
  | Some v -> String.lowercase_ascii (String.trim v) = "chunked"
  | None -> false

let read_chunk ic =
  let size_line = read_line ic in
  let size_line =
    match String.index_opt size_line ';' with
    | Some i -> String.sub size_line 0 i (* drop chunk extensions *)
    | None -> size_line
  in
  match int_of_string_opt ("0x" ^ String.trim size_line) with
  | None -> raise (Bad_response ("bad chunk size: " ^ size_line))
  | Some 0 ->
      let _trailer = read_line ic in
      None
  | Some n ->
      let data = read_exact ic n in
      let _crlf = read_line ic in
      Some data

let read_body ic headers =
  if chunked headers then begin
    let b = Buffer.create 4096 in
    let rec go () =
      match read_chunk ic with
      | Some data ->
          Buffer.add_string b data;
          go ()
      | None -> Buffer.contents b
    in
    go ()
  end
  else
    match List.assoc_opt "content-length" headers with
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> read_exact ic n
        | _ -> raise (Bad_response "bad Content-Length"))
    | None -> raise (Bad_response "response has no length")
