(* Service addresses: a Unix-domain socket path, a TCP host:port, or an
   HTTP endpoint (TCP transport, HTTP/1.1 framing instead of the wire
   protocol — the gateway's front door). *)

type t = Unix_sock of string | Tcp of string * int | Http of string * int

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Http (host, port) -> Printf.sprintf "http://%s:%d" host port

let host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 && port < 65536 -> Some (host, port)
      | _ -> None)
  | None -> None

let of_string s =
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s > 0 && (s.[0] = '/' || s.[0] = '.') then
    Ok (Unix_sock s)
  else if String.length s > 7 && String.sub s 0 7 = "http://" then begin
    let rest = String.sub s 7 (String.length s - 7) in
    let rest =
      match String.index_opt rest '/' with
      | Some i -> String.sub rest 0 i (* tolerate a trailing "/" or path *)
      | None -> rest
    in
    match host_port rest with
    | Some (host, port) -> Ok (Http (host, port))
    | None -> (
        match rest with
        | "" -> Error (Printf.sprintf "bad address %S" s)
        | host -> Ok (Http (host, 80)))
  end
  else
    match host_port s with
    | Some (host, port) -> Ok (Tcp (host, port))
    | None ->
        Error
          (Printf.sprintf
             "bad address %S (expected unix:PATH, /PATH, HOST:PORT, or \
              http://HOST:PORT)" s)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) | Http (host, port) -> Unix.ADDR_INET (resolve host, port)

let domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ | Http _ -> Unix.PF_INET

let connect addr =
  let fd = Unix.socket (domain addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr addr)
   with e ->
     Unix.close fd;
     raise e);
  (match addr with
  | Tcp _ | Http _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
  | Unix_sock _ -> ());
  fd

let listen ?(backlog = 64) addr =
  (match addr with
  | Unix_sock path ->
      (* a stale socket file from a previous run would make bind fail *)
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ())
  | Tcp _ | Http _ -> ());
  let fd = Unix.socket (domain addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Tcp _ | Http _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr addr);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let cleanup = function
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ | Http _ -> ()
