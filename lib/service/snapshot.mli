(** Versioned, checksummed binary snapshots of compiled models and
    mid-run simulation state.

    Two artifact kinds share the {!Binio} container format:

    - {b model snapshots} persist a compiled-model cache entry —
      network, rate environment, compiled CSR ODE system, compiled SSA
      model with its dependency graph — so a restarted daemon rebuilds
      its warm set from disk without paying synthesis, canonicalization
      or compilation again;
    - {b simulation checkpoints} persist one engine's loop-top mid-run
      state together with the network and run parameters, self-contained
      so [crnsim --resume] continues the trajectory bitwise.

    All decoders raise {!Binio.Corrupt} on malformed input — including
    payloads that pass the CRC but fail semantic validation (bad species
    names, inconsistent shapes) — and {!Version_mismatch} on a
    well-formed container from a different format revision, so callers
    can count the two separately. *)

val model_kind : string
val model_version : int
val sim_kind : string
val sim_version : int

exception Version_mismatch of { kind : string; found : int; expected : int }

type model_snapshot = {
  ms_key : string;  (** the cache key the entry was stored under *)
  ms_sources : string array;
      (** request-source digests that aliased to this entry, so a warm
          restart answers a repeated request as a genuine cache hit —
          skipping synthesis, not just compilation *)
  ms_fingerprint : string;
  ms_compile_ms : float;  (** what the original cold compile cost *)
  ms_net : Crn.Network.t;
  ms_env : Crn.Rates.env;
  ms_sys : Ode.Deriv.t;
  ms_ssa : Ssa.Gillespie.model;
}

val encode_model : model_snapshot -> string
val decode_model : string -> model_snapshot
(** The stored [ms_key] is untrusted until the loader recomputes the
    digest from [ms_net]/[ms_env] and compares — {!Model_cache} does
    that before admitting a warm entry. *)

type engine_state =
  | Ode_ck of Ode.Driver.checkpoint
  | Ssa_ck of Ssa.Gillespie.checkpoint
  | Tau_ck of Ssa.Tau_leap.checkpoint
  | Hybrid_ck of Hybrid.Engine.checkpoint

type sim_checkpoint = {
  sc_net : Crn.Network.t;
  sc_env : Crn.Rates.env;
  sc_t1 : float;
  sc_seed : int64;
  sc_params : (string * float) array;
      (** engine-specific numeric run parameters (sample_dt, epsilon,
          thinning, tolerances, ...), stored by name so each front end
          round-trips exactly the ones its engine needs *)
  sc_state : engine_state;
}

val engine_name : engine_state -> string
(** ["ode"], ["ssa"], ["tau"] or ["hybrid"]. *)

val encode_sim : sim_checkpoint -> string
val decode_sim : string -> sim_checkpoint

val param : sim_checkpoint -> string -> float option
(** Look up a named run parameter. *)

(**/**)

(* Sub-codecs exposed for the round-trip and torn-write test suites. *)

val w_network : Binio.writer -> Crn.Network.t -> unit
val r_network : Binio.reader -> Crn.Network.t
val w_env : Binio.writer -> Crn.Rates.env -> unit
val r_env : Binio.reader -> Crn.Rates.env
val w_trace : Binio.writer -> Ode.Trace.t -> unit
val r_trace : Binio.reader -> Ode.Trace.t
