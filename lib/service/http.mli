(** Minimal HTTP/1.1 framing for the gateway and its clients.

    The bodies exchanged are exactly the wire protocol's JSON frame
    payloads: HTTP is an alternative {e framing} of the same protocol,
    so responses through the gateway stay byte-identical to direct
    daemon responses. Streamed replies map one wire frame to one HTTP
    chunk. *)

exception Bad_request of string
(** A malformed request head, oversized body, or bad Content-Length;
    raised by {!next_request}. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

val header : request -> string -> string option

(** {2 Server-side incremental parsing} *)

type reader

val reader : ?max_body:int -> unit -> reader
(** [max_body] (default 8 MiB) bounds both the request head and the
    declared Content-Length before anything is buffered. *)

val feed : reader -> Bytes.t -> int -> unit
(** Append the first [n] bytes just read from the socket. *)

val buffered : reader -> int

val next_request : reader -> request option
(** Slice the next complete request out of the buffer, or [None] if
    more bytes are needed. Raises {!Bad_request} on malformed input. *)

(** {2 Response serialization} *)

val status_text : int -> string

val response :
  ?headers:(string * string) list ->
  status:int ->
  content_type:string ->
  string ->
  string
(** A complete fixed-length response, ready to write. *)

val chunked_head :
  ?headers:(string * string) list ->
  status:int ->
  content_type:string ->
  unit ->
  string
(** Status line + headers of a [Transfer-Encoding: chunked] response. *)

val chunk : string -> string
(** One chunk (hex length, payload, CRLF). *)

val last_chunk : string
(** The terminal zero chunk. *)

(** {2 Blocking client} *)

type ic
(** A buffered input channel over a socket; persists across keep-alive
    responses. [Unix_error] (including [EAGAIN] from an armed
    [SO_RCVTIMEO]) propagates; EOF raises [End_of_file]. *)

exception Bad_response of string

val ic_of_fd : Unix.file_descr -> ic

val total_read : ic -> int
(** Bytes ever read through this channel — compare before/after a read
    to decide whether a failure preceded the first response byte. *)

val write_request :
  Unix.file_descr -> ?meth:string -> host:string -> path:string -> string ->
  unit
(** Write a keep-alive JSON request (default [POST]) with the given
    body. *)

val read_status_headers : ic -> int * (string * string) list
(** Status code and lowercased headers of the next response. *)

val read_body : ic -> (string * string) list -> string
(** The full body, honouring Content-Length or chunked encoding. *)

val chunked : (string * string) list -> bool

val read_chunk : ic -> string option
(** One chunk of a chunked body; [None] on the terminal chunk. *)
