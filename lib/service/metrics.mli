(** Request-level metrics blocks and the daemon's since-start counters.

    Every response carries a {!request} block; the [stats] request
    serializes the aggregate with {!to_json}. The aggregate is
    mutex-protected — worker domains record concurrently. *)

type cache_outcome = Hit | Miss | Not_applicable

val cache_string : cache_outcome -> string
(** ["hit"], ["miss"], ["n/a"] — the wire encoding. *)

type request = {
  queue_wait_ms : float;  (** time spent queued before a worker picked it up *)
  cache : cache_outcome;
  compile_ms : float;  (** synthesis + canonicalization + compile; 0 on hit *)
  run_ms : float;  (** simulation proper *)
  total_ms : float;  (** arrival to response, excluding socket transfer *)
  extra : (string * Json.t) list;  (** engine work counters (events, steps…) *)
}

val request_json : request -> Json.t

type t

val create : unit -> t

val record : t -> op:string -> error:string option -> request:request -> unit
(** [error] is the structured error code when the request failed. The
    numeric entries of [request.extra] are additionally summed into a
    per-counter-name lifetime table (serialized by {!to_json} as
    ["work"]), so the stats op reports how much simulation work — SSA
    events, tau leaps, ODE steps, hybrid repartitions — each engine has
    done since the daemon started. *)

(** Connection-level fault classes the daemon counts — one per way a
    hostile or broken peer can misbehave, so the [stats] op shows what
    the serving layer has been absorbing. *)
type conn_event =
  | Conn_accepted
  | Conn_closed
  | Conn_rejected  (** refused over the connection cap *)
  | Frame_in  (** a complete frame decoded, however torn its arrival *)
  | Framing_error  (** negative prefix or desynced stream *)
  | Oversized_frame  (** length prefix above the max-frame limit *)
  | Read_timeout  (** partial frame outlived the read deadline *)
  | Idle_reaped  (** quiet connection past the idle timeout *)
  | Read_reset  (** connection reset (or kin) while reading *)
  | Dirty_close  (** EOF with a partial frame still buffered *)

val record_conn : t -> conn_event -> unit

val record_validate : t -> ok:bool -> unit
(** Count a [validate] request's verdict: certified ([ok:true]) or
    rejected. Exported by {!to_json} as [validate_ok] /
    [validate_reject], which the gateway's Prometheus endpoint picks up
    automatically. *)

val record_job_exception : t -> exn -> unit
(** Count an exception that escaped a worker-pool job entirely (wired to
    {!Numeric.Domain_pool.Bounded.set_on_uncaught}); zero in a healthy
    daemon, since the job wrapper answers every failure with a
    structured error. The count and the last message appear in
    {!to_json} as [job_exceptions] / [last_job_error]. *)

val to_json : t -> Json.t
