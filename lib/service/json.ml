(* Minimal JSON for the wire protocol. The repo deliberately takes no
   dependency beyond the OCaml toolchain, so this is a small hand-rolled
   codec: a strict recursive-descent parser and a printer whose floats
   round-trip bit-exactly (%.17g; integral values print as integers) —
   the service's byte-identical-results contract rests on that. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------ printing *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b x =
  if Float.is_nan x then
    (* strict JSON has no non-finite numbers; use the Python-json
       extension tokens so a diverged simulation (fixed-step RK4 on a
       stiff network, say) still round-trips instead of degrading to
       null and breaking the byte-identity contract *)
    Buffer.add_string b "NaN"
  else if x = infinity then Buffer.add_string b "Infinity"
  else if x = neg_infinity then Buffer.add_string b "-Infinity"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> add_num b x
  | Str s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* ------------------------------------------------------------- parsing *)

type cursor = { s : string; mutable i : int }

let fail msg = raise (Parse_error msg)

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail (Printf.sprintf "expected %C at offset %d" ch c.i)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail (Printf.sprintf "bad literal at offset %d" c.i)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.i + 4 > String.length c.s then fail "bad \\u escape";
            let hex = String.sub c.s c.i 4 in
            c.i <- c.i + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* encode the code point as UTF-8 (surrogates are passed
               through as-is; the protocol only ever ships ASCII) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> num_char ch | None -> false) do
    advance c
  done;
  if c.i = start then fail (Printf.sprintf "expected number at offset %d" start);
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some x -> x
  | None -> fail (Printf.sprintf "bad number at offset %d" start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'N' -> literal c "NaN" (Num Float.nan)
  | Some 'I' -> literal c "Infinity" (Num infinity)
  | Some '-' when c.i + 1 < String.length c.s && c.s.[c.i + 1] = 'I' ->
      literal c "-Infinity" (Num neg_infinity)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ch -> (
      match ch with
      | '-' | '0' .. '9' -> Num (parse_number c)
      | _ -> fail (Printf.sprintf "unexpected %C at offset %d" ch c.i))

let of_string s =
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then fail "trailing garbage after JSON value";
  v

(* ------------------------------------------------------------ accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function
  | Num x -> Some x
  | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let num x = Num x
let int x = Num (float_of_int x)
let str s = Str s
