(* Deterministic fault injection for the wire layer.

   A schedule is a list of faults pinned to byte offsets in one
   direction of a stream. [wrap] interposes the schedule between a
   {!Wire.transport} and its user: reads and writes are clipped so that
   no single call crosses a scheduled offset, which makes every fault
   land on exactly the byte it names — the same seed always produces the
   same torn frames, flipped bytes, resets and stalls, so any failure a
   randomized suite finds replays from its printed seed. *)

type fault =
  | Short of { at : int; cap : int }
  | Corrupt of { at : int; xor : int }
  | Reset of { at : int }
  | Stall of { at : int; ms : float }

type schedule = fault list

let offset_of = function
  | Short { at; _ } | Corrupt { at; _ } | Reset { at } | Stall { at; _ } -> at

let sort_schedule s =
  List.stable_sort (fun a b -> compare (offset_of a) (offset_of b)) s

let describe schedule =
  let one = function
    | Short { at; cap } -> Printf.sprintf "short@%d(cap %d)" at cap
    | Corrupt { at; xor } -> Printf.sprintf "corrupt@%d(xor %#x)" at xor
    | Reset { at } -> Printf.sprintf "reset@%d" at
    | Stall { at; ms } -> Printf.sprintf "stall@%d(%gms)" at ms
  in
  match schedule with
  | [] -> "(no faults)"
  | s -> String.concat ", " (List.map one (sort_schedule s))

(* --------------------------------------------------------- interposer *)

type side = { mutable pos : int; mutable pending : schedule }

let reset_exn = Unix.Unix_error (Unix.ECONNRESET, "fault", "injected reset")

(* Faults at the current position that act before any bytes move. *)
let rec fire_point_faults side =
  match side.pending with
  | Stall { at; ms } :: rest when at <= side.pos ->
      side.pending <- rest;
      Unix.sleepf (ms /. 1000.);
      fire_point_faults side
  | Reset { at } :: _ when at <= side.pos -> raise reset_exn
  | _ -> ()

(* Clip [len] so this call neither overruns a Short cap nor crosses the
   offset of a later fault (a Corrupt inside the transferred span is
   fine — it edits bytes in place — but Reset/Stall/Short must trigger
   exactly at their offset on a subsequent call). *)
let clip side len =
  let rec go len = function
    | [] -> len
    | Short { at; cap } :: rest ->
        if at <= side.pos then min len cap else go (min len (at - side.pos)) rest
    | Corrupt _ :: rest -> go len rest
    | (Reset { at } | Stall { at; _ }) :: rest ->
        if at <= side.pos then go len rest
        else go (min len (at - side.pos)) rest
  in
  if len <= 0 then len else max 1 (go len side.pending)

(* Drop point faults that this transfer has passed: a Short applies to
   the single call that reaches its offset, then retires. *)
let retire side n =
  let stop = side.pos + n in
  side.pending <-
    List.filter
      (fun f ->
        match f with
        | Short { at; _ } -> at >= stop
        | Corrupt { at; _ } -> at >= stop
        | Reset _ | Stall _ -> true)
      side.pending

let corrupt_span side buf off n =
  List.iter
    (fun f ->
      match f with
      | Corrupt { at; xor } when at >= side.pos && at < side.pos + n ->
          let i = off + (at - side.pos) in
          Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor xor land 0xff))
      | _ -> ())
    side.pending

let wrap ?(on_read = []) ?(on_write = []) (t : Wire.transport) =
  let rd = { pos = 0; pending = sort_schedule on_read } in
  let wr = { pos = 0; pending = sort_schedule on_write } in
  let read buf off len =
    fire_point_faults rd;
    let len = if rd.pending = [] then len else clip rd len in
    let n = t.Wire.read buf off len in
    if n > 0 then begin
      corrupt_span rd buf off n;
      retire rd n;
      rd.pos <- rd.pos + n
    end;
    n
  in
  let write buf off len =
    fire_point_faults wr;
    let len = if wr.pending = [] then len else clip wr len in
    (* corrupt a private copy: the caller's buffer must stay intact *)
    let slice = Bytes.sub buf off len in
    corrupt_span wr slice 0 len;
    let n = t.Wire.write slice 0 len in
    if n > 0 then begin
      retire wr n;
      wr.pos <- wr.pos + n
    end;
    n
  in
  { Wire.read; write }

let chop cap (t : Wire.transport) =
  if cap < 1 then invalid_arg "Fault.chop: cap must be >= 1";
  {
    Wire.read = (fun buf off len -> t.Wire.read buf off (min cap len));
    write = (fun buf off len -> t.Wire.write buf off (min cap len));
  }

(* ------------------------------------------------------------ schedules *)

let random_schedule ~rng ~len n =
  if len < 1 then invalid_arg "Fault.random_schedule: len must be >= 1";
  let fault () =
    let at = Numeric.Rng.int rng len in
    match Numeric.Rng.int rng 4 with
    | 0 -> Short { at; cap = 1 + Numeric.Rng.int rng 16 }
    | 1 -> Corrupt { at; xor = 1 + Numeric.Rng.int rng 255 }
    | 2 -> Reset { at }
    | _ -> Stall { at; ms = float_of_int (1 + Numeric.Rng.int rng 15) }
  in
  sort_schedule (List.init n (fun _ -> fault ()))

let benign = function Reset _ | Corrupt _ -> false | Short _ | Stall _ -> true

let lossless schedule = List.for_all benign schedule
