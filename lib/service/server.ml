(* The mrsc simulation server.

   Architecture: one accept/read event loop on the calling domain
   multiplexes connections with [Unix.select] and slices frames out of
   per-connection incremental decoders; complete requests become jobs on
   a bounded {!Numeric.Domain_pool.Bounded} queue served by persistent
   worker domains. Submission beyond the bound is answered immediately
   with a structured [overloaded] error (backpressure is explicit, the
   queue never grows without limit), and every compute job carries a
   wall-clock deadline threaded into the simulation kernels as a
   {!Numeric.Cancel} token — an expired run dies with a structured
   [deadline_exceeded] response while the worker survives for the next
   job.

   Compiled models are cached across requests ({!Model_cache}): a warm
   request skips synthesis, canonicalization and compilation, which is
   the service's reason to exist — the engines were already fast, the
   per-invocation setup was not. *)

type config = {
  address : Addr.t;
  jobs : int;
  queue_bound : int;
  cache_capacity : int;
  default_deadline_ms : float option;
  max_frame : int;
  read_deadline_ms : float;
  idle_timeout_ms : float;
  max_conns : int;
  log : bool;
  state_dir : string option;
      (* warm persistent state: compiled-model snapshots are written
         under <dir>/models by a background persister and re-loaded
         (digest-verified) before the daemon accepts connections;
         deadline-cancelled runs leave resumable checkpoints under
         <dir>/checkpoints *)
}

let default_config address =
  {
    address;
    jobs = max 1 (Numeric.Domain_pool.default_jobs () - 1);
    queue_bound = 64;
    cache_capacity = 32;
    default_deadline_ms = None;
    max_frame = 8 * 1024 * 1024;
    read_deadline_ms = 10_000.;
    idle_timeout_ms = 300_000.;
    max_conns = 256;
    log = false;
    state_dir = None;
  }

let protocol_version = 1

(* ------------------------------------------------------- connections *)

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  wmutex : Mutex.t;  (* serializes frame writes and the fields below *)
  mutable in_flight : int;  (* jobs holding a reference to this conn *)
  mutable closing : bool;  (* peer EOF'd or read failed *)
  mutable closed : bool;
  mutable last_activity : float;  (* last bytes read or response sent *)
  mutable partial_since : float option;
      (* when the oldest byte of a still-incomplete frame arrived; the
         read deadline kills a connection that stalls mid-frame *)
  id : int;
}

let conn_close_locked c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with _ -> ()
  end

(* Send one frame; quietly drops the response if the peer is gone (the
   worker must never die because a client hung up mid-run). *)
let send c payload =
  Mutex.lock c.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wmutex)
    (fun () ->
      if not c.closed then
        try Wire.write_frame c.fd payload
        with Unix.Unix_error _ | Wire.Framing_error _ -> c.closing <- true)

let job_done c =
  Mutex.lock c.wmutex;
  c.in_flight <- c.in_flight - 1;
  c.last_activity <- Unix.gettimeofday ();
  if c.closing && c.in_flight = 0 then conn_close_locked c;
  Mutex.unlock c.wmutex

(* ---------------------------------------------------- request decoding *)

let get j key = Json.member key j
let get_str j key = Option.bind (get j key) Json.to_str
let get_float j key = Option.bind (get j key) Json.to_float
let get_int j key = Option.bind (get j key) Json.to_int

exception Reject of Error.t

let reject e = raise (Reject e)

let network_spec req =
  match get req "network" with
  | None -> reject (Error.Bad_request "missing \"network\"")
  | Some n -> (
      match (get_str n "catalog", get_str n "text") with
      | Some name, None -> `Catalog name
      | None, Some text -> `Text text
      | _ ->
          reject
            (Error.Bad_request
               "\"network\" must be {\"catalog\": name} or {\"text\": crn}"))

let spec_string = function
  | `Catalog name -> "catalog:" ^ name
  | `Text text -> "text:" ^ text

let build_network = function
  | `Catalog name -> (
      match Designs.Catalog.find name with
      | Some entry -> entry.Designs.Catalog.build ()
      | None -> reject (Error.Unknown_design name))
  | `Text text -> Crn.Parser.network_of_string text

let env_of req =
  match get_float req "ratio" with
  | None -> Crn.Rates.default_env
  | Some r when r > 0. -> Crn.Rates.env_with_ratio r
  | Some _ -> reject (Error.Bad_request "\"ratio\" must be > 0")

let method_of req =
  match get req "method" with
  | None -> Ode.Driver.Rosenbrock
  | Some (Json.Str "dopri5") -> Ode.Driver.Dopri5
  | Some (Json.Str "rosenbrock") -> Ode.Driver.Rosenbrock
  | Some (Json.Str s) -> (
      match float_of_string_opt s with
      | Some h when h > 0. -> Ode.Driver.Rk4 h
      | _ ->
          reject
            (Error.Bad_request
               "\"method\" must be dopri5, rosenbrock, or an rk4 step size"))
  | Some (Json.Num h) when h > 0. -> Ode.Driver.Rk4 h
  | Some _ -> reject (Error.Bad_request "bad \"method\"")

let t1_of req =
  match get_float req "t1" with
  | None -> 50.
  | Some t when t > 0. -> t
  | Some _ -> reject (Error.Bad_request "\"t1\" must be > 0")

let names_json net =
  Json.List
    (Array.to_list (Array.map Json.str (Crn.Network.species_names net)))

let vec_json v = Json.List (Array.to_list (Array.map Json.num v))

(* --------------------------------------------------------- server state *)

type t = {
  config : config;
  cache : Model_cache.t;
  metrics : Metrics.t;
  pool : Numeric.Domain_pool.Bounded.t;
}

let logf srv fmt =
  if srv.config.log then Printf.eprintf ("crnserved: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* -------------------------------------------------------------- handlers *)

(* Each compute handler returns (result payload, cache outcome,
   compile_ms, run_ms, extra work counters). *)

let with_model srv req ~env f =
  let spec = network_spec req in
  let source_key = Model_cache.source_key ~spec:(spec_string spec) ~env in
  let entry, outcome =
    Model_cache.find_or_compile srv.cache ~source_key ~env ~build:(fun () ->
        build_network spec)
  in
  let cache, compile_ms =
    match outcome with
    | `Hit -> (Metrics.Hit, 0.)
    | `Miss -> (Metrics.Miss, entry.Model_cache.compile_ms)
  in
  let result, run_ms, extra = f entry in
  (result, cache, compile_ms, run_ms, extra)

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1000.)

(* A deadline-cancelled engine hands its loop-top checkpoint to the
   handler's [on_cancel], which stashes it here; [run_job]'s [Cancelled]
   branch picks it up and writes it under the state directory so the
   [deadline_exceeded] response can carry a resume token. The slot is
   per-worker-domain (one job at a time per worker), so no locking. *)
let pending_checkpoint : Snapshot.sim_checkpoint option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let stash_checkpoint sc = Domain.DLS.get pending_checkpoint := Some sc

let take_checkpoint () =
  let slot = Domain.DLS.get pending_checkpoint in
  let v = !slot in
  slot := None;
  v

let opt_param name = function None -> [] | Some v -> [ (name, v) ]
let opt_param_i name = function
  | None -> []
  | Some v -> [ (name, float_of_int v) ]

let handle_parse srv req ~cancel:_ =
  let env = env_of req in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let result =
        Json.Obj
          [
            ("n_species", Json.int (Crn.Network.n_species net));
            ("n_reactions", Json.int (Crn.Network.n_reactions net));
            ("fingerprint", Json.str entry.Model_cache.fingerprint);
            ("cache_key", Json.str entry.Model_cache.key);
            ("canonical", Json.str (Crn.Network.to_string net));
            ("lint", Json.str (Crn.Validate.report net));
          ]
      in
      (result, 0., []))

let run_ode ?on_sample ?on_cancel ~method_ ~rtol ~atol ~cancel ~t1 ~sys x0 =
  (* mirrors Ode.Driver.run_segment's per-method tolerance defaults so
     served results are byte-identical to direct execution *)
  let on_sample = Option.value ~default:(fun _ _ -> ()) on_sample in
  (* [on_cancel] receives the integrator's loop-top checkpoint wrapped
     into the driver's method_state so the caller can persist it *)
  let wrap f = Option.map (fun g ck -> g (f ck)) on_cancel in
  match method_ with
  | Ode.Driver.Dopri5 ->
      let rtol = Option.value ~default:1e-6 rtol
      and atol = Option.value ~default:1e-9 atol in
      let xf, stats =
        Ode.Dopri5.integrate ~rtol ~atol ~cancel
          ?on_cancel:(wrap (fun ck -> Ode.Driver.Ck_dopri5 ck))
          ~t0:0. ~t1 ~on_sample sys x0
      in
      (xf, [ ("steps", Json.int stats.Ode.Dopri5.steps);
             ("evals", Json.int stats.Ode.Dopri5.evals) ])
  | Ode.Driver.Rosenbrock ->
      let rtol = Option.value ~default:1e-4 rtol
      and atol = Option.value ~default:1e-7 atol in
      let xf, stats =
        Ode.Rosenbrock.integrate ~rtol ~atol ~cancel
          ?on_cancel:(wrap (fun ck -> Ode.Driver.Ck_rosenbrock ck))
          ~t0:0. ~t1 ~on_sample sys x0
      in
      (xf, [ ("steps", Json.int stats.Ode.Rosenbrock.steps);
             ("factorizations", Json.int stats.Ode.Rosenbrock.factorizations) ])
  | Ode.Driver.Rk4 h ->
      let steps = ref 0 in
      let xf =
        Ode.Fixed.integrate ~cancel
          ?on_cancel:(wrap (fun ck -> Ode.Driver.Ck_fixed ck))
          ~step:Ode.Fixed.rk4_step ~h ~t0:0. ~t1
          ~on_sample:(fun t x ->
            incr steps;
            on_sample t x)
          sys x0
      in
      (xf, [ ("steps", Json.int (max 0 (!steps - 1))) ])

let handle_ode srv req ~cancel =
  let env = env_of req in
  let t1 = t1_of req in
  let method_ = method_of req in
  let rtol = get_float req "rtol" and atol = get_float req "atol" in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let on_cancel ms =
        stash_checkpoint
          {
            Snapshot.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = 0L;
            sc_params =
              Array.of_list
                (opt_param "rtol" rtol @ opt_param "atol" atol);
            sc_state =
              Snapshot.Ode_ck
                {
                  Ode.Driver.ck_method = ms;
                  ck_countdown = 0;
                  ck_trace =
                    Ode.Trace.create
                      ~names:(Crn.Network.species_names net);
                };
          }
      in
      let (xf, extra), run_ms =
        timed (fun () ->
            run_ode ~on_cancel ~method_ ~rtol ~atol ~cancel ~t1
              ~sys:entry.Model_cache.sys
              (Crn.Network.initial_state net))
      in
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("species", names_json net);
            ("final", vec_json xf);
          ]
      in
      (result, run_ms, extra))

let handle_ssa srv req ~cancel =
  let env = env_of req in
  let t1 = t1_of req in
  let seed = Int64.of_int (Option.value ~default:1 (get_int req "seed")) in
  let max_events = get_int req "max_events" in
  let sample_dt = get_float req "sample_dt" in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let on_cancel ck =
        stash_checkpoint
          {
            Snapshot.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params =
              Array.of_list
                (opt_param "sample_dt" sample_dt
                @ opt_param_i "max_events" max_events);
            sc_state = Snapshot.Ssa_ck ck;
          }
      in
      let r, run_ms =
        timed (fun () ->
            Ssa.Gillespie.run ~env ~seed ?sample_dt ?max_events
              ~model:entry.Model_cache.ssa ~cancel ~on_cancel ~t1 net)
      in
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("species", names_json net);
            ("final", vec_json r.Ssa.Gillespie.final);
            ("n_events", Json.int r.Ssa.Gillespie.n_events);
          ]
      in
      (result, run_ms, [ ("events", Json.int r.Ssa.Gillespie.n_events) ]))

let handle_tau srv req ~cancel =
  let env = env_of req in
  let t1 = t1_of req in
  let seed = Int64.of_int (Option.value ~default:1 (get_int req "seed")) in
  let epsilon = get_float req "epsilon" in
  let max_steps = get_int req "max_steps" in
  let sample_dt = get_float req "sample_dt" in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let on_cancel ck =
        stash_checkpoint
          {
            Snapshot.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params =
              Array.of_list
                (opt_param "sample_dt" sample_dt
                @ opt_param "epsilon" epsilon
                @ opt_param_i "max_steps" max_steps);
            sc_state = Snapshot.Tau_ck ck;
          }
      in
      let r, run_ms =
        timed (fun () ->
            Ssa.Tau_leap.run ~env ~seed ?sample_dt ?epsilon ?max_steps
              ~cancel ~on_cancel ~t1 net)
      in
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("species", names_json net);
            ("final", vec_json r.Ssa.Tau_leap.final);
            ("n_leaps", Json.int r.Ssa.Tau_leap.n_leaps);
            ("n_exact", Json.int r.Ssa.Tau_leap.n_exact);
          ]
      in
      ( result,
        run_ms,
        [
          ("leaps", Json.int r.Ssa.Tau_leap.n_leaps);
          ("events", Json.int r.Ssa.Tau_leap.n_exact);
        ] ))

(* the hybrid engine reuses both halves of the cache entry — the SSA
   compilation for the slow partition, the CSR ODE system for the fast
   one — so a warm-cache hybrid request compiles nothing *)
let handle_hybrid srv req ~cancel =
  let env = env_of req in
  let t1 = t1_of req in
  let seed = Int64.of_int (Option.value ~default:1 (get_int req "seed")) in
  let pop_threshold = get_float req "pop_threshold" in
  let prop_threshold = get_float req "prop_threshold" in
  let repartition_every = get_int req "repartition_every" in
  let epsilon = get_float req "epsilon" in
  let max_events = get_int req "max_events" in
  let sample_dt = get_float req "sample_dt" in
  (match pop_threshold with
  | Some v when v < 0. ->
      reject (Error.Bad_request "\"pop_threshold\" must be >= 0")
  | _ -> ());
  (match prop_threshold with
  | Some v when v < 0. ->
      reject (Error.Bad_request "\"prop_threshold\" must be >= 0")
  | _ -> ());
  (match repartition_every with
  | Some v when v < 1 ->
      reject (Error.Bad_request "\"repartition_every\" must be >= 1")
  | _ -> ());
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let model =
        Hybrid.Engine.model_of ~ssa:entry.Model_cache.ssa
          ~sys:entry.Model_cache.sys
      in
      let on_cancel ck =
        stash_checkpoint
          {
            Snapshot.sc_net = net;
            sc_env = env;
            sc_t1 = t1;
            sc_seed = seed;
            sc_params =
              Array.of_list
                (opt_param "sample_dt" sample_dt
                @ opt_param "pop_threshold" pop_threshold
                @ opt_param "prop_threshold" prop_threshold
                @ opt_param_i "repartition_every" repartition_every
                @ opt_param "epsilon" epsilon
                @ opt_param_i "max_events" max_events);
            sc_state = Snapshot.Hybrid_ck ck;
          }
      in
      let r, run_ms =
        timed (fun () ->
            Hybrid.Engine.run ~env ~seed ?sample_dt ?pop_threshold
              ?prop_threshold ?repartition_every ?epsilon ?max_events ~model
              ~cancel ~on_cancel ~t1 net)
      in
      let s = r.Hybrid.Engine.stats in
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("species", names_json net);
            ("final", vec_json r.Hybrid.Engine.final);
            ("n_events", Json.int r.Hybrid.Engine.n_events);
            ( "stats",
              Json.Obj
                [
                  ("ssa_events", Json.int s.Hybrid.Engine.n_ssa_events);
                  ("tau_leaps", Json.int s.Hybrid.Engine.n_tau_leaps);
                  ("tau_events", Json.int s.Hybrid.Engine.n_tau_events);
                  ("ode_steps", Json.int s.Hybrid.Engine.n_ode_steps);
                  ("repartitions", Json.int s.Hybrid.Engine.n_repartitions);
                  ("mode_switches", Json.int s.Hybrid.Engine.n_mode_switches);
                  ("rejected", Json.int s.Hybrid.Engine.n_rejected);
                  ("final_n_fast", Json.int s.Hybrid.Engine.final_n_fast);
                  ("final_n_slow", Json.int s.Hybrid.Engine.final_n_slow);
                  ("peak_n_fast", Json.int s.Hybrid.Engine.peak_n_fast);
                ] );
          ]
      in
      ( result,
        run_ms,
        [
          ("events", Json.int r.Hybrid.Engine.n_events);
          ("tau_leaps", Json.int s.Hybrid.Engine.n_tau_leaps);
          ("ode_steps", Json.int s.Hybrid.Engine.n_ode_steps);
          ("repartitions", Json.int s.Hybrid.Engine.n_repartitions);
        ] ))

let handle_ensemble srv req ~cancel =
  let env = env_of req in
  let t1 = t1_of req in
  let seed = Int64.of_int (Option.value ~default:1 (get_int req "seed")) in
  let runs = Option.value ~default:20 (get_int req "runs") in
  if runs < 1 then reject (Error.Bad_request "\"runs\" must be >= 1");
  let jobs = get_int req "jobs" in
  (match jobs with
  | Some j when j < 1 -> reject (Error.Bad_request "\"jobs\" must be >= 1")
  | _ -> ());
  let engine = Option.value ~default:"ssa" (get_str req "engine") in
  let pop_threshold = get_float req "pop_threshold" in
  let prop_threshold = get_float req "prop_threshold" in
  let repartition_every = get_int req "repartition_every" in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      (* fan the trajectories over the server's own pool: the request job
         occupying this worker participates as worker 0, extra helpers
         are borrowed from the same pool if idle (a saturated pool just
         means less parallelism, never deadlock). The cached compiled
         model is shared read-only; each worker gets one reusable
         arena. *)
      let finals, run_ms =
        match engine with
        | "ssa" ->
            let model = entry.Model_cache.ssa in
            timed (fun () ->
                Ssa.Ensemble.map_with ~pool:srv.pool ?jobs ~seed
                  ~init_worker:(fun () -> Ssa.Gillespie.make_arena model)
                  ~runs
                  (fun arena _ s ->
                    (Ssa.Gillespie.run ~env ~seed:s ~arena ~cancel ~t1 net)
                      .Ssa.Gillespie.final))
        | "tau" ->
            let model = Ssa.Tau_leap.compile_model env net in
            timed (fun () ->
                Ssa.Ensemble.map_with ~pool:srv.pool ?jobs ~seed
                  ~init_worker:(fun () -> Ssa.Tau_leap.make_arena model)
                  ~runs
                  (fun arena _ s ->
                    (Ssa.Tau_leap.run ~env ~seed:s ~arena ~cancel ~t1 net)
                      .Ssa.Tau_leap.final))
        | "hybrid" ->
            let model =
              Hybrid.Engine.model_of ~ssa:entry.Model_cache.ssa
                ~sys:entry.Model_cache.sys
            in
            timed (fun () ->
                Ssa.Ensemble.map_with ~pool:srv.pool ?jobs ~seed
                  ~init_worker:(fun () -> Hybrid.Engine.make_arena model)
                  ~runs
                  (fun arena _ s ->
                    (Hybrid.Engine.run ~env ~seed:s ?pop_threshold
                       ?prop_threshold ?repartition_every ~arena ~cancel ~t1
                       net)
                      .Hybrid.Engine.final))
        | other ->
            reject
              (Error.Bad_request
                 (Printf.sprintf
                    "unknown ensemble engine %S (ssa, tau, hybrid)" other))
      in
      let n = Crn.Network.n_species net in
      let mean = Array.make n 0. and std = Array.make n 0. in
      for i = 0 to n - 1 do
        let xs = Array.map (fun f -> f.(i)) finals in
        mean.(i) <- Numeric.Stats.mean xs;
        std.(i) <- Numeric.Stats.stddev xs
      done;
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("runs", Json.int runs);
            ("species", names_json net);
            ("mean", vec_json mean);
            ("std", vec_json std);
          ]
      in
      (result, run_ms, [ ("runs", Json.int runs) ]))

let handle_sweep srv req ~cancel =
  let t1 = t1_of req in
  let method_ = method_of req in
  let jobs = get_int req "jobs" in
  let ratios =
    match Option.bind (get req "ratios") Json.to_list with
    | None | Some [] -> reject (Error.Bad_request "missing \"ratios\"")
    | Some xs ->
        Array.of_list
          (List.map
             (fun x ->
               match Json.to_float x with
               | Some r when r > 0. -> r
               | _ -> reject (Error.Bad_request "\"ratios\" must be > 0"))
             xs)
  in
  (* the sweep compiles one model per ratio point internally; the cache
     still saves synthesis of the network itself. Key the entry under
     the default env so every sweep over the same network shares it. *)
  let env = Crn.Rates.default_env in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let finals, run_ms =
        timed (fun () ->
            Ode.Sweep.final_states ~pool:srv.pool ?jobs ~method_ ~cancel ~t1
              net ~ratios)
      in
      let result =
        Json.Obj
          [
            ("t1", Json.num t1);
            ("ratios", vec_json ratios);
            ("species", names_json net);
            ("finals", Json.List (Array.to_list (Array.map vec_json finals)));
          ]
      in
      (result, run_ms, [ ("points", Json.int (Array.length ratios)) ]))

let handle_dsd srv req ~cancel:_ =
  let env = env_of req in
  let c_max = get_float req "c_max" in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      let t, run_ms = timed (fun () -> Dsd.Translate.translate ?c_max net) in
      let compiled = t.Dsd.Translate.compiled in
      let result =
        Json.Obj
          [
            ("n_species", Json.int (Crn.Network.n_species compiled));
            ("n_reactions", Json.int (Crn.Network.n_reactions compiled));
            ( "n_fuel_species",
              Json.int (List.length t.Dsd.Translate.fuel_species) );
            ("c_max", Json.num t.Dsd.Translate.c_max);
            ("compiled", Json.str (Crn.Network.to_string compiled));
          ]
      in
      (result, run_ms, []))

let compute_handler op =
  match op with
  | "parse" -> Some handle_parse
  | "ode" -> Some handle_ode
  | "ssa" -> Some handle_ssa
  | "tau" -> Some handle_tau
  | "hybrid" -> Some handle_hybrid
  | "ensemble" -> Some handle_ensemble
  | "sweep" -> Some handle_sweep
  | "dsd" -> Some handle_dsd
  | _ -> None

(* ------------------------------------------------------------ responses *)

(* [done_] marks the final frame of a streamed (trace) response; the
   field leads the object so the serialized form has the stable prefix
   {"done": that a relaying gateway matches without parsing *)
let envelope ~done_ fields =
  Json.to_string
    (Json.Obj (if done_ then ("done", Json.Bool true) :: fields else fields))

let response_ok ?(done_ = false) ~op ~result ~metrics () =
  envelope ~done_
    [
      ("ok", Json.Bool true);
      ("op", Json.str op);
      ("result", result);
      ("metrics", Metrics.request_json metrics);
    ]

let response_error ?(done_ = false) ~op ~error ~metrics () =
  envelope ~done_
    [
      ("ok", Json.Bool false);
      ("op", Json.str op);
      ("error", Error.to_json error);
      ("metrics", Metrics.request_json metrics);
    ]

let quick_metrics ?(cache = Metrics.Not_applicable) ~arrival () =
  {
    Metrics.queue_wait_ms = 0.;
    cache;
    compile_ms = 0.;
    run_ms = 0.;
    total_ms = (Unix.gettimeofday () -. arrival) *. 1000.;
    extra = [];
  }

(* ----------------------------------------------------- streamed traces *)

(* The trace op streams a long simulation instead of buffering it: a
   header frame (species names), then sample-chunk frames as the
   integrator produces them, then a final frame that is a normal
   response envelope with the ["done"] marker — so a client watches the
   run instead of holding the full trajectory in one reply, and a
   gateway relays frames as they pass without parsing more than the
   done prefix. *)

type chunker = {
  chunk_size : int;
  ck_conn : conn;
  mutable buf_t : float list;  (* reversed *)
  mutable buf_x : Json.t list;  (* reversed *)
  mutable buf_n : int;
  mutable n_chunks : int;
  mutable n_samples : int;
  mutable last_t : float;
}

let chunker ~chunk_size conn =
  {
    chunk_size;
    ck_conn = conn;
    buf_t = [];
    buf_x = [];
    buf_n = 0;
    n_chunks = 0;
    n_samples = 0;
    last_t = neg_infinity;
  }

let stream_frame conn fields = send conn (Json.to_string (Json.Obj fields))

let flush_chunk ck =
  if ck.buf_n > 0 then begin
    stream_frame ck.ck_conn
      [
        ("chunk", Json.int ck.n_chunks);
        ("t", Json.List (List.rev_map Json.num ck.buf_t));
        ("x", Json.List (List.rev ck.buf_x));
      ];
    ck.n_chunks <- ck.n_chunks + 1;
    ck.buf_t <- [];
    ck.buf_x <- [];
    ck.buf_n <- 0
  end

let chunk_sample ck t x =
  (* vec_json copies the state now — the integrator reuses its buffer *)
  ck.buf_t <- t :: ck.buf_t;
  ck.buf_x <- vec_json x :: ck.buf_x;
  ck.buf_n <- ck.buf_n + 1;
  ck.n_samples <- ck.n_samples + 1;
  ck.last_t <- t;
  if ck.buf_n >= ck.chunk_size then flush_chunk ck

let positive_int req key ~default =
  match get_int req key with
  | None -> default
  | Some n when n >= 1 -> n
  | Some _ ->
      reject (Error.Bad_request (Printf.sprintf "%S must be >= 1" key))

(* streamed handler body; returns (result, run_ms, extra) like the
   non-streaming handlers, having already sent header + chunk frames *)
let handle_trace srv req ~cancel conn =
  let engine = Option.value ~default:"ode" (get_str req "engine") in
  let chunk_size = positive_int req "chunk" ~default:256 in
  let env = env_of req in
  let t1 = t1_of req in
  with_model srv req ~env (fun entry ->
      let net = entry.Model_cache.net in
      (* header goes out before the run starts: the client learns the
         species while the integrator is still working *)
      stream_frame conn
        [
          ("stream", Json.str "trace");
          ("op", Json.str "trace");
          ("engine", Json.str engine);
          ("species", names_json net);
          ("t1", Json.num t1);
        ];
      let ck = chunker ~chunk_size conn in
      match engine with
      | "ode" ->
          let method_ = method_of req in
          let rtol = get_float req "rtol" and atol = get_float req "atol" in
          let thin = positive_int req "thin" ~default:1 in
          let x0 = Crn.Network.initial_state net in
          (* exactly Ode.Driver.simulate's thinning: record the t = 0
             boundary, skip the integrator's echo of it, keep every
             thin-th accepted step, and always include the final state —
             so a streamed trace is bitwise the trace a local
             [Driver.simulate ~thin] records *)
          let countdown = ref 0 in
          let record_boundary t x =
            chunk_sample ck t x;
            countdown := thin - 1
          in
          let record_step t x =
            if !countdown <= 0 then record_boundary t x else decr countdown
          in
          let first = ref true in
          let on_sample t x =
            if !first then first := false else record_step t x
          in
          let (xf, extra), run_ms =
            timed (fun () ->
                record_boundary 0. x0;
                run_ode ~on_sample ~method_ ~rtol ~atol ~cancel ~t1
                  ~sys:entry.Model_cache.sys x0)
          in
          if ck.last_t < t1 then chunk_sample ck t1 xf;
          flush_chunk ck;
          let result =
            Json.Obj
              [
                ("t1", Json.num t1);
                ("samples", Json.int ck.n_samples);
                ("chunks", Json.int ck.n_chunks);
                ("species", names_json net);
                ("final", vec_json xf);
              ]
          in
          (result, run_ms, ("samples", Json.int ck.n_samples) :: extra)
      | "ssa" ->
          let seed =
            Int64.of_int (Option.value ~default:1 (get_int req "seed"))
          in
          let max_events = get_int req "max_events" in
          let sample_dt = get_float req "sample_dt" in
          let r, run_ms =
            timed (fun () ->
                Ssa.Gillespie.run ~env ~seed ?sample_dt ?max_events
                  ~model:entry.Model_cache.ssa ~cancel ~t1 net)
          in
          (* the SSA engine owns its sampling cadence; its finished trace
             streams out in chunks so the reply stays frame-bounded *)
          let tr = r.Ssa.Gillespie.trace in
          let times = Ode.Trace.times tr in
          for i = 0 to Ode.Trace.length tr - 1 do
            chunk_sample ck times.(i) (Ode.Trace.state_at_index tr i)
          done;
          flush_chunk ck;
          let result =
            Json.Obj
              [
                ("t1", Json.num t1);
                ("samples", Json.int ck.n_samples);
                ("chunks", Json.int ck.n_chunks);
                ("species", names_json net);
                ("final", vec_json r.Ssa.Gillespie.final);
                ("n_events", Json.int r.Ssa.Gillespie.n_events);
              ]
          in
          ( result,
            run_ms,
            [
              ("samples", Json.int ck.n_samples);
              ("events", Json.int r.Ssa.Gillespie.n_events);
            ] )
      | other ->
          reject
            (Error.Bad_request
               (Printf.sprintf "unknown trace engine %S (ode, ssa)" other)))

(* the body of a compute job, run on a worker domain; [stream] marks
   the final response as a stream-terminating done frame *)
let run_job ?(stream = false) srv conn ~op ~handler ~req ~arrival ~deadline =
  let started = Unix.gettimeofday () in
  let queue_wait_ms = (started -. arrival) *. 1000. in
  let cancel =
    match deadline with
    | None -> Numeric.Cancel.never
    | Some at -> Numeric.Cancel.of_fun (fun () -> Unix.gettimeofday () > at)
  in
  let finish ~cache ~compile_ms ~run_ms ~extra outcome =
    let metrics =
      {
        Metrics.queue_wait_ms;
        cache;
        compile_ms;
        run_ms;
        total_ms = (Unix.gettimeofday () -. arrival) *. 1000.;
        extra;
      }
    in
    let payload, error_code =
      match outcome with
      | Ok result -> (response_ok ~done_:stream ~op ~result ~metrics (), None)
      | Stdlib.Error err ->
          ( response_error ~done_:stream ~op ~error:err ~metrics (),
            Some (Error.code err) )
    in
    Metrics.record srv.metrics ~op ~error:error_code ~request:metrics;
    send conn payload
  in
  let budget_ms =
    match deadline with
    | Some at -> (at -. arrival) *. 1000.
    | None -> 0.
  in
  (* write the stashed engine checkpoint (if any) under the state
     directory and return the relative token the error response carries;
     persistence failures just drop the token — the deadline error
     stands either way *)
  let persist_checkpoint () =
    match (take_checkpoint (), srv.config.state_dir) with
    | None, _ | _, None -> None
    | Some sc, Some dir -> (
        try
          let ckdir = Filename.concat dir "checkpoints" in
          (try Unix.mkdir ckdir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let data = Snapshot.encode_sim sc in
          let name =
            Printf.sprintf "ck-%s.sim" (Digest.to_hex (Digest.string data))
          in
          Binio.write_raw_atomic (Filename.concat ckdir name) data;
          Some (Filename.concat "checkpoints" name)
        with Sys_error _ | Unix.Unix_error _ -> None)
  in
  ignore (take_checkpoint () : Snapshot.sim_checkpoint option);
  (try
     if Numeric.Cancel.cancelled cancel then
       (* expired while queued: don't start a run we know is dead *)
       finish ~cache:Metrics.Not_applicable ~compile_ms:0. ~run_ms:0.
         ~extra:[]
         (Stdlib.Error (Error.Deadline_exceeded { budget_ms; checkpoint = None }))
     else
       let result, cache, compile_ms, run_ms, extra =
         handler srv req ~cancel
       in
       finish ~cache ~compile_ms ~run_ms ~extra (Ok result)
   with
  | Reject err ->
      finish ~cache:Metrics.Not_applicable ~compile_ms:0. ~run_ms:0. ~extra:[]
        (Stdlib.Error err)
  | Numeric.Cancel.Cancelled ->
      let checkpoint = persist_checkpoint () in
      finish ~cache:Metrics.Not_applicable ~compile_ms:0. ~run_ms:0. ~extra:[]
        (Stdlib.Error (Error.Deadline_exceeded { budget_ms; checkpoint }))
  | e -> (
      match Error.of_exn e with
      | Some err ->
          finish ~cache:Metrics.Not_applicable ~compile_ms:0. ~run_ms:0.
            ~extra:[] (Stdlib.Error err)
      | None ->
          finish ~cache:Metrics.Not_applicable ~compile_ms:0. ~run_ms:0.
            ~extra:[]
            (Stdlib.Error
               (Error.Internal
                  (match e with
                  | Failure msg | Invalid_argument msg -> msg
                  | e -> Printexc.to_string e)))));
  job_done conn

(* ------------------------------------------------------------ dispatch *)

let handle_stats srv ~arrival =
  let entries, hits, misses, evictions = Model_cache.stats srv.cache in
  let result =
    match Metrics.to_json srv.metrics with
    | Json.Obj fields ->
        Json.Obj
          (fields
          @ [
              ("cache_entries", Json.int entries);
              ("cache_hits_total", Json.int hits);
              ("cache_misses_total", Json.int misses);
              ("cache_evictions", Json.int evictions);
              ( "backlog",
                Json.int (Numeric.Domain_pool.Bounded.backlog srv.pool) );
              ("workers", Json.int (Numeric.Domain_pool.Bounded.jobs srv.pool));
              ("queue_bound", Json.int srv.config.queue_bound);
              ("max_frame", Json.int srv.config.max_frame);
              ("max_conns", Json.int srv.config.max_conns);
              ("read_deadline_ms", Json.num srv.config.read_deadline_ms);
              ("idle_timeout_ms", Json.num srv.config.idle_timeout_ms);
              ( "pool_uncaught",
                Json.int
                  (fst (Numeric.Domain_pool.Bounded.uncaught srv.pool)) );
            ]
          @
          let warm_loaded, warm_corrupt, warm_version, snapshot_writes =
            Model_cache.warm_counters srv.cache
          in
          [
            ("warm_loaded", Json.int warm_loaded);
            ("warm_skipped_corrupt", Json.int warm_corrupt);
            ("warm_skipped_version", Json.int warm_version);
            ("snapshot_writes", Json.int snapshot_writes);
          ])
    | j -> j
  in
  response_ok ~op:"stats" ~result ~metrics:(quick_metrics ~arrival ()) ()

(* The validate op runs inline on the event loop, like ping and stats:
   it compiles no ODE/SSA models (no Model_cache entry) and never
   touches a pool worker, so a rejected network costs the daemon nothing
   but the exact-arithmetic pass itself. A rejection is an error
   envelope ([validation_failed], one structured (code, detail) pair per
   issue) that still carries the full certificate text in ["result"], so
   clients print the same byte-deterministic certificate either way. *)
let handle_validate srv req ~arrival =
  match
    let spec = network_spec req in
    let net = build_network spec in
    let title =
      match spec with `Catalog name -> name | `Text _ -> "network"
    in
    Verify.certify ~title net
  with
  | exception Reject err ->
      Metrics.record srv.metrics ~op:"validate" ~error:(Some (Error.code err))
        ~request:(quick_metrics ~arrival ());
      response_error ~op:"validate" ~error:err
        ~metrics:(quick_metrics ~arrival ()) ()
  | exception e ->
      let err =
        match Error.of_exn e with
        | Some err -> err
        | None -> Error.Internal (Printexc.to_string e)
      in
      Metrics.record srv.metrics ~op:"validate" ~error:(Some (Error.code err))
        ~request:(quick_metrics ~arrival ());
      response_error ~op:"validate" ~error:err
        ~metrics:(quick_metrics ~arrival ()) ()
  | cert -> (
      let result verdict =
        Json.Obj
          [
            ("verdict", Json.str verdict);
            ("certificate", Json.str (Exact.Certificate.render cert));
          ]
      in
      match Verify.error_of_certificate cert with
      | None ->
          Metrics.record_validate srv.metrics ~ok:true;
          Metrics.record srv.metrics ~op:"validate" ~error:None
            ~request:(quick_metrics ~arrival ());
          response_ok ~op:"validate" ~result:(result "certified")
            ~metrics:(quick_metrics ~arrival ()) ()
      | Some err ->
          Metrics.record_validate srv.metrics ~ok:false;
          Metrics.record srv.metrics ~op:"validate"
            ~error:(Some (Error.code err))
            ~request:(quick_metrics ~arrival ());
          envelope ~done_:false
            [
              ("ok", Json.Bool false);
              ("op", Json.str "validate");
              ("error", Error.to_json err);
              ("result", result "rejected");
              ("metrics", Metrics.request_json (quick_metrics ~arrival ()));
            ])

let dispatch srv conn payload =
  let arrival = Unix.gettimeofday () in
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
      send conn
        (response_error ~op:"?"
           ~error:(Error.Bad_request ("bad JSON: " ^ msg))
           ~metrics:(quick_metrics ~arrival ()) ())
  | req -> (
      let op = Option.value ~default:"" (get_str req "op") in
      match op with
      | "" ->
          send conn
            (response_error ~op:"?"
               ~error:(Error.Bad_request "missing \"op\"")
               ~metrics:(quick_metrics ~arrival ()) ())
      | "ping" ->
          send conn
            (response_ok ~op:"ping"
               ~result:
                 (Json.Obj [ ("protocol", Json.int protocol_version) ])
               ~metrics:(quick_metrics ~arrival ()) ())
      | "stats" ->
          Metrics.record srv.metrics ~op:"stats" ~error:None
            ~request:(quick_metrics ~arrival ());
          send conn (handle_stats srv ~arrival)
      | "validate" -> send conn (handle_validate srv req ~arrival)
      | op -> (
          let stream = op = "trace" in
          let handler =
            if stream then
              Some
                (fun srv req ~cancel -> handle_trace srv req ~cancel conn)
            else compute_handler op
          in
          match handler with
          | None ->
              send conn
                (response_error ~op
                   ~error:
                     (Error.Bad_request (Printf.sprintf "unknown op %S" op))
                   ~metrics:(quick_metrics ~arrival ()) ())
          | Some handler ->
              let deadline =
                match
                  match get_float req "deadline_ms" with
                  | Some ms -> Some ms
                  | None -> srv.config.default_deadline_ms
                with
                | Some ms when ms > 0. -> Some (arrival +. (ms /. 1000.))
                | _ -> None
              in
              Mutex.lock conn.wmutex;
              conn.in_flight <- conn.in_flight + 1;
              Mutex.unlock conn.wmutex;
              let job () =
                run_job ~stream srv conn ~op ~handler ~req ~arrival ~deadline
              in
              if not (Numeric.Domain_pool.Bounded.try_submit srv.pool job)
              then begin
                let err =
                  Error.Overloaded { queue_bound = srv.config.queue_bound }
                in
                Metrics.record srv.metrics ~op ~error:(Some (Error.code err))
                  ~request:(quick_metrics ~arrival ());
                send conn
                  (response_error ~done_:stream ~op ~error:err
                     ~metrics:(quick_metrics ~arrival ()) ());
                job_done conn
              end))

(* ------------------------------------------------------------ event loop *)

let run ?(stop = fun () -> false) config =
  let listen_fd = Addr.listen config.address in
  let srv =
    {
      config;
      cache = Model_cache.create ~capacity:config.cache_capacity ();
      metrics = Metrics.create ();
      pool =
        Numeric.Domain_pool.Bounded.create ~queue_bound:config.queue_bound
          ~jobs:config.jobs ();
    }
  in
  (* a request job that somehow leaks an exception past run_job's
     handlers is still accounted for: the pool records it and the
     metrics surface it via the stats op *)
  Numeric.Domain_pool.Bounded.set_on_uncaught srv.pool
    (Metrics.record_job_exception srv.metrics);
  (* warm the model cache from disk BEFORE accepting connections, so
     the first routed request after a restart is already a cache hit;
     then arm the background persister for everything compiled from
     here on *)
  (match config.state_dir with
  | None -> ()
  | Some dir ->
      let models = Filename.concat dir "models" in
      let report = Model_cache.load_from srv.cache models in
      logf srv
        "warm start from %s: %d loaded, %d corrupt skipped, %d version skipped"
        models report.Model_cache.loaded report.Model_cache.skipped_corrupt
        report.Model_cache.skipped_version;
      Model_cache.set_state_dir srv.cache models);
  logf srv "listening on %s (%d workers, queue bound %d)"
    (Addr.to_string config.address)
    config.jobs config.queue_bound;
  let conns = ref [] in
  let next_id = ref 0 in
  let buf = Bytes.create 65536 in
  let count e = Metrics.record_conn srv.metrics e in
  (* tell the offending peer what killed its connection, best-effort,
     then let the reaper close the socket *)
  let kill c error =
    send c
      (response_error ~op:"?" ~error
         ~metrics:(quick_metrics ~arrival:(Unix.gettimeofday ()) ()) ());
    c.closing <- true
  in
  let accept () =
    match Unix.accept listen_fd with
    | fd, _ ->
        if List.length !conns >= config.max_conns then begin
          (* over the cap: a structured rejection, not a silent drop and
             not an accept queue that starves the connections we already
             serve *)
          count Metrics.Conn_rejected;
          logf srv "conn refused: %d connections at the cap" config.max_conns;
          (try
             Wire.write_frame fd
               (response_error ~op:"?"
                  ~error:(Error.Connection_limit { max_conns = config.max_conns })
                  ~metrics:(quick_metrics ~arrival:(Unix.gettimeofday ()) ()) ())
           with _ -> ());
          try Unix.close fd with _ -> ()
        end
        else begin
          incr next_id;
          let c =
            {
              fd;
              dec = Wire.decoder ~max_frame:config.max_frame ();
              wmutex = Mutex.create ();
              in_flight = 0;
              closing = false;
              closed = false;
              last_activity = Unix.gettimeofday ();
              partial_since = None;
              id = !next_id;
            }
          in
          count Metrics.Conn_accepted;
          logf srv "conn %d: accepted" c.id;
          conns := c :: !conns
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
        if Wire.buffered c.dec > 0 then begin
          (* peer died mid-frame: the reset/torn-close fault class *)
          count Metrics.Dirty_close;
          logf srv "conn %d: EOF inside a frame (%d bytes buffered)" c.id
            (Wire.buffered c.dec)
        end
        else logf srv "conn %d: EOF" c.id;
        c.closing <- true
    | n -> (
        c.last_activity <- Unix.gettimeofday ();
        Wire.feed c.dec buf n;
        (try
           let rec drain () =
             match Wire.next_frame c.dec with
             | Some payload ->
                 count Metrics.Frame_in;
                 dispatch srv c payload;
                 drain ()
             | None -> ()
           in
           drain ()
         with
        | Wire.Framing_error msg ->
            count Metrics.Framing_error;
            logf srv "conn %d: framing error: %s" c.id msg;
            kill c (Error.Bad_request ("framing error: " ^ msg))
        | Wire.Oversized_frame { len; limit } ->
            count Metrics.Oversized_frame;
            logf srv "conn %d: oversized frame (%d > %d)" c.id len limit;
            kill c
              (Error.Bad_request
                 (Printf.sprintf
                    "frame length %d exceeds the %d-byte limit" len limit)));
        (* whatever drained, what remains buffered is a partial frame:
           start (or keep) its read-deadline clock; a clean boundary
           resets it *)
        if c.closing || Wire.buffered c.dec = 0 then c.partial_since <- None
        else if c.partial_since = None then
          c.partial_since <- Some c.last_activity)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        count Metrics.Read_reset;
        logf srv "conn %d: reset by peer" c.id;
        c.closing <- true
    | exception Unix.Unix_error _ ->
        count Metrics.Read_reset;
        c.closing <- true
  in
  (* per-tick sweep: a partial frame older than the read deadline, or a
     connection with nothing buffered, nothing running and no traffic
     for the idle timeout, is killed — only that connection; the select
     loop's 0.25 s tick bounds the sweep latency *)
  let sweep_timeouts () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if not c.closing then begin
          (match c.partial_since with
          | Some t0
            when config.read_deadline_ms > 0.
                 && (now -. t0) *. 1000. > config.read_deadline_ms ->
              count Metrics.Read_timeout;
              logf srv "conn %d: read deadline (%.0f ms) on a partial frame"
                c.id config.read_deadline_ms;
              kill c
                (Error.Bad_request
                   (Printf.sprintf
                      "incomplete frame after %.0f ms read deadline"
                      config.read_deadline_ms))
          | _ -> ());
          if
            (not c.closing)
            && config.idle_timeout_ms > 0.
            && c.in_flight = 0
            && Wire.buffered c.dec = 0
            && (now -. c.last_activity) *. 1000. > config.idle_timeout_ms
          then begin
            count Metrics.Idle_reaped;
            logf srv "conn %d: idle for %.0f ms, reaping" c.id
              config.idle_timeout_ms;
            c.closing <- true
          end
        end)
      !conns
  in
  let reap () =
    conns :=
      List.filter
        (fun c ->
          if c.closing then begin
            Mutex.lock c.wmutex;
            if c.in_flight = 0 then conn_close_locked c;
            let dead = c.closed in
            Mutex.unlock c.wmutex;
            if dead then begin
              count Metrics.Conn_closed;
              logf srv "conn %d: closed" c.id
            end;
            not dead
          end
          else true)
        !conns
  in
  (try
     while not (stop ()) do
       let watch =
         listen_fd :: List.filter_map
           (fun c -> if c.closing then None else Some c.fd)
           !conns
       in
       match Unix.select watch [] [] 0.25 with
       | readable, _, _ ->
           List.iter
             (fun fd ->
               if fd = listen_fd then accept ()
               else
                 match
                   List.find_opt (fun c -> c.fd = fd && not c.closed) !conns
                 with
                 | Some c -> read_conn c
                 | None -> ())
             readable;
           sweep_timeouts ();
           reap ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with e ->
     (* tear down before re-raising so a crashed loop still frees the
        socket and the worker domains *)
     (try Unix.close listen_fd with _ -> ());
     Addr.cleanup config.address;
     Numeric.Domain_pool.Bounded.shutdown srv.pool;
     raise e);
  logf srv "shutting down";
  (try Unix.close listen_fd with _ -> ());
  Numeric.Domain_pool.Bounded.shutdown srv.pool;
  List.iter
    (fun c ->
      Mutex.lock c.wmutex;
      conn_close_locked c;
      Mutex.unlock c.wmutex)
    !conns;
  Addr.cleanup config.address
