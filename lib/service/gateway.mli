(** Horizontal scale-out front end for the mrsc service.

    One gateway process routes requests over N [crnserved] worker
    shards with a consistent-hash ring ({!Ring}) keyed on the request's
    compiled-model identity ({!Crn.Equiv.cache_key} plus the rate
    environment): a hot compiled model lives in exactly one shard's
    cache, and a repeated source is never re-synthesized anywhere in
    the fleet. Shard-side the gateway speaks the wire protocol and
    relays response frames byte-for-byte, so gateway responses are
    byte-identical to direct daemon responses — over the wire listener
    and over HTTP (the body bytes are the same envelope).

    Front doors: an optional wire listener (length-prefixed frames,
    any op) and an optional HTTP/1.1 listener — [POST /api] carries a
    request object and returns the response envelope (status mapped
    from the structured error code; streamed [trace] replies become
    chunked responses, one wire frame per chunk), [GET /health] reports
    fleet liveness, [GET /metrics] is Prometheus text exposition
    aggregating gateway counters with every shard's [stats] — per-op,
    per-error-code and per-fault-class counters plus the lifetime work
    table, labeled by shard.

    [ping] and [stats] are answered by the gateway itself (ping's
    result is byte-identical to a daemon's; stats aggregates the
    fleet). Everything else routes: the owner shard is tried first,
    then its ring successors when the owner is down. A shard at its
    [max_inflight] admission bound is answered with the daemon's own
    structured retryable [overloaded] error — never spilled to a
    neighbour, which would re-compile the hot model the ring exists to
    pin. A shard that dies mid-exchange yields a structured retryable
    [shard_failed] reply (stream-terminated when mid-trace), never a
    hang; spawned shards are monitored and respawned with jittered
    exponential backoff. *)

type backend =
  | Spawn of {
      exe : string;  (** the [crnserved] binary *)
      count : int;
      dir : string;  (** runtime directory for shard sockets *)
      jobs : int option;  (** per-shard worker domains *)
      queue_bound : int option;
      cache_capacity : int option;
      state_dir : string option;
          (** warm persistent state root: each shard gets
              [<dir>/shard-<i>-state], so a respawned shard reloads the
              models it had compiled before dying and serves its first
              routed request as a cache hit *)
      extra_args : string list;
    }  (** spawn and supervise [count] daemons on Unix sockets *)
  | Attach of Addr.t list
      (** route to pre-existing daemons; no lifecycle management *)

type config = {
  wire : Addr.t option;
  http : Addr.t option;
  backend : backend;
  replicas : int;  (** ring points per shard *)
  affinity : bool;
      (** [false] routes uniformly at random (the baseline the bench
          measures the ring against) *)
  max_inflight : int;  (** per-shard admission bound *)
  route_memo : int;  (** source → routing-key memo entries *)
  max_frame : int;
  max_conns : int;
  shard_deadline_ms : float;  (** stats/metrics fan-out read deadline *)
  boot_timeout_ms : float;
      (** wait for spawned shards to accept before listening *)
  log : bool;
  seed : int64;  (** jitter and random-routing stream *)
}

val default_config : backend -> config
(** No listeners (set at least one), 128 replicas, affinity on,
    64 in-flight per shard, 512 memo entries, 64 MiB frames, 1024
    connections, 2 s shard deadline, 10 s boot wait, quiet, seed 1. *)

val run : ?stop:(unit -> bool) -> config -> unit
(** Spawn/await the fleet, bind the listeners, and serve until
    [stop ()] returns true (polled at least every 0.25 s). On return
    listeners are closed, Unix socket files unlinked, and spawned
    shards are terminated (SIGTERM, then SIGKILL after 5 s) and
    reaped. Raises [Invalid_argument] when no listener or no shard is
    configured. *)
