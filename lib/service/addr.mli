(** Service addresses: Unix-domain socket path or TCP host:port. *)

type t = Unix_sock of string | Tcp of string * int

val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts ["unix:PATH"], a path starting with ['/'] or ['.'], or
    ["HOST:PORT"] (empty host means 127.0.0.1, e.g. [":7421"]). *)

val connect : t -> Unix.file_descr
(** Client-side connect ([TCP_NODELAY] set on TCP). *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind + listen; removes a stale Unix socket file first, sets
    [SO_REUSEADDR] on TCP. *)

val cleanup : t -> unit
(** Unlink the Unix socket file (no-op for TCP); for daemon shutdown. *)
