(** Service addresses: Unix-domain socket path, TCP host:port, or an
    HTTP endpoint.

    [Http] shares TCP's transport but tells the client to frame
    requests as HTTP/1.1 POSTs instead of length-prefixed wire frames —
    it is how [crnsim --connect http://gate:8080] reaches a gateway. *)

type t = Unix_sock of string | Tcp of string * int | Http of string * int

val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts ["unix:PATH"], a path starting with ['/'] or ['.'],
    ["HOST:PORT"] (empty host means 127.0.0.1, e.g. [":7421"]), or
    ["http://HOST:PORT"] (port defaults to 80; a trailing path is
    ignored). *)

val connect : t -> Unix.file_descr
(** Client-side connect ([TCP_NODELAY] set on TCP). *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind + listen; removes a stale Unix socket file first, sets
    [SO_REUSEADDR] on TCP. *)

val cleanup : t -> unit
(** Unlink the Unix socket file (no-op for TCP); for daemon shutdown. *)
