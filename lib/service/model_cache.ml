(* LRU cache of compiled simulation models.

   Two maps under one mutex:

   - [models]: canonical network digest ({!Crn.Equiv.cache_key} extended
     with the rate environment) -> compiled entry (the network, its
     compiled ODE system, and the compiled SSA model). Distinct request
     sources that synthesize the same network under the same environment
     share one compiled entry through this digest.
   - [sources]: request-source digest -> model key. A repeat of an
     identical request skips not just compilation but synthesis and
     canonicalization too — the expensive part of a cold request — which
     is what makes warm requests an order of magnitude cheaper.

   Both compiled artifacts are immutable once built (runs keep all
   mutable state per-run), so entries are safely shared by concurrent
   worker domains. Compilation happens under the lock: entries compile
   in a few milliseconds, and serializing them keeps the code free of
   duplicate-compile races. *)

type entry = {
  key : string;
  net : Crn.Network.t;
  env : Crn.Rates.env;
  sys : Ode.Deriv.t;
  ssa : Ssa.Gillespie.model;
  fingerprint : string;
  compile_ms : float;
      (* what the cold path paid: synthesis + canonical digest + both
         compilers; reported in response metrics so clients see what the
         cache saves them *)
  mutable last_used : int;
  mutable hits : int;
}

(* Background snapshot persister: one domain draining a queue of
   (entry, source aliases) pairs, so serialization and disk writes never
   run on the request path. Entries are immutable once compiled, so
   sharing them with the persister domain is safe; the alias list is
   copied under the cache lock at enqueue time. *)
type persist_job = { pj_entry : entry; pj_sources : string list }

type persister = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  p_queue : persist_job Queue.t;
  p_dir : string;
  mutable p_stop : bool;
  mutable p_busy : bool;
  mutable p_domain : unit Domain.t option;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  models : (string, entry) Hashtbl.t;
  sources : (string, string) Hashtbl.t;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evictions : int;
  mutable persister : persister option;
  mutable warm_loaded : int;
  mutable warm_skipped_corrupt : int;
  mutable warm_skipped_version : int;
  mutable snapshot_writes : int;
}

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Model_cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    capacity;
    models = Hashtbl.create 64;
    sources = Hashtbl.create 64;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    evictions = 0;
    persister = None;
    warm_loaded = 0;
    warm_skipped_corrupt = 0;
    warm_skipped_version = 0;
    snapshot_writes = 0;
  }

let env_key (env : Crn.Rates.env) =
  Printf.sprintf "%.17g/%.17g" env.Crn.Rates.k_fast env.Crn.Rates.k_slow

let touch cache entry =
  cache.tick <- cache.tick + 1;
  entry.last_used <- cache.tick

(* ---------- disk snapshots ---------- *)

let snapshot_path dir key =
  (* the key embeds '/' (the env part is "k_fast/k_slow"), so the file
     name is its digest, not the key itself *)
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".model")

let snapshot_of_entry entry ~sources =
  Snapshot.encode_model
    {
      Snapshot.ms_key = entry.key;
      ms_sources = Array.of_list sources;
      ms_fingerprint = entry.fingerprint;
      ms_compile_ms = entry.compile_ms;
      ms_net = entry.net;
      ms_env = entry.env;
      ms_sys = entry.sys;
      ms_ssa = entry.ssa;
    }

let write_snapshot cache dir job =
  match
    Binio.write_raw_atomic
      (snapshot_path dir job.pj_entry.key)
      (snapshot_of_entry job.pj_entry ~sources:job.pj_sources)
  with
  | () ->
      Mutex.lock cache.mutex;
      cache.snapshot_writes <- cache.snapshot_writes + 1;
      Mutex.unlock cache.mutex
  | exception Sys_error _ -> ()

let persister_loop cache p =
  let rec next () =
    Mutex.lock p.p_mutex;
    let job =
      let rec wait () =
        if not (Queue.is_empty p.p_queue) then begin
          p.p_busy <- true;
          Some (Queue.pop p.p_queue)
        end
        else if p.p_stop then None
        else begin
          Condition.wait p.p_cond p.p_mutex;
          wait ()
        end
      in
      wait ()
    in
    Mutex.unlock p.p_mutex;
    match job with
    | None -> ()
    | Some job ->
        write_snapshot cache p.p_dir job;
        Mutex.lock p.p_mutex;
        p.p_busy <- false;
        Mutex.unlock p.p_mutex;
        next ()
  in
  next ()

(* Called with the cache mutex held: snapshot the alias list and hand
   the immutable entry to the persister domain. Without a configured
   state dir this is a no-op. *)
let schedule_persist cache entry =
  match cache.persister with
  | None -> ()
  | Some p ->
      let sources =
        Hashtbl.fold
          (fun src key acc -> if key = entry.key then src :: acc else acc)
          cache.sources []
        |> List.sort compare
      in
      Mutex.lock p.p_mutex;
      Queue.push { pj_entry = entry; pj_sources = sources } p.p_queue;
      Condition.signal p.p_cond;
      Mutex.unlock p.p_mutex

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let set_state_dir cache dir =
  mkdir_p dir;
  Mutex.lock cache.mutex;
  (match cache.persister with
  | Some _ -> ()
  | None ->
      let p =
        {
          p_mutex = Mutex.create ();
          p_cond = Condition.create ();
          p_queue = Queue.create ();
          p_dir = dir;
          p_stop = false;
          p_busy = false;
          p_domain = None;
        }
      in
      p.p_domain <- Some (Domain.spawn (fun () -> persister_loop cache p));
      cache.persister <- Some p);
  Mutex.unlock cache.mutex

let flush cache =
  match cache.persister with
  | None -> ()
  | Some p ->
      let rec wait_idle () =
        Mutex.lock p.p_mutex;
        let idle = Queue.is_empty p.p_queue && not p.p_busy in
        Mutex.unlock p.p_mutex;
        if not idle then begin
          Unix.sleepf 0.002;
          wait_idle ()
        end
      in
      wait_idle ()

let shutdown cache =
  Mutex.lock cache.mutex;
  let p = cache.persister in
  cache.persister <- None;
  Mutex.unlock cache.mutex;
  match p with
  | None -> ()
  | Some p ->
      Mutex.lock p.p_mutex;
      p.p_stop <- true;
      Condition.signal p.p_cond;
      Mutex.unlock p.p_mutex;
      (match p.p_domain with Some d -> Domain.join d | None -> ())

let evict_lru cache =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some best when best.last_used <= e.last_used -> acc
        | _ -> Some e)
      cache.models None
  in
  match victim with
  | None -> ()
  | Some e ->
      (* persist before dropping: an evicted entry remains loadable from
         disk, so capacity pressure never destroys compilation work *)
      schedule_persist cache e;
      Hashtbl.remove cache.models e.key;
      (* drop the source aliases that pointed at it *)
      let stale =
        Hashtbl.fold
          (fun src key acc -> if key = e.key then src :: acc else acc)
          cache.sources []
      in
      List.iter (Hashtbl.remove cache.sources) stale;
      cache.evictions <- cache.evictions + 1

let compile_entry cache ~env ~build =
  let t0 = Unix.gettimeofday () in
  let net = build () in
  let key = Crn.Equiv.cache_key net ^ "@" ^ env_key env in
  match Hashtbl.find_opt cache.models key with
  | Some entry -> (entry, `Miss)
      (* different source text, same canonical network: the digest
         dedupes it onto the existing compiled entry; the request still
         counts as a miss (it paid synthesis + digest) *)
  | None ->
      let fingerprint = Crn.Equiv.fingerprint net in
      let sys = Ode.Deriv.compile env net in
      let ssa = Ssa.Gillespie.compile_model env net in
      let compile_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let entry =
        {
          key;
          net;
          env;
          sys;
          ssa;
          fingerprint;
          compile_ms;
          last_used = 0;
          hits = 0;
        }
      in
      if Hashtbl.length cache.models >= cache.capacity then evict_lru cache;
      Hashtbl.replace cache.models key entry;
      (entry, `Miss)

let find_or_compile cache ~source_key ~env ~build =
  Mutex.lock cache.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.mutex)
    (fun () ->
      let hit =
        match Hashtbl.find_opt cache.sources source_key with
        | Some key -> Hashtbl.find_opt cache.models key
        | None -> None
      in
      match hit with
      | Some entry ->
          touch cache entry;
          entry.hits <- entry.hits + 1;
          cache.hit_count <- cache.hit_count + 1;
          (entry, `Hit)
      | None ->
          let entry, outcome = compile_entry cache ~env ~build in
          touch cache entry;
          Hashtbl.replace cache.sources source_key entry.key;
          cache.miss_count <- cache.miss_count + 1;
          (* off the request path: the persister domain serializes and
             writes; the request only enqueues (alias list included, so
             the snapshot memoizes synthesis too) *)
          schedule_persist cache entry;
          (entry, outcome))

let stats cache =
  Mutex.lock cache.mutex;
  let s =
    ( Hashtbl.length cache.models,
      cache.hit_count,
      cache.miss_count,
      cache.evictions )
  in
  Mutex.unlock cache.mutex;
  s

let source_key ~spec ~env = Digest.to_hex (Digest.string (spec ^ "@" ^ env_key env))

(* ---------- warm load / save ---------- *)

type warm_report = { loaded : int; skipped_corrupt : int; skipped_version : int }

(* Admit one decoded snapshot under the lock. The stored key is
   untrusted: the digest is recomputed from the decoded network and
   environment and must match, so a stale or tampered file (wrong
   canonicalization revision, edited bytes that still pass the CRC by
   construction) is skipped rather than poisoning the cache. *)
let admit cache (ms : Snapshot.model_snapshot) =
  let expect = Crn.Equiv.cache_key ms.Snapshot.ms_net ^ "@" ^ env_key ms.Snapshot.ms_env in
  if expect <> ms.Snapshot.ms_key then `Stale
  else if Hashtbl.mem cache.models expect then `Duplicate
  else if Hashtbl.length cache.models >= cache.capacity then `Full
  else begin
    let entry =
      {
        key = expect;
        net = ms.Snapshot.ms_net;
        env = ms.Snapshot.ms_env;
        sys = ms.Snapshot.ms_sys;
        ssa = ms.Snapshot.ms_ssa;
        fingerprint = ms.Snapshot.ms_fingerprint;
        compile_ms = ms.Snapshot.ms_compile_ms;
        last_used = 0;
        hits = 0;
      }
    in
    (* LRU accounting restarts at load time: a warm entry gets a fresh
       tick (not the zero it was created with), otherwise every
       warm-loaded entry would be the immediate eviction victim and one
       cold insert could wipe the whole warm set *)
    touch cache entry;
    Hashtbl.replace cache.models expect entry;
    Array.iter
      (fun src -> Hashtbl.replace cache.sources src expect)
      ms.Snapshot.ms_sources;
    `Loaded
  end

let load_from cache dir =
  let files =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | names ->
        let models =
          Array.to_list names
          |> List.filter (fun f -> Filename.check_suffix f ".model")
          |> List.sort compare
        in
        Array.of_list models
  in
  let report = ref { loaded = 0; skipped_corrupt = 0; skipped_version = 0 } in
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Snapshot.decode_model (Binio.read_raw path) with
      | exception (Binio.Corrupt _ | Sys_error _) ->
          report := { !report with skipped_corrupt = !report.skipped_corrupt + 1 }
      | exception Snapshot.Version_mismatch _ ->
          report := { !report with skipped_version = !report.skipped_version + 1 }
      | ms -> (
          Mutex.lock cache.mutex;
          let verdict = admit cache ms in
          Mutex.unlock cache.mutex;
          match verdict with
          | `Loaded -> report := { !report with loaded = !report.loaded + 1 }
          | `Stale ->
              report :=
                { !report with skipped_corrupt = !report.skipped_corrupt + 1 }
          | `Duplicate | `Full -> ()))
    files;
  Mutex.lock cache.mutex;
  cache.warm_loaded <- cache.warm_loaded + !report.loaded;
  cache.warm_skipped_corrupt <-
    cache.warm_skipped_corrupt + !report.skipped_corrupt;
  cache.warm_skipped_version <-
    cache.warm_skipped_version + !report.skipped_version;
  Mutex.unlock cache.mutex;
  !report

let save_to cache dir =
  mkdir_p dir;
  Mutex.lock cache.mutex;
  let jobs =
    Hashtbl.fold
      (fun _ e acc ->
        let sources =
          Hashtbl.fold
            (fun src key acc -> if key = e.key then src :: acc else acc)
            cache.sources []
          |> List.sort compare
        in
        { pj_entry = e; pj_sources = sources } :: acc)
      cache.models []
  in
  Mutex.unlock cache.mutex;
  List.iter (write_snapshot cache dir) jobs;
  List.length jobs

let warm_counters cache =
  Mutex.lock cache.mutex;
  let c =
    ( cache.warm_loaded,
      cache.warm_skipped_corrupt,
      cache.warm_skipped_version,
      cache.snapshot_writes )
  in
  Mutex.unlock cache.mutex;
  c
