(* LRU cache of compiled simulation models.

   Two maps under one mutex:

   - [models]: canonical network digest ({!Crn.Equiv.cache_key} extended
     with the rate environment) -> compiled entry (the network, its
     compiled ODE system, and the compiled SSA model). Distinct request
     sources that synthesize the same network under the same environment
     share one compiled entry through this digest.
   - [sources]: request-source digest -> model key. A repeat of an
     identical request skips not just compilation but synthesis and
     canonicalization too — the expensive part of a cold request — which
     is what makes warm requests an order of magnitude cheaper.

   Both compiled artifacts are immutable once built (runs keep all
   mutable state per-run), so entries are safely shared by concurrent
   worker domains. Compilation happens under the lock: entries compile
   in a few milliseconds, and serializing them keeps the code free of
   duplicate-compile races. *)

type entry = {
  key : string;
  net : Crn.Network.t;
  env : Crn.Rates.env;
  sys : Ode.Deriv.t;
  ssa : Ssa.Gillespie.model;
  fingerprint : string;
  compile_ms : float;
      (* what the cold path paid: synthesis + canonical digest + both
         compilers; reported in response metrics so clients see what the
         cache saves them *)
  mutable last_used : int;
  mutable hits : int;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  models : (string, entry) Hashtbl.t;
  sources : (string, string) Hashtbl.t;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evictions : int;
}

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Model_cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    capacity;
    models = Hashtbl.create 64;
    sources = Hashtbl.create 64;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    evictions = 0;
  }

let env_key (env : Crn.Rates.env) =
  Printf.sprintf "%.17g/%.17g" env.Crn.Rates.k_fast env.Crn.Rates.k_slow

let touch cache entry =
  cache.tick <- cache.tick + 1;
  entry.last_used <- cache.tick

let evict_lru cache =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some best when best.last_used <= e.last_used -> acc
        | _ -> Some e)
      cache.models None
  in
  match victim with
  | None -> ()
  | Some e ->
      Hashtbl.remove cache.models e.key;
      (* drop the source aliases that pointed at it *)
      let stale =
        Hashtbl.fold
          (fun src key acc -> if key = e.key then src :: acc else acc)
          cache.sources []
      in
      List.iter (Hashtbl.remove cache.sources) stale;
      cache.evictions <- cache.evictions + 1

let compile_entry cache ~env ~build =
  let t0 = Unix.gettimeofday () in
  let net = build () in
  let key = Crn.Equiv.cache_key net ^ "@" ^ env_key env in
  match Hashtbl.find_opt cache.models key with
  | Some entry -> (entry, `Miss)
      (* different source text, same canonical network: the digest
         dedupes it onto the existing compiled entry; the request still
         counts as a miss (it paid synthesis + digest) *)
  | None ->
      let fingerprint = Crn.Equiv.fingerprint net in
      let sys = Ode.Deriv.compile env net in
      let ssa = Ssa.Gillespie.compile_model env net in
      let compile_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let entry =
        {
          key;
          net;
          env;
          sys;
          ssa;
          fingerprint;
          compile_ms;
          last_used = 0;
          hits = 0;
        }
      in
      if Hashtbl.length cache.models >= cache.capacity then evict_lru cache;
      Hashtbl.replace cache.models key entry;
      (entry, `Miss)

let find_or_compile cache ~source_key ~env ~build =
  Mutex.lock cache.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.mutex)
    (fun () ->
      let hit =
        match Hashtbl.find_opt cache.sources source_key with
        | Some key -> Hashtbl.find_opt cache.models key
        | None -> None
      in
      match hit with
      | Some entry ->
          touch cache entry;
          entry.hits <- entry.hits + 1;
          cache.hit_count <- cache.hit_count + 1;
          (entry, `Hit)
      | None ->
          let entry, outcome = compile_entry cache ~env ~build in
          touch cache entry;
          Hashtbl.replace cache.sources source_key entry.key;
          cache.miss_count <- cache.miss_count + 1;
          (entry, outcome))

let stats cache =
  Mutex.lock cache.mutex;
  let s =
    ( Hashtbl.length cache.models,
      cache.hit_count,
      cache.miss_count,
      cache.evictions )
  in
  Mutex.unlock cache.mutex;
  s

let source_key ~spec ~env = Digest.to_hex (Digest.string (spec ^ "@" ^ env_key env))
