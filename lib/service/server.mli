(** The mrsc simulation server: select-loop frontend, bounded worker
    pool, compiled-model cache, per-request deadlines and metrics.

    Protocol: length-prefixed JSON frames ({!Wire}). A request is an
    object with an ["op"] field — [ping], [stats], [parse], [ode],
    [ssa], [ensemble], [sweep], [dsd], [trace] — plus op-specific
    fields (["network"], ["t1"], ["ratio"], ["method"], ["seed"],
    ["runs"], ["ratios"], ["c_max"], ["deadline_ms"]...). Every
    response carries ["ok"], ["op"], ["result"] or ["error"]
    ({!Error.to_json}), and a ["metrics"] block
    ({!Metrics.request_json}).

    The [trace] op streams: a header frame (["stream"], ["species"]),
    then sample-chunk frames (["chunk"], ["t"], ["x"]; ["chunk"]
    request field sets the samples per frame, default 256), then a
    final response envelope whose serialized form starts with the
    stable prefix [{"done":] — which is how a relaying gateway spots
    the end of the stream without parsing. With ["engine": "ode"] the
    samples stream live while the integrator runs and reproduce
    [Ode.Driver.simulate ~thin] bitwise; ["engine": "ssa"] streams the
    finished run's sampled trace in chunks.

    Concurrency: [ping]/[stats] are answered inline on the event-loop
    domain; compute ops are enqueued on a
    {!Numeric.Domain_pool.Bounded} pool. A full queue is answered
    immediately with [overloaded]; an expired deadline aborts the run
    via {!Numeric.Cancel} and answers [deadline_exceeded] — the worker
    domain survives both. Responses may interleave across requests of
    one connection (pipelining); clients match on order only if they
    send one request at a time. *)

type config = {
  address : Addr.t;
  jobs : int;  (** worker domains *)
  queue_bound : int;  (** queued jobs beyond which requests are refused *)
  cache_capacity : int;  (** compiled-model LRU entries *)
  default_deadline_ms : float option;
      (** applied when a request carries no ["deadline_ms"] *)
  max_frame : int;
      (** per-connection frame-size limit in bytes; a longer length
          prefix is answered with a structured error and the connection
          closed, without buffering or allocating the payload *)
  read_deadline_ms : float;
      (** a connection whose partial frame is older than this is
          answered with a structured error and closed; [<= 0] disables *)
  idle_timeout_ms : float;
      (** a connection with no buffered bytes, no running jobs and no
          traffic for this long is closed; [<= 0] disables *)
  max_conns : int;
      (** open-connection cap; further accepts are answered with a
          structured [connection_limit] error and closed immediately *)
  log : bool;  (** one stderr line per connection event *)
  state_dir : string option;
      (** warm persistent state root: compiled-model snapshots live in
          [<dir>/models] (loaded before the daemon accepts connections,
          written by a background persister on insert and eviction), and
          deadline-cancelled runs drop resumable checkpoints in
          [<dir>/checkpoints], named by the [deadline_exceeded] error's
          ["checkpoint"] token. [None] (the default) disables both. *)
}

val default_config : Addr.t -> config
(** All cores but one, queue bound 64, cache capacity 32, no default
    deadline, 8 MiB frames, 10 s read deadline, 5 min idle timeout,
    256 connections, quiet.

    Fault tolerance: every misbehaving peer kills at most its own
    connection — torn frames are reassembled, a corrupt frame gets a
    structured [bad_request], an oversized or negative length prefix a
    structured error then close, a stalled or idle peer is reaped on the
    deadlines above, and a reset/dirty close is absorbed. Each class
    increments a counter visible through the [stats] op
    ({!Metrics.record_conn}). *)

val protocol_version : int

val run : ?stop:(unit -> bool) -> config -> unit
(** Bind the address and serve until [stop ()] returns true (polled at
    least every 0.25 s; default never). On return the listen socket is
    closed, worker domains are joined (accepted jobs finish first), and
    a Unix socket file is unlinked. Binding errors propagate. *)
