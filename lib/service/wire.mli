(** Length-prefixed frame transport for the service protocol.

    Frame format: a 4-byte big-endian payload length, then that many
    bytes of UTF-8 JSON. Every reader takes a [?max_frame] limit
    (default {!default_max_frame}) and rejects a longer length prefix
    with {!Oversized_frame} {e before} allocating or buffering the
    payload — a hostile 4-byte prefix can never request a multi-GB
    buffer, and a decoder configured with the daemon's (much smaller)
    per-connection limit refuses the frame as soon as the prefix is
    complete. *)

val default_max_frame : int
(** 64 MiB — the ceiling applied when the caller passes no [?max_frame]. *)

exception Framing_error of string
(** Stream desync: negative length prefix, EOF inside a frame, or a
    short write. The connection cannot be resynchronized; close it. *)

exception Oversized_frame of { len : int; limit : int }
(** A structurally valid length prefix above the configured limit. *)

(** A byte transport with the [Unix.read]/[Unix.write] calling
    convention ([buf -> off -> len -> n]; read returning 0 is EOF).
    {!of_fd} wraps a socket; {!Fault.wrap} interposes fault injection. *)
type transport = {
  read : Bytes.t -> int -> int -> int;
  write : Bytes.t -> int -> int -> int;
}

val of_fd : Unix.file_descr -> transport

val write_frame_t : ?max_frame:int -> transport -> string -> unit

val write_frame : ?max_frame:int -> Unix.file_descr -> string -> unit
(** Write one complete frame. The caller serializes concurrent writers
    on the same descriptor (the server holds a per-connection mutex). *)

val read_frame_t : ?max_frame:int -> transport -> string option

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Blocking read of one frame; [None] on clean EOF between frames
    (zero bytes of the next frame arrived — the discrimination the
    client's retry policy relies on). Raises {!Framing_error} on EOF
    inside a frame and {!Oversized_frame} on a too-large prefix. *)

(** Incremental decoder for the server's select loop: feed whatever
    bytes arrived, pull out as many complete frames as are buffered. *)
type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] is checked by {!next_frame} as soon as the 4-byte prefix
    is buffered, so a rejected frame's payload is never awaited. *)

val buffered : decoder -> int
(** Bytes currently buffered. After draining with {!next_frame} this is
    nonzero exactly when a partial frame is pending — what the server's
    partial-frame read deadline watches. *)

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d chunk n] appends the first [n] bytes of [chunk]. *)

val next_frame : decoder -> string option
(** Extract the next complete frame, or [None] if more bytes are
    needed. Raises {!Framing_error} on a negative prefix and
    {!Oversized_frame} on one above the decoder's limit. *)
