(** Length-prefixed frame transport for the service protocol.

    Frame format: a 4-byte big-endian payload length, then that many
    bytes of UTF-8 JSON. Frames longer than 64 MiB are rejected
    ({!Framing_error}) so a corrupt prefix cannot trigger unbounded
    allocation. *)

exception Framing_error of string

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame. The caller serializes concurrent writers
    on the same descriptor (the server holds a per-connection mutex). *)

val read_frame : Unix.file_descr -> string option
(** Blocking read of one frame; [None] on clean EOF between frames.
    Raises {!Framing_error} on EOF inside a frame or a bad length. *)

(** Incremental decoder for the server's select loop: feed whatever
    bytes arrived, pull out as many complete frames as are buffered. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d chunk n] appends the first [n] bytes of [chunk]. *)

val next_frame : decoder -> string option
(** Extract the next complete frame, or [None] if more bytes are
    needed. Raises {!Framing_error} on a bad length prefix. *)
