(** Structured errors shared by the service wire protocol and the
    command-line tools.

    One vocabulary for everything a simulation request can die of:
    each case carries a stable machine [code] (what goes over the wire
    and what scripts match on), a one-line human [message], and a
    documented CLI [exit_code] — so [crnsim] prints a clean line instead
    of an uncaught-exception backtrace, and the daemon answers with the
    same classification. *)

type t =
  | Bad_request of string  (** malformed or unsupported request *)
  | Parse_error of { line : int; msg : string }  (** .crn text parse *)
  | Unknown_design of string  (** not a file, not a catalog name *)
  | Max_events_exceeded of { max_events : int; t : float }
  | Max_steps_exceeded of { max_steps : int; t : float }
  | Solver_failure of { solver : string; msg : string }
      (** ODE non-convergence: step budget or step-size underflow *)
  | Not_compilable of string  (** DSD compilation of molecularity > 2 *)
  | Deadline_exceeded of { budget_ms : float; checkpoint : string option }
      (** [checkpoint] names a resumable simulation checkpoint the
          daemon wrote under its state directory before cancelling —
          a retry can continue the trajectory instead of restarting *)
  | Overloaded of { queue_bound : int }  (** bounded queue refused the job *)
  | Connection_limit of { max_conns : int }
      (** connection cap reached; the daemon answered and closed *)
  | Shard_failed of { shard : int }
      (** a gateway's worker shard died before completing the request;
          the failure is transient — another shard (or the respawned
          one) can serve a retry *)
  | Validation_failed of { issues : (string * string) list }
      (** the exact verification tier rejected the network; each issue
          is a stable [(code, detail)] pair, e.g.
          [("phase_overlap", ...)] — retrying is pointless until the
          network changes *)
  | Internal of string

val code : t -> string
(** Stable machine string, e.g. ["deadline_exceeded"]. *)

val message : t -> string

val exit_code : t -> int
(** 2 input/usage, 3 simulation budget/solver, 4 deadline, 5 transient
    capacity/fleet trouble (overloaded, over the connection cap, a
    failed shard), 6 validation rejected the network, 70 internal. *)

val of_exn : exn -> t option
(** Classify the structured exceptions of the simulation stack
    ({!Crn.Parser.Parse_error}, {!Ssa.Gillespie.Error},
    {!Ssa.Tau_leap.Error}, {!Ode.Solver_error.Error},
    {!Dsd.Translate.Not_compilable}); [None] for anything else. *)

val to_json : t -> Json.t
(** [{"code": ..., "message": ..., <payload fields>}]. *)

val of_json : Json.t -> t
(** Inverse of {!to_json} for typed dispatch on [code] and payload
    fields. Display the wire object's ["message"] field directly rather
    than re-rendering through {!message} (which would re-prefix some
    cases). Malformed objects decode to {!Internal}. *)
