(* Per-request metrics blocks and since-start aggregate counters.

   Every response the daemon writes carries a [request] block (queue
   wait, cache outcome, compile/run wall time, engine-specific work
   counters); the aggregate side is a mutex-protected set of counters
   the [stats] request reads. *)

type cache_outcome = Hit | Miss | Not_applicable

let cache_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Not_applicable -> "n/a"

type request = {
  queue_wait_ms : float;
  cache : cache_outcome;
  compile_ms : float;  (** 0 on a cache hit *)
  run_ms : float;
  total_ms : float;  (** arrival to response, excluding socket transfer *)
  extra : (string * Json.t) list;
      (** engine work counters: events, steps, runs, points... *)
}

let request_json m =
  Json.Obj
    ([
       ("queue_wait_ms", Json.num m.queue_wait_ms);
       ("cache", Json.str (cache_string m.cache));
       ("compile_ms", Json.num m.compile_ms);
       ("run_ms", Json.num m.run_ms);
       ("total_ms", Json.num m.total_ms);
     ]
    @ m.extra)

(* ------------------------------------------------------------ aggregate *)

type t = {
  mutex : Mutex.t;
  started_at : float;
  by_op : (string, int) Hashtbl.t;
  by_error : (string, int) Hashtbl.t;
  (* engine work counters summed from the per-request [extra] blocks
     (events, leaps, ode_steps…) — a daemon-lifetime view of how much
     simulation work each engine has done, per counter name *)
  work : (string, float) Hashtbl.t;
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable queue_wait_ms_sum : float;
  mutable run_ms_sum : float;
  mutable run_ms_max : float;
  (* exceptions that escaped a pool job entirely (reported by
     Domain_pool.Bounded.set_on_uncaught) — zero in a healthy daemon,
     since run_job answers every failure with a structured error *)
  mutable job_exceptions : int;
  mutable last_job_error : string option;
  (* exact verification tier: certified vs rejected networks; validate
     runs inline on the event loop, so these also measure how much
     traffic never reached the worker pool *)
  mutable validate_ok : int;
  mutable validate_reject : int;
  (* connection-level fault counters: one per fault class the daemon
     degrades gracefully under, so the stats op shows exactly what a
     hostile or broken peer has been doing *)
  mutable conns_accepted : int;
  mutable conns_closed : int;
  mutable conns_rejected : int;  (* over the connection cap *)
  mutable frames_in : int;  (* complete frames decoded, however torn *)
  mutable framing_errors : int;  (* negative prefix, desynced stream *)
  mutable oversized_frames : int;  (* prefix above the max-frame limit *)
  mutable read_timeouts : int;  (* partial frame older than the deadline *)
  mutable idle_reaped : int;  (* quiet connection past the idle timeout *)
  mutable read_resets : int;  (* ECONNRESET (or kin) while reading *)
  mutable dirty_closes : int;  (* EOF with a partial frame buffered *)
}

type conn_event =
  | Conn_accepted
  | Conn_closed
  | Conn_rejected
  | Frame_in
  | Framing_error
  | Oversized_frame
  | Read_timeout
  | Idle_reaped
  | Read_reset
  | Dirty_close

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    by_op = Hashtbl.create 16;
    by_error = Hashtbl.create 16;
    work = Hashtbl.create 16;
    requests = 0;
    ok = 0;
    errors = 0;
    cache_hits = 0;
    cache_misses = 0;
    queue_wait_ms_sum = 0.;
    run_ms_sum = 0.;
    run_ms_max = 0.;
    job_exceptions = 0;
    last_job_error = None;
    validate_ok = 0;
    validate_reject = 0;
    conns_accepted = 0;
    conns_closed = 0;
    conns_rejected = 0;
    frames_in = 0;
    framing_errors = 0;
    oversized_frames = 0;
    read_timeouts = 0;
    idle_reaped = 0;
    read_resets = 0;
    dirty_closes = 0;
  }

let record_conn agg event =
  Mutex.lock agg.mutex;
  (match event with
  | Conn_accepted -> agg.conns_accepted <- agg.conns_accepted + 1
  | Conn_closed -> agg.conns_closed <- agg.conns_closed + 1
  | Conn_rejected -> agg.conns_rejected <- agg.conns_rejected + 1
  | Frame_in -> agg.frames_in <- agg.frames_in + 1
  | Framing_error -> agg.framing_errors <- agg.framing_errors + 1
  | Oversized_frame -> agg.oversized_frames <- agg.oversized_frames + 1
  | Read_timeout -> agg.read_timeouts <- agg.read_timeouts + 1
  | Idle_reaped -> agg.idle_reaped <- agg.idle_reaped + 1
  | Read_reset -> agg.read_resets <- agg.read_resets + 1
  | Dirty_close -> agg.dirty_closes <- agg.dirty_closes + 1);
  Mutex.unlock agg.mutex

let record_validate agg ~ok =
  Mutex.lock agg.mutex;
  if ok then agg.validate_ok <- agg.validate_ok + 1
  else agg.validate_reject <- agg.validate_reject + 1;
  Mutex.unlock agg.mutex

let record_job_exception agg e =
  let msg = Printexc.to_string e in
  Mutex.lock agg.mutex;
  agg.job_exceptions <- agg.job_exceptions + 1;
  agg.last_job_error <- Some msg;
  Mutex.unlock agg.mutex

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record agg ~op ~error ~request:m =
  Mutex.lock agg.mutex;
  agg.requests <- agg.requests + 1;
  bump agg.by_op op;
  (match error with
  | None -> agg.ok <- agg.ok + 1
  | Some code ->
      agg.errors <- agg.errors + 1;
      bump agg.by_error code);
  (match m.cache with
  | Hit -> agg.cache_hits <- agg.cache_hits + 1
  | Miss -> agg.cache_misses <- agg.cache_misses + 1
  | Not_applicable -> ());
  agg.queue_wait_ms_sum <- agg.queue_wait_ms_sum +. m.queue_wait_ms;
  agg.run_ms_sum <- agg.run_ms_sum +. m.run_ms;
  if m.run_ms > agg.run_ms_max then agg.run_ms_max <- m.run_ms;
  List.iter
    (fun (key, v) ->
      match Json.to_float v with
      | Some f ->
          Hashtbl.replace agg.work key
            (f +. Option.value ~default:0. (Hashtbl.find_opt agg.work key))
      | None -> ())
    m.extra;
  Mutex.unlock agg.mutex

let table_json tbl =
  Json.Obj
    (Hashtbl.fold (fun k v acc -> (k, Json.int v) :: acc) tbl []
    |> List.sort compare)

let to_json agg =
  Mutex.lock agg.mutex;
  let j =
    Json.Obj
      [
        ("uptime_s", Json.num (Unix.gettimeofday () -. agg.started_at));
        ("requests", Json.int agg.requests);
        ("ok", Json.int agg.ok);
        ("errors", Json.int agg.errors);
        ("by_op", table_json agg.by_op);
        ("by_error", table_json agg.by_error);
        ( "work",
          Json.Obj
            (Hashtbl.fold
               (fun k v acc -> (k, Json.num v) :: acc)
               agg.work []
            |> List.sort compare) );
        ("cache_hits", Json.int agg.cache_hits);
        ("cache_misses", Json.int agg.cache_misses);
        ("queue_wait_ms_sum", Json.num agg.queue_wait_ms_sum);
        ("run_ms_sum", Json.num agg.run_ms_sum);
        ("run_ms_max", Json.num agg.run_ms_max);
        ("job_exceptions", Json.int agg.job_exceptions);
        ("validate_ok", Json.int agg.validate_ok);
        ("validate_reject", Json.int agg.validate_reject);
        ( "last_job_error",
          match agg.last_job_error with
          | None -> Json.Null
          | Some msg -> Json.str msg );
        ("conns_accepted", Json.int agg.conns_accepted);
        ("conns_closed", Json.int agg.conns_closed);
        ("conns_rejected", Json.int agg.conns_rejected);
        ("frames_in", Json.int agg.frames_in);
        ("framing_errors", Json.int agg.framing_errors);
        ("oversized_frames", Json.int agg.oversized_frames);
        ("read_timeouts", Json.int agg.read_timeouts);
        ("idle_reaped", Json.int agg.idle_reaped);
        ("read_resets", Json.int agg.read_resets);
        ("dirty_closes", Json.int agg.dirty_closes);
      ]
  in
  Mutex.unlock agg.mutex;
  j
