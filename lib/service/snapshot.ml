(* Binary codecs for the two persistent artifacts of the service layer:

   - model snapshots: a compiled-model cache entry — network, rate
     environment, CSR ODE system and SSA model — serialized so a
     restarted daemon skips synthesis, canonicalization and both
     compilers for every warm entry;
   - simulation checkpoints: a network plus run parameters plus one
     engine's loop-top mid-run state, self-contained so [crnsim
     --resume] (or a client retrying a deadline-cancelled request) can
     continue the trajectory bitwise.

   Every decoder converts [Invalid_argument] from the rebuild
   constructors (network interning, [Deriv.of_raw] shape checks, ...)
   into [Binio.Corrupt]: a payload that passed the CRC but fails
   semantic validation is corrupt for the caller's purposes, and callers
   rely on a single exception to implement skip-and-count. *)

let model_kind = "mrsc-model"
let model_version = 1
let sim_kind = "mrsc-sim-checkpoint"
let sim_version = 1

exception Version_mismatch of { kind : string; found : int; expected : int }

let guarded f x =
  try f x with Invalid_argument msg -> raise (Binio.Corrupt msg)

(* ---------- rates and environments ---------- *)

let w_rate b (r : Crn.Rates.t) =
  (match r.Crn.Rates.category with
  | Crn.Rates.Fast -> Binio.w_u8 b 0
  | Crn.Rates.Slow -> Binio.w_u8 b 1);
  Binio.w_f64 b r.Crn.Rates.scale

let r_rate r : Crn.Rates.t =
  let category =
    match Binio.r_u8 r with
    | 0 -> Crn.Rates.Fast
    | 1 -> Crn.Rates.Slow
    | _ -> raise (Binio.Corrupt "bad rate category tag")
  in
  let scale = Binio.r_f64 r in
  { Crn.Rates.category; scale }

let w_env b (env : Crn.Rates.env) =
  Binio.w_f64 b env.Crn.Rates.k_fast;
  Binio.w_f64 b env.Crn.Rates.k_slow

let r_env r : Crn.Rates.env =
  let k_fast = Binio.r_f64 r in
  let k_slow = Binio.r_f64 r in
  { Crn.Rates.k_fast; k_slow }

(* ---------- networks ---------- *)

let w_side b (side : (int * int) list) =
  Binio.w_int b (List.length side);
  List.iter
    (fun (sp, co) ->
      Binio.w_int b sp;
      Binio.w_int b co)
    side

let r_side r =
  let n = Binio.r_int r in
  if n < 0 then raise (Binio.Corrupt "negative side length");
  List.init n (fun _ ->
      let sp = Binio.r_int r in
      let co = Binio.r_int r in
      (sp, co))

let w_reaction b (rx : Crn.Reaction.t) =
  w_side b rx.Crn.Reaction.reactants;
  w_side b rx.Crn.Reaction.products;
  w_rate b rx.Crn.Reaction.rate;
  Binio.w_option Binio.w_string b rx.Crn.Reaction.label

let r_reaction r =
  let reactants = r_side r in
  let products = r_side r in
  let rate = r_rate r in
  let label = Binio.r_option Binio.r_string r in
  guarded (fun () -> Crn.Reaction.make ?label ~reactants ~products rate) ()

let w_network b net =
  Binio.w_array Binio.w_string b (Crn.Network.species_names net);
  Binio.w_f64_array b (Crn.Network.initial_state net);
  Binio.w_array w_reaction b (Crn.Network.reactions net)

let r_network r =
  let names = Binio.r_array Binio.r_string r in
  let inits = Binio.r_f64_array r in
  if Array.length inits <> Array.length names then
    raise (Binio.Corrupt "network init/species length mismatch");
  let reactions = Binio.r_array r_reaction r in
  guarded
    (fun () ->
      let net = Crn.Network.create () in
      Array.iter (fun nm -> ignore (Crn.Network.species net nm)) names;
      if Crn.Network.n_species net <> Array.length names then
        raise (Binio.Corrupt "duplicate species names in snapshot");
      Array.iteri (fun i v -> Crn.Network.set_init net i v) inits;
      Array.iter (Crn.Network.add_reaction net) reactions;
      net)
    ()

(* ---------- compiled ODE system ---------- *)

let w_deriv b sys =
  let raw = Ode.Deriv.to_raw sys in
  Binio.w_int b raw.Ode.Deriv.raw_n;
  Binio.w_int b raw.Ode.Deriv.raw_nr;
  Binio.w_f64_array b raw.Ode.Deriv.raw_k;
  Binio.w_array w_rate b raw.Ode.Deriv.raw_rates;
  Binio.w_int_array b raw.Ode.Deriv.raw_r_off;
  Binio.w_int_array b raw.Ode.Deriv.raw_r_sp;
  Binio.w_int_array b raw.Ode.Deriv.raw_r_co;
  Binio.w_int_array b raw.Ode.Deriv.raw_s_off;
  Binio.w_int_array b raw.Ode.Deriv.raw_s_sp;
  Binio.w_f64_array b raw.Ode.Deriv.raw_s_co;
  Binio.w_int_array b raw.Ode.Deriv.raw_jac_rows;
  Binio.w_int_array b raw.Ode.Deriv.raw_jac_cols

let r_deriv r =
  let raw_n = Binio.r_int r in
  let raw_nr = Binio.r_int r in
  let raw_k = Binio.r_f64_array r in
  let raw_rates = Binio.r_array r_rate r in
  let raw_r_off = Binio.r_int_array r in
  let raw_r_sp = Binio.r_int_array r in
  let raw_r_co = Binio.r_int_array r in
  let raw_s_off = Binio.r_int_array r in
  let raw_s_sp = Binio.r_int_array r in
  let raw_s_co = Binio.r_f64_array r in
  let raw_jac_rows = Binio.r_int_array r in
  let raw_jac_cols = Binio.r_int_array r in
  guarded Ode.Deriv.of_raw
    {
      Ode.Deriv.raw_n;
      raw_nr;
      raw_k;
      raw_rates;
      raw_r_off;
      raw_r_sp;
      raw_r_co;
      raw_s_off;
      raw_s_sp;
      raw_s_co;
      raw_jac_rows;
      raw_jac_cols;
    }

(* ---------- compiled SSA model ---------- *)

let w_compiled_reaction b (rx : Ssa.Compiled.reaction) =
  Binio.w_f64 b rx.Ssa.Compiled.k;
  Binio.w_int_array b rx.Ssa.Compiled.reactant_species;
  Binio.w_int_array b rx.Ssa.Compiled.reactant_coeff;
  Binio.w_int_array b rx.Ssa.Compiled.delta_species;
  Binio.w_int_array b rx.Ssa.Compiled.delta

let r_compiled_reaction r : Ssa.Compiled.reaction =
  let k = Binio.r_f64 r in
  let reactant_species = Binio.r_int_array r in
  let reactant_coeff = Binio.r_int_array r in
  let delta_species = Binio.r_int_array r in
  let delta = Binio.r_int_array r in
  if
    Array.length reactant_species <> Array.length reactant_coeff
    || Array.length delta_species <> Array.length delta
  then raise (Binio.Corrupt "compiled reaction arrays disagree");
  { Ssa.Compiled.k; reactant_species; reactant_coeff; delta_species; delta }

let w_ssa_model b model =
  let reactions, deps = Ssa.Gillespie.model_parts model in
  Binio.w_int b (Ssa.Gillespie.model_n_species model);
  Binio.w_array w_compiled_reaction b reactions;
  Binio.w_array Binio.w_int_array b (Ssa.Dep_graph.to_arrays deps)

let r_ssa_model r =
  let n_species = Binio.r_int r in
  let reactions = Binio.r_array r_compiled_reaction r in
  let deps = Binio.r_array Binio.r_int_array r in
  guarded
    (fun () ->
      Ssa.Gillespie.model_of_parts ~n_species reactions
        (Ssa.Dep_graph.of_arrays deps))
    ()

(* ---------- model snapshots ---------- *)

type model_snapshot = {
  ms_key : string;
  ms_sources : string array;
  ms_fingerprint : string;
  ms_compile_ms : float;
  ms_net : Crn.Network.t;
  ms_env : Crn.Rates.env;
  ms_sys : Ode.Deriv.t;
  ms_ssa : Ssa.Gillespie.model;
}

let encode_model ms =
  let b = Binio.writer () in
  Binio.w_string b ms.ms_key;
  Binio.w_array Binio.w_string b ms.ms_sources;
  Binio.w_string b ms.ms_fingerprint;
  Binio.w_f64 b ms.ms_compile_ms;
  w_network b ms.ms_net;
  w_env b ms.ms_env;
  w_deriv b ms.ms_sys;
  w_ssa_model b ms.ms_ssa;
  Binio.encode_file ~kind:model_kind ~version:model_version (Binio.contents b)

let check_header ~kind ~version (f : Binio.file) =
  if f.Binio.kind <> kind then
    raise
      (Binio.Corrupt
         (Printf.sprintf "wrong snapshot kind %S (wanted %S)" f.Binio.kind kind));
  if f.Binio.version <> version then
    raise
      (Version_mismatch
         { kind; found = f.Binio.version; expected = version })

let decode_model s =
  let f = Binio.decode_file s in
  check_header ~kind:model_kind ~version:model_version f;
  let r = Binio.reader f.Binio.payload in
  let ms_key = Binio.r_string r in
  let ms_sources = Binio.r_array Binio.r_string r in
  let ms_fingerprint = Binio.r_string r in
  let ms_compile_ms = Binio.r_f64 r in
  let ms_net = r_network r in
  let ms_env = r_env r in
  let ms_sys = r_deriv r in
  let ms_ssa = r_ssa_model r in
  Binio.expect_end r;
  {
    ms_key;
    ms_sources;
    ms_fingerprint;
    ms_compile_ms;
    ms_net;
    ms_env;
    ms_sys;
    ms_ssa;
  }

(* ---------- traces and engine scratch ---------- *)

let w_trace b tr =
  Binio.w_array Binio.w_string b (Ode.Trace.names tr);
  let times = Ode.Trace.times tr in
  Binio.w_int b (Array.length times);
  Array.iteri
    (fun i t ->
      Binio.w_f64 b t;
      Binio.w_f64_array b (Ode.Trace.state_at_index tr i))
    times

let r_trace r =
  let names = Binio.r_array Binio.r_string r in
  let len = Binio.r_int r in
  if len < 0 then raise (Binio.Corrupt "negative trace length");
  let tr = guarded (fun () -> Ode.Trace.create ~names) () in
  for _ = 1 to len do
    let t = Binio.r_f64 r in
    let x = Binio.r_f64_array r in
    if Array.length x <> Array.length names then
      raise (Binio.Corrupt "trace state width mismatch");
    Ode.Trace.record tr t x
  done;
  tr

let w_engine_scratch b (st : Ssa.Prop_engine.state) =
  Binio.w_f64_array b st.Ssa.Prop_engine.s_props;
  Binio.w_f64_array b st.Ssa.Prop_engine.s_group_sum;
  Binio.w_f64_array b st.Ssa.Prop_engine.s_acc;
  Binio.w_int b st.Ssa.Prop_engine.s_since_refresh

let r_engine_scratch r : Ssa.Prop_engine.state =
  let s_props = Binio.r_f64_array r in
  let s_group_sum = Binio.r_f64_array r in
  let s_acc = Binio.r_f64_array r in
  let s_since_refresh = Binio.r_int r in
  { Ssa.Prop_engine.s_props; s_group_sum; s_acc; s_since_refresh }

(* ---------- per-engine checkpoints ---------- *)

let w_ssa_ck b (ck : Ssa.Gillespie.checkpoint) =
  Binio.w_int_array b ck.Ssa.Gillespie.ck_counts;
  Binio.w_f64 b ck.Ssa.Gillespie.ck_t;
  Binio.w_f64 b ck.Ssa.Gillespie.ck_next_sample;
  Binio.w_int b ck.Ssa.Gillespie.ck_n_events;
  Binio.w_i64 b ck.Ssa.Gillespie.ck_rng;
  w_engine_scratch b ck.Ssa.Gillespie.ck_engine;
  w_trace b ck.Ssa.Gillespie.ck_trace

let r_ssa_ck r : Ssa.Gillespie.checkpoint =
  let ck_counts = Binio.r_int_array r in
  let ck_t = Binio.r_f64 r in
  let ck_next_sample = Binio.r_f64 r in
  let ck_n_events = Binio.r_int r in
  let ck_rng = Binio.r_i64 r in
  let ck_engine = r_engine_scratch r in
  let ck_trace = r_trace r in
  {
    Ssa.Gillespie.ck_counts;
    ck_t;
    ck_next_sample;
    ck_n_events;
    ck_rng;
    ck_engine;
    ck_trace;
  }

let w_tau_ck b (ck : Ssa.Tau_leap.checkpoint) =
  Binio.w_int_array b ck.Ssa.Tau_leap.ck_counts;
  Binio.w_f64 b ck.Ssa.Tau_leap.ck_t;
  Binio.w_f64 b ck.Ssa.Tau_leap.ck_next_sample;
  Binio.w_int b ck.Ssa.Tau_leap.ck_n_leaps;
  Binio.w_int b ck.Ssa.Tau_leap.ck_n_exact;
  Binio.w_int b ck.Ssa.Tau_leap.ck_steps;
  Binio.w_i64 b ck.Ssa.Tau_leap.ck_rng;
  w_trace b ck.Ssa.Tau_leap.ck_trace

let r_tau_ck r : Ssa.Tau_leap.checkpoint =
  let ck_counts = Binio.r_int_array r in
  let ck_t = Binio.r_f64 r in
  let ck_next_sample = Binio.r_f64 r in
  let ck_n_leaps = Binio.r_int r in
  let ck_n_exact = Binio.r_int r in
  let ck_steps = Binio.r_int r in
  let ck_rng = Binio.r_i64 r in
  let ck_trace = r_trace r in
  {
    Ssa.Tau_leap.ck_counts;
    ck_t;
    ck_next_sample;
    ck_n_leaps;
    ck_n_exact;
    ck_steps;
    ck_rng;
    ck_trace;
  }

let w_hybrid_ck b (ck : Hybrid.Engine.checkpoint) =
  Binio.w_bool b ck.Hybrid.Engine.ck_mixed;
  Binio.w_int_array b ck.Hybrid.Engine.ck_counts;
  Binio.w_f64_array b ck.Hybrid.Engine.ck_x;
  Binio.w_f64 b ck.Hybrid.Engine.ck_t;
  Binio.w_f64 b ck.Hybrid.Engine.ck_next_sample;
  Binio.w_f64 b ck.Hybrid.Engine.ck_g_int;
  Binio.w_f64 b ck.Hybrid.Engine.ck_target;
  Binio.w_i64 b ck.Hybrid.Engine.ck_rng;
  w_engine_scratch b ck.Hybrid.Engine.ck_engine;
  Binio.w_bool_array b ck.Hybrid.Engine.ck_fast;
  Binio.w_bool_array b ck.Hybrid.Engine.ck_continuous;
  Binio.w_int b ck.Hybrid.Engine.ck_n_fast;
  Binio.w_int_array b ck.Hybrid.Engine.ck_slow;
  Binio.w_int b ck.Hybrid.Engine.ck_n_ssa;
  Binio.w_int b ck.Hybrid.Engine.ck_n_tau_leaps;
  Binio.w_int b ck.Hybrid.Engine.ck_n_tau_events;
  Binio.w_int b ck.Hybrid.Engine.ck_n_ode;
  Binio.w_int b ck.Hybrid.Engine.ck_n_repart;
  Binio.w_int b ck.Hybrid.Engine.ck_n_switch;
  Binio.w_int b ck.Hybrid.Engine.ck_n_rejected;
  Binio.w_int b ck.Hybrid.Engine.ck_peak_fast;
  Binio.w_int b ck.Hybrid.Engine.ck_loop_count;
  Binio.w_bool b ck.Hybrid.Engine.ck_first;
  w_trace b ck.Hybrid.Engine.ck_trace

let r_hybrid_ck r : Hybrid.Engine.checkpoint =
  let ck_mixed = Binio.r_bool r in
  let ck_counts = Binio.r_int_array r in
  let ck_x = Binio.r_f64_array r in
  let ck_t = Binio.r_f64 r in
  let ck_next_sample = Binio.r_f64 r in
  let ck_g_int = Binio.r_f64 r in
  let ck_target = Binio.r_f64 r in
  let ck_rng = Binio.r_i64 r in
  let ck_engine = r_engine_scratch r in
  let ck_fast = Binio.r_bool_array r in
  let ck_continuous = Binio.r_bool_array r in
  let ck_n_fast = Binio.r_int r in
  let ck_slow = Binio.r_int_array r in
  let ck_n_ssa = Binio.r_int r in
  let ck_n_tau_leaps = Binio.r_int r in
  let ck_n_tau_events = Binio.r_int r in
  let ck_n_ode = Binio.r_int r in
  let ck_n_repart = Binio.r_int r in
  let ck_n_switch = Binio.r_int r in
  let ck_n_rejected = Binio.r_int r in
  let ck_peak_fast = Binio.r_int r in
  let ck_loop_count = Binio.r_int r in
  let ck_first = Binio.r_bool r in
  let ck_trace = r_trace r in
  {
    Hybrid.Engine.ck_mixed;
    ck_counts;
    ck_x;
    ck_t;
    ck_next_sample;
    ck_g_int;
    ck_target;
    ck_rng;
    ck_engine;
    ck_fast;
    ck_continuous;
    ck_n_fast;
    ck_slow;
    ck_n_ssa;
    ck_n_tau_leaps;
    ck_n_tau_events;
    ck_n_ode;
    ck_n_repart;
    ck_n_switch;
    ck_n_rejected;
    ck_peak_fast;
    ck_loop_count;
    ck_first;
    ck_trace;
  }

let w_ode_ck b (ck : Ode.Driver.checkpoint) =
  (match ck.Ode.Driver.ck_method with
  | Ode.Driver.Ck_dopri5 c ->
      Binio.w_u8 b 0;
      Binio.w_f64 b c.Ode.Dopri5.ck_t;
      Binio.w_f64_array b c.Ode.Dopri5.ck_x;
      Binio.w_f64 b c.Ode.Dopri5.ck_h;
      Binio.w_f64_array b c.Ode.Dopri5.ck_k1;
      Binio.w_int b c.Ode.Dopri5.ck_steps;
      Binio.w_int b c.Ode.Dopri5.ck_rejected;
      Binio.w_int b c.Ode.Dopri5.ck_evals
  | Ode.Driver.Ck_rosenbrock c ->
      Binio.w_u8 b 1;
      Binio.w_f64 b c.Ode.Rosenbrock.ck_t;
      Binio.w_f64_array b c.Ode.Rosenbrock.ck_x;
      Binio.w_f64 b c.Ode.Rosenbrock.ck_h;
      Binio.w_int b c.Ode.Rosenbrock.ck_steps;
      Binio.w_int b c.Ode.Rosenbrock.ck_rejected;
      Binio.w_int b c.Ode.Rosenbrock.ck_factorizations;
      Binio.w_int b c.Ode.Rosenbrock.ck_jac_evals;
      Binio.w_int b c.Ode.Rosenbrock.ck_jac_reused;
      Binio.w_bool b c.Ode.Rosenbrock.ck_jac_fresh
  | Ode.Driver.Ck_fixed c ->
      Binio.w_u8 b 2;
      Binio.w_f64 b c.Ode.Fixed.ck_t;
      Binio.w_f64_array b c.Ode.Fixed.ck_x);
  Binio.w_int b ck.Ode.Driver.ck_countdown;
  w_trace b ck.Ode.Driver.ck_trace

let r_ode_ck r : Ode.Driver.checkpoint =
  let ck_method =
    match Binio.r_u8 r with
    | 0 ->
        let ck_t = Binio.r_f64 r in
        let ck_x = Binio.r_f64_array r in
        let ck_h = Binio.r_f64 r in
        let ck_k1 = Binio.r_f64_array r in
        let ck_steps = Binio.r_int r in
        let ck_rejected = Binio.r_int r in
        let ck_evals = Binio.r_int r in
        Ode.Driver.Ck_dopri5
          { Ode.Dopri5.ck_t; ck_x; ck_h; ck_k1; ck_steps; ck_rejected; ck_evals }
    | 1 ->
        let ck_t = Binio.r_f64 r in
        let ck_x = Binio.r_f64_array r in
        let ck_h = Binio.r_f64 r in
        let ck_steps = Binio.r_int r in
        let ck_rejected = Binio.r_int r in
        let ck_factorizations = Binio.r_int r in
        let ck_jac_evals = Binio.r_int r in
        let ck_jac_reused = Binio.r_int r in
        let ck_jac_fresh = Binio.r_bool r in
        Ode.Driver.Ck_rosenbrock
          {
            Ode.Rosenbrock.ck_t;
            ck_x;
            ck_h;
            ck_steps;
            ck_rejected;
            ck_factorizations;
            ck_jac_evals;
            ck_jac_reused;
            ck_jac_fresh;
          }
    | 2 ->
        let ck_t = Binio.r_f64 r in
        let ck_x = Binio.r_f64_array r in
        Ode.Driver.Ck_fixed { Ode.Fixed.ck_t; ck_x }
    | _ -> raise (Binio.Corrupt "bad integrator checkpoint tag")
  in
  let ck_countdown = Binio.r_int r in
  let ck_trace = r_trace r in
  { Ode.Driver.ck_method; ck_countdown; ck_trace }

(* ---------- self-contained simulation checkpoints ---------- *)

type engine_state =
  | Ode_ck of Ode.Driver.checkpoint
  | Ssa_ck of Ssa.Gillespie.checkpoint
  | Tau_ck of Ssa.Tau_leap.checkpoint
  | Hybrid_ck of Hybrid.Engine.checkpoint

type sim_checkpoint = {
  sc_net : Crn.Network.t;
  sc_env : Crn.Rates.env;
  sc_t1 : float;
  sc_seed : int64;
  sc_params : (string * float) array;
  sc_state : engine_state;
}

let engine_name = function
  | Ode_ck _ -> "ode"
  | Ssa_ck _ -> "ssa"
  | Tau_ck _ -> "tau"
  | Hybrid_ck _ -> "hybrid"

let encode_sim sc =
  let b = Binio.writer () in
  w_network b sc.sc_net;
  w_env b sc.sc_env;
  Binio.w_f64 b sc.sc_t1;
  Binio.w_i64 b sc.sc_seed;
  Binio.w_array
    (fun b (k, v) ->
      Binio.w_string b k;
      Binio.w_f64 b v)
    b sc.sc_params;
  (match sc.sc_state with
  | Ode_ck ck ->
      Binio.w_u8 b 0;
      w_ode_ck b ck
  | Ssa_ck ck ->
      Binio.w_u8 b 1;
      w_ssa_ck b ck
  | Tau_ck ck ->
      Binio.w_u8 b 2;
      w_tau_ck b ck
  | Hybrid_ck ck ->
      Binio.w_u8 b 3;
      w_hybrid_ck b ck);
  Binio.encode_file ~kind:sim_kind ~version:sim_version (Binio.contents b)

let decode_sim s =
  let f = Binio.decode_file s in
  check_header ~kind:sim_kind ~version:sim_version f;
  let r = Binio.reader f.Binio.payload in
  let sc_net = r_network r in
  let sc_env = r_env r in
  let sc_t1 = Binio.r_f64 r in
  let sc_seed = Binio.r_i64 r in
  let sc_params =
    Binio.r_array
      (fun r ->
        let k = Binio.r_string r in
        let v = Binio.r_f64 r in
        (k, v))
      r
  in
  let sc_state =
    match Binio.r_u8 r with
    | 0 -> Ode_ck (r_ode_ck r)
    | 1 -> Ssa_ck (r_ssa_ck r)
    | 2 -> Tau_ck (r_tau_ck r)
    | 3 -> Hybrid_ck (r_hybrid_ck r)
    | _ -> raise (Binio.Corrupt "bad engine tag")
  in
  Binio.expect_end r;
  { sc_net; sc_env; sc_t1; sc_seed; sc_params; sc_state }

let param sc name =
  Array.fold_left
    (fun acc (k, v) -> if k = name then Some v else acc)
    None sc.sc_params
