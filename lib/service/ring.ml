(* Consistent-hash ring for shard routing.

   Each shard id contributes [replicas] virtual points placed by the MD5
   digest of "shard:<id>#<replica>"; a key routes to the shard owning
   the first point clockwise of the key's own digest. MD5 is chosen not
   for strength but for determinism: unlike [Hashtbl.hash] it is
   specified byte-for-byte, so every process — gateway, bench driver,
   test — computes the identical placement for a key, which is what
   cache affinity across a fleet needs.

   The structure is immutable; [add]/[remove] build the membership a
   shard join or leave would produce. Because only the departing or
   arriving shard's points change, a key either keeps its shard or
   moves to/from exactly that shard — the minimal-movement property the
   tests pin down. *)

type t = {
  replicas : int;
  ids : int list;  (* sorted member ids *)
  points : (string * int) array;  (* (digest, shard id), sorted by digest *)
}

let point_digest sid replica =
  Digest.string (Printf.sprintf "shard:%d#%d" sid replica)

let key_digest key = Digest.string key

let build replicas ids =
  let ids = List.sort_uniq compare ids in
  let points =
    List.concat_map
      (fun sid -> List.init replicas (fun r -> (point_digest sid r, sid)))
      ids
    |> Array.of_list
  in
  Array.sort compare points;
  { replicas; ids; points }

let create ?(replicas = 128) ids =
  if replicas < 1 then invalid_arg "Ring.create: replicas must be >= 1";
  build replicas ids

let shards t = t.ids
let replicas t = t.replicas
let is_empty t = t.ids = []
let add t sid = build t.replicas (sid :: t.ids)
let remove t sid = build t.replicas (List.filter (( <> ) sid) t.ids)

(* index of the first point with digest >= d, wrapping to 0 past the
   last point (the ring property) *)
let successor t d =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < d then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then 0 else !lo

let route t key =
  if t.points = [||] then None
  else Some (snd t.points.(successor t (key_digest key)))

let route_order t key =
  if t.points = [||] then []
  else begin
    let n = Array.length t.points in
    let start = successor t (key_digest key) in
    let seen = Hashtbl.create 8 in
    let order = ref [] in
    (* walk clockwise collecting each shard at its first point *)
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < List.length t.ids do
      let sid = snd t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen sid) then begin
        Hashtbl.add seen sid ();
        order := sid :: !order
      end;
      incr i
    done;
    List.rev !order
  end
