(* The one error vocabulary shared by the daemon's wire responses and
   the command-line tools' exit paths: every failure a simulation
   request can hit maps to a stable machine code, a one-line human
   message, and (for the CLI) a documented exit code. *)

type t =
  | Bad_request of string
  | Parse_error of { line : int; msg : string }
  | Unknown_design of string
  | Max_events_exceeded of { max_events : int; t : float }
  | Max_steps_exceeded of { max_steps : int; t : float }
  | Solver_failure of { solver : string; msg : string }
  | Not_compilable of string
  | Deadline_exceeded of { budget_ms : float; checkpoint : string option }
  | Overloaded of { queue_bound : int }
  | Connection_limit of { max_conns : int }
  | Shard_failed of { shard : int }
  | Validation_failed of { issues : (string * string) list }
  | Internal of string

let code = function
  | Bad_request _ -> "bad_request"
  | Parse_error _ -> "parse_error"
  | Unknown_design _ -> "unknown_design"
  | Max_events_exceeded _ -> "max_events_exceeded"
  | Max_steps_exceeded _ -> "max_steps_exceeded"
  | Solver_failure _ -> "solver_failure"
  | Not_compilable _ -> "not_compilable"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Overloaded _ -> "overloaded"
  | Connection_limit _ -> "connection_limit"
  | Shard_failed _ -> "shard_failed"
  | Validation_failed _ -> "validation_failed"
  | Internal _ -> "internal"

let message = function
  | Bad_request msg -> msg
  | Parse_error { line; msg } ->
      Printf.sprintf "parse error at line %d: %s" line msg
  | Unknown_design name ->
      Printf.sprintf
        "%S is neither a file nor a built-in design (available: %s)" name
        (String.concat ", " (Designs.Catalog.names ()))
  | Max_events_exceeded { max_events; t } ->
      Printf.sprintf "max event count %d exceeded at t = %g" max_events t
  | Max_steps_exceeded { max_steps; t } ->
      Printf.sprintf "max step count %d exceeded at t = %g" max_steps t
  | Solver_failure { msg; _ } -> msg
  | Not_compilable msg -> Printf.sprintf "not DSD-compilable: %s" msg
  | Deadline_exceeded { budget_ms; checkpoint } -> (
      match checkpoint with
      | None -> Printf.sprintf "deadline of %g ms exceeded" budget_ms
      | Some token ->
          Printf.sprintf
            "deadline of %g ms exceeded (resumable; checkpoint %s)" budget_ms
            token)
  | Overloaded { queue_bound } ->
      Printf.sprintf "server overloaded (queue bound %d reached); retry later"
        queue_bound
  | Connection_limit { max_conns } ->
      Printf.sprintf
        "server connection limit (%d) reached; retry later" max_conns
  | Shard_failed { shard } ->
      Printf.sprintf
        "worker shard %d failed before completing the request; retry later"
        shard
  | Validation_failed { issues } -> (
      match issues with
      | [] -> "validation failed"
      | (c, detail) :: rest ->
          if rest = [] then Printf.sprintf "validation failed: %s (%s)" detail c
          else
            Printf.sprintf "validation failed with %d issues; first: %s (%s)"
              (List.length issues) detail c)
  | Internal msg -> Printf.sprintf "internal error: %s" msg

(* exit codes: 1 reserved for generic CLI failure, 2 for usage/input
   errors (cmdliner's own convention), then one code per runtime class
   so scripts can branch on how a simulation died *)
let exit_code = function
  | Bad_request _ | Parse_error _ | Unknown_design _ | Not_compilable _ -> 2
  | Max_events_exceeded _ | Max_steps_exceeded _ | Solver_failure _ -> 3
  | Deadline_exceeded _ -> 4
  | Overloaded _ | Connection_limit _ | Shard_failed _ -> 5
  | Validation_failed _ -> 6
  | Internal _ -> 70 (* EX_SOFTWARE *)

let of_exn = function
  | Crn.Parser.Parse_error (line, msg) -> Some (Parse_error { line; msg })
  | Ssa.Gillespie.Error (Ssa.Gillespie.Max_events_exceeded { max_events; t })
    ->
      Some (Max_events_exceeded { max_events; t })
  | Ssa.Tau_leap.Error (Ssa.Tau_leap.Max_steps_exceeded { max_steps; t }) ->
      Some (Max_steps_exceeded { max_steps; t })
  | Hybrid.Engine.Error (Hybrid.Engine.Max_events_exceeded { max_events; t })
    ->
      Some (Max_events_exceeded { max_events; t })
  | Ode.Solver_error.Error ({ solver; _ } as e) ->
      Some (Solver_failure { solver; msg = Ode.Solver_error.to_string e })
  | Dsd.Translate.Not_compilable msg -> Some (Not_compilable msg)
  | _ -> None

(* ---------------------------------------------------------------- wire *)

let to_json err =
  let fields =
    match err with
    | Parse_error { line; _ } -> [ ("line", Json.int line) ]
    | Max_events_exceeded { max_events; t } ->
        [ ("max_events", Json.int max_events); ("t", Json.num t) ]
    | Max_steps_exceeded { max_steps; t } ->
        [ ("max_steps", Json.int max_steps); ("t", Json.num t) ]
    | Solver_failure { solver; _ } -> [ ("solver", Json.str solver) ]
    | Deadline_exceeded { budget_ms; checkpoint } ->
        ("budget_ms", Json.num budget_ms)
        :: (match checkpoint with
           | None -> []
           | Some token -> [ ("checkpoint", Json.str token) ])
    | Overloaded { queue_bound } -> [ ("queue_bound", Json.int queue_bound) ]
    | Connection_limit { max_conns } -> [ ("max_conns", Json.int max_conns) ]
    | Shard_failed { shard } -> [ ("shard", Json.int shard) ]
    | Validation_failed { issues } ->
        [
          ( "issues",
            Json.List
              (List.map
                 (fun (c, detail) ->
                   Json.Obj
                     [ ("code", Json.str c); ("detail", Json.str detail) ])
                 issues) );
        ]
    | _ -> []
  in
  Json.Obj
    (("code", Json.str (code err))
    :: ("message", Json.str (message err))
    :: fields)

let of_json j =
  let geti key d = Option.bind (Json.member key j) Json.to_int |> Option.value ~default:d in
  let getf key d = Option.bind (Json.member key j) Json.to_float |> Option.value ~default:d in
  let gets key d = Option.bind (Json.member key j) Json.to_str |> Option.value ~default:d in
  let msg = gets "message" "" in
  match Option.bind (Json.member "code" j) Json.to_str with
  | Some "bad_request" -> Bad_request msg
  | Some "parse_error" ->
      (* message re-renders through [message]: strip nothing, keep raw *)
      Parse_error { line = geti "line" 0; msg }
  | Some "unknown_design" -> Unknown_design msg
  | Some "max_events_exceeded" ->
      Max_events_exceeded { max_events = geti "max_events" 0; t = getf "t" 0. }
  | Some "max_steps_exceeded" ->
      Max_steps_exceeded { max_steps = geti "max_steps" 0; t = getf "t" 0. }
  | Some "solver_failure" ->
      Solver_failure { solver = gets "solver" "?"; msg }
  | Some "not_compilable" -> Not_compilable msg
  | Some "deadline_exceeded" ->
      Deadline_exceeded
        {
          budget_ms = getf "budget_ms" 0.;
          checkpoint = Option.bind (Json.member "checkpoint" j) Json.to_str;
        }
  | Some "overloaded" -> Overloaded { queue_bound = geti "queue_bound" 0 }
  | Some "connection_limit" ->
      Connection_limit { max_conns = geti "max_conns" 0 }
  | Some "shard_failed" -> Shard_failed { shard = geti "shard" (-1) }
  | Some "validation_failed" ->
      let issues =
        match Option.bind (Json.member "issues" j) Json.to_list with
        | None -> []
        | Some items ->
            List.filter_map
              (fun it ->
                match
                  ( Option.bind (Json.member "code" it) Json.to_str,
                    Option.bind (Json.member "detail" it) Json.to_str )
                with
                | Some c, Some d -> Some (c, d)
                | _ -> None)
              items
      in
      Validation_failed { issues }
  | Some "internal" -> Internal msg
  | Some other -> Internal (Printf.sprintf "unknown error code %S: %s" other msg)
  | None -> Internal "malformed error object"
