(* Blocking client for the service protocol: one connection, one
   request in flight at a time, so responses pair with requests by
   order.

   Transient-failure policy: connects retry with bounded exponential
   backoff and full jitter, and a request is re-sent only when the
   failure provably preceded the first response byte — a connect error,
   a write-side EPIPE/ECONNRESET, or a clean close with zero response
   bytes ([Wire.read_frame] returning [None]). A response that started
   arriving and then died ([Framing_error "EOF inside frame ..."]) is
   never retried: the server acted once, and re-sending could act
   twice. *)

type t = {
  addr : Addr.t;
  retries : int;
  retry_budget_ms : float;
  rng : Numeric.Rng.t;  (* jitter stream; deterministic from retry_seed *)
  read_deadline_ms : float option;
  mutable fd : Unix.file_descr option;
  mutable closed : bool;
}

exception Timeout of float

exception Retries_exhausted of { attempts : int; last : exn }

(* zero response bytes arrived before the stream died — safe to retry *)
exception No_response

let apply_read_deadline fd = function
  | None -> ()
  | Some ms when ms > 0. ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO (ms /. 1000.)
  | Some _ -> ()

let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ENOTCONN
        | Unix.ETIMEDOUT | Unix.EPIPE ),
        _,
        _ ) ->
      true
  | No_response -> true
  | _ -> false

(* full jitter on an exponential ladder: uniform in [0, min(1s, 25ms *
   2^attempt)] — retries from a thundering herd spread instead of
   re-colliding *)
let backoff_ms rng attempt =
  Numeric.Rng.float rng *. Float.min 1000. (25. *. (2. ** float_of_int attempt))

let with_retries c f =
  let t0 = Unix.gettimeofday () in
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when transient e ->
        let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        if attempt >= c.retries || elapsed_ms >= c.retry_budget_ms then
          if c.retries = 0 then raise e
          else raise (Retries_exhausted { attempts = attempt + 1; last = e })
        else begin
          let delay =
            Float.min (backoff_ms c.rng attempt)
              (Float.max 0. (c.retry_budget_ms -. elapsed_ms))
          in
          Unix.sleepf (delay /. 1000.);
          go (attempt + 1)
        end
  in
  go 0

let connect_fd c =
  let fd = Addr.connect c.addr in
  apply_read_deadline fd c.read_deadline_ms;
  fd

let connect ?(retries = 0) ?(retry_budget_ms = 2_000.) ?(retry_seed = 1L)
    ?read_deadline_ms addr =
  let c =
    {
      addr;
      retries;
      retry_budget_ms;
      rng = Numeric.Rng.create retry_seed;
      read_deadline_ms;
      fd = None;
      closed = false;
    }
  in
  c.fd <- Some (with_retries c (fun () -> connect_fd c));
  c

let drop_fd c =
  (match c.fd with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
  c.fd <- None

let close c =
  if not c.closed then begin
    c.closed <- true;
    drop_fd c
  end

let call c req =
  if c.closed then failwith "Service.Client.call: connection closed";
  let payload = Json.to_string req in
  let attempt () =
    let fd =
      match c.fd with
      | Some fd -> fd
      | None ->
          let fd = connect_fd c in
          c.fd <- Some fd;
          fd
    in
    (try Wire.write_frame fd payload
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       (* the request never reached the server whole; reconnect *)
       drop_fd c;
       raise No_response);
    match Wire.read_frame fd with
    | Some resp -> resp
    | None ->
        (* clean close before any response byte: retryable *)
        drop_fd c;
        raise No_response
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        drop_fd c;
        raise No_response
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* SO_RCVTIMEO expired: the server accepted but never answered.
           Not retryable — the request may be running; duplicating it is
           exactly what the deadline exists to prevent. *)
        drop_fd c;
        raise (Timeout (Option.value ~default:0. c.read_deadline_ms))
    | exception e ->
        (* response bytes arrived, then the stream died: not retryable *)
        drop_fd c;
        raise e
  in
  match with_retries c attempt with
  | payload -> Json.of_string payload
  | exception No_response ->
      failwith "Service.Client.call: server closed the connection"

type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

let response_of_json j =
  let member k = Json.member k j in
  let error_obj = member "error" in
  {
    ok = Option.value ~default:false (Option.bind (member "ok") Json.to_bool);
    result = member "result";
    error = Option.map Error.of_json error_obj;
    error_message =
      Option.bind error_obj (fun e ->
          Option.bind (Json.member "message" e) Json.to_str);
    metrics = member "metrics";
  }

let request c req = response_of_json (call c req)
