(* Blocking client for the service protocol: one connection, one
   request in flight at a time, so responses pair with requests by
   order. Speaks either framing — length-prefixed wire frames to a
   daemon or gateway, HTTP/1.1 to a gateway's front door
   ({!Addr.Http}); the JSON payloads are identical.

   Transient-failure policy: connects retry with bounded exponential
   backoff and full jitter, and a request is re-sent only when the
   failure provably preceded the first response byte — a connect error,
   a write-side EPIPE/ECONNRESET, or a clean close with zero response
   bytes ([Wire.read_frame] returning [None]). A response that started
   arriving and then died ([Framing_error "EOF inside frame ..."]) is
   never retried: the server acted once, and re-sending could act
   twice.

   A complete structured [overloaded] or [shard_failed] response is
   also retryable-with-backoff: both codes promise the request's work
   was refused or lost, never completed, so a re-send cannot duplicate
   effects. When the retry budget runs out the last structured response
   is returned as-is (the caller sees the server's own error, having
   retried). *)

type transport =
  | Wire_t
  | Http_t of string (* Host header value *)

type t = {
  addr : Addr.t;
  transport : transport;
  retries : int;
  retry_budget_ms : float;
  rng : Numeric.Rng.t;  (* jitter stream; deterministic from retry_seed *)
  read_deadline_ms : float option;
  mutable fd : Unix.file_descr option;
  mutable ic : Http.ic option;  (* HTTP response channel, reused keep-alive *)
  mutable closed : bool;
}

exception Timeout of float

exception Retries_exhausted of { attempts : int; last : exn }

(* zero response bytes arrived before the stream died — safe to retry *)
exception No_response

(* a complete structured response whose error code promises no work was
   done (overloaded, shard_failed); internal to the retry loop *)
exception Retryable_response of Json.t

let apply_read_deadline fd = function
  | None -> ()
  | Some ms when ms > 0. ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO (ms /. 1000.)
  | Some _ -> ()

let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ENOTCONN
        | Unix.ETIMEDOUT | Unix.EPIPE ),
        _,
        _ ) ->
      true
  | No_response -> true
  | Retryable_response _ -> true
  | _ -> false

(* full jitter on an exponential ladder: uniform in [0, min(1s, 25ms *
   2^attempt)] — retries from a thundering herd spread instead of
   re-colliding *)
let backoff_ms rng attempt =
  Numeric.Rng.float rng *. Float.min 1000. (25. *. (2. ** float_of_int attempt))

let with_retries c f =
  let t0 = Unix.gettimeofday () in
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when transient e ->
        let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        if attempt >= c.retries || elapsed_ms >= c.retry_budget_ms then
          if c.retries = 0 then raise e
          else raise (Retries_exhausted { attempts = attempt + 1; last = e })
        else begin
          let delay =
            Float.min (backoff_ms c.rng attempt)
              (Float.max 0. (c.retry_budget_ms -. elapsed_ms))
          in
          Unix.sleepf (delay /. 1000.);
          go (attempt + 1)
        end
  in
  go 0

let connect_fd c =
  let fd = Addr.connect c.addr in
  apply_read_deadline fd c.read_deadline_ms;
  fd

let connect ?(retries = 0) ?(retry_budget_ms = 2_000.) ?(retry_seed = 1L)
    ?read_deadline_ms addr =
  let transport =
    match addr with
    | Addr.Http (host, port) -> Http_t (Printf.sprintf "%s:%d" host port)
    | Addr.Unix_sock _ | Addr.Tcp _ -> Wire_t
  in
  let c =
    {
      addr;
      transport;
      retries;
      retry_budget_ms;
      rng = Numeric.Rng.create retry_seed;
      read_deadline_ms;
      fd = None;
      ic = None;
      closed = false;
    }
  in
  c.fd <- Some (with_retries c (fun () -> connect_fd c));
  c

let drop_fd c =
  (match c.fd with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
  c.fd <- None;
  c.ic <- None

let close c =
  if not c.closed then begin
    c.closed <- true;
    drop_fd c
  end

let ensure_fd c =
  match c.fd with
  | Some fd -> fd
  | None ->
      let fd = connect_fd c in
      c.fd <- Some fd;
      fd

let ensure_ic c fd =
  match c.ic with
  | Some ic -> ic
  | None ->
      let ic = Http.ic_of_fd fd in
      c.ic <- Some ic;
      ic

(* does this complete response promise that no work happened? *)
let retryable_response j =
  match Json.member "ok" j with
  | Some (Json.Bool false) -> (
      match
        Option.bind (Json.member "error" j) (fun e ->
            Option.bind (Json.member "code" e) Json.to_str)
      with
      | Some ("overloaded" | "shard_failed") -> true
      | _ -> false)
  | _ -> false

let check_retryable c j =
  if c.retries > 0 && retryable_response j then raise (Retryable_response j);
  j

(* one attempt has either a complete response or a streaming tail the
   caller drains outside the retry loop *)
type begun =
  | Final of Json.t
  | Wire_stream of Unix.file_descr * Json.t  (* first (header) frame *)
  | Http_stream of Http.ic

let is_done j = Json.member "done" j <> None

(* ----------------------------------------------------- wire transport *)

let wire_begin c payload ~streaming =
  let fd = ensure_fd c in
  (try Wire.write_frame fd payload
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     (* the request never reached the server whole; reconnect *)
     drop_fd c;
     raise No_response);
  match Wire.read_frame fd with
  | Some resp ->
      let j = Json.of_string resp in
      if streaming && not (is_done j) then Wire_stream (fd, j)
      else Final (check_retryable c j)
  | None ->
      (* clean close before any response byte: retryable *)
      drop_fd c;
      raise No_response
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      drop_fd c;
      raise No_response
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO expired: the server accepted but never answered.
         Not retryable — the request may be running; duplicating it is
         exactly what the deadline exists to prevent. *)
      drop_fd c;
      raise (Timeout (Option.value ~default:0. c.read_deadline_ms))
  | exception e ->
      (* response bytes arrived, then the stream died: not retryable *)
      drop_fd c;
      raise e

(* ----------------------------------------------------- http transport *)

let http_begin c host payload =
  let fd = ensure_fd c in
  let ic = ensure_ic c fd in
  (try Http.write_request fd ~host ~path:"/api" payload
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     drop_fd c;
     raise No_response);
  let before = Http.total_read ic in
  let pre_first_byte () = Http.total_read ic = before in
  let fail_mid e =
    drop_fd c;
    raise e
  in
  match Http.read_status_headers ic with
  | exception End_of_file when pre_first_byte () ->
      (* keep-alive connection idled out server-side, or a clean close
         before any response byte: retryable *)
      drop_fd c;
      raise No_response
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) when pre_first_byte ()
    ->
      drop_fd c;
      raise No_response
  | exception End_of_file ->
      fail_mid (Wire.Framing_error "EOF inside HTTP response")
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      drop_fd c;
      raise (Timeout (Option.value ~default:0. c.read_deadline_ms))
  | _status, headers -> (
      (* the body is the response envelope whatever the status code *)
      if Http.chunked headers then Http_stream ic
      else
        match Http.read_body ic headers with
        | body -> Final (check_retryable c (Json.of_string body))
        | exception End_of_file ->
            fail_mid (Wire.Framing_error "EOF inside HTTP response")
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            drop_fd c;
            raise (Timeout (Option.value ~default:0. c.read_deadline_ms)))

(* ------------------------------------------------------------- calls *)

let begin_call c req ~streaming =
  if c.closed then failwith "Service.Client.call: connection closed";
  let payload = Json.to_string req in
  let attempt () =
    match c.transport with
    | Wire_t -> wire_begin c payload ~streaming
    | Http_t host -> http_begin c host payload
  in
  match with_retries c attempt with
  | begun -> begun
  | exception Retries_exhausted { last = Retryable_response j; _ } ->
      (* budget exhausted: surface the server's own structured reply *)
      Final j
  | exception No_response ->
      failwith "Service.Client.call: server closed the connection"

let call c req =
  match begin_call c req ~streaming:false with
  | Final j -> j
  | Wire_stream _ | Http_stream _ ->
      (* only the trace op streams, and only via call_stream *)
      drop_fd c;
      failwith "Service.Client.call: unexpected streaming response"

let call_stream c req ~on_frame =
  match begin_call c req ~streaming:true with
  | Final j -> j
  | Wire_stream (fd, first) ->
      on_frame first;
      let rec go () =
        match Wire.read_frame fd with
        | None ->
            drop_fd c;
            raise (Wire.Framing_error "EOF inside a streamed response")
        | Some payload ->
            let j = Json.of_string payload in
            if is_done j then j
            else begin
              on_frame j;
              go ()
            end
      in
      go ()
  | Http_stream ic ->
      let rec go () =
        match Http.read_chunk ic with
        | None ->
            drop_fd c;
            raise (Wire.Framing_error "stream ended without a final frame")
        | Some data ->
            let j = Json.of_string data in
            if is_done j then begin
              (* drain the terminal chunk so keep-alive stays in sync *)
              (match Http.read_chunk ic with Some _ | None -> ());
              j
            end
            else begin
              on_frame j;
              go ()
            end
      in
      go ()

type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

let response_of_json j =
  let member k = Json.member k j in
  let error_obj = member "error" in
  {
    ok = Option.value ~default:false (Option.bind (member "ok") Json.to_bool);
    result = member "result";
    error = Option.map Error.of_json error_obj;
    error_message =
      Option.bind error_obj (fun e ->
          Option.bind (Json.member "message" e) Json.to_str);
    metrics = member "metrics";
  }

let request c req = response_of_json (call c req)
