(* Blocking client for the service protocol: one connection, one
   request in flight at a time, so responses pair with requests by
   order. *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect addr = { fd = Addr.connect addr; closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with _ -> ()
  end

let call c req =
  if c.closed then failwith "Service.Client.call: connection closed";
  Wire.write_frame c.fd (Json.to_string req);
  match Wire.read_frame c.fd with
  | Some payload -> Json.of_string payload
  | None -> failwith "Service.Client.call: server closed the connection"

type response = {
  ok : bool;
  result : Json.t option;
  error : Error.t option;
  error_message : string option;
  metrics : Json.t option;
}

let response_of_json j =
  let member k = Json.member k j in
  let error_obj = member "error" in
  {
    ok = Option.value ~default:false (Option.bind (member "ok") Json.to_bool);
    result = member "result";
    error = Option.map Error.of_json error_obj;
    error_message =
      Option.bind error_obj (fun e ->
          Option.bind (Json.member "message" e) Json.to_str);
    metrics = member "metrics";
  }

let request c req = response_of_json (call c req)
