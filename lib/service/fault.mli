(** Deterministic fault injection for the wire layer.

    A {!schedule} pins faults to byte offsets in one direction of a
    stream; {!wrap} interposes it between a {!Wire.transport} and its
    user. Calls are clipped so no single read/write crosses a scheduled
    offset — every fault lands on exactly the byte it names, so a
    schedule derived from a seed ({!random_schedule}) replays
    identically, and any failure a randomized suite finds reproduces
    from its printed seed.

    This is a test/chaos tool: the daemon and client are exercised
    against it, they never depend on it. *)

type fault =
  | Short of { at : int; cap : int }
      (** the call that reaches offset [at] transfers at most [cap]
          bytes (a torn read/write); applies once *)
  | Corrupt of { at : int; xor : int }
      (** the byte at stream offset [at] is XORed with [xor] in flight *)
  | Reset of { at : int }
      (** once the stream position reaches [at], raise
          [Unix.ECONNRESET] *)
  | Stall of { at : int; ms : float }
      (** sleep [ms] before the transfer that starts at offset [at] *)

type schedule = fault list

val wrap :
  ?on_read:schedule -> ?on_write:schedule -> Wire.transport -> Wire.transport
(** Interpose the schedules (each sorted internally by offset) on a
    transport. Offsets count bytes transferred through the wrapped
    transport in that direction since [wrap]. *)

val chop : int -> Wire.transport -> Wire.transport
(** Cap {e every} read and write at [cap] bytes — the steady-state
    short-read/short-write stressor. Raises [Invalid_argument] if
    [cap < 1]. *)

val random_schedule : rng:Numeric.Rng.t -> len:int -> int -> schedule
(** [random_schedule ~rng ~len n]: [n] faults of uniformly random kind
    at offsets in [\[0, len)]. Same [rng] state, same schedule. *)

val lossless : schedule -> bool
(** [true] when the schedule only tears or delays ([Short]/[Stall]) —
    i.e. data still arrives intact and a correct peer must succeed;
    [false] when it corrupts or resets. *)

val describe : schedule -> string
(** Human-readable one-liner, e.g.
    ["corrupt@5(xor 0x40), reset@120"] — printed next to the seed so a
    failing randomized case is self-describing. *)
