(** Named generators for the standard designs, shared by the command-line
    tools, the service daemons and the benchmark harness.

    Clocked designs are defined once as chassis-parametric {e families}
    (synthesized against any {!Molclock.Clock_chassis.t}) and exposed as
    concrete entries per chassis: absence-chassis entries keep their
    historical names (["counter2"], ["lfsr3"], …), relaxation-chassis
    entries are prefixed ["rx-"] (["rx-counter2"], …).  Chassis-free
    designs (delay chains, combinational arithmetic) have a single
    entry. *)

type entry = {
  name : string;
  description : string;
  chassis : string option;
      (** chassis the entry is pinned to; [None] for chassis-free designs *)
  build : unit -> Crn.Network.t;
}

type family = {
  family_name : string;
  family_description : string;
  synth : Molclock.Clock_chassis.t -> Crn.Network.t;
}

val families : unit -> family list
(** Every chassis-parametric design family: ["clock"], ["counter2"],
    ["counter3"], ["gated-counter2"], ["lfsr3"], ["lfsr4"], ["ma2"],
    ["ma4"], ["iir"], ["biquad"], ["mult"], ["pow"], ["modseq4"]. *)

val find_family : string -> family option

val synth_on : family -> Molclock.Clock_chassis.t -> Crn.Network.t

val all : unit -> entry list
(** Every named design: the families instantiated on each registered
    chassis, the legacy ["clock4"] (absence, four phases), and the
    chassis-free ["chain1"], ["chain2"], ["chain4"], ["sub"],
    ["adder"]. *)

val find : string -> entry option

val names : unit -> string list

val build : string -> Crn.Network.t
(** Raises [Invalid_argument] with the available names for an unknown
    design. *)
