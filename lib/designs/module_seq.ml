(* Module sequencing (arXiv 2401.02061): an oscillator controls the
   occurrence order of N reaction modules.

   A conservative token ring T0..T(n-1) advances one stage per clock phase
   (each transfer is catalytic in that phase's species), so the token makes
   exactly one revolution per clock cycle and visits the stages in a fixed
   order.  Each stage k carries a one-shot payload module Ak -> Bk that is
   catalytic in the token, so the modules can only occur in stage order —
   the decoded completion order of B0..B(n-1) is the workload's logical
   output.  Everything outside the clock core is conservative (token ring,
   Ak + Bk per module), so the exact tier certifies the workload on either
   chassis. *)

type t = {
  design : Core.Sync_design.t;
  stages : int array;
  stage_names : string list;
  payload_in : int array;
  payload_out : int array;
  output_names : string list;
  token_mass : float;
  payload_mass : float;
}

let make ?(name = "seq") ?token_mass ?payload_mass d =
  let clock = d.Core.Sync_design.clock in
  let n = Molclock.Clock_chassis.n_phases clock in
  let token_mass =
    match token_mass with
    | Some m -> m
    | None -> d.Core.Sync_design.signal_mass
  in
  let payload_mass =
    match payload_mass with
    | Some m -> m
    | None -> d.Core.Sync_design.signal_mass
  in
  if token_mass <= 0. || payload_mass <= 0. then
    invalid_arg "Module_seq.make: masses must be positive";
  let b = Crn.Builder.scoped d.Core.Sync_design.builder name in
  let stages =
    Array.init n (fun k -> Crn.Builder.species b (Printf.sprintf "T%d" k))
  in
  Crn.Builder.init b stages.(0) token_mass;
  let payload_in =
    Array.init n (fun k -> Crn.Builder.species b (Printf.sprintf "A%d" k))
  in
  let payload_out =
    Array.init n (fun k -> Crn.Builder.species b (Printf.sprintf "B%d" k))
  in
  for k = 0 to n - 1 do
    let next = (k + 1) mod n in
    (* the transfer out of stage [k] is gated on phase [k+1], so the token
       dwells at stage [k] for the whole of phase [k] — in particular stage
       0 gets a full dwell even though phase 0 is already high at [t = 0],
       which is what makes module 0 complete first rather than last *)
    Core.Sync_design.phase_gated
      ~label:(Printf.sprintf "%s: T%d->T%d @P%d" name k next next)
      d
      ~phase:(Molclock.Clock_chassis.phase clock next)
      stages.(k)
      [ (stages.(next), 1) ];
    Crn.Builder.init b payload_in.(k) payload_mass;
    Crn.Builder.react
      ~label:(Printf.sprintf "%s: module %d payload" name k)
      d.Core.Sync_design.builder Crn.Rates.fast
      [ (payload_in.(k), 1); (stages.(k), 1) ]
      [ (payload_out.(k), 1); (stages.(k), 1) ]
  done;
  let names species =
    Array.to_list
      (Array.map (Crn.Builder.name d.Core.Sync_design.builder) species)
  in
  {
    design = d;
    stages;
    stage_names = names stages;
    payload_in;
    payload_out;
    output_names = names payload_out;
    token_mass;
    payload_mass;
  }

let n_stages m = Array.length m.stages

let stage_at trace m t =
  Analysis.Decode.onehot_at
    ~threshold:(m.token_mass /. 2.)
    trace m.stage_names t

let completion_order trace m =
  (* order in which the payload outputs first cross half mass *)
  let times = Ode.Trace.times trace in
  let first_crossing name =
    let v = Ode.Trace.column_named trace name in
    let n = Array.length v in
    let rec scan i =
      if i >= n then None
      else if v.(i) >= m.payload_mass /. 2. then Some times.(i)
      else scan (i + 1)
    in
    scan 0
  in
  m.output_names
  |> List.mapi (fun k name -> (k, first_crossing name))
  |> List.filter_map (fun (k, t) -> Option.map (fun t -> (t, k)) t)
  |> List.sort compare
  |> List.map snd

let completed trace m =
  List.length (completion_order trace m) = n_stages m
