type entry = {
  name : string;
  description : string;
  chassis : string option;
  build : unit -> Crn.Network.t;
}

(* ------------------------------------------------- chassis-free designs *)

let chain n () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let (_ : Async_mol.Delay_chain.t) =
    Async_mol.Delay_chain.make ~input:80. b ~n
  in
  net

let sub () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" and x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 9.;
  Crn.Builder.init b x2 4.;
  let (_ : int) = Ri_modules.Arith.sub b ~name:"sub" x1 x2 in
  net

let adder () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" and x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 30.;
  Crn.Builder.init b x2 12.;
  let (_ : int) = Ri_modules.Arith.add b ~name:"adder" x1 x2 in
  net

(* --------------------------------------- chassis-parametric families *)

type family = {
  family_name : string;
  family_description : string;
  synth : Molclock.Clock_chassis.t -> Crn.Network.t;
}

let family name description synth =
  { family_name = name; family_description = description; synth }

let on_design build chassis =
  let net = Crn.Network.create () in
  build (Core.Sync_design.make ~chassis net);
  net

let families () =
  [
    family "clock" "bare molecular clock at the chassis's default phase count"
      (fun chassis ->
        let net = Crn.Network.create () in
        let (_ : Molclock.Clock_chassis.instance) =
          Molclock.Clock_chassis.build chassis
            (Crn.Builder.scoped (Crn.Builder.on net) "clk")
        in
        net);
    family "counter2" "2-bit free-running counter"
      (on_design (fun d ->
           ignore (Core.Counter.free_running d ~bits:2 : Core.Counter.t)));
    family "counter3" "3-bit free-running counter"
      (on_design (fun d ->
           ignore (Core.Counter.free_running d ~bits:3 : Core.Counter.t)));
    family "gated-counter2" "2-bit counter with count/hold input"
      (on_design (fun d ->
           ignore (Core.Counter.gated d ~bits:2 : Core.Counter.t)));
    family "lfsr3" "3-bit maximal LFSR"
      (on_design (fun d ->
           ignore
             (Core.Lfsr.make d ~bits:3 ~taps:[ 1; 2 ] ~seed:1 : Core.Lfsr.t)));
    family "lfsr4" "4-bit maximal LFSR"
      (on_design (fun d ->
           ignore
             (Core.Lfsr.make d ~bits:4 ~taps:[ 2; 3 ] ~seed:1 : Core.Lfsr.t)));
    family "ma2" "2-tap moving-average filter"
      (on_design (fun d ->
           ignore (Core.Filter.moving_average d ~taps:2 : Core.Filter.t)));
    family "ma4" "4-tap moving-average filter"
      (on_design (fun d ->
           ignore (Core.Filter.moving_average d ~taps:4 : Core.Filter.t)));
    family "iir" "first-order IIR smoother"
      (on_design (fun d ->
           ignore (Core.Filter.iir_smoother d : Core.Filter.t)));
    family "biquad" "second-order (biquad) IIR filter via the SFG compiler"
      (on_design (fun d ->
           let g =
             Core.Sfg.biquad d ~b0:(1, 2) ~b1:(1, 4) ~b2:(1, 8) ~a1:(1, 4)
               ~a2:(1, 8)
           in
           ignore (Core.Sfg.compile g : Core.Sfg.compiled)));
    family "mult" "iterative multiplier (3 x 4)"
      (on_design (fun d ->
           ignore
             (Core.Iterative.multiplier d ~a:3. ~count:4 : Core.Iterative.t)));
    family "pow" "iterative 2^5"
      (on_design (fun d ->
           ignore (Core.Iterative.power2 d ~n:5 : Core.Iterative.t)));
    family "modseq4"
      "module sequencing: token ring gating the occurrence order of 4 \
       reaction modules (arXiv 2401.02061)"
      (on_design (fun d -> ignore (Module_seq.make d : Module_seq.t)));
  ]

let find_family name =
  List.find_opt (fun f -> f.family_name = name) (families ())

let synth_on f chassis = f.synth chassis

(* --------------------------------------------------- concrete entries *)

(* Absence-chassis entries keep their historical names (and golden
   certificates); relaxation-chassis entries are prefixed "rx-". *)

let legacy_clock n () =
  let net = Crn.Network.create () in
  let (_ : Molclock.Oscillator.t) =
    Molclock.Oscillator.create ~n_phases:n
      (Crn.Builder.scoped (Crn.Builder.on net) "clk")
  in
  net

let chassis_entry chassis f =
  let is_absence = chassis.Molclock.Clock_chassis.name = "absence" in
  let name =
    if is_absence then
      match f.family_name with
      | "clock" -> "clock3" (* absence default is three phases *)
      | n -> n
    else if f.family_name = "clock" then "rx-clock4"
    else "rx-" ^ f.family_name
  in
  let description =
    if is_absence then f.family_description
    else f.family_description ^ " (relaxation chassis)"
  in
  {
    name;
    description;
    chassis = Some chassis.Molclock.Clock_chassis.name;
    build = (fun () -> f.synth chassis);
  }

let all () =
  let clocked chassis = List.map (chassis_entry chassis) (families ()) in
  clocked Molclock.Clock_chassis.absence
  @ [
      {
        name = "clock4";
        description = "four-phase molecular clock";
        chassis = Some "absence";
        build = legacy_clock 4;
      };
    ]
  @ clocked Molclock.Clock_chassis.relaxation
  @ [
      {
        name = "chain1";
        description = "async delay chain, 1 element";
        chassis = None;
        build = chain 1;
      };
      {
        name = "chain2";
        description = "async delay chain, 2 elements";
        chassis = None;
        build = chain 2;
      };
      {
        name = "chain4";
        description = "async delay chain, 4 elements";
        chassis = None;
        build = chain 4;
      };
      {
        name = "sub";
        description = "combinational subtractor";
        chassis = None;
        build = sub;
      };
      {
        name = "adder";
        description = "combinational adder";
        chassis = None;
        build = adder;
      };
    ]

let find name = List.find_opt (fun e -> e.name = name) (all ())
let names () = List.map (fun e -> e.name) (all ())

let build name =
  match find name with
  | Some e -> e.build ()
  | None ->
      invalid_arg
        (Printf.sprintf "unknown design %S; available: %s" name
           (String.concat ", " (names ())))
