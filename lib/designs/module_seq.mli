(** Module-sequencing workload (arXiv 2401.02061): the clock controls the
    {e occurrence order} of N reaction modules.

    A conservative token ring advances one stage per clock phase (transfers
    catalytic in the phase species), so the token makes one revolution per
    clock cycle; stage [k]'s one-shot payload module [Ak -> Bk] is
    catalytic in the token and can therefore only fire in stage order.  The
    decoded completion order of the payload outputs is the workload's
    logical output sequence — [0, 1, …, n-1] on a correct clock, on any
    chassis. *)

type t = {
  design : Core.Sync_design.t;
  stages : int array;  (** token species, stage order *)
  stage_names : string list;
  payload_in : int array;
  payload_out : int array;
  output_names : string list;
  token_mass : float;
  payload_mass : float;
}

val make :
  ?name:string -> ?token_mass:float -> ?payload_mass:float ->
  Core.Sync_design.t -> t
(** Synthesize a ring with one stage per clock phase under scope [name]
    (default ["seq"]).  Masses default to the design's signal mass. *)

val n_stages : t -> int

val stage_at : Ode.Trace.t -> t -> float -> int option
(** Which stage holds the token at a time, if exactly one does. *)

val completion_order : Ode.Trace.t -> t -> int list
(** Module indices in the order their outputs first crossed half the
    payload mass.  Correct sequencing decodes as [[0; 1; …; n-1]]. *)

val completed : Ode.Trace.t -> t -> bool
(** Every payload module has fired. *)
