(** Relaxation-oscillator clock chassis.

    A symmetric pair of excitable fast rails ([Xa]/[Xb]) with slow recovery
    timers ([Za]/[Zb]) forms a two-timescale limit cycle in the style of the
    chemical relaxation oscillators of Shi, Gao and Dochain (arXiv
    2209.03033, 2302.14226): each rail ignites autocatalytically on the fast
    timescale once its timer has discharged, is capped by a trimolecular
    sink, and is quenched again when its timer — charged slowly while the
    rail is excited — crosses the fold of the fast nullcline.  Mutual
    annihilation keeps the rails in antiphase and pins the off rail at a
    hard zero.

    Phase readout is a conservative ring of species [P0..P(n-1)] whose
    transfers are thresholded (gated quadratically) on alternating rails,
    so each rail window advances the ring one step.  [n_phases] must be
    even.  The ring is catalytic on the core — it never perturbs the
    oscillation — and the sum of the phase species is exactly conserved,
    which is what the exact tier's phase non-overlap proof consumes. *)

type t

val create :
  ?n_phases:int ->
  ?mass:float ->
  ?core_mass:float ->
  ?ignition:float ->
  ?charge:float ->
  ?discharge:float ->
  Crn.Builder.t ->
  t
(** [create b] synthesizes the oscillator into [b]'s namespace.

    - [n_phases] (default 4): length of the phase ring; must be even and at
      least 4.
    - [mass] (default 100.): total conserved mass of the phase ring; all of
      it starts in [P0].
    - [core_mass] (default [mass]): scale of the rails and timers; rates are
      scaled so the dynamics are invariant under changes of [core_mass].
    - [ignition] (default 0.05): linear autocatalysis scale [a0], the
      ignition threshold of a rail in fractional timer units; must lie in
      (0, 0.2).
    - [charge] (default 1.0) / [discharge] (default 1.25): slow-timescale
      timer rates; the period of the core is set by these.  Sustained
      oscillation requires [charge /. discharge > ignition +. 0.55]
      (slow nullcline crossing the unstable branch), enforced with
      [Invalid_argument]. *)

val n_phases : t -> int
val mass : t -> float
val core_mass : t -> float

val phase : t -> int -> int
(** [phase c k] is the species id of phase [k mod n_phases]. *)

val phases : t -> int array
val phase_names : t -> string list

val rail : t -> int -> int
(** [rail c 0], [rail c 1]: species ids of the fast rails [Xa], [Xb]. *)

val timer : t -> int -> int
(** [timer c 0], [timer c 1]: species ids of the slow timers [Za], [Zb]. *)

val high_threshold : t -> float
(** Concentration above which a phase counts as "high" ([mass /. 2]). *)

val phase_name : int -> string

val builder : t -> Crn.Builder.t
(** The builder (hence namespace) the clock was synthesized into. *)
