let series trace clock k =
  let name =
    List.nth
      (Clock_chassis.phase_names clock)
      (k mod Clock_chassis.n_phases clock)
  in
  (Ode.Trace.times trace, Ode.Trace.column_named trace name)

let period trace clock =
  let times, values = series trace clock 0 in
  Analysis.Oscillation.period
    ~threshold:(Clock_chassis.high_threshold clock)
    ~times ~values ()

let is_sustained ?(min_cycles = 3) trace clock =
  let ok k =
    let times, values = series trace clock k in
    Analysis.Oscillation.is_sustained
      ~threshold:(Clock_chassis.high_threshold clock)
      ~min_cycles ~times ~values ()
  in
  let n = Clock_chassis.n_phases clock in
  List.for_all ok (List.init n (fun k -> k))

let overlap trace clock j k =
  let _, vj = series trace clock j in
  let _, vk = series trace clock k in
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let m = Float.min x vk.(i) in
      if m > !worst then worst := m)
    vj;
  !worst /. Clock_chassis.mass clock

let worst_adjacent_overlap trace clock =
  let n = Clock_chassis.n_phases clock in
  let worst = ref 0. in
  for j = 0 to n - 1 do
    for k = j + 1 to n - 1 do
      let dist = min (k - j) (n - (k - j)) in
      if dist >= 2 then worst := Float.max !worst (overlap trace clock j k)
    done
  done;
  !worst

let phase_high_at trace clock t =
  Analysis.Decode.onehot_at
    ~threshold:(Clock_chassis.high_threshold clock)
    trace
    (Clock_chassis.phase_names clock)
    t

(* ------------------------------------------- rate-perturbation sweep *)

type rate_point = {
  ratio : float;
  period : float option;
  sustained : bool;
  worst_overlap : float;
}

let rate_sweep ?jobs ?(chassis = Clock_chassis.absence) ?n_phases
    ?(mass = 100.) ?(t1 = 150.) ~ratios () =
  (* each point builds its own clock network, so workers share nothing *)
  Ode.Sweep.map ?jobs
    (fun ratio ->
      let net = Crn.Network.create () in
      let clock =
        Clock_chassis.build chassis ?n_phases ~mass
          (Crn.Builder.scoped (Crn.Builder.on net) "clk")
      in
      let env = Crn.Rates.env_with_ratio ratio in
      let trace =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5 ~t1
          net
      in
      {
        ratio;
        period = period trace clock;
        sustained = is_sustained trace clock;
        worst_overlap = worst_adjacent_overlap trace clock;
      })
    ratios

type chassis_point = { chassis : string; points : rate_point array }

let chassis_sweep ?jobs ?n_phases ?mass ?t1 ~ratios () =
  List.map
    (fun c ->
      {
        chassis = c.Clock_chassis.name;
        points = rate_sweep ?jobs ~chassis:c ?n_phases ?mass ?t1 ~ratios ();
      })
    Clock_chassis.all

let robustness_threshold ?(max_overlap = 0.05) points =
  (* smallest swept ratio from which every swept point >= it is sustained
     with acceptable overlap; None if even the largest ratio fails *)
  let sorted =
    List.sort (fun a b -> compare a.ratio b.ratio) (Array.to_list points)
  in
  let rec scan best = function
    | [] -> best
    | p :: rest ->
        if p.sustained && p.worst_overlap <= max_overlap then
          let best = match best with None -> Some p.ratio | s -> s in
          scan best rest
        else scan None rest
  in
  scan None sorted

let cycle_starts trace clock =
  let times, values = series trace clock 0 in
  Analysis.Oscillation.crossings
    ~threshold:(Clock_chassis.high_threshold clock)
    ~times ~values
  |> List.filter_map (fun c ->
         if c.Analysis.Oscillation.rising then Some c.Analysis.Oscillation.at
         else None)

let phase_windows trace clock k =
  let times, values = series trace clock k in
  let crossings =
    Analysis.Oscillation.crossings
      ~threshold:(Clock_chassis.high_threshold clock)
      ~times ~values
  in
  let rec pair = function
    | { Analysis.Oscillation.rising = true; at = a }
      :: ({ Analysis.Oscillation.rising = false; at = b } :: _ as rest) ->
        (a, b) :: pair rest
    | _ :: rest -> pair rest
    | [] -> []
  in
  pair crossings
