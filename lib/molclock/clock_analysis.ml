let series trace clock k =
  let name =
    List.nth (Oscillator.phase_names clock) (k mod Oscillator.n_phases clock)
  in
  (Ode.Trace.times trace, Ode.Trace.column_named trace name)

let period trace clock =
  let times, values = series trace clock 0 in
  Analysis.Oscillation.period ~threshold:(Oscillator.high_threshold clock)
    ~times ~values ()

let is_sustained ?(min_cycles = 3) trace clock =
  let ok k =
    let times, values = series trace clock k in
    Analysis.Oscillation.is_sustained
      ~threshold:(Oscillator.high_threshold clock)
      ~min_cycles ~times ~values ()
  in
  let n = Oscillator.n_phases clock in
  List.for_all ok (List.init n (fun k -> k))

let overlap trace clock j k =
  let _, vj = series trace clock j in
  let _, vk = series trace clock k in
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let m = Float.min x vk.(i) in
      if m > !worst then worst := m)
    vj;
  !worst /. Oscillator.mass clock

let worst_adjacent_overlap trace clock =
  let n = Oscillator.n_phases clock in
  let worst = ref 0. in
  for j = 0 to n - 1 do
    for k = j + 1 to n - 1 do
      let dist = min (k - j) (n - (k - j)) in
      if dist >= 2 then worst := Float.max !worst (overlap trace clock j k)
    done
  done;
  !worst

let phase_high_at trace clock t =
  Analysis.Decode.onehot_at
    ~threshold:(Oscillator.high_threshold clock)
    trace
    (Oscillator.phase_names clock)
    t

(* ------------------------------------------- rate-perturbation sweep *)

type rate_point = {
  ratio : float;
  period : float option;
  sustained : bool;
  worst_overlap : float;
}

let rate_sweep ?jobs ?(n_phases = 3) ?(mass = 100.) ?(t1 = 150.) ~ratios () =
  (* each point builds its own clock network, so workers share nothing *)
  Ode.Sweep.map ?jobs
    (fun ratio ->
      let net = Crn.Network.create () in
      let clock =
        Oscillator.create ~n_phases ~mass
          (Crn.Builder.scoped (Crn.Builder.on net) "clk")
      in
      let env = Crn.Rates.env_with_ratio ratio in
      let trace =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5 ~t1
          net
      in
      {
        ratio;
        period = period trace clock;
        sustained = is_sustained trace clock;
        worst_overlap = worst_adjacent_overlap trace clock;
      })
    ratios

let cycle_starts trace clock =
  let times, values = series trace clock 0 in
  Analysis.Oscillation.crossings
    ~threshold:(Oscillator.high_threshold clock)
    ~times ~values
  |> List.filter_map (fun c ->
         if c.Analysis.Oscillation.rising then Some c.Analysis.Oscillation.at
         else None)
