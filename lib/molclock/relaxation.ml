open Crn

(* Relaxation-oscillator clock chassis (Shi–Gao–Dochain line, arXiv
   2209.03033 / 2302.14226).

   The core is a symmetric pair of excitable rails Xa/Xb, each with a slow
   recovery timer Za/Zb.  Per rail, in fractional units x = X/C, z = Z/C
   (C = core mass):

     dx/dt = k_fast * x * (a0 + x - x^2 - z) + k_slow * seed
     dz/dt = k_slow * (charge * x - discharge * z)

   The fast subsystem is bistable for z between the ignition threshold
   z_ig = a0 (where the linear autocatalysis overcomes the timer-gated
   quench at small x) and the fold z_q = a0 + 1/4 of the nullcline
   z = a0 + x - x^2 (where the excited branch disappears).  That hysteresis
   window is what makes the oscillation *relaxation*-type: x jumps between
   a hard near-zero floor and the excited branch on the fast timescale,
   while z charges and discharges on the slow timescale and sets the
   period.  Mutual annihilation Xa + Xb -> 0 keeps the rails in antiphase
   and pins whichever rail is off at a hard zero, which is what the
   thresholded readout needs.  Sustained oscillation requires the slow
   nullcline z = (charge/discharge) x to cross the fast nullcline on its
   unstable branch (x < 1/2), i.e. charge/discharge > a0 + 1/2; [create]
   enforces that with margin.

   Readout: a conservative ring of phase species P0..P(n-1) whose
   transfers are gated quadratically on alternating rails (even steps on
   Xa, odd steps on Xb).  Each rail window advances the ring exactly one
   step, so the ring makes one revolution per n/2 core periods and the
   phase dwells are the (equal, slow-timescale) ignition spacings.  The
   ring never feeds back into the core: gates are catalytic.  Sum of the
   phase species is exactly conserved, so the exact tier proves phase
   non-overlap for this chassis with the same canonical witness as for
   the absence clock; only the core's limit-cycle existence is waived. *)

type t = {
  builder : Builder.t;
  phase_species : int array;
  rail_a : int;
  rail_b : int;
  timer_a : int;
  timer_b : int;
  mass : float;
  core_mass : float;
}

let phase_name k = Printf.sprintf "P%d" k
let rail_names = ("Xa", "Xb")
let timer_names = ("Za", "Zb")

let create ?(n_phases = 4) ?(mass = 100.) ?core_mass ?(ignition = 0.05)
    ?(charge = 1.0) ?(discharge = 1.25) b =
  if n_phases < 4 then
    invalid_arg "Relaxation.create: need at least 4 phases";
  if n_phases mod 2 <> 0 then
    invalid_arg
      "Relaxation.create: phase count must be even (ring gates alternate \
       between the two rails)";
  if mass <= 0. then invalid_arg "Relaxation.create: mass must be positive";
  let cmass = match core_mass with Some c -> c | None -> mass in
  if cmass <= 0. then
    invalid_arg "Relaxation.create: core mass must be positive";
  if ignition <= 0. || ignition >= 0.2 then
    invalid_arg "Relaxation.create: ignition must lie in (0, 0.2)";
  if charge <= 0. || discharge <= 0. then
    invalid_arg "Relaxation.create: charge and discharge must be positive";
  if charge /. discharge <= ignition +. 0.55 then
    invalid_arg
      "Relaxation.create: charge/discharge too small: the core would park \
       on the excited branch instead of oscillating";
  let xa = Builder.species b (fst rail_names)
  and xb = Builder.species b (snd rail_names) in
  let za = Builder.species b (fst timer_names)
  and zb = Builder.species b (snd timer_names) in
  let inv_c = 1. /. cmass in
  let rail tag x z =
    Builder.source
      ~label:(Printf.sprintf "rlx: seed %s" tag)
      b
      (Rates.slow_scaled (0.002 *. cmass))
      x;
    Builder.react
      ~label:(Printf.sprintf "rlx: ignite %s" tag)
      b
      (Rates.fast_scaled ignition)
      [ (x, 1) ]
      [ (x, 2) ];
    Builder.react
      ~label:(Printf.sprintf "rlx: boost %s" tag)
      b (Rates.fast_scaled inv_c)
      [ (x, 2) ]
      [ (x, 3) ];
    Builder.react
      ~label:(Printf.sprintf "rlx: cap %s" tag)
      b
      (Rates.fast_scaled (inv_c *. inv_c))
      [ (x, 3) ]
      [ (x, 2) ];
    Builder.react
      ~label:(Printf.sprintf "rlx: quench %s" tag)
      b (Rates.fast_scaled inv_c)
      [ (x, 1); (z, 1) ]
      [ (z, 1) ];
    Builder.react
      ~label:(Printf.sprintf "rlx: charge %s" tag)
      b
      (Rates.slow_scaled charge)
      [ (x, 1) ]
      [ (x, 1); (z, 1) ];
    Builder.decay
      ~label:(Printf.sprintf "rlx: discharge %s" tag)
      b
      (Rates.slow_scaled discharge)
      z
  in
  rail "a" xa za;
  rail "b" xb zb;
  Builder.react ~label:"rlx: annihilate" b (Rates.fast_scaled inv_c)
    [ (xa, 1); (xb, 1) ]
    [];
  let phase_species =
    Array.init n_phases (fun k -> Builder.species b (phase_name k))
  in
  Builder.init b phase_species.(0) mass;
  for k = 0 to n_phases - 1 do
    let next = (k + 1) mod n_phases in
    let gate = if k mod 2 = 0 then xa else xb in
    Builder.react
      ~label:(Printf.sprintf "rlx: P%d->P%d" k next)
      b
      (Rates.fast_scaled (0.2 *. inv_c *. inv_c))
      [ (phase_species.(k), 1); (gate, 2) ]
      [ (phase_species.(next), 1); (gate, 2) ]
  done;
  (* Start mid-cycle: rail B excited and timer A at its quench level, so
     phase 0 holds for one full dwell before rail A's first window moves
     the ring along. *)
  Builder.init b xb cmass;
  Builder.init b za ((ignition +. 0.25) *. cmass);
  {
    builder = b;
    phase_species;
    rail_a = xa;
    rail_b = xb;
    timer_a = za;
    timer_b = zb;
    mass;
    core_mass = cmass;
  }

let n_phases c = Array.length c.phase_species
let mass c = c.mass
let core_mass c = c.core_mass

let phase c k =
  c.phase_species.(((k mod n_phases c) + n_phases c) mod n_phases c)

let phases c = Array.copy c.phase_species

let phase_names c =
  Array.to_list (Array.map (Builder.name c.builder) c.phase_species)

let builder c = c.builder
let rail c side = if side = 0 then c.rail_a else c.rail_b
let timer c side = if side = 0 then c.timer_a else c.timer_b
let high_threshold c = c.mass /. 2.
