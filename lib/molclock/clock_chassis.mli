(** Pluggable clock chassis.

    A {e chassis} is a way of building a molecular clock: the
    absence-indicator oscillator of the source paper ({!Oscillator}) and the
    relaxation oscillator of the Shi–Gao–Dochain line ({!Relaxation}) are the
    two implementations.  Sequential designs are synthesized against a
    chassis-neutral {!instance} — phase species, phase count, mass,
    decoding threshold — so every design runs unchanged on every chassis,
    and the conformance battery re-proves them all on each. *)

type instance = {
  chassis : string;  (** name of the chassis that built this clock *)
  n_phases : int;
  mass : float;  (** total conserved mass of the phase species *)
  phase_species : int array;  (** in cycle order *)
  phase_names : string list;  (** fully scoped, in cycle order *)
  aux_species : (string * int) list;
      (** non-phase clock species (indicators, rails, timers) by scoped
          name — what a chassis-aware tool may want to plot or weigh *)
  high_threshold : float;  (** "phase is high" decoding threshold *)
  inject_fraction : float;
      (** fraction of a period past the cycle boundary at which inputs
          should be injected (inside the release window) *)
  sample_fraction : float;
      (** fraction of a period past the cycle boundary at which outputs
          are stable for sampling (inside/after the capture window) —
          chassis-specific because phase window geometry is *)
}

val n_phases : instance -> int
val mass : instance -> float
val chassis_name : instance -> string

val phase : instance -> int -> int
(** Species id of phase [k] (modulo [n_phases]). *)

val phases : instance -> int array
val phase_names : instance -> string list
val high_threshold : instance -> float
val aux_species : instance -> (string * int) list
val inject_fraction : instance -> float
val sample_fraction : instance -> float

val of_oscillator : Oscillator.t -> instance
val of_relaxation : Relaxation.t -> instance

(** {1 Registry} *)

type exact_obligation =
  | Full_conservation
      (** the exact tier must prove total clock mass conservation and phase
          non-overlap — no waiver *)
  | Ring_conservation_with_core_waiver of string
      (** the exact tier must prove phase-ring conservation and non-overlap;
          the core's limit-cycle existence is waived with this documented
          justification, and the certificate records the waiver *)

type t = {
  name : string;
  description : string;
  default_phases : int;
  valid_phases : int -> bool;
  exact_obligation : exact_obligation;
  build : ?n_phases:int -> ?mass:float -> Crn.Builder.t -> instance;
}

val absence : t
val relaxation : t

val all : t list
val names : unit -> string list
val find : string -> t option

val find_exn : string -> t
(** Raises [Invalid_argument] naming the known chassis. *)

val build : t -> ?n_phases:int -> ?mass:float -> Crn.Builder.t -> instance
(** Like the [build] field but validates the phase count against
    [valid_phases] first (raises [Invalid_argument]). *)
