(** Measurements of a simulated clock (wraps {!Analysis.Oscillation} with
    clock-specific conveniences).  All measurements are chassis-neutral:
    they consume a {!Clock_chassis.instance}, so the same analysis runs
    against the absence clock and the relaxation clock. *)

val period : Ode.Trace.t -> Clock_chassis.instance -> float option
(** Mean period of phase 0's oscillation, or [None] if not sustained. *)

val is_sustained :
  ?min_cycles:int -> Ode.Trace.t -> Clock_chassis.instance -> bool
(** Every phase species completes at least [min_cycles] (default 3)
    cycles. *)

val overlap : Ode.Trace.t -> Clock_chassis.instance -> int -> int -> float
(** [overlap trace clock j k]: the largest value of
    [min(phase_j, phase_k)] over the trace, as a fraction of the clock
    mass. Near zero means the two phases are never simultaneously high —
    the non-overlap guarantee the latching scheme relies on. *)

val worst_adjacent_overlap : Ode.Trace.t -> Clock_chassis.instance -> float
(** Maximum {!overlap} over all {e non-adjacent} phase pairs (adjacent
    phases legitimately overlap during their handover). For the three-phase
    clock this is vacuous, so pairs at distance >= 2 are measured — for
    [n = 3] that is again every pair, reported for distance-2 pairs
    (e.g. R vs B), which is what master–slave latching needs. *)

val phase_high_at :
  Ode.Trace.t -> Clock_chassis.instance -> float -> int option
(** Which phase (index) is high at a time, if exactly one is above the
    half-mass threshold. *)

val cycle_starts : Ode.Trace.t -> Clock_chassis.instance -> float list
(** Times at which phase 0 rises above the half-mass threshold — the
    boundaries the experiments use to sample sequential outputs "once per
    clock cycle". *)

val phase_windows :
  Ode.Trace.t -> Clock_chassis.instance -> int -> (float * float) list
(** Maximal intervals during which phase [k] is above the half-mass
    threshold, as (rising, falling) crossing pairs.  A window still open
    when the trace ends is dropped. *)

type rate_point = {
  ratio : float;  (** fast/slow separation simulated *)
  period : float option;  (** mean period, [None] if not sustained *)
  sustained : bool;  (** every phase completes >= 3 cycles *)
  worst_overlap : float;  (** {!worst_adjacent_overlap} at this ratio *)
}

val rate_sweep :
  ?jobs:int ->
  ?chassis:Clock_chassis.t ->
  ?n_phases:int ->
  ?mass:float ->
  ?t1:float ->
  ratios:float array ->
  unit ->
  rate_point array
(** The paper's rate-robustness evidence as a dense sweep: build a fresh
    clock on [chassis] (default {!Clock_chassis.absence}, with the
    chassis's default phase count unless [n_phases] is given) per ratio,
    simulate it deterministically to [t1] (default [150.]) under
    {!Crn.Rates.env_with_ratio}, and measure period, sustained
    oscillation, and worst non-adjacent phase overlap. Points are fanned
    over up to [jobs] domains via {!Ode.Sweep}; results are in [ratios]
    order and identical for every job count. *)

type chassis_point = { chassis : string; points : rate_point array }

val chassis_sweep :
  ?jobs:int ->
  ?n_phases:int ->
  ?mass:float ->
  ?t1:float ->
  ratios:float array ->
  unit ->
  chassis_point list
(** {!rate_sweep} run for every registered chassis (each at its own default
    phase count unless [n_phases] fits both) — the comparative
    frequency/robustness evidence behind [BENCH_clock.json]. *)

val robustness_threshold : ?max_overlap:float -> rate_point array -> float option
(** Smallest swept ratio from which every swept point at or above it is
    sustained with worst overlap at most [max_overlap] (default 0.05);
    [None] if even the largest swept ratio fails. *)
