open Crn

type instance = {
  chassis : string;
  n_phases : int;
  mass : float;
  phase_species : int array;
  phase_names : string list;
  aux_species : (string * int) list;
  high_threshold : float;
  inject_fraction : float;
  sample_fraction : float;
}

let n_phases i = i.n_phases
let mass i = i.mass
let chassis_name i = i.chassis

let phase i k =
  i.phase_species.(((k mod i.n_phases) + i.n_phases) mod i.n_phases)

let phases i = Array.copy i.phase_species
let phase_names i = i.phase_names
let high_threshold i = i.high_threshold
let aux_species i = i.aux_species
let inject_fraction i = i.inject_fraction
let sample_fraction i = i.sample_fraction

let of_oscillator osc =
  let b = Oscillator.builder osc in
  let n = Oscillator.n_phases osc in
  let aux =
    List.init n (fun k ->
        let s = Oscillator.indicator osc k in
        (Crn.Builder.name b s, s))
  in
  {
    chassis = "absence";
    n_phases = n;
    mass = Oscillator.mass osc;
    phase_species = Oscillator.phases osc;
    phase_names = Oscillator.phase_names osc;
    aux_species = aux;
    high_threshold = Oscillator.high_threshold osc;
    (* phases pre-accumulate, so the effective capture window of cycle n is
       ~ (n+0.25)p .. (n+0.5)p; inject just after the boundary, sample
       mid-hold *)
    inject_fraction = 0.05;
    sample_fraction = 0.55;
  }

let of_relaxation rlx =
  let b = Relaxation.builder rlx in
  let named s = (Crn.Builder.name b s, s) in
  {
    chassis = "relaxation";
    n_phases = Relaxation.n_phases rlx;
    mass = Relaxation.mass rlx;
    phase_species = Relaxation.phases rlx;
    phase_names = Relaxation.phase_names rlx;
    aux_species =
      [
        named (Relaxation.rail rlx 0);
        named (Relaxation.rail rlx 1);
        named (Relaxation.timer rlx 0);
        named (Relaxation.timer rlx 1);
      ];
    high_threshold = Relaxation.high_threshold rlx;
    (* ring advances on ignition edges, so dwells alternate long/short
       (even phases ride the discharge wait, odd ones the excited window):
       phase 2's window is ~ (n+0.5)p .. (n+0.8)p — sample a bit later
       than the absence clock to stay clear of its rising edge *)
    inject_fraction = 0.05;
    sample_fraction = 0.65;
  }

(* ----------------------------------------------------- chassis registry *)

type exact_obligation =
  | Full_conservation
  | Ring_conservation_with_core_waiver of string

type t = {
  name : string;
  description : string;
  default_phases : int;
  valid_phases : int -> bool;
  exact_obligation : exact_obligation;
  build : ?n_phases:int -> ?mass:float -> Builder.t -> instance;
}

let absence =
  {
    name = "absence";
    description =
      "absence-indicator oscillator (paper's R/G/B clock generalized): \
       slow phase transfers gated on predecessor-phase absence indicators \
       with fast dimer positive feedback; total clock mass (phases + 2x \
       dimers) is exactly conserved";
    default_phases = 3;
    valid_phases = (fun n -> n >= 3);
    exact_obligation = Full_conservation;
    build =
      (fun ?(n_phases = 3) ?(mass = 100.) b ->
        of_oscillator (Oscillator.create ~n_phases ~mass b));
  }

let relaxation_waiver =
  "limit-cycle existence of the excitable rail pair is established \
   numerically (comparative rate sweep), not symbolically; the exact tier \
   proves ring conservation and phase non-overlap only"

let relaxation =
  {
    name = "relaxation";
    description =
      "relaxation-oscillator chassis (arXiv 2209.03033/2302.14226): \
       antiphase excitable rails with slow recovery timers form a \
       two-timescale limit cycle; a conservative phase ring thresholded \
       on alternating rails reads the cycle out as clock phases";
    default_phases = 4;
    valid_phases = (fun n -> n >= 4 && n mod 2 = 0);
    exact_obligation = Ring_conservation_with_core_waiver relaxation_waiver;
    build =
      (fun ?(n_phases = 4) ?(mass = 100.) b ->
        of_relaxation (Relaxation.create ~n_phases ~mass b));
  }

let all = [ absence; relaxation ]
let names () = List.map (fun c -> c.name) all
let find name = List.find_opt (fun c -> c.name = name) all

let find_exn name =
  match find name with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Clock_chassis.find_exn: unknown chassis %S (have %s)"
           name
           (String.concat ", " (names ())))

let build c ?n_phases ?mass b =
  let n = match n_phases with Some n -> n | None -> c.default_phases in
  if not (c.valid_phases n) then
    invalid_arg
      (Printf.sprintf
         "Clock_chassis.build: %d phases invalid for chassis %s" n c.name);
  c.build ~n_phases:n ?mass b
