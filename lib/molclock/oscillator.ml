open Crn

type t = {
  builder : Builder.t;
  phase_species : int array;
  indicator_species : int array;
  mass : float;
}

let phase_name k = Printf.sprintf "P%d" k

let create ?(n_phases = 3) ?(mass = 100.) ?(feedback = true) b =
  if n_phases < 3 then
    invalid_arg "Oscillator.create: need at least 3 phases";
  if mass <= 0. then invalid_arg "Oscillator.create: mass must be positive";
  let phase_species =
    Array.init n_phases (fun k -> Builder.species b (phase_name k))
  in
  Builder.init b phase_species.(0) mass;
  let indicator_species =
    Array.init n_phases (fun k ->
        Ri_modules.Absence.indicator b
          ~name:(Printf.sprintf "i%d" k)
          ~watched:[ phase_species.(k) ])
  in
  for k = 0 to n_phases - 1 do
    let this = phase_species.(k) in
    let next = phase_species.((k + 1) mod n_phases) in
    let prev_indicator = indicator_species.((k + n_phases - 1) mod n_phases) in
    (* slow bootstrap transfer, gated on the predecessor phase's absence *)
    Ri_modules.Absence.gate
      ~label:(Printf.sprintf "clk: P%d->P%d" k ((k + 1) mod n_phases))
      b ~indicator:prev_indicator this next;
    if feedback then begin
      (* fast positive feedback: once the next phase accumulates, sweep the
         rest of this phase across *)
      let dimer = Builder.species b (Printf.sprintf "I%d" ((k + 1) mod n_phases)) in
      Builder.react
        ~label:(Printf.sprintf "clk: 2P%d -> dimer" ((k + 1) mod n_phases))
        b Rates.slow
        [ (next, 2) ]
        [ (dimer, 1) ];
      Builder.react
        ~label:(Printf.sprintf "clk: dimer -> 2P%d" ((k + 1) mod n_phases))
        b Rates.fast
        [ (dimer, 1) ]
        [ (next, 2) ];
      Builder.react
        ~label:(Printf.sprintf "clk: feedback P%d->P%d" k ((k + 1) mod n_phases))
        b Rates.fast
        [ (dimer, 1); (this, 1) ]
        [ (next, 3) ]
    end
  done;
  { builder = b; phase_species; indicator_species; mass }

let n_phases c = Array.length c.phase_species
let mass c = c.mass

let phase c k = c.phase_species.(((k mod n_phases c) + n_phases c) mod n_phases c)

let indicator c k =
  c.indicator_species.(((k mod n_phases c) + n_phases c) mod n_phases c)

let phases c = Array.copy c.phase_species

let phase_names c =
  Array.to_list (Array.map (Builder.name c.builder) c.phase_species)

let builder c = c.builder
let r c = phase c 0
let g c = phase c 1
let b c = phase c 2
let high_threshold c = c.mass /. 2.
