(** The molecular clock: a reaction system whose concentrations oscillate in
    sustained fashion through a cycle of color phases.

    Construction (three phases [R], [G], [B], generalized to [n >= 3]):

    - one {e absence indicator} per phase, generated zero-order slow and
      consumed fast by its phase species (see {!Ri_modules.Absence});
    - a slow {e gated transfer} from each phase to its successor, enabled by
      the absence of the {e predecessor} phase — so a transfer cannot begin
      until the previous transfer has fully completed:
      [b + R ->slow G], [r + G ->slow B], [g + B ->slow R];
    - fast {e positive feedback} that sweeps a transfer to completion once
      the successor phase has begun to accumulate:
      [2G <->(slow/fast) I_G] and [I_G + R ->fast 3G] (cyclically).

    The total clock mass is conserved and rotates around the cycle: each
    phase species is alternately high (approximately the full mass) and low
    (approximately zero) — the paper's clock signal. Correctness depends
    only on the fast/slow rate categories. *)

type t

val create :
  ?n_phases:int -> ?mass:float -> ?feedback:bool -> Crn.Builder.t -> t
(** Build a clock under the builder's scope. [n_phases >= 3] (default 3;
    raises [Invalid_argument] below 3 — with two phases the "predecessor
    absent" gate degenerates and the system deadlocks). [mass] (default
    [100.]) starts entirely in phase 0. [feedback:false] omits the
    positive-feedback reactions (an ablation: the clock still cycles but
    transfers are not crisp). *)

val n_phases : t -> int

val mass : t -> float

val phase : t -> int -> int
(** Species index of phase [k] (modulo [n_phases]). *)

val indicator : t -> int -> int
(** Species index of phase [k]'s absence indicator. *)

val phases : t -> int array
(** All phase species, in cycle order. *)

val phase_names : t -> string list
(** Fully qualified species names of the phases, in cycle order. *)

val r : t -> int
(** Phase 0 ([R] in the three-phase clock). *)

val g : t -> int
(** Phase 1. *)

val b : t -> int
(** Phase 2. *)

val high_threshold : t -> float
(** Decoding threshold for "this phase is high": half the clock mass. *)

val builder : t -> Crn.Builder.t
(** The builder (hence namespace) the clock was synthesized into. *)

val phase_name : int -> string
(** Unscoped name of phase [k] (["P0"], ["P1"], …). *)
