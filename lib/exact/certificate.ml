type severity = Error | Warning
type item = { code : string; severity : severity; detail : string }
type t = { title : string; items : item list; text : string }

let pp_weights species w =
  let terms = ref [] in
  Array.iteri
    (fun i wi ->
      if not (Z.is_zero wi) then
        let t =
          if Z.equal wi Z.one then species.(i)
          else Z.to_string wi ^ "*" ^ species.(i)
        in
        terms := t :: !terms)
    w;
  match List.rev !terms with
  | [] -> "0"
  | ts -> String.concat " + " ts

let pp_law species (l : Invariant.law) =
  pp_weights species l.weights ^ " = " ^ Q.to_string l.total

let make ~title ?(extra = []) (net : Net.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let issues = ref [] in
  let issue severity code detail = issues := { code; severity; detail } :: !issues in
  line "certificate: %s" title;
  line "species: %d" (Array.length net.species);
  line "reactions: %d" (Array.length net.reactions);
  let laws = Invariant.conservation_basis net in
  line "conservation laws: %d" (List.length laws);
  List.iteri
    (fun i l ->
      (* re-verify each basis vector against every reaction; a failure
         here means the elimination itself is wrong, so refuse loudly *)
      if not (Invariant.check_law net l.Invariant.weights) then
        invalid_arg "Certificate.make: elimination produced a non-law";
      line "  law %d: %s" (i + 1) (pp_law net.species l))
    laws;
  let clocks = Invariant.find_clocks net in
  line "clocks: %d" (List.length clocks);
  List.iter
    (fun (c : Invariant.clock) ->
      let p0 = net.species.(c.phases.(0)) and p2 = net.species.(c.phases.(2)) in
      (match Invariant.phase_non_overlap net c with
      | Invariant.Proved l ->
          let w0 = l.weights.(c.phases.(0)) in
          let threshold = Q.div l.total (Q.of_z (Z.mul (Z.of_int 2) w0)) in
          line "  clock %s: %d phases, non-overlap of %s and %s proved"
            c.prefix (Array.length c.phases) p0 p2;
          line "    witness: %s" (pp_law net.species l);
          line "    high threshold: %s" (Q.to_string threshold)
      | Invariant.Overlap_at_init (i, j) ->
          line "  clock %s: %d phases, OVERLAP at t=0" c.prefix
            (Array.length c.phases);
          issue Error "phase_overlap"
            (Printf.sprintf
               "clock %s: phases %s and %s are both positive at t=0" c.prefix
               net.species.(i) net.species.(j))
      | Invariant.Unconserved ->
          line "  clock %s: %d phases, UNCONSERVED" c.prefix
            (Array.length c.phases);
          issue Error "clock_unconserved"
            (Printf.sprintf
               "clock %s: no nonnegative conservation law bounds %s + %s"
               c.prefix p0 p2));
      match Invariant.relaxation_core net c with
      | Invariant.No_core -> ()
      | Invariant.Core_verified core ->
          line
            "    relaxation core: rails %s/%s, timers %s/%s — %d \
             structural obligations verified"
            net.species.(fst core.rails)
            net.species.(snd core.rails)
            net.species.(fst core.timers)
            net.species.(snd core.timers)
            core.obligations;
          issue Warning "limit_cycle_waiver"
            (Printf.sprintf
               "clock %s: relaxation-core limit-cycle existence is \
                established numerically (comparative rate sweep), not \
                symbolically; ring conservation and phase non-overlap \
                are proved above"
               c.prefix)
      | Invariant.Core_malformed missing ->
          line "    relaxation core: MALFORMED (%d obligations unmet)"
            (List.length missing);
          issue Error "relaxation_core_malformed"
            (Printf.sprintf
               "clock %s: missing or miscategorized core reactions: %s"
               c.prefix
               (String.concat ", " missing)))
    clocks;
  List.iter
    (fun (v : Invariant.ri_violation) ->
      match v.issue with
      | `Slow_annihilation ->
          issue Error "slow_annihilation"
            (Printf.sprintf "annihilation must be fast: %s" v.reaction)
      | `Fast_source ->
          issue Error "fast_source"
            (Printf.sprintf "zero-order source must be slow: %s" v.reaction)
      | `Slow_catalytic ->
          issue Error "slow_catalytic"
            (Printf.sprintf "catalytic consumption must be fast: %s" v.reaction))
    (Invariant.ri_check net);
  let items = List.rev !issues @ extra in
  line "issues: %d" (List.length items);
  List.iter
    (fun it ->
      line "  %s %s: %s"
        (match it.severity with Error -> "error" | Warning -> "warning")
        it.code it.detail)
    items;
  let clean = List.for_all (fun it -> it.severity <> Error) items in
  line "verdict: %s" (if clean then "certified" else "rejected");
  { title; items; text = Buffer.contents b }

let clean c = List.for_all (fun it -> it.severity <> Error) c.items

let errors c =
  List.filter_map
    (fun it -> if it.severity = Error then Some (it.code, it.detail) else None)
    c.items

let render c = c.text
