type rate = Fast | Slow

type reaction = {
  reactants : (int * int) list;
  products : (int * int) list;
  rate : rate;
  label : string option;
}

type t = {
  species : string array;
  init : Q.t array;
  reactions : reaction array;
}

let net_stoich r =
  let tbl = Hashtbl.create 8 in
  let bump sgn (s, c) =
    let cur = try Hashtbl.find tbl s with Not_found -> 0 in
    Hashtbl.replace tbl s (cur + (sgn * c))
  in
  List.iter (bump (-1)) r.reactants;
  List.iter (bump 1) r.products;
  Hashtbl.fold (fun s c acc -> if c = 0 then acc else (s, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stoich_transpose net =
  let n = Array.length net.species in
  Array.map
    (fun r ->
      let row = Array.make n 0 in
      List.iter (fun (s, c) -> row.(s) <- c) (net_stoich r);
      row)
    net.reactions

let side_to_string net side =
  match side with
  | [] -> "0"
  | _ ->
      String.concat " + "
        (List.map
           (fun (s, c) ->
             if c = 1 then net.species.(s)
             else string_of_int c ^ " " ^ net.species.(s))
           side)

let describe net r =
  match r.label with
  | Some l -> l
  | None ->
      side_to_string net r.reactants ^ " -> " ^ side_to_string net r.products
