(* Sign-magnitude bignums: little-endian limbs in base 2^15, so a limb
   product fits comfortably in a native int on every platform OCaml
   supports. Magnitudes are normalized (no high zero limbs) and a zero
   value is the empty magnitude with sign 0. *)

let limb_bits = 15
let base = 1 lsl limb_bits

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---------------------------------------------------------- magnitudes *)

let mnorm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mcmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let madd a b =
  let la = Array.length a and lb = Array.length b in
  let n = 1 + max la lb in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land (base - 1);
    carry := s lsr limb_bits
  done;
  mnorm r

(* a - b, requires a >= b *)
let msub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  mnorm r

let mmul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land (base - 1);
        carry := s lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    mnorm r
  end

let mbits a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let b = ref 0 in
    let v = ref top in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    ((n - 1) * limb_bits) + !b
  end

let mbit a i =
  let l = i / limb_bits in
  if l >= Array.length a then 0 else (a.(l) lsr (i mod limb_bits)) land 1

(* binary long division on magnitudes: simple, exact, and fast enough —
   the matrices this library eliminates are sparse stoichiometries whose
   Bareiss minors stay a handful of limbs wide *)
let mdivmod u v =
  if Array.length v = 0 then raise Division_by_zero;
  if mcmp u v < 0 then ([||], u)
  else begin
    let nb = mbits u in
    let q = Array.make ((nb + limb_bits - 1) / limb_bits) 0 in
    (* mutable remainder, sized for |v| + one spare limb *)
    let cap = Array.length u + 1 in
    let r = Array.make cap 0 in
    let rlen = ref 0 in
    (* r := 2r + bit, in place *)
    let shift_in bit =
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let s = (r.(i) lsl 1) lor !carry in
        r.(i) <- s land (base - 1);
        carry := s lsr limb_bits
      done;
      if !carry > 0 then begin
        r.(!rlen) <- !carry;
        incr rlen
      end
    in
    let rcmp_v () =
      let lv = Array.length v in
      if !rlen <> lv then compare !rlen lv
      else
        let rec go i =
          if i < 0 then 0
          else if r.(i) <> v.(i) then compare r.(i) v.(i)
          else go (i - 1)
        in
        go (!rlen - 1)
    in
    let rsub_v () =
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let d = r.(i) - (if i < Array.length v then v.(i) else 0) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      while !rlen > 0 && r.(!rlen - 1) = 0 do decr rlen done
    in
    for i = nb - 1 downto 0 do
      shift_in (mbit u i);
      if rcmp_v () >= 0 then begin
        rsub_v ();
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (mnorm q, mnorm (Array.sub r 0 !rlen))
  end

(* ------------------------------------------------------------- values *)

let make sign mag =
  let mag = mnorm mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* peel limbs on n's own side of zero: safe for min_int, where
       [abs n] would overflow *)
    let rec limbs n = if n = 0 then [] else abs (n mod base) :: limbs (n / base) in
    { sign; mag = Array.of_list (limbs n) }
  end

let one = of_int 1
let minus_one = of_int (-1)
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mcmp a.mag b.mag
  else mcmp b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { a with mag = madd a.mag b.mag }
  else
    match mcmp a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> { a with mag = msub a.mag b.mag }
    | _ -> { b with mag = msub b.mag a.mag }

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mmul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mdivmod a.mag b.mag in
  (make (a.sign * b.sign) qm, make a.sign rm)

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Z.divexact: inexact division";
  q

let rec gcd_mag a b = if is_zero b then a else gcd_mag b (snd (divmod a b))
let gcd a b = gcd_mag (abs a) (abs b)

let to_int_opt x =
  if mbits x.mag > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor x.mag.(i)
    done;
    Some (x.sign * !v)
  end

let to_float x =
  let v = ref 0. in
  for i = Array.length x.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !v

(* short division of a magnitude by a small positive int *)
let mdivmod_small a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mnorm q, !rem)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let m = ref x.mag in
    let chunks = ref [] in
    while Array.length !m > 0 do
      let q, r = mdivmod_small !m 10_000 in
      m := q;
      chunks := r :: !chunks
    done;
    (match !chunks with
    | [] -> ()
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Z.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Z.of_string: no digits";
  let acc = ref zero and ten = of_int 10 in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' ->
        acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | c -> invalid_arg (Printf.sprintf "Z.of_string: bad character %C" c)
  done;
  if negative then neg !acc else !acc
