(** Normalized exact rationals over {!Z}.

    Invariant: the denominator is strictly positive and coprime with the
    numerator; zero is [0/1]. Every finite float is a dyadic rational,
    so {!of_float} is exact — initial markings enter the proof path
    through it without any rounding. *)

type t = private { num : Z.t; den : Z.t }

val make : Z.t -> Z.t -> t
(** [make num den], normalized. Raises [Division_by_zero] on a zero
    denominator. *)

val zero : t
val one : t
val of_int : int -> t
val of_z : Z.t -> t

val of_float : float -> t
(** The exact rational value of a finite float (mantissa times a power
    of two — no rounding). Raises [Invalid_argument] on nan or
    infinity. *)

val to_float : t -> float
(** Nearest float — the conversion boundary out of the exact world. *)

val num : t -> Z.t
val den : t -> Z.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mul_z : Z.t -> t -> t

val to_string : t -> string
(** ["7"], ["-3/2"] — integers print without a denominator; this is the
    rendering certificates pin. *)
