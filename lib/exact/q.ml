type t = { num : Z.t; den : Z.t }

let make num den =
  if Z.is_zero den then raise Division_by_zero;
  if Z.is_zero num then { num = Z.zero; den = Z.one }
  else begin
    let num, den = if Z.sign den < 0 then (Z.neg num, Z.neg den) else (num, den) in
    let g = Z.gcd num den in
    if Z.equal g Z.one then { num; den }
    else { num = Z.divexact num g; den = Z.divexact den g }
  end

let zero = { num = Z.zero; den = Z.one }
let one = { num = Z.one; den = Z.one }
let of_z z = { num = z; den = Z.one }
let of_int n = of_z (Z.of_int n)
let num q = q.num
let den q = q.den
let sign q = Z.sign q.num
let is_zero q = Z.is_zero q.num
let is_integer q = Z.equal q.den Z.one
let neg q = { q with num = Z.neg q.num }
let abs q = { q with num = Z.abs q.num }

let add a b =
  make (Z.add (Z.mul a.num b.den) (Z.mul b.num a.den)) (Z.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Z.mul a.num b.num) (Z.mul a.den b.den)
let div a b = make (Z.mul a.num b.den) (Z.mul a.den b.num)
let mul_z z q = make (Z.mul z q.num) q.den

let compare a b = Z.compare (Z.mul a.num b.den) (Z.mul b.num a.den)
let equal a b = Z.equal a.num b.num && Z.equal a.den b.den

(* Exact float decomposition: frexp gives m * 2^e with m in [0.5, 1);
   53 doublings turn m into an integer mantissa, exactly. *)
let of_float x =
  match Float.classify_float x with
  | FP_zero -> zero
  | FP_nan | FP_infinite -> invalid_arg "Q.of_float: not finite"
  | FP_normal | FP_subnormal ->
      let m, e = Float.frexp x in
      let mantissa = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
      let exp = e - 53 in
      let two = Z.of_int 2 in
      let rec pow2 k acc = if k = 0 then acc else pow2 (k - 1) (Z.mul two acc) in
      if exp >= 0 then of_z (Z.mul (Z.of_int mantissa) (pow2 exp Z.one))
      else make (Z.of_int mantissa) (pow2 (-exp) Z.one)

let to_float q = Z.to_float q.num /. Z.to_float q.den

let to_string q =
  if is_integer q then Z.to_string q.num
  else Z.to_string q.num ^ "/" ^ Z.to_string q.den
