type law = { weights : Z.t array; total : Q.t }

let dot_init (net : Net.t) w =
  let t = ref Q.zero in
  Array.iteri
    (fun i wi ->
      if not (Z.is_zero wi) then t := Q.add !t (Q.mul_z wi net.init.(i)))
    w;
  !t

let conservation_basis (net : Net.t) =
  let m = Net.stoich_transpose net in
  let cols = Array.length net.species in
  Qmat.nullspace ~cols m
  |> List.map (fun w -> { weights = w; total = dot_init net w })

let check_law (net : Net.t) w =
  Array.for_all
    (fun r ->
      let d =
        List.fold_left
          (fun acc (s, c) -> Z.add acc (Z.mul w.(s) (Z.of_int c)))
          Z.zero (Net.net_stoich r)
      in
      Z.is_zero d)
    net.reactions

type clock = { prefix : string; phases : int array }

(* species named <prefix>P<k>: split off a trailing "P<digits>" suffix *)
let phase_name name =
  let n = String.length name in
  let rec digits i = if i < n && name.[i] >= '0' && name.[i] <= '9' then digits (i + 1) else i in
  let rec scan i =
    if i + 1 >= n then None
    else if name.[i] = 'P' && digits (i + 1) = n && i + 1 < n then
      Some (String.sub name 0 i, int_of_string (String.sub name (i + 1) (n - i - 1)))
    else scan (i + 1)
  in
  scan 0

let find_clocks (net : Net.t) =
  let tbl = Hashtbl.create 4 in
  Array.iteri
    (fun idx name ->
      match phase_name name with
      | Some (prefix, k) -> Hashtbl.replace tbl prefix ((k, idx) :: (try Hashtbl.find tbl prefix with Not_found -> []))
      | None -> ())
    net.species;
  Hashtbl.fold
    (fun prefix ks acc ->
      let ks = List.sort compare ks in
      (* require a contiguous run P0..P(n-1), n >= 3 *)
      let rec contiguous expect = function
        | [] -> expect >= 3
        | (k, _) :: rest -> k = expect && contiguous (expect + 1) rest
      in
      if contiguous 0 ks then
        { prefix; phases = Array.of_list (List.map snd ks) } :: acc
      else acc)
    tbl []
  |> List.sort (fun a b -> compare a.prefix b.prefix)

type overlap_verdict =
  | Proved of law
  | Overlap_at_init of int * int
  | Unconserved

(* weight 1 on every <prefix>P<k>, 2 on every <prefix>I<k> dimer, 0
   elsewhere: conserved by every reaction the oscillator builder emits
   (gate -P_k +P_{k+1}, dimerization -2P +I, undimerization -I +2P,
   feedback -I -P_this +3P_next) and untouched by phase-gated design
   reactions, which are only catalytic in the phases. *)
let canonical_witness (net : Net.t) prefix =
  let pl = String.length prefix in
  Array.map
    (fun name ->
      if
        String.length name > pl + 1
        && String.sub name 0 pl = prefix
        && (let rec all_digits i =
              i >= String.length name
              || (name.[i] >= '0' && name.[i] <= '9' && all_digits (i + 1))
            in
            all_digits (pl + 1))
      then
        match name.[pl] with
        | 'P' -> Z.one
        | 'I' -> Z.of_int 2
        | _ -> Z.zero
      else Z.zero)
    net.species

let phase_non_overlap (net : Net.t) clock =
  let p0 = clock.phases.(0) in
  let p2 = clock.phases.(2) in
  if Q.sign net.init.(p0) > 0 && Q.sign net.init.(p2) > 0 then
    Overlap_at_init (p0, p2)
  else begin
    let admits w =
      Array.for_all (fun z -> Z.sign z >= 0) w
      && Z.sign w.(p0) > 0
      && Z.equal w.(p0) w.(p2)
    in
    let w = canonical_witness net clock.prefix in
    if admits w && check_law net w then
      Proved { weights = w; total = dot_init net w }
    else
      (* leaky or nonstandard clock: any nonnegative law weighting the
         two phases equally still yields the bound P0 + P2 <= T / w *)
      match List.find_opt (fun l -> admits l.weights) (conservation_basis net) with
      | Some l -> Proved l
      | None -> Unconserved
  end

(* ------------------------------------------- relaxation-core recognition *)

type relaxation_core = {
  core_prefix : string;
  rails : int * int;
  timers : int * int;
  obligations : int;
}

type relaxation_verdict =
  | No_core
  | Core_verified of relaxation_core
  | Core_malformed of string list

(* The relaxation chassis names its excitable rail pair <prefix>Xa/Xb and
   its slow timers <prefix>Za/Zb.  When those species accompany a phase
   ring we discharge every *structural* obligation of the core — the
   exact reactions, stoichiometries and rate categories the oscillation
   argument rests on — symbolically.  The limit-cycle existence itself is
   an analytic fact about the kinetics and stays outside this tier; the
   certificate records that split as a waiver. *)
let relaxation_core (net : Net.t) (clock : clock) =
  let find name =
    let full = clock.prefix ^ name in
    let hit = ref None in
    Array.iteri (fun i s -> if s = full then hit := Some i) net.species;
    !hit
  in
  match (find "Xa", find "Xb", find "Za", find "Zb") with
  | None, None, None, None -> No_core
  | Some xa, Some xb, Some za, Some zb ->
      let norm l = List.sort compare l in
      let has reactants products rate =
        Array.exists
          (fun (r : Net.reaction) ->
            r.rate = rate
            && norm r.reactants = norm reactants
            && norm r.products = norm products)
          net.reactions
      in
      let missing = ref [] and count = ref 0 in
      let require name reactants products rate =
        incr count;
        if not (has reactants products rate) then
          missing :=
            Printf.sprintf "%s (%s)" name
              (match rate with Net.Fast -> "fast" | Net.Slow -> "slow")
            :: !missing
      in
      List.iter
        (fun (tag, x, z) ->
          require ("seed " ^ tag) [] [ (x, 1) ] Net.Slow;
          require ("ignite " ^ tag) [ (x, 1) ] [ (x, 2) ] Net.Fast;
          require ("boost " ^ tag) [ (x, 2) ] [ (x, 3) ] Net.Fast;
          require ("cap " ^ tag) [ (x, 3) ] [ (x, 2) ] Net.Fast;
          require ("quench " ^ tag) [ (x, 1); (z, 1) ] [ (z, 1) ] Net.Fast;
          require ("charge " ^ tag) [ (x, 1) ] [ (x, 1); (z, 1) ] Net.Slow;
          require ("discharge " ^ tag) [ (z, 1) ] [] Net.Slow)
        [ ("a", xa, za); ("b", xb, zb) ];
      require "annihilate" [ (xa, 1); (xb, 1) ] [] Net.Fast;
      if !missing = [] then
        Core_verified
          {
            core_prefix = clock.prefix;
            rails = (xa, xb);
            timers = (za, zb);
            obligations = !count;
          }
      else Core_malformed (List.rev !missing)
  | _ ->
      Core_malformed
        [ "rail/timer species set incomplete (need Xa, Xb, Za, Zb)" ]

type ri_violation = {
  reaction : string;
  issue : [ `Slow_annihilation | `Fast_source | `Slow_catalytic ];
}

let ri_check (net : Net.t) =
  let out = ref [] in
  Array.iter
    (fun (r : Net.reaction) ->
      let order = List.fold_left (fun a (_, c) -> a + c) 0 r.reactants in
      let flag issue = out := { reaction = Net.describe net r; issue } :: !out in
      match (r.reactants, r.products, r.rate) with
      | _ :: _, [], Slow when order = 2 -> flag `Slow_annihilation
      | [], _ :: _, Fast -> flag `Fast_source
      | [ (a, 1); (b, 1) ], [ (p, 1) ], Slow when p = a || p = b ->
          flag `Slow_catalytic
      | _ -> ())
    net.reactions;
  List.rev !out
