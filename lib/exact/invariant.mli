(** Exact invariant checking: conservation-law bases, symbolic phase
    non-overlap for master–slave clocks, and structural
    rate-independence discipline. Nothing in this module touches
    floating point — weights are integers, totals are rationals, and
    every verdict is a theorem about the network, not an approximation. *)

type law = {
  weights : Z.t array;  (** one integer weight per species, primitive *)
  total : Q.t;  (** exact conserved total [w . init] *)
}

val conservation_basis : Net.t -> law list
(** Primitive integer basis of the left null space of the stoichiometry
    matrix, each paired with its exact conserved total under the
    network's initial marking. Deterministic: vectors arrive in
    ascending free-column order from {!Qmat.nullspace}. *)

val check_law : Net.t -> Z.t array -> bool
(** [true] iff [w . net_stoich r = 0] for every reaction — the
    definition of a conservation law, checked directly rather than
    trusted from the elimination. *)

(** A detected master–slave clock: the common species prefix (e.g.
    ["clk."]) and the indices of its phase species [P0..P(n-1)]. *)
type clock = { prefix : string; phases : int array }

val find_clocks : Net.t -> clock list
(** Clocks are recognized by naming shape: a maximal run of species
    [<prefix>P0, <prefix>P1, ...] with at least three phases. *)

(** Result of the phase non-overlap proof for one clock. *)
type overlap_verdict =
  | Proved of law
      (** A nonnegative conservation law with equal positive weight on
          the capture and release phases and conserved total [T]: both
          phases can never simultaneously exceed the high threshold
          [T/2w]. The witness law is reported in the certificate. *)
  | Overlap_at_init of int * int
      (** Both named phase species start positive — the marking itself
          violates non-overlap, no law needed to refute it. *)
  | Unconserved
      (** No conservation law bounds the two phases jointly: the clock
          leaks mass and the master–slave discipline cannot be
          certified. *)

val phase_non_overlap : Net.t -> clock -> overlap_verdict
(** Discharges non-overlap of phase 0 (capture) and phase 2 (release)
    of a four-phase clock symbolically. The canonical witness — weight
    1 on every phase species, 2 on every dimer [I_k] — is tried first;
    if the network's reactions do not conserve it (e.g. a leaky
    feedback), the computed conservation basis is searched for any
    nonnegative law with equal positive weights on the two phases. *)

(** A recognized relaxation-oscillator core behind a phase ring: the
    excitable rail pair [<prefix>Xa]/[<prefix>Xb] and their slow timers
    [<prefix>Za]/[<prefix>Zb]. *)
type relaxation_core = {
  core_prefix : string;
  rails : int * int;  (** species indices of [Xa], [Xb] *)
  timers : int * int;  (** species indices of [Za], [Zb] *)
  obligations : int;  (** structural obligations discharged *)
}

type relaxation_verdict =
  | No_core
      (** the clock has no rail/timer species — an absence-indicator
          clock, fully covered by {!phase_non_overlap} *)
  | Core_verified of relaxation_core
      (** every structural obligation of the core holds: per-rail slow
          seed, fast ignition/boost/cap autocatalysis, fast quench by the
          timer, slow charge and discharge, and fast cross-rail
          annihilation.  Limit-cycle {e existence} remains a numeric fact
          (the comparative rate sweep) — certificates record it as a
          machine-checked waiver, not a theorem. *)
  | Core_malformed of string list
      (** rail/timer species are present but the listed obligations are
          missing or carry the wrong rate category — the oscillation
          argument does not apply and the design is rejected *)

val relaxation_core : Net.t -> clock -> relaxation_verdict
(** Recognize and structurally check a relaxation core under the clock's
    prefix.  Purely stoichiometric and categorical: no floating point. *)

type ri_violation = {
  reaction : string;  (** [Net.describe] of the offending reaction *)
  issue : [ `Slow_annihilation | `Fast_source | `Slow_catalytic ];
}

val ri_check : Net.t -> ri_violation list
(** Structural rate-independence discipline, as used throughout
    [lib/ri_modules]: annihilations (two reactants, no products) must be
    fast; zero-order sources (no reactants) must be slow; catalytic
    consumption [i + s -> s] must be fast. Violations break the
    rate-independent computation argument even when stoichiometry is
    fine. *)
