(* Fraction-free Bareiss elimination. The working matrix holds Z
   entries; after step k every entry is a (k+1)x(k+1) minor of the
   original matrix, and the division by the previous pivot in

     a[i][j] <- (p * a[i][j] - a[i][col] * a[row][j]) / p_prev

   is exact (Sylvester's determinant identity). Pivoting is first
   nonzero in row/column order — deterministic, and numerically
   irrelevant since nothing rounds. *)

type echelon = {
  m : Z.t array array;
  pivots : (int * int) list;  (* (row, col), in elimination order *)
  cols : int;
}

let eliminate ?cols a_int =
  let rows = Array.length a_int in
  let cols =
    match cols with
    | Some c -> c
    | None ->
        if rows = 0 then
          invalid_arg "Qmat: ~cols is required for a matrix with no rows"
        else Array.length a_int.(0)
  in
  let a = Array.map (fun r -> Array.map Z.of_int r) a_int in
  let pivots = ref [] in
  let row = ref 0 in
  let prev = ref Z.one in
  let col = ref 0 in
  while !row < rows && !col < cols do
    (* first row at or below [!row] with a nonzero entry in [!col] *)
    let pr = ref (-1) in
    (try
       for i = !row to rows - 1 do
         if not (Z.is_zero a.(i).(!col)) then begin
           pr := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pr >= 0 then begin
      if !pr <> !row then begin
        let t = a.(!pr) in
        a.(!pr) <- a.(!row);
        a.(!row) <- t
      end;
      let p = a.(!row).(!col) in
      for i = !row + 1 to rows - 1 do
        let ai = a.(i) and ar = a.(!row) in
        let aic = ai.(!col) in
        if not (Z.is_zero aic) || not (Z.equal p !prev) then
          for j = !col + 1 to cols - 1 do
            ai.(j) <-
              Z.divexact (Z.sub (Z.mul p ai.(j)) (Z.mul aic ar.(j))) !prev
          done;
        ai.(!col) <- Z.zero
      done;
      prev := p;
      pivots := (!row, !col) :: !pivots;
      incr row
    end;
    incr col
  done;
  { m = a; pivots = List.rev !pivots; cols }

let rank a = List.length (eliminate ~cols:(if Array.length a = 0 then 0 else Array.length a.(0)) a).pivots

(* scale a rational vector to the primitive integer vector spanning the
   same line: clear denominators, divide by the gcd of the entries, and
   point the first nonzero entry up *)
let primitive (x : Q.t array) =
  let l =
    Array.fold_left
      (fun acc q ->
        let d = Q.den q in
        Z.divexact (Z.mul acc d) (Z.gcd acc d))
      Z.one x
  in
  let v = Array.map (fun q -> Z.divexact (Z.mul (Q.num q) l) (Q.den q)) x in
  let g = Array.fold_left (fun acc z -> Z.gcd acc z) Z.zero v in
  let v = if Z.is_zero g then v else Array.map (fun z -> Z.divexact z g) v in
  let flip =
    let rec first i =
      if i >= Array.length v then 1
      else if Z.is_zero v.(i) then first (i + 1)
      else Z.sign v.(i)
    in
    first 0
  in
  if flip < 0 then Array.map Z.neg v else v

let nullspace ?cols a_int =
  let e = eliminate ?cols a_int in
  let pivot_cols = List.map snd e.pivots in
  let is_pivot c = List.mem c pivot_cols in
  let free = ref [] in
  for c = e.cols - 1 downto 0 do
    if not (is_pivot c) then free := c :: !free
  done;
  List.map
    (fun f ->
      let x = Array.make e.cols Q.zero in
      x.(f) <- Q.one;
      (* pivot variables bottom-up; free variables other than [f] stay 0 *)
      List.iter
        (fun (pr, pc) ->
          let s = ref Q.zero in
          for j = pc + 1 to e.cols - 1 do
            if not (Q.is_zero x.(j)) then
              s := Q.add !s (Q.mul (Q.of_z e.m.(pr).(j)) x.(j))
          done;
          x.(pc) <- Q.neg (Q.div !s (Q.of_z e.m.(pr).(pc))))
        (List.rev e.pivots);
      primitive x)
    !free
