(** Exact linear algebra for integer matrices: fraction-free Bareiss
    elimination and null-space extraction over the rationals.

    The stoichiometry matrix of a reaction network has (small) integer
    entries, so its conservation laws — the left null space — can be
    computed without a single rounding error. Bareiss's one-step
    fraction-free elimination keeps every intermediate entry an integer
    (each is a minor of the original matrix, and the division by the
    previous pivot is exact by Sylvester's identity); back-substitution
    then runs over {!Q} and each basis vector is scaled to a primitive
    integer vector. The result is deterministic: pivots are chosen in
    row/column order (no magnitude comparisons — exact arithmetic has
    nothing to fear from small pivots), free columns generate basis
    vectors in ascending column order, and each vector is normalized to
    coprime entries with its first nonzero entry positive. *)

val rank : int array array -> int
(** Exact rank. Rows may be ragged-free (all the same length); an empty
    matrix has rank 0. *)

val nullspace : ?cols:int -> int array array -> Z.t array list
(** Basis of [{x | A x = 0}] as primitive integer vectors (coprime
    entries, first nonzero positive), in ascending free-column order.
    [cols] must be given when the matrix has no rows (the dimension is
    otherwise unrecoverable); with zero rows the basis is the identity.
    An empty list means the kernel is trivial. *)
