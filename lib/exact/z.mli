(** Hand-rolled arbitrary-precision integers.

    The exact verification tier must not depend on zarith (the repo's
    hand-rolled-codec ethos, and the container has no new opam
    packages), so this is a classic sign-magnitude bignum: little-endian
    limbs in base 2^15, schoolbook multiplication, binary long division.
    Stoichiometric coefficients are tiny; the only numbers that grow are
    the Bareiss minors during elimination, and those stay modest on the
    sparse matrices chemistry produces. Every operation is exact —
    nothing in this module touches floating point. *)

type t

val zero : t
val one : t
val minus_one : t
val of_int : int -> t
val to_int_opt : t -> int option
(** [None] when the value does not fit in a native [int]. *)

val sign : t -> int
(** -1, 0 or 1. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a] (C semantics). Raises
    [Division_by_zero] on zero [b]. *)

val divexact : t -> t -> t
(** Division known to be exact; raises [Invalid_argument] if a nonzero
    remainder shows up (which would mean a broken elimination). *)

val gcd : t -> t -> t
(** Nonnegative; [gcd 0 0 = 0]. *)

val to_string : t -> string
(** Decimal, ["-"]-prefixed when negative. *)

val of_string : string -> t
(** Decimal with optional leading [-]; raises [Invalid_argument] on
    anything else. *)

val to_float : t -> float
(** Nearest float — the one conversion boundary; never used inside a
    proof. *)
