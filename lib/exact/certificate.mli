(** Verification certificates: the stable, deterministic text record of
    what the exact tier proved (or refuted) about a network.

    A certificate is built from a {!Net.t} plus any extra issues the
    caller found with its own analyses (e.g. structural lint from
    [Crn.Validate]); the exact tier contributes conservation laws,
    clock phase non-overlap verdicts, and rate-independence discipline
    violations. The rendered text is byte-deterministic for a given
    network — goldens pin it, and the daemon serves it verbatim. *)

type severity = Error | Warning

type item = {
  code : string;  (** stable machine code, e.g. ["phase_overlap"] *)
  severity : severity;
  detail : string;
}

type t = {
  title : string;
  items : item list;  (** deterministic order: exact-tier issues first *)
  text : string;  (** full rendered certificate *)
}

val make : title:string -> ?extra:item list -> Net.t -> t
(** Runs the exact analyses and renders the certificate. [extra] items
    (caller-side lint) are appended after the exact tier's own issues,
    in the order given. *)

val clean : t -> bool
(** No [Error]-severity items; warnings do not block certification. *)

val errors : t -> (string * string) list
(** [(code, detail)] for each [Error] item, in certificate order — the
    structured payload a rejecting daemon returns. *)

val render : t -> string
(** The certificate text (same as the [text] field). *)
