(** The exact tier's view of a reaction network.

    [lib/exact] sits below [lib/crn] (the float conservation API is a
    thin wrapper over this kernel), so it cannot see {!Crn.Network};
    instead verification runs on this plain-data view, which
    [Crn.Exact_view.of_network] produces. Initial markings arrive as
    exact rationals — the caller converts each float marking with
    {!Q.of_float}, which is exact, so no floating point survives into
    the proof path. *)

type rate = Fast | Slow

type reaction = {
  reactants : (int * int) list;  (** (species, coefficient > 0), sorted *)
  products : (int * int) list;
  rate : rate;
  label : string option;
}

type t = {
  species : string array;
  init : Q.t array;  (** exact initial marking, one per species *)
  reactions : reaction array;
}

val net_stoich : reaction -> (int * int) list
(** Products minus reactants, zero entries omitted, ascending species. *)

val stoich_transpose : t -> int array array
(** Reactions-by-species integer matrix of net stoichiometries: the
    matrix whose null space is the network's space of conservation
    laws. *)

val describe : t -> reaction -> string
(** The reaction's label if it has one, otherwise the reaction rendered
    as [reactants -> products] with species names. *)
