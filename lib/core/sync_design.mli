(** The synchronous design discipline — phase conventions shared by every
    sequential construct in this library.

    A design uses a {b four-phase} molecular clock built on a pluggable
    {!Molclock.Clock_chassis} (default: the paper's absence-indicator
    oscillator; alternatively the relaxation-oscillator chassis) with
    [n_phases = 4]. Distance-2 phases are never simultaneously high
    (the successor-transfer gating guarantees it), which yields the
    two-phase, non-overlapping latching scheme:

    - {b phase 0 — release}: registers release their stored quantities into
      the combinational network; cycle-scoped outputs from the previous
      cycle are cleared;
    - {b phase 1 — compute/settle}: a guard phase; fast combinational
      reactions (including annihilations) run to completion;
    - {b phase 2 — capture}: staged results are transferred into register
      stores; leftover odd units and spent inputs are cleared;
    - {b phase 3 — hold}: a guard phase; restore-style housekeeping runs
      here, safely separated from both release and capture.

    All phase-gated reactions are {e catalytic} in the phase species
    ([X + P ->fast Y + P]), so the signal path never perturbs the clock.
    External inputs for cycle [n] must be injected between that cycle's
    release and capture — {!injection_time} computes a safe moment. *)

type t = {
  builder : Crn.Builder.t;  (** root builder of the design's network *)
  clock : Molclock.Clock_chassis.instance;
  signal_mass : float;  (** full-scale quantity representing logical 1 *)
}

val make :
  ?chassis:Molclock.Clock_chassis.t ->
  ?clock_mass:float ->
  ?signal_mass:float ->
  Crn.Network.t ->
  t
(** Create the 4-phase clock (under scope ["clk"]) in the given network on
    the given chassis (default {!Molclock.Clock_chassis.absence}).
    Defaults: [clock_mass = 100.], [signal_mass = 10.]. *)

val release_phase : t -> int
(** Species index of phase 0. *)

val capture_phase : t -> int
(** Species index of phase 2. *)

val cleanup_phase : t -> int
(** Species index of phase 3. *)

val phase_gated :
  ?label:string -> t -> phase:int -> int -> (int * int) list -> unit
(** [phase_gated d ~phase src products] adds
    [src + P_phase ->fast products + P_phase]. *)

val clear_on : ?label:string -> t -> phase:int -> int -> unit
(** [species + P_phase ->fast P_phase]: destroy stragglers during a phase. *)

val period : ?env:Crn.Rates.env -> t -> float
(** Measured clock period: simulates a {e standalone} copy of this design's
    clock (same phase count and mass) under [env] and measures phase 0's
    oscillation. The signal path is catalytic in the phases, so the isolated
    clock has the same period as the loaded one. Results for the default
    environment are cached per (phases, mass). *)

val cycle_time : ?env:Crn.Rates.env -> t -> cycle:int -> float
(** Start time of clock cycle [cycle] (0-based): [cycle * period], plus the
    initial settling offset of the very first oscillation (phase 0 starts
    high at [t = 0], so cycle 0 begins at 0). *)

val injection_time : ?env:Crn.Rates.env -> t -> cycle:int -> float
(** A safe moment to inject an external input consumed in cycle [cycle]:
    the chassis's [inject_fraction] into the cycle — inside the release
    window, well before capture. *)

val sample_time : ?env:Crn.Rates.env -> t -> cycle:int -> float
(** A safe moment to read registered outputs of cycle [cycle]: the
    chassis's [sample_fraction] into the cycle, after capture has completed
    and before the next release. *)

val simulate :
  ?env:Crn.Rates.env ->
  ?injections:Ode.Driver.injection list ->
  ?thin:int ->
  cycles:int ->
  t ->
  Ode.Trace.t
(** Simulate the design for a whole number of clock cycles with the stiff
    (Rosenbrock) integrator and thinned recording (default [thin = 10]). *)
