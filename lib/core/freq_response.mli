(** Frequency-response measurement of compiled discrete-time filters.

    Drives a single-input single-output {!Sfg} design with a sinusoid
    riding on a DC offset (concentrations cannot go negative), lets the
    transient die out, and estimates the AC gain by projecting the output
    onto the driving sinusoid's quadrature pair. The same estimator is run
    on the golden interpreter, so a measurement always comes with its
    ideal. *)

val estimate_gain : omega:float -> skip:int -> float list -> float
(** Amplitude of the [cos/sin] component at digital frequency [omega]
    (radians/sample) in a sample stream, ignoring the first [skip] samples
    and the mean. Raises [Invalid_argument] if fewer than 4 samples
    remain. *)

type point = {
  omega : float;
  measured : float;  (** chemistry gain *)
  ideal : float;  (** golden-interpreter gain on the same stimulus *)
}

val measure :
  ?env:Crn.Rates.env ->
  ?cycles:int ->
  ?dc:float ->
  ?amp:float ->
  Sfg.compiled ->
  omega:float ->
  point
(** Gain of the design's first output to its first input at [omega].
    Defaults: [cycles = 28] (first 12 discarded as transient), [dc = 5.],
    [amp = 3.]. *)

val sweep :
  ?env:Crn.Rates.env ->
  ?cycles:int ->
  ?jobs:int ->
  Sfg.compiled ->
  omegas:float list ->
  point list
(** {!measure} at every frequency, fanned over up to [jobs] domains via
    {!Ode.Sweep} (default: all recommended cores). Results are in
    [omegas] order and identical for every job count. *)

val biquad_theory :
  b0:int * int ->
  b1:int * int ->
  b2:int * int ->
  a1:int * int ->
  a2:int * int ->
  omega:float ->
  float
(** Closed-form [|H(e^(i omega))|] of the direct-form-I biquad
    [y(n) = b0 x(n) + b1 x(n-1) + b2 x(n-2) + a1 y(n-1) + a2 y(n-2)]. *)
