let estimate_gain ~omega ~skip samples =
  let arr = Array.of_list samples in
  let n = Array.length arr - skip in
  if n < 4 then invalid_arg "Freq_response.estimate_gain: too few samples";
  let tail = Array.sub arr skip n in
  let mean = Numeric.Stats.mean tail in
  let a = ref 0. and b = ref 0. in
  Array.iteri
    (fun i y ->
      let ph = omega *. float_of_int (skip + i) in
      a := !a +. ((y -. mean) *. sin ph);
      b := !b +. ((y -. mean) *. cos ph))
    tail;
  2. /. float_of_int n *. sqrt ((!a *. !a) +. (!b *. !b))

type point = { omega : float; measured : float; ideal : float }

let stimulus ~cycles ~dc ~amp ~omega =
  List.init cycles (fun n ->
      Float.max 0. (dc +. (amp *. sin (omega *. float_of_int n))))

let measure ?env ?(cycles = 28) ?(dc = 5.) ?(amp = 3.) compiled ~omega =
  if amp > dc then invalid_arg "Freq_response.measure: amp must be <= dc";
  let stream = stimulus ~cycles ~dc ~amp ~omega in
  let skip = cycles * 3 / 7 in
  let input_gain = estimate_gain ~omega ~skip stream in
  let got =
    List.hd (Sfg.response ?env compiled [ stream ])
  in
  let want = List.hd (Sfg.reference compiled.Sfg.graph [ stream ]) in
  {
    omega;
    measured = estimate_gain ~omega ~skip got /. input_gain;
    ideal = estimate_gain ~omega ~skip want /. input_gain;
  }

let sweep ?env ?cycles ?jobs compiled ~omegas =
  (* each point is a full clocked simulation; fan them over domains —
     measurement only reads the compiled design's network *)
  Array.to_list
    (Ode.Sweep.map ?jobs
       (fun omega -> measure ?env ?cycles compiled ~omega)
       (Array.of_list omegas))

let biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega =
  let f (num, den) = float_of_int num /. float_of_int den in
  let cis k = (cos (-.omega *. float_of_int k), sin (-.omega *. float_of_int k)) in
  let add (ar, ai) (br, bi) = (ar +. br, ai +. bi) in
  let smul s (r, i) = (s *. r, s *. i) in
  let numerator =
    add (smul (f b0) (cis 0)) (add (smul (f b1) (cis 1)) (smul (f b2) (cis 2)))
  in
  let denominator =
    add (cis 0) (smul (-1.) (add (smul (f a1) (cis 1)) (smul (f a2) (cis 2))))
  in
  let mag (r, i) = sqrt ((r *. r) +. (i *. i)) in
  mag numerator /. mag denominator
