(* One sample per clock cycle, taken inside the capture phase's high
   window.  That window is the only interval where the registered one-hot
   state is guaranteed live on every chassis: capture (gated on this very
   phase) has completed by the time the phase is measurably high, and the
   next release cannot have started — over discrete molecules a gated
   transfer fires as soon as its gating phase holds a few molecules, long
   before that phase crosses the half-mass threshold, so by the end of the
   cleanup phase the state may already have been re-released.  Deriving
   the point from the observed window (rather than a fixed fraction of the
   cycle) keeps the decode robust to the irregular per-phase dwells of
   stochastic clocks. *)
let cycle_sample_times ?(hold_fraction = 0.55) trace clock =
  let capture = Molclock.Clock_chassis.n_phases clock - 2 in
  Molclock.Clock_analysis.phase_windows trace clock capture
  |> List.map (fun (a, b) -> a +. (hold_fraction *. (b -. a)))

let onehot_states trace design names =
  let clock = design.Sync_design.clock in
  let threshold = design.Sync_design.signal_mass /. 2. in
  List.map
    (fun t -> Analysis.Decode.onehot_at ~threshold trace names t)
    (cycle_sample_times trace clock)

let counter_states trace (ctr : Counter.t) =
  onehot_states trace ctr.fsm.Fsm.design (Fsm.state_names ctr.fsm)

let fsm_states trace (m : Fsm.t) =
  onehot_states trace m.Fsm.design (Fsm.state_names m)

let increments_by_one states ~modulo =
  if modulo <= 0 then invalid_arg "Stochastic.increments_by_one: bad modulo";
  let rec go = function
    | Some a :: (Some b :: _ as rest) ->
        if (a + 1) mod modulo = b then go rest else false
    | None :: _ | _ :: None :: _ -> false
    | [ Some _ ] | [] -> true
  in
  go states
