(** Decoding sequential designs from {e stochastic} traces.

    Under Gillespie simulation the clock still oscillates, but its period
    is an emergent random variable (discrete indicator molecules make the
    gated bootstrap transfers wait for whole Poisson arrivals — measured
    roughly 2x the deterministic period, with visible jitter). Cycle-based
    decoding therefore cannot use the deterministic
    {!Sync_design.sample_time}; these helpers recover the cycle boundaries
    from the simulated clock itself and sample mid-hold.

    The trace can come from any simulator — these functions only read it —
    but their reason to exist is {!Ssa.Gillespie.run} and
    {!Hybrid.Engine.run}. *)

val cycle_sample_times :
  ?hold_fraction:float ->
  Ode.Trace.t ->
  Molclock.Clock_chassis.instance ->
  float list
(** One sampling moment per observed clock cycle, [hold_fraction]
    (default [0.55]) of the way into each high window of the {e capture}
    phase (index [n_phases - 2]) — the only interval in which the
    registered one-hot state is guaranteed live over discrete molecules:
    capture has completed, and the release phase is truly absent (a gated
    transfer fires as soon as its gate holds a few molecules, so waiting
    until the cleanup phase risks sampling after the next release has
    begun).  The window is measured from the clock trace itself, so the
    decode survives the irregular per-phase dwells of stochastic clocks
    on any chassis.  Empty if the capture phase never completed a high
    window. *)

val counter_states :
  Ode.Trace.t -> Counter.t -> int option list
(** Decoded one-hot counter state at each measured cycle. *)

val fsm_states : Ode.Trace.t -> Fsm.t -> int option list
(** Decoded one-hot FSM state at each measured cycle. *)

val increments_by_one :
  int option list -> modulo:int -> bool
(** Do consecutive decoded states each advance by exactly one (mod
    [modulo])? [false] on any [None] or jump; vacuously [true] for fewer
    than two samples. *)
