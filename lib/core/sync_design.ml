type t = {
  builder : Crn.Builder.t;
  clock : Molclock.Clock_chassis.instance;
  signal_mass : float;
}

let n_phases = 4

let make ?(chassis = Molclock.Clock_chassis.absence) ?(clock_mass = 100.)
    ?(signal_mass = 10.) net =
  let builder = Crn.Builder.on net in
  let clock =
    Molclock.Clock_chassis.build chassis ~n_phases ~mass:clock_mass
      (Crn.Builder.scoped builder "clk")
  in
  { builder; clock; signal_mass }

let release_phase d = Molclock.Clock_chassis.phase d.clock 0
let capture_phase d = Molclock.Clock_chassis.phase d.clock 2
let cleanup_phase d = Molclock.Clock_chassis.phase d.clock 3

let phase_gated ?label d ~phase src products =
  Crn.Builder.react ?label d.builder Crn.Rates.fast
    [ (src, 1); (phase, 1) ]
    ((phase, 1) :: products)

let clear_on ?label d ~phase species =
  Crn.Builder.consume_by ?label d.builder Crn.Rates.fast ~by:phase species

(* The signal path is catalytic in the clock phases, so the period of a
   standalone clock with the same parameters equals the loaded design's.
   Measuring it needs one stiff simulation; cache by (chassis, mass, env). *)
let period_cache : (string * float * float * float, float) Hashtbl.t =
  Hashtbl.create 8

let measure_period ~env ~chassis ~mass =
  let key =
    ( chassis.Molclock.Clock_chassis.name,
      mass,
      env.Crn.Rates.k_fast,
      env.Crn.Rates.k_slow )
  in
  match Hashtbl.find_opt period_cache key with
  | Some p -> p
  | None ->
      let net = Crn.Network.create () in
      let b = Crn.Builder.on net in
      let clk =
        Molclock.Clock_chassis.build chassis ~n_phases ~mass
          (Crn.Builder.scoped b "clk")
      in
      (* enough time for ~15 cycles at any plausible rate environment: the
         period scales with 1/k_slow *)
      let horizon = 120. /. env.Crn.Rates.k_slow in
      let trace =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5
          ~t1:horizon net
      in
      let p =
        match Molclock.Clock_analysis.period trace clk with
        | Some p -> p
        | None ->
            failwith "Sync_design.period: clock failed to oscillate"
      in
      Hashtbl.replace period_cache key p;
      p

let chassis_of d =
  Molclock.Clock_chassis.find_exn
    (Molclock.Clock_chassis.chassis_name d.clock)

let period ?(env = Crn.Rates.default_env) d =
  measure_period ~env ~chassis:(chassis_of d)
    ~mass:(Molclock.Clock_chassis.mass d.clock)

let cycle_time ?env d ~cycle =
  if cycle < 0 then invalid_arg "Sync_design.cycle_time: negative cycle";
  float_of_int cycle *. period ?env d

(* Phase windows are a chassis property (the absence clock's phases
   pre-accumulate; the relaxation clock's dwells alternate long/short), so
   the per-cycle injection and sampling offsets come from the instance. *)
let injection_time ?env d ~cycle =
  cycle_time ?env d ~cycle
  +. (Molclock.Clock_chassis.inject_fraction d.clock *. period ?env d)

let sample_time ?env d ~cycle =
  cycle_time ?env d ~cycle
  +. (Molclock.Clock_chassis.sample_fraction d.clock *. period ?env d)

let simulate ?(env = Crn.Rates.default_env) ?injections ?(thin = 10) ~cycles d
    =
  if cycles < 1 then invalid_arg "Sync_design.simulate: cycles must be >= 1";
  let t1 = float_of_int cycles *. period ~env d in
  Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ?injections ~thin
    ~t1
    (Crn.Builder.network d.builder)
