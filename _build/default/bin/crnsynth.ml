(* crnsynth — synthesize a named design into reactions.

   Prints the reaction network in the textual .crn format (which crnsim and
   Crn.Parser read back), the synthesis-cost statistics, and optionally the
   DNA strand-displacement compilation. *)

open Cmdliner

let run name list_designs show_stats dsd dsd_cmax out dsd_export =
  if list_designs then begin
    List.iter
      (fun e ->
        Printf.printf "%-16s %s\n" e.Designs.Catalog.name
          e.Designs.Catalog.description)
      (Designs.Catalog.all ());
    0
  end
  else
    match name with
    | None ->
        Printf.eprintf "crnsynth: a design name is required (try --list)\n";
        1
    | Some name -> (
        try
          let net = Designs.Catalog.build name in
          let text = Crn.Network.to_string net in
          (match out with
          | Some path ->
              let oc = open_out path in
              output_string oc text;
              close_out oc;
              Printf.printf "wrote %s\n" path
          | None -> print_string text);
          if show_stats then begin
            let stats = Core.Compile.stats_of ~name net in
            Format.printf "@.%a@." Core.Compile.pp stats
          end;
          if dsd || dsd_export <> None then begin
            let t = Dsd.Translate.translate ~c_max:dsd_cmax net in
            let stats =
              Core.Compile.stats_of ~name:(name ^ "+dsd")
                t.Dsd.Translate.compiled
            in
            Format.printf "@.DNA strand-displacement compilation:@.%a@."
              Core.Compile.pp stats;
            let inv = Dsd.Translate.inventory t in
            Format.printf "%d complexes, %d distinct domains@."
              (List.length inv)
              (List.length (Dsd.Domain.distinct_domains inv));
            match dsd_export with
            | Some path ->
                let oc = open_out path in
                output_string oc (Dsd.Export.visual_dsd t);
                close_out oc;
                Printf.printf "wrote Visual-DSD-flavoured export to %s\n" path
            | None -> ()
          end;
          0
        with
        | Invalid_argument msg | Failure msg ->
            Printf.eprintf "crnsynth: %s\n" msg;
            1
        | Dsd.Translate.Not_compilable msg ->
            Printf.eprintf "crnsynth: not DSD-compilable: %s\n" msg;
            1)

let design_arg =
  let doc = "Design to synthesize (see --list)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let list_designs =
  let doc = "List the available designs." in
  Arg.(value & flag & info [ "l"; "list" ] ~doc)

let show_stats =
  let doc = "Print synthesis-cost statistics." in
  Arg.(value & flag & info [ "s"; "stats" ] ~doc)

let dsd =
  let doc = "Also compile to DNA strand displacement and report its cost." in
  Arg.(value & flag & info [ "dsd" ] ~doc)

let dsd_cmax =
  let doc = "Fuel buffer concentration for the DSD compilation." in
  Arg.(value & opt float 10000. & info [ "cmax" ] ~docv:"C" ~doc)

let out =
  let doc = "Write the .crn text to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let dsd_export =
  let doc = "Write a Visual-DSD-flavoured export of the compilation to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dsd-export" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "synthesize molecular sequential designs into reactions" in
  let info = Cmd.info "crnsynth" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ design_arg $ list_designs $ show_stats $ dsd $ dsd_cmax
      $ out $ dsd_export)

let () = exit (Cmd.eval' cmd)
