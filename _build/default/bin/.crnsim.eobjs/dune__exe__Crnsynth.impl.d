bin/crnsynth.ml: Arg Cmd Cmdliner Core Crn Designs Dsd Format List Printf Term
