bin/crnsim.ml: Analysis Arg Array Cmd Cmdliner Crn Designs Int64 Ode Printf Ssa String Sys Term
