bin/crnsim.mli:
