bin/crnsynth.mli:
