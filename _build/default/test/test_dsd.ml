(* Tests for the DNA strand-displacement compilation layer. *)

let simple_net () =
  let net = Crn.Network.create () in
  let a = Crn.Network.species net "A"
  and b = Crn.Network.species net "B"
  and c = Crn.Network.species net "C" in
  Crn.Network.set_init net a 30.;
  Crn.Network.set_init net b 20.;
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[ (a, 1) ] ~products:[ (c, 1) ] Crn.Rates.slow);
  Crn.Network.add_reaction net
    (Crn.Reaction.make
       ~reactants:[ (a, 1); (b, 1) ]
       ~products:[ (c, 2) ]
       (Crn.Rates.slow_scaled 0.1));
  net

(* ---------------------------------------------------------------- Domain *)

let test_domain_signal_strand () =
  let s = Dsd.Domain.signal_strand ~species_name:"X" in
  Alcotest.(check int) "two domains" 2 (Dsd.Domain.strand_length s);
  match s with
  | [ t; d ] ->
      Alcotest.(check bool) "toehold first" true (t.Dsd.Domain.kind = Dsd.Domain.Toehold);
      Alcotest.(check bool) "recognition second" true
        (d.Dsd.Domain.kind = Dsd.Domain.Recognition);
      Alcotest.(check string) "toehold name" "t.X" t.Dsd.Domain.name
  | _ -> Alcotest.fail "shape"

let test_domain_pp () =
  let s = Dsd.Domain.signal_strand ~species_name:"X" in
  Alcotest.(check string) "render" "<t.X^ d.X>"
    (Format.asprintf "%a" Dsd.Domain.pp_strand s)

let test_domain_distinct () =
  let c1 =
    { Dsd.Domain.label = "a"; strands = [ Dsd.Domain.signal_strand ~species_name:"X" ] }
  in
  let c2 =
    { Dsd.Domain.label = "b"; strands = [ Dsd.Domain.signal_strand ~species_name:"X" ] }
  in
  Alcotest.(check (list string)) "dedup" [ "d.X"; "t.X" ]
    (Dsd.Domain.distinct_domains [ c1; c2 ])

(* ------------------------------------------------------------- Translate *)

let test_translate_counts () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  (* unimolecular: bind+translate (2); bimolecular: join/unbind/join/fork (4) *)
  Alcotest.(check int) "reactions" 6
    (Crn.Network.n_reactions t.Dsd.Translate.compiled);
  (* formal 3 + r0: G,T,O,W + r1: J,T,H,O,W *)
  Alcotest.(check int) "species" 12
    (Crn.Network.n_species t.Dsd.Translate.compiled);
  Alcotest.(check int) "formal reactions recorded" 2
    t.Dsd.Translate.n_formal_reactions;
  (* fuels: r0.G, r0.T, r1.J, r1.T *)
  Alcotest.(check int) "fuel species" 4 (List.length t.Dsd.Translate.fuel_species)

let test_translate_preserves_formal () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  let c = t.Dsd.Translate.compiled in
  Alcotest.(check bool) "A kept" true (Crn.Network.find_species c "A" <> None);
  Alcotest.(check (float 0.)) "A init kept" 30.
    (Crn.Network.init_of c (Crn.Network.species c "A"));
  (* fuel stocked at c_max *)
  Alcotest.(check (float 0.)) "fuel stocked" 10000.
    (Crn.Network.init_of c (Crn.Network.species c "dsd.r0.G"))

let test_translate_max_order_two () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  Alcotest.(check bool) "compiled network is itself DSD-clean" true
    (Crn.Validate.is_dsd_compilable t.Dsd.Translate.compiled)

let test_translate_rejects_trimolecular () =
  let net = Crn.Network.create () in
  let a = Crn.Network.species net "A" in
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[ (a, 3) ] ~products:[ (a, 1) ] Crn.Rates.slow);
  match Dsd.Translate.translate net with
  | exception Dsd.Translate.Not_compilable _ -> ()
  | _ -> Alcotest.fail "expected Not_compilable"

let test_translate_zero_order () =
  let net = Crn.Network.create () in
  let x = Crn.Network.species net "X" in
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[] ~products:[ (x, 1) ] Crn.Rates.slow);
  let t = Dsd.Translate.translate ~c_max:1000. net in
  (* the source gate releases X at ~k_slow = 1 per time unit *)
  let xf =
    Ode.Driver.final_state ~method_:Ode.Driver.Rosenbrock ~t1:20.
      t.Dsd.Translate.compiled
  in
  let idx = Crn.Network.species t.Dsd.Translate.compiled "X" in
  Alcotest.(check (float 0.5)) "release rate emulated" 20. xf.(idx)

let test_fuel_remaining () =
  let net = simple_net () in
  let t = Dsd.Translate.translate ~c_max:100. net in
  let x0 = Crn.Network.initial_state t.Dsd.Translate.compiled in
  Alcotest.(check (float 1e-9)) "full at start" 1.
    (Dsd.Translate.fuel_remaining t x0);
  let xf =
    Ode.Driver.final_state ~method_:Ode.Driver.Rosenbrock ~t1:10.
      t.Dsd.Translate.compiled
  in
  let remaining = Dsd.Translate.fuel_remaining t xf in
  Alcotest.(check bool) "consumed but not exhausted" true
    (remaining < 1. && remaining > 0.2)

let test_inventory () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  let inv = Dsd.Translate.inventory t in
  (* every formal species and every fuel complex appears *)
  Alcotest.(check bool) "at least formal+fuel complexes" true
    (List.length inv >= 3 + List.length t.Dsd.Translate.fuel_species);
  let labels = List.map (fun c -> c.Dsd.Domain.label) inv in
  Alcotest.(check bool) "contains A" true (List.mem "A" labels)

(* ------------------------------------------------------------------ Gate *)

(* the structural view (Gate steps) and the kinetic view (Translate's
   compiled reactions) must agree exactly *)
let test_gate_steps_match_translate () =
  let net = simple_net () in
  let c_max = 1000. in
  let gates = Dsd.Gate.all ~c_max net in
  let t = Dsd.Translate.translate ~c_max net in
  let compiled = Crn.Network.reactions t.Dsd.Translate.compiled in
  let compiled_keys =
    Array.to_list compiled
    |> List.map (fun r ->
           let side s =
             List.map
               (fun (sp, c) ->
                 (Crn.Network.species_name t.Dsd.Translate.compiled sp, c))
               s
             |> List.sort compare
           in
           (side r.Crn.Reaction.reactants, side r.Crn.Reaction.products,
            r.Crn.Reaction.rate))
    |> List.sort compare
  in
  let step_keys =
    List.concat_map (fun g -> g.Dsd.Gate.steps) gates
    |> List.map (fun s ->
           (List.sort compare s.Dsd.Gate.consumed,
            List.sort compare s.Dsd.Gate.produced, s.Dsd.Gate.rate))
    |> List.sort compare
  in
  Alcotest.(check int) "same number of steps" (List.length compiled_keys)
    (List.length step_keys);
  List.iter2
    (fun a b ->
      if a <> b then Alcotest.fail "structural and kinetic views diverge")
    compiled_keys step_keys

let test_gate_kinds_and_strands () =
  let net = simple_net () in
  let gates = Dsd.Gate.all net in
  match gates with
  | [ unary; binary ] ->
      Alcotest.(check bool) "first is unary" true (unary.Dsd.Gate.kind = Dsd.Gate.Unary);
      Alcotest.(check bool) "second is binary" true (binary.Dsd.Gate.kind = Dsd.Gate.Binary);
      (* unary A -> C: G (2 strands) + T (1 bottom + 1 product) = 4 *)
      Alcotest.(check int) "unary strands" 4 (Dsd.Gate.strand_count unary);
      (* binary A+B -> 2C: J (2) + T (1 + 2 product units) = 5 *)
      Alcotest.(check int) "binary strands" 5 (Dsd.Gate.strand_count binary)
  | _ -> Alcotest.fail "expected two gates"

let test_gate_source_kind () =
  let net = Crn.Network.create () in
  let x = Crn.Network.species net "X" in
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[] ~products:[ (x, 1) ] Crn.Rates.slow);
  match Dsd.Gate.all net with
  | [ g ] ->
      Alcotest.(check bool) "source" true (g.Dsd.Gate.kind = Dsd.Gate.Source);
      Alcotest.(check int) "two strands" 2 (Dsd.Gate.strand_count g);
      Alcotest.(check int) "one step" 1 (List.length g.Dsd.Gate.steps)
  | _ -> Alcotest.fail "expected one gate"

let test_gate_rejects_trimolecular () =
  let net = Crn.Network.create () in
  let a = Crn.Network.species net "A" in
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[ (a, 3) ] ~products:[ (a, 1) ] Crn.Rates.slow);
  match Dsd.Gate.all net with
  | exception Dsd.Translate.Not_compilable _ -> ()
  | _ -> Alcotest.fail "expected Not_compilable"

let test_gate_pp () =
  let net = simple_net () in
  let g = List.hd (Dsd.Gate.all net) in
  let s = Format.asprintf "%a" Dsd.Gate.pp g in
  Alcotest.(check bool) "mentions the gate" true (String.length s > 40)

(* ---------------------------------------------------------------- Export *)

let test_export_visual_dsd () =
  let net = simple_net () in
  let t = Dsd.Translate.translate ~c_max:1000. net in
  let s = Dsd.Export.visual_dsd ~duration:10. t in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "directive" true (contains "directive duration 10");
  Alcotest.(check bool) "signal strand with amount" true
    (contains "30 * <t.A^ d.A>");
  Alcotest.(check bool) "fuel reference" true (contains "Fuel_dsd_r0_G()");
  Alcotest.(check bool) "fuel definition" true (contains "def Fuel_dsd_r0_G()");
  (* waste and intermediate species (zero initial) stay out of the soup *)
  Alcotest.(check bool) "no waste in soup" false (contains "<t.dsd.r0.W^")

(* ---------------------------------------------------------------- Verify *)

let test_verify_equivalence () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  let r = Dsd.Verify.compare ~t1:5. net t in
  Alcotest.(check bool)
    (Printf.sprintf "trajectories agree (dev %g)" r.Dsd.Verify.max_abs_deviation)
    true
    (r.Dsd.Verify.max_abs_deviation < 0.2);
  Alcotest.(check bool) "final states agree" true (r.Dsd.Verify.final_deviation < 0.1);
  Alcotest.(check bool) "fuel barely touched" true (r.Dsd.Verify.fuel_remaining > 0.99)

let test_verify_fidelity_improves_with_fuel () =
  (* smaller fuel buffers distort the kinetics more *)
  let net = simple_net () in
  let dev c_max =
    let t = Dsd.Translate.translate ~c_max net in
    (Dsd.Verify.compare ~t1:5. net t).Dsd.Verify.max_abs_deviation
  in
  let d_small = dev 100. and d_large = dev 10000. in
  Alcotest.(check bool)
    (Printf.sprintf "dev(100)=%g > dev(10000)=%g" d_small d_large)
    true (d_small > d_large)

let test_verify_unknown_species () =
  let net = simple_net () in
  let t = Dsd.Translate.translate net in
  Alcotest.check_raises "unknown species"
    (Invalid_argument "Verify.compare: unknown species \"zz\"") (fun () ->
      ignore (Dsd.Verify.compare ~species:[ "zz" ] ~t1:1. net t))

let test_verify_fast_reactions_distorted_less_with_headroom () =
  (* a fast annihilation compiled through gates whose q_max is 10x the fast
     category still tracks the formal network *)
  let net = Crn.Network.create () in
  let a = Crn.Network.species net "A" and b = Crn.Network.species net "B" in
  Crn.Network.set_init net a 10.;
  Crn.Network.set_init net b 6.;
  Crn.Network.add_reaction net
    (Crn.Reaction.make ~reactants:[ (a, 1); (b, 1) ] ~products:[] Crn.Rates.fast);
  let t = Dsd.Translate.translate net in
  let r = Dsd.Verify.compare ~t1:1. net t in
  Alcotest.(check bool)
    (Printf.sprintf "fast annihilation tracked (final dev %g)"
       r.Dsd.Verify.final_deviation)
    true
    (r.Dsd.Verify.final_deviation < 0.5)

let qcheck_tests =
  let open QCheck in
  (* random small bimolecular networks: the compilation preserves the
     formal species' end states *)
  let gen =
    Gen.(
      let* n = int_range 2 4 in
      let* rxns =
        list_size (int_range 1 4)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
             (int_range 0 (n - 1)))
      in
      let* inits = list_size (return n) (int_range 1 20) in
      return (n, rxns, inits))
  in
  [
    Test.make ~name:"compilation preserves end states (random nets)"
      ~count:15 (make gen)
      (fun (n, rxns, inits) ->
        let net = Crn.Network.create () in
        let sp =
          Array.init n (fun i ->
              Crn.Network.species net (Printf.sprintf "S%d" i))
        in
        List.iteri
          (fun i v -> Crn.Network.set_init net sp.(i) (float_of_int v))
          inits;
        List.iter
          (fun (a, b, c) ->
            (* A + B -> C, always slow: a generic bimolecular soup *)
            Crn.Network.add_reaction net
              (Crn.Reaction.make
                 ~reactants:[ (sp.(a), 1); (sp.(b), 1) ]
                 ~products:[ (sp.(c), 1) ]
                 (Crn.Rates.slow_scaled 0.05)))
          rxns;
        let t = Dsd.Translate.translate ~c_max:10_000. net in
        let r = Dsd.Verify.compare ~t1:4. net t in
        r.Dsd.Verify.final_deviation < 0.5);
  ]

let suite =
  [
    ("domain signal strand", `Quick, test_domain_signal_strand);
    ("domain pp", `Quick, test_domain_pp);
    ("domain distinct", `Quick, test_domain_distinct);
    ("translate counts", `Quick, test_translate_counts);
    ("translate preserves formal", `Quick, test_translate_preserves_formal);
    ("translate max order 2", `Quick, test_translate_max_order_two);
    ("translate rejects trimolecular", `Quick, test_translate_rejects_trimolecular);
    ("translate zero order", `Quick, test_translate_zero_order);
    ("fuel remaining", `Quick, test_fuel_remaining);
    ("inventory", `Quick, test_inventory);
    ("verify equivalence", `Quick, test_verify_equivalence);
    ("verify fuel sweep", `Slow, test_verify_fidelity_improves_with_fuel);
    ("gate steps match translate", `Quick, test_gate_steps_match_translate);
    ("gate kinds and strands", `Quick, test_gate_kinds_and_strands);
    ("gate source kind", `Quick, test_gate_source_kind);
    ("gate rejects trimolecular", `Quick, test_gate_rejects_trimolecular);
    ("gate pp", `Quick, test_gate_pp);
    ("export visual dsd", `Quick, test_export_visual_dsd);
    ("verify unknown species", `Quick, test_verify_unknown_species);
    ("verify fast reaction", `Quick, test_verify_fast_reactions_distorted_less_with_headroom);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
