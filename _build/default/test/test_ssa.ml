(* Tests for the Gillespie stochastic simulator. *)

open Crn

let decay_network a0 =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a a0;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  net

let test_ssa_conserves_molecules () =
  let net = decay_network 200. in
  let { Ssa.Gillespie.final; _ } = Ssa.Gillespie.run ~seed:9L ~t1:2. net in
  Alcotest.(check (float 0.)) "A + B = 200" 200. (final.(0) +. final.(1))

let test_ssa_exhausts_decay () =
  (* after 20 mean lifetimes essentially everything has decayed *)
  let net = decay_network 100. in
  let { Ssa.Gillespie.final; n_events; _ } =
    Ssa.Gillespie.run ~seed:2L ~t1:20. net
  in
  Alcotest.(check (float 0.)) "all decayed" 100. final.(1);
  Alcotest.(check int) "one event per molecule" 100 n_events

let test_ssa_deterministic_by_seed () =
  let net = decay_network 50. in
  let r1 = Ssa.Gillespie.run ~seed:5L ~t1:1. net in
  let r2 = Ssa.Gillespie.run ~seed:5L ~t1:1. net in
  Alcotest.(check (array (float 0.))) "same final" r1.final r2.final;
  Alcotest.(check int) "same events" r1.n_events r2.n_events

let test_ssa_seed_changes_path () =
  let net = decay_network 50. in
  let r1 = Ssa.Gillespie.run ~seed:5L ~t1:0.5 net in
  let r2 = Ssa.Gillespie.run ~seed:6L ~t1:0.5 net in
  Alcotest.(check bool) "different paths" true
    (r1.final <> r2.final || r1.n_events <> r2.n_events)

let test_ssa_mean_matches_ode () =
  (* ensemble mean of the stochastic decay tracks the ODE solution *)
  let net = decay_network 400. in
  let mean, _std = Ssa.Gillespie.mean_final ~runs:30 ~seed:7L ~t1:1. net "A" in
  let expected = 400. *. exp (-1.) in
  (* sd of a binomial(400, e^-1) is ~9.7; the mean of 30 runs ~1.8 *)
  Alcotest.(check bool) "within 6 sigma of ODE"
    true
    (Float.abs (mean -. expected) < 11.)

let test_ssa_bimolecular_halts () =
  (* 2A -> B with odd initial count leaves exactly one A *)
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a 11.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 2) ] ~products:[ (b, 1) ] Rates.fast);
  let { Ssa.Gillespie.final; _ } = Ssa.Gillespie.run ~seed:3L ~t1:10. net in
  Alcotest.(check (float 0.)) "one A stranded" 1. final.(a);
  Alcotest.(check (float 0.)) "five B" 5. final.(b)

let test_ssa_zero_order_grows () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.add_reaction net
    (Reaction.make ~reactants:[] ~products:[ (x, 1) ] (Rates.slow_scaled 10.));
  let { Ssa.Gillespie.final; _ } = Ssa.Gillespie.run ~seed:21L ~t1:10. net in
  (* Poisson(100): within 5 sigma *)
  Alcotest.(check bool) "Poisson growth" true
    (final.(0) > 50. && final.(0) < 150.)

let test_ssa_trace_sampling () =
  let net = decay_network 100. in
  let { Ssa.Gillespie.trace; _ } =
    Ssa.Gillespie.run ~seed:1L ~sample_dt:0.1 ~t1:1. net
  in
  Alcotest.(check bool) "about 11 samples" true
    (Ode.Trace.length trace >= 10 && Ode.Trace.length trace <= 12);
  (* counts are non-increasing for A *)
  let col = Ode.Trace.column_named trace "A" in
  let ok = ref true in
  for i = 1 to Array.length col - 1 do
    if col.(i) > col.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "A monotone down" true !ok

let test_ssa_empty_system_idles () =
  let net = Network.create () in
  let x = Network.species net "X" in
  Network.set_init net x 5.;
  (* a reaction that can never fire: requires a missing species *)
  let y = Network.species net "Y" in
  Network.add_reaction net
    (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] Rates.fast);
  let { Ssa.Gillespie.final; n_events; _ } =
    Ssa.Gillespie.run ~seed:1L ~t1:5. net
  in
  Alcotest.(check int) "no events" 0 n_events;
  Alcotest.(check (float 0.)) "X held" 5. final.(x)

let test_ssa_invalid_args () =
  let net = decay_network 1. in
  Alcotest.check_raises "bad t1"
    (Invalid_argument "Gillespie.run: t1 must be positive") (fun () ->
      ignore (Ssa.Gillespie.run ~t1:0. net));
  Alcotest.check_raises "bad sample_dt"
    (Invalid_argument "Gillespie.run: sample_dt must be positive") (fun () ->
      ignore (Ssa.Gillespie.run ~sample_dt:0. ~t1:1. net));
  Alcotest.check_raises "unknown species"
    (Invalid_argument "Gillespie.mean_final: unknown species \"zz\"")
    (fun () -> ignore (Ssa.Gillespie.mean_final ~t1:1. net "zz"))

(* ------------------------------------------------------------ Tau_leap *)

let test_poisson_moments () =
  let rng = Numeric.Rng.create 31L in
  List.iter
    (fun mean ->
      let n = 20000 in
      let acc = ref 0. and acc2 = ref 0. in
      for _ = 1 to n do
        let k = float_of_int (Ssa.Tau_leap.poisson rng mean) in
        acc := !acc +. k;
        acc2 := !acc2 +. (k *. k)
      done;
      let m = !acc /. float_of_int n in
      let var = (!acc2 /. float_of_int n) -. (m *. m) in
      (* Poisson: mean = variance = lambda; allow 5 sigma of the estimators *)
      let tol = 5. *. sqrt (mean /. float_of_int n) +. 0.05 *. mean in
      if Float.abs (m -. mean) > tol then
        Alcotest.failf "poisson(%g): mean %g" mean m;
      if Float.abs (var -. mean) > 0.15 *. Float.max 1. mean then
        Alcotest.failf "poisson(%g): variance %g" mean var)
    [ 0.3; 3.; 50. ];
  Alcotest.(check int) "zero mean" 0 (Ssa.Tau_leap.poisson rng 0.);
  Alcotest.check_raises "negative mean"
    (Invalid_argument "Tau_leap.poisson: negative mean") (fun () ->
      ignore (Ssa.Tau_leap.poisson rng (-1.)))

let test_tau_leap_decay_matches_analytic () =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a 5000.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Rates.slow);
  let { Ssa.Tau_leap.final; n_leaps; _ } =
    Ssa.Tau_leap.run ~seed:5L ~t1:1. net
  in
  (* expected 5000 e^-1 ~ 1839, sd ~ 34; allow 6 sigma *)
  Alcotest.(check bool)
    (Printf.sprintf "A(1) = %.0f near analytic" final.(a))
    true
    (Float.abs (final.(a) -. 1839.) < 220.);
  Alcotest.(check (float 0.)) "molecules conserved" 5000. (final.(a) +. final.(b));
  Alcotest.(check bool) "actually leapt" true (n_leaps > 10)

let test_tau_leap_small_counts_fall_back_exactly () =
  (* with tiny counts tau-leaping must degrade to the exact method and
     remain correct: 2A -> B with 11 molecules leaves exactly one A *)
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  Network.set_init net a 11.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 2) ] ~products:[ (b, 1) ] Rates.fast);
  let { Ssa.Tau_leap.final; _ } = Ssa.Tau_leap.run ~seed:3L ~t1:10. net in
  Alcotest.(check (float 0.)) "one A stranded" 1. final.(a);
  Alcotest.(check (float 0.)) "five B" 5. final.(b)

let test_tau_leap_faster_on_large_counts () =
  let net = Network.create () in
  let a = Network.species net "A" and b = Network.species net "B" in
  let c = Network.species net "C" in
  Network.set_init net a 100000.;
  Network.set_init net b 80000.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (a, 1); (b, 1) ] ~products:[ (c, 1) ]
       (Rates.slow_scaled 1e-5));
  let direct = Ssa.Gillespie.run ~seed:3L ~t1:2. net in
  let leap = Ssa.Tau_leap.run ~seed:3L ~t1:2. net in
  (* orders of magnitude fewer steps, same destination within noise *)
  Alcotest.(check bool) "far fewer steps" true
    (leap.Ssa.Tau_leap.n_leaps + leap.n_exact
    < direct.Ssa.Gillespie.n_events / 20);
  Alcotest.(check bool) "same destination" true
    (Float.abs (leap.final.(c) -. direct.final.(c))
    < 0.03 *. direct.final.(c));
  Alcotest.(check (float 0.)) "conservation" (direct.final.(a) +. direct.final.(c))
    (leap.Ssa.Tau_leap.final.(a) +. leap.final.(c))

let test_tau_leap_invalid () =
  let net = decay_network 1. in
  Alcotest.check_raises "bad t1"
    (Invalid_argument "Tau_leap.run: t1 must be positive") (fun () ->
      ignore (Ssa.Tau_leap.run ~t1:0. net));
  Alcotest.check_raises "bad sample_dt"
    (Invalid_argument "Tau_leap.run: sample_dt must be positive") (fun () ->
      ignore (Ssa.Tau_leap.run ~sample_dt:(-1.) ~t1:1. net))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ssa: molecule count conserved for closed networks"
      ~count:30
      (make Gen.(pair (int_range 1 200) (int_range 1 1000000)))
      (fun (n0, seed) ->
        let net = Network.create () in
        let x = Network.species net "X" and y = Network.species net "Y" in
        Network.set_init net x (float_of_int n0);
        Network.add_reaction net
          (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow);
        Network.add_reaction net
          (Reaction.make ~reactants:[ (y, 1) ] ~products:[ (x, 1) ] Rates.slow);
        let { Ssa.Gillespie.final; _ } =
          Ssa.Gillespie.run ~seed:(Int64.of_int seed) ~t1:1. net
        in
        final.(0) +. final.(1) = float_of_int n0);
  ]

let suite =
  [
    ("ssa conserves molecules", `Quick, test_ssa_conserves_molecules);
    ("ssa exhausts decay", `Quick, test_ssa_exhausts_decay);
    ("ssa deterministic by seed", `Quick, test_ssa_deterministic_by_seed);
    ("ssa seed changes path", `Quick, test_ssa_seed_changes_path);
    ("ssa mean matches ode", `Slow, test_ssa_mean_matches_ode);
    ("ssa bimolecular halts", `Quick, test_ssa_bimolecular_halts);
    ("ssa zero order grows", `Quick, test_ssa_zero_order_grows);
    ("ssa trace sampling", `Quick, test_ssa_trace_sampling);
    ("ssa idle system", `Quick, test_ssa_empty_system_idles);
    ("ssa invalid args", `Quick, test_ssa_invalid_args);
    ("poisson moments", `Quick, test_poisson_moments);
    ("tau-leap decay analytic", `Quick, test_tau_leap_decay_matches_analytic);
    ("tau-leap small counts exact", `Quick, test_tau_leap_small_counts_fall_back_exactly);
    ("tau-leap faster on large counts", `Quick, test_tau_leap_faster_on_large_counts);
    ("tau-leap invalid", `Quick, test_tau_leap_invalid);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
