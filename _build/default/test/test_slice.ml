(* Tests for cone-of-influence slicing. *)

open Crn

let build () =
  (* A -> B -> C (tracked chain) plus a disconnected D -> E, plus a
     byproduct: B -> C + J where J feeds nothing *)
  let net = Network.create () in
  let a = Network.species net "A"
  and b = Network.species net "B"
  and c = Network.species net "C"
  and d = Network.species net "D"
  and e = Network.species net "E"
  and j = Network.species net "J" in
  Network.set_init net a 10.;
  Network.set_init net d 7.;
  let arrow ?(products = []) x y =
    Network.add_reaction net
      (Reaction.make ~reactants:[ (x, 1) ]
         ~products:((y, 1) :: products)
         Rates.slow)
  in
  arrow a b;
  arrow b c ~products:[ (j, 1) ];
  arrow d e;
  (net, a, b, c, d, e, j)

let test_influencing () =
  let net, a, b, c, _, _, _ = build () in
  let infl = Slice.influencing net [ "C" ] in
  Alcotest.(check (list int)) "A, B, C influence C" [ a; b; c ] infl

let test_extract_drops_unrelated () =
  let net, _, _, _, _, _, _ = build () in
  let slice = Slice.extract net [ "C" ] in
  Alcotest.(check (option int)) "D gone" None (Network.find_species slice "D");
  Alcotest.(check (option int)) "E gone" None (Network.find_species slice "E");
  Alcotest.(check int) "two reactions kept" 2 (Network.n_reactions slice);
  (* the byproduct J rides along as a passenger *)
  Alcotest.(check bool) "J present as passenger" true
    (Network.find_species slice "J" <> None)

let test_extract_preserves_dynamics () =
  let net, _, _, _, _, _, _ = build () in
  let slice = Slice.extract net [ "C" ] in
  let full = Ode.Driver.simulate ~t1:3. net in
  let cut = Ode.Driver.simulate ~t1:3. slice in
  Alcotest.(check (float 1e-6)) "C(3) identical"
    (Ode.Trace.final_value full "C")
    (Ode.Trace.final_value cut "C");
  Alcotest.(check (float 1e-6)) "B(3) identical"
    (Ode.Trace.final_value full "B")
    (Ode.Trace.final_value cut "B")

let test_extract_keeps_catalysts () =
  (* X -> Y catalyzed by K: K influences Y even though it is never
     consumed *)
  let net = Network.create () in
  let x = Network.species net "X"
  and y = Network.species net "Y"
  and k = Network.species net "K" in
  Network.set_init net x 5.;
  Network.set_init net k 2.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (x, 1); (k, 1) ] ~products:[ (y, 1); (k, 1) ]
       Rates.fast);
  let infl = Slice.influencing net [ "Y" ] in
  Alcotest.(check (list int)) "catalyst included" [ x; y; k ] infl;
  let slice = Slice.extract net [ "Y" ] in
  Alcotest.(check (float 0.)) "catalyst init kept" 2.
    (Network.init_of slice (Network.species slice "K"))

let test_catalytic_only_reactions_dropped () =
  (* a reaction that merely uses C catalytically does not affect C *)
  let net = Network.create () in
  let c = Network.species net "C" and w = Network.species net "W" in
  Network.set_init net c 3.;
  Network.set_init net w 9.;
  Network.add_reaction net
    (Reaction.make ~reactants:[ (w, 1); (c, 1) ] ~products:[ (c, 1) ] Rates.fast);
  let slice = Slice.extract net [ "C" ] in
  Alcotest.(check int) "no reactions affect C" 0 (Network.n_reactions slice);
  Alcotest.(check (option int)) "W not pulled in" None
    (Network.find_species slice "W")

let test_slice_of_design () =
  (* slicing a whole counter to its clock reproduces the clock's period *)
  let net = Designs.Catalog.build "counter2" in
  let slice = Slice.extract net [ "clk.P0"; "clk.P1"; "clk.P2"; "clk.P3" ] in
  Alcotest.(check bool) "slice is smaller" true
    (Network.n_reactions slice < Network.n_reactions net);
  (* the counter reactions are catalytic in the phases, so the clock's
     own dynamics are unchanged *)
  let full = Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:30. net in
  let cut = Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:30. slice in
  let period trace =
    Analysis.Oscillation.period ~threshold:50.
      ~times:(Ode.Trace.times trace)
      ~values:(Ode.Trace.column_named trace "clk.P0")
      ()
  in
  match (period full, period cut) with
  | Some p1, Some p2 -> Alcotest.(check (float 0.05)) "same period" p1 p2
  | _ -> Alcotest.fail "clock not oscillating"

let test_unknown_species () =
  let net, _, _, _, _, _, _ = build () in
  Alcotest.check_raises "unknown" (Invalid_argument "Slice: unknown species \"zz\"")
    (fun () -> ignore (Slice.influencing net [ "zz" ]))

let suite =
  [
    ("influencing", `Quick, test_influencing);
    ("extract drops unrelated", `Quick, test_extract_drops_unrelated);
    ("extract preserves dynamics", `Quick, test_extract_preserves_dynamics);
    ("extract keeps catalysts", `Quick, test_extract_keeps_catalysts);
    ("catalytic-only dropped", `Quick, test_catalytic_only_reactions_dropped);
    ("slice of a design", `Quick, test_slice_of_design);
    ("unknown species", `Quick, test_unknown_species);
  ]
