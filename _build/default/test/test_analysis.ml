(* Tests for trace decoding, oscillation measurement, accuracy metrics and
   report rendering. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- Decode *)

let test_decode_bit () =
  Alcotest.(check bool) "above" true (Analysis.Decode.bit ~threshold:5. 7.);
  Alcotest.(check bool) "below" false (Analysis.Decode.bit ~threshold:5. 3.);
  Alcotest.(check bool) "at threshold" true (Analysis.Decode.bit ~threshold:5. 5.)

let test_decode_pair () =
  Alcotest.(check bool) "one rail" true (Analysis.Decode.bit_of_pair 1. 9.);
  Alcotest.(check bool) "zero rail" false (Analysis.Decode.bit_of_pair 9. 1.)

let test_decode_int_of_bits () =
  Alcotest.(check int) "101 lsb-first" 5
    (Analysis.Decode.int_of_bits [ true; false; true ]);
  Alcotest.(check int) "empty" 0 (Analysis.Decode.int_of_bits []);
  Alcotest.(check int) "110 lsb-first" 3
    (Analysis.Decode.int_of_bits [ true; true; false ])

let test_decode_bits_of_int () =
  Alcotest.(check (list bool)) "5 as 3 bits" [ true; false; true ]
    (Analysis.Decode.bits_of_int ~width:3 5);
  Alcotest.check_raises "too wide"
    (Invalid_argument "Decode.bits_of_int: value does not fit") (fun () ->
      ignore (Analysis.Decode.bits_of_int ~width:2 5))

let test_decode_roundtrip () =
  for v = 0 to 31 do
    Alcotest.(check int) "roundtrip" v
      (Analysis.Decode.int_of_bits (Analysis.Decode.bits_of_int ~width:5 v))
  done

let trace_of_rows names rows =
  let tr = Ode.Trace.create ~names in
  List.iter (fun (t, row) -> Ode.Trace.record tr t row) rows;
  tr

let test_decode_from_trace () =
  let tr =
    trace_of_rows [| "b0"; "b1" |]
      [ (0., [| 9.; 1. |]); (1., [| 9.; 9. |]) ]
  in
  Alcotest.(check int) "t=0 -> 1" 1
    (Analysis.Decode.int_at ~threshold:5. tr [ "b0"; "b1" ] 0.);
  Alcotest.(check int) "t=1 -> 3" 3
    (Analysis.Decode.int_at ~threshold:5. tr [ "b0"; "b1" ] 1.)

let test_decode_onehot () =
  let tr =
    trace_of_rows [| "s0"; "s1"; "s2" |]
      [ (0., [| 9.; 0.; 0. |]); (1., [| 0.; 9.; 9. |]); (2., [| 0.; 0.; 0. |]) ]
  in
  let names = [ "s0"; "s1"; "s2" ] in
  Alcotest.(check (option int)) "valid" (Some 0)
    (Analysis.Decode.onehot_at ~threshold:5. tr names 0.);
  Alcotest.(check (option int)) "two high" None
    (Analysis.Decode.onehot_at ~threshold:5. tr names 1.);
  Alcotest.(check (option int)) "none high" None
    (Analysis.Decode.onehot_at ~threshold:5. tr names 2.)

(* ----------------------------------------------------------- Oscillation *)

let sine_series ~n ~period =
  let times = Array.init n (fun i -> float_of_int i *. 0.1) in
  let values =
    Array.map (fun t -> 50. +. (50. *. sin (2. *. Float.pi *. t /. period))) times
  in
  (times, values)

let test_oscillation_crossings () =
  let times = [| 0.; 1.; 2.; 3. |] and values = [| 0.; 10.; 0.; 10. |] in
  let cs = Analysis.Oscillation.crossings ~threshold:5. ~times ~values in
  Alcotest.(check int) "three crossings" 3 (List.length cs);
  match cs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "rising" true a.Analysis.Oscillation.rising;
      Alcotest.(check bool) "falling" false b.Analysis.Oscillation.rising;
      Alcotest.(check bool) "rising again" true c.Analysis.Oscillation.rising;
      check_float "interpolated position" 0.5 a.Analysis.Oscillation.at
  | _ -> Alcotest.fail "unexpected shape"

let test_oscillation_period () =
  let times, values = sine_series ~n:400 ~period:8. in
  match Analysis.Oscillation.period ~times ~values () with
  | None -> Alcotest.fail "expected a period"
  | Some p -> Alcotest.(check (float 0.05)) "sine period" 8. p

let test_oscillation_jitter_of_clean_signal () =
  let times, values = sine_series ~n:400 ~period:8. in
  match Analysis.Oscillation.period_jitter ~times ~values () with
  | None -> Alcotest.fail "expected jitter"
  | Some j -> Alcotest.(check bool) "tiny jitter" true (j < 0.05)

let test_oscillation_not_sustained () =
  let times = Array.init 50 (fun i -> float_of_int i) in
  let values = Array.map (fun t -> exp (-.t)) times in
  Alcotest.(check bool) "decay is not sustained" false
    (Analysis.Oscillation.is_sustained ~threshold:0.5 ~times ~values ());
  Alcotest.(check (option reject)) "no period" None
    (Analysis.Oscillation.period ~threshold:0.5 ~times ~values ()
    |> Option.map (fun _ -> ()))

let test_oscillation_amplitude () =
  check_float "amplitude" 7. (Analysis.Oscillation.amplitude ~values:[| 1.; 8.; 3. |])

let test_oscillation_high_intervals () =
  let times = [| 0.; 1.; 2.; 3.; 4. |] in
  let values = [| 0.; 10.; 10.; 0.; 10. |] in
  let ivs = Analysis.Oscillation.high_intervals ~threshold:5. ~times ~values in
  Alcotest.(check int) "two intervals" 2 (List.length ivs);
  (match ivs with
  | [ (a, b); (c, d) ] ->
      check_float "start 1" 0.5 a;
      check_float "end 1" 2.5 b;
      check_float "start 2" 3.5 c;
      check_float "end 2 clipped" 4. d
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check (float 1e-9)) "duty" ((2. +. 0.5) /. 4.)
    (Analysis.Oscillation.duty_cycle ~threshold:5. ~times ~values)

let test_oscillation_always_high () =
  let times = [| 0.; 1. |] and values = [| 9.; 9. |] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "whole range" [ (0., 1.) ]
    (Analysis.Oscillation.high_intervals ~threshold:5. ~times ~values);
  check_float "duty 1" 1.
    (Analysis.Oscillation.duty_cycle ~threshold:5. ~times ~values)

(* -------------------------------------------------------------- Accuracy *)

let test_accuracy_relative () =
  check_float "basic" 0.1 (Analysis.Accuracy.relative_error ~expected:10. 11.);
  check_float "zero expected is absolute scaled" 1e12
    (Analysis.Accuracy.relative_error ~expected:0. 1.);
  Alcotest.(check bool) "within" true
    (Analysis.Accuracy.within ~tol:0.05 ~expected:100. 104.9);
  Alcotest.(check bool) "not within" false
    (Analysis.Accuracy.within ~tol:0.05 ~expected:100. 106.)

let test_accuracy_settling () =
  let times = [| 0.; 1.; 2.; 3.; 4. |] in
  let values = [| 0.; 5.; 9.9; 10.; 10. |] in
  (* the settling time is the last moment outside the band: 5 at t=1 is
     outside a 2% band around the final 10, 9.9 at t=2 is inside *)
  let st = Analysis.Accuracy.settling_time ~tol:0.02 ~times ~values () in
  check_float "last violation at 1" 1. st;
  (* a 60% band admits the 5 as well, leaving only t=0 outside *)
  let st2 = Analysis.Accuracy.settling_time ~tol:0.6 ~times ~values () in
  check_float "loose tolerance" 0. st2

let test_accuracy_worst_over () =
  check_float "max" 3.
    (Analysis.Accuracy.worst_over [ (fun () -> 1.); (fun () -> 3.); (fun () -> 2.) ]);
  Alcotest.(check bool) "empty is neg_infinity" true
    (Analysis.Accuracy.worst_over [] = neg_infinity)

(* ----------------------------------------------------------------- Table *)

let test_table_render () =
  let t = Analysis.Table.create [ "design"; "n" ] in
  Analysis.Table.add_row t [ "counter"; "42" ];
  Analysis.Table.add_rowf t "%s|%d" "lfsr" 7;
  let s = Analysis.Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 6 = "design");
  Alcotest.(check bool) "has separator" true (String.contains s '+');
  Alcotest.(check bool) "contains rows" true
    (let contains needle =
       let n = String.length needle and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
       go 0
     in
     contains "counter" && contains "lfsr" && contains "42")

let test_table_mismatch () =
  let t = Analysis.Table.create [ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Analysis.Table.add_row t [ "only one" ])

(* ------------------------------------------------------------------- Csv *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Analysis.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Analysis.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Analysis.Csv.escape "a\"b")

let test_csv_write () =
  let path = Filename.temp_file "mrsc" ".csv" in
  Analysis.Csv.write_rows ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ] ];
  let ic = open_in path in
  let line1 = input_line ic in
  let line2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" line1;
  Alcotest.(check string) "row" "1,2" line2

(* ------------------------------------------------------------ Ascii_plot *)

let test_ascii_plot () =
  let tr =
    trace_of_rows [| "a"; "b" |]
      [ (0., [| 0.; 5. |]); (1., [| 10.; 5. |]); (2., [| 0.; 5. |]) ]
  in
  let s =
    Analysis.Ascii_plot.render ~width:40 ~height:8 ~title:"demo"
      (Analysis.Ascii_plot.of_trace tr [ "a"; "b" ])
  in
  Alcotest.(check bool) "has title" true (String.sub s 0 4 = "demo");
  Alcotest.(check bool) "has legend" true (String.contains s '=');
  Alcotest.(check bool) "plots both glyphs" true
    (String.contains s '*' && String.contains s '+')

let test_ascii_plot_empty () =
  Alcotest.check_raises "no data" (Invalid_argument "Ascii_plot.render: no data")
    (fun () -> ignore (Analysis.Ascii_plot.render []))

let suite =
  [
    ("decode bit", `Quick, test_decode_bit);
    ("decode dual rail", `Quick, test_decode_pair);
    ("decode int of bits", `Quick, test_decode_int_of_bits);
    ("decode bits of int", `Quick, test_decode_bits_of_int);
    ("decode roundtrip", `Quick, test_decode_roundtrip);
    ("decode from trace", `Quick, test_decode_from_trace);
    ("decode onehot", `Quick, test_decode_onehot);
    ("oscillation crossings", `Quick, test_oscillation_crossings);
    ("oscillation period", `Quick, test_oscillation_period);
    ("oscillation jitter", `Quick, test_oscillation_jitter_of_clean_signal);
    ("oscillation not sustained", `Quick, test_oscillation_not_sustained);
    ("oscillation amplitude", `Quick, test_oscillation_amplitude);
    ("oscillation high intervals", `Quick, test_oscillation_high_intervals);
    ("oscillation always high", `Quick, test_oscillation_always_high);
    ("accuracy relative", `Quick, test_accuracy_relative);
    ("accuracy settling", `Quick, test_accuracy_settling);
    ("accuracy worst_over", `Quick, test_accuracy_worst_over);
    ("table render", `Quick, test_table_render);
    ("table mismatch", `Quick, test_table_mismatch);
    ("csv escape", `Quick, test_csv_escape);
    ("csv write", `Quick, test_csv_write);
    ("ascii plot", `Quick, test_ascii_plot);
    ("ascii plot empty", `Quick, test_ascii_plot_empty);
  ]
