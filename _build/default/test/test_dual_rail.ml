(* Tests for dual-rail Boolean logic: every gate against its truth table,
   composition (half adder), fanout, validity, and rate independence. *)

open Crn

let level = 10.

let eval_gate gate a_val b_val =
  let net = Network.create () in
  let b = Builder.on net in
  let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:a_val ~level in
  let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:b_val ~level in
  let out = gate b sa sb in
  let state = Ode.Driver.final_state ~t1:40. net in
  Ri_modules.Dual_rail.read b out state

let check_table name gate table =
  List.iter
    (fun (a, b) ->
      let got = eval_gate gate a b in
      let want = table a b in
      if got <> Some want then
        Alcotest.failf "%s(%b,%b): got %s, want %b" name a b
          (match got with
          | Some v -> string_of_bool v
          | None -> "invalid")
          want)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_and () =
  check_table "and" (fun b x y -> Ri_modules.Dual_rail.andg b ~name:"g" x y) ( && )

let test_or () =
  check_table "or" (fun b x y -> Ri_modules.Dual_rail.org b ~name:"g" x y) ( || )

let test_nand () =
  check_table "nand"
    (fun b x y -> Ri_modules.Dual_rail.nandg b ~name:"g" x y)
    (fun x y -> not (x && y))

let test_nor () =
  check_table "nor"
    (fun b x y -> Ri_modules.Dual_rail.norg b ~name:"g" x y)
    (fun x y -> not (x || y))

let test_xor () =
  check_table "xor" (fun b x y -> Ri_modules.Dual_rail.xorg b ~name:"g" x y) ( <> )

let test_xnor () =
  check_table "xnor" (fun b x y -> Ri_modules.Dual_rail.xnorg b ~name:"g" x y) ( = )

let test_not_is_free () =
  let net = Network.create () in
  let b = Builder.on net in
  let s = Ri_modules.Dual_rail.const b ~name:"a" ~value:true ~level in
  let inverted = Ri_modules.Dual_rail.notg b ~name:"n" s in
  (* no reactions were added and no species created *)
  Alcotest.(check int) "no reactions" 0 (Network.n_reactions net);
  Alcotest.(check int) "no new species" 2 (Network.n_species net);
  let state = Network.initial_state net in
  Alcotest.(check (option bool)) "reads inverted" (Some false)
    (Ri_modules.Dual_rail.read b inverted state)

let test_gate_preserves_quantity () =
  let net = Network.create () in
  let b = Builder.on net in
  let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:true ~level in
  let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:false ~level in
  let out = Ri_modules.Dual_rail.andg b ~name:"g" sa sb in
  let state = Ode.Driver.final_state ~t1:40. net in
  Alcotest.(check (float 0.1)) "full level on false rail" level
    state.(out.Ri_modules.Dual_rail.f);
  Alcotest.(check (float 0.1)) "true rail empty" 0.
    state.(out.Ri_modules.Dual_rail.t)

let test_undriven_reads_invalid () =
  let net = Network.create () in
  let b = Builder.on net in
  let s = Ri_modules.Dual_rail.fresh b ~name:"x" in
  Alcotest.(check (option bool)) "undriven is invalid" None
    (Ri_modules.Dual_rail.read b s (Network.initial_state net))

let test_fanout () =
  let net = Network.create () in
  let b = Builder.on net in
  let s = Ri_modules.Dual_rail.const b ~name:"a" ~value:true ~level in
  let c1, c2 = Ri_modules.Dual_rail.fanout2 b ~name:"f" s in
  let state = Ode.Driver.final_state ~t1:40. net in
  Alcotest.(check (option bool)) "copy 1" (Some true)
    (Ri_modules.Dual_rail.read b c1 state);
  Alcotest.(check (option bool)) "copy 2" (Some true)
    (Ri_modules.Dual_rail.read b c2 state)

let test_half_adder () =
  List.iter
    (fun (a, b_) ->
      let net = Network.create () in
      let b = Builder.on net in
      let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:a ~level in
      let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:b_ ~level in
      let sum, carry = Ri_modules.Dual_rail.half_adder b ~name:"ha" sa sb in
      let state = Ode.Driver.final_state ~t1:60. net in
      Alcotest.(check (option bool))
        (Printf.sprintf "sum %b+%b" a b_)
        (Some (a <> b_))
        (Ri_modules.Dual_rail.read b sum state);
      Alcotest.(check (option bool))
        (Printf.sprintf "carry %b+%b" a b_)
        (Some (a && b_))
        (Ri_modules.Dual_rail.read b carry state))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_full_adder () =
  List.iter
    (fun (a, x, cin) ->
      let net = Network.create () in
      let b = Builder.on net in
      let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:a ~level in
      let sx = Ri_modules.Dual_rail.const b ~name:"x" ~value:x ~level in
      let sc = Ri_modules.Dual_rail.const b ~name:"c" ~value:cin ~level in
      let sum, carry = Ri_modules.Dual_rail.full_adder b ~name:"fa" sa sx sc in
      let state = Ode.Driver.final_state ~t1:80. net in
      let total =
        (if a then 1 else 0) + (if x then 1 else 0) + if cin then 1 else 0
      in
      Alcotest.(check (option bool))
        (Printf.sprintf "sum %b %b %b" a x cin)
        (Some (total land 1 = 1))
        (Ri_modules.Dual_rail.read b sum state);
      Alcotest.(check (option bool))
        (Printf.sprintf "carry %b %b %b" a x cin)
        (Some (total >= 2))
        (Ri_modules.Dual_rail.read b carry state))
    [
      (false, false, false);
      (true, false, false);
      (true, true, false);
      (false, true, true);
      (true, true, true);
    ]

let test_ripple_adder () =
  (* 2-bit + 2-bit over every operand pair *)
  for av = 0 to 3 do
    for bv = 0 to 3 do
      let net = Network.create () in
      let b = Builder.on net in
      let word name v =
        List.init 2 (fun i ->
            Ri_modules.Dual_rail.const b
              ~name:(Printf.sprintf "%s%d" name i)
              ~value:((v lsr i) land 1 = 1)
              ~level)
      in
      let xs = word "a" av and ys = word "b" bv in
      let sums, carry = Ri_modules.Dual_rail.ripple_adder b ~name:"add" xs ys in
      let state = Ode.Driver.final_state ~t1:150. net in
      let bits =
        List.map
          (fun s ->
            match Ri_modules.Dual_rail.read b s state with
            | Some v -> v
            | None -> Alcotest.failf "invalid sum bit for %d+%d" av bv)
          sums
      in
      let carry_bit =
        match Ri_modules.Dual_rail.read b carry state with
        | Some v -> v
        | None -> Alcotest.failf "invalid carry for %d+%d" av bv
      in
      let got =
        Analysis.Decode.int_of_bits (bits @ [ carry_bit ])
      in
      Alcotest.(check int) (Printf.sprintf "%d+%d" av bv) (av + bv) got
    done
  done

let test_ripple_adder_validation () =
  let net = Network.create () in
  let b = Builder.on net in
  Alcotest.check_raises "unequal widths"
    (Invalid_argument "Dual_rail.ripple_adder: empty or unequal widths")
    (fun () ->
      let s = Ri_modules.Dual_rail.const b ~name:"x" ~value:true ~level in
      ignore (Ri_modules.Dual_rail.ripple_adder b ~name:"r" [ s ] []))

let test_composition_chain () =
  (* (a AND b) XOR (a OR b) = a XOR b for the two mixed cases; build the
     whole expression and check one case end-to-end *)
  let net = Network.create () in
  let b = Builder.on net in
  let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:true ~level in
  let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:false ~level in
  let a1, a2 = Ri_modules.Dual_rail.fanout2 b ~name:"fa" sa in
  let b1, b2 = Ri_modules.Dual_rail.fanout2 b ~name:"fb" sb in
  let conj = Ri_modules.Dual_rail.andg b ~name:"and" a1 b1 in
  let disj = Ri_modules.Dual_rail.org b ~name:"or" a2 b2 in
  let out = Ri_modules.Dual_rail.xorg b ~name:"xor" conj disj in
  let state = Ode.Driver.final_state ~t1:80. net in
  Alcotest.(check (option bool)) "(t&&f) xor (t||f) = true" (Some true)
    (Ri_modules.Dual_rail.read b out state)

let test_rate_independence () =
  List.iter
    (fun ratio ->
      let net = Network.create () in
      let b = Builder.on net in
      let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:true ~level in
      let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:true ~level in
      let out = Ri_modules.Dual_rail.andg b ~name:"g" sa sb in
      let env = Rates.env_with_ratio ratio in
      let state = Ode.Driver.final_state ~env ~t1:40. net in
      Alcotest.(check (option bool))
        (Printf.sprintf "and at ratio %g" ratio)
        (Some true)
        (Ri_modules.Dual_rail.read b out state))
    [ 10.; 1000. ]

let test_set_invalid_level () =
  let net = Network.create () in
  let b = Builder.on net in
  let s = Ri_modules.Dual_rail.fresh b ~name:"x" in
  Alcotest.check_raises "zero level"
    (Invalid_argument "Dual_rail.set: level must be positive") (fun () ->
      Ri_modules.Dual_rail.set b s ~value:true ~level:0.)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random truth tables realized exactly" ~count:12
      (make Gen.(quad bool bool bool bool))
      (fun (r00, r01, r10, r11) ->
        let table a b =
          match (a, b) with
          | false, false -> r00
          | false, true -> r01
          | true, false -> r10
          | true, true -> r11
        in
        List.for_all
          (fun (a, b_) ->
            let net = Network.create () in
            let b = Builder.on net in
            let sa = Ri_modules.Dual_rail.const b ~name:"a" ~value:a ~level in
            let sb = Ri_modules.Dual_rail.const b ~name:"b" ~value:b_ ~level in
            let out = Ri_modules.Dual_rail.gate_by_table b ~name:"g" ~table sa sb in
            let state = Ode.Driver.final_state ~t1:40. net in
            Ri_modules.Dual_rail.read b out state = Some (table a b_))
          [ (false, false); (false, true); (true, false); (true, true) ]);
  ]

let suite =
  [
    ("and", `Quick, test_and);
    ("or", `Quick, test_or);
    ("nand", `Quick, test_nand);
    ("nor", `Quick, test_nor);
    ("xor", `Quick, test_xor);
    ("xnor", `Quick, test_xnor);
    ("not is free", `Quick, test_not_is_free);
    ("quantity preserved", `Quick, test_gate_preserves_quantity);
    ("undriven invalid", `Quick, test_undriven_reads_invalid);
    ("fanout", `Quick, test_fanout);
    ("half adder", `Quick, test_half_adder);
    ("full adder", `Quick, test_full_adder);
    ("ripple adder", `Slow, test_ripple_adder);
    ("ripple adder validation", `Quick, test_ripple_adder_validation);
    ("composition", `Quick, test_composition_chain);
    ("rate independence", `Quick, test_rate_independence);
    ("set invalid level", `Quick, test_set_invalid_level);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
