test/test_networks.ml: Alcotest Analysis Array Crn Filename List Numeric Ode Ssa
