test/test_async.ml: Alcotest Array Async_mol Crn Float List Ode
