test/test_molclock.ml: Alcotest Array Crn Float List Molclock Numeric Ode Printf String
