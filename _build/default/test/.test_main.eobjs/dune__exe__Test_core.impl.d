test/test_core.ml: Alcotest Array Core Crn Float Gen List Molclock Ode Printf QCheck QCheck_alcotest Test Unix
