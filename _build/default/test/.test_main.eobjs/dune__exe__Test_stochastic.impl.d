test/test_stochastic.ml: Alcotest Array Core Crn List Molclock Ode Printf Ssa
