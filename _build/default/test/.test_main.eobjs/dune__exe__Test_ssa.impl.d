test/test_ssa.ml: Alcotest Array Crn Float Gen Int64 List Network Numeric Ode Printf QCheck QCheck_alcotest Rates Reaction Ssa Test
