test/test_numeric.ml: Alcotest Array Float Gen Interp List Lu Mat Numeric QCheck QCheck_alcotest Rng Stats Test Vec
