test/test_dsd.ml: Alcotest Array Crn Dsd Format Gen List Ode Printf QCheck QCheck_alcotest String Test
