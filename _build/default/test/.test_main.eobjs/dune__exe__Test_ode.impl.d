test/test_ode.ml: Alcotest Array Crn Float Gen List Network Ode QCheck QCheck_alcotest Rates Reaction Test
