test/test_crn.ml: Alcotest Array Builder Conservation Crn Gen List Network Numeric Ode Parser Printf QCheck QCheck_alcotest Rates Reaction String Test Validate
