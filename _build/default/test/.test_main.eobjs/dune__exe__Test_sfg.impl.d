test/test_sfg.ml: Alcotest Core Crn Float List
