test/test_equiv.ml: Alcotest Array Crn Designs Equiv Gen Int64 List Network Numeric Printf QCheck QCheck_alcotest Rates Reaction Test
