test/test_slice.ml: Alcotest Analysis Crn Designs Network Ode Rates Reaction Slice
