test/test_analysis.ml: Alcotest Analysis Array Filename Float List Ode Option String Sys
