test/test_dual_rail.ml: Alcotest Analysis Array Builder Crn Gen List Network Ode Printf QCheck QCheck_alcotest Rates Ri_modules Test
