test/test_ri_modules.ml: Alcotest Array Builder Crn Float Gen List Network Ode QCheck QCheck_alcotest Rates Ri_modules Test
